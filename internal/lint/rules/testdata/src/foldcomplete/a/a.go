// Package a exercises foldcomplete: mergeable accumulators whose Merge
// folds everything (Good, ResetStyle) and ones that forget fields or
// map initialization (Bad, NoMerge).
package a

// Good is a complete accumulator: every field folded, map initialized.
//
//arest:mergeable
type Good struct {
	N    int
	Tags map[string]int
}

// NewGood builds a Good with its map ready.
func NewGood() *Good { return &Good{Tags: map[string]int{}} }

// Merge folds o into g.
func (g *Good) Merge(o *Good) {
	g.N += o.N
	for k, v := range o.Tags {
		g.Tags[k] += v
	}
}

// ResetStyle initializes its map in Reset rather than a constructor.
//
//arest:mergeable
type ResetStyle struct {
	Seen map[string]bool
}

// Reset readies the accumulator for reuse.
func (r *ResetStyle) Reset() { r.Seen = map[string]bool{} }

// Merge folds o into r.
func (r *ResetStyle) Merge(o *ResetStyle) {
	for k := range o.Seen {
		r.Seen[k] = true
	}
}

// Bad forgets things: B is never folded and M is never made.
//
//arest:mergeable
type Bad struct {
	A int
	B int            // want `field Bad\.B is not folded by Merge`
	M map[string]int // want `map field Bad\.M is never initialized on the zero/reset path`
}

// NewBad forgets to allocate the map.
func NewBad() *Bad { return &Bad{} }

// Merge folds A and M but drops B.
func (b *Bad) Merge(o *Bad) {
	b.A += o.A
	for k, v := range o.M {
		b.M[k] += v
	}
}

// NoMerge is marked mergeable but never folded at all.
//
//arest:mergeable
type NoMerge struct { // want `struct NoMerge has no Merge method to fold it`
	N int
}

// unmarked structs are the analyzer's no-op case: nothing folds them and
// nothing is reported.
type unmarked struct {
	n int
	m map[int]int
}

func useUnmarked(u *unmarked) int { return u.n + len(u.m) }
