// Command arestlint machine-checks the repository's contracts (DESIGN.md
// §7/§8/§11/§13) with the stdlib-only analyzers of internal/lint/rules:
//
//	nowallclock   no wall-clock reads in determinism-contract packages
//	noglobalrand  no process-global math/rand, no wall-clock seeding
//	maporder      no map iteration order reaching slices or output
//	nilsafe       nil-receiver guards on every exported obs instrument method
//	noerrdrop     no discarded error returns in the measurement layers
//	foldcomplete  //arest:mergeable structs fully folded by Merge
//	hotpathalloc  no allocation-forcing constructs in //arest:hotpath scopes
//	nolockcopy    no by-value copies of lock- or atomic-bearing types
//	atomicmix     no plain access to variables owned by sync/atomic
//
// Usage:
//
//	arestlint [-list] [-tests] [-json] [./...]
//
// With no arguments (or the literal "./..." pattern) it lints every
// package of the enclosing module. -tests widens loading to _test.go
// files (in-package and external test packages), where map-order and
// wall-clock bugs can invalidate the equivalence tests themselves. -json
// emits one JSON object per line (file, line, col, analyzer, message,
// suppressed_by) including directive-suppressed findings for audit; the
// exit status counts only unsuppressed ones. A finding, a malformed or
// unused //arest:allow directive, or a load failure makes the exit status
// non-zero, so `go run ./cmd/arestlint ./...` gates CI with no external
// install.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"arest/internal/lint"
	"arest/internal/lint/rules"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json, one
// object per line.
type jsonDiag struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Analyzer     string `json:"analyzer"`
	Message      string `json:"message"`
	SuppressedBy string `json:"suppressed_by,omitempty"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("arestlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	tests := fs.Bool("tests", false, "also lint _test.go files (in-package and external test packages)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON lines, including suppressed findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := rules.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "arestlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arestlint:", err)
		return 2
	}
	loader.IncludeTests = *tests

	var pkgs []*lint.Package
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "arestlint:", err)
				return 2
			}
			pkgs = append(pkgs, all...)
		default:
			// A single package directory, relative to the working tree.
			dir, err := filepath.Abs(pat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arestlint:", err)
				return 2
			}
			rel, err := filepath.Rel(root, dir)
			if err != nil || rel == ".." || filepath.IsAbs(rel) || (len(rel) > 2 && rel[:3] == "../") {
				fmt.Fprintf(os.Stderr, "arestlint: %s is outside module %s\n", pat, root)
				return 2
			}
			ip := loader.Module
			if rel != "." {
				ip = loader.Module + "/" + filepath.ToSlash(rel)
			}
			pkg, err := loader.LoadDir(dir, ip)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arestlint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	runner := &lint.Runner{Analyzers: analyzers, IncludeSuppressed: *jsonOut}
	diags, err := runner.Run(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arestlint:", err)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	findings := 0
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			rel = r
		}
		if d.SuppressedBy == "" {
			findings++
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiag{
				File:         filepath.ToSlash(rel),
				Line:         d.Pos.Line,
				Col:          d.Pos.Column,
				Analyzer:     d.Analyzer,
				Message:      d.Message,
				SuppressedBy: d.SuppressedBy,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "arestlint:", err)
				return 2
			}
			continue
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "arestlint: %d finding(s) across %d package(s)\n", findings, len(pkgs))
		return 1
	}
	return 0
}
