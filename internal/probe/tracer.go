// The tracer's probe/exchange loop sits directly on the wire path: its
// pooled scratch and stateless probe IDs are what keep Trace within its
// alloc budget, so the file holds the contract (DESIGN.md §11).
//
//arest:hotpath file
package probe

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"arest/internal/netsim"
	"arest/internal/pkt"
)

// Conn abstracts the raw-socket boundary: one probe out, at most one reply
// back, both as serialized IPv4 packets, plus the measured round-trip time
// in milliseconds (zero when no reply arrived).
//
// ctx bounds the exchange: implementations that wait on a real wire must
// return promptly once ctx is done (context.Cause as the error), so a
// campaign cancellation lands within one probe exchange. The simulator
// backend completes instantly and may ignore ctx.
//
// Ownership: wire is only valid for the duration of the call — the tracer
// reuses the buffer for the next probe, so implementations must not retain
// it. The returned reply, conversely, passes to the tracer, which may hold
// references into it (quoted label stacks); implementations must hand back
// a buffer they will not reuse or mutate.
type Conn interface {
	Exchange(ctx context.Context, src netip.Addr, wire []byte) (reply []byte, rttMs float64, err error)
}

// hopMilliseconds is the synthetic per-hop one-way delay the simulator
// backend reports.
const hopMilliseconds = 0.35

// NetsimConn adapts a netsim.Network to the Conn interface, synthesizing
// RTTs from the simulated forward and return hop counts.
type NetsimConn struct {
	Net *netsim.Network
}

// Exchange implements Conn over the simulator. The simulated exchange is
// instantaneous, so ctx is deliberately unread: checking it here would let
// a racy cancellation perturb which probes of an in-flight trace complete,
// while the trace/TTL-boundary checks in Trace keep cancellation points
// schedule-independent.
func (c NetsimConn) Exchange(_ context.Context, src netip.Addr, wire []byte) ([]byte, float64, error) {
	d, err := c.Net.Send(src, wire)
	if err != nil {
		return nil, 0, err
	}
	return d.Reply, hopMilliseconds * float64(d.FwdHops+d.RetHops), nil
}

// Method selects the probe type of a traceroute.
type Method int

const (
	// MethodUDP sends UDP datagrams to high ports (the TNT default: UDP
	// probes reveal the most links).
	MethodUDP Method = iota
	// MethodICMP sends echo requests (classic ICMP traceroute); the
	// destination answers with an echo reply instead of port unreachable.
	MethodICMP
)

// Probe payload contents, shared across all probes (never mutated).
var (
	probePayload = []byte("arest-tnt-probe")
	pingPayload  = []byte("arest-ping")
	ipidPayload  = []byte("arest-ipid")
)

// probeScratch bundles the per-call transient state of one trace, ping, or
// IP-ID sample: packets under construction, their wire buffers, and decoded
// replies. It lives in a package-level pool rather than on the Tracer so a
// single Tracer stays safe for concurrent use (the alias resolver shares
// one across its workers).
//
// The pool sits outside the determinism contract (DESIGN.md §11): every
// field is fully overwritten before it is read — whole-struct assignments,
// [:0] reslices before appends — so probe bytes depend only on the probe's
// coordinates, never on which scratch the pool returns.
type probeScratch struct {
	payload []byte   // serialized probe payload (UDP datagram or ICMP echo)
	wire    []byte   // serialized probe IP packet
	ip      pkt.IPv4 // probe under construction
	echo    pkt.ICMP // echo request under construction
	udp     pkt.UDP  // UDP datagram under construction
	rip     pkt.IPv4 // decoded reply IP header (payload aliases the reply)
	rm      pkt.ICMP // decoded reply ICMP (body/extensions alias the reply)
	qip     pkt.IPv4 // decoded quoted original datagram
}

var probeScratchPool = sync.Pool{New: func() any { return new(probeScratch) }}

// Tracer is a Paris traceroute engine with TNT extensions.
type Tracer struct {
	Conn Conn
	// VP is the source address probes are sent from.
	VP netip.Addr
	// Method selects UDP (default) or ICMP-echo probing.
	Method Method
	// MaxTTL bounds the forward TTL sweep.
	MaxTTL int
	// MaxGaps stops the sweep after this many consecutive silent hops.
	MaxGaps int
	// BasePort is the UDP destination port of flow 0; Paris flow IDs
	// offset it.
	BasePort uint16
	// Reveal enables TNT revelation of hidden tunnel content (DPR).
	Reveal bool
	// Retries is how many extra probes a silent hop gets before being
	// recorded as a gap (rate-limited routers often answer a retry).
	Retries int
	// Metrics, when non-nil, receives per-probe accounting (probes sent,
	// replies, retries, gaps, decode failures, revelation outcomes); see
	// NewMetrics. Recording never changes probe bytes or trace results.
	Metrics *Metrics
}

// NewTracer returns a tracer with TNT-like defaults.
//
// A Tracer holds no mutable state: probe identifiers derive from
// (VP, destination, flow, TTL, attempt), so one Tracer may run traces,
// pings, and IP-ID samples from any number of goroutines concurrently, and
// a retry of the same probe still carries a fresh IP-ID (rate-limited
// routers draw a fresh loss coin per IP-ID). Scratch buffers come from a
// package pool per call, never from the Tracer itself.
func NewTracer(conn Conn, vp netip.Addr) *Tracer {
	return &Tracer{Conn: conn, VP: vp, MaxTTL: 32, MaxGaps: 3, BasePort: 33434, Reveal: true, Retries: 2}
}

// probeID derives the 16-bit IP identifier of one probe from the probe's
// coordinates. Replacing the old mutable sequence field with a hash makes
// every probe's bytes a pure function of what is being probed — the basis
// of deterministic parallel sweeps — while keeping IDs well spread so
// distinct attempts land on distinct rate-limiter coins.
func (t *Tracer) probeID(dst netip.Addr, flow uint16, ttl uint8, attempt int) uint16 {
	v := uint64(flow)<<32 | uint64(ttl)<<16 | uint64(uint16(attempt))
	s, d := t.VP.As4(), dst.As4()
	v ^= uint64(s[0])<<56 | uint64(s[1])<<48 | uint64(s[2])<<40 | uint64(s[3])<<32
	v ^= uint64(d[0])<<24 | uint64(d[1])<<16 | uint64(d[2])<<8 | uint64(d[3])
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return uint16(v ^ (v >> 31))
}

// Traceroute UDP destination ports live in [PortRangeLo, PortRangeHi): at
// or above the classic traceroute base and strictly below the port-space
// ceiling, so a probe can never land on a well-known or zero port.
const (
	PortRangeLo = 33434
	PortRangeHi = 65535
)

// flowPort maps a Paris flow ID onto the UDP destination port. The naive
// BasePort+flowID wraps uint16 for large flow IDs, landing probes on
// well-known ports — where a real service might answer (or a firewall
// drop), breaking the port-unreachable halt semantics — so the sum is
// folded back into [PortRangeLo, PortRangeHi). Flow IDs that never reached
// the old wrap point keep their exact historical port.
func (t *Tracer) flowPort(flowID uint16) uint16 {
	base := uint32(t.BasePort)
	if base < PortRangeLo || base >= PortRangeHi {
		base = PortRangeLo
	}
	const span = PortRangeHi - PortRangeLo
	return uint16(PortRangeLo + (base-PortRangeLo+uint32(flowID))%span)
}

// loopRunLen is the number of consecutive identical responding addresses
// that halts a trace as a loop: a period-1 forwarding loop (a router whose
// FIB entry points at itself, e.g. during a micro-loop) answers every TTL
// from the same interface, which the revisit check below can never see.
const loopRunLen = 3

// Trace runs one Paris traceroute toward dst with the given flow ID. The
// 5-tuple is held constant across the TTL sweep (per-flow load balancers
// then keep the path stable); distinct flow IDs map to distinct UDP
// destination ports within the traceroute range (see flowPort).
//
// Trace is fail-soft: a probe exchange error consumes the same retry
// budget as a silent hop, and an error that survives the budget halts the
// sweep with HaltError and the error text on the trace — every hop
// measured before the failure is kept. The error return reports
// cancellation only: once ctx is done the sweep stops at the next TTL
// boundary and Trace returns (nil, context.Cause(ctx)). Cancellation never
// becomes trace content — an aborted trace is discarded, never recorded as
// degraded — so archived bytes stay independent of when a cancel landed.
// For probe-level failures callers decide whether a degraded trace is
// acceptable via Trace.Failed.
func (t *Tracer) Trace(ctx context.Context, dst netip.Addr, flowID uint16) (*Trace, error) {
	s := probeScratchPool.Get().(*probeScratch)
	defer probeScratchPool.Put(s)
	tr := &Trace{VP: t.VP, Dst: dst, FlowID: flowID, Halt: HaltMaxTTL}
	dport := t.flowPort(flowID)
	gaps := 0
	seen := make(map[netip.Addr]int)
	var lastAddr netip.Addr
	run := 0
sweep:
	for ttl := 1; ttl <= t.MaxTTL; ttl++ {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		hop, err := t.probeOnce(ctx, s, dst, uint8(ttl), dport, 0)
		for retry := 0; (err != nil || !hop.Responded()) && retry < t.Retries; retry++ {
			if ctx.Err() != nil {
				return nil, context.Cause(ctx)
			}
			t.Metrics.countRetry()
			hop, err = t.probeOnce(ctx, s, dst, uint8(ttl), dport, retry+1)
		}
		if err != nil {
			if ctx.Err() != nil {
				// A cancelled exchange is an abort, not a transport fault:
				// mapping it to HaltError would archive timing-dependent
				// bytes.
				return nil, context.Cause(ctx)
			}
			tr.Halt = HaltError
			tr.Err = err.Error()
			break sweep
		}
		tr.Hops = append(tr.Hops, hop)
		if !hop.Responded() {
			t.Metrics.countGap()
			gaps++
			run = 0
			if gaps >= t.MaxGaps {
				tr.Halt = HaltGaps
				break sweep
			}
			continue
		}
		gaps = 0
		// Period-1 loops: the same address answering loopRunLen consecutive
		// TTLs. Longer-period loops revisit an address with a gap > 1 and
		// are caught by the revisit check.
		if hop.Addr == lastAddr {
			run++
		} else {
			lastAddr, run = hop.Addr, 1
		}
		if run >= loopRunLen {
			tr.Halt = HaltLoop
			break sweep
		}
		if prev, dup := seen[hop.Addr]; dup && ttl-prev > 1 {
			tr.Halt = HaltLoop
			break sweep
		}
		seen[hop.Addr] = ttl
		if !hop.DecodeError &&
			(hop.ICMPType == pkt.ICMPDestUnreachable ||
				(t.Method == MethodICMP && hop.ICMPType == pkt.ICMPEchoReply)) {
			tr.Halt = HaltReached
			break sweep
		}
	}
	t.Metrics.countHalt(tr.Halt)
	// A trace halted by a transport error skips revelation: its Conn just
	// failed repeatedly, so auxiliary traces would only burn more probes.
	if t.Reveal && tr.Halt != HaltError {
		if err := t.reveal(ctx, tr); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// probeOnce sends a single probe (UDP or ICMP echo, per Method) and parses
// the reply into a Hop. attempt distinguishes retries of the same hop so
// each retry carries a distinct IP-ID. All construction and decoding goes
// through s; the returned Hop owns nothing that aliases s (Hop.Stack is
// decoded fresh from the reply).
func (t *Tracer) probeOnce(ctx context.Context, s *probeScratch, dst netip.Addr, ttl uint8, dport uint16, attempt int) (Hop, error) {
	var err error
	proto := uint8(pkt.ProtoUDP)
	switch t.Method {
	case MethodICMP:
		// Paris semantics for ICMP: the identifier is the flow key, so it
		// derives from dport; the sequence varies per probe.
		s.echo = pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: dport, Seq: uint16(ttl), Body: probePayload}
		s.payload, err = s.echo.AppendMarshal(s.payload[:0])
		if err != nil {
			return Hop{}, fmt.Errorf("probe: %w", err)
		}
		proto = pkt.ProtoICMP
	default:
		s.udp = pkt.UDP{SrcPort: 33434, DstPort: dport, Payload: probePayload}
		s.payload, err = s.udp.AppendMarshal(s.payload[:0], t.VP, dst)
		if err != nil {
			return Hop{}, fmt.Errorf("probe: %w", err)
		}
	}
	s.ip = pkt.IPv4{TTL: ttl, Protocol: proto, ID: t.probeID(dst, dport, ttl, attempt),
		Src: t.VP, Dst: dst, Payload: s.payload}
	s.wire, err = s.ip.AppendMarshal(s.wire[:0])
	if err != nil {
		return Hop{}, fmt.Errorf("probe: %w", err)
	}
	t.Metrics.countSent(t.Method)
	reply, rtt, err := t.Conn.Exchange(ctx, t.VP, s.wire)
	if err != nil {
		t.Metrics.countExchangeError()
		return Hop{}, fmt.Errorf("probe: %w", err)
	}
	hop := Hop{TTL: int(ttl)}
	if reply == nil {
		return hop, nil
	}
	if err := pkt.UnmarshalIPv4Into(&s.rip, reply); err != nil {
		// The IP header itself is mangled: no responder address to keep.
		t.Metrics.countDecodeError()
		return hop, nil
	}
	hop.Addr = s.rip.Src
	hop.ReplyTTL = s.rip.TTL
	hop.RTT = rtt
	t.Metrics.countReply(rtt)
	if err := pkt.UnmarshalICMPInto(&s.rm, s.rip.Payload); err != nil {
		// Something answered but its ICMP payload fails strict parsing
		// (bad checksum, malformed RFC 4884 structure, …). Discarding the
		// observation would convert a responsive hop into a gap and burn
		// retries on a router that did answer — keep the responder address
		// and RTT, flag the hop, and account for the decode failure.
		hop.DecodeError = true
		t.Metrics.countDecodeError()
		return hop, nil
	}
	hop.ICMPType = s.rm.Type
	hop.ICMPCode = s.rm.Code
	if st, ok := s.rm.MPLSStack(); ok {
		hop.Stack = st
	}
	if s.rm.IsError() {
		if err := pkt.UnmarshalIPv4QuotedInto(&s.qip, s.rm.Body); err == nil {
			hop.QTTL = s.qip.TTL
		}
	}
	return hop, nil
}

// Ping sends one ICMP echo request and reports the received reply TTL,
// which TTL fingerprinting combines with the time-exceeded reply TTL.
func (t *Tracer) Ping(ctx context.Context, dst netip.Addr, id uint16) (replyTTL uint8, ok bool, err error) {
	if ctx.Err() != nil {
		return 0, false, context.Cause(ctx)
	}
	s := probeScratchPool.Get().(*probeScratch)
	defer probeScratchPool.Put(s)
	s.echo = pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: id, Seq: 1, Body: pingPayload}
	s.payload, err = s.echo.AppendMarshal(s.payload[:0])
	if err != nil {
		return 0, false, err
	}
	s.ip = pkt.IPv4{TTL: 64, Protocol: pkt.ProtoICMP, ID: id, Src: t.VP, Dst: dst, Payload: s.payload}
	s.wire, err = s.ip.AppendMarshal(s.wire[:0])
	if err != nil {
		return 0, false, err
	}
	t.Metrics.countPing()
	reply, _, err := t.Conn.Exchange(ctx, t.VP, s.wire)
	if err != nil {
		t.Metrics.countExchangeError()
		return 0, false, err
	}
	if reply == nil {
		return 0, false, nil
	}
	if err := pkt.UnmarshalIPv4Into(&s.rip, reply); err != nil {
		t.Metrics.countDecodeError()
		return 0, false, nil
	}
	if err := pkt.UnmarshalICMPInto(&s.rm, s.rip.Payload); err != nil {
		t.Metrics.countDecodeError()
		return 0, false, nil
	}
	if s.rm.Type != pkt.ICMPEchoReply {
		return 0, false, nil
	}
	t.Metrics.countPingReply()
	return s.rip.TTL, true, nil
}

// InferInitialTTL rounds a received TTL up to the nearest common initial
// value (32, 64, 128, 255), the standard trick for estimating path length
// and vendor signatures from reply TTLs.
func InferInitialTTL(received uint8) uint8 {
	switch {
	case received <= 32:
		return 32
	case received <= 64:
		return 64
	case received <= 128:
		return 128
	default:
		return 255
	}
}

// returnPathLen estimates the return path length of a hop from its reply
// TTL (RTLA).
func returnPathLen(replyTTL uint8) int {
	return int(InferInitialTTL(replyTTL)) - int(replyTTL)
}

// IPIDSample is one IP-ID observation from a direct probe, used by
// MIDAR-style alias resolution.
type IPIDSample struct {
	ID       uint16
	ReplyTTL uint8
}

// SampleIPID probes the address directly (UDP to an unreachable port) and
// returns the IP-ID of the reply, exposing the router's shared IP-ID
// counter. seq distinguishes successive samples of the same address so
// each carries a distinct probe IP-ID.
func (t *Tracer) SampleIPID(ctx context.Context, dst netip.Addr, seq uint32) (IPIDSample, bool, error) {
	s := probeScratchPool.Get().(*probeScratch)
	defer probeScratchPool.Put(s)
	dport := t.flowPort(200)
	s.udp = pkt.UDP{SrcPort: 33434, DstPort: dport, Payload: ipidPayload}
	var err error
	s.payload, err = s.udp.AppendMarshal(s.payload[:0], t.VP, dst)
	if err != nil {
		return IPIDSample{}, false, err
	}
	id := t.probeID(dst, dport, uint8(seq>>16), int(uint16(seq)))
	s.ip = pkt.IPv4{TTL: 64, Protocol: pkt.ProtoUDP, ID: id, Src: t.VP, Dst: dst, Payload: s.payload}
	s.wire, err = s.ip.AppendMarshal(s.wire[:0])
	if err != nil {
		return IPIDSample{}, false, err
	}
	t.Metrics.countIPIDSample()
	reply, _, err := t.Conn.Exchange(ctx, t.VP, s.wire)
	if err != nil {
		t.Metrics.countExchangeError()
		return IPIDSample{}, false, err
	}
	if reply == nil {
		return IPIDSample{}, false, nil
	}
	if err := pkt.UnmarshalIPv4Into(&s.rip, reply); err != nil {
		t.Metrics.countDecodeError()
		return IPIDSample{}, false, nil
	}
	t.Metrics.countIPIDReply()
	return IPIDSample{ID: s.rip.ID, ReplyTTL: s.rip.TTL}, true, nil
}
