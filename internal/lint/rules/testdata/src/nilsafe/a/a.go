// Package a is nilsafe testdata: the test configures the analyzer with
// this package's import path and the instrument types Counter and
// Registry.
package a

// Counter mimics an obs instrument.
type Counter struct{ n uint64 }

// Registry mimics the obs registry.
type Registry struct{ counters map[string]*Counter }

// Plain is not an instrument type: its methods are exempt.
type Plain struct{ n int }

// Add has the early-exit guard form.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n += n
}

// Inc has the wrapping guard form.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Value guards with a compound condition.
func (c *Counter) Value() uint64 {
	if c == nil || c.n == 0 {
		return 0
	}
	return c.n
}

// Reset lacks any guard.
func (c *Counter) Reset() { // want `\(\*Counter\).Reset must begin with a nil-receiver guard`
	c.n = 0
}

// Bump guards too late: the receiver is dereferenced first.
func (c *Counter) Bump() uint64 { // want `\(\*Counter\).Bump must begin with a nil-receiver guard`
	v := c.n
	if c == nil {
		return 0
	}
	return v + 1
}

// Peek has a non-terminating == nil guard: execution falls through to a
// dereference.
func (c *Counter) Peek() uint64 { // want `\(\*Counter\).Peek must begin with a nil-receiver guard`
	if c == nil {
		_ = 0
	}
	return c.n
}

// Leak wraps in != nil but touches the receiver after the guard.
func (c *Counter) Leak() uint64 { // want `\(\*Counter\).Leak must begin with a nil-receiver guard`
	if c != nil {
		c.n++
	}
	return c.n
}

// reset is unexported: exempt.
func (c *Counter) reset() { c.n = 0 }

// Describe never touches its receiver: trivially nil-safe.
func (c *Counter) Describe() string { return "counter" }

// Counter is guarded after receiver-free setup statements, which is fine:
// the guard is the first statement that uses the receiver.
func (r *Registry) Counter(name string) *Counter {
	key := "counter." + name
	if r == nil {
		return nil
	}
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Len lacks a guard.
func (r *Registry) Len() int { // want `\(\*Registry\).Len must begin with a nil-receiver guard`
	return len(r.counters)
}

// Touch is on a value receiver: nil is impossible, exempt.
func (p Plain) Touch() int { return p.n }

// Grow is on a non-instrument type: exempt even without a guard.
func (p *Plain) Grow() { p.n++ }
