package probe

import (
	"context"
	"testing"

	"arest/internal/mpls"
	"arest/internal/netsim"
)

// diamondNet builds gw - s - {x1..xN} - d with N parallel middle routers.
func diamondNet(t *testing.T, width int) (*netsim.Network, *Tracer, []netsim.RouterID) {
	t.Helper()
	n := netsim.New(31)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	mk := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, Mode: netsim.ModeIP})
	}
	gw := mk("gw")
	s := mk("s")
	d := mk("d")
	n.Connect(gw.ID, s.ID, 10)
	var mids []netsim.RouterID
	for i := 0; i < width; i++ {
		x := mk("x")
		n.Connect(s.ID, x.ID, 10)
		n.Connect(x.ID, d.ID, 10)
		mids = append(mids, x.ID)
	}
	vp := a("172.16.4.1")
	tgt := a("100.4.0.9")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, d.ID)
	n.Compute()
	return n, NewTracer(NetsimConn{Net: n}, vp), mids
}

func TestDiscoverMultipathFindsDiamond(t *testing.T) {
	n, tc, mids := diamondNet(t, 3)
	m, err := tc.DiscoverMultipath(context.Background(), a("100.4.0.9"), 64)
	if err != nil {
		t.Fatal(err)
	}
	// TTL 3 is the diamond: all three middles should appear.
	if got := m.Width(3); got != 3 {
		t.Fatalf("diamond width = %d, want 3 (%v)", got, m.Hops)
	}
	// Every discovered middle address belongs to a middle router.
	midSet := map[netsim.RouterID]bool{}
	for _, id := range mids {
		midSet[id] = true
	}
	for _, addr := range m.Hops[2] {
		r, ok := n.RouterByAddr(addr)
		if !ok || !midSet[r.ID] {
			t.Errorf("TTL-3 interface %s is not a diamond middle", addr)
		}
	}
	if m.MaxWidth() != 3 {
		t.Errorf("MaxWidth = %d", m.MaxWidth())
	}
	// Non-diamond TTLs stay width 1.
	if m.Width(1) != 1 || m.Width(2) != 1 {
		t.Errorf("linear hops widened: %v", m.Hops)
	}
}

func TestDiscoverMultipathStopsEarlyOnChain(t *testing.T) {
	_, tc, _ := diamondNet(t, 1) // effectively a chain
	m, err := tc.DiscoverMultipath(context.Background(), a("100.4.0.9"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Flows > 8 {
		t.Errorf("no-ECMP chain probed %d flows; stopping rule broken", m.Flows)
	}
	if m.MaxWidth() != 1 {
		t.Errorf("chain MaxWidth = %d", m.MaxWidth())
	}
}

func TestMultipathWidthBounds(t *testing.T) {
	m := &Multipath{}
	if m.Width(0) != 0 || m.Width(1) != 0 || m.Width(-1) != 0 {
		t.Error("Width out-of-range not zero")
	}
	if m.MaxWidth() != 0 {
		t.Error("empty MaxWidth not zero")
	}
}
