// Package a exercises atomicmix: a variable whose address reaches a
// sync/atomic call is owned by the atomic protocol, and plain access to
// it elsewhere in the package is a race. Element-level atomics
// (&xs[i]) own the elements, not the container header.
package a

import "sync/atomic"

var word uint64

// incWord is the sanctioned atomic access that claims word.
func incWord() { atomic.AddUint64(&word, 1) }

// loadWord stays inside the protocol: legal.
func loadWord() uint64 { return atomic.LoadUint64(&word) }

// readPlain mixes a plain read in.
func readPlain() uint64 {
	return word // want `word is accessed with sync/atomic at a\.go:\d+ but plainly here`
}

// writePlain mixes a plain write in.
func writePlain() {
	word = 0 // want `word is accessed with sync/atomic`
}

var lanes [4]int32

// bumpLane takes the address of one element: the elements become atomic,
// the array header does not.
func bumpLane(i int) { atomic.AddInt32(&lanes[i], 1) }

// lenLanes reads only the header: legal.
func lenLanes() int { return len(lanes) }

// indexRange reads no elements: legal.
func indexRange() int {
	n := 0
	for i := range lanes {
		n += i
	}
	return n
}

// readLane extracts an element plainly.
func readLane(i int) int32 {
	return lanes[i] // want `elements of lanes are accessed with sync/atomic`
}

// sumLanes copies every element through the range value variable.
func sumLanes() int32 {
	var s int32
	for _, v := range lanes { // want `ranging over lanes copies elements accessed with sync/atomic`
		s += v
	}
	return s
}

var untouched uint64

// plainOnly never enters the atomic protocol: plain access stays legal.
func plainOnly() uint64 {
	untouched++
	return untouched
}
