// Command tntsim runs the simulated TNT measurement campaign against one
// synthetic AS from the paper's Table 5 catalogue and writes the collected
// traces as JSON Lines, ready for cmd/arest.
//
// Usage:
//
//	tntsim -as 46 -vps 6 -targets 24 -seed 1 -o esnet.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"arest/internal/asgen"
	"arest/internal/exp"
	"arest/internal/obs"
	"arest/internal/tracestore"
)

func main() {
	asID := flag.Int("as", 46, "paper AS identifier (1-60, see Table 5)")
	vps := flag.Int("vps", 6, "number of vantage points")
	targets := flag.Int("targets", 24, "max targets per Anaximander plan")
	flows := flag.Int("flows", 1, "Paris flows per target")
	seed := flag.Int64("seed", 20250405, "campaign seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list the AS catalogue and exit")
	metricsOut := flag.String("metrics", "", "export campaign metrics to <file> (.json = JSON, else summary table, - = stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatalf("pprof: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, r := range asgen.Catalogue {
			excl := ""
			if asgen.ExcludedIDs[r.ID] {
				excl = " (excluded: insufficient coverage)"
			}
			fmt.Printf("#%-3d AS%-7d %-18s %-8s cisco=%-5v survey=%-5v%s\n",
				r.ID, r.ASN, r.Name, r.Category, r.CiscoConfirmed, r.SurveyConfirm, excl)
		}
		return
	}

	rec, ok := asgen.ByID(*asID)
	if !ok {
		fatalf("unknown AS identifier %d (1-60)", *asID)
	}
	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumVPs = *vps
	cfg.MaxTargets = *targets
	cfg.FlowsPerTarget = *flows
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
		cfg.Metrics = reg
	}

	res, err := exp.RunAS(rec, cfg)
	if err != nil {
		fatalf("campaign failed: %v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	meta := tracestore.Meta{ASN: rec.ASN, Name: rec.Name, Seed: *seed, VPs: *vps}
	if err := tracestore.Write(w, meta, res.Traces()); err != nil {
		fatalf("write traces: %v", err)
	}
	fmt.Fprintf(os.Stderr, "AS#%d %s: %d traces from %d VPs (%d distinct IPs observed)\n",
		rec.ID, rec.Name, res.TracesSent, *vps, res.DistinctIPs())
	if reg != nil {
		snap := reg.Snapshot()
		if err := snap.ExportFile(*metricsOut); err != nil {
			fatalf("metrics: %v", err)
		}
		if *metricsOut != "-" {
			fmt.Fprint(os.Stderr, snap.Summary())
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tntsim: "+format+"\n", args...)
	os.Exit(1)
}
