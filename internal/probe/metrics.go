package probe

import "arest/internal/obs"

// Metrics is the prober's bound instrument set ("probe" stage). A nil
// *Metrics is valid and records nothing, so Tracer code instruments
// unconditionally. All counters are event counts that depend only on what
// is probed, never on scheduling — they sit inside the determinism
// contract. The RTT histogram is deterministic too under the simulator
// (synthetic hop-count RTTs); against a real raw-socket Conn it is not.
type Metrics struct {
	sentUDP   *obs.Counter
	sentICMP  *obs.Counter
	replies     *obs.Counter
	retries     *obs.Counter
	gaps        *obs.Counter
	decodeErr   *obs.Counter
	exchangeErr *obs.Counter

	revealTriggers *obs.Counter
	revealSuccess  *obs.Counter
	revealedHops   *obs.Counter
	revealErr      *obs.Counter

	haltReached *obs.Counter
	haltGaps    *obs.Counter
	haltMaxTTL  *obs.Counter
	haltLoop    *obs.Counter
	haltError   *obs.Counter

	pings       *obs.Counter
	pingReplies *obs.Counter
	ipidSamples *obs.Counter
	ipidReplies *obs.Counter

	rttUs *obs.Histogram
}

// NewMetrics binds the probe instruments to reg; nil in, nil out.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		sentUDP:        reg.Counter("probe", "sent.udp"),
		sentICMP:       reg.Counter("probe", "sent.icmp"),
		replies:        reg.Counter("probe", "replies"),
		retries:        reg.Counter("probe", "retries"),
		gaps:           reg.Counter("probe", "gaps"),
		decodeErr:      reg.Counter("probe", "decode_error"),
		exchangeErr:    reg.Counter("probe", "exchange_errors"),
		revealTriggers: reg.Counter("probe", "reveal.triggers"),
		revealSuccess:  reg.Counter("probe", "reveal.successes"),
		revealedHops:   reg.Counter("probe", "reveal.hops"),
		revealErr:      reg.Counter("probe", "reveal.errors"),
		haltReached:    reg.Counter("probe", "halt.reached"),
		haltGaps:       reg.Counter("probe", "halt.gaps"),
		haltMaxTTL:     reg.Counter("probe", "halt.max_ttl"),
		haltLoop:       reg.Counter("probe", "halt.loop"),
		haltError:      reg.Counter("probe", "halt.error"),
		pings:          reg.Counter("probe", "pings"),
		pingReplies:    reg.Counter("probe", "ping_replies"),
		ipidSamples:    reg.Counter("probe", "ipid_samples"),
		ipidReplies:    reg.Counter("probe", "ipid_replies"),
		rttUs:          reg.Histogram("probe", "rtt_us"),
	}
}

func (m *Metrics) countSent(method Method) {
	if m == nil {
		return
	}
	if method == MethodICMP {
		m.sentICMP.Inc()
	} else {
		m.sentUDP.Inc()
	}
}

func (m *Metrics) countReply(rttMs float64) {
	if m == nil {
		return
	}
	m.replies.Inc()
	m.rttUs.Observe(uint64(rttMs * 1000))
}

func (m *Metrics) countRetry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *Metrics) countGap() {
	if m != nil {
		m.gaps.Inc()
	}
}

func (m *Metrics) countDecodeError() {
	if m != nil {
		m.decodeErr.Inc()
	}
}

func (m *Metrics) countExchangeError() {
	if m != nil {
		m.exchangeErr.Inc()
	}
}

func (m *Metrics) countRevealError() {
	if m != nil {
		m.revealErr.Inc()
	}
}

func (m *Metrics) countHalt(r HaltReason) {
	if m == nil {
		return
	}
	switch r {
	case HaltReached:
		m.haltReached.Inc()
	case HaltGaps:
		m.haltGaps.Inc()
	case HaltMaxTTL:
		m.haltMaxTTL.Inc()
	case HaltLoop:
		m.haltLoop.Inc()
	case HaltError:
		m.haltError.Inc()
	}
}

func (m *Metrics) countReveal(triggered bool, revealed int) {
	if m == nil {
		return
	}
	if triggered {
		m.revealTriggers.Inc()
	}
	if revealed > 0 {
		m.revealSuccess.Inc()
		m.revealedHops.Add(uint64(revealed))
	}
}

func (m *Metrics) countPing() {
	if m != nil {
		m.pings.Inc()
	}
}

func (m *Metrics) countPingReply() {
	if m != nil {
		m.pingReplies.Inc()
	}
}

func (m *Metrics) countIPIDSample() {
	if m != nil {
		m.ipidSamples.Inc()
	}
}

func (m *Metrics) countIPIDReply() {
	if m != nil {
		m.ipidReplies.Inc()
	}
}
