package rules

import (
	"fmt"
	"go/ast"
	"go/types"

	"arest/internal/lint"
)

// NilSafe builds the nilsafe analyzer for one package: every exported
// method with a pointer receiver to one of typeNames must begin with a
// nil-receiver guard, pinning the §8 guarantee that library code records
// metrics unconditionally against a possibly-nil registry or instrument.
//
// "Begins with" is checked semantically, not positionally: statements
// that never touch the receiver may precede the guard, but the first
// statement that does use the receiver must be either
//
//	if recv == nil { ... return ... }   // early exit, rest unguarded
//	if recv != nil { ... }              // whole use wrapped; nothing after may touch recv
//
// (the nil comparison may be one operand of a larger && / || condition).
func NilSafe(pkgPath string, typeNames []string) *lint.Analyzer {
	names := make(map[string]bool, len(typeNames))
	for _, n := range typeNames {
		names[n] = true
	}
	return &lint.Analyzer{
		Name: "nilsafe",
		Doc:  fmt.Sprintf("require nil-receiver guards on exported methods of %s instruments", pkgPath),
		Run: func(pass *lint.Pass) error {
			if pass.Pkg.Path() != pkgPath {
				return nil
			}
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
						continue
					}
					tn, recvObj := receiverInfo(pass, fd)
					if tn == "" || !names[tn] {
						continue
					}
					if recvObj == nil {
						continue // unnamed receiver: body cannot dereference it
					}
					checkGuard(pass, fd, tn, recvObj)
				}
			}
			return nil
		},
	}
}

// receiverInfo resolves a method's receiver: the pointed-to type name
// (empty for value receivers, which cannot be nil) and the receiver
// variable's object (nil when unnamed or blank).
func receiverInfo(pass *lint.Pass, fd *ast.FuncDecl) (typeName string, recv types.Object) {
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", nil
	}
	base, ok := ast.Unparen(star.X).(*ast.Ident)
	if !ok {
		return "", nil
	}
	if len(field.Names) == 1 && field.Names[0].Name != "_" {
		recv = pass.Info.Defs[field.Names[0]]
	}
	return base.Name, recv
}

// checkGuard verifies the guard discipline over the method body.
func checkGuard(pass *lint.Pass, fd *ast.FuncDecl, typeName string, recv types.Object) {
	report := func() {
		pass.Report(fd.Name.Pos(),
			"exported method (*%s).%s must begin with a nil-receiver guard (DESIGN.md §8: nil-safe instruments)",
			typeName, fd.Name.Name)
	}
	stmts := fd.Body.List
	for i, stmt := range stmts {
		if !usesObject(pass, stmt, recv) {
			continue
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Init != nil {
			report()
			return
		}
		switch {
		case hasNilCompare(pass, ifs.Cond, recv, true):
			// if recv == nil: the guard body must leave the function so
			// everything after runs with a non-nil receiver.
			if !terminates(ifs.Body) {
				report()
			}
			return
		case hasNilCompare(pass, ifs.Cond, recv, false):
			// if recv != nil { ... }: all receiver use must stay inside.
			for _, later := range stmts[i+1:] {
				if usesObject(pass, later, recv) {
					report()
					return
				}
			}
			return
		default:
			report()
			return
		}
	}
	// Method never touches its receiver: trivially nil-safe.
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(pass *lint.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// hasNilCompare reports whether cond contains, possibly inside && / || /
// parens, the comparison `recv == nil` (eq) or `recv != nil` (!eq).
func hasNilCompare(pass *lint.Pass, cond ast.Expr, recv types.Object, eq bool) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&", "||":
			return hasNilCompare(pass, e.X, recv, eq) || hasNilCompare(pass, e.Y, recv, eq)
		case "==", "!=":
			if (e.Op.String() == "==") != eq {
				return false
			}
			return isObjIdent(pass, e.X, recv) && isNil(pass, e.Y) ||
				isObjIdent(pass, e.Y, recv) && isNil(pass, e.X)
		}
	}
	return false
}

func isObjIdent(pass *lint.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

func isNil(pass *lint.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.ObjectOf(id).(*types.Nil)
	return isNilObj
}

// terminates reports whether a guard block always leaves the function:
// its last statement is a return or an unconditional panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
