// Package netsim is a deterministic simulator of IP/MPLS networks with
// Segment Routing (SR-MPLS) and LDP control planes. It forwards frames with
// genuine IP-TTL/LSE-TTL semantics (uniform and pipe models, ttl-propagate)
// and generates ICMP replies per router profile (RFC 4950 label-stack
// quoting on or off), so the four MPLS tunnel visibility classes of Donnet
// et al. — explicit, implicit, opaque, invisible — emerge from the
// mechanisms rather than being asserted.
//
// Vantage points and targets attach to edge routers as hosts; probes enter
// and replies leave the simulator as serialized IPv4 bytes, forcing the
// prober to run the same codec path a raw-socket tool would.
//
// # Concurrency model
//
// A Network has two phases. During construction (AddRouter, Connect,
// AddHost, Compute, policy assignment) it must be confined to one
// goroutine. After Compute returns, the control-plane state is read-only
// and Send may be called from any number of goroutines concurrently:
// the only mutable per-packet state is each router's IP-ID counter, an
// atomic packet count whose increments commute, so the counter state
// after any set of probes is independent of their interleaving, and the
// route/owner caches are sync.Maps. Policy callbacks (SRPolicy,
// LDPStackPolicy, EntropyPolicy) must be pure functions of their
// arguments for concurrent Sends to stay deterministic. Topology
// mutation (SetLinkState, AdvertisePrefix, ...) must not race with Send;
// re-run Compute afterwards.
package netsim

import (
	"net/netip"
	"sort"
	"sync/atomic"

	"arest/internal/mpls"
)

// RouterID identifies a router within a Network.
type RouterID int

// TunnelMode selects the intra-domain encapsulation an ingress LER applies
// to transit traffic.
type TunnelMode int

const (
	// ModeIP performs plain IP forwarding (no MPLS).
	ModeIP TunnelMode = iota
	// ModeLDP pushes LDP-learned labels (classic MPLS).
	ModeLDP
	// ModeSR pushes SR node-SID labels (SR-MPLS).
	ModeSR
)

func (m TunnelMode) String() string {
	switch m {
	case ModeIP:
		return "ip"
	case ModeLDP:
		return "ldp"
	case ModeSR:
		return "sr"
	default:
		return "?"
	}
}

// Profile captures the externally observable behaviour of a router that the
// measurement pipeline depends on.
type Profile struct {
	// RFC4950 controls whether time-exceeded messages quote the received
	// MPLS label stack (explicit/opaque tunnels need it).
	RFC4950 bool
	// TTLPropagate controls the ingress ttl-propagate knob: when true the
	// IP TTL is copied into the pushed LSE TTL (uniform model); when false
	// the LSE TTL is set to 255 and the tunnel hides its hops (pipe model).
	TTLPropagate bool
	// InitialTTLTimeExceeded and InitialTTLEchoReply are the initial TTL
	// values of generated ICMP messages; the pair is the router's
	// TTL-fingerprint signature (Vanaubel et al.).
	InitialTTLTimeExceeded uint8
	InitialTTLEchoReply    uint8
	// RespondsICMP false models silent routers (traceroute shows "*").
	RespondsICMP bool
	// RespondsEcho false models routers that drop pings; TTL-based
	// fingerprinting then lacks the echo-reply half of the signature and
	// cannot classify the router (the AS#46/ESnet situation).
	RespondsEcho bool
	// SNMPOpen true means the router appears in the SNMPv3 fingerprint
	// dataset with its exact vendor.
	SNMPOpen bool
	// ICMPLossProb is the probability that a generated ICMP reply is lost
	// (rate limiting, control-plane policers). Deterministic per probe:
	// retrying with a different IP-ID can succeed, exactly the behaviour
	// traceroute retries exploit.
	ICMPLossProb float64
	// ExplicitNull makes this router, as an LDP egress, advertise the
	// IPv4 explicit-null label (0) instead of implicit null: the
	// penultimate hop then swaps to label 0 rather than popping, and the
	// egress shows a reserved-label LSE in its quotes — a real traceroute
	// phenomenon AReST must not mistake for Segment Routing.
	ExplicitNull bool
}

// DefaultProfile returns the vendor's characteristic profile: initial-TTL
// signature pairs follow the network-fingerprinting literature, where Cisco
// and Huawei share <255,255> and are therefore indistinguishable by TTL.
func DefaultProfile(v mpls.Vendor) Profile {
	p := Profile{
		RFC4950:                true,
		TTLPropagate:           true,
		RespondsICMP:           true,
		RespondsEcho:           true,
		InitialTTLTimeExceeded: 255,
		InitialTTLEchoReply:    255,
	}
	switch v {
	case mpls.VendorCisco, mpls.VendorHuawei:
		// shared signature <255,255>
	case mpls.VendorJuniper:
		p.InitialTTLEchoReply = 64 // <255,64>
	case mpls.VendorNokia:
		p.InitialTTLTimeExceeded = 64 // <64,255>
	case mpls.VendorArista, mpls.VendorLinux, mpls.VendorMikroTik:
		p.InitialTTLTimeExceeded = 64
		p.InitialTTLEchoReply = 64 // <64,64>
	}
	return p
}

// RouterConfig describes a router to add to a Network.
type RouterConfig struct {
	Name   string
	ASN    int
	Vendor mpls.Vendor
	Profile
	// SREnabled programs the SR-MPLS control plane on this router.
	SREnabled bool
	// LDPEnabled programs LDP on this router.
	LDPEnabled bool
	// SRGB overrides the vendor default SRGB (zero value keeps default).
	SRGB mpls.LabelRange
	// SRLB overrides the vendor default SRLB (zero value keeps default).
	SRLB mpls.LabelRange
	// Mode is the encapsulation this router applies as ingress LER.
	Mode TunnelMode
}

// Router is a simulated router.
type Router struct {
	ID       RouterID
	Name     string
	ASN      int
	Vendor   mpls.Vendor
	Loopback netip.Addr
	Profile  Profile

	SREnabled  bool
	LDPEnabled bool
	SRGB       mpls.LabelRange
	SRLB       mpls.LabelRange
	Mode       TunnelMode

	// nodeIndex is the SR node-SID index; -1 when the router has none.
	nodeIndex int

	pool    *mpls.Pool              // dynamic label pool (LDP labels, Juniper adj SIDs)
	svcSIDs map[uint32]bool         // service SIDs terminating at this router
	adjSIDs map[RouterID]uint32     // neighbor -> adjacency SID label
	adjByL  map[uint32]RouterID     // adjacency SID label -> neighbor
	ldpIn   map[uint32]RouterID     // incoming LDP label -> FEC (egress router)
	ldpOut  map[RouterID]uint32     // FEC -> label this router advertised
	ifaces  map[RouterID]netip.Addr // neighbor -> local interface address

	// ipIDBase and ipIDStride parameterize the router's shared IP-ID
	// counter (monotone, wrapping), the signal MIDAR-style alias
	// resolution keys on: packet k carries ipIDBase + k*ipIDStride. The
	// stride models background traffic through the shared counter.
	ipIDBase   uint16
	ipIDStride uint16
	// ipIDCount is the live packet count behind the counter. It is the
	// only router state Send mutates; atomic adds commute, keeping
	// concurrent Sends deterministic in aggregate.
	ipIDCount atomic.Uint32
}

// NodeIndex returns the router's SR node-SID index, or -1.
func (r *Router) NodeIndex() int { return r.nodeIndex }

// InterfaceTo returns the router's interface address on the link to
// neighbor n, if such a link exists.
func (r *Router) InterfaceTo(n RouterID) (netip.Addr, bool) {
	a, ok := r.ifaces[n]
	return a, ok
}

// Interfaces returns all interface addresses of the router: the loopback
// first, then the link interfaces in ascending address order, so the
// slice is identical run to run regardless of map iteration.
func (r *Router) Interfaces() []netip.Addr {
	out := make([]netip.Addr, 0, len(r.ifaces)+1)
	out = append(out, r.Loopback)
	for _, a := range r.ifaces {
		out = append(out, a)
	}
	sort.Slice(out[1:], func(i, j int) bool { return out[1+i].Less(out[1+j]) })
	return out
}

// AdjacencySID returns the adjacency SID this router allocated for the IGP
// link to neighbor n.
func (r *Router) AdjacencySID(n RouterID) (uint32, bool) {
	l, ok := r.adjSIDs[n]
	return l, ok
}

// LDPLabel returns the label this router advertised for the FEC of egress
// router e.
func (r *Router) LDPLabel(e RouterID) (uint32, bool) {
	l, ok := r.ldpOut[e]
	return l, ok
}

// Host is an end host attached to an edge router: a vantage point or a
// probing target.
type Host struct {
	Addr    netip.Addr
	Gateway RouterID
}

type neighbor struct {
	id     RouterID
	weight int
}
