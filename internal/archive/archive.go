// Package archive implements the durable storage boundary between the
// measurement and analysis layers of the campaign pipeline: a versioned,
// length-prefixed, CRC-checked binary record stream (warts-style) holding
// one AS's full campaign — metadata, per-VP traces, fingerprint
// annotations, alias sets, bdrmap borders, and simulator ground truth.
//
// The on-disk format is a magic line followed by a sequence of framed
// records and a mandatory end trailer:
//
//	magic   "arest.archive.v1\n" or "arest.archive.v2\n"  (17 bytes)
//	record  type    uint8
//	        length  uint32 big-endian        (payload bytes)
//	        payload JSON                     (schema fixed per type)
//	        crc     uint32 big-endian        (CRC-32C over type+length+payload)
//	...
//	end     a TypeEnd record whose payload carries the record and trace
//	        counts; a stream without it is truncated (an interrupted
//	        writer), which readers report as ErrTruncated.
//
// v1 and v2 share the framing and record schemas; they differ only in
// canonical record order. v1 interleaves traces before the annotation
// records; v2 moves all side data (fingerprints, aliases, borders, ground
// truth, degradation) ahead of the trace run, so a one-pass streaming
// consumer can seal its annotation state before the first trace arrives.
// Readers accept both.
//
// Writer and Reader stream one record at a time, so a campaign never needs
// to be wholly resident; Stream in stream.go folds records into a Visitor
// one at a time, and the Data aggregate in data.go is a convenience for
// pipelines that do want everything in memory.
package archive

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic opens every v1 archive. The trailing newline keeps accidental
// `cat` of an archive from gluing into a terminal line and gives format
// sniffers an unambiguous 17-byte prefix.
const Magic = "arest.archive.v1\n"

// MagicV2 opens every v2 archive (same framing as v1, side data before
// traces). Deliberately the same length as Magic so sniffing and version
// detection read one fixed-size prefix.
const MagicV2 = "arest.archive.v2\n"

// Type tags one framed record.
type Type uint8

// Record types of format v1. Values are part of the on-disk format and
// must never be renumbered.
const (
	TypeMeta        Type = 1 // campaign metadata (one per archive, first)
	TypeVP          Type = 2 // one vantage point (index, address, trace count)
	TypeTrace       Type = 3 // one probe.Trace with its VP index
	TypeFingerprint Type = 4 // one interface vendor annotation (snmp or ttl)
	TypeAliasSet    Type = 5 // one resolved alias set
	TypeBorder      Type = 6 // one bdrmap owner annotation
	TypeSREnabled   Type = 7 // one ground-truth SR-enabled interface
	TypeDegraded    Type = 8 // measurement degradation summary (at most one)
	TypeEnd         Type = 0x7f
)

func (t Type) String() string {
	switch t {
	case TypeMeta:
		return "meta"
	case TypeVP:
		return "vp"
	case TypeTrace:
		return "trace"
	case TypeFingerprint:
		return "fingerprint"
	case TypeAliasSet:
		return "alias-set"
	case TypeBorder:
		return "border"
	case TypeSREnabled:
		return "sr-enabled"
	case TypeDegraded:
		return "degraded"
	case TypeEnd:
		return "end"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// MaxPayload bounds a single record's payload. It is far above anything
// the pipeline produces; its purpose is to keep a corrupted or hostile
// length field from driving a multi-gigabyte allocation.
const MaxPayload = 1 << 26

var (
	// ErrBadMagic reports a stream that starts with neither Magic nor
	// MagicV2.
	ErrBadMagic = errors.New("archive: bad magic (not an arest.archive stream)")
	// ErrCorrupt reports a CRC mismatch or malformed frame.
	ErrCorrupt = errors.New("archive: corrupt record")
	// ErrTruncated reports a stream that ended without the end trailer —
	// the signature of an interrupted writer.
	ErrTruncated = errors.New("archive: truncated stream (no end trailer)")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer emits one archive. Records are framed and checksummed as they
// are written; Close appends the end trailer. A Writer is not safe for
// concurrent use.
type Writer struct {
	bw      *bufio.Writer
	records int
	traces  int
	closed  bool
	err     error
}

// NewWriter writes the v1 magic and returns a streaming record writer.
// Record order is the caller's responsibility; WriteData produces the
// canonical order for each version.
func NewWriter(w io.Writer) (*Writer, error) { return newWriterVersion(w, 1) }

func newWriterVersion(w io.Writer, version int) (*Writer, error) {
	magic := Magic
	if version == 2 {
		magic = MagicV2
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("archive: write magic: %w", err)
	}
	return &Writer{bw: bw}, nil
}

// endPayload is the trailer body: record and trace counts let readers
// verify they saw the whole stream.
type endPayload struct {
	Records int `json:"records"`
	Traces  int `json:"traces"`
}

// writeRecord frames one payload. The CRC covers the type byte, the length
// field, and the payload, so a flipped bit anywhere in the frame is caught.
func (w *Writer) writeRecord(t Type, payload any) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("archive: write after Close")
	}
	body, err := json.Marshal(payload)
	if err != nil {
		w.err = fmt.Errorf("archive: encode %s: %w", t, err)
		return w.err
	}
	if len(body) > MaxPayload {
		w.err = fmt.Errorf("archive: %s payload %d bytes exceeds cap %d", t, len(body), MaxPayload)
		return w.err
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	crc := crc32.Update(0, castagnoli, hdr[:])
	crc = crc32.Update(crc, castagnoli, body)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.Write(body); err != nil {
		w.err = err
		return err
	}
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	if _, err := w.bw.Write(tail[:]); err != nil {
		w.err = err
		return err
	}
	w.records++
	if t == TypeTrace {
		w.traces++
	}
	return nil
}

// Close writes the end trailer and flushes. The archive is complete only
// after Close returns nil.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	end := endPayload{Records: w.records, Traces: w.traces}
	if err := w.writeRecord(TypeEnd, end); err != nil {
		return err
	}
	w.closed = true
	return w.bw.Flush()
}

// Reader streams records out of a v1 or v2 archive.
type Reader struct {
	br      *bufio.Reader
	version int
	records int
	traces  int
	done    bool
	offset  int64
}

// NewReader checks the magic and returns a streaming record reader. Both
// container versions are accepted; Version reports which one was found.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	version := 0
	switch string(magic[:]) {
	case Magic:
		version = 1
	case MagicV2:
		version = 2
	default:
		return nil, ErrBadMagic
	}
	return &Reader{br: br, version: version, offset: int64(len(Magic))}, nil
}

// Version returns the container version (1 or 2) declared by the magic.
func (r *Reader) Version() int { return r.version }

// Next returns the next record's type and raw JSON payload. It returns
// io.EOF after the end trailer has been consumed, ErrTruncated if the
// stream stops without one, and ErrCorrupt on a CRC or framing error. The
// payload buffer is owned by the caller.
func (r *Reader) Next() (Type, []byte, error) {
	if r.done {
		return 0, nil, io.EOF
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, ErrTruncated
		}
		return 0, nil, fmt.Errorf("%w: header at offset %d: %v", ErrTruncated, r.offset, err)
	}
	t := Type(hdr[0])
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: %s length %d exceeds cap at offset %d", ErrCorrupt, t, n, r.offset)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r.br, body); err != nil {
		return 0, nil, fmt.Errorf("%w: payload at offset %d: %v", ErrTruncated, r.offset, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r.br, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: checksum at offset %d: %v", ErrTruncated, r.offset, err)
	}
	crc := crc32.Update(0, castagnoli, hdr[:])
	crc = crc32.Update(crc, castagnoli, body)
	if got := binary.BigEndian.Uint32(tail[:]); got != crc {
		return 0, nil, fmt.Errorf("%w: %s at offset %d: crc %08x, want %08x", ErrCorrupt, t, r.offset, got, crc)
	}
	r.offset += int64(5 + len(body) + 4)
	if t == TypeEnd {
		var end endPayload
		if err := json.Unmarshal(body, &end); err != nil {
			return 0, nil, fmt.Errorf("%w: end trailer: %v", ErrCorrupt, err)
		}
		if end.Records != r.records || end.Traces != r.traces {
			return 0, nil, fmt.Errorf("%w: end trailer counts %d records/%d traces, saw %d/%d",
				ErrCorrupt, end.Records, end.Traces, r.records, r.traces)
		}
		r.done = true
		return t, body, nil
	}
	r.records++
	if t == TypeTrace {
		r.traces++
	}
	return t, body, nil
}
