package netsim

import (
	"net/netip"
	"testing"

	"arest/internal/mpls"
	"arest/internal/pkt"
)

// interworkNet builds an AS where an SR region and an LDP region meet at a
// border router:
//
//	vp -- GW -- PE1(SR) -- S1(SR) -- B(SR+LDP) -- L1(LDP) -- PE2(LDP) -- target
//
// All routers are Cisco with default profiles (explicit tunnels).
type interworkNet struct {
	net            *Network
	vp, target     netip.Addr
	gw, pe1, s1, b *Router
	l1, pe2        *Router
}

func buildInterwork(t *testing.T, mappingServer bool) *interworkNet {
	t.Helper()
	n := New(11)
	n.MappingServer = mappingServer
	prof := DefaultProfile(mpls.VendorCisco)
	gw := n.AddRouter(RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: DefaultProfile(mpls.VendorLinux), Mode: ModeIP})
	sr := func(name string) *Router {
		return n.AddRouter(RouterConfig{Name: name, ASN: 200, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: ModeSR})
	}
	ldp := func(name string) *Router {
		return n.AddRouter(RouterConfig{Name: name, ASN: 200, Vendor: mpls.VendorCisco,
			Profile: prof, LDPEnabled: true, Mode: ModeLDP})
	}
	pe1 := sr("pe1")
	s1 := sr("s1")
	b := n.AddRouter(RouterConfig{Name: "b", ASN: 200, Vendor: mpls.VendorCisco,
		Profile: prof, SREnabled: true, LDPEnabled: true, Mode: ModeSR})
	l1 := ldp("l1")
	pe2 := ldp("pe2")
	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, s1.ID, 10)
	n.Connect(s1.ID, b.ID, 10)
	n.Connect(b.ID, l1.ID, 10)
	n.Connect(l1.ID, pe2.ID, 10)
	vp := a("172.16.1.10")
	target := a("100.1.1.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	n.Compute()
	return &interworkNet{net: n, vp: vp, target: target, gw: gw, pe1: pe1, s1: s1, b: b, l1: l1, pe2: pe2}
}

func (iw *interworkNet) trace(t *testing.T, dst netip.Addr) []*hopReply {
	t.Helper()
	var hops []*hopReply
	for ttl := 1; ttl <= 12; ttl++ {
		d, err := iw.net.Send(iw.vp, udpProbe(iw.vp, dst, uint8(ttl), 33434))
		if err != nil {
			t.Fatalf("send ttl=%d: %v", ttl, err)
		}
		h := parseReply(t, d.Reply)
		hops = append(hops, h)
		if h != nil && h.icmpType == pkt.ICMPDestUnreachable {
			break
		}
	}
	return hops
}

func TestSRToLDPInterworkingWithMappingServer(t *testing.T) {
	iw := buildInterwork(t, true)
	hops := iw.trace(t, iw.target)
	// gw, pe1, s1, b, l1, pe2, host = 7 hops, all visible (explicit).
	if len(hops) != 7 {
		t.Fatalf("got %d hops, want 7", len(hops))
	}
	// s1 and b carry the SRMS-advertised node SID of pe2 (same label,
	// shared SRGB).
	srLabel := iw.s1.SRGB.Lo + uint32(iw.pe2.NodeIndex())
	for i, idx := range []int{2, 3} {
		h := hops[idx]
		if h.stack == nil || h.stack[0].Label != srLabel {
			t.Errorf("SR hop %d: stack %v, want label %d", i, h.stack, srLabel)
		}
	}
	// l1 carries its own LDP label for FEC pe2 (the border swapped SR→LDP).
	l1Label, ok := iw.l1.LDPLabel(iw.pe2.ID)
	if !ok {
		t.Fatal("l1 has no LDP binding for pe2")
	}
	if hops[4].stack == nil || hops[4].stack[0].Label != l1Label {
		t.Errorf("l1 stack = %v, want LDP label %d", hops[4].stack, l1Label)
	}
	if mpls.CiscoSRGB.Contains(l1Label) {
		t.Errorf("LDP label %d unexpectedly inside SRGB", l1Label)
	}
	// PHP: pe2 receives unlabeled (l1 is the penultimate hop).
	if hops[5].stack != nil {
		t.Errorf("pe2 should be unlabeled after implicit null: %v", hops[5].stack)
	}
}

func TestSRToLDPWithoutMappingServerFallsBackToIP(t *testing.T) {
	iw := buildInterwork(t, false)
	hops := iw.trace(t, iw.target)
	if len(hops) != 7 {
		t.Fatalf("got %d hops, want 7", len(hops))
	}
	// pe2 has no prefix SID and pe1/s1 have no LDP: the SR region forwards
	// plain IP. The border b, which does run LDP, re-tunnels into the LDP
	// region, so only l1 shows a label (pe2 is PHP-popped).
	for _, i := range []int{0, 1, 2, 3, 5} { // gw, pe1, s1, b, pe2
		if h := hops[i]; h != nil && h.stack != nil {
			t.Errorf("hop %d labeled: %v", i, h.stack)
		}
	}
	l1Label, _ := iw.l1.LDPLabel(iw.pe2.ID)
	if hops[4].stack == nil || hops[4].stack[0].Label != l1Label {
		t.Errorf("l1 stack = %v, want LDP label %d", hops[4].stack, l1Label)
	}
}

func TestLDPToSRInterworking(t *testing.T) {
	// Reverse direction: target behind pe1 (the SR side), probing from a
	// vantage point behind pe2's region. LDP→SR needs no mapping server.
	iw := buildInterwork(t, false)
	vp2 := a("172.16.2.10")
	gw2 := iw.net.AddRouter(RouterConfig{Name: "gw2", ASN: 65001, Vendor: mpls.VendorLinux,
		Profile: DefaultProfile(mpls.VendorLinux), Mode: ModeIP})
	iw.net.Connect(gw2.ID, iw.pe2.ID, 10)
	iw.net.AddHost(vp2, gw2.ID)
	target2 := a("100.1.1.40")
	iw.net.AddHost(target2, iw.pe1.ID)
	iw.net.Compute()

	var hops []*hopReply
	for ttl := 1; ttl <= 12; ttl++ {
		d, err := iw.net.Send(vp2, udpProbe(vp2, target2, uint8(ttl), 33434))
		if err != nil {
			t.Fatal(err)
		}
		h := parseReply(t, d.Reply)
		hops = append(hops, h)
		if h != nil && h.icmpType == pkt.ICMPDestUnreachable {
			break
		}
	}
	// gw2, pe2, l1, b, s1, pe1, host = 7 hops.
	if len(hops) != 7 {
		t.Fatalf("got %d hops, want 7: %+v", len(hops), hops)
	}
	// l1 and b carry LDP labels (distinct, locally significant).
	l1Label, _ := iw.l1.LDPLabel(iw.pe1.ID)
	bLabel, _ := iw.b.LDPLabel(iw.pe1.ID)
	if hops[2].stack == nil || hops[2].stack[0].Label != l1Label {
		t.Errorf("l1 stack = %v, want %d", hops[2].stack, l1Label)
	}
	if hops[3].stack == nil || hops[3].stack[0].Label != bLabel {
		t.Errorf("b stack = %v, want %d", hops[3].stack, bLabel)
	}
	// s1 carries pe1's node SID: the border swapped LDP→SR.
	srLabel := iw.s1.SRGB.Lo + uint32(iw.pe1.NodeIndex())
	if hops[4].stack == nil || hops[4].stack[0].Label != srLabel {
		t.Errorf("s1 stack = %v, want SR label %d", hops[4].stack, srLabel)
	}
	// pe1 also shows the SR label (no PHP for SR).
	if hops[5].stack == nil || hops[5].stack[0].Label != srLabel {
		t.Errorf("pe1 stack = %v, want SR label %d", hops[5].stack, srLabel)
	}
}

func TestMappingServerGrantsSIDsToLDPRouters(t *testing.T) {
	with := buildInterwork(t, true)
	without := buildInterwork(t, false)
	if with.pe2.NodeIndex() < 0 {
		t.Error("mapping server did not assign a SID to the LDP-only router")
	}
	if without.pe2.NodeIndex() >= 0 {
		t.Error("LDP-only router has a SID without a mapping server")
	}
	if with.pe1.NodeIndex() < 0 || without.pe1.NodeIndex() < 0 {
		t.Error("SR router missing node SID")
	}
}

func TestBorderRouterGeneratesLDPBindings(t *testing.T) {
	iw := buildInterwork(t, false)
	// The border B runs both planes and must hold LDP bindings; the pure
	// SR router s1 is adjacent only to SR/border routers... s1's neighbor
	// b is SR-capable, so s1 needs no LDP bindings.
	if _, ok := iw.b.LDPLabel(iw.pe1.ID); !ok {
		t.Error("border router lacks LDP binding for SR-side FEC")
	}
	if _, ok := iw.s1.LDPLabel(iw.pe2.ID); ok {
		t.Error("pure SR router with no LDP neighbors generated LDP bindings")
	}
}
