package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"arest/internal/lint"
)

// FoldComplete builds the foldcomplete analyzer: a struct marked
// //arest:mergeable is a commutative accumulator (DESIGN.md §13 — the
// streaming Detect fold), and the bug class it pins is "add a field,
// forget the fold": a histogram added to exp.Agg but not to Agg.Merge
// silently drops every shard's contribution after the first. The checks,
// per marked struct:
//
//   - a Merge method must exist, and every field of the struct must be
//     referenced somewhere in its body (selector access or composite-
//     literal key);
//   - every map-typed field must also be referenced on the zero/reset
//     path — a New* constructor returning the struct or a Reset method —
//     because writing through a forgotten nil map panics on the first
//     merged record.
//
// Reference collection is structural, not flow-sensitive: mentioning the
// field is what the analyzer can promise, which is exactly the tripwire
// that catches the forgotten-field class.
func FoldComplete() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "foldcomplete",
		Doc:  "every field of an //arest:mergeable struct must be folded by Merge and map fields initialized on the zero/reset path",
		Run:  runFoldComplete,
	}
}

func runFoldComplete(pass *lint.Pass) error {
	marked, _ := lint.Mergeables(pass.Fset, pass.Files) // malformed directives reported by the Runner
	for _, ts := range marked {
		checkMergeable(pass, ts)
	}
	return nil
}

func checkMergeable(pass *lint.Pass, ts *ast.TypeSpec) {
	tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return // Mergeables already rejected non-structs
	}

	merge := methodDecl(pass, tn, "Merge")
	if merge == nil || merge.Body == nil {
		pass.Report(ts.Pos(),
			"//arest:mergeable struct %s has no Merge method to fold it (DESIGN.md §13)", ts.Name.Name)
		return
	}
	mergeRefs := map[*types.Var]bool{}
	lint.FieldRefs(pass.Info, merge.Body, mergeRefs)

	zeroRefs := map[*types.Var]bool{}
	for _, fd := range zeroPathDecls(pass, tn) {
		lint.FieldRefs(pass.Info, fd.Body, zeroRefs)
	}

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !mergeRefs[f] {
			pass.Report(f.Pos(),
				"field %s.%s is not folded by Merge: merged shards silently drop it (DESIGN.md §13)",
				ts.Name.Name, f.Name())
		}
		if _, isMap := f.Type().Underlying().(*types.Map); isMap && !zeroRefs[f] {
			pass.Report(f.Pos(),
				"map field %s.%s is never initialized on the zero/reset path (New*/Reset): writes through it panic (DESIGN.md §13)",
				ts.Name.Name, f.Name())
		}
	}
}

// methodDecl finds the declared method named name on tn's type (pointer or
// value receiver) among the pass's files.
func methodDecl(pass *lint.Pass, tn *types.TypeName, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name {
				continue
			}
			if recvTypeName(pass, fd) == tn {
				return fd
			}
		}
	}
	return nil
}

// recvTypeName resolves a method's receiver to its type name, or nil.
func recvTypeName(pass *lint.Pass, fd *ast.FuncDecl) *types.TypeName {
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// zeroPathDecls returns the functions forming tn's zero/reset path: Reset
// methods on the type, and package functions named New* whose results
// include the type (by value or pointer).
func zeroPathDecls(pass *lint.Pass, tn *types.TypeName) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil {
				if fd.Name.Name == "Reset" && recvTypeName(pass, fd) == tn {
					out = append(out, fd)
				}
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "New") {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			res := fn.Type().(*types.Signature).Results()
			for i := 0; i < res.Len(); i++ {
				t := res.At(i).Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj() == tn {
					out = append(out, fd)
					break
				}
			}
		}
	}
	return out
}
