package pkt

import (
	"bytes"
	"errors"
	"testing"

	"arest/internal/mpls"
)

func v6Quote(t *testing.T) []byte {
	t.Helper()
	ip := &IPv6{NextHeader: ProtoICMPv6, HopLimit: 1,
		Src: a6("2001:db8::1"), Dst: a6("2001:db8::2"), Payload: []byte("probe6")}
	b, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestICMPv6EchoRoundTrip(t *testing.T) {
	src, dst := a6("2001:db8::1"), a6("2001:db8::2")
	in := &ICMPv6{Type: ICMPv6EchoRequest, ID: 99, Seq: 3, Body: []byte("ping6")}
	b, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalICMPv6(src, dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != ICMPv6EchoRequest || out.ID != 99 || out.Seq != 3 || string(out.Body) != "ping6" {
		t.Errorf("round trip: %+v", out)
	}
}

func TestICMPv6ChecksumBindsPseudoHeader(t *testing.T) {
	src, dst := a6("2001:db8::1"), a6("2001:db8::2")
	in := &ICMPv6{Type: ICMPv6EchoReply, ID: 1, Body: []byte("x")}
	b, _ := in.Marshal(src, dst)
	if _, err := UnmarshalICMPv6(src, a6("2001:db8::3"), b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("wrong pseudo-header accepted: %v", err)
	}
	b[4] ^= 0xff
	if _, err := UnmarshalICMPv6(src, dst, b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted message accepted: %v", err)
	}
}

func TestICMPv6TimeExceededWithMPLS(t *testing.T) {
	// A 6PE LSR's time-exceeded: quoted IPv6 original + RFC 4950 labels.
	src, dst := a6("2001:db8::9"), a6("2001:db8::1")
	quote := v6Quote(t)
	stack := mpls.Stack{{Label: 24017, TTL: 253}, {Label: mpls.LabelIPv6ExplicitNull, TTL: 253}}
	obj, err := NewMPLSExtension(stack)
	if err != nil {
		t.Fatal(err)
	}
	in := &ICMPv6{Type: ICMPv6TimeExceeded, Body: quote, Extensions: []ExtensionObject{obj}}
	b, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Length attribute in 8-octet units at byte 4.
	if b[4] != origDatagramPadLen/8 {
		t.Errorf("length attribute = %d, want %d", b[4], origDatagramPadLen/8)
	}
	out, err := UnmarshalICMPv6(src, dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Body, quote) {
		t.Errorf("quote mangled: %d vs %d bytes", len(out.Body), len(quote))
	}
	raw, ok := out.MPLSStack()
	if !ok {
		t.Fatal("MPLS object lost")
	}
	got, _, err := mpls.UnmarshalStack(raw)
	if err != nil {
		t.Fatal(err)
	}
	// The 6PE signature: bottom label is IPv6 explicit null (2).
	if got.Depth() != 2 || got.Bottom().Label != mpls.LabelIPv6ExplicitNull {
		t.Errorf("stack = %v, want 6PE shape", got)
	}
	// The quoted datagram is IPv6 and parses.
	q, err := UnmarshalIPv6(out.Body)
	if err != nil {
		t.Fatal(err)
	}
	if q.HopLimit != 1 {
		t.Errorf("quoted hop limit = %d", q.HopLimit)
	}
}

func TestICMPv6PlainError(t *testing.T) {
	src, dst := a6("2001:db8::9"), a6("2001:db8::1")
	in := &ICMPv6{Type: ICMPv6DestUnreachable, Code: 4, Body: v6Quote(t)}
	b, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalICMPv6(src, dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsError() || len(out.Extensions) != 0 {
		t.Errorf("plain error: %+v", out)
	}
}

func TestICMPv6Validation(t *testing.T) {
	if _, err := (&ICMPv6{Type: ICMPv6EchoRequest}).Marshal(a6("10.0.0.1"), a6("2001:db8::1")); err == nil {
		t.Error("IPv4 endpoint accepted")
	}
	if _, err := (&ICMPv6{Type: 42}).Marshal(a6("2001:db8::1"), a6("2001:db8::2")); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := UnmarshalICMPv6(a6("2001:db8::1"), a6("2001:db8::2"), make([]byte, 4)); !errors.Is(err, ErrShortPacket) {
		t.Error("short message accepted")
	}
}
