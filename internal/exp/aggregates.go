// Aggregate queries for one AS: every table and figure row the experiments
// consume, computed from the folded Agg (agg.go). These are pure reads —
// the per-trace work already happened inside the Detect fold — and none of
// them touch the retained PerVP/Paths/Results, so they are identical in
// compact and retained mode.
package exp

import (
	"sort"

	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/probe"
)

// FlagCounts tallies detected segments per flag (Fig. 8's numerator).
func (r *ASResult) FlagCounts() map[core.Flag]int {
	out := map[core.Flag]int{}
	for f, n := range r.Agg.Flags {
		out[f] = n
	}
	return out
}

// FlagShares normalizes FlagCounts to proportions (Fig. 8).
func (r *ASResult) FlagShares() map[core.Flag]float64 {
	counts := r.Agg.Flags
	total := 0
	for _, n := range counts {
		total += n
	}
	out := map[core.Flag]float64{}
	if total == 0 {
		return out
	}
	for f, n := range counts {
		out[f] = float64(n) / float64(total)
	}
	return out
}

// HasStrongSR reports whether the AS shows any strong SR evidence.
func (r *ASResult) HasStrongSR() bool {
	for f, n := range r.Agg.Flags {
		if f.Strong() && n > 0 {
			return true
		}
	}
	return false
}

// HasAnySR reports whether any flag (including LSO) fired.
func (r *ASResult) HasAnySR() bool {
	for _, n := range r.Agg.Flags {
		if n > 0 {
			return true
		}
	}
	return false
}

// AreaTraceShares returns the fraction of the AS's paths touching each
// area (Fig. 10a). A path can contribute to several areas.
func (r *ASResult) AreaTraceShares() map[core.Area]float64 {
	out := map[core.Area]float64{}
	if r.Agg.PathsInAS == 0 {
		return out
	}
	for a, n := range r.Agg.AreaTraces {
		out[a] = float64(n) / float64(r.Agg.PathsInAS)
	}
	return out
}

// AreaInterfaceCounts returns the number of distinct interfaces attributed
// to each area (Fig. 10b); an interface seen in several areas counts in
// the strongest one (SR > MPLS > IP) — the fold keeps the running maximum
// per address.
func (r *ASResult) AreaInterfaceCounts() map[core.Area]int {
	out := map[core.Area]int{}
	for _, ifc := range r.Agg.Ifaces {
		out[ifc.Area]++
	}
	return out
}

// DistinctIPs counts distinct interfaces observed inside the AS.
func (r *ASResult) DistinctIPs() int {
	return len(r.Agg.Ifaces)
}

// TunnelPatterns tallies interworking chaining patterns (Fig. 11) across
// the AS's labeled tunnels.
func (r *ASResult) TunnelPatterns() map[core.Pattern]int {
	out := map[core.Pattern]int{}
	for p, n := range r.Agg.Patterns {
		out[p] = n
	}
	return out
}

// CloudSizes returns the LDP and SR cloud sizes inside interworking
// tunnels (Fig. 12), in ascending size order (the fold keeps histograms,
// not occurrence order; every consumer sorts or averages anyway).
func (r *ASResult) CloudSizes() (ldp, sr []int) {
	return expandHist(r.Agg.CloudLDP), expandHist(r.Agg.CloudSR)
}

// expandHist unrolls a size histogram into a sorted multiset.
func expandHist(h map[int]int) []int {
	var keys []int
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out []int
	for _, k := range keys {
		for i := 0; i < h[k]; i++ {
			out = append(out, k)
		}
	}
	return out
}

// StackDepthDist returns the distribution of LSE stack depths over hops in
// strong-flag segments (strong=true) or over classic-MPLS/LSO hops
// (strong=false) — Fig. 9a and 9b.
func (r *ASResult) StackDepthDist(strong bool) map[int]int {
	src := r.Agg.StackOther
	if strong {
		src = r.Agg.StackStrong
	}
	out := map[int]int{}
	for d, n := range src {
		out[d] = n
	}
	return out
}

// TunnelTypeCounts classifies every tunnel observed in the AS's raw traces
// by visibility class (Fig. 13a).
func (r *ASResult) TunnelTypeCounts() map[probe.TunnelType]int {
	out := map[probe.TunnelType]int{}
	for t, n := range r.Agg.TunnelTypes {
		out[t] = n
	}
	return out
}

// ExplicitPathShare is the fraction of paths showing at least one explicit
// tunnel (Fig. 13b).
func (r *ASResult) ExplicitPathShare() float64 {
	if r.Agg.Traces == 0 {
		return 0
	}
	return float64(r.Agg.ExplicitPaths) / float64(r.Agg.Traces)
}

// FingerprintSourceCounts returns how many of the AS's observed interfaces
// were identified per technique (Fig. 14).
func (r *ASResult) FingerprintSourceCounts() map[fingerprint.Source]int {
	out := map[fingerprint.Source]int{}
	for _, ifc := range r.Agg.Ifaces {
		out[ifc.Source]++
	}
	return out
}

// VendorCounts returns per-vendor device counts identified through SNMPv3
// (Fig. 15's heatmap row for this AS).
func (r *ASResult) VendorCounts() map[mpls.Vendor]int {
	out := map[mpls.Vendor]int{}
	for _, ifc := range r.Agg.Ifaces {
		if ifc.Source != fingerprint.SourceSNMP {
			continue
		}
		out[ifc.Vendor]++
	}
	return out
}

// LabelBuckets are the Fig. 16 label-range rows.
var LabelBuckets = []struct {
	Name string
	R    mpls.LabelRange
}{
	{"0-15999", mpls.LabelRange{Lo: 0, Hi: 15999}},
	{"16000-23999", mpls.LabelRange{Lo: 16000, Hi: 23999}},
	{"24000-47999", mpls.LabelRange{Lo: 24000, Hi: 47999}},
	{"48000-99999", mpls.LabelRange{Lo: 48000, Hi: 99999}},
	{"100000-299999", mpls.LabelRange{Lo: 100000, Hi: 299999}},
	{"300000-899999", mpls.LabelRange{Lo: 300000, Hi: 899999}},
	{"900000-1048575", mpls.LabelRange{Lo: 900000, Hi: 1048575}},
}

// LabelRangeHist counts observed 20-bit labels per bucket (Fig. 16).
func (r *ASResult) LabelRangeHist() map[string]int {
	out := map[string]int{}
	for b, n := range r.Agg.Labels {
		out[b] = n
	}
	return out
}

// VPAccumulation returns the cumulative count of unique hop addresses as
// vantage points are added in order (Fig. 17), reconstructed from each
// responder's first-observing VP index.
func (r *ASResult) VPAccumulation() []int {
	if r.Agg.NumVPs == 0 {
		return nil
	}
	out := make([]int, r.Agg.NumVPs)
	for _, v := range r.Agg.FirstVP {
		out[v]++
	}
	for i := 1; i < len(out); i++ {
		out[i] += out[i-1]
	}
	return out
}

// GroundTruth scores AReST's per-flag segment inferences against the
// simulator's ground truth (Table 3): a segment is a true positive when
// every hop belongs to an SR-enabled router, a false positive otherwise.
// False negatives count SR interfaces that were observed with labels in
// transit but never covered by any flag, attributed to the catch-all CO
// row (the flag that should have caught sequences). The truth set is the
// archived SREnabled export, so the score is computable offline from a
// replayed archive.
func (r *ASResult) GroundTruth() map[core.Flag]eval.Confusion {
	out := map[core.Flag]eval.Confusion{}
	for f, c := range r.Agg.Confusion {
		out[f] = c
	}
	fn := 0
	for addr, ifc := range r.Agg.Ifaces {
		if ifc.LabeledTransit && r.SREnabled[addr] && !ifc.Flagged {
			fn++
		}
	}
	c := out[core.FlagCO]
	c.FN += fn
	out[core.FlagCO] = c
	return out
}

// SortedFlagKeys lists the flags present in a count map, strongest first.
func SortedFlagKeys(m map[core.Flag]int) []core.Flag {
	var keys []core.Flag
	for f := range m {
		keys = append(keys, f)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Verdict applies the Sec. 6.3 interpretive framework to the AS: strong
// flags, LSO corroboration, and external confirmation combine into one
// deployment verdict.
func (r *ASResult) Verdict() core.Verdict {
	strong, lso := 0, 0
	for f, n := range r.Agg.Flags {
		if f.Strong() {
			strong += n
		} else if f == core.FlagLSO {
			lso += n
		}
	}
	return core.JudgeCounts(strong, lso, r.Record.Claimed())
}

// InferSRGB estimates the AS's configured SRGB from the labels of
// sequence-flagged segments the fold collected (see core.InferSRGB).
func (r *ASResult) InferSRGB() (core.SRGBEstimate, bool) {
	return core.InferSRGBLabels(r.Agg.SeqLabels)
}
