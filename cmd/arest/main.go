// Command arest runs the AReST detection methodology over a stored
// campaign and reports detected SR-MPLS segments, per-flag statistics,
// and interworking tunnels. The input format is sniffed: an
// arest.archive.v1 record stream (as cmd/tntsim now emits) replays the
// full campaign — traces plus the archived fingerprint and bdrmap
// annotations; the legacy JSON-Lines trace format still works and
// analyzes bare traces.
//
// Usage:
//
//	arest -i campaign.arest [-v]
//	arest -i traces.jsonl [-fingerprints fp.txt] [-v]
//
// The optional fingerprint file maps interface addresses to vendors, one
// "addr vendor [snmp|ttl]" per line; its entries override any archived
// annotations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"

	"arest/internal/archive"
	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/obs"
	"arest/internal/par"
	"arest/internal/probe"
	"arest/internal/tracestore"
)

func main() {
	in := flag.String("i", "", "input trace file (JSON lines; default stdin)")
	fpFile := flag.String("fingerprints", "", "vendor fingerprint file (addr vendor [snmp|ttl])")
	verbose := flag.Bool("v", false, "print every detected segment")
	jsonOut := flag.Bool("json", false, "emit one JSON report per trace instead of tables")
	noSuffix := flag.Bool("no-suffix", false, "disable suffix-based label matching")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	metricsOut := flag.String("metrics", "", "export analysis metrics to <file> (.json = JSON, else summary table, - = stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatalf("pprof: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("open %s: %v", *in, err)
		}
		defer f.Close()
		r = f
	}
	meta, traces, snmp, ttl, asOf, err := loadCampaign(r)
	if err != nil {
		fatalf("read traces: %v", err)
	}
	if len(traces) == 0 {
		fatalf("no traces in input")
	}

	// CLI-supplied fingerprints override archived annotations.
	if *fpFile != "" {
		fsnmp, fttl, err := loadFingerprints(*fpFile)
		if err != nil {
			fatalf("fingerprints: %v", err)
		}
		for a, v := range fsnmp {
			snmp[a] = v
		}
		for a, v := range fttl {
			ttl[a] = v
		}
	}
	ann := fingerprint.NewAnnotator(snmp, ttl)

	det := core.NewDetector()
	det.SuffixMatching = !*noSuffix

	// Analyze is a pure function of each trace, so the passes fan out into
	// index-addressed slices; all reporting below walks them in input
	// order, keeping the output identical at any worker count.
	paths := make([]*core.Path, len(traces))
	results := make([]*core.Result, len(traces))
	analyzeDone := reg.Span("core", "stage.analyze").Start()
	par.ForEach(par.Workers(*workers), len(traces), func(i int) {
		paths[i] = core.BuildPath(traces[i], ann, asOf)
		results[i] = det.Analyze(paths[i])
	})
	analyzeDone()
	if reg != nil {
		// Flag accounting: pure functions of the result set, schedule-
		// independent at any worker count.
		reg.Counter("core", "traces").Add(uint64(len(traces)))
		for _, res := range results {
			if res.HasSR() {
				reg.Counter("core", "traces_with_sr").Inc()
			}
			reg.Counter("core", "segments").Add(uint64(len(res.Segments)))
			for _, s := range res.Segments {
				reg.Counter("core", "flag."+s.Flag.String()).Inc()
			}
			for _, tun := range res.Tunnels() {
				reg.Counter("core", "pattern."+string(tun.Pattern)).Inc()
			}
		}
		snap := reg.Snapshot()
		if err := snap.ExportFile(*metricsOut); err != nil {
			fatalf("metrics: %v", err)
		}
		if *metricsOut != "-" {
			fmt.Fprint(os.Stderr, snap.Summary())
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, res := range results {
			if err := enc.Encode(core.NewReport(res)); err != nil {
				fatalf("encode report: %v", err)
			}
		}
		return
	}

	flagCounts := map[core.Flag]int{}
	patterns := map[core.Pattern]int{}
	tracesWithSR := 0
	for i, tr := range traces {
		p := paths[i]
		res := results[i]
		if res.HasSR() {
			tracesWithSR++
		}
		for _, s := range res.Segments {
			flagCounts[s.Flag]++
			if *verbose {
				fmt.Printf("%s -> %s  %-4s stars=%d label=%d hops=%d", tr.VP, tr.Dst,
					s.Flag, s.Flag.Stars(), s.Label, s.Len())
				if s.SuffixMatch {
					fmt.Print(" (suffix)")
				}
				fmt.Println()
				for k := s.Start; k <= s.End; k++ {
					fmt.Printf("    %-15s %s\n", p.Hops[k].Addr, p.Hops[k].Stack)
				}
			}
		}
		for _, tun := range res.Tunnels() {
			patterns[tun.Pattern]++
		}
	}

	if meta.Name != "" {
		fmt.Printf("campaign: %s (AS%d), %d traces\n\n", meta.Name, meta.ASN, len(traces))
	} else {
		fmt.Printf("%d traces\n\n", len(traces))
	}
	t := eval.Table{Title: "AReST detection summary", Headers: []string{"Flag", "Stars", "Segments"}}
	total := 0
	for _, f := range core.AllFlags {
		t.AddRow(f.String(), strings.Repeat("*", f.Stars()), flagCounts[f])
		total += flagCounts[f]
	}
	fmt.Print(t.Render())
	fmt.Printf("total segments: %d; traces with strong SR evidence: %d/%d\n\n",
		total, tracesWithSR, len(traces))

	pt := eval.Table{Title: "Tunnel structure", Headers: []string{"Pattern", "Tunnels"}}
	for _, p := range []core.Pattern{core.PatternFullSR, core.PatternFullLDP, core.PatternSRLDP,
		core.PatternLDPSR, core.PatternLDPSRLDP, core.PatternSRLDPSR, core.PatternOther} {
		if patterns[p] > 0 {
			pt.AddRow(string(p), patterns[p])
		}
	}
	fmt.Print(pt.Render())
}

// loadCampaign sniffs the input format and loads the stored campaign. For
// an arest.archive.v1 stream it returns the traces together with the
// archived side-channels — fingerprint annotations and bdrmap owners — so
// detection replays with the same context the measurement campaign had.
// For legacy JSON Lines it returns bare traces. The vendor maps are always
// non-nil so callers can merge overrides into them.
func loadCampaign(r io.Reader) (meta tracestore.Meta, traces []*probe.Trace,
	snmp, ttl map[netip.Addr]mpls.Vendor, asOf func(netip.Addr) int, err error) {
	br := bufio.NewReader(r)
	if archive.Sniff(br) {
		data, err := archive.ReadData(br)
		if err != nil {
			return tracestore.Meta{}, nil, nil, nil, nil, err
		}
		meta = tracestore.Meta{
			ASN:  data.Meta.Record.ASN,
			Name: data.Meta.Record.Name,
			Seed: data.Meta.Seed,
			VPs:  len(data.VPs),
		}
		if len(data.Borders) > 0 {
			borders := data.Borders
			asOf = func(a netip.Addr) int { return borders[a] }
		}
		return meta, data.Traces(), data.SNMP, data.TTL, asOf, nil
	}
	meta, traces, err = tracestore.Read(br)
	return meta, traces, map[netip.Addr]mpls.Vendor{}, map[netip.Addr]mpls.Vendor{}, nil, err
}

// loadFingerprints parses "addr vendor [snmp|ttl]" lines.
func loadFingerprints(path string) (snmp, ttl map[netip.Addr]mpls.Vendor, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	snmp = map[netip.Addr]mpls.Vendor{}
	ttl = map[netip.Addr]mpls.Vendor{}
	vendors := map[string]mpls.Vendor{
		"cisco": mpls.VendorCisco, "juniper": mpls.VendorJuniper,
		"huawei": mpls.VendorHuawei, "nokia": mpls.VendorNokia,
		"arista": mpls.VendorArista, "linux": mpls.VendorLinux,
		"mikrotik": mpls.VendorMikroTik, "cisco/huawei": mpls.VendorCiscoHuawei,
		"ciscohuawei": mpls.VendorCiscoHuawei,
	}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("line %d: want 'addr vendor [snmp|ttl]'", line)
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", line, err)
		}
		v, ok := vendors[strings.ToLower(fields[1])]
		if !ok {
			return nil, nil, fmt.Errorf("line %d: unknown vendor %q", line, fields[1])
		}
		src := "snmp"
		if len(fields) >= 3 {
			src = strings.ToLower(fields[2])
		}
		switch src {
		case "snmp", "snmpv3":
			snmp[addr] = v
		case "ttl":
			ttl[addr] = v
		default:
			return nil, nil, fmt.Errorf("line %d: unknown source %q", line, fields[2])
		}
	}
	return snmp, ttl, sc.Err()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "arest: "+format+"\n", args...)
	os.Exit(1)
}
