package pkt

import (
	"encoding/binary"
	"errors"
	"testing"

	"arest/internal/mpls"
)

// marshalWithExt builds a time-exceeded message carrying the given
// extension objects (RFC 4884 form: quote padded to 128 bytes).
func marshalWithExt(t *testing.T, objs []ExtensionObject) []byte {
	t.Helper()
	in := &ICMP{Type: ICMPTimeExceeded, Code: CodeTTLExceeded,
		Body: buildQuote(t), Extensions: objs}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// reseal recomputes the ICMP message checksum after a mutation.
func reseal(b []byte) {
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
}

// TestICMPLengthFieldDisagreesWithPadding drives the RFC 4884 length
// attribute through its edge cases: word counts that disagree with the
// actual padded-datagram layout must be rejected, not silently misparsed as
// extension bytes (or vice versa).
func TestICMPLengthFieldDisagreesWithPadding(t *testing.T) {
	cases := []struct {
		name  string
		words uint8 // value written into the length field
		ok    bool
	}{
		// RFC 4884 Sec. 5.1: when the length attribute is used, the
		// original datagram field must be zero-padded to at least 128
		// bytes, i.e. 32 words.
		{"below minimum (1 word)", 1, false},
		{"below minimum (31 words)", 31, false},
		{"exact minimum (32 words)", 32, true},
		// Claims more original-datagram bytes than the message carries:
		// the extension structure would start beyond the buffer.
		{"beyond message (60 words)", 60, false},
	}
	obj, err := NewMPLSExtension(mpls.Stack{{Label: 16005, TTL: 253}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := marshalWithExt(t, []ExtensionObject{obj})
			b[5] = tc.words
			reseal(b)
			out, err := UnmarshalICMP(b)
			if tc.ok {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if _, found := out.MPLSStack(); !found {
					t.Error("MPLS stack lost")
				}
				return
			}
			if !errors.Is(err, ErrBadExtension) {
				t.Fatalf("err = %v, want ErrBadExtension", err)
			}
		})
	}
}

// TestICMPZeroChecksumExtension pins the RFC 4884 Sec. 7 compatibility
// rule: an all-zero extension checksum means "not computed" and the
// structure must be accepted without verification.
func TestICMPZeroChecksumExtension(t *testing.T) {
	obj, err := NewMPLSExtension(mpls.Stack{{Label: 24001, TTL: 254}})
	if err != nil {
		t.Fatal(err)
	}
	b := marshalWithExt(t, []ExtensionObject{obj})
	extOff := icmpHeaderLen + origDatagramPadLen
	b[extOff+2], b[extOff+3] = 0, 0 // zero the extension checksum
	reseal(b)
	out, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatalf("zero-checksum extension rejected: %v", err)
	}
	s, ok := out.MPLSStack()
	if !ok || s[0].Label != 24001 {
		t.Fatalf("stack = %v, ok = %v", s, ok)
	}

	// A non-zero but wrong checksum stays an error.
	b[extOff+2] = 0xAA
	reseal(b)
	if _, err := UnmarshalICMP(b); !errors.Is(err, ErrBadExtension) {
		t.Fatalf("corrupt extension checksum: err = %v, want ErrBadExtension", err)
	}
}

// TestICMPMPLSObjectNotFirst walks a multi-object extension structure where
// the RFC 4950 label stack is not the leading object: routers may emit
// interface-information objects (RFC 5837) ahead of it.
func TestICMPMPLSObjectNotFirst(t *testing.T) {
	stack := mpls.Stack{{Label: 16010, TTL: 252}, {Label: 100, TTL: 252}}
	mplsObj, err := NewMPLSExtension(stack)
	if err != nil {
		t.Fatal(err)
	}
	objs := []ExtensionObject{
		{Class: 2, CType: 1, Payload: []byte{0xde, 0xad, 0xbe, 0xef}}, // RFC 5837-style
		{Class: 2, CType: 3, Payload: []byte("eth0")},
		mplsObj,
	}
	out, err := UnmarshalICMP(marshalWithExt(t, objs))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Extensions) != 3 {
		t.Fatalf("extensions = %d, want 3", len(out.Extensions))
	}
	got, ok := out.MPLSStack()
	if !ok {
		t.Fatal("MPLS stack not found behind leading objects")
	}
	if got.Depth() != 2 || got[0].Label != 16010 || got[1].Label != 100 {
		t.Errorf("stack = %v", got)
	}
}

// TestICMPObjectLengthExactlyHeader exercises the smallest legal object: a
// length field of exactly objectHeaderLen (4), i.e. an empty payload. It
// must parse as a zero-byte object, and one byte less must be rejected.
func TestICMPObjectLengthExactlyHeader(t *testing.T) {
	empty := ExtensionObject{Class: 9, CType: 9}
	out, err := UnmarshalICMP(marshalWithExt(t, []ExtensionObject{empty}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Extensions) != 1 {
		t.Fatalf("extensions = %d, want 1", len(out.Extensions))
	}
	o := out.Extensions[0]
	if o.Class != 9 || o.CType != 9 || len(o.Payload) != 0 {
		t.Errorf("object = %+v", o)
	}
	if _, ok := out.MPLSStack(); ok {
		t.Error("empty object misread as MPLS stack")
	}

	// Object length below the header length is structurally impossible.
	b := marshalWithExt(t, []ExtensionObject{empty})
	extOff := icmpHeaderLen + origDatagramPadLen
	objOff := extOff + extHeaderLen
	binary.BigEndian.PutUint16(b[objOff:], objectHeaderLen-1)
	// Re-seal both checksums: extension first, then message.
	b[extOff+2], b[extOff+3] = 0, 0
	binary.BigEndian.PutUint16(b[extOff+2:], Checksum(b[extOff:]))
	reseal(b)
	if _, err := UnmarshalICMP(b); !errors.Is(err, ErrBadExtension) {
		t.Fatalf("undersized object: err = %v, want ErrBadExtension", err)
	}
}

// FuzzUnmarshalICMP fuzzes the strict parser with seeds covering every
// structural branch: echo, plain errors, RFC 4884+4950 extensions, the
// zero-checksum compatibility form, and known-malformed inputs. The parser
// must never panic and must round-trip whatever it accepts.
func FuzzUnmarshalICMP(f *testing.F) {
	quote := buildQuoteF(f)
	seed := func(m *ICMP) {
		b, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(&ICMP{Type: ICMPEchoRequest, ID: 1, Seq: 2, Body: []byte("ping")})
	seed(&ICMP{Type: ICMPEchoReply, ID: 1, Seq: 2})
	seed(&ICMP{Type: ICMPTimeExceeded, Code: CodeTTLExceeded, Body: quote})
	seed(&ICMP{Type: ICMPDestUnreachable, Code: CodePortUnreachable, Body: quote})
	mplsObj, err := NewMPLSExtension(mpls.Stack{{Label: 16005, TTL: 253}, {Label: 99, TTL: 253}})
	if err != nil {
		f.Fatal(err)
	}
	seed(&ICMP{Type: ICMPTimeExceeded, Body: quote, Extensions: []ExtensionObject{mplsObj}})
	seed(&ICMP{Type: ICMPTimeExceeded, Body: quote, Extensions: []ExtensionObject{
		{Class: 2, CType: 1, Payload: []byte{1, 2, 3, 4}}, mplsObj, {Class: 9, CType: 9}}})
	// Zero-checksum extension structure.
	withExt, err := (&ICMP{Type: ICMPTimeExceeded, Body: quote,
		Extensions: []ExtensionObject{mplsObj}}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	zc := append([]byte(nil), withExt...)
	extOff := icmpHeaderLen + origDatagramPadLen
	zc[extOff+2], zc[extOff+3] = 0, 0
	reseal(zc)
	f.Add(zc)
	// Malformed seeds: short, bad checksum, bad length field, bad version.
	f.Add([]byte{})
	f.Add([]byte{11, 0, 0, 0})
	f.Add([]byte{11, 0, 0xFF, 0xFF, 0, 0, 0, 0})
	badLen := append([]byte(nil), withExt...)
	badLen[5] = 1
	reseal(badLen)
	f.Add(badLen)
	badVer := append([]byte(nil), withExt...)
	badVer[extOff] = 0x10
	reseal(badVer)
	f.Add(badVer)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := UnmarshalICMP(b)
		if err != nil {
			return
		}
		// Accepted messages must re-marshal (byte equality does not hold in
		// general: unpadded quotes re-pad differently), and the re-marshaled
		// form must parse again with identical structure.
		b2, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted message does not re-marshal: %v (%s)", err, m)
		}
		m2, err := UnmarshalICMP(b2)
		if err != nil {
			t.Fatalf("re-marshaled message rejected: %v (%s)", err, m)
		}
		if m.Type != m2.Type || m.Code != m2.Code || len(m.Extensions) != len(m2.Extensions) {
			t.Fatalf("round trip drifted: %s vs %s", m, m2)
		}
	})
}

// buildQuoteF is buildQuote for fuzz targets (testing.F has no t.Helper).
func buildQuoteF(f *testing.F) []byte {
	src, dst := addr("10.0.0.1"), addr("192.0.2.9")
	u := &UDP{SrcPort: 33434, DstPort: 33435, Payload: []byte("probe-xyz")}
	ub, err := u.Marshal(src, dst)
	if err != nil {
		f.Fatal(err)
	}
	ip := &IPv4{TTL: 1, Protocol: ProtoUDP, ID: 77, Src: src, Dst: dst, Payload: ub}
	b, err := ip.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	return b
}
