package probe

import "net/netip"

// opaqueTTLFloor is the quoted-LSE TTL above which a label quote can only
// come from a pipe-model tunnel (LSE TTL initialized to 255 at the ingress
// rather than copied from the IP TTL).
const opaqueTTLFloor = 200

// reveal implements TNT-style revelation: when the return-path length
// (RTLA) jumps by more than one between consecutive visible hops, or an
// opaque LSE quote is present, hidden hops are suspected in between. TNT
// then traces directly toward the downstream hop's interface address (DPR):
// interface prefixes carry no LDP/SR FEC, so those probes are forwarded as
// plain IP and expose the tunnel interior — without LSEs, exactly as the
// paper notes for invisible tunnels.
func (t *Tracer) reveal(tr *Trace) {
	visible := make(map[netip.Addr]bool)
	for i := range tr.Hops {
		if tr.Hops[i].Responded() {
			visible[tr.Hops[i].Addr] = true
		}
	}
	// Walk hop pairs; splice in revealed hops as we find them.
	for i := 0; i < len(tr.Hops)-1; i++ {
		a, b := &tr.Hops[i], &tr.Hops[i+1]
		if !a.Responded() || !b.Responded() || b.Revealed {
			continue
		}
		suspected := 0
		if jump := returnPathLen(b.ReplyTTL) - returnPathLen(a.ReplyTTL); jump > 1 {
			suspected = jump - 1
		}
		if b.HasStack() && b.Stack[0].TTL > opaqueTTLFloor {
			if n := 255 - int(b.Stack[0].TTL); n > suspected {
				suspected = n
			}
		}
		if suspected == 0 {
			continue
		}
		hidden := t.directPathRevelation(b.Addr, visible)
		t.Metrics.countReveal(true, len(hidden))
		if len(hidden) == 0 {
			continue
		}
		for j := range hidden {
			hidden[j].Revealed = true
			hidden[j].TTL = a.TTL // shares the gap between a and b
			visible[hidden[j].Addr] = true
		}
		spliced := make([]Hop, 0, len(tr.Hops)+len(hidden))
		spliced = append(spliced, tr.Hops[:i+1]...)
		spliced = append(spliced, hidden...)
		spliced = append(spliced, tr.Hops[i+1:]...)
		tr.Hops = spliced
		i += len(hidden) // continue after the spliced region
	}
}

// directPathRevelation traces toward the trigger address and returns the
// responding hops that precede it and are not already visible in the main
// trace: the hidden tunnel interior.
func (t *Tracer) directPathRevelation(trigger netip.Addr, visible map[netip.Addr]bool) []Hop {
	aux := &Tracer{Conn: t.Conn, VP: t.VP, MaxTTL: t.MaxTTL, MaxGaps: t.MaxGaps,
		BasePort: t.BasePort, Reveal: false, Metrics: t.Metrics}
	tr, err := aux.Trace(trigger, 0)
	if err != nil || !tr.Reached() {
		return nil
	}
	// Locate the trigger in the auxiliary trace, then collect the
	// contiguous run of new hops immediately before it.
	end := -1
	for i := range tr.Hops {
		if tr.Hops[i].Addr == trigger {
			end = i
			break
		}
	}
	if end <= 0 {
		return nil
	}
	start := end
	for start > 0 && tr.Hops[start-1].Responded() && !visible[tr.Hops[start-1].Addr] {
		start--
	}
	if start == end {
		return nil
	}
	out := make([]Hop, end-start)
	copy(out, tr.Hops[start:end])
	return out
}
