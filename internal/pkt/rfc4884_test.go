package pkt

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestAppendPaddedOriginalPadsShortQuote(t *testing.T) {
	orig := []byte{1, 2, 3, 4, 5}
	got := appendPaddedOriginal(nil, orig)
	if len(got) != origDatagramPadLen {
		t.Fatalf("padded length = %d, want %d", len(got), origDatagramPadLen)
	}
	if !bytes.Equal(got[:5], orig) {
		t.Fatalf("quote prefix = %x", got[:5])
	}
	for i, b := range got[5:] {
		if b != 0 {
			t.Fatalf("padding byte %d = %#x, want 0", 5+i, b)
		}
	}
}

func TestAppendPaddedOriginalTruncatesLongQuote(t *testing.T) {
	orig := make([]byte, origDatagramPadLen+40)
	for i := range orig {
		orig[i] = byte(i)
	}
	got := appendPaddedOriginal(nil, orig)
	if len(got) != origDatagramPadLen {
		t.Fatalf("padded length = %d, want %d", len(got), origDatagramPadLen)
	}
	if !bytes.Equal(got, orig[:origDatagramPadLen]) {
		t.Fatal("truncated quote differs from the original's prefix")
	}
}

// A recycled buffer full of garbage must not show through the zero padding.
func TestAppendPaddedOriginalOverwritesDirtyScratch(t *testing.T) {
	scratch := bytes.Repeat([]byte{0xa5}, origDatagramPadLen)
	got := appendPaddedOriginal(scratch[:0], []byte{9, 9})
	for i, b := range got[2:] {
		if b != 0 {
			t.Fatalf("stale byte %#x leaked at offset %d", b, 2+i)
		}
	}
}

func TestTrimOriginalIPv4(t *testing.T) {
	p := &IPv4{TTL: 5, Protocol: ProtoUDP, Src: addr("10.0.0.1"),
		Dst: addr("10.0.0.2"), Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	padded := appendPaddedOriginal(nil, wire)
	got := trimOriginal(padded)
	if !bytes.Equal(got, wire) {
		t.Fatalf("trim = %d bytes, want the %d-byte quote back", len(got), len(wire))
	}
	// Zero-copy: the trimmed slice must alias the padded field.
	if &got[0] != &padded[0] {
		t.Fatal("trimOriginal must not copy")
	}
}

func TestTrimOriginalIPv6(t *testing.T) {
	p := &IPv6{NextHeader: ProtoICMPv6, HopLimit: 3, Src: a6("2001:db8::1"),
		Dst: a6("2001:db8::2"), Payload: []byte{1, 2, 3, 4}}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	padded := appendPaddedOriginal(nil, wire)
	if got := trimOriginal(padded); !bytes.Equal(got, wire) {
		t.Fatalf("v6 trim = %d bytes, want %d", len(got), len(wire))
	}
}

func TestQuotedLenKeepsUnparseableQuotes(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"short":             {0x45, 0},
		"bad version":       bytes.Repeat([]byte{0x75}, 40),
		"v4 total too big":  append([]byte{0x45, 0, 0xff, 0xff}, make([]byte, 36)...),
		"v4 total under 20": append([]byte{0x45, 0, 0, 4}, make([]byte, 36)...),
	}
	for name, b := range cases {
		if got := quotedLen(b); got != len(b) {
			t.Errorf("%s: quotedLen = %d, want whole field %d", name, got, len(b))
		}
	}
}

func TestQuotedLenTruncatedV6(t *testing.T) {
	// A v6 header whose payload length points past the field keeps the
	// whole field rather than inventing bytes.
	b := make([]byte, IPv6HeaderLen)
	b[0] = 6 << 4
	binary.BigEndian.PutUint16(b[4:], 100)
	if got := quotedLen(b); got != len(b) {
		t.Fatalf("quotedLen = %d, want %d", got, len(b))
	}
}
