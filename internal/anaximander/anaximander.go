// Package anaximander reproduces the target-selection pipeline of the
// Anaximander AS-mapping framework as used by the paper: collect BGP RIBs,
// build an initial pool of targets expected to transit the AS of interest,
// prune it to reduce probing load, and schedule the survivors into an
// ordered probing list.
package anaximander

import (
	"net/netip"
	"sort"

	"arest/internal/asgen"
)

// RIB is a synthetic BGP routing information base: originated prefixes with
// their origin ASN, as a route collector would expose them.
type RIB struct {
	Origin map[netip.Prefix]int
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB { return &RIB{Origin: make(map[netip.Prefix]int)} }

// Add records one originated prefix.
func (r *RIB) Add(p netip.Prefix, asn int) { r.Origin[p] = asn }

// OriginOf returns the origin ASN of the longest prefix covering a.
func (r *RIB) OriginOf(a netip.Addr) (int, bool) {
	best := -1
	asn := 0
	for p, o := range r.Origin {
		if p.Contains(a) && p.Bits() > best {
			best = p.Bits()
			asn = o
		}
	}
	return asn, best >= 0
}

// CollectRIB simulates pulling RIBs from route collectors for a synthetic
// world: the target AS originates its customer /24s and an infrastructure
// aggregate covering its router address space.
func CollectRIB(w *asgen.World) *RIB {
	rib := NewRIB()
	// Customer prefixes (one /24 per PE, as asgen advertises them).
	for k := range w.Edges {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(w.Record.ID % 250), byte(k), 0}), 24)
		rib.Add(p, w.Record.ASN)
	}
	// Infrastructure aggregate: derive the 10.x.0.0/16 block from any
	// router loopback.
	if len(w.Routers) > 0 {
		lb := w.Routers[0].Loopback.As4()
		rib.Add(netip.PrefixFrom(netip.AddrFrom4([4]byte{lb[0], lb[1], 0, 0}), 16), w.Record.ASN)
	}
	// Vantage-point gateway ASes originate their own blocks.
	for _, r := range w.Net.Routers() {
		if r.ASN == w.Record.ASN {
			continue
		}
		lb := r.Loopback.As4()
		rib.Add(netip.PrefixFrom(netip.AddrFrom4([4]byte{lb[0], lb[1], 0, 0}), 16), r.ASN)
	}
	return rib
}

// Plan is an ordered probing list for one AS of interest.
type Plan struct {
	ASN     int
	Targets []netip.Addr
}

// Options tunes target selection.
type Options struct {
	// MaxTargets caps the plan size (0 = unlimited).
	MaxTargets int
	// PerPrefix is how many addresses to draw per originated prefix
	// (Anaximander's pruning keeps this small; default 1).
	PerPrefix int
}

// BuildPlan selects and schedules targets for the AS of interest from the
// RIB: one pool entry per originated prefix (skipping sub-prefixes already
// covered by a selected super-prefix — the pruning step), ordered by
// prefix for a deterministic schedule.
func BuildPlan(rib *RIB, asn int, opts Options) *Plan {
	perPrefix := opts.PerPrefix
	if perPrefix <= 0 {
		perPrefix = 1
	}
	var prefixes []netip.Prefix
	for p, o := range rib.Origin {
		if o == asn {
			prefixes = append(prefixes, p)
		}
	}
	// Deterministic order: shorter prefixes (aggregates) first, then by
	// address.
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Bits() != prefixes[j].Bits() {
			return prefixes[i].Bits() < prefixes[j].Bits()
		}
		return prefixes[i].Addr().Less(prefixes[j].Addr())
	})
	// Pruning: drop prefixes covered by an already-selected one.
	var kept []netip.Prefix
	for _, p := range prefixes {
		covered := false
		for _, k := range kept {
			if k.Bits() < p.Bits() && k.Contains(p.Addr()) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, p)
		}
	}
	plan := &Plan{ASN: asn}
	for _, p := range kept {
		a := p.Addr()
		for i := 0; i < perPrefix; i++ {
			a = a.Next() // .1, .2, ... — avoid the network address
			plan.Targets = append(plan.Targets, a)
			if opts.MaxTargets > 0 && len(plan.Targets) >= opts.MaxTargets {
				return plan
			}
		}
	}
	return plan
}

// Shuffled returns a copy of the target list in an order derived from the
// given VP index, so each vantage point probes the same targets in a
// different order (the paper shuffles per VP to avoid appearing as an
// attack).
func (p *Plan) Shuffled(vpIndex int) []netip.Addr {
	out := make([]netip.Addr, len(p.Targets))
	copy(out, p.Targets)
	// Deterministic Fisher-Yates keyed on the VP index.
	state := uint64(vpIndex)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for i := len(out) - 1; i > 0; i-- {
		j := next(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
