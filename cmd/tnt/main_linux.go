//go:build linux

// Command tnt is a real-Internet TNT-style traceroute built on the same
// probing engine the simulator exercises: Paris-stable UDP probes over raw
// sockets, MPLS label-stack extraction from RFC 4950 ICMP extensions,
// tunnel classification, and optional MDA-style multipath discovery.
//
// Requires CAP_NET_RAW (or root):
//
//	sudo tnt -t 192.0.2.1 [-maxttl 32] [-timeout 2s] [-mda] [-reveal]
//
// Shutdown: the first SIGINT/SIGTERM cancels the trace within one probe
// exchange (the receive wait is sliced, so a quiet path cannot delay it)
// and exits with status 3; a second signal aborts immediately. -deadline
// bounds the whole run the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"

	"arest/internal/core"
	"arest/internal/fingerprint"
	"arest/internal/lifecycle"
	"arest/internal/probe"
)

func main() {
	target := flag.String("t", "", "target IPv4 address")
	maxTTL := flag.Int("maxttl", 32, "maximum TTL")
	timeout := flag.Duration("timeout", 2*time.Second, "per-probe timeout")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the whole run; on expiry the trace is cancelled and the exit status is 3")
	flow := flag.Int("flow", 0, "Paris flow identifier")
	mda := flag.Bool("mda", false, "run MDA-style multipath discovery instead of one trace")
	maxFlows := flag.Int("mda-flows", 32, "flow budget for -mda")
	reveal := flag.Bool("reveal", false, "enable TNT revelation (extra probing)")
	arest := flag.Bool("arest", true, "run AReST detection on the trace")
	flag.Parse()

	if *target == "" {
		fatalf("usage: tnt -t <ipv4> (see -h)")
	}
	dst, err := netip.ParseAddr(*target)
	if err != nil || !dst.Is4() {
		fatalf("bad target %q: need an IPv4 address", *target)
	}
	src, err := localAddr(dst)
	if err != nil {
		fatalf("resolve local address: %v", err)
	}

	sigs, stopNotify := lifecycle.Notify()
	defer stopNotify()
	parent := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		parent, cancel = context.WithTimeout(parent, *deadline)
		defer cancel()
	}
	ctx, stopSig := lifecycle.Context(parent, sigs, func() {
		fmt.Fprintln(os.Stderr, "tnt: second signal: aborting immediately")
		os.Exit(lifecycle.ExitFailure)
	})
	defer stopSig()

	tracer, conn, err := probe.NewRawTracer(src, *timeout)
	if err != nil {
		fatalf("%v (raw sockets need CAP_NET_RAW)", err)
	}
	defer conn.Close()
	tracer.MaxTTL = *maxTTL
	tracer.Reveal = *reveal

	if *mda {
		m, err := tracer.DiscoverMultipath(ctx, dst, *maxFlows)
		if err != nil {
			exitErr("multipath", err)
		}
		fmt.Printf("multipath to %s (%d flows):\n", dst, m.Flows)
		for ttl := 1; ttl <= len(m.Hops); ttl++ {
			fmt.Printf("%3d ", ttl)
			for _, a := range m.Hops[ttl-1] {
				fmt.Printf(" %s", a)
			}
			fmt.Println()
		}
		fmt.Printf("max width: %d\n", m.MaxWidth())
		return
	}

	tr, err := tracer.Trace(ctx, dst, uint16(*flow))
	if err != nil {
		exitErr("trace", err)
	}
	fmt.Print(tr)
	for _, tun := range probe.ClassifyTunnels(tr) {
		fmt.Printf("tunnel: %s at hops %d..%d (hidden %d)\n",
			tun.Type, tun.Start+1, tun.End+1, tun.HiddenLen)
	}
	if *arest {
		ttl, err := fingerprint.CollectTTL(ctx, []*probe.Trace{tr}, tracer, 1, nil)
		if err != nil {
			exitErr("fingerprint", err)
		}
		ann := fingerprint.NewAnnotator(nil, ttl)
		res := core.NewDetector().Analyze(core.BuildPath(tr, ann, nil))
		for _, s := range res.Segments {
			fmt.Printf("AReST: %s (%d stars) label=%d over %d hops\n",
				s.Flag, s.Flag.Stars(), s.Label, s.Len())
		}
		if len(res.Segments) == 0 {
			fmt.Println("AReST: no SR-MPLS signals")
		}
	}
}

// exitErr reports a stage failure, distinguishing a resumable interrupt
// (signal or -deadline, exit 3) from a real error (exit 1).
func exitErr(stage string, err error) {
	fmt.Fprintf(os.Stderr, "tnt: %s: %v\n", stage, err)
	if lifecycle.Interrupted(err) {
		os.Exit(lifecycle.ExitInterrupted)
	}
	os.Exit(lifecycle.ExitFailure)
}

// localAddr discovers the local source address the kernel would use to
// reach dst (no packets are sent: UDP connect only resolves the route).
func localAddr(dst netip.Addr) (netip.Addr, error) {
	c, err := net.Dial("udp4", net.JoinHostPort(dst.String(), "33434"))
	if err != nil {
		return netip.Addr{}, err
	}
	defer c.Close()
	ap, err := netip.ParseAddrPort(c.LocalAddr().String())
	if err != nil {
		return netip.Addr{}, err
	}
	return ap.Addr(), nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tnt: "+format+"\n", args...)
	os.Exit(1)
}
