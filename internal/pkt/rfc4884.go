package pkt

import "encoding/binary"

// This file holds the RFC 4884 original-datagram helpers shared by the
// ICMPv4 and ICMPv6 codecs. Both protocols pad the quoted datagram to a
// fixed 128-byte field when extension objects follow it, and both strip
// that zero padding on decode by re-reading the quoted IP total length;
// only the length-attribute units differ (32-bit words for ICMPv4, 8-octet
// units for ICMPv6), and those stay in the per-protocol codecs.

// appendPaddedOriginal appends the RFC 4884 original datagram field: orig
// truncated to origDatagramPadLen bytes, zero-padded up to exactly that
// length. Every byte of the appended region is written, so dst may be a
// recycled scratch buffer.
func appendPaddedOriginal(dst, orig []byte) []byte {
	b, off := grow(dst, origDatagramPadLen)
	if len(orig) > origDatagramPadLen {
		orig = orig[:origDatagramPadLen]
	}
	n := copy(b[off:], orig)
	pad := b[off+n : off+origDatagramPadLen]
	for i := range pad {
		pad[i] = 0
	}
	return b
}

// quotedLen returns how many leading bytes of a padded RFC 4884 original
// datagram field belong to the quoted datagram, re-reading the quoted IP
// total length (IPv4 or IPv6, by version nibble). Unparseable or
// truncated quotes keep the whole field: len(b).
func quotedLen(b []byte) int {
	switch {
	case len(b) >= IPv4HeaderLen && b[0]>>4 == 4:
		total := int(binary.BigEndian.Uint16(b[2:]))
		if total >= IPv4HeaderLen && total <= len(b) {
			return total
		}
	case len(b) >= IPv6HeaderLen && b[0]>>4 == 6:
		total := IPv6HeaderLen + int(binary.BigEndian.Uint16(b[4:]))
		if total <= len(b) {
			return total
		}
	}
	return len(b)
}

// trimOriginal strips RFC 4884 zero padding from a quoted datagram without
// copying: the result aliases b.
func trimOriginal(b []byte) []byte {
	return b[:quotedLen(b)]
}
