package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"arest/internal/mpls"
)

// ICMP types and codes used by the pipeline.
const (
	ICMPEchoReply       = 0
	ICMPDestUnreachable = 3
	ICMPEchoRequest     = 8
	ICMPTimeExceeded    = 11

	CodePortUnreachable = 3 // under ICMPDestUnreachable
	CodeTTLExceeded     = 0 // under ICMPTimeExceeded
)

// RFC 4884 / RFC 4950 constants.
const (
	icmpHeaderLen       = 8
	ExtensionVersion    = 2   // RFC 4884 Sec. 8
	origDatagramPadLen  = 128 // original datagram field length when extensions are present
	extHeaderLen        = 4
	objectHeaderLen     = 4
	ClassMPLSLabelStack = 1 // RFC 4950
	CTypeIncomingStack  = 1 // RFC 4950
)

// ErrBadExtension reports a malformed ICMP extension structure.
var ErrBadExtension = errors.New("pkt: malformed ICMP extension")

// ExtensionObject is one RFC 4884 extension object.
type ExtensionObject struct {
	Class   uint8
	CType   uint8
	Payload []byte
}

// ICMP is an ICMPv4 message. For error messages (time exceeded, destination
// unreachable) Body holds the quoted original datagram (unpadded) and
// Extensions holds any RFC 4884 objects — notably the RFC 4950 MPLS label
// stack quoted by compliant LSRs. For echo messages Body holds the data.
type ICMP struct {
	Type       uint8
	Code       uint8
	ID         uint16 // echo only
	Seq        uint16 // echo only
	Body       []byte
	Extensions []ExtensionObject
}

// IsError reports whether the message quotes an original datagram.
func (m *ICMP) IsError() bool {
	return m.Type == ICMPTimeExceeded || m.Type == ICMPDestUnreachable
}

// Marshal serializes the message. Error messages with extension objects are
// emitted in RFC 4884 form: the original datagram padded to 128 bytes, the
// length field set, and a checksummed extension structure appended.
func (m *ICMP) Marshal() ([]byte, error) {
	var b []byte
	switch {
	case m.Type == ICMPEchoRequest || m.Type == ICMPEchoReply:
		b = make([]byte, icmpHeaderLen+len(m.Body))
		binary.BigEndian.PutUint16(b[4:], m.ID)
		binary.BigEndian.PutUint16(b[6:], m.Seq)
		copy(b[icmpHeaderLen:], m.Body)
	case m.IsError():
		orig := m.Body
		if len(m.Extensions) > 0 {
			padded := make([]byte, origDatagramPadLen)
			if len(orig) > origDatagramPadLen {
				orig = orig[:origDatagramPadLen]
			}
			copy(padded, orig)
			ext, err := marshalExtensions(m.Extensions)
			if err != nil {
				return nil, err
			}
			b = make([]byte, icmpHeaderLen+len(padded)+len(ext))
			b[5] = origDatagramPadLen / 4 // RFC 4884 length field, 32-bit words
			copy(b[icmpHeaderLen:], padded)
			copy(b[icmpHeaderLen+len(padded):], ext)
		} else {
			b = make([]byte, icmpHeaderLen+len(orig))
			copy(b[icmpHeaderLen:], orig)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported ICMP type %d", ErrBadHeader, m.Type)
	}
	b[0] = m.Type
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b, nil
}

func marshalExtensions(objs []ExtensionObject) ([]byte, error) {
	n := extHeaderLen
	for _, o := range objs {
		n += objectHeaderLen + len(o.Payload)
	}
	b := make([]byte, n)
	b[0] = ExtensionVersion << 4
	off := extHeaderLen
	for _, o := range objs {
		olen := objectHeaderLen + len(o.Payload)
		if olen > 0xffff {
			return nil, fmt.Errorf("%w: object too large", ErrBadExtension)
		}
		binary.BigEndian.PutUint16(b[off:], uint16(olen))
		b[off+2] = o.Class
		b[off+3] = o.CType
		copy(b[off+objectHeaderLen:], o.Payload)
		off += olen
	}
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b, nil
}

// UnmarshalICMP parses an ICMPv4 message, verifying the message checksum
// and, when present, the RFC 4884 extension structure checksum.
func UnmarshalICMP(b []byte) (*ICMP, error) {
	if len(b) < icmpHeaderLen {
		return nil, ErrShortPacket
	}
	if Checksum(b) != 0 {
		return nil, ErrBadChecksum
	}
	m := &ICMP{Type: b[0], Code: b[1]}
	switch {
	case m.Type == ICMPEchoRequest || m.Type == ICMPEchoReply:
		m.ID = binary.BigEndian.Uint16(b[4:])
		m.Seq = binary.BigEndian.Uint16(b[6:])
		m.Body = append([]byte(nil), b[icmpHeaderLen:]...)
	case m.IsError():
		words := int(b[5])
		rest := b[icmpHeaderLen:]
		if words == 0 {
			// No extensions signalled: everything is original datagram.
			m.Body = append([]byte(nil), rest...)
			return m, nil
		}
		origLen := words * 4
		if origLen < origDatagramPadLen {
			// RFC 4884: the original datagram field must be at least
			// 128 bytes when the length attribute is used.
			return nil, fmt.Errorf("%w: length field %d words", ErrBadExtension, words)
		}
		if len(rest) < origLen {
			return nil, fmt.Errorf("%w: original datagram truncated", ErrBadExtension)
		}
		m.Body = trimOriginal(rest[:origLen])
		ext := rest[origLen:]
		objs, err := unmarshalExtensions(ext)
		if err != nil {
			return nil, err
		}
		m.Extensions = objs
	default:
		return nil, fmt.Errorf("%w: unsupported ICMP type %d", ErrBadHeader, m.Type)
	}
	return m, nil
}

// trimOriginal strips RFC 4884 zero padding from a quoted datagram by
// re-reading the quoted IPv4 total length. If the quote is not parseable
// the padded field is returned as-is.
func trimOriginal(b []byte) []byte {
	if len(b) >= IPv4HeaderLen && b[0]>>4 == 4 {
		total := int(binary.BigEndian.Uint16(b[2:]))
		if total >= IPv4HeaderLen && total <= len(b) {
			return append([]byte(nil), b[:total]...)
		}
	}
	return append([]byte(nil), b...)
}

func unmarshalExtensions(b []byte) ([]ExtensionObject, error) {
	if len(b) < extHeaderLen {
		return nil, fmt.Errorf("%w: structure truncated", ErrBadExtension)
	}
	if b[0]>>4 != ExtensionVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadExtension, b[0]>>4)
	}
	if binary.BigEndian.Uint16(b[2:]) != 0 && Checksum(b) != 0 {
		return nil, fmt.Errorf("%w: bad extension checksum", ErrBadExtension)
	}
	var objs []ExtensionObject
	off := extHeaderLen
	for off < len(b) {
		if len(b)-off < objectHeaderLen {
			return nil, fmt.Errorf("%w: object header truncated", ErrBadExtension)
		}
		olen := int(binary.BigEndian.Uint16(b[off:]))
		if olen < objectHeaderLen || off+olen > len(b) {
			return nil, fmt.Errorf("%w: object length %d", ErrBadExtension, olen)
		}
		objs = append(objs, ExtensionObject{
			Class:   b[off+2],
			CType:   b[off+3],
			Payload: append([]byte(nil), b[off+objectHeaderLen:off+olen]...),
		})
		off += olen
	}
	return objs, nil
}

// NewMPLSExtension builds the RFC 4950 incoming-label-stack object from s.
func NewMPLSExtension(s mpls.Stack) (ExtensionObject, error) {
	payload, err := s.Marshal()
	if err != nil {
		return ExtensionObject{}, err
	}
	return ExtensionObject{Class: ClassMPLSLabelStack, CType: CTypeIncomingStack, Payload: payload}, nil
}

// MPLSStack extracts the quoted MPLS label stack from the message's
// RFC 4950 extension object, if present.
func (m *ICMP) MPLSStack() (mpls.Stack, bool) {
	for _, o := range m.Extensions {
		if o.Class == ClassMPLSLabelStack && o.CType == CTypeIncomingStack {
			s, _, err := mpls.UnmarshalStack(o.Payload)
			if err != nil {
				return nil, false
			}
			return s, true
		}
	}
	return nil, false
}

// QuotedIPv4 parses the quoted original datagram of an error message,
// tolerating the truncated quotes many routers emit.
func (m *ICMP) QuotedIPv4() (*IPv4, error) {
	if !m.IsError() {
		return nil, fmt.Errorf("%w: not an error message", ErrBadHeader)
	}
	return UnmarshalIPv4Quoted(m.Body)
}

func (m *ICMP) String() string {
	return fmt.Sprintf("ICMP type=%d code=%d body=%d ext=%d", m.Type, m.Code, len(m.Body), len(m.Extensions))
}
