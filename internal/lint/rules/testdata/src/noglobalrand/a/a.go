// Package a is noglobalrand testdata.
package a

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Intn(10)                  // want "rand.Intn draws from the process-global source"
	_ = rand.Float64()                 // want "rand.Float64 draws from the process-global source"
	rand.Seed(42)                      // want "rand.Seed draws from the process-global source"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
}

func badSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.NewSource seeded from the wall clock"
}

func badSource() rand.Source {
	return rand.NewSource(int64(time.Now().Nanosecond())) // want "rand.NewSource seeded from the wall clock"
}

// good: explicit seeds, from constants or caller config.
func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng2 := rand.New(rand.NewSource(42))
	return rng.Float64() + rng2.Float64()
}

// goodDerived: hash-derived seeding mixes config, not the clock.
func goodDerived(seed int64, id int) int {
	rng := rand.New(rand.NewSource(seed ^ int64(id)*7919))
	return rng.Intn(100)
}
