package archive

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadArchive throws arbitrary byte streams at the reader. The
// contract under attack: never panic, never allocate past MaxPayload per
// record, and classify every failure as ErrBadMagic, ErrTruncated, or
// ErrCorrupt. Seeds cover a valid archive plus the corruptions the unit
// tests pin individually.
func FuzzReadArchive(f *testing.F) {
	valid := encode(f, fixtureData())
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))                      // magic, no records
	f.Add(valid[:len(valid)/2])               // mid-record cut
	f.Add(valid[:len(valid)-2])               // trailer cut
	f.Add([]byte("#{\"asn\":1}\n{}\n"))       // legacy jsonl
	f.Add([]byte("arest.archive.v2\nfuture")) // future magic
	flip := bytes.Clone(valid)
	flip[len(Magic)+9] ^= 0xff // payload bit flip -> CRC mismatch
	f.Add(flip)
	long := append([]byte(Magic), byte(TypeTrace), 0xff, 0xff, 0xff, 0xff) // length past cap
	f.Add(long)

	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := ReadData(bytes.NewReader(in))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified error: %v", err)
			}
			return
		}
		// An accepted stream must re-encode without error, and the result
		// must decode to the same value (the roundtrip fixpoint).
		var buf bytes.Buffer
		if err := WriteData(&buf, d); err != nil {
			t.Fatalf("accepted data does not re-encode: %v", err)
		}
		if _, err := ReadData(&buf); err != nil {
			t.Fatalf("re-encoded data does not decode: %v", err)
		}
	})
}

// FuzzReaderNext drives the streaming layer directly so the framing code
// is exercised even on inputs the Data aggregation would reject early.
func FuzzReaderNext(f *testing.F) {
	f.Add(encode(f, fixtureData()))
	f.Add([]byte(Magic))
	f.Fuzz(func(t *testing.T, in []byte) {
		ar, err := NewReader(bytes.NewReader(in))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			typ, _, err := ar.Next()
			if err == io.EOF || err != nil || typ == TypeEnd {
				return
			}
		}
	})
}
