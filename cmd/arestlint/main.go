// Command arestlint machine-checks the repository's determinism contract
// (DESIGN.md §7/§8) with the stdlib-only analyzers of internal/lint/rules:
//
//	nowallclock   no wall-clock reads in determinism-contract packages
//	noglobalrand  no process-global math/rand, no wall-clock seeding
//	maporder      no map iteration order reaching slices or output
//	nilsafe       nil-receiver guards on every exported obs instrument method
//
// Usage:
//
//	arestlint [-list] [./...]
//
// With no arguments (or the literal "./..." pattern) it lints every
// package of the enclosing module. A finding, a malformed or unused
// //arest:allow directive, or a load failure makes the exit status
// non-zero, so `go run ./cmd/arestlint ./...` gates CI with no external
// install.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"arest/internal/lint"
	"arest/internal/lint/rules"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("arestlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := rules.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "arestlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arestlint:", err)
		return 2
	}

	var pkgs []*lint.Package
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "arestlint:", err)
				return 2
			}
			pkgs = append(pkgs, all...)
		default:
			// A single package directory, relative to the working tree.
			dir, err := filepath.Abs(pat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arestlint:", err)
				return 2
			}
			rel, err := filepath.Rel(root, dir)
			if err != nil || rel == ".." || filepath.IsAbs(rel) || (len(rel) > 2 && rel[:3] == "../") {
				fmt.Fprintf(os.Stderr, "arestlint: %s is outside module %s\n", pat, root)
				return 2
			}
			ip := loader.Module
			if rel != "." {
				ip = loader.Module + "/" + filepath.ToSlash(rel)
			}
			pkg, err := loader.LoadDir(dir, ip)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arestlint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	runner := &lint.Runner{Analyzers: analyzers}
	diags, err := runner.Run(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arestlint:", err)
		return 2
	}
	for _, d := range diags {
		rel := d.Pos.String()
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			rel = fmt.Sprintf("%s:%d:%d", r, d.Pos.Line, d.Pos.Column)
		}
		fmt.Printf("%s: [%s] %s\n", rel, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arestlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
