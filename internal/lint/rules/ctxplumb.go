package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"arest/internal/lint"
)

// ctxEntryPrefixes are the pipeline entry-point name prefixes: a function
// in an entry package carrying one of these names is a campaign lifecycle
// boundary, and the cancellation story (DESIGN.md §14) only holds if every
// boundary accepts the caller's context instead of minting its own.
var ctxEntryPrefixes = []string{"Run", "Measure", "Detect"}

// CtxPlumb builds the ctxplumb analyzer: the machine check for the §14
// lifecycle contract, in two halves.
//
// Entry packages (internal/exp): every exported function or method named
// Run*/Measure*/Detect* must take a context.Context as its first
// parameter. A boundary without one either cannot be cancelled or
// fabricates context.Background() internally — both make the CLI's
// two-phase shutdown a dead letter for that path.
//
// Pool packages (internal/par): every `for` loop spawned at the top level
// of a go-statement function literal (the worker claim-loop shape) must
// observe cancellation — reference the function's context, or a channel
// derived from its Done(). A claim loop that never checks is a worker
// that keeps claiming indices after the campaign was told to stop.
func CtxPlumb(entry, pools []string) *lint.Analyzer {
	entrySet := make(map[string]bool, len(entry))
	for _, p := range entry {
		entrySet[p] = true
	}
	poolSet := make(map[string]bool, len(pools))
	for _, p := range pools {
		poolSet[p] = true
	}
	return &lint.Analyzer{
		Name: "ctxplumb",
		Doc:  "pipeline entry points take ctx first; worker claim loops observe cancellation (DESIGN.md §14)",
		Run: func(pass *lint.Pass) error {
			if entrySet[pass.Pkg.Path()] {
				checkCtxEntries(pass)
			}
			if poolSet[pass.Pkg.Path()] {
				checkCtxPools(pass)
			}
			return nil
		},
	}
}

// checkCtxEntries enforces the entry-point half over one package.
func checkCtxEntries(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !hasCtxEntryPrefix(fd.Name.Name) {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			params := fn.Type().(*types.Signature).Params()
			if params.Len() == 0 || !isContextType(params.At(0).Type()) {
				pass.Report(fd.Name.Pos(),
					"exported entry point %s must take context.Context as its first parameter (DESIGN.md §14: cancellable pipeline boundaries)",
					fd.Name.Name)
			}
		}
	}
}

// hasCtxEntryPrefix reports whether name is an entry-point name.
func hasCtxEntryPrefix(name string) bool {
	for _, p := range ctxEntryPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxPools enforces the worker-loop half over one package.
func checkCtxPools(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cancel := cancelObjects(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				fl, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				for _, stmt := range fl.Body.List {
					if !isClaimLoop(pass, stmt) {
						continue
					}
					if len(cancel) == 0 || !usesAnyObject(pass, stmt, cancel) {
						pass.Report(stmt.Pos(),
							"worker claim loop never observes ctx cancellation: check ctx.Err() or select on a Done channel each iteration (DESIGN.md §14)")
					}
				}
				return true
			})
		}
	}
}

// isClaimLoop reports whether stmt has the worker claim-loop shape: a
// plain for statement, or a range over a channel (ranging over a slice is
// a bounded sweep, not a claim loop).
func isClaimLoop(pass *lint.Pass, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ForStmt:
		return true
	case *ast.RangeStmt:
		t := pass.Info.TypeOf(s.X)
		if t == nil {
			return false
		}
		_, isChan := t.Underlying().(*types.Chan)
		return isChan
	}
	return false
}

// cancelObjects collects the cancellation signals visible in fd's body:
// every context.Context-typed variable (parameters and locals), plus every
// variable assigned from a Done() call on one — the captured done-channel
// idiom `done := ctx.Done()`.
func cancelObjects(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	cancel := map[types.Object]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.Ident:
			if obj := pass.ObjectOf(m); obj != nil {
				if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
					cancel[obj] = true
				}
			}
		case *ast.AssignStmt:
			if len(m.Lhs) != 1 || len(m.Rhs) != 1 {
				return true
			}
			call, ok := m.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if t := pass.Info.TypeOf(sel.X); t == nil || !isContextType(t) {
				return true
			}
			if id, ok := m.Lhs[0].(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					cancel[obj] = true
				}
			}
		}
		return true
	})
	return cancel
}

// usesAnyObject reports whether any identifier under n resolves to one of
// the objects in set.
func usesAnyObject(pass *lint.Pass, n ast.Node, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
