package exp

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/par"
)

// ShardPath names the archive shard for one catalogue record inside a
// snapshot directory.
func ShardPath(dir string, rec asgen.Record) string {
	return filepath.Join(dir, fmt.Sprintf("as-%03d.arest", rec.ID))
}

// ShardStatus reports what RunSharded did for one AS.
type ShardStatus int

const (
	// ShardMeasured: no usable shard existed; the AS was measured and a
	// fresh archive written.
	ShardMeasured ShardStatus = iota
	// ShardResumed: a complete shard existed and was replayed without
	// re-measuring.
	ShardResumed
	// ShardFailed: the AS was quarantined (see Campaign.Failed). Its shard
	// may still exist on disk — a measurement over the trace-failure
	// budget is persisted before the budget verdict, so the degraded
	// evidence survives and a resume re-derives the same failure.
	ShardFailed
)

func (s ShardStatus) String() string {
	switch s {
	case ShardMeasured:
		return "measured"
	case ShardResumed:
		return "resumed"
	case ShardFailed:
		return "failed"
	default:
		return "?"
	}
}

// RunSharded executes the campaign in snapshot/resume mode: each AS's
// measurement is persisted as a per-AS archive shard under dir, and a
// restart skips every AS whose shard is already complete — an interrupted
// campaign resumes where it stopped and still produces output identical
// to an uninterrupted run, because analysis is always a replay of the
// shard on disk (never of in-memory measurement state).
//
// A shard that is missing, truncated (interrupted writer), or corrupt is
// re-measured and atomically rewritten; statuses (parallel to the kept
// catalogue records, successful or not) say which path each AS took.
//
// Failures are contained per AS, as in Run: an errored AS gets status
// ShardFailed and lands in Campaign.Failed, the rest of the campaign
// completes, and the error return is reserved for campaign-level failures
// (the snapshot directory itself).
func RunSharded(records []asgen.Record, cfg Config, dir string) (*Campaign, []ShardStatus, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("snapshot dir: %w", err)
	}
	kept := keptRecords(records)
	results := make([]*ASResult, len(kept))
	statuses := make([]ShardStatus, len(kept))
	errs := make([]error, len(kept))
	par.ForEach(cfg.workers(), len(kept), func(i int) {
		results[i], statuses[i], errs[i] = runShard(kept[i], cfg, dir)
	})

	c := &Campaign{Cfg: cfg}
	for i, rec := range kept {
		if errs[i] != nil {
			statuses[i] = ShardFailed
			c.Failed = append(c.Failed, ASFailure{Record: rec, Stage: FailureStage(errs[i]), Err: errs[i]})
			continue
		}
		c.ASes = append(c.ASes, results[i])
	}
	countASFailures(cfg.Metrics, len(c.Failed))
	return c, statuses, nil
}

// runShard loads-or-measures one AS's shard and analyzes it. Errors carry
// their pipeline stage; the trace-failure budget is applied to the shard
// as read from disk on both paths, so a degraded shard fails (or passes)
// identically whether it was just measured or resumed from an earlier run.
func runShard(rec asgen.Record, cfg Config, dir string) (*ASResult, ShardStatus, error) {
	path := ShardPath(dir, rec)
	res, err := DetectStreamFile(path, cfg)
	switch {
	case err == nil:
		return res, ShardResumed, nil
	case errors.Is(err, fs.ErrNotExist),
		errors.Is(err, archive.ErrTruncated),
		errors.Is(err, archive.ErrCorrupt),
		errors.Is(err, archive.ErrBadMagic):
		// Fall through to re-measure: the shard never finished (or was
		// damaged); WriteFile's temp+rename keeps this crash-safe too.
	default:
		return nil, 0, shardErr(path, err)
	}

	data, err := MeasureAS(rec, cfg)
	if err != nil {
		return nil, 0, stageErr(StageMeasure, err)
	}
	// Persist the shard before the budget verdict: a measurement over
	// budget is still evidence, and writing it first means a resume reads
	// the same degraded data and re-derives the same quarantine decision
	// instead of silently re-measuring. The budget itself is applied by the
	// streaming replay below, the moment the degradation record arrives.
	if err := archive.WriteFile(path, data); err != nil {
		return nil, 0, stageErr(StageArchive, fmt.Errorf("shard %s: %w", path, err))
	}
	// Analyze the written shard, not the in-memory measurement: every
	// campaign output then provably flows through the archive codec — and
	// through the same bounded-memory fold a resume would use.
	res, err = DetectStreamFile(path, cfg)
	if err != nil {
		return nil, 0, shardErr(path, err)
	}
	return res, ShardMeasured, nil
}

// shardErr attributes a streaming-replay error: a trace-budget verdict is
// already a StageMeasure policy decision and passes through untouched (so
// resumed and just-measured shards fail with identical errors); anything
// else is an archive-stage failure tagged with the shard path.
func shardErr(path string, err error) error {
	var tbe *TraceBudgetError
	if errors.As(err, &tbe) {
		return err
	}
	return stageErr(StageArchive, fmt.Errorf("shard %s: %w", path, err))
}
