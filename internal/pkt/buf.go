// The pkt encoders and decoders are the innermost wire path — every
// probe and reply round-trips through them — so the whole package holds
// the zero-allocation contract (DESIGN.md §11).
//
//arest:hotpath package
package pkt

// grow extends dst by n bytes and returns the extended slice plus the
// offset of the new region. The new region is NOT zeroed when dst already
// has capacity — append-style encoders must write every byte they claim,
// which is what lets callers recycle scratch buffers (b[:0]) without the
// contents of one packet leaking into the next.
func grow(dst []byte, n int) ([]byte, int) {
	off := len(dst)
	if cap(dst) >= off+n {
		return dst[:off+n], off
	}
	out := make([]byte, off+n)
	copy(out, dst)
	return out, off
}
