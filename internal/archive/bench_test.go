package archive

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"arest/internal/mpls"
	"arest/internal/probe"
)

// benchData builds a campaign-sized archive deterministically: 8 VPs x 64
// traces x 16 hops with MPLS stacks, plus annotation records — roughly one
// mid-size AS from the Table 5 catalogue.
func benchData() *Data {
	d := fixtureData()
	d.VPs = nil
	d.PerVP = nil
	for vp := 0; vp < 8; vp++ {
		vpAddr := netip.AddrFrom4([4]byte{172, 16, byte(vp), 1})
		d.VPs = append(d.VPs, vpAddr)
		traces := make([]*probe.Trace, 0, 64)
		for i := 0; i < 64; i++ {
			tr := &probe.Trace{
				VP:     vpAddr,
				Dst:    netip.AddrFrom4([4]byte{100, 1, byte(vp), byte(i)}),
				FlowID: uint16(i % 4),
				Halt:   probe.HaltReached,
			}
			for ttl := 1; ttl <= 16; ttl++ {
				tr.Hops = append(tr.Hops, probe.Hop{
					TTL: ttl, Addr: netip.AddrFrom4([4]byte{10, byte(vp), byte(i), byte(ttl)}),
					RTT: float64(ttl) * 1.5, ICMPType: 11, ReplyTTL: uint8(255 - ttl), QTTL: 1,
					Stack: mpls.Stack{{Label: uint32(16000 + ttl), TTL: 1, S: true}},
				})
			}
			traces = append(traces, tr)
		}
		d.PerVP = append(d.PerVP, traces)
	}
	return d
}

func BenchmarkWriteData(b *testing.B) {
	d := benchData()
	var buf bytes.Buffer
	if err := WriteData(&buf, d); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportMetric(float64(buf.Len()), "bytes/archive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteData(io.Discard, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadData(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteData(&buf, benchData()); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadData(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderNext(b *testing.B) {
	// Framing-layer throughput without the JSON decode of the payloads.
	var buf bytes.Buffer
	if err := WriteData(&buf, benchData()); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		for {
			typ, _, err := ar.Next()
			if err != nil {
				b.Fatal(err)
			}
			if typ == TypeEnd {
				break
			}
		}
	}
}
