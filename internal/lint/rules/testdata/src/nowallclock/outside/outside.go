// Package outside is nowallclock testdata loaded under an import path
// that is NOT in the contract set: wall-clock reads here are fine.
package outside

import "time"

func clocky() time.Time {
	time.Sleep(0)
	return time.Now()
}
