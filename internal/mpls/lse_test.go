package mpls

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLSEMarshalRoundTrip(t *testing.T) {
	cases := []LSE{
		{Label: 0, TC: 0, S: false, TTL: 0},
		{Label: 16005, TC: 0, S: true, TTL: 1},
		{Label: MaxLabel, TC: 7, S: true, TTL: 255},
		{Label: 3, TC: 5, S: false, TTL: 64},
		{Label: 900000, TC: 1, S: false, TTL: 254},
	}
	for _, in := range cases {
		b, err := in.Marshal()
		if err != nil {
			t.Fatalf("Marshal(%v): %v", in, err)
		}
		if len(b) != LSESize {
			t.Fatalf("Marshal(%v) = %d bytes, want %d", in, len(b), LSESize)
		}
		out, err := UnmarshalLSE(b)
		if err != nil {
			t.Fatalf("UnmarshalLSE: %v", err)
		}
		if out != in {
			t.Errorf("round trip: got %v, want %v", out, in)
		}
	}
}

func TestLSEWireLayout(t *testing.T) {
	// Label 16005, TC 2, S=1, TTL 250:
	// 16005<<12 | 2<<9 | 1<<8 | 250
	e := LSE{Label: 16005, TC: 2, S: true, TTL: 250}
	b, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(16005)<<12 | 2<<9 | 1<<8 | 250
	if got := binary.BigEndian.Uint32(b); got != want {
		t.Errorf("wire value = %#08x, want %#08x", got, want)
	}
}

func TestLSEMarshalRejectsOverflow(t *testing.T) {
	if _, err := (LSE{Label: MaxLabel + 1}).Marshal(); !errors.Is(err, ErrLabelRange) {
		t.Errorf("overflowing label: err = %v, want ErrLabelRange", err)
	}
	if _, err := (LSE{Label: 5, TC: 8}).Marshal(); !errors.Is(err, ErrLabelRange) {
		t.Errorf("overflowing TC: err = %v, want ErrLabelRange", err)
	}
}

func TestUnmarshalLSETruncated(t *testing.T) {
	for n := 0; n < LSESize; n++ {
		if _, err := UnmarshalLSE(make([]byte, n)); !errors.Is(err, ErrTruncated) {
			t.Errorf("UnmarshalLSE(%d bytes): err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestLSEReserved(t *testing.T) {
	for _, l := range []uint32{0, 1, 3, 13, 15} {
		if !(LSE{Label: l}).Reserved() {
			t.Errorf("label %d should be reserved", l)
		}
	}
	for _, l := range []uint32{16, 255, 16000, MaxLabel} {
		if (LSE{Label: l}).Reserved() {
			t.Errorf("label %d should not be reserved", l)
		}
	}
}

func TestLSEQuickRoundTrip(t *testing.T) {
	f := func(label uint32, tc uint8, s bool, ttl uint8) bool {
		in := LSE{Label: label % (MaxLabel + 1), TC: tc % 8, S: s, TTL: ttl}
		b, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := UnmarshalLSE(b)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStackMarshalSetsBottomBitOnlyOnLast(t *testing.T) {
	s := Stack{
		{Label: 16005, TTL: 254, S: true}, // wrong S on purpose; Marshal must fix
		{Label: 3001, TTL: 254},
		{Label: 16008, TTL: 254},
	}
	b, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := UnmarshalStack(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("consumed %d bytes, want %d", n, len(b))
	}
	if out.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", out.Depth())
	}
	for i, e := range out {
		wantS := i == 2
		if e.S != wantS {
			t.Errorf("entry %d S = %v, want %v", i, e.S, wantS)
		}
	}
	if got := out.Labels(); got[0] != 16005 || got[1] != 3001 || got[2] != 16008 {
		t.Errorf("labels = %v", got)
	}
}

func TestStackMarshalEmpty(t *testing.T) {
	b, err := Stack(nil).Marshal()
	if err != nil || b != nil {
		t.Errorf("empty stack: b=%v err=%v", b, err)
	}
}

func TestUnmarshalStackStopsAtBottom(t *testing.T) {
	s := Stack{{Label: 100}, {Label: 200}}
	b, _ := s.Marshal()
	// Append garbage after the bottom entry; decoding must not consume it.
	b = append(b, 0xde, 0xad, 0xbe, 0xef)
	out, n, err := UnmarshalStack(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*LSESize {
		t.Errorf("consumed %d, want %d", n, 2*LSESize)
	}
	if out.Depth() != 2 {
		t.Errorf("depth = %d, want 2", out.Depth())
	}
}

func TestUnmarshalStackRunaway(t *testing.T) {
	// A stack that never sets the bottom bit must error out, not loop.
	b := make([]byte, (MaxStackDepth+2)*LSESize)
	if _, _, err := UnmarshalStack(b); err == nil {
		t.Error("runaway stack decoded without error")
	}
}

func TestUnmarshalStackTruncatedMidEntry(t *testing.T) {
	s := Stack{{Label: 100}, {Label: 200}}
	b, _ := s.Marshal()
	if _, _, err := UnmarshalStack(b[:LSESize+2]); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestStackPushPopSwap(t *testing.T) {
	base := Stack{{Label: 108, TTL: 64}}
	s := base.Push(LSE{Label: 3001, TTL: 64}).Push(LSE{Label: 104, TTL: 64})
	if s.Depth() != 3 || s.Top().Label != 104 || s.Bottom().Label != 108 {
		t.Fatalf("after pushes: %v", s)
	}
	if base.Depth() != 1 {
		t.Errorf("Push mutated receiver: %v", base)
	}
	p := s.Pop()
	if p.Depth() != 2 || p.Top().Label != 3001 {
		t.Errorf("after pop: %v", p)
	}
	if s.Depth() != 3 {
		t.Errorf("Pop mutated receiver: %v", s)
	}
	w := p.Swap(9999)
	if w.Top().Label != 9999 || p.Top().Label != 3001 {
		t.Errorf("Swap: got %v, receiver %v", w, p)
	}
	if Stack(nil).Pop() != nil {
		t.Error("Pop on nil stack should return nil")
	}
	one := Stack{{Label: 5}}
	if one.Pop() != nil {
		t.Error("Pop on depth-1 stack should return nil")
	}
}

func TestStackCloneIndependence(t *testing.T) {
	s := Stack{{Label: 1}, {Label: 2}}
	c := s.Clone()
	c[0].Label = 42
	if s[0].Label != 1 {
		t.Error("Clone shares backing array")
	}
	if Stack(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestStackEqual(t *testing.T) {
	a := Stack{{Label: 1, TTL: 5}, {Label: 2}}
	b := Stack{{Label: 1, TTL: 5}, {Label: 2}}
	if !a.Equal(b) {
		t.Error("identical stacks not Equal")
	}
	if a.Equal(b[:1]) {
		t.Error("different depth stacks Equal")
	}
	b[1].Label = 3
	if a.Equal(b) {
		t.Error("different stacks Equal")
	}
}

func TestStackQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		depth := 1 + rng.Intn(6)
		in := make(Stack, depth)
		for j := range in {
			in[j] = LSE{
				Label: uint32(rng.Intn(MaxLabel + 1)),
				TC:    uint8(rng.Intn(8)),
				TTL:   uint8(rng.Intn(256)),
			}
		}
		b, err := in.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := UnmarshalStack(b)
		if err != nil {
			t.Fatal(err)
		}
		if out.Depth() != depth {
			t.Fatalf("depth: got %d want %d", out.Depth(), depth)
		}
		for j := range in {
			if out[j].Label != in[j].Label || out[j].TC != in[j].TC || out[j].TTL != in[j].TTL {
				t.Fatalf("entry %d: got %v want %v", j, out[j], in[j])
			}
		}
	}
}

func TestStackString(t *testing.T) {
	if got := (Stack{}).String(); got != "[]" {
		t.Errorf("empty stack String = %q", got)
	}
	s := Stack{{Label: 16005, TTL: 254, S: true}}
	if got := s.String(); got != "[L=16005,TC=0,S=1,TTL=254]" {
		t.Errorf("String = %q", got)
	}
}
