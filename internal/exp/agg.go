// Agg is the bounded-memory core of the Detect stage: every aggregate the
// experiments consume, folded one trace at a time. It replaces "retain
// every path and recompute" with "accumulate per trace and query", so a
// streaming replay holds O(results) state — flag tallies, histograms, and
// one compact row per distinct interface — never the trace set itself.
package exp

import (
	"net/netip"

	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/probe"
)

// IfaceAgg is the per-interface row of the fold: everything the
// interface-keyed aggregates (Figs. 10b, 14, 15, Table 3's FN column)
// need, reduced with order-independent operations — Area is a running max,
// the booleans are running ORs, Source/Vendor are constant per address (the
// annotator stamps every occurrence identically).
type IfaceAgg struct {
	Area   core.Area
	Source fingerprint.Source
	Vendor mpls.Vendor
	// Flagged: the interface appeared inside at least one detected segment.
	Flagged bool
	// LabeledTransit: at least one non-terminal occurrence carried a label
	// stack — the precondition for counting it as a false negative.
	LabeledTransit bool
}

// Agg accumulates one AS's analysis. Every field is either a count, a
// histogram, or an address-keyed row reduced with commutative operations,
// so folding the same traces in any partition order and merging yields the
// same value (Merge); the aggregate methods on ASResult are pure queries
// over it. The zero value is not ready: use NewAgg, which initializes every
// map non-nil so folded and merged aggregates compare with DeepEqual.
//
//arest:mergeable
type Agg struct {
	// Traces counts every folded trace; PathsInAS counts those whose
	// AS-restricted path was non-empty (the denominator of Fig. 10a).
	Traces    int
	PathsInAS int
	// NumVPs is the vantage-point count (Fig. 17's x axis).
	NumVPs int

	// Flags tallies detected segments per flag (Fig. 8).
	Flags map[core.Flag]int
	// AreaTraces counts paths touching each area (Fig. 10a numerators).
	AreaTraces map[core.Area]int
	// Patterns tallies interworking chaining patterns (Fig. 11).
	Patterns map[core.Pattern]int
	// CloudLDP/CloudSR are cloud-size histograms from interworking tunnels
	// (Fig. 12): size -> occurrences.
	CloudLDP map[int]int
	CloudSR  map[int]int
	// StackStrong/StackOther are LSE stack-depth histograms over labeled
	// hops inside/outside strong segments (Fig. 9).
	StackStrong map[int]int
	StackOther  map[int]int
	// TunnelTypes tallies raw-trace tunnel visibility classes (Fig. 13a).
	TunnelTypes map[probe.TunnelType]int
	// ExplicitPaths counts raw traces showing an explicit tunnel (Fig. 13b).
	ExplicitPaths int
	// Labels is the Fig. 16 label-range histogram, keyed by bucket name.
	Labels map[string]int

	// Ifaces holds one reduced row per distinct in-AS interface.
	Ifaces map[netip.Addr]IfaceAgg
	// FirstVP records the smallest VP index at which each raw-trace
	// responder was observed; with NumVPs it reconstructs the Fig. 17
	// accumulation curve without retaining the traces.
	FirstVP map[netip.Addr]int

	// Confusion carries the per-flag TP/FP tallies of Table 3. FN is not a
	// per-segment event; it is derived at query time from Ifaces and the
	// ground-truth set.
	Confusion map[core.Flag]eval.Confusion

	// SeqLabels is the set of labels carried by sequence-flagged (CVR/CO)
	// segments — the evidence base of SRGB inference.
	SeqLabels map[uint32]bool
	// SeqSuffix counts sequence-flagged segments whose labels also matched
	// as a suffix (the headline's corroboration rate).
	SeqSuffix int
	// StrongHops/StrongHopsFP count hops inside strong segments and the
	// fingerprinted subset (the headline's fingerprint coverage).
	StrongHops   int
	StrongHopsFP int
}

// NewAgg returns an empty accumulator with every map allocated.
func NewAgg() *Agg {
	return &Agg{
		Flags:       map[core.Flag]int{},
		AreaTraces:  map[core.Area]int{},
		Patterns:    map[core.Pattern]int{},
		CloudLDP:    map[int]int{},
		CloudSR:     map[int]int{},
		StackStrong: map[int]int{},
		StackOther:  map[int]int{},
		TunnelTypes: map[probe.TunnelType]int{},
		Labels:      map[string]int{},
		Ifaces:      map[netip.Addr]IfaceAgg{},
		FirstVP:     map[netip.Addr]int{},
		Confusion:   map[core.Flag]eval.Confusion{},
		SeqLabels:   map[uint32]bool{},
	}
}

// addTrace folds one trace: the raw trace always contributes (tunnel
// classes, responder accumulation); res is the analysis of its AS-restricted
// path and is nil when the restriction was empty. sr is the archived
// ground-truth set, sealed before the first trace arrives.
func (a *Agg) addTrace(vpIdx int, tr *probe.Trace, res *core.Result, sr map[netip.Addr]bool) {
	a.Traces++
	for _, t := range probe.ClassifyTunnels(tr) {
		a.TunnelTypes[t.Type]++
	}
	if probe.HasExplicitTunnel(tr) {
		a.ExplicitPaths++
	}
	for i := range tr.Hops {
		if !tr.Hops[i].Responded() {
			continue
		}
		addr := tr.Hops[i].Addr
		if v, ok := a.FirstVP[addr]; !ok || vpIdx < v {
			a.FirstVP[addr] = vpIdx
		}
	}
	if res == nil {
		return
	}
	a.PathsInAS++

	hops := res.Path.Hops
	inStrong := make([]bool, len(hops))
	flagged := make([]bool, len(hops))
	for _, s := range res.Segments {
		a.Flags[s.Flag]++
		if s.Flag == core.FlagCVR || s.Flag == core.FlagCO {
			a.SeqLabels[s.Label] = true
			if s.SuffixMatch {
				a.SeqSuffix++
			}
		}
		allSR := true
		for k := s.Start; k <= s.End; k++ {
			flagged[k] = true
			if !sr[hops[k].Addr] {
				allSR = false
			}
			if s.Flag.Strong() {
				inStrong[k] = true
				a.StrongHops++
				if hops[k].Fingerprinted() {
					a.StrongHopsFP++
				}
			}
		}
		c := a.Confusion[s.Flag]
		if allSR {
			c.TP++
		} else {
			c.FP++
		}
		a.Confusion[s.Flag] = c
	}

	for _, area := range []core.Area{core.AreaSR, core.AreaMPLS, core.AreaIP} {
		if res.HitsArea(area) {
			a.AreaTraces[area]++
		}
	}

	for i := range hops {
		h := &hops[i]
		if h.HasStack() {
			if inStrong[i] {
				a.StackStrong[h.Stack.Depth()]++
			} else {
				a.StackOther[h.Stack.Depth()]++
			}
		}
		for _, e := range h.Stack {
			for _, b := range LabelBuckets {
				if b.R.Contains(e.Label) {
					a.Labels[b.Name]++
					break
				}
			}
		}
		ifc, ok := a.Ifaces[h.Addr]
		if !ok {
			ifc.Source = h.Source
			ifc.Vendor = h.Vendor
		}
		if area := res.Areas[i]; area > ifc.Area {
			ifc.Area = area
		}
		if flagged[i] {
			ifc.Flagged = true
		}
		if h.HasStack() && !h.Terminal {
			ifc.LabeledTransit = true
		}
		a.Ifaces[h.Addr] = ifc
	}

	for _, t := range res.Tunnels() {
		a.Patterns[t.Pattern]++
		if !t.Interworking() {
			continue
		}
		for _, cl := range t.Clouds {
			if cl.Kind == core.CloudSR {
				a.CloudSR[cl.Len]++
			} else {
				a.CloudLDP[cl.Len]++
			}
		}
	}
}

// Merge folds o into a. Every reduction is commutative and associative —
// counts and histograms add, FirstVP takes the minimum, interface rows
// max/OR their fields — so any partition of a trace set folds and merges to
// the same aggregate as one sequential fold, which is what lets shards be
// analyzed concurrently and campaigns be summarized across ASes.
// Address-keyed maps assume both sides observed consistent per-address
// facts (true for partitions of one AS's traces; across ASes with disjoint
// address space the union is still exact, and NumVPs takes the maximum).
func (a *Agg) Merge(o *Agg) {
	a.Traces += o.Traces
	a.PathsInAS += o.PathsInAS
	if o.NumVPs > a.NumVPs {
		a.NumVPs = o.NumVPs
	}
	a.ExplicitPaths += o.ExplicitPaths
	a.SeqSuffix += o.SeqSuffix
	a.StrongHops += o.StrongHops
	a.StrongHopsFP += o.StrongHopsFP
	for f, n := range o.Flags {
		a.Flags[f] += n
	}
	for k, n := range o.AreaTraces {
		a.AreaTraces[k] += n
	}
	for p, n := range o.Patterns {
		a.Patterns[p] += n
	}
	for k, n := range o.CloudLDP {
		a.CloudLDP[k] += n
	}
	for k, n := range o.CloudSR {
		a.CloudSR[k] += n
	}
	for k, n := range o.StackStrong {
		a.StackStrong[k] += n
	}
	for k, n := range o.StackOther {
		a.StackOther[k] += n
	}
	for t, n := range o.TunnelTypes {
		a.TunnelTypes[t] += n
	}
	for b, n := range o.Labels {
		a.Labels[b] += n
	}
	for addr, v := range o.FirstVP {
		if cur, ok := a.FirstVP[addr]; !ok || v < cur {
			a.FirstVP[addr] = v
		}
	}
	for addr, oi := range o.Ifaces {
		ifc, ok := a.Ifaces[addr]
		if !ok {
			ifc = oi
		} else {
			if oi.Area > ifc.Area {
				ifc.Area = oi.Area
			}
			ifc.Flagged = ifc.Flagged || oi.Flagged
			ifc.LabeledTransit = ifc.LabeledTransit || oi.LabeledTransit
		}
		a.Ifaces[addr] = ifc
	}
	for f, oc := range o.Confusion {
		c := a.Confusion[f]
		c.Add(oc)
		a.Confusion[f] = c
	}
	for l := range o.SeqLabels {
		a.SeqLabels[l] = true
	}
}
