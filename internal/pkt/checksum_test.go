package pkt

import (
	"bytes"
	"testing"
)

// referenceChecksum is a transliteration of RFC 1071 §4.1's C reference,
// kept deliberately naive as an oracle for the production implementation.
func referenceChecksum(b []byte) uint16 {
	var acc uint32
	for i := 0; i+1 < len(b); i += 2 {
		acc += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		acc += uint32(b[len(b)-1]) << 8
	}
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}

func TestChecksumZeroLength(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("Checksum(nil) = %#x, want 0xffff", got)
	}
	if got := Checksum([]byte{}); got != 0xffff {
		t.Fatalf("Checksum(empty) = %#x, want 0xffff", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// The trailing byte acts as the high octet of a zero-padded word.
	cases := [][]byte{
		{0x01},
		{0x00},
		{0xff},
		{0x12, 0x34, 0x56},
		{0xde, 0xad, 0xbe, 0xef, 0x7f},
	}
	for _, b := range cases {
		if got, want := Checksum(b), referenceChecksum(b); got != want {
			t.Errorf("Checksum(%x) = %#x, want %#x", b, got, want)
		}
	}
	// Explicitly: an odd buffer equals its even zero-padded form.
	odd := []byte{0x12, 0x34, 0x56}
	even := []byte{0x12, 0x34, 0x56, 0x00}
	if Checksum(odd) != Checksum(even) {
		t.Fatal("odd-length buffer must checksum like its zero-padded form")
	}
}

// All-0xFF words drive the 32-bit accumulator through repeated carry
// wraps; the end-around-carry fold must converge, not stop after one pass.
func TestChecksumCarryChainFolding(t *testing.T) {
	b := bytes.Repeat([]byte{0xff}, 64*1024)
	if got, want := Checksum(b), referenceChecksum(b); got != want {
		t.Fatalf("64KiB of 0xff: Checksum = %#x, want %#x", got, want)
	}
	// sum of n 0xffff words ≡ n-1 words of carry behaviour:
	// 0xffff + 0xffff = 0x1fffe → fold → 0xffff, so any run of 0xff
	// bytes checksums to 0 (complement of 0xffff).
	if got := Checksum(b); got != 0 {
		t.Fatalf("all-ones buffer = %#x, want 0", got)
	}
}

func TestChecksumAgainstReferenceSweep(t *testing.T) {
	// Deterministic pseudo-random contents across lengths 0..257 hit every
	// alignment and several fold patterns.
	b := make([]byte, 258)
	x := uint32(0x12345678)
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	for n := 0; n <= len(b); n++ {
		if got, want := Checksum(b[:n]), referenceChecksum(b[:n]); got != want {
			t.Fatalf("len %d: Checksum = %#x, want %#x", n, got, want)
		}
	}
}

// RFC 1071 property: the checksum of data with its own checksum word
// included verifies to zero (how receivers validate headers in place).
func TestChecksumSelfVerifies(t *testing.T) {
	b := []byte{0x45, 0x00, 0x00, 0x1c, 0xbe, 0xef, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00, 0x00, 0x02}
	ck := Checksum(b)
	b[10], b[11] = byte(ck>>8), byte(ck)
	if got := Checksum(b); got != 0 {
		t.Fatalf("self-verification = %#x, want 0", got)
	}
}

func BenchmarkChecksum(b *testing.B) {
	for _, size := range []int{20, 128, 1500} {
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i * 31)
		}
		b.Run(sizeLabel(size), func(b *testing.B) {
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkU16 = Checksum(buf)
			}
		})
	}
}

var sinkU16 uint16

func sizeLabel(n int) string {
	switch n {
	case 20:
		return "ipv4hdr"
	case 128:
		return "quote"
	default:
		return "mtu"
	}
}
