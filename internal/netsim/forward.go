// This file is the per-packet forwarding engine: every probe of every
// campaign runs through Send and process, so it holds the zero-allocation
// wire-path contract (DESIGN.md §11).
//
//arest:hotpath file
package netsim

import (
	"errors"
	"fmt"
	"net/netip"

	"arest/internal/mpls"
	"arest/internal/pkt"
)

// ttlMode is the TTL treatment chosen at push time (RFC 3443).
type ttlMode int

const (
	modeUniform ttlMode = iota // ttl-propagate on: IP TTL copied into LSE TTL
	modePipe                   // ttl-propagate off: LSE TTL 255, IP TTL frozen inside
)

// frame is a packet in flight: an IP packet under an optional label stack.
// The stack is owned by the frame (scratch-backed or freshly built at the
// ingress), so forwarding mutates it in place instead of copying per hop.
type frame struct {
	stack mpls.Stack
	ip    *pkt.IPv4
	mode  ttlMode
}

// popStack drops the top LSE in place (no copy; the frame owns the stack).
func (f *frame) popStack() {
	if len(f.stack) <= 1 {
		f.stack = nil
	} else {
		f.stack = f.stack[1:]
	}
}

// Delivery is the outcome of injecting one probe.
type Delivery struct {
	// Reply holds the serialized IPv4 reply observed at the probing host,
	// nil when no reply was generated (silent router, drop, or no route).
	Reply []byte
	// Path lists the routers the probe traversed, in order, including the
	// router that answered or dropped it.
	Path []RouterID
	// FwdHops and RetHops are the forward and return hop counts, used by
	// the prober to synthesize RTTs.
	FwdHops, RetHops int
}

// Errors returned by Send.
var (
	ErrUnknownHost = errors.New("netsim: source address is not an attached host")
	ErrNotComputed = errors.New("netsim: Compute must be called before Send")
)

const maxSteps = 1024

// pathHint pre-sizes Delivery.Path for the common intra-AS diameter.
const pathHint = 16

// Send injects the serialized IPv4 probe wire from the attached host with
// source address src and simulates its journey. The reply (if any) is the
// serialized IPv4 packet the host would capture; it is freshly allocated
// and owned by the caller. wire is only read during the call — Send does
// not retain it.
//
// Send is safe for concurrent use after Compute (which establishes the
// happens-before edge for all control-plane state); see the package
// comment for the full concurrency model. All transient state (decoded
// probe, label stacks, quote/reply buffers) comes from a sync.Pool and is
// fully overwritten before use, so pooling never leaks one probe's bytes
// into another's reply.
func (n *Network) Send(src netip.Addr, wire []byte) (*Delivery, error) {
	if !n.computed {
		return nil, ErrNotComputed
	}
	host, ok := n.hosts[src]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, src)
	}
	s := sendScratchPool.Get().(*sendScratch)
	defer sendScratchPool.Put(s)
	if err := pkt.UnmarshalIPv4Into(&s.ip, wire); err != nil {
		n.met.dropParse.Inc()
		return nil, fmt.Errorf("netsim: bad probe: %w", err)
	}
	c := &s.ctx
	*c = sendCtx{
		n:         n,
		flow:      flowHash(&s.ip),
		vpGateway: host.Gateway,
		probeSrc:  src,
		scr:       s,
	}
	owner, ok := n.Owner(s.ip.Dst)
	if !ok {
		n.met.dropNoRoute.Inc()
		return &Delivery{}, nil // no route: probe vanishes
	}
	c.dstOwner = owner

	f := &s.frame
	*f = frame{ip: &s.ip}
	d := &Delivery{Path: make([]RouterID, 0, pathHint)}
	cur := host.Gateway
	prev := RouterID(-1)
	for step := 0; step < maxSteps; step++ {
		d.Path = append(d.Path, cur)
		next, reply, done := c.process(n.routers[cur], prev, f)
		if done {
			d.Reply = reply
			d.FwdHops = len(d.Path)
			d.RetHops = c.lastRetDist
			return d, nil
		}
		n.met.forwarded.Inc()
		prev, cur = cur, next
	}
	n.met.dropLoop.Inc()
	return d, nil // forwarding loop: treated as loss
}

// flowHash derives the Paris-stable flow identifier from the probe's
// 5-tuple (ports for UDP, identifier for ICMP).
func flowHash(ip *pkt.IPv4) uint64 {
	h := uint64(17)
	s, d := ip.Src.As4(), ip.Dst.As4()
	h = mixFlow(h, uint64(s[0])<<24|uint64(s[1])<<16|uint64(s[2])<<8|uint64(s[3]))
	h = mixFlow(h, uint64(d[0])<<24|uint64(d[1])<<16|uint64(d[2])<<8|uint64(d[3]))
	h = mixFlow(h, uint64(ip.Protocol))
	if len(ip.Payload) >= 4 {
		switch ip.Protocol {
		case pkt.ProtoUDP:
			h = mixFlow(h, uint64(ip.Payload[0])<<24|uint64(ip.Payload[1])<<16|
				uint64(ip.Payload[2])<<8|uint64(ip.Payload[3]))
		case pkt.ProtoICMP:
			if len(ip.Payload) >= 6 {
				h = mixFlow(h, uint64(ip.Payload[4])<<8|uint64(ip.Payload[5])) // echo ID
			}
		}
	}
	return h
}

// mixFlow folds one word into the FNV-style flow hash.
func mixFlow(h, v uint64) uint64 { return h*0x100000001b3 ^ v }

type sendCtx struct {
	n           *Network
	flow        uint64
	dstOwner    RouterID
	vpGateway   RouterID
	probeSrc    netip.Addr
	lastRetDist int
	scr         *sendScratch
}

// process runs one router's worth of forwarding. It returns either the next
// hop (done=false) or the final outcome (done=true, reply possibly nil).
func (c *sendCtx) process(r *Router, prev RouterID, f *frame) (next RouterID, reply []byte, done bool) {
	// Snapshot the stack as received into per-Send scratch: the RFC 4950
	// quote must show the pre-processing LSEs while forwarding mutates the
	// frame's stack in place.
	received := append(c.scr.received[:0], f.stack...)
	c.scr.received = received
	rcvIPTTL := f.ip.TTL
	inIface := c.inIface(r, prev)

	ttlDone := false
	if len(f.stack) > 0 {
		// MPLS stage: one LSE-TTL decrement per router.
		if f.stack[0].TTL <= 1 {
			c.n.met.ttlExpired.Inc()
			return 0, c.timeExceeded(r, inIface, f, received, rcvIPTTL), true
		}
		f.stack[0].TTL--
		for len(f.stack) > 0 {
			eff := f.stack[0].TTL
			kind, fec, nbr := c.n.resolveLabel(r, f.stack[0].Label)
			switch kind {
			case labelNodeSID:
				e := c.n.routers[fec]
				if e.ID == r.ID {
					// Active segment completed at this node: pop.
					f.popStack()
					c.popTTLAdjust(f, eff)
					continue
				}
				nh, ok := c.n.NextHop(r.ID, e.ID, c.flow)
				if !ok {
					c.n.met.dropNoRoute.Inc()
					return 0, nil, true
				}
				nhr := c.n.routers[nh]
				if c.n.SRPHPEnabled && nh == e.ID {
					f.popStack()
					c.popTTLAdjust(f, eff)
					return nh, nil, false
				}
				if out, ok := c.n.srLabelAt(nhr, e); ok {
					f.stack[0].Label = out
					f.stack[0].TTL = eff
					return nh, nil, false
				}
				// SR→LDP interworking: the next hop is not SR-capable, so
				// this border router swaps the SR label for the neighbor's
				// LDP binding toward the same FEC.
				if nh == e.ID {
					// LDP implicit null at the penultimate hop.
					f.popStack()
					c.popTTLAdjust(f, eff)
					return nh, nil, false
				}
				if out, ok := nhr.ldpOut[e.ID]; ok {
					f.stack[0].Label = out
					f.stack[0].TTL = eff
					return nh, nil, false
				}
				c.n.met.dropNoRoute.Inc()
				return 0, nil, true // no binding: drop
			case labelService:
				// Service SID terminating here: consume it and continue
				// processing the rest of the packet locally.
				f.popStack()
				c.popTTLAdjust(f, eff)
				continue
			case labelExplicitNull:
				// Reserved label 0 (RFC 3032): pop and forward by the IP
				// header (or by the next label, for robustness).
				f.popStack()
				c.popTTLAdjust(f, eff)
				continue
			case labelELI:
				// Entropy label indicator (RFC 6790): the ELI and the
				// entropy label beneath it are consumed together.
				f.popStack()
				if len(f.stack) > 0 {
					f.popStack()
				}
				c.popTTLAdjust(f, eff)
				continue
			case labelAdjSID:
				if c.n.linkDown(r.ID, nbr) {
					c.n.met.dropLinkDown.Inc()
					return 0, nil, true // adjacency segment over a dead link
				}
				f.popStack()
				c.popTTLAdjust(f, eff)
				return nbr, nil, false
			case labelLDP:
				e := c.n.routers[fec]
				if e.ID == r.ID {
					f.popStack()
					c.popTTLAdjust(f, eff)
					continue
				}
				nh, ok := c.n.NextHop(r.ID, e.ID, c.flow)
				if !ok {
					c.n.met.dropNoRoute.Inc()
					return 0, nil, true
				}
				nhr := c.n.routers[nh]
				if nhr.LDPEnabled {
					if nh == e.ID {
						if e.Profile.ExplicitNull {
							// The egress advertised explicit null: swap
							// to label 0 instead of popping.
							f.stack[0].Label = mpls.LabelIPv4ExplicitNull
							f.stack[0].TTL = eff
							return nh, nil, false
						}
						// Penultimate-hop popping (implicit null).
						f.popStack()
						c.popTTLAdjust(f, eff)
						return nh, nil, false
					}
					if out, ok := nhr.ldpOut[e.ID]; ok {
						f.stack[0].Label = out
						f.stack[0].TTL = eff
						return nh, nil, false
					}
					c.n.met.dropNoRoute.Inc()
					return 0, nil, true
				}
				// LDP→SR interworking: SR border routers advertise LDP
				// bindings mirroring node SIDs, so the frame continues on
				// the neighbor's SR label for the same FEC.
				if out, ok := c.n.srLabelAt(nhr, e); ok {
					f.stack[0].Label = out
					f.stack[0].TTL = eff
					return nh, nil, false
				}
				c.n.met.dropNoRoute.Inc()
				return 0, nil, true
			default:
				c.n.met.dropNoRoute.Inc()
				return 0, nil, true // unknown label: drop
			}
		}
		// The whole stack popped here. Under the uniform model the IP TTL
		// was already synced to the (decremented) LSE TTL; under short-pipe
		// the egress still performs its own IP TTL work below.
		ttlDone = f.mode == modeUniform
	}

	// IP stage. A packet addressed to one of this router's own addresses
	// is delivered without a TTL check; packets for attached hosts or
	// routed prefixes are still forwarded (one more TTL consumed), so the
	// destination appears one traceroute hop beyond its gateway.
	selfAddr := false
	if id, ok := c.n.addrOwner[f.ip.Dst]; ok && id == r.ID {
		selfAddr = true
	}
	if r.ID == c.dstOwner && selfAddr {
		return 0, c.deliver(r, f, received, rcvIPTTL), true
	}
	if !ttlDone {
		if f.ip.TTL <= 1 {
			c.n.met.ttlExpired.Inc()
			return 0, c.timeExceeded(r, inIface, f, received, rcvIPTTL), true
		}
		f.ip.TTL--
	}
	if r.ID == c.dstOwner {
		return 0, c.deliver(r, f, received, rcvIPTTL), true
	}

	ownerR := c.n.routers[c.dstOwner]
	nh, ok := c.n.fibNextHop(r.ID, c.dstOwner, c.flow)
	if !ok {
		c.n.met.dropNoRoute.Inc()
		return 0, nil, true
	}

	// Ingress LER decision: label-push transit traffic toward an egress in
	// the same AS, for tunnel-eligible FECs only.
	if len(f.stack) == 0 && r.Mode != ModeIP && ownerR.ASN == r.ASN &&
		c.n.TunnelEligible(f.ip.Dst) {
		pushed, newNh := c.push(r, ownerR, f, nh)
		if pushed {
			return newNh, nil, false
		}
	}
	return nh, nil, false
}

// push applies the ingress encapsulation; it returns false when no label
// ends up on the packet (implicit null to an adjacent egress, or missing
// state), in which case plain IP forwarding proceeds.
func (c *sendCtx) push(r *Router, egress *Router, f *frame, defaultNh RouterID) (bool, RouterID) {
	f.mode = modeUniform
	if !r.Profile.TTLPropagate {
		f.mode = modePipe
	}
	lseTTL := f.ip.TTL
	if f.mode == modePipe {
		lseTTL = 255
	}

	mode := r.Mode
	if mode == ModeSR && !r.SREnabled {
		if r.LDPEnabled {
			mode = ModeLDP
		} else {
			return false, 0
		}
	}
	if mode == ModeLDP && !r.LDPEnabled {
		return false, 0
	}

	switch mode {
	case ModeSR:
		c.scr.segBuf[0] = Segment{Node: egress.ID}
		segs := SegmentList(c.scr.segBuf[:1])
		if c.n.SRPolicy != nil {
			if s := c.n.SRPolicy(r, egress.ID, f.ip.Dst, c.flow); len(s) > 0 {
				segs = s
			}
		}
		stack, ok := c.n.buildSRStack(c.scr.stackBuf[:0], r, segs, c.flow, lseTTL)
		if !ok {
			// Destination has no SID (LDP-only egress, no mapping server):
			// fall back to LDP, but only if this router actually runs LDP —
			// a pure-SR ingress has no LDP sessions to learn labels from.
			if r.LDPEnabled {
				return c.pushLDP(r, egress, f, lseTTL)
			}
			return false, 0
		}
		c.scr.stackBuf = stack
		// First segment may terminate at the next hop under PHP.
		nh, ok2 := c.n.NextHop(r.ID, firstNodeOf(segs, egress.ID), c.flow)
		if !ok2 {
			return false, 0
		}
		if c.n.SRPHPEnabled && len(stack) == 1 && nh == egress.ID {
			return false, 0
		}
		f.stack = stack
		return true, nh
	case ModeLDP:
		return c.pushLDP(r, egress, f, lseTTL)
	default:
		return false, 0
	}
}

func firstNodeOf(segs SegmentList, fallback RouterID) RouterID {
	if len(segs) > 0 && !segs[0].Adj && !segs[0].Service {
		return segs[0].Node
	}
	return fallback
}

func (c *sendCtx) pushLDP(r *Router, egress *Router, f *frame, lseTTL uint8) (bool, RouterID) {
	nh, ok := c.n.NextHop(r.ID, egress.ID, c.flow)
	if !ok {
		return false, 0
	}
	var inner mpls.LSE
	haveInner := false
	if c.n.LDPStackPolicy != nil {
		if l, ok2 := c.n.LDPStackPolicy(r, egress.ID, f.ip.Dst); ok2 {
			inner = mpls.LSE{Label: l, TTL: lseTTL}
			haveInner = true
		}
	}
	stack := c.scr.stackBuf[:0]
	if nh == egress.ID {
		// An adjacent egress advertised implicit null (no transport label)
		// or explicit null (label 0); a service label, if any, still rides
		// to the egress.
		if egress.Profile.ExplicitNull {
			stack = append(stack, mpls.LSE{Label: mpls.LabelIPv4ExplicitNull, TTL: lseTTL})
		}
		if haveInner {
			stack = append(stack, inner)
		}
		if len(stack) == 0 {
			return false, 0
		}
		stack = c.appendEntropy(r, egress.ID, f, stack, lseTTL)
		c.scr.stackBuf = stack
		f.stack = stack
		return true, nh
	}
	nhr := c.n.routers[nh]
	var label uint32
	if nhr.LDPEnabled {
		label, ok = nhr.ldpOut[egress.ID]
		if !ok {
			return false, 0
		}
	} else if l, ok2 := c.n.srLabelAt(nhr, egress); ok2 {
		label = l // LDP ingress facing an SR core: LDP→SR at the first hop
	} else {
		return false, 0
	}
	stack = append(stack, mpls.LSE{Label: label, TTL: lseTTL})
	if haveInner {
		stack = append(stack, inner)
	}
	stack = c.appendEntropy(r, egress.ID, f, stack, lseTTL)
	c.scr.stackBuf = stack
	f.stack = stack
	return true, nh
}

// appendEntropy adds an RFC 6790 entropy label pair (ELI + flow-derived EL)
// to the bottom of a classic-MPLS stack when the ingress policy asks for
// load-balancing entropy.
func (c *sendCtx) appendEntropy(r *Router, egress RouterID, f *frame, stack mpls.Stack, lseTTL uint8) mpls.Stack {
	if c.n.EntropyPolicy == nil || len(stack) == 0 {
		return stack
	}
	if !c.n.EntropyPolicy(r, egress, f.ip.Dst, c.flow) {
		return stack
	}
	el := uint32(16 + c.flow%1000000)
	return append(stack,
		mpls.LSE{Label: mpls.LabelELI, TTL: lseTTL},
		mpls.LSE{Label: el, TTL: lseTTL})
}

// popTTLAdjust applies RFC 3443 TTL propagation when an LSE is popped.
// eff is the (already decremented) TTL of the popped entry.
func (c *sendCtx) popTTLAdjust(f *frame, eff uint8) {
	if f.mode != modeUniform {
		return
	}
	if len(f.stack) > 0 {
		f.stack[0].TTL = eff
	} else if eff < f.ip.TTL {
		f.ip.TTL = eff
	}
}

// inIface resolves the address of r's interface facing the previous hop.
func (c *sendCtx) inIface(r *Router, prev RouterID) netip.Addr {
	if prev >= 0 {
		if a, ok := r.ifaces[prev]; ok {
			return a
		}
	}
	return r.Loopback
}

// retDist computes the return path length (in IP hops) from a replying
// router back to the probing host.
func (c *sendCtx) retDist(r *Router) int {
	d := c.n.PathLen(r.ID, c.vpGateway, c.flow)
	if d < 0 {
		d = 0
	}
	return d + 1 // gateway → host
}

// nextIPID advances r's shared IP-ID counter by one packet. The counter is
// base + stride*count with an atomic count, so concurrent Sends commute:
// the value observed by any single reply depends on scheduling, but the
// counter state after a set of probes does not. (stride*uint16(count) mod
// 2^16 equals repeated uint16 addition, since stride·(N mod 2^16) ≡
// stride·N mod 2^16.)
func (c *sendCtx) nextIPID(r *Router) uint16 {
	cnt := r.ipIDCount.Add(1)
	return r.ipIDBase + r.ipIDStride*uint16(cnt)
}

// quoteBytes rebuilds the original datagram as the replying router saw it,
// serializing into per-Send scratch.
func (c *sendCtx) quoteBytes(f *frame, rcvTTL uint8) []byte {
	s := c.scr
	s.qip = *f.ip
	s.qip.TTL = rcvTTL
	b, err := s.qip.AppendMarshal(s.quote[:0])
	if err != nil {
		return nil
	}
	s.quote = b
	return b
}

// timeExceeded builds the ICMP time-exceeded reply from router r, quoting
// the received label stack when the router implements RFC 4950.
func (c *sendCtx) timeExceeded(r *Router, src netip.Addr, f *frame, received mpls.Stack, rcvTTL uint8) []byte {
	if !r.Profile.RespondsICMP {
		c.n.met.dropSilent.Inc()
		return nil
	}
	if c.icmpLost(r, f) {
		c.n.met.dropRateLim.Inc()
		return nil
	}
	return c.icmpError(r, src, pkt.ICMPTimeExceeded, pkt.CodeTTLExceeded, f, received, rcvTTL)
}

// icmpLost models ICMP rate limiting: a deterministic per-probe coin flip
// keyed on the router and the probe's IP-ID, so a retry (new IP-ID) draws
// a fresh coin.
func (c *sendCtx) icmpLost(r *Router, f *frame) bool {
	p := r.Profile.ICMPLossProb
	if p <= 0 {
		return false
	}
	h := uint64(r.ID)*0x9e3779b97f4a7c15 ^ uint64(f.ip.ID)*0xc2b2ae3d27d4eb4f ^ c.flow
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return float64(h%10000)/10000 < p
}

// icmpError builds a serialized ICMP error reply. All intermediate pieces
// (quote, RFC 4950 object, ICMP message) live in per-Send scratch; the
// only allocation is the returned reply wire, which the caller owns.
func (c *sendCtx) icmpError(r *Router, src netip.Addr, typ, code uint8, f *frame, received mpls.Stack, rcvTTL uint8) []byte {
	s := c.scr
	s.msg = pkt.ICMP{Type: typ, Code: code, Body: c.quoteBytes(f, rcvTTL)}
	if r.Profile.RFC4950 && len(received) > 0 {
		if extb, err := received.AppendMarshal(s.extBuf[:0]); err == nil {
			s.extBuf = extb
			s.extObjs[0] = pkt.ExtensionObject{
				Class: pkt.ClassMPLSLabelStack, CType: pkt.CTypeIncomingStack, Payload: extb,
			}
			s.msg.Extensions = s.extObjs[:1]
		}
	}
	payload, err := s.msg.AppendMarshal(s.payload[:0])
	if err != nil {
		c.n.met.dropParse.Inc()
		return nil
	}
	s.payload = payload
	switch typ {
	case pkt.ICMPTimeExceeded:
		c.n.met.icmpTimeEx.Inc()
	case pkt.ICMPDestUnreachable:
		c.n.met.icmpUnreach.Inc()
	}
	ret := c.retDist(r)
	c.lastRetDist = ret
	initTTL := int(r.Profile.InitialTTLTimeExceeded)
	outTTL := initTTL - ret
	if outTTL < 1 {
		outTTL = 1
	}
	s.out = pkt.IPv4{
		TTL:      uint8(outTTL),
		Protocol: pkt.ProtoICMP,
		ID:       c.nextIPID(r),
		Src:      src,
		Dst:      f.ip.Src,
		Payload:  payload,
	}
	b, err := s.out.AppendMarshal(make([]byte, 0, pkt.IPv4HeaderLen+len(payload)))
	if err != nil {
		return nil
	}
	return b
}

// deliver handles a probe that reached the router owning its destination:
// either a directly attached host answers, or the router itself does.
func (c *sendCtx) deliver(r *Router, f *frame, received mpls.Stack, rcvTTL uint8) []byte {
	if h, ok := c.n.hosts[f.ip.Dst]; ok {
		return c.hostReply(h, r, f)
	}
	// Addressed to the router itself (loopback or interface) or to a
	// routed prefix with no attached host; the router answers either way,
	// sourcing the reply from the probed address as most stacks do.
	switch f.ip.Protocol {
	case pkt.ProtoUDP:
		if !r.Profile.RespondsICMP {
			c.n.met.dropSilent.Inc()
			return nil
		}
		if c.icmpLost(r, f) {
			c.n.met.dropRateLim.Inc()
			return nil
		}
		src := f.ip.Dst
		if _, ok := c.n.addrOwner[src]; !ok {
			src = r.Loopback
		}
		return c.icmpError(r, src, pkt.ICMPDestUnreachable, pkt.CodePortUnreachable, f, received, rcvTTL)
	case pkt.ProtoICMP:
		return c.echoReply(r, f)
	default:
		return nil
	}
}

func (c *sendCtx) echoReply(r *Router, f *frame) []byte {
	if !r.Profile.RespondsEcho {
		c.n.met.dropSilent.Inc()
		return nil
	}
	s := c.scr
	if err := pkt.UnmarshalICMPInto(&s.echo, f.ip.Payload); err != nil || s.echo.Type != pkt.ICMPEchoRequest {
		c.n.met.dropParse.Inc()
		return nil
	}
	s.msg = pkt.ICMP{Type: pkt.ICMPEchoReply, ID: s.echo.ID, Seq: s.echo.Seq, Body: s.echo.Body}
	payload, err := s.msg.AppendMarshal(s.payload[:0])
	if err != nil {
		return nil
	}
	s.payload = payload
	ret := c.retDist(r)
	c.lastRetDist = ret
	outTTL := int(r.Profile.InitialTTLEchoReply) - ret
	if outTTL < 1 {
		outTTL = 1
	}
	src := f.ip.Dst
	if _, ok := c.n.addrOwner[src]; !ok {
		src = r.Loopback
	}
	s.out = pkt.IPv4{
		TTL:      uint8(outTTL),
		Protocol: pkt.ProtoICMP,
		ID:       c.nextIPID(r),
		Src:      src,
		Dst:      f.ip.Src,
		Payload:  payload,
	}
	b, err := s.out.AppendMarshal(make([]byte, 0, pkt.IPv4HeaderLen+len(payload)))
	if err != nil {
		c.n.met.dropParse.Inc()
		return nil
	}
	c.n.met.icmpEcho.Inc()
	return b
}

// hostReply models the destination end host answering: port unreachable
// for UDP probes to closed ports, echo replies for pings.
func (c *sendCtx) hostReply(h *Host, gw *Router, f *frame) []byte {
	const hostInitTTL = 64
	s := c.scr
	var payload []byte
	switch f.ip.Protocol {
	case pkt.ProtoUDP:
		s.msg = pkt.ICMP{Type: pkt.ICMPDestUnreachable, Code: pkt.CodePortUnreachable, Body: c.quoteBytes(f, f.ip.TTL)}
		b, err := s.msg.AppendMarshal(s.payload[:0])
		if err != nil {
			return nil
		}
		s.payload = b
		payload = b
	case pkt.ProtoICMP:
		if err := pkt.UnmarshalICMPInto(&s.echo, f.ip.Payload); err != nil || s.echo.Type != pkt.ICMPEchoRequest {
			c.n.met.dropParse.Inc()
			return nil
		}
		s.msg = pkt.ICMP{Type: pkt.ICMPEchoReply, ID: s.echo.ID, Seq: s.echo.Seq, Body: s.echo.Body}
		b, err := s.msg.AppendMarshal(s.payload[:0])
		if err != nil {
			c.n.met.dropParse.Inc()
			return nil
		}
		s.payload = b
		payload = b
	default:
		return nil
	}
	ret := c.retDist(gw)
	c.lastRetDist = ret + 1
	outTTL := hostInitTTL - ret - 1
	if outTTL < 1 {
		outTTL = 1
	}
	s.out = pkt.IPv4{
		TTL:      uint8(outTTL),
		Protocol: pkt.ProtoICMP,
		Src:      h.Addr,
		Dst:      f.ip.Src,
		Payload:  payload,
	}
	b, err := s.out.AppendMarshal(make([]byte, 0, pkt.IPv4HeaderLen+len(payload)))
	if err != nil {
		c.n.met.dropParse.Inc()
		return nil
	}
	c.n.met.hostReplies.Inc()
	return b
}
