// Package suppressed is maporder testdata: an order-dependent append a
// maintainer has justified in writing.
package suppressed

//arest:allow maporder the result feeds a set-membership check only; element order is provably irrelevant to every consumer

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
