// Package asgen generates the synthetic Internet the measurement campaign
// runs against: the 60 target ASes of the paper's Table 5, each
// instantiated as a netsim topology whose SR/LDP deployment, vendor mix,
// and tunnel-visibility behaviour follow the AS's category and confirmation
// status — with exact ground truth retained for evaluation.
package asgen

// Category is the CAIDA AS-rank role of a target AS.
type Category int

const (
	Stub Category = iota
	Content
	Transit
	Tier1
)

func (c Category) String() string {
	switch c {
	case Stub:
		return "stub"
	case Content:
		return "content"
	case Transit:
		return "transit"
	case Tier1:
		return "tier1"
	default:
		return "?"
	}
}

// Record is one row of Table 5: a targeted AS with its campaign statistics
// and SR-MPLS confirmation sources.
type Record struct {
	ID             int // paper identifier AS#1..AS#60
	ASN            int
	Name           string
	Category       Category
	TracesSent     int
	IPsDiscovered  int
	CiscoConfirmed bool
	SurveyConfirm  bool
}

// Claimed reports whether the AS claims SR-MPLS deployment via either
// confirmation channel.
func (r Record) Claimed() bool { return r.CiscoConfirmed || r.SurveyConfirm }

// Catalogue is Table 5 of the paper: the 60 targeted ASes. IDs #1-12 are
// Stub, #13-25 Content, #26-52 Transit, #53-60 Tier-1.
var Catalogue = []Record{
	{1, 46467, "Dish Network", Stub, 2, 1, true, false},
	{2, 29447, "Iliad Italy", Stub, 5888, 166, true, false},
	{3, 9605, "NTT Docomo", Stub, 10034, 245, true, false},
	{4, 63802, "Flets", Stub, 512, 4, true, false},
	{5, 2506, "NTT West", Stub, 837, 18, true, false},
	{6, 654, "OVH", Stub, 0, 0, false, false},
	{7, 5432, "Proximus", Stub, 15392, 677, false, false},
	{8, 400843, "Audacy", Stub, 1, 0, false, false},
	{9, 400322, "NGtTel", Stub, 15, 0, false, false},
	{10, 399827, "2pifi", Stub, 12, 4, false, false},
	{11, 398872, "Big WiFi", Stub, 6, 2, false, false},
	{12, 8835, "Binkbroadband", Stub, 0, 0, false, true},
	{13, 45102, "Alibaba", Content, 14520, 1813, true, false},
	{14, 15169, "Google", Content, 35262, 19427, true, false},
	{15, 8075, "Microsoft", Content, 256419, 6365, true, false},
	{16, 138384, "Rakuten", Content, 1659, 154, true, false},
	{17, 17676, "Softbank", Content, 147605, 21873, true, false},
	{18, 30149, "Goldman Sachs", Content, 19, 10, false, false},
	{19, 16509, "Amazon", Content, 635599, 25520, false, false},
	{20, 14061, "Digital Ocean", Content, 11743, 3579, false, false},
	{21, 5667, "Meta", Content, 0, 0, false, false},
	{22, 43515, "YouTube", Content, 120, 65, false, false},
	{23, 138699, "Tiktok", Content, 14, 28, false, false},
	{24, 32787, "Akamai", Content, 4274, 6988, false, false},
	{25, 13335, "Cloudflare", Content, 10494, 32735, false, false},
	{26, 12322, "Free", Transit, 42964, 2024, true, false},
	{27, 5410, "Bouygues", Transit, 27771, 1048, true, false},
	{28, 577, "Bell Canada", Transit, 29832, 3748, true, false},
	{29, 23764, "China Telecom", Transit, 11115, 3374, true, false},
	{30, 8220, "Colt", Transit, 243811, 7282, true, false},
	{31, 2516, "KDDI", Transit, 89365, 12994, true, false},
	{32, 38631, "Line", Transit, 423, 12, true, false},
	{33, 64049, "Reliance Jio", Transit, 7014, 2905, true, false},
	{34, 132203, "Tencent", Transit, 7943, 2922, true, false},
	{35, 7018, "AT&T", Transit, 649359, 44929, false, false},
	{36, 3257, "GTT Comm.", Transit, 489738, 234639, true, false},
	{37, 6453, "Tata Comm.", Transit, 275874, 92854, false, false},
	{38, 6762, "Telecom Italia", Transit, 290678, 32313, false, false},
	{39, 7473, "Singtel", Transit, 9549, 5206, false, false},
	{40, 6939, "Hurricane El.", Transit, 652399, 192324, false, false},
	{41, 9002, "RETN", Transit, 526697, 27270, false, false},
	{42, 2828, "Verizon", Transit, 26030, 570, false, false},
	{43, 7922, "Comcast", Transit, 272360, 40382, false, false},
	{44, 11232, "Midco-Net", Transit, 3153, 1071, false, true},
	{45, 13855, "CFU-NET", Transit, 143, 72, false, true},
	{46, 293, "ESnet", Transit, 277155, 307, false, true},
	{47, 31034, "Aruba", Transit, 1186, 346, false, true},
	{48, 31631, "Elevate", Transit, 73, 64, false, true},
	{49, 32440, "Loni", Transit, 401, 70, false, true},
	{50, 33362, "Wiktel", Transit, 117, 39, false, true},
	{51, 44092, "Halservice", Transit, 140, 86, false, true},
	{52, 7794, "Execulink", Transit, 599, 141, false, true},
	{53, 3320, "Deutsche Telekom", Tier1, 370152, 65995, true, false},
	{54, 2914, "NTT Comm.", Tier1, 504001, 209589, true, false},
	{55, 5511, "Orange", Tier1, 51979, 21376, true, false},
	{56, 4637, "Telstra", Tier1, 62075, 18010, true, false},
	{57, 1273, "Vodafone", Tier1, 24308, 8248, true, false},
	{58, 1299, "Arelion", Tier1, 615851, 339007, false, false},
	{59, 174, "Cogent", Tier1, 539127, 217700, false, false},
	{60, 3356, "Level3", Tier1, 468812, 174373, false, false},
}

// ExcludedIDs are the 19 ASes the paper filtered out for insufficient
// coverage (< 100 distinct IPv4 addresses across the 50 VPs).
var ExcludedIDs = map[int]bool{
	1: true, 4: true, 5: true, 6: true, 8: true, 9: true, 10: true, 11: true,
	12: true, 18: true, 21: true, 22: true, 23: true, 32: true, 45: true,
	48: true, 49: true, 50: true, 51: true,
}

// ByID returns the catalogue record with the given paper identifier.
func ByID(id int) (Record, bool) {
	for _, r := range Catalogue {
		if r.ID == id {
			return r, true
		}
	}
	return Record{}, false
}

// Analyzed returns the 41 ASes retained after the coverage filter.
func Analyzed() []Record {
	var out []Record
	for _, r := range Catalogue {
		if !ExcludedIDs[r.ID] {
			out = append(out, r)
		}
	}
	return out
}
