package pkt

import (
	"net/netip"
	"testing"

	"arest/internal/mpls"
	"arest/internal/testrace"
)

// Allocation budgets for the codec layer. These are exact: with a
// caller-held scratch buffer and an Into decoder, the wire codecs must not
// touch the heap at all. A regression here multiplies across every probe
// of every campaign, so the gate is zero, not "small".

func requireAllocs(t *testing.T, name string, want float64, f func()) {
	t.Helper()
	if testrace.Enabled {
		t.Skip("allocation counts are meaningless under -race instrumentation")
	}
	if got := testing.AllocsPerRun(200, f); got > want {
		t.Errorf("%s: %.1f allocs/op, budget %.1f", name, got, want)
	}
}

func TestAllocBudgetEncoders(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	payload := []byte("arest-tnt-probe")
	udp := &UDP{SrcPort: 33434, DstPort: 33435, Payload: payload}
	buf := make([]byte, 0, 512)

	requireAllocs(t, "UDP.AppendMarshal", 0, func() {
		b, err := udp.AppendMarshal(buf[:0], src, dst)
		if err != nil {
			t.Fatal(err)
		}
		buf = b[:0]
	})

	ip := &IPv4{TTL: 5, Protocol: ProtoUDP, ID: 99, Src: src, Dst: dst, Payload: payload}
	requireAllocs(t, "IPv4.AppendMarshal", 0, func() {
		b, err := ip.AppendMarshal(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = b[:0]
	})

	quote, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewMPLSExtension(mpls.Stack{{Label: 16004, TTL: 254}})
	if err != nil {
		t.Fatal(err)
	}
	msg := &ICMP{Type: ICMPTimeExceeded, Code: CodeTTLExceeded, Body: quote,
		Extensions: []ExtensionObject{ext}}
	requireAllocs(t, "ICMP.AppendMarshal+ext", 0, func() {
		b, err := msg.AppendMarshal(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = b[:0]
	})

	stack := mpls.Stack{{Label: 16004, TTL: 254}, {Label: 24001, TTL: 254}}
	requireAllocs(t, "Stack.AppendMarshal", 0, func() {
		b, err := stack.AppendMarshal(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = b[:0]
	})
}

func TestAllocBudgetDecoders(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	inner := &IPv4{TTL: 1, Protocol: ProtoUDP, ID: 7, Src: src, Dst: dst,
		Payload: []byte("arest-tnt-probe")}
	quote, err := inner.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewMPLSExtension(mpls.Stack{{Label: 16004, TTL: 254}})
	if err != nil {
		t.Fatal(err)
	}
	msg := &ICMP{Type: ICMPTimeExceeded, Code: CodeTTLExceeded, Body: quote,
		Extensions: []ExtensionObject{ext}}
	icmpWire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	outer := &IPv4{TTL: 60, Protocol: ProtoICMP, ID: 1234, Src: dst, Dst: src,
		Payload: icmpWire}
	wire, err := outer.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	var rip IPv4
	var rm ICMP
	var qip IPv4
	// Warm up so rm.Extensions has capacity to reuse, as it does in a
	// recycled scratch.
	if err := UnmarshalIPv4Into(&rip, wire); err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalICMPInto(&rm, rip.Payload); err != nil {
		t.Fatal(err)
	}
	requireAllocs(t, "ICMP decode chain", 0, func() {
		if err := UnmarshalIPv4Into(&rip, wire); err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalICMPInto(&rm, rip.Payload); err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalIPv4QuotedInto(&qip, rm.Body); err != nil {
			t.Fatal(err)
		}
	})
	if len(rm.Extensions) != 1 || qip.TTL != 1 {
		t.Fatalf("decode chain lost content: ext=%d qttl=%d", len(rm.Extensions), qip.TTL)
	}
}

func TestAllocBudgetDecodersV6(t *testing.T) {
	src, dst := a6("2001:db8::1"), a6("2001:db8::2")
	msg := &ICMPv6{Type: ICMPv6EchoRequest, ID: 5, Seq: 9, Body: []byte("ping")}
	icmpWire, err := msg.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var rm ICMPv6
	requireAllocs(t, "ICMPv6 decode", 0, func() {
		if err := UnmarshalICMPv6Into(&rm, src, dst, icmpWire); err != nil {
			t.Fatal(err)
		}
	})

	seg := netip.MustParseAddr("2001:db8::9")
	h := &SRH{NextHeader: ProtoICMPv6, SegmentsLeft: 1, Segments: []netip.Addr{seg, seg}}
	srhWire, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var rh SRH
	if _, err := UnmarshalSRHInto(&rh, srhWire); err != nil {
		t.Fatal(err) // warm up segment capacity
	}
	requireAllocs(t, "SRH decode", 0, func() {
		if _, err := UnmarshalSRHInto(&rh, srhWire); err != nil {
			t.Fatal(err)
		}
	})
}
