// Package a is maporder testdata.
package a

import (
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
)

// badAppend accumulates in map order with no sort downstream.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration appends to "out"`
	}
	return out
}

// goodCollectThenSort is the canonical fix: collect, then sort the result.
func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortSlice sorts with sort.Slice instead of a typed helper.
func goodSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// goodKeyed: keyed accumulation is order-free.
func goodKeyed(m map[string][]int) map[string][]int {
	inv := map[string][]int{}
	for k, vs := range m {
		inv[k] = append(inv[k], vs...)
	}
	return inv
}

// goodLoopLocal: the slice is rebuilt per iteration and consumed keyed.
func goodLoopLocal(m map[string][]int) map[string]int {
	sums := map[string]int{}
	for k, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		sums[k] = len(doubled)
	}
	return sums
}

// goodCommutative: sums, counts and max are order-independent folds.
func goodCommutative(m map[string]int) (total, max int) {
	for _, v := range m {
		total += v
		if v > max {
			max = v
		}
	}
	return
}

// badBuilder writes into an outer builder in map order.
func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b.WriteString inside map iteration`
	}
	return b.String()
}

// goodBuilderLocal: a per-iteration builder feeding a keyed map is fine.
func goodBuilderLocal(m map[string]int) map[string]string {
	out := map[string]string{}
	for k, v := range m {
		var b strings.Builder
		b.WriteString(k)
		fmt.Fprintf(&b, "=%d", v)
		out[k] = b.String()
	}
	return out
}

// badHash feeds a hash in map order: the digest drifts run to run.
func badHash(m map[string]string) uint32 {
	h := crc32.NewIEEE()
	for _, v := range m {
		h.Write([]byte(v)) // want `h.Write inside map iteration`
	}
	return h.Sum32()
}

// badPrint emits lines in map order.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside map iteration`
	}
}

// badFprint writes to an outer writer in map order.
func badFprint(m map[string]int, b *strings.Builder) {
	for k := range m {
		fmt.Fprintln(b, k) // want `fmt.Fprintln inside map iteration`
	}
}

// badEscape: the appended slice escapes through a call, unsortable here.
func badEscape(m map[string]int) int {
	n := 0
	for k := range m {
		n += len(append([]string{}, k)) // want "append inside map iteration accumulates"
	}
	return n
}

// goodSliceRange: ranging a slice is always ordered.
func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
