package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Annotation directives mark code that carries an extra machine-checked
// contract, beyond the file-level //arest:allow suppression grammar:
//
//	//arest:mergeable
//	    In the doc comment of a struct type: the struct is a commutative
//	    accumulator — every field must be folded by its Merge method and
//	    every reference-typed field initialized on the zero/reset path
//	    (checked by the foldcomplete analyzer).
//
//	//arest:hotpath             (in a function's doc comment)
//	//arest:hotpath file        (anywhere in a file)
//	//arest:hotpath package     (anywhere in the package)
//	    The function / file / package is on the zero-allocation wire path:
//	    allocation-forcing constructs are forbidden outside cold error
//	    paths (checked by the hotpathalloc analyzer).
//
//	//arest:coldpath <reason>
//	    In a function's doc comment, inside a hotpath scope: exempts the
//	    function (debug formatters, construction-time helpers). The reason
//	    is mandatory, mirroring //arest:allow's audit rule.
//
// Malformed directives are diagnostics: the Runner validates every
// package's annotations (alongside //arest:allow) so a typo fails the
// build instead of silently disabling a check; the consuming analyzers
// re-parse and use only the well-formed results.
const (
	mergeablePrefix = "//arest:mergeable"
	hotpathPrefix   = "//arest:hotpath"
	coldpathPrefix  = "//arest:coldpath"
)

// knownDirectives is every //arest: verb the framework understands;
// collectAllows reports any other //arest: comment as malformed.
var knownDirectives = map[string]bool{
	"allow":     true,
	"mergeable": true,
	"hotpath":   true,
	"coldpath":  true,
}

// directiveArg matches comment c against the one-word directive prefix and
// returns its trimmed argument text. ok is false when c is a different
// directive (e.g. //arest:hotpathx is not //arest:hotpath).
func directiveArg(c *ast.Comment, prefix string) (arg string, ok bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\r' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// HotPaths is the resolved //arest:hotpath / //arest:coldpath annotation
// state of one package: the scopes the hotpathalloc analyzer walks.
type HotPaths struct {
	// Package is set when any file carries //arest:hotpath package.
	Package bool
	// Files holds filenames marked //arest:hotpath file.
	Files map[string]bool
	// Funcs holds function declarations marked hot directly.
	Funcs map[*ast.FuncDecl]bool
	// Cold holds functions opted out with //arest:coldpath, with the
	// written reason (already validated non-empty).
	Cold map[*ast.FuncDecl]string
}

// Hot reports whether fn (declared in file) is on the hot path under the
// collected annotations: directly marked, or swept in by a file/package
// scope and not opted out with //arest:coldpath.
func (h *HotPaths) Hot(fn *ast.FuncDecl, file string) bool {
	if _, cold := h.Cold[fn]; cold {
		return false
	}
	return h.Funcs[fn] || h.Files[file] || h.Package
}

// CollectHotPaths parses the hotpath/coldpath annotations of a package.
// Malformed directives — a bare //arest:hotpath outside a function doc
// comment, an unknown scope word, a //arest:coldpath without a reason or
// outside any hotpath scope — come back as diagnostics.
func CollectHotPaths(fset *token.FileSet, files []*ast.File) (*HotPaths, []Diagnostic) {
	h := &HotPaths{
		Files: map[string]bool{},
		Funcs: map[*ast.FuncDecl]bool{},
		Cold:  map[*ast.FuncDecl]string{},
	}
	var coldDecls []*ast.FuncDecl // h.Cold keys in declaration order
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Analyzer: DirectiveAnalyzerName,
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	for _, f := range files {
		// Function-doc directives claim their comments first, so the
		// file-scope sweep below can tell a bare function mark from a
		// stray one.
		claimed := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if arg, ok := directiveArg(c, hotpathPrefix); ok {
					claimed[c] = true
					switch arg {
					case "":
						h.Funcs[fd] = true
					case "file":
						h.Files[fset.Position(c.Pos()).Filename] = true
					case "package":
						h.Package = true
					default:
						report(c.Pos(), "//arest:hotpath scope must be empty (this function), 'file', or 'package'; got %q", arg)
					}
				}
				if reason, ok := directiveArg(c, coldpathPrefix); ok {
					claimed[c] = true
					if reason == "" {
						report(c.Pos(), "//arest:coldpath is missing its written reason: every hot-path exemption must justify itself")
						continue
					}
					h.Cold[fd] = reason
					coldDecls = append(coldDecls, fd)
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if claimed[c] {
					continue
				}
				if arg, ok := directiveArg(c, hotpathPrefix); ok {
					switch arg {
					case "file":
						h.Files[fset.Position(c.Pos()).Filename] = true
					case "package":
						h.Package = true
					case "":
						report(c.Pos(), "bare //arest:hotpath must sit in a function's doc comment; use '//arest:hotpath file' or '//arest:hotpath package' elsewhere")
					default:
						report(c.Pos(), "//arest:hotpath scope must be empty (this function), 'file', or 'package'; got %q", arg)
					}
				}
				if _, ok := directiveArg(c, coldpathPrefix); ok {
					report(c.Pos(), "//arest:coldpath must sit in a function's doc comment")
				}
			}
		}
	}

	// A coldpath mark outside any hot scope excuses nothing: stale, like
	// an unused allow.
	for _, fd := range coldDecls {
		file := fset.Position(fd.Pos()).Filename
		if !h.Funcs[fd] && !h.Files[file] && !h.Package {
			report(fd.Pos(), "//arest:coldpath on %s excuses nothing: no enclosing //arest:hotpath scope", fd.Name.Name)
		}
	}
	return h, bad
}

// Mergeables returns the struct type specs marked //arest:mergeable in
// declaration order, plus diagnostics for directives on declarations that
// are not struct types. The directive may sit in the TypeSpec's own doc
// or in the doc of its enclosing type declaration block.
func Mergeables(fset *token.FileSet, files []*ast.File) ([]*ast.TypeSpec, []Diagnostic) {
	var marked []*ast.TypeSpec
	var bad []Diagnostic
	hasDirective := func(doc *ast.CommentGroup) (token.Pos, bool) {
		if doc == nil {
			return token.NoPos, false
		}
		for _, c := range doc.List {
			if _, ok := directiveArg(c, mergeablePrefix); ok {
				return c.Pos(), true
			}
		}
		return token.NoPos, false
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				if fd, isFn := decl.(*ast.FuncDecl); isFn {
					if pos, has := hasDirective(fd.Doc); has {
						bad = append(bad, Diagnostic{
							Analyzer: DirectiveAnalyzerName,
							Pos:      fset.Position(pos),
							Message:  "//arest:mergeable marks struct types, not functions",
						})
					}
				}
				continue
			}
			declPos, declMark := hasDirective(gd.Doc)
			for _, spec := range gd.Specs {
				ts, isType := spec.(*ast.TypeSpec)
				if !isType {
					continue
				}
				pos, mark := hasDirective(ts.Doc)
				if !mark && declMark && len(gd.Specs) == 1 {
					pos, mark = declPos, true
				}
				if !mark {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					bad = append(bad, Diagnostic{
						Analyzer: DirectiveAnalyzerName,
						Pos:      fset.Position(pos),
						Message:  fmt.Sprintf("//arest:mergeable on %s: only struct types can be mergeable accumulators", ts.Name.Name),
					})
					continue
				}
				marked = append(marked, ts)
			}
			if declMark && len(gd.Specs) != 1 {
				bad = append(bad, Diagnostic{
					Analyzer: DirectiveAnalyzerName,
					Pos:      fset.Position(declPos),
					Message:  "//arest:mergeable on a grouped declaration is ambiguous; mark the struct's own doc comment",
				})
			}
		}
	}
	return marked, bad
}
