package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"arest/internal/mpls"
)

// ICMP types and codes used by the pipeline.
const (
	ICMPEchoReply       = 0
	ICMPDestUnreachable = 3
	ICMPEchoRequest     = 8
	ICMPTimeExceeded    = 11

	CodePortUnreachable = 3 // under ICMPDestUnreachable
	CodeTTLExceeded     = 0 // under ICMPTimeExceeded
)

// RFC 4884 / RFC 4950 constants.
const (
	icmpHeaderLen       = 8
	ExtensionVersion    = 2   // RFC 4884 Sec. 8
	origDatagramPadLen  = 128 // original datagram field length when extensions are present
	extHeaderLen        = 4
	objectHeaderLen     = 4
	ClassMPLSLabelStack = 1 // RFC 4950
	CTypeIncomingStack  = 1 // RFC 4950
)

// ErrBadExtension reports a malformed ICMP extension structure.
var ErrBadExtension = errors.New("pkt: malformed ICMP extension")

// ExtensionObject is one RFC 4884 extension object.
type ExtensionObject struct {
	Class   uint8
	CType   uint8
	Payload []byte
}

// ICMP is an ICMPv4 message. For error messages (time exceeded, destination
// unreachable) Body holds the quoted original datagram (unpadded) and
// Extensions holds any RFC 4884 objects — notably the RFC 4950 MPLS label
// stack quoted by compliant LSRs. For echo messages Body holds the data.
type ICMP struct {
	Type       uint8
	Code       uint8
	ID         uint16 // echo only
	Seq        uint16 // echo only
	Body       []byte
	Extensions []ExtensionObject
}

// IsError reports whether the message quotes an original datagram.
func (m *ICMP) IsError() bool {
	return m.Type == ICMPTimeExceeded || m.Type == ICMPDestUnreachable
}

// Marshal serializes the message. Error messages with extension objects are
// emitted in RFC 4884 form: the original datagram padded to 128 bytes, the
// length field set, and a checksummed extension structure appended.
func (m *ICMP) Marshal() ([]byte, error) {
	return m.AppendMarshal(nil)
}

// AppendMarshal serializes the message onto dst and returns the extended
// slice, allocating only when dst lacks capacity. The appended bytes are
// identical to Marshal's output; every byte of the appended region is
// written, so dst may be a recycled scratch buffer.
func (m *ICMP) AppendMarshal(dst []byte) ([]byte, error) {
	off := len(dst)
	var b []byte
	switch {
	case m.Type == ICMPEchoRequest || m.Type == ICMPEchoReply:
		var o int
		b, o = grow(dst, icmpHeaderLen+len(m.Body))
		binary.BigEndian.PutUint16(b[o+4:], m.ID)
		binary.BigEndian.PutUint16(b[o+6:], m.Seq)
		copy(b[o+icmpHeaderLen:], m.Body)
	case m.IsError():
		if len(m.Extensions) > 0 {
			var o int
			b, o = grow(dst, icmpHeaderLen)
			b[o+4] = 0
			b[o+5] = origDatagramPadLen / 4 // RFC 4884 length field, 32-bit words
			b[o+6], b[o+7] = 0, 0
			b = appendPaddedOriginal(b, m.Body)
			var err error
			b, err = appendExtensions(b, m.Extensions)
			if err != nil {
				return nil, err
			}
		} else {
			var o int
			b, o = grow(dst, icmpHeaderLen+len(m.Body))
			b[o+4], b[o+5], b[o+6], b[o+7] = 0, 0, 0, 0
			copy(b[o+icmpHeaderLen:], m.Body)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported ICMP type %d", ErrBadHeader, m.Type)
	}
	b[off] = m.Type
	b[off+1] = m.Code
	b[off+2], b[off+3] = 0, 0
	binary.BigEndian.PutUint16(b[off+2:], Checksum(b[off:]))
	return b, nil
}

// appendExtensions appends the RFC 4884 extension structure (version
// header, checksum, objects) onto dst.
func appendExtensions(dst []byte, objs []ExtensionObject) ([]byte, error) {
	off := len(dst)
	b, o := grow(dst, extHeaderLen)
	b[o] = ExtensionVersion << 4
	b[o+1], b[o+2], b[o+3] = 0, 0, 0
	for i := range objs {
		olen := objectHeaderLen + len(objs[i].Payload)
		if olen > 0xffff {
			return nil, fmt.Errorf("%w: object too large", ErrBadExtension)
		}
		b, o = grow(b, olen)
		binary.BigEndian.PutUint16(b[o:], uint16(olen))
		b[o+2] = objs[i].Class
		b[o+3] = objs[i].CType
		copy(b[o+objectHeaderLen:], objs[i].Payload)
	}
	binary.BigEndian.PutUint16(b[off+2:], Checksum(b[off:]))
	return b, nil
}

// UnmarshalICMP parses an ICMPv4 message, verifying the message checksum
// and, when present, the RFC 4884 extension structure checksum. The
// returned message owns its body and extension payloads.
func UnmarshalICMP(b []byte) (*ICMP, error) {
	m := new(ICMP)
	if err := UnmarshalICMPInto(m, b); err != nil {
		return nil, err
	}
	m.Body = append([]byte(nil), m.Body...)
	for i := range m.Extensions {
		m.Extensions[i].Payload = append([]byte(nil), m.Extensions[i].Payload...)
	}
	return m, nil
}

// UnmarshalICMPInto parses an ICMPv4 message into m without allocating
// beyond m's own reusable storage: m.Body and every extension payload
// alias b, and m.Extensions reuses its previous capacity. b must stay live
// and unmodified for as long as m is in use. Verification matches
// UnmarshalICMP.
func UnmarshalICMPInto(m *ICMP, b []byte) error {
	if len(b) < icmpHeaderLen {
		return ErrShortPacket
	}
	if Checksum(b) != 0 {
		return ErrBadChecksum
	}
	ext := m.Extensions[:0]
	*m = ICMP{Type: b[0], Code: b[1]}
	switch {
	case m.Type == ICMPEchoRequest || m.Type == ICMPEchoReply:
		m.ID = binary.BigEndian.Uint16(b[4:])
		m.Seq = binary.BigEndian.Uint16(b[6:])
		m.Body = b[icmpHeaderLen:]
	case m.IsError():
		words := int(b[5])
		rest := b[icmpHeaderLen:]
		if words == 0 {
			// No extensions signalled: everything is original datagram.
			m.Body = rest
			return nil
		}
		origLen := words * 4
		if origLen < origDatagramPadLen {
			// RFC 4884: the original datagram field must be at least
			// 128 bytes when the length attribute is used.
			return fmt.Errorf("%w: length field %d words", ErrBadExtension, words)
		}
		if len(rest) < origLen {
			return fmt.Errorf("%w: original datagram truncated", ErrBadExtension)
		}
		m.Body = trimOriginal(rest[:origLen])
		objs, err := appendUnmarshaledExtensions(ext, rest[origLen:])
		if err != nil {
			return err
		}
		m.Extensions = objs
	default:
		return fmt.Errorf("%w: unsupported ICMP type %d", ErrBadHeader, m.Type)
	}
	return nil
}

// appendUnmarshaledExtensions parses an RFC 4884 extension structure,
// appending the objects onto dst. Object payloads alias b.
func appendUnmarshaledExtensions(dst []ExtensionObject, b []byte) ([]ExtensionObject, error) {
	if len(b) < extHeaderLen {
		return nil, fmt.Errorf("%w: structure truncated", ErrBadExtension)
	}
	if b[0]>>4 != ExtensionVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadExtension, b[0]>>4)
	}
	if binary.BigEndian.Uint16(b[2:]) != 0 && Checksum(b) != 0 {
		return nil, fmt.Errorf("%w: bad extension checksum", ErrBadExtension)
	}
	objs := dst
	off := extHeaderLen
	for off < len(b) {
		if len(b)-off < objectHeaderLen {
			return nil, fmt.Errorf("%w: object header truncated", ErrBadExtension)
		}
		olen := int(binary.BigEndian.Uint16(b[off:]))
		if olen < objectHeaderLen || off+olen > len(b) {
			return nil, fmt.Errorf("%w: object length %d", ErrBadExtension, olen)
		}
		objs = append(objs, ExtensionObject{
			Class:   b[off+2],
			CType:   b[off+3],
			Payload: b[off+objectHeaderLen : off+olen],
		})
		off += olen
	}
	return objs, nil
}

// NewMPLSExtension builds the RFC 4950 incoming-label-stack object from s.
func NewMPLSExtension(s mpls.Stack) (ExtensionObject, error) {
	payload, err := s.Marshal()
	if err != nil {
		return ExtensionObject{}, err
	}
	return ExtensionObject{Class: ClassMPLSLabelStack, CType: CTypeIncomingStack, Payload: payload}, nil
}

// MPLSStack extracts the quoted MPLS label stack from the message's
// RFC 4950 extension object, if present.
func (m *ICMP) MPLSStack() (mpls.Stack, bool) {
	for _, o := range m.Extensions {
		if o.Class == ClassMPLSLabelStack && o.CType == CTypeIncomingStack {
			s, _, err := mpls.UnmarshalStack(o.Payload)
			if err != nil {
				return nil, false
			}
			return s, true
		}
	}
	return nil, false
}

// QuotedIPv4 parses the quoted original datagram of an error message,
// tolerating the truncated quotes many routers emit.
func (m *ICMP) QuotedIPv4() (*IPv4, error) {
	if !m.IsError() {
		return nil, fmt.Errorf("%w: not an error message", ErrBadHeader)
	}
	return UnmarshalIPv4Quoted(m.Body)
}

//arest:coldpath debug formatter, never on the wire path
func (m *ICMP) String() string {
	return fmt.Sprintf("ICMP type=%d code=%d body=%d ext=%d", m.Type, m.Code, len(m.Body), len(m.Extensions))
}
