package netsim

import (
	"math/rand"
	"testing"

	"arest/internal/mpls"
	"arest/internal/pkt"
)

// TestSendRobustAgainstArbitraryBytes throws random byte strings at Send:
// the simulator must reject or drop them without panicking — the same
// robustness a kernel forwarding path needs.
func TestSendRobustAgainstArbitraryBytes(t *testing.T) {
	c := buildChain(t)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(120)
		b := make([]byte, n)
		rng.Read(b)
		// Send must either return an error or a (possibly empty) delivery.
		if _, err := c.net.Send(c.vp, b); err == nil && n >= pkt.IPv4HeaderLen {
			continue
		}
	}
}

// TestSendRobustAgainstMutatedProbes flips bytes in otherwise-valid probes.
func TestSendRobustAgainstMutatedProbes(t *testing.T) {
	c := buildChain(t)
	rng := rand.New(rand.NewSource(7))
	base := udpProbe(c.vp, c.target, 12, 33434)
	for i := 0; i < 2000; i++ {
		b := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = c.net.Send(c.vp, b) // must not panic
	}
}

// TestForwardingNeverLoops checks the loop bound across random topologies
// and random (valid) probes: Send always terminates with a bounded path.
func TestForwardingNeverLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 25; iter++ {
		n := New(int64(iter))
		prof := DefaultProfile(mpls.VendorCisco)
		routers := make([]*Router, 0, 12)
		for i := 0; i < 12; i++ {
			mode := []TunnelMode{ModeIP, ModeLDP, ModeSR}[rng.Intn(3)]
			r := n.AddRouter(RouterConfig{ASN: 100, Vendor: mpls.VendorCisco, Profile: prof,
				SREnabled: mode == ModeSR, LDPEnabled: mode == ModeLDP, Mode: mode})
			routers = append(routers, r)
			if i > 0 {
				n.Connect(routers[rng.Intn(i)].ID, r.ID, 10)
			}
		}
		// A few extra links for cycles in the graph.
		for k := 0; k < 5; k++ {
			i, j := rng.Intn(12), rng.Intn(12)
			if i == j {
				continue
			}
			if _, dup := routers[i].InterfaceTo(routers[j].ID); dup {
				continue
			}
			n.Connect(routers[i].ID, routers[j].ID, 10)
		}
		vp := a("172.16.0.1")
		tgt := a("100.9.0.5")
		n.AddHost(vp, routers[0].ID)
		n.AddHost(tgt, routers[11].ID)
		n.Compute()
		for ttl := 1; ttl <= 40; ttl++ {
			d, err := n.Send(vp, udpProbe(vp, tgt, uint8(ttl), uint16(33434+ttl%4)))
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Path) >= maxSteps {
				t.Fatalf("iter %d ttl %d: forwarding loop, path len %d", iter, ttl, len(d.Path))
			}
		}
	}
}

// TestReplyAlwaysParseable: every non-nil reply the simulator emits must be
// decodable by the prober-side codecs — the wire-format contract.
func TestReplyAlwaysParseable(t *testing.T) {
	for _, opts := range [][]chainOpt{
		{},
		{withMode(ModeLDP), withPlanes(false, true)},
		{withPropagate(false)},
		{withRFC4950(false)},
		{withMode(ModeIP), withPlanes(false, false)},
	} {
		c := buildChain(t, opts...)
		for ttl := 1; ttl <= 12; ttl++ {
			d, err := c.net.Send(c.vp, udpProbe(c.vp, c.target, uint8(ttl), 33434))
			if err != nil {
				t.Fatal(err)
			}
			if d.Reply == nil {
				continue
			}
			rip, err := pkt.UnmarshalIPv4(d.Reply)
			if err != nil {
				t.Fatalf("unparseable reply IP at ttl %d: %v", ttl, err)
			}
			if _, err := pkt.UnmarshalICMP(rip.Payload); err != nil {
				t.Fatalf("unparseable reply ICMP at ttl %d: %v", ttl, err)
			}
		}
	}
}
