package core

import (
	"testing"

	"arest/internal/mpls"
)

func TestJudge(t *testing.T) {
	strongRes := analyze(pathOf(mkHop(mpls.VendorUnknown, 16005), mkHop(mpls.VendorUnknown, 16005)))
	lsoRes := analyze(pathOf(mkHop(mpls.VendorUnknown, 700001, 700002)))
	emptyRes := analyze(pathOf(ipHop(), ipHop()))

	cases := []struct {
		name      string
		results   []*Result
		confirmed bool
		want      Verdict
	}{
		{"nothing", []*Result{emptyRes}, false, VerdictNoEvidence},
		{"nothing-confirmed", []*Result{emptyRes}, true, VerdictNoEvidence},
		{"lso-only", []*Result{lsoRes}, false, VerdictAmbiguous},
		{"lso-only-confirmed", []*Result{lsoRes}, true, VerdictAmbiguous},
		{"strong", []*Result{strongRes}, false, VerdictDetected},
		{"strong-confirmed", []*Result{strongRes}, true, VerdictCorroborated},
		{"strong-plus-lso", []*Result{strongRes, lsoRes}, false, VerdictCorroborated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Judge(c.results, c.confirmed); got != c.want {
				t.Errorf("Judge = %v, want %v", got, c.want)
			}
		})
	}
	if VerdictAmbiguous.String() != "ambiguous" || Verdict(9).String() != "?" {
		t.Error("verdict names wrong")
	}
}

func TestConservativeSegments(t *testing.T) {
	strongRes := analyze(pathOf(mkHop(mpls.VendorUnknown, 16005), mkHop(mpls.VendorUnknown, 16005)))
	lsoRes := analyze(pathOf(mkHop(mpls.VendorUnknown, 700001, 700002)))
	results := []*Result{strongRes, lsoRes}

	// Under a corroborated verdict, LSO counts.
	segs := ConservativeSegments(results, VerdictCorroborated)
	if len(segs) != 2 {
		t.Errorf("corroborated segments = %d, want 2", len(segs))
	}
	// Under anything weaker, LSO is excluded.
	segs = ConservativeSegments(results, VerdictDetected)
	if len(segs) != 1 || segs[0].Flag != FlagCO {
		t.Errorf("detected segments = %+v", segs)
	}
	segs = ConservativeSegments([]*Result{lsoRes}, VerdictAmbiguous)
	if len(segs) != 0 {
		t.Errorf("ambiguous segments = %+v", segs)
	}
}
