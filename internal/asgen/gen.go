package asgen

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"arest/internal/mpls"
	"arest/internal/netsim"
)

// Deployment describes how a synthetic AS is configured. All probabilities
// are evaluated deterministically from the world seed.
type Deployment struct {
	// Routers is the topology size; ExtraLinkFrac adds redundancy links on
	// top of the random spanning tree.
	Routers       int
	ExtraLinkFrac float64

	// MPLS enables label switching at all; SRFrac is the fraction of MPLS
	// routers running SR-MPLS (1 = full SR, 0 = classic LDP).
	MPLS   bool
	SRFrac float64
	// Interworking splits the domain into an SR region and an LDP region
	// joined by dual-plane borders; MappingServer enables SR→LDP.
	Interworking  bool
	MappingServer bool

	// VendorWeights drives the per-router vendor draw.
	VendorWeights map[mpls.Vendor]int

	// Behaviour probabilities (per router, except TE/service per PE pair).
	PropagateProb    float64 // ttl-propagate on => uniform model
	RFC4950Prob      float64
	SNMPOpenProb     float64
	EchoProb         float64
	TEProb           float64 // 2-segment SR-TE stacks
	ServiceProb      float64 // service-SID (unshrinking) stacks
	ClassicStackProb float64 // classic-MPLS double stacks (VPN/RSVP-TE): the LSO source
	EntropyProb      float64 // RFC 6790 entropy-label pairs on classic LSPs
	ExplicitNullProb float64 // egresses advertising explicit null (label 0)
	ICMPLossProb     float64 // per-probe ICMP reply loss (rate limiting)

	// CustomSRGB, when non-zero, overrides every SR router's SRGB
	// (operators customizing ranges, Sec. 3: ~30%).
	CustomSRGB mpls.LabelRange
	// AlignSRGB configures one consistent SRGB across the whole domain,
	// as RFC 8402 recommends and nearly all real deployments do. When
	// false, each router keeps its vendor default — the rare misaligned
	// case the suffix-matching flag exists for.
	AlignSRGB bool
}

// defaultVendorWeights follows the survey's vendor market (Fig. 5a).
func defaultVendorWeights() map[mpls.Vendor]int {
	return map[mpls.Vendor]int{
		mpls.VendorCisco:   40,
		mpls.VendorJuniper: 25,
		mpls.VendorNokia:   12,
		mpls.VendorArista:  8,
		mpls.VendorLinux:   7,
		mpls.VendorHuawei:  8,
	}
}

// DeploymentFor derives a deployment from an AS's category and confirmation
// status, with per-AS overrides for the networks the paper singles out.
func DeploymentFor(rec Record, seed int64) Deployment {
	rng := rand.New(rand.NewSource(seed ^ int64(rec.ID)*7919))
	d := Deployment{
		ExtraLinkFrac: 0.25,
		VendorWeights: defaultVendorWeights(),
		PropagateProb: 0.8,
		RFC4950Prob:   0.85,
		SNMPOpenProb:  0.08,
		EchoProb:      0.25,
		// A minority of classic-MPLS deployments use entropy labels and
		// explicit null; both produce label observations AReST must not
		// misread as Segment Routing.
		EntropyProb:      0.05,
		ExplicitNullProb: 0.1,
		ICMPLossProb:     0.03,
	}
	// Topology size scales with the coverage the paper observed.
	d.Routers = 8 + int(math.Log2(float64(rec.IPsDiscovered)+2))*5
	if d.Routers > 80 {
		d.Routers = 80
	}
	switch rec.Category {
	case Stub:
		d.Routers = min(d.Routers, 18)
		// Stubs are dominated by invisible/implicit tunnels (Fig. 13a).
		d.PropagateProb = 0.35
		d.RFC4950Prob = 0.3
	case Tier1, Transit:
		d.ExtraLinkFrac = 0.4
	}
	switch {
	case rec.Claimed():
		d.MPLS = true
		d.SRFrac = 0.5 + 0.5*rng.Float64()
		d.TEProb = 0.08
		d.Interworking = rng.Float64() < 0.3
		d.MappingServer = d.Interworking
		d.ClassicStackProb = 0.1
	default:
		// Unknown ASes: a third LSO-heavy classic MPLS, a third plain
		// LDP, a third with some SR after all (the paper found SR signals
		// in 94% of unconfirmed ASes, mostly weak).
		d.MPLS = rec.Category != Stub || rng.Float64() < 0.5
		switch rng.Intn(3) {
		case 0:
			d.SRFrac = 0
			d.ClassicStackProb = 0.6
		case 1:
			d.SRFrac = 0
			d.ClassicStackProb = 0.1
		default:
			d.SRFrac = 0.4 + 0.4*rng.Float64()
			d.Interworking = rng.Float64() < 0.3
			d.MappingServer = d.Interworking
			d.ClassicStackProb = 0.2
		}
	}
	// ~30% of operators customize the vendor SRGB (survey, Sec. 3).
	if d.SRFrac > 0 && rng.Float64() < 0.3 {
		base := uint32(100000 + rng.Intn(50)*1000)
		d.CustomSRGB = mpls.LabelRange{Lo: base, Hi: base + 7999}
	}
	// Almost all domains keep one consistent SRGB (RFC 8402); the rare
	// rest leave per-vendor defaults, which is what suffix matching
	// catches (the paper measures only 0.01% suffix-based matches).
	d.AlignSRGB = rng.Float64() < 0.98
	applyOverrides(rec, &d)
	return d
}

// applyOverrides pins the behaviours the paper reports for specific ASes.
func applyOverrides(rec Record, d *Deployment) {
	switch rec.ID {
	case 2, 3, 16: // Iliad Italy, NTT Docomo, Rakuten: no explicit tunnels
		d.PropagateProb = 0
		d.RFC4950Prob = 0.2
	case 44: // Midco-Net: ~5% explicit tunnels
		d.PropagateProb = 0.05
	case 46: // ESnet: full SR, fingerprint-blind, service-SID stacks.
		// A small pipe-mode minority leaves opaque ending hops whose deep
		// quotes raise LSO — the ~5% LSO share of Table 3.
		d.MPLS = true
		d.SRFrac = 1
		d.Interworking = false
		d.SNMPOpenProb = 0
		d.EchoProb = 0
		d.PropagateProb = 0.93
		d.RFC4950Prob = 1
		d.ServiceProb = 0.25
		d.CustomSRGB = mpls.LabelRange{} // default ranges
		d.VendorWeights = map[mpls.Vendor]int{mpls.VendorNokia: 100}
	case 52: // Execulink: unshrinking stacks in both contexts
		d.ServiceProb = 0.4
		d.ClassicStackProb = 0.5
	case 15: // Microsoft: widest SR footprint
		d.MPLS = true
		d.SRFrac = 1
		d.Interworking = false
		d.PropagateProb = 1
		d.RFC4950Prob = 1
	case 7: // Proximus: exclusively LSO signals
		d.MPLS = true
		d.SRFrac = 0
		d.ClassicStackProb = 0.8
		d.PropagateProb = 1
		d.RFC4950Prob = 0.9
	case 31, 38, 40, 55: // KDDI, Telecom Italia, HE, Orange: well fingerprinted
		d.SNMPOpenProb = 0.5
		d.EchoProb = 1
	}
}

// World is one synthetic target AS with its probing scaffolding.
type World struct {
	Record Record
	Dep    Deployment
	Net    *netsim.Network
	// Routers are the target-AS routers; Edges the PE subset.
	Routers []*netsim.Router
	Edges   []*netsim.Router
	// VPs are vantage-point host addresses (one per upstream gateway).
	VPs []netip.Addr
	// Targets are tunnel-eligible destinations inside the AS.
	Targets []netip.Addr
	// SRRouter is the ground truth: router ID -> SR-enabled.
	SRRouter map[netsim.RouterID]bool
}

// SREnabledAddr reports the ground truth for an interface address: does it
// belong to an SR-enabled router of the target AS?
func (w *World) SREnabledAddr(a netip.Addr) bool {
	r, ok := w.Net.RouterByAddr(a)
	if !ok {
		return false
	}
	return w.SRRouter[r.ID]
}

// ASNOf annotates an address with its true owner ASN (the oracle the
// bdrmap inference is evaluated against), 0 when unknown.
func (w *World) ASNOf(a netip.Addr) int {
	if r, ok := w.Net.RouterByAddr(a); ok {
		return r.ASN
	}
	return 0
}

func pickVendor(rng *rand.Rand, weights map[mpls.Vendor]int) mpls.Vendor {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := rng.Intn(total)
	for _, v := range []mpls.Vendor{mpls.VendorCisco, mpls.VendorJuniper, mpls.VendorNokia,
		mpls.VendorArista, mpls.VendorLinux, mpls.VendorHuawei, mpls.VendorMikroTik} {
		w := weights[v]
		if n < w {
			return v
		}
		n -= w
	}
	return mpls.VendorCisco
}

// Build instantiates the world: the target-AS topology, upstream vantage
// point gateways, attached targets, the SR/LDP control planes, and the
// SR-TE/service-SID policies.
func Build(rec Record, dep Deployment, numVPs int, seed int64) *World {
	rng := rand.New(rand.NewSource(seed*31 + int64(rec.ID)))
	n := netsim.New(seed ^ int64(rec.ID)<<20)
	n.MappingServer = dep.MappingServer

	w := &World{Record: rec, Dep: dep, Net: n, SRRouter: make(map[netsim.RouterID]bool)}

	// Decide the SR region. Partial deployments are contiguous — operators
	// roll SR out per region/POP, not per random router — so any SRFrac
	// strictly between 0 and 1 splits the index space at a cut. The
	// Interworking knob only decides whether the two regions interoperate
	// at the label level (mapping server / dual-plane borders).
	regionized := dep.MPLS && dep.SRFrac > 0 && dep.SRFrac < 1
	cut := int(float64(dep.Routers) * dep.SRFrac)
	// Large LDP remainders split into two islands hanging off different SR
	// borders, so multi-island chaining patterns (LDP-SR-LDP) can occur.
	island2 := dep.Routers + 1
	if regionized && dep.Routers-cut >= 8 {
		island2 = cut + (dep.Routers-cut)/2
	}
	border2 := cut / 2 // SR-side attachment of the second island
	srOf := func(i int) bool {
		if !dep.MPLS {
			return false
		}
		if regionized {
			return i < cut
		}
		return dep.SRFrac >= 1
	}
	borderOf := func(i int) bool {
		if !regionized || !dep.Interworking {
			return false
		}
		if i == cut-1 || i == cut {
			return true // routers straddling the first region cut
		}
		return island2 <= dep.Routers && (i == border2 || i == island2)
	}

	for i := 0; i < dep.Routers; i++ {
		v := pickVendor(rng, dep.VendorWeights)
		prof := netsim.DefaultProfile(v)
		prof.TTLPropagate = rng.Float64() < dep.PropagateProb
		prof.RFC4950 = rng.Float64() < dep.RFC4950Prob
		prof.SNMPOpen = rng.Float64() < dep.SNMPOpenProb
		prof.RespondsEcho = rng.Float64() < dep.EchoProb
		prof.ExplicitNull = rng.Float64() < dep.ExplicitNullProb
		prof.ICMPLossProb = dep.ICMPLossProb
		sr := srOf(i)
		border := borderOf(i)
		cfg := netsim.RouterConfig{
			Name:    fmt.Sprintf("%s-r%d", rec.Name, i),
			ASN:     rec.ASN,
			Vendor:  v,
			Profile: prof,
		}
		switch {
		case sr || border:
			cfg.SREnabled = true
			cfg.LDPEnabled = border
			cfg.Mode = netsim.ModeSR
			switch {
			case dep.CustomSRGB.Size() > 0:
				cfg.SRGB = dep.CustomSRGB
			case dep.AlignSRGB:
				// Domain-wide consistent SRGB: the common multi-vendor
				// interop configuration (Cisco's default block).
				cfg.SRGB = mpls.CiscoSRGB
			}
		case dep.MPLS:
			cfg.LDPEnabled = true
			cfg.Mode = netsim.ModeLDP
		default:
			cfg.Mode = netsim.ModeIP
		}
		r := n.AddRouter(cfg)
		w.Routers = append(w.Routers, r)
		w.SRRouter[r.ID] = cfg.SREnabled
		if i > 0 {
			// Random tree over the already-placed routers; each region
			// stays contiguous, LDP islands hanging off their SR border.
			parent := treeParent(i, cut, island2, border2, regionized, rng)
			n.Connect(w.Routers[parent].ID, r.ID, 10)
		}
	}
	// Redundancy links (within regions to keep interworking clean).
	extra := int(float64(dep.Routers) * dep.ExtraLinkFrac)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(dep.Routers), rng.Intn(dep.Routers)
		if i == j {
			continue
		}
		if regionized && regionOf(i, cut, island2) != regionOf(j, cut, island2) {
			continue
		}
		a, b := w.Routers[i], w.Routers[j]
		if _, dup := a.InterfaceTo(b.ID); dup {
			continue
		}
		n.Connect(a.ID, b.ID, 10+rng.Intn(3)*10)
	}

	// PE selection: degree-1 routers plus random picks, at least 2.
	isEdge := make(map[netsim.RouterID]bool)
	for _, r := range w.Routers {
		if len(n.Neighbors(r.ID)) <= 1 {
			isEdge[r.ID] = true
		}
	}
	for len(isEdge) < max(2, dep.Routers/5) {
		isEdge[w.Routers[rng.Intn(dep.Routers)].ID] = true
	}
	for _, r := range w.Routers {
		if isEdge[r.ID] {
			w.Edges = append(w.Edges, r)
		}
	}

	// Customer prefixes and target hosts behind PEs.
	for k, pe := range w.Edges {
		p := netip.MustParsePrefix(fmt.Sprintf("100.%d.%d.0/24", rec.ID%250, k))
		n.AdvertisePrefix(pe.ID, p)
		host := netip.MustParseAddr(fmt.Sprintf("100.%d.%d.20", rec.ID%250, k))
		n.AddHost(host, pe.ID)
		w.Targets = append(w.Targets, host)
	}
	for _, r := range w.Routers {
		w.Targets = append(w.Targets, r.Loopback)
	}

	// Vantage points: one upstream gateway AS each, wired into core
	// (non-customer-edge) routers when available, as transit enters an AS
	// at peering ASBRs rather than at customer PEs.
	var core []*netsim.Router
	for i, r := range w.Routers {
		if isEdge[r.ID] {
			continue
		}
		// In an incrementally-deployed (interworking) domain the SR
		// region is the transit core: external traffic enters there and
		// descends into the legacy LDP islands, which is why SR→LDP is
		// the dominant interworking direction in the paper.
		if regionized && !srOf(i) && !borderOf(i) {
			continue
		}
		core = append(core, r)
	}
	if len(core) == 0 {
		core = w.Edges
	}
	// A minority of entry points sit on the legacy side (customer uplinks
	// into LDP islands), producing the paper's rare LDP→SR direction.
	var ldpCore []*netsim.Router
	if regionized && dep.Interworking {
		for i, r := range w.Routers {
			if i >= cut && !isEdge[r.ID] {
				ldpCore = append(ldpCore, r)
			}
		}
	}
	for v := 0; v < numVPs; v++ {
		gw := n.AddRouter(netsim.RouterConfig{
			Name: fmt.Sprintf("vpgw-%d", v), ASN: 64500 + v,
			Vendor: mpls.VendorLinux, Profile: netsim.DefaultProfile(mpls.VendorLinux),
			Mode: netsim.ModeIP,
		})
		entry := core[rng.Intn(len(core))]
		if len(ldpCore) > 0 && v%8 == 7 {
			entry = ldpCore[rng.Intn(len(ldpCore))]
		}
		n.Connect(gw.ID, entry.ID, 10)
		vp := netip.MustParseAddr(fmt.Sprintf("172.16.%d.10", v))
		n.AddHost(vp, gw.ID)
		w.VPs = append(w.VPs, vp)
	}

	// Service SIDs for PEs that terminate service chains, and VPN-style
	// service labels for classic-MPLS PEs (the depth-2 LSO source).
	svc := make(map[netsim.RouterID]uint32)
	vpn := make(map[netsim.RouterID]uint32)
	for _, pe := range w.Edges {
		if w.SRRouter[pe.ID] {
			svc[pe.ID] = n.AllocateServiceSID(pe, pe.Name)
		}
		if dep.ClassicStackProb > 0 && dep.MPLS {
			vpn[pe.ID] = n.AllocateServiceSID(pe, "vpn-"+pe.Name)
		}
	}
	if dep.ClassicStackProb > 0 {
		classicProb := dep.ClassicStackProb
		n.LDPStackPolicy = func(ing *netsim.Router, egress netsim.RouterID, dst netip.Addr) (uint32, bool) {
			label, ok := vpn[egress]
			if !ok {
				return 0, false
			}
			if float64(addrHash(dst)>>5%1000)/1000 >= classicProb {
				return 0, false
			}
			return label, true
		}
	}
	if dep.EntropyProb > 0 {
		entropyProb := dep.EntropyProb
		n.EntropyPolicy = func(ing *netsim.Router, egress netsim.RouterID, dst netip.Addr, flow uint64) bool {
			return float64(addrHash(dst)>>13%1000)/1000 < entropyProb
		}
	}
	// SR routers usable as TE waypoints.
	var srIDs []netsim.RouterID
	for _, r := range w.Routers {
		if w.SRRouter[r.ID] {
			srIDs = append(srIDs, r.ID)
		}
	}
	teProb, svcProb := dep.TEProb, dep.ServiceProb
	n.SRPolicy = func(ing *netsim.Router, egress netsim.RouterID, dst netip.Addr, flow uint64) netsim.SegmentList {
		h := addrHash(dst)
		if svcProb > 0 && float64(h%1000)/1000 < svcProb {
			if label, ok := svc[egress]; ok {
				return netsim.SegmentList{{Node: egress}, {Service: true, ServiceLabel: label}}
			}
		}
		if teProb > 0 && float64(h>>10%1000)/1000 < teProb && len(srIDs) > 0 {
			wp := srIDs[int(h>>20)%len(srIDs)]
			// Steering through an adjacent waypoint is pointless; real TE
			// policies pick distant ones, which also keeps every segment
			// long enough to expose a label sequence.
			if wp != egress && wp != ing.ID &&
				n.PathLen(ing.ID, wp, flow) >= 2 && n.PathLen(wp, egress, flow) >= 2 {
				return netsim.SegmentList{{Node: wp}, {Node: egress}}
			}
		}
		return nil
	}

	n.Compute()
	return w
}

func addrHash(a netip.Addr) uint64 {
	b := a.As4()
	h := uint64(2166136261)
	for _, x := range b {
		h = h*16777619 ^ uint64(x)
	}
	return h
}

// regionOf labels a router index with its deployment region: 0 for the SR
// core, 1 and 2 for the LDP islands.
func regionOf(i, cut, island2 int) int {
	switch {
	case i < cut:
		return 0
	case i < island2:
		return 1
	default:
		return 2
	}
}

// treeParent picks the random-tree attachment point for router i, keeping
// every region internally connected and rooting each LDP island at its SR
// border router.
func treeParent(i, cut, island2, border2 int, regionized bool, rng *rand.Rand) int {
	if !regionized {
		return rng.Intn(i)
	}
	switch {
	case i < cut:
		return rng.Intn(i)
	case i == cut:
		return cut - 1
	case i < island2:
		return cut - 1 + rng.Intn(i-(cut-1)) // border or island-1 routers
	case i == island2:
		return border2
	default:
		// Island 2: parent among border2's island or earlier island-2 routers.
		if i == island2 {
			return border2
		}
		return island2 + rng.Intn(i-island2)
	}
}
