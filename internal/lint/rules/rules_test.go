package rules

import (
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"arest/internal/lint"
)

// newLoader returns a fresh loader rooted at the real module (mutation
// tests need isolated caches, so each call builds its own).
func newLoader(t *testing.T) *lint.Loader {
	t.Helper()
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func testdata(t *testing.T, elems ...string) string {
	t.Helper()
	dir := filepath.Join(append([]string{"testdata", "src"}, elems...)...)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestNoWallClock(t *testing.T) {
	const contractPath = "arestlint.test/nowallclock/a"
	an := NoWallClock(append([]string{contractPath, "arestlint.test/nowallclock/suppressed"}, ContractPackages...))
	lint.RunWantTest(t, newLoader(t), testdata(t, "nowallclock", "a"), contractPath, an)
}

func TestNoWallClockOutsideContract(t *testing.T) {
	// Same analyzer config, but the loaded package is not in the contract
	// set: its time.Now stays legal.
	an := NoWallClock(ContractPackages)
	lint.RunWantTest(t, newLoader(t), testdata(t, "nowallclock", "outside"), "arestlint.test/nowallclock/outside", an)
}

func TestNoWallClockSuppressed(t *testing.T) {
	const path = "arestlint.test/nowallclock/suppressed"
	an := NoWallClock([]string{path})
	lint.RunWantTest(t, newLoader(t), testdata(t, "nowallclock", "suppressed"), path, an)
}

func TestNoGlobalRand(t *testing.T) {
	lint.RunWantTest(t, newLoader(t), testdata(t, "noglobalrand", "a"), "arestlint.test/noglobalrand/a", NoGlobalRand())
}

func TestMapOrder(t *testing.T) {
	lint.RunWantTest(t, newLoader(t), testdata(t, "maporder", "a"), "arestlint.test/maporder/a", MapOrder())
}

func TestMapOrderSuppressed(t *testing.T) {
	lint.RunWantTest(t, newLoader(t), testdata(t, "maporder", "suppressed"), "arestlint.test/maporder/suppressed", MapOrder())
}

func TestNoErrDrop(t *testing.T) {
	const path = "arestlint.test/noerrdrop/a"
	an := NoErrDrop(append([]string{path}, ErrAuditPackages...))
	lint.RunWantTest(t, newLoader(t), testdata(t, "noerrdrop", "a"), path, an)
}

func TestNoErrDropOutsideAudit(t *testing.T) {
	// Same analyzer config, but the loaded package is not in the audited
	// set: its discarded errors stay legal.
	an := NoErrDrop(ErrAuditPackages)
	lint.RunWantTest(t, newLoader(t), testdata(t, "noerrdrop", "outside"), "arestlint.test/noerrdrop/outside", an)
}

func TestNoErrDropSuppressed(t *testing.T) {
	const path = "arestlint.test/noerrdrop/suppressed"
	an := NoErrDrop([]string{path})
	lint.RunWantTest(t, newLoader(t), testdata(t, "noerrdrop", "suppressed"), path, an)
}

func TestNilSafe(t *testing.T) {
	const path = "arestlint.test/nilsafe/a"
	an := NilSafe(path, []string{"Counter", "Registry"})
	lint.RunWantTest(t, newLoader(t), testdata(t, "nilsafe", "a"), path, an)
}

func TestFoldComplete(t *testing.T) {
	lint.RunWantTest(t, newLoader(t), testdata(t, "foldcomplete", "a"), "arestlint.test/foldcomplete/a", FoldComplete())
}

func TestHotPathAlloc(t *testing.T) {
	lint.RunWantTest(t, newLoader(t), testdata(t, "hotpathalloc", "a"), "arestlint.test/hotpathalloc/a", HotPathAlloc())
}

func TestNoLockCopy(t *testing.T) {
	lint.RunWantTest(t, newLoader(t), testdata(t, "nolockcopy", "a"), "arestlint.test/nolockcopy/a", NoLockCopy())
}

func TestAtomicMix(t *testing.T) {
	lint.RunWantTest(t, newLoader(t), testdata(t, "atomicmix", "a"), "arestlint.test/atomicmix/a", AtomicMix())
}

func TestCtxPlumbEntry(t *testing.T) {
	const path = "arestlint.test/ctxplumb/entry"
	an := CtxPlumb(append([]string{path}, CtxEntryPackages...), CtxPoolPackages)
	lint.RunWantTest(t, newLoader(t), testdata(t, "ctxplumb", "entry"), path, an)
}

func TestCtxPlumbPool(t *testing.T) {
	const path = "arestlint.test/ctxplumb/pool"
	an := CtxPlumb(CtxEntryPackages, append([]string{path}, CtxPoolPackages...))
	lint.RunWantTest(t, newLoader(t), testdata(t, "ctxplumb", "pool"), path, an)
}

func TestCtxPlumbOutside(t *testing.T) {
	// Same analyzer config, but the loaded package is in neither set: its
	// ctx-free entry points and blind loops stay legal.
	an := CtxPlumb(CtxEntryPackages, CtxPoolPackages)
	lint.RunWantTest(t, newLoader(t), testdata(t, "ctxplumb", "outside"), "arestlint.test/ctxplumb/outside", an)
}

// TestRealTreeClean is the acceptance gate in test form: the production
// analyzer set over every package of the module must report nothing, with
// every //arest:allow directive both well-formed and actually used.
func TestRealTreeClean(t *testing.T) {
	l := newLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	runner := &lint.Runner{Analyzers: All()}
	diags, err := runner.Run(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("real tree not arestlint-clean: %s", d)
	}
}

// TestNilGuardDeletionCaught mutates the real internal/obs package: for
// every exported instrument method whose first receiver-using statement
// is a nil guard, deleting (or unwrapping) that guard must produce a
// nilsafe finding naming the method. This pins the acceptance criterion
// that removing any one nil-guard in internal/obs fails the build.
func TestNilGuardDeletionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	obsDir := filepath.Join(root, "internal", "obs")
	names := map[string]bool{}
	for _, n := range ObsInstrumentTypes {
		names[n] = true
	}

	// Parse the package once to enumerate mutation sites.
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, obsDir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	obsPkg, ok := pkgs["obs"]
	if !ok {
		t.Fatalf("no obs package in %s", obsDir)
	}

	type site struct {
		file   string
		method string
	}
	fnames := make([]string, 0, len(obsPkg.Files))
	for fname := range obsPkg.Files {
		fnames = append(fnames, fname)
	}
	sort.Strings(fnames)
	var sites []site
	for _, fname := range fnames {
		for _, decl := range obsPkg.Files[fname].Decls {
			if m := guardedMethod(decl, names); m != "" {
				sites = append(sites, site{fname, m})
			}
		}
	}
	if len(sites) < 10 {
		t.Fatalf("found only %d guarded obs methods; expected the full instrument surface", len(sites))
	}

	for _, s := range sites {
		s := s
		t.Run(s.method, func(t *testing.T) {
			dir := t.TempDir()
			writeMutatedObs(t, obsDir, dir, s.file, s.method, names)
			l := newLoader(t)
			pkg, err := l.LoadDir(dir, ObsPackage)
			if err != nil {
				t.Fatalf("mutated obs no longer type-checks: %v", err)
			}
			runner := &lint.Runner{Analyzers: []*lint.Analyzer{NilSafe(ObsPackage, ObsInstrumentTypes)}}
			diags, err := runner.Run([]*lint.Package{pkg})
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, d := range diags {
				if strings.Contains(d.Message, "."+s.method+" ") {
					found = true
				}
			}
			if !found {
				t.Errorf("deleting the nil guard of %s went undetected; got %d diagnostics: %v", s.method, len(diags), diags)
			}
		})
	}
}

// guardedMethod returns the method name when decl is an exported
// instrument method beginning with a nil guard, else "".
func guardedMethod(decl ast.Decl, typeNames map[string]bool) string {
	fd, ok := decl.(*ast.FuncDecl)
	if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil || len(fd.Body.List) == 0 {
		return ""
	}
	star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return ""
	}
	base, ok := star.X.(*ast.Ident)
	if !ok || !typeNames[base.Name] {
		return ""
	}
	if findGuard(fd) < 0 {
		return ""
	}
	return fd.Name.Name
}

// findGuard returns the index of the method's leading nil-guard if
// statement (the first statement that is an if with a receiver-nil
// comparison), or -1.
func findGuard(fd *ast.FuncDecl) int {
	if len(fd.Recv.List[0].Names) != 1 {
		return -1
	}
	recv := fd.Recv.List[0].Names[0].Name
	for i, stmt := range fd.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok {
			continue
		}
		if cond, ok := ifs.Cond.(*ast.BinaryExpr); ok {
			if x, ok := cond.X.(*ast.Ident); ok && x.Name == recv {
				if y, ok := cond.Y.(*ast.Ident); ok && y.Name == "nil" {
					return i
				}
			}
		}
	}
	return -1
}

// writeMutatedObs copies the obs package sources into dst, stripping the
// nil guard from the named method in the named file: an `if recv == nil`
// guard is deleted outright, an `if recv != nil` wrap is replaced by its
// body.
func writeMutatedObs(t *testing.T, srcDir, dst, mutFile, method string, typeNames map[string]bool) {
	t.Helper()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	mutated := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src := filepath.Join(srcDir, e.Name())
		if src != mutFile {
			data, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, src, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method || guardedMethod(decl, typeNames) == "" {
				continue
			}
			i := findGuard(fd)
			ifs := fd.Body.List[i].(*ast.IfStmt)
			cond := ifs.Cond.(*ast.BinaryExpr)
			var repl []ast.Stmt
			if cond.Op == token.NEQ {
				repl = ifs.Body.List
			}
			fd.Body.List = append(append(append([]ast.Stmt{}, fd.Body.List[:i]...), repl...), fd.Body.List[i+1:]...)
			mutated = true
			break
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := printer.Fprint(out, fset, f); err != nil {
			t.Fatal(err)
		}
		out.Close()
	}
	if !mutated {
		t.Fatalf("method %s not found (or not guarded) in %s", method, mutFile)
	}
}

// copyGoFiles copies the non-test .go sources of the package in srcDir
// into dst, so mutation tests can break a real package in isolation.
func copyGoFiles(t *testing.T, srcDir, dst string) {
	t.Helper()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runAllOnMutation loads the mutated package copy in dir under its real
// import path and runs the full production analyzer set over it.
func runAllOnMutation(t *testing.T, dir, importPath string) []lint.Diagnostic {
	t.Helper()
	l := newLoader(t)
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("mutated %s no longer type-checks: %v", importPath, err)
	}
	runner := &lint.Runner{Analyzers: All()}
	diags, err := runner.Run([]*lint.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// requireFinding asserts that one of the diagnostics comes from the named
// analyzer and mentions fragment.
func requireFinding(t *testing.T, diags []lint.Diagnostic, analyzer, fragment string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, fragment) {
			return
		}
	}
	t.Errorf("no %s finding mentioning %q; diagnostics: %v", analyzer, fragment, diags)
}

// TestWallClockInjectionCaught pins the other acceptance criterion:
// adding a time.Now() call to internal/netsim makes arestlint fail. The
// real netsim sources are copied verbatim next to one injected file.
func TestWallClockInjectionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copyGoFiles(t, filepath.Join(root, "internal", "netsim"), dir)
	inject := `package netsim

import "time"

// wallClockDrift is the mutation: a contract package reading the clock.
func wallClockDrift() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "zz_mutation.go"), []byte(inject), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAllOnMutation(t, dir, "arest/internal/netsim")
	requireFinding(t, diags, "nowallclock", "time.Now")
}

// TestMergeLineDeletionCaught mutates the real internal/exp package:
// deleting one fold line from Agg.Merge must produce a foldcomplete
// finding naming the dropped field. This pins the "add a field, forget
// the fold" tripwire on the struct the annotation exists for.
func TestMergeLineDeletionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copyGoFiles(t, filepath.Join(root, "internal", "exp"), dir)
	agg := filepath.Join(dir, "agg.go")
	data, err := os.ReadFile(agg)
	if err != nil {
		t.Fatal(err)
	}
	const foldLine = "\ta.Traces += o.Traces\n"
	if !strings.Contains(string(data), foldLine) {
		t.Fatalf("agg.go no longer contains %q; update the mutation target", foldLine)
	}
	mutated := strings.Replace(string(data), foldLine, "", 1)
	if err := os.WriteFile(agg, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAllOnMutation(t, dir, "arest/internal/exp")
	requireFinding(t, diags, "foldcomplete", "Agg.Traces is not folded by Merge")
}

// TestFieldInjectionCaught adds a map field to the real exp.Agg without
// touching Merge or NewAgg: foldcomplete must report both the missing
// fold and the missing zero-path initialization.
func TestFieldInjectionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copyGoFiles(t, filepath.Join(root, "internal", "exp"), dir)
	agg := filepath.Join(dir, "agg.go")
	data, err := os.ReadFile(agg)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "type Agg struct {\n"
	if !strings.Contains(string(data), anchor) {
		t.Fatalf("agg.go no longer contains %q; update the mutation anchor", anchor)
	}
	mutated := strings.Replace(string(data), anchor, anchor+"\tZzHist map[string]uint64\n", 1)
	if err := os.WriteFile(agg, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAllOnMutation(t, dir, "arest/internal/exp")
	requireFinding(t, diags, "foldcomplete", "Agg.ZzHist is not folded by Merge")
	requireFinding(t, diags, "foldcomplete", "Agg.ZzHist is never initialized on the zero/reset path")
}

// TestCtxEntryInjectionCaught injects a ctx-free exported entry point into
// the real internal/exp package: ctxplumb must reject the boundary.
func TestCtxEntryInjectionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copyGoFiles(t, filepath.Join(root, "internal", "exp"), dir)
	inject := `package exp

// RunZz is the mutation: an exported lifecycle boundary without a context.
func RunZz(n int) int { return n }
`
	if err := os.WriteFile(filepath.Join(dir, "zz_mutation.go"), []byte(inject), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAllOnMutation(t, dir, "arest/internal/exp")
	requireFinding(t, diags, "ctxplumb", "RunZz must take context.Context")
}

// TestCtxLoopInjectionCaught injects a cancellation-blind claim loop into
// the real internal/par package: ctxplumb must reject the worker loop.
func TestCtxLoopInjectionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copyGoFiles(t, filepath.Join(root, "internal", "par"), dir)
	inject := `package par

import "sync"

// zzDrain is the mutation: a go-spawned claim loop that never observes
// cancellation.
func zzDrain(ready chan int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range ready {
			fn(i)
		}
	}()
	wg.Wait()
}
`
	if err := os.WriteFile(filepath.Join(dir, "zz_mutation.go"), []byte(inject), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAllOnMutation(t, dir, "arest/internal/par")
	requireFinding(t, diags, "ctxplumb", "never observes ctx cancellation")
}

// TestHotPathInjectionCaught injects a formatting helper into the real
// internal/pkt package, whose //arest:hotpath package scope must sweep
// the new function in and reject the fmt call.
func TestHotPathInjectionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copyGoFiles(t, filepath.Join(root, "internal", "pkt"), dir)
	inject := `package pkt

import "fmt"

// zzFormatLabel is the mutation: formatting on the zero-alloc wire path.
func zzFormatLabel(v uint32) string { return fmt.Sprintf("label=%d", v) }
`
	if err := os.WriteFile(filepath.Join(dir, "zz_mutation.go"), []byte(inject), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAllOnMutation(t, dir, "arest/internal/pkt")
	requireFinding(t, diags, "hotpathalloc", "fmt.Sprintf")
}

// TestLockCopyInjectionCaught injects a by-value Registry copy into the
// real internal/obs package: nolockcopy must reject the forked mutex.
func TestLockCopyInjectionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copyGoFiles(t, filepath.Join(root, "internal", "obs"), dir)
	inject := `package obs

// zzSnapshot is the mutation: a by-value Registry copy forking its mutex.
func zzSnapshot(r *Registry) Registry { return *r }
`
	if err := os.WriteFile(filepath.Join(dir, "zz_mutation.go"), []byte(inject), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAllOnMutation(t, dir, "arest/internal/obs")
	requireFinding(t, diags, "nolockcopy", "dereferences and copies")
}

// TestAtomicMixInjectionCaught injects mixed atomic/plain access to one
// variable into the real internal/obs package: atomicmix must reject the
// plain read.
func TestAtomicMixInjectionCaught(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	copyGoFiles(t, filepath.Join(root, "internal", "obs"), dir)
	inject := `package obs

import "sync/atomic"

var zzWord uint64

// zzBump and zzPeek are the mutation: atomic and plain access mixed on
// one word.
func zzBump() { atomic.AddUint64(&zzWord, 1) }

func zzPeek() uint64 { return zzWord }
`
	if err := os.WriteFile(filepath.Join(dir, "zz_mutation.go"), []byte(inject), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAllOnMutation(t, dir, "arest/internal/obs")
	requireFinding(t, diags, "atomicmix", "zzWord is accessed with sync/atomic")
}
