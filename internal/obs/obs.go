// Package obs is the campaign observability layer: a deterministic,
// concurrency-safe metrics registry threaded through every pipeline stage
// (netsim forwarding, probing, alias resolution, fingerprinting, the
// campaign driver) and exported by the CLIs as JSON or a human summary.
//
// Two classes of instruments with different determinism contracts:
//
//   - Counters, gauges and histograms record *events* — probes sent, drops
//     by reason, pair tests pruned. Every event is a pure function of what
//     is measured (never of scheduling), and atomic adds/maxes commute, so
//     their values at any stage boundary are identical at every Workers
//     count (same argument as DESIGN.md §7.2). The campaign equivalence
//     test asserts snapshot equality at Workers 1 vs 8.
//   - Spans record *wall-clock timings* through an injectable clock. They
//     are explicitly excluded from the determinism contract: enabling them
//     never perturbs pipeline output, but their values depend on the
//     machine and the schedule.
//
// All instruments are nil-safe: methods on a nil *Registry or nil
// instrument are no-ops, so library code records unconditionally and only
// pays when a caller actually installed a registry.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds zero values, bucket i holds [2^(i-1), 2^i), the last bucket
// overflows to +Inf.
const histBuckets = 28

// Registry holds one run's instruments, keyed "stage.reason". The zero
// value is not usable; nil is a valid no-op registry.
type Registry struct {
	clock func() time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*Span
}

// New returns an empty registry using the real clock.
func New() *Registry {
	return &Registry{
		clock:    time.Now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*Span),
	}
}

// SetClock injects a fake clock (tests); it must be called before any Span
// is started.
func (r *Registry) SetClock(fn func() time.Time) {
	if r == nil {
		return
	}
	r.clock = fn
}

func key(stage, reason string) string { return stage + "." + reason }

// Counter is a monotonically increasing event count. Atomic adds commute,
// so counter values are schedule-independent whenever the recorded events
// are.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n; no-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one; no-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns (creating if needed) the counter stage.reason.
func (r *Registry) Counter(stage, reason string) *Counter {
	if r == nil {
		return nil
	}
	k := key(stage, reason)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge records the maximum value observed. Max is commutative and
// associative, so concurrent SetMax calls yield a schedule-independent
// value whenever the observed values are.
type Gauge struct{ v atomic.Uint64 }

// SetMax raises the gauge to n if n is larger; no-op on nil.
func (g *Gauge) SetMax(n uint64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current maximum (0 on nil).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Gauge returns (creating if needed) the max-gauge stage.reason.
func (r *Registry) Gauge(stage, reason string) *Gauge {
	if r == nil {
		return nil
	}
	k := key(stage, reason)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram counts observations into power-of-two buckets. Bucket counts
// and the sum are atomic, so histograms share the counters' determinism
// contract when the observed values do.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value; no-op on nil.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := bits.Len64(v) // 0 for v==0, else floor(log2(v))+1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Histogram returns (creating if needed) the histogram stage.reason.
func (r *Registry) Histogram(stage, reason string) *Histogram {
	if r == nil {
		return nil
	}
	k := key(stage, reason)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Span accumulates wall-clock durations of a repeated pipeline stage.
// Spans are OUTSIDE the determinism contract: values depend on machine and
// schedule.
type Span struct {
	count atomic.Uint64
	ns    atomic.Int64
	clock func() time.Time
}

// Start begins one timed section; the returned func ends it. Safe on nil
// (returns a no-op func).
func (s *Span) Start() func() {
	if s == nil {
		return func() {}
	}
	t0 := s.clock()
	return func() {
		s.count.Add(1)
		s.ns.Add(s.clock().Sub(t0).Nanoseconds())
	}
}

// AddDuration folds an externally measured duration into the span.
func (s *Span) AddDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.count.Add(1)
	s.ns.Add(d.Nanoseconds())
}

// Span returns (creating if needed) the span stage.reason.
func (r *Registry) Span(stage, reason string) *Span {
	if r == nil {
		return nil
	}
	k := key(stage, reason)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[k]
	if !ok {
		s = &Span{clock: r.clock}
		r.spans[k] = s
	}
	return s
}

// Time runs fn inside the span stage.reason (convenience wrapper). On a
// nil registry fn still runs, untimed.
func (r *Registry) Time(stage, reason string, fn func()) {
	if r == nil {
		fn()
		return
	}
	done := r.Span(stage, reason).Start()
	fn()
	done()
}

// SchemaVersion identifies the exported snapshot layout; bump on any
// structural change so downstream consumers can detect drift.
const SchemaVersion = "arest.metrics.v1"

// Bucket is one histogram bucket in a snapshot: N observations with
// value < Le (Le == 0 marks the zero bucket).
type Bucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is the exported state of one histogram; only non-empty
// buckets are listed, in ascending bound order.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// SpanSnapshot is the exported state of one span.
type SpanSnapshot struct {
	Count   uint64 `json:"count"`
	TotalNs int64  `json:"total_ns"`
}

// Snapshot is a point-in-time copy of every instrument. Counters, Gauges
// and Histograms form the deterministic section; Spans are timing-only.
// encoding/json sorts map keys, so the serialized form is stable.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// Snapshot copies the registry's current state. On a nil registry it
// returns an empty (but schema-tagged) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SchemaVersion,
		Counters:   map[string]uint64{},
		Gauges:     map[string]uint64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := uint64(0)
			if i > 0 {
				le = 1 << uint(i)
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, N: n})
		}
		s.Histograms[k] = hs
	}
	for k, sp := range r.spans {
		s.Spans[k] = SpanSnapshot{Count: sp.count.Load(), TotalNs: sp.ns.Load()}
	}
	return s
}

// Deterministic returns the snapshot restricted to the schedule-independent
// section (counters, gauges, histograms) — the part the parallel-equals-
// sequential campaign test compares across worker counts.
func (s Snapshot) Deterministic() Snapshot {
	return Snapshot{Schema: s.Schema, Counters: s.Counters, Gauges: s.Gauges, Histograms: s.Histograms}
}

// WriteJSON serializes the snapshot as indented, key-sorted JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ExportFile writes the snapshot to path: indented JSON when the name ends
// in ".json", the human-readable summary table otherwise. "-" writes the
// summary to stdout. This is the common backend of the CLIs' -metrics flag.
func (s Snapshot) ExportFile(path string) error {
	if path == "-" {
		_, err := os.Stdout.WriteString(s.Summary())
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return s.WriteJSON(f)
	}
	_, err = f.WriteString(s.Summary())
	return err
}

// stageOf splits "stage.reason" at the first dot.
func stageOf(k string) (stage, reason string) {
	if i := strings.IndexByte(k, '.'); i >= 0 {
		return k[:i], k[i+1:]
	}
	return k, ""
}

// Summary renders the snapshot as a human-readable per-stage table: the
// campaign report operators read after a run.
func (s Snapshot) Summary() string {
	type row struct{ stage, reason, value string }
	var rows []row
	for k, v := range s.Counters {
		st, re := stageOf(k)
		rows = append(rows, row{st, re, fmt.Sprintf("%d", v)})
	}
	for k, v := range s.Gauges {
		st, re := stageOf(k)
		rows = append(rows, row{st, re + " (max)", fmt.Sprintf("%d", v)})
	}
	for k, h := range s.Histograms {
		st, re := stageOf(k)
		mean := float64(0)
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		rows = append(rows, row{st, re + " (hist)", fmt.Sprintf("n=%d mean=%.1f", h.Count, mean)})
	}
	for k, sp := range s.Spans {
		st, re := stageOf(k)
		rows = append(rows, row{st, re + " (span)",
			fmt.Sprintf("n=%d total=%v", sp.Count, time.Duration(sp.TotalNs).Round(time.Microsecond))})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].stage != rows[j].stage {
			return rows[i].stage < rows[j].stage
		}
		return rows[i].reason < rows[j].reason
	})
	var b strings.Builder
	b.WriteString("campaign metrics\n")
	last := ""
	for _, r := range rows {
		st := r.stage
		if st == last {
			st = ""
		} else {
			last = r.stage
		}
		fmt.Fprintf(&b, "  %-12s %-28s %s\n", st, r.reason, r.value)
	}
	return b.String()
}
