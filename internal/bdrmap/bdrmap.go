// Package bdrmap annotates observed interface addresses with the AS that
// owns the router, in the spirit of bdrmapIT. The inference combines three
// signals, exactly as the paper's pipeline does:
//
//  1. a first-pass longest-prefix-match against BGP origins,
//  2. alias sets (MIDAR/APPLE) that let a router's interfaces vote on a
//     common owner — resolving the classic far-side problem where the
//     entry interface of AS B on an A–B link is numbered from A's space,
//  3. a successor heuristic for unaliased border addresses.
package bdrmap

import (
	"net/netip"
	"sort"

	"arest/internal/probe"
)

// Origins resolves an address to a BGP origin ASN (longest prefix match);
// anaximander.RIB.OriginOf satisfies it.
type Origins interface {
	OriginOf(a netip.Addr) (int, bool)
}

// Annotation is the inferred owner of every observed interface address.
type Annotation map[netip.Addr]int

// Annotate runs the inference over the observed traces.
func Annotate(traces []*probe.Trace, rib Origins, aliases [][]netip.Addr) Annotation {
	ann := make(Annotation)

	// Pass 1: prefix-origin annotation of every observed address. The
	// pristine first-pass map is kept separately: the successor heuristic
	// must reason about prefix origins, not corrected ownership, or the
	// true egress border of the upstream AS flips along with the far side.
	prefixAnn := make(Annotation)
	for _, tr := range traces {
		for i := range tr.Hops {
			h := &tr.Hops[i]
			if !h.Responded() {
				continue
			}
			if _, done := ann[h.Addr]; done {
				continue
			}
			if asn, ok := rib.OriginOf(h.Addr); ok {
				ann[h.Addr] = asn
				prefixAnn[h.Addr] = asn
			}
		}
	}

	// Pass 2: alias correction. All interfaces of one router belong to one
	// AS; the majority annotation wins and is applied to every member.
	for _, set := range aliases {
		votes := map[int]int{}
		for _, a := range set {
			if asn, ok := ann[a]; ok {
				votes[asn]++
			}
		}
		if winner, ok := majority(votes); ok {
			for _, a := range set {
				ann[a] = winner
			}
		}
	}

	// Pass 3: successor heuristic for unaliased far-side interfaces. An
	// address always followed by hops of a single different AS — and never
	// by its own prefix-AS — is the entry interface of that next AS,
	// numbered from the neighbor's space.
	succ := successorASes(traces, prefixAnn)
	aliased := map[netip.Addr]bool{}
	for _, set := range aliases {
		for _, a := range set {
			aliased[a] = true
		}
	}
	for addr := range ann {
		if aliased[addr] {
			continue // alias vote is stronger
		}
		own, hasPrefix := prefixAnn[addr]
		if !hasPrefix {
			continue
		}
		sa := succ[addr]
		if len(sa) != 1 {
			continue
		}
		for next := range sa {
			if next != own && next != 0 {
				ann[addr] = next
			}
		}
	}
	return ann
}

// successorASes maps each address to the set of ASes annotated on its
// immediate successors across all traces.
func successorASes(traces []*probe.Trace, ann Annotation) map[netip.Addr]map[int]bool {
	out := make(map[netip.Addr]map[int]bool)
	for _, tr := range traces {
		var prev netip.Addr
		for i := range tr.Hops {
			h := &tr.Hops[i]
			if !h.Responded() {
				prev = netip.Addr{}
				continue
			}
			if prev.IsValid() {
				if asn, ok := ann[h.Addr]; ok {
					m := out[prev]
					if m == nil {
						m = make(map[int]bool)
						out[prev] = m
					}
					m[asn] = true
				}
			}
			prev = h.Addr
		}
	}
	return out
}

func majority(votes map[int]int) (int, bool) {
	type kv struct {
		asn, n int
	}
	var all []kv
	for a, n := range votes {
		all = append(all, kv{a, n})
	}
	if len(all) == 0 {
		return 0, false
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].asn < all[j].asn
	})
	if len(all) > 1 && all[0].n == all[1].n {
		return 0, false // tie: keep first-pass annotations
	}
	return all[0].asn, true
}

// AsFunc adapts the annotation to the func(netip.Addr) int shape that
// core.BuildPath consumes.
func (a Annotation) AsFunc() func(netip.Addr) int {
	return func(addr netip.Addr) int { return a[addr] }
}
