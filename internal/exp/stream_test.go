package exp

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/mpls"
	"arest/internal/obs"
	"arest/internal/probe"
	"arest/internal/testrace"
)

// measureArchived measures one AS and returns both the in-memory campaign
// and its v2 wire encoding, so tests can pin the materialized and streamed
// Detect paths against each other.
func measureArchived(t *testing.T, id int) (*archive.Data, []byte) {
	t.Helper()
	rec, ok := asgen.ByID(id)
	if !ok {
		t.Fatalf("record %d missing", id)
	}
	data, err := MeasureAS(context.Background(), rec, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := archive.WriteData(&buf, data); err != nil {
		t.Fatal(err)
	}
	return data, buf.Bytes()
}

// TestDetectStreamMatchesDetect is the tentpole equivalence gate: folding
// the encoded archive one record at a time must produce a result deep-equal
// to the legacy materialized path, at every worker count and in both
// retained and compact mode.
func TestDetectStreamMatchesDetect(t *testing.T) {
	for _, id := range []int{7, 46} { // full SR; ground-truth AS
		data, raw := measureArchived(t, id)
		for _, workers := range []int{1, 8} {
			for _, keep := range []bool{false, true} {
				name := fmt.Sprintf("as%d/workers%d/keep%v", id, workers, keep)
				t.Run(name, func(t *testing.T) {
					cfg := testCfg()
					cfg.Workers = workers
					cfg.KeepPaths = keep
					legacy, err := Detect(context.Background(), data, cfg)
					if err != nil {
						t.Fatal(err)
					}
					streamed, err := DetectStream(context.Background(), bytes.NewReader(raw), cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(legacy, streamed) {
						t.Errorf("DetectStream != Detect (workers=%d keep=%v)", workers, keep)
						if !reflect.DeepEqual(legacy.Agg, streamed.Agg) {
							t.Errorf("aggregates diverge: legacy %+v\nstreamed %+v", legacy.Agg, streamed.Agg)
						}
					}
				})
			}
		}
	}
}

// TestDetectStreamAnalyzeWorkersInvariant pins that the analysis fan-out
// width changes nothing: the fold accumulates in stream order regardless of
// how many workers analyzed each batch.
func TestDetectStreamAnalyzeWorkersInvariant(t *testing.T) {
	_, raw := measureArchived(t, 46)
	var want *ASResult
	for _, aw := range []int{1, 3, 8} {
		cfg := testCfg()
		cfg.AnalyzeWorkers = aw
		got, err := DetectStream(context.Background(), bytes.NewReader(raw), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("AnalyzeWorkers=%d diverges from AnalyzeWorkers=1", aw)
		}
	}
}

// TestDetectStreamInstrumentationMatchesDetect requires the two Detect
// fronts to emit bit-identical deterministic metrics: same record counter,
// same batch boundaries, same in-flight gauge — the foldData drive must be
// indistinguishable from the wire drive inside the determinism contract.
func TestDetectStreamInstrumentationMatchesDetect(t *testing.T) {
	data, raw := measureArchived(t, 46)

	legacyReg := obs.New()
	cfg := testCfg()
	cfg.Metrics = legacyReg
	if _, err := Detect(context.Background(), data, cfg); err != nil {
		t.Fatal(err)
	}

	streamReg := obs.New()
	cfg.Metrics = streamReg
	if _, err := DetectStream(context.Background(), bytes.NewReader(raw), cfg); err != nil {
		t.Fatal(err)
	}

	legacySnap := legacyReg.Snapshot().Deterministic()
	streamSnap := streamReg.Snapshot().Deterministic()
	if !reflect.DeepEqual(legacySnap, streamSnap) {
		for k, v := range legacySnap.Counters {
			if streamSnap.Counters[k] != v {
				t.Errorf("counter %s: %d (Detect) vs %d (DetectStream)", k, v, streamSnap.Counters[k])
			}
		}
		for k, v := range streamSnap.Counters {
			if _, ok := legacySnap.Counters[k]; !ok {
				t.Errorf("counter %s: only in DetectStream (%d)", k, v)
			}
		}
		t.Error("deterministic snapshots diverge between Detect and DetectStream")
	}
}

// TestAggMergeMatchesSingleFold partitions one AS's traces across two folds
// and requires the merged aggregate to be deep-equal to the single
// sequential fold — the merge law that lets shards be analyzed
// concurrently. Merging in either order must agree (commutativity).
func TestAggMergeMatchesSingleFold(t *testing.T) {
	data, _ := measureArchived(t, 46)
	cfg := testCfg()
	cfg.KeepPaths = false

	whole, err := Detect(context.Background(), data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Split round-robin inside each VP so both halves see every VP and an
	// interleaved slice of its traces.
	half := func(parity int) *archive.Data {
		d := *data
		d.PerVP = make([][]*probe.Trace, len(data.PerVP))
		for i, ts := range data.PerVP {
			d.PerVP[i] = []*probe.Trace{}
			for j, tr := range ts {
				if j%2 == parity {
					d.PerVP[i] = append(d.PerVP[i], tr)
				}
			}
		}
		return &d
	}
	resA, err := Detect(context.Background(), half(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Detect(context.Background(), half(1), cfg)
	if err != nil {
		t.Fatal(err)
	}

	merged := NewAgg()
	merged.Merge(resA.Agg)
	merged.Merge(resB.Agg)
	if !reflect.DeepEqual(merged, whole.Agg) {
		t.Errorf("merged partition aggregate != sequential fold:\nmerged %+v\nwhole  %+v", merged, whole.Agg)
	}

	reversed := NewAgg()
	reversed.Merge(resB.Agg)
	reversed.Merge(resA.Agg)
	if !reflect.DeepEqual(reversed, merged) {
		t.Error("Agg.Merge is not commutative on a real campaign")
	}
}

// TestShardReplayMatchesLegacyDetect pins the acceptance criterion
// end-to-end on disk: DetectStream over a written shard must be deep-equal
// to the legacy materialized pipeline (ReadFile + Detect) over the same
// shard.
func TestShardReplayMatchesLegacyDetect(t *testing.T) {
	data, _ := measureArchived(t, 7)
	cfg := testCfg()
	path := filepath.Join(t.TempDir(), "as7.arest")
	if err := archive.WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	onDisk, err := archive.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Detect(context.Background(), onDisk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := DetectStreamFile(context.Background(), path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, streamed) {
		t.Error("DetectStreamFile != Detect(context.Background(), archive.ReadFile(...)) over the same shard")
	}
}

// TestRunShardedAnalyzeWorkersEquivalence replays a sharded campaign with a
// different worker split (many shards in flight, narrow per-shard analysis)
// and requires results identical to the sequential measuring run.
func TestRunShardedAnalyzeWorkersEquivalence(t *testing.T) {
	var recs []asgen.Record
	for _, id := range []int{7, 46} {
		r, ok := asgen.ByID(id)
		if !ok {
			t.Fatalf("record %d missing", id)
		}
		recs = append(recs, r)
	}
	dir := t.TempDir()

	seqCfg := testCfg()
	seqCfg.Workers = 1
	seq, statuses, err := RunSharded(context.Background(), recs, seqCfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != ShardMeasured {
			t.Fatalf("first run shard %d: status %v, want measured", i, s)
		}
	}

	parCfg := testCfg()
	parCfg.Workers = 4
	parCfg.AnalyzeWorkers = 2
	parl, statuses, err := RunSharded(context.Background(), recs, parCfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != ShardResumed {
			t.Fatalf("replay shard %d: status %v, want resumed", i, s)
		}
	}
	if !reflect.DeepEqual(seq.ASes, parl.ASes) {
		t.Error("sharded replay with AnalyzeWorkers diverges from the measuring run")
	}
}

// syntheticArchive fabricates a large v2 shard without running a campaign:
// nTraces traces over a small address pool, every hop labeled, all owned by
// the target AS. The pool keeps the true aggregate state tiny while the
// wire form grows linearly, which is exactly the regime the memory-budget
// gate needs.
func syntheticArchive(t testing.TB, vps, nTraces, hops int) []byte {
	t.Helper()
	rec, ok := asgen.ByID(46)
	if !ok {
		t.Fatal("record 46 missing")
	}
	const poolSize = 64
	pool := make([]netip.Addr, poolSize)
	borders := map[netip.Addr]int{}
	for i := range pool {
		pool[i] = netip.AddrFrom4([4]byte{10, 1, byte(i / 256), byte(i % 256)})
		borders[pool[i]] = rec.ASN
	}
	d := &archive.Data{
		Meta:    archive.Meta{Format: archive.FormatV2, Record: rec, NumVPs: vps},
		Borders: borders,
		SNMP:    map[netip.Addr]mpls.Vendor{pool[0]: mpls.VendorCisco},
		TTL:     map[netip.Addr]mpls.Vendor{},
		PerVP:   make([][]*probe.Trace, vps),
	}
	for v := 0; v < vps; v++ {
		d.VPs = append(d.VPs, netip.AddrFrom4([4]byte{192, 0, 2, byte(v + 1)}))
	}
	for i := 0; i < nTraces; i++ {
		v := i % vps
		tr := &probe.Trace{
			VP:     d.VPs[v],
			Dst:    pool[(i*7)%poolSize],
			FlowID: uint16(i),
		}
		for h := 0; h < hops; h++ {
			tr.Hops = append(tr.Hops, probe.Hop{
				TTL:  h + 1,
				Addr: pool[(i*3+h)%poolSize],
				Stack: mpls.Stack{
					{Label: uint32(16000 + (i+h)%100), TTL: 1},
					{Label: uint32(1000 + h), S: true, TTL: 1},
				},
				QTTL: 1,
			})
		}
		d.PerVP[v] = append(d.PerVP[v], tr)
	}
	var buf bytes.Buffer
	if err := archive.WriteData(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDetectStreamMemoryBudget is the streaming-replay memory gate: folding
// a multi-megabyte shard in compact mode must leave a live heap bounded by
// the aggregates, not by the archive size. The materialized path holds
// O(input); the fold must stay an order of magnitude under it.
func TestDetectStreamMemoryBudget(t *testing.T) {
	if testrace.Enabled {
		t.Skip("race instrumentation skews heap accounting")
	}
	raw := syntheticArchive(t, 4, 8000, 10)
	if len(raw) < 2<<20 {
		t.Fatalf("synthetic archive only %d bytes; too small to make the budget meaningful", len(raw))
	}
	cfg := testCfg()
	cfg.KeepPaths = false

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	res, err := DetectStream(context.Background(), bytes.NewReader(raw), cfg)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(res)

	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	budget := int64(len(raw)) / 8
	t.Logf("archive %d bytes, live-heap delta %d bytes (budget %d)", len(raw), delta, budget)
	if delta > budget {
		t.Errorf("live heap grew %d bytes over a %d-byte archive; streaming fold is retaining input (budget %d)",
			delta, len(raw), budget)
	}
	if res.Agg.Traces != 8000 {
		t.Errorf("folded %d traces, want 8000", res.Agg.Traces)
	}
}

// Analyze-throughput benchmarks: the streamed fold against the materialized
// read-then-fold path, over the same synthetic shard bytes.
func benchArchive(b *testing.B) []byte {
	return syntheticArchive(b, 4, 2000, 10)
}

func BenchmarkDetectStream(b *testing.B) {
	raw := benchArchive(b)
	cfg := testCfg()
	cfg.KeepPaths = false
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectStream(context.Background(), bytes.NewReader(raw), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectMaterialized(b *testing.B) {
	raw := benchArchive(b)
	cfg := testCfg()
	cfg.KeepPaths = false
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := archive.ReadData(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Detect(context.Background(), data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
