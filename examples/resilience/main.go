// Resilience: the survey's top SR-MPLS motivation (Fig. 5b) in action —
// a link fails, IGP reconvergence finds the detour, and an SR protection
// policy (TI-LFA style explicit segment list) steers traffic around the
// failure. The traces show what a measurement campaign would observe in
// each phase, including the deeper label stacks protection policies leave
// behind.
package main

import (
	"context"
	"fmt"
	"net/netip"

	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

func main() {
	// gw - s - a - d - target, with a protection triangle a - b - d.
	n := netsim.New(5)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 64999,
		Vendor: mpls.VendorLinux, Profile: netsim.DefaultProfile(mpls.VendorLinux)})
	mk := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 65060,
			Vendor: mpls.VendorCisco, Profile: prof, SREnabled: true, Mode: netsim.ModeSR})
	}
	s, a, b, d := mk("s"), mk("a"), mk("b"), mk("d")
	n.Connect(gw.ID, s.ID, 10)
	n.Connect(s.ID, a.ID, 10)
	n.Connect(a.ID, d.ID, 10)
	n.Connect(a.ID, b.ID, 10)
	n.Connect(b.ID, d.ID, 10)

	vp := netip.MustParseAddr("172.16.3.10")
	target := netip.MustParseAddr("100.64.3.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, d.ID)
	n.Compute()

	tracer := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	show := func(phase string) {
		tr, err := tracer.Trace(context.Background(), target, 0)
		if err != nil {
			panic(err)
		}
		fmt.Printf("--- %s ---\n%s\n", phase, tr)
	}

	show("steady state: shortest path s→a→d")

	// Phase 2: the a-d link fails; the IGP reconverges around it.
	n.SetLinkState(a.ID, d.ID, false)
	n.Compute()
	show("a–d failed, IGP reconverged: s→a→b→d")

	// Phase 3: instead of waiting for convergence, the ingress installs a
	// TI-LFA-style protection policy: an explicit segment list through b
	// using b's node SID and then d's. The stack is one label deeper —
	// exactly the kind of post-failure stack growth a measurement study
	// would pick up.
	n.SRPolicy = func(ing *netsim.Router, egress netsim.RouterID, dst netip.Addr, flow uint64) netsim.SegmentList {
		if egress == d.ID {
			return netsim.SegmentList{{Node: b.ID}, {Node: d.ID}}
		}
		return nil
	}
	show("explicit protection policy [sid(b), sid(d)]")

	// Phase 4: repair.
	n.SetLinkState(a.ID, d.ID, true)
	n.SRPolicy = nil
	n.Compute()
	show("link repaired, policy withdrawn")
}
