package exp

//arest:allow nowallclock the time.After calls here are test hang guards around a deliberately stalled goroutine (the stall under test blocks on real channels); campaign-visible time still flows through the injected obs clock

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/obs"
	"arest/internal/probe"
)

// cancelAtAS returns a WrapConn seam that cancels ctx the moment the n-th
// distinct AS (1-based) starts building its probe connections — i.e. at
// the boundary after n-1 complete shards. Workers must be 1 so ASes start
// in catalogue order.
func cancelAtAS(n int, cancel context.CancelCauseFunc) func(asgen.Record, int, probe.Conn) probe.Conn {
	seen := map[int]bool{}
	return func(rec asgen.Record, vp int, c probe.Conn) probe.Conn {
		if !seen[rec.ID] {
			seen[rec.ID] = true
			if len(seen) == n {
				cancel(context.Canceled)
			}
		}
		return c
	}
}

// shardFiles lists the shard filenames present under dir.
func shardFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestCancelAtEveryShardBoundary is the cancellation acceptance test: a
// campaign interrupted at every shard boundary leaves exactly the complete
// shards on disk — byte-identical to an uninterrupted run's — counts the
// interruption, and a resume over the same directory completes to a
// campaign deep-equal to the uninterrupted baseline, with equal
// deterministic metric snapshots between full replays of both directories.
func TestCancelAtEveryShardBoundary(t *testing.T) {
	recs := testRecords(t, 2, 15, 40)
	mkCfg := func() Config {
		cfg := testCfg()
		cfg.Workers = 1 // sequential: the interrupt boundary is deterministic
		return cfg
	}

	baseDir := filepath.Join(t.TempDir(), "base")
	baseline, _, err := RunSharded(context.Background(), recs, mkCfg(), baseDir)
	if err != nil {
		t.Fatal(err)
	}

	for k := 0; k < len(recs); k++ {
		k := k
		t.Run(fmt.Sprintf("boundary-%d", k), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "snap")
			ctx, cancel := context.WithCancelCause(context.Background())
			defer cancel(nil)
			cfg := mkCfg()
			cfg.WrapConn = cancelAtAS(k+1, cancel)
			reg := obs.New()
			cfg.Metrics = reg

			c, statuses, err := RunSharded(ctx, recs, cfg, dir)
			if !IsInterrupt(err) {
				t.Fatalf("interrupted run returned %v, want an interrupt", err)
			}
			for i, s := range statuses {
				want := ShardMeasured
				if i >= k {
					want = ShardInterrupted
				}
				if s != want {
					t.Errorf("statuses[%d] = %v, want %v", i, s, want)
				}
			}
			if len(c.Failed) != 0 {
				t.Errorf("interrupt quarantined ASes: %v", c.Failed)
			}

			// Accounting: one cancelled campaign, every incomplete AS counted.
			snap := reg.Snapshot()
			if got := snap.Counters["exp.cancelled"]; got != 1 {
				t.Errorf("exp.cancelled = %d, want 1", got)
			}
			if got := snap.Counters["exp.shards.interrupted"]; got != uint64(len(recs)-k) {
				t.Errorf("exp.shards.interrupted = %d, want %d", got, len(recs)-k)
			}

			// Disk invariant: exactly the k complete shards, bit-identical to
			// the baseline's.
			if files := shardFiles(t, dir); len(files) != k {
				t.Fatalf("shards on disk after interrupt at boundary %d: %v", k, files)
			}
			for i := 0; i < k; i++ {
				got, err := os.ReadFile(ShardPath(dir, recs[i]))
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(ShardPath(baseDir, recs[i]))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shard for AS#%d diverged from baseline bytes", recs[i].ID)
				}
			}

			// The partial campaign holds only complete results.
			if len(c.ASes) != k {
				t.Fatalf("partial campaign has %d ASes, want %d", len(c.ASes), k)
			}
			for i := range c.ASes {
				if !reflect.DeepEqual(c.ASes[i], baseline.ASes[i]) {
					t.Errorf("partial AS#%d diverged from baseline", c.ASes[i].Record.ID)
				}
			}

			// Resume: completes the remaining ASes and reproduces the
			// baseline exactly.
			resumed, st2, err := RunSharded(context.Background(), recs, mkCfg(), dir)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			for i, s := range st2 {
				want := ShardResumed
				if i >= k {
					want = ShardMeasured
				}
				if s != want {
					t.Errorf("resume statuses[%d] = %v, want %v", i, s, want)
				}
			}
			if !reflect.DeepEqual(resumed.ASes, baseline.ASes) {
				t.Error("resumed campaign diverged from uninterrupted baseline")
			}
			for _, rec := range recs {
				got, err := os.ReadFile(ShardPath(dir, rec))
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(ShardPath(baseDir, rec))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("resumed shard for AS#%d not byte-identical to baseline", rec.ID)
				}
			}

			// Full replays of the baseline and the resumed directory must be
			// indistinguishable down to the deterministic metric snapshot.
			replay := func(dir string) obs.Snapshot {
				cfg := mkCfg()
				r := obs.New()
				cfg.Metrics = r
				c, st, err := RunSharded(context.Background(), recs, cfg, dir)
				if err != nil {
					t.Fatalf("replay %s: %v", dir, err)
				}
				for i, s := range st {
					if s != ShardResumed {
						t.Fatalf("replay %s: statuses[%d] = %v, want resumed", dir, i, s)
					}
				}
				if !reflect.DeepEqual(c.ASes, baseline.ASes) {
					t.Errorf("replay of %s diverged from baseline", dir)
				}
				return r.Snapshot().Deterministic()
			}
			if a, b := replay(baseDir), replay(dir); !reflect.DeepEqual(a, b) {
				t.Error("deterministic metric snapshots diverged between baseline and resumed replays")
			}
		})
	}
}

// stallConn blocks every exchange until the context is cancelled — the
// hung-measurement fault for the watchdog test. entered is closed at the
// first blocked exchange so the test can synchronize its scan.
type stallConn struct {
	entered chan struct{}
	once    *sync.Once
}

func (s stallConn) Exchange(ctx context.Context, src netip.Addr, wire []byte) ([]byte, float64, error) {
	s.once.Do(func() { close(s.entered) })
	<-ctx.Done()
	return nil, 0, context.Cause(ctx)
}

// TestWatchdogStallQuarantinesAS: an AS whose measurement stops making
// progress is cancelled by the watchdog and quarantined with a StallError,
// while every other AS completes untouched. The watchdog is injected on a
// fake clock and scanned explicitly, so the test takes no wall-clock time.
func TestWatchdogStallQuarantinesAS(t *testing.T) {
	recs := testRecords(t, 2, 15, 28)
	const stallAfter = 30 * time.Second

	var mu sync.Mutex
	now := time.Unix(0, 0)
	reg := obs.New()
	reg.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	wd := obs.NewWatchdog(reg, stallAfter)

	entered := make(chan struct{})
	cfg := testCfg()
	cfg.Workers = 1
	cfg.Metrics = reg
	cfg.StallTimeout = stallAfter
	cfg.Watchdog = wd
	once := &sync.Once{}
	cfg.WrapConn = func(rec asgen.Record, vp int, c probe.Conn) probe.Conn {
		if rec.ID != 15 {
			return c
		}
		return stallConn{entered: entered, once: once}
	}

	dir := t.TempDir()
	type runOut struct {
		c   *Campaign
		st  []ShardStatus
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		c, st, err := RunSharded(context.Background(), recs, cfg, dir)
		done <- runOut{c, st, err}
	}()

	// Wait for AS#15's measurement to block, then advance the fake clock
	// past the stall window and scan: exactly one stall must fire.
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled exchange never started")
	}
	mu.Lock()
	now = now.Add(stallAfter + time.Second)
	mu.Unlock()
	if stalls := wd.Scan(); stalls != 1 {
		t.Errorf("Scan detected %d stalls, want 1", stalls)
	}

	var out runOut
	select {
	case out = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not return after the stall was cancelled")
	}
	if out.err != nil {
		t.Fatalf("stall must be contained, got campaign error %v", out.err)
	}
	if len(out.c.Failed) != 1 || out.c.Failed[0].Record.ID != 15 {
		t.Fatalf("Failed = %v, want exactly the stalled AS#15", out.c.Failed)
	}
	var se *StallError
	if !errors.As(out.c.Failed[0].Err, &se) {
		t.Fatalf("err = %v, want a StallError", out.c.Failed[0].Err)
	}
	if se.ASID != 15 || se.Quiet != stallAfter {
		t.Errorf("StallError = %+v, want ASID 15 quiet %v", se, stallAfter)
	}
	if out.st[1] != ShardFailed {
		t.Errorf("statuses[1] = %v, want ShardFailed", out.st[1])
	}
	// The stalled AS left no shard behind; the healthy ASes completed.
	if _, err := os.Stat(ShardPath(dir, recs[1])); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("stalled AS left a shard on disk (stat err %v)", err)
	}
	if len(out.c.ASes) != 2 {
		t.Fatalf("healthy ASes = %d, want 2", len(out.c.ASes))
	}

	snap := reg.Snapshot()
	if got := snap.Counters["watchdog.stalls"]; got != 1 {
		t.Errorf("watchdog.stalls = %d, want 1", got)
	}
	if got := snap.Counters["watchdog.heartbeats"]; got == 0 {
		t.Error("watchdog.heartbeats = 0, want progress pulses from the healthy ASes")
	}
	// A stall is a fault, not an interrupt: nothing may count as cancelled.
	if got := snap.Counters["exp.cancelled"]; got != 0 {
		t.Errorf("exp.cancelled = %d, want 0 for a contained stall", got)
	}

	// The healthy ASes must match a fault-free baseline.
	base, _, err := RunSharded(context.Background(), testRecords(t, 2, 28), testCfg(), filepath.Join(t.TempDir(), "base"))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out.c.ASes {
		if !reflect.DeepEqual(r, base.ASes[i]) {
			t.Errorf("AS#%d diverged under AS#15's stall", r.Record.ID)
		}
	}
}

// TestASBudgetLiveAndReplaySameVerdict pins the deterministic deadline: an
// AS whose plan demands more traces than MaxASTraces is quarantined before
// probing, and a replay of an (unbudgeted) shard under the same budget
// re-derives the identical verdict — same error type, same counts, same
// string — from the archived VP records alone.
func TestASBudgetLiveAndReplaySameVerdict(t *testing.T) {
	rec := testRecords(t, 2)[0]
	cfg := testCfg()

	data, err := MeasureAS(context.Background(), rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	planned := 0
	for _, vp := range data.PerVP {
		planned += len(vp)
	}
	if planned == 0 {
		t.Fatal("measurement planned no traces")
	}

	tight := cfg
	tight.MaxASTraces = planned - 1

	// Live verdict: quarantined before a single probe.
	_, liveErr := MeasureAS(context.Background(), rec, tight)
	var abe *ASBudgetError
	if !errors.As(liveErr, &abe) {
		t.Fatalf("live err = %v, want an ASBudgetError", liveErr)
	}
	if abe.Planned != planned || abe.Budget != planned-1 {
		t.Errorf("live ASBudgetError = %+v, want planned %d budget %d", abe, planned, planned-1)
	}
	if FailureStage(liveErr) != StageMeasure {
		t.Errorf("budget verdict at stage %v, want measure", FailureStage(liveErr))
	}

	// Replay verdict: the same budget over the archived shard, re-derived
	// from the VP records without re-measuring.
	path := filepath.Join(t.TempDir(), "as.arest")
	if err := archive.WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	_, replayErr := DetectStreamFile(context.Background(), path, tight)
	var rbe *ASBudgetError
	if !errors.As(replayErr, &rbe) {
		t.Fatalf("replay err = %v, want an ASBudgetError", replayErr)
	}
	if *rbe != *abe {
		t.Errorf("replay verdict %+v diverged from live verdict %+v", rbe, abe)
	}
	if liveErr.Error() != replayErr.Error() {
		t.Errorf("verdict strings diverged:\nlive:   %s\nreplay: %s", liveErr, replayErr)
	}

	// A budget that fits the plan passes both paths.
	loose := cfg
	loose.MaxASTraces = planned
	if _, err := MeasureAS(context.Background(), rec, loose); err != nil {
		t.Errorf("live run rejected under a sufficient budget: %v", err)
	}
	if _, err := DetectStreamFile(context.Background(), path, loose); err != nil {
		t.Errorf("replay rejected under a sufficient budget: %v", err)
	}
}

// TestRunShardedBudgetQuarantine: under RunSharded the budget verdict is a
// contained per-AS failure (ShardFailed), identical on a resume.
func TestRunShardedBudgetQuarantine(t *testing.T) {
	recs := testRecords(t, 2, 15)
	cfg := testCfg()
	cfg.MaxASTraces = 1 // every plan demands more
	dir := t.TempDir()

	c, statuses, err := RunSharded(context.Background(), recs, cfg, dir)
	if err != nil {
		t.Fatalf("budget faults must be contained, got %v", err)
	}
	if len(c.ASes) != 0 || len(c.Failed) != len(recs) {
		t.Fatalf("ASes=%d Failed=%d, want every AS quarantined", len(c.ASes), len(c.Failed))
	}
	for i, f := range c.Failed {
		var abe *ASBudgetError
		if !errors.As(f.Err, &abe) {
			t.Errorf("failure %d: %v, want an ASBudgetError", i, f.Err)
		}
		if statuses[i] != ShardFailed {
			t.Errorf("statuses[%d] = %v, want ShardFailed", i, statuses[i])
		}
	}
	if files := shardFiles(t, dir); len(files) != 0 {
		t.Errorf("budget-quarantined ASes wrote shards: %v", files)
	}

	// The verdicts replay identically over the same (empty) directory.
	c2, _, err := RunSharded(context.Background(), recs, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Failed {
		if c.Failed[i].Err.Error() != c2.Failed[i].Err.Error() {
			t.Errorf("failure %d diverged on re-run: %v vs %v", i, c.Failed[i].Err, c2.Failed[i].Err)
		}
	}
}

// TestRunInterruptSkipsNotFails pins the classification rule: an interrupt
// must never appear in Campaign.Failed — the failure list would otherwise
// depend on when the cancel landed.
func TestRunInterruptSkipsNotFails(t *testing.T) {
	recs := testRecords(t, 2, 15, 40)
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	cfg := testCfg()
	cfg.Workers = 1
	cfg.WrapConn = cancelAtAS(2, cancel)
	reg := obs.New()
	cfg.Metrics = reg

	c, err := Run(ctx, recs, cfg)
	if !IsInterrupt(err) {
		t.Fatalf("err = %v, want an interrupt", err)
	}
	if len(c.Failed) != 0 {
		t.Errorf("Failed = %v, want none on interrupt", c.Failed)
	}
	if len(c.ASes) != 1 {
		t.Errorf("ASes = %d, want the one AS completed before the cancel", len(c.ASes))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["exp.cancelled"]; got != 1 {
		t.Errorf("exp.cancelled = %d, want 1", got)
	}
	if got := snap.Counters["exp.shards.interrupted"]; got != 2 {
		t.Errorf("exp.shards.interrupted = %d, want 2", got)
	}
}
