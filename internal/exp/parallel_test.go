package exp

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"arest/internal/asgen"
	"arest/internal/obs"
)

// project returns the ASResult itself: since the staged-pipeline refactor
// dropped the *asgen.World reference, every field sits inside the
// determinism contract and the whole result is directly comparable.
func project(r *ASResult) *ASResult { return r }

// TestCampaignParallelMatchesSequential runs the same campaign fully
// sequentially (Workers: 1) and with an 8-worker fan-out and requires
// deep-equal results: traces, fingerprints, alias-fed annotations,
// delimited paths, AReST verdicts — and identical metric-counter
// snapshots, pinning the obs determinism contract. Under -race this
// exercises every parallel stage — the AS pool, trace sweeps, fingerprint
// echoes, conflict-ordered alias probing, and detection.
func TestCampaignParallelMatchesSequential(t *testing.T) {
	var recs []asgen.Record
	for _, id := range []int{2, 15, 28, 40} {
		r, ok := asgen.ByID(id)
		if !ok {
			t.Fatalf("record %d missing", id)
		}
		recs = append(recs, r)
	}
	regs := map[int]*obs.Registry{}
	run := func(workers int) *Campaign {
		cfg := testCfg()
		cfg.Workers = workers
		regs[workers] = obs.New()
		cfg.Metrics = regs[workers]
		c, err := Run(context.Background(), recs, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return c
	}
	seq := run(1)
	parl := run(8)

	// The deterministic section (counters, gauges, histograms) must be
	// bit-identical across worker counts; spans are wall-clock and excluded.
	seqSnap := regs[1].Snapshot().Deterministic()
	parSnap := regs[8].Snapshot().Deterministic()
	if !reflect.DeepEqual(seqSnap, parSnap) {
		for k, v := range seqSnap.Counters {
			if parSnap.Counters[k] != v {
				t.Errorf("counter %s: %d (seq) vs %d (par)", k, v, parSnap.Counters[k])
			}
		}
		for k, v := range parSnap.Counters {
			if _, ok := seqSnap.Counters[k]; !ok {
				t.Errorf("counter %s: only in parallel run (%d)", k, v)
			}
		}
		if !reflect.DeepEqual(seqSnap.Gauges, parSnap.Gauges) {
			t.Errorf("gauges diverged: %v vs %v", seqSnap.Gauges, parSnap.Gauges)
		}
		if !reflect.DeepEqual(seqSnap.Histograms, parSnap.Histograms) {
			t.Errorf("histograms diverged")
		}
	}
	// The snapshot must cover every instrumented stage.
	for _, stage := range []string{"netsim.", "probe.", "alias.", "fingerprint.", "exp."} {
		found := false
		for k := range seqSnap.Counters {
			if strings.HasPrefix(k, stage) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no counters recorded for stage %q", stage)
		}
	}

	if len(seq.ASes) != len(parl.ASes) {
		t.Fatalf("AS count diverged: %d vs %d", len(seq.ASes), len(parl.ASes))
	}
	for i := range seq.ASes {
		sp, pp := project(seq.ASes[i]), project(parl.ASes[i])
		if !reflect.DeepEqual(sp, pp) {
			// Narrow the report to the first diverging field.
			switch {
			case !reflect.DeepEqual(sp.PerVP, pp.PerVP):
				t.Errorf("AS#%d: traces diverged", sp.Record.ID)
			case !reflect.DeepEqual(sp.Annotator, pp.Annotator):
				t.Errorf("AS#%d: fingerprint annotations diverged", sp.Record.ID)
			case !reflect.DeepEqual(sp.Annotation, pp.Annotation):
				t.Errorf("AS#%d: bdrmap annotation diverged", sp.Record.ID)
			case !reflect.DeepEqual(sp.Results, pp.Results):
				t.Errorf("AS#%d: AReST results diverged", sp.Record.ID)
			default:
				t.Errorf("AS#%d: results diverged", sp.Record.ID)
			}
		}
	}
}
