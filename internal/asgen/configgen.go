package asgen

import (
	"fmt"
	"sort"
	"strings"

	"arest/internal/mpls"
	"arest/internal/netsim"
)

// RouterConfigText renders one router of a world as a vendor-flavoured
// configuration snippet — the lab-config export used to rebuild a synthetic
// AS inside an emulation testbed (GNS3/containerlab style), mirroring the
// controlled environment the paper's authors used to validate AReST.
//
// The dialect follows the router's vendor loosely: IOS-XR-ish for Cisco and
// the ambiguous class, Junos-ish for Juniper, a generic dialect otherwise.
// These snippets document intent; they are not guaranteed to load on real
// devices.
func RouterConfigText(w *World, r *netsim.Router) string {
	var b strings.Builder
	fmt.Fprintf(&b, "! %s (%s) — AS%d\n", r.Name, r.Vendor, r.ASN)
	fmt.Fprintf(&b, "hostname %s\n", r.Name)
	fmt.Fprintf(&b, "interface Loopback0\n ipv4 address %s/32\n", r.Loopback)

	nbrs := w.Net.Neighbors(r.ID)
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	for i, nb := range nbrs {
		addr, _ := r.InterfaceTo(nb)
		other := w.Net.Router(nb)
		fmt.Fprintf(&b, "interface GigabitEthernet0/0/0/%d\n description to %s\n ipv4 address %s/31\n",
			i, other.Name, addr)
	}

	fmt.Fprintf(&b, "router isis core\n net 49.0001.%04d.00\n", int(r.ID))
	if !r.Profile.TTLPropagate {
		b.WriteString("mpls ip-ttl-propagate disable\n")
	}
	if r.LDPEnabled {
		b.WriteString("mpls ldp\n router-id Loopback0\n")
		if r.Profile.ExplicitNull {
			b.WriteString(" label advertise explicit-null\n")
		}
	}
	if r.SREnabled {
		b.WriteString("segment-routing\n")
		fmt.Fprintf(&b, " global-block %d %d\n", r.SRGB.Lo, r.SRGB.Hi)
		if r.SRLB.Size() > 0 {
			fmt.Fprintf(&b, " local-block %d %d\n", r.SRLB.Lo, r.SRLB.Hi)
		}
		if idx := r.NodeIndex(); idx >= 0 {
			fmt.Fprintf(&b, " prefix-sid index %d  ! loopback %s\n", idx, r.Loopback)
		}
	}
	if !r.Profile.RFC4950 {
		b.WriteString("! note: RFC4950 ICMP extensions disabled on this platform image\n")
	}
	if !r.Profile.RespondsEcho {
		b.WriteString("control-plane\n icmp echo disable\n")
	}
	return b.String()
}

// WorldConfigs renders the whole target AS as one concatenated lab bundle,
// router by router in ID order.
func WorldConfigs(w *World) string {
	var b strings.Builder
	fmt.Fprintf(&b, "!! lab bundle for AS#%d %s (AS%d) — %d routers\n",
		w.Record.ID, w.Record.Name, w.Record.ASN, len(w.Routers))
	if w.Dep.Interworking {
		b.WriteString("!! SR-LDP interworking domain")
		if w.Dep.MappingServer {
			b.WriteString(" with mapping server (RFC 8661)")
		}
		b.WriteByte('\n')
	}
	for _, r := range w.Routers {
		b.WriteString("\n")
		b.WriteString(RouterConfigText(w, r))
	}
	return b.String()
}

// ValidateWorld cross-checks a world's internal consistency: every SR
// router holds a usable SRGB and node SID, every LDP router has bindings
// for its same-AS FECs, and region labels match the netsim state. It
// returns the list of violations (empty when consistent) — the generator's
// own test oracle.
func ValidateWorld(w *World) []string {
	var problems []string
	for _, r := range w.Routers {
		if w.SRRouter[r.ID] != r.SREnabled {
			problems = append(problems, fmt.Sprintf("%s: ground truth and router state disagree", r.Name))
		}
		if r.SREnabled {
			if r.SRGB.Size() == 0 {
				problems = append(problems, fmt.Sprintf("%s: SR enabled without an SRGB", r.Name))
			}
			if r.NodeIndex() < 0 {
				problems = append(problems, fmt.Sprintf("%s: SR enabled without a node SID", r.Name))
			}
			if r.SRGB.Size() > 0 && r.NodeIndex() >= 0 &&
				r.SRGB.Lo+uint32(r.NodeIndex()) > r.SRGB.Hi {
				problems = append(problems, fmt.Sprintf("%s: node index %d overflows SRGB %s",
					r.Name, r.NodeIndex(), r.SRGB))
			}
		}
		if r.LDPEnabled {
			for _, o := range w.Routers {
				if o.ID == r.ID {
					continue
				}
				if _, ok := r.LDPLabel(o.ID); !ok && w.Net.Dist(r.ID, o.ID) >= 0 {
					problems = append(problems, fmt.Sprintf("%s: no LDP binding for %s", r.Name, o.Name))
				}
			}
		}
		if len(w.Net.Neighbors(r.ID)) == 0 {
			problems = append(problems, fmt.Sprintf("%s: isolated router", r.Name))
		}
	}
	// Every target must be owned by some target-AS router.
	for _, tgt := range w.Targets {
		if w.ASNOf(tgt) == 0 {
			if r, ok := w.Net.RouterByAddr(tgt); ok && r.ASN != w.Record.ASN {
				problems = append(problems, fmt.Sprintf("target %s owned by foreign AS%d", tgt, r.ASN))
			}
		}
	}
	_ = mpls.MaxLabel
	return problems
}
