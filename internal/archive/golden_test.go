package archive

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const (
	goldenPath   = "testdata/golden_v1.arest"
	goldenPathV2 = "testdata/golden_v2.arest"
)

// TestGoldenV1 pins the on-disk bytes of format v1. If it fails after a
// code change, the change altered the serialization of existing archives —
// that needs a format bump (arest.archive.v2), not a golden refresh.
// Regenerate with `go test ./internal/archive -run Golden -update` only
// when the fixture itself was deliberately extended.
func TestGoldenV1(t *testing.T) {
	raw := encode(t, fixtureData())
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	// Decoding the golden bytes must reproduce the fixture value...
	got, err := ReadData(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("golden archive no longer decodes: %v", err)
	}
	if want := fixtureData(); !reflect.DeepEqual(got, want) {
		t.Errorf("golden decode diverged from fixture:\n got %+v\nwant %+v", got, want)
	}
	// ...and encoding the fixture must reproduce the golden bytes exactly.
	if !bytes.Equal(raw, golden) {
		t.Errorf("encoder output changed: %d bytes, golden %d bytes; the v1 format is frozen",
			len(raw), len(golden))
	}
}

// TestGoldenV2 pins the on-disk bytes of format v2 the same way. A failure
// after a code change means existing v2 archives would re-encode
// differently — that needs a v3, not a golden refresh.
func TestGoldenV2(t *testing.T) {
	raw := encode(t, fixtureDataV2())
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPathV2), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPathV2, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPathV2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadData(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("golden archive no longer decodes: %v", err)
	}
	if want := fixtureDataV2(); !reflect.DeepEqual(got, want) {
		t.Errorf("golden decode diverged from fixture:\n got %+v\nwant %+v", got, want)
	}
	if !bytes.Equal(raw, golden) {
		t.Errorf("encoder output changed: %d bytes, golden %d bytes; the v2 format is frozen",
			len(raw), len(golden))
	}
}
