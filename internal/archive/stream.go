// Streaming fold API: Stream decodes, validates, and dispatches one
// archive's records to a Visitor one at a time, so a consumer's memory is
// bounded by its own accumulated state, never by the archive size.
// ReadData/ReadFrom in data.go are thin clients folding into a
// wholly-resident Data; exp.DetectStream folds straight into analysis
// aggregates.
package archive

import (
	"fmt"
	"io"
)

// Visitor receives one archive's records, decoded and validated, in
// stream order. Structural validation (meta first and unique, contiguous
// VP indices, traces referencing known VPs, well-formed fingerprint
// sources, at most one degradation record) has already happened when a
// method is called, so implementations fold payloads without re-checking
// the container. A non-nil error from any method aborts the stream and is
// returned from Stream unchanged, so sentinel errors survive errors.Is/As.
type Visitor interface {
	Meta(Meta) error
	VP(VPRecord) error
	Trace(TraceRecord) error
	Fingerprint(FingerprintRecord) error
	AliasSet(AliasSetRecord) error
	Border(BorderRecord) error
	SREnabled(SREnabledRecord) error
	Degraded(Degraded) error
}

// Stream checks the magic and folds every record of the archive into v.
// It accepts both container versions; for one-pass consumers that need
// side data before traces, check the Reader's Version via StreamRecords.
func Stream(r io.Reader, v Visitor) error {
	ar, err := NewReader(r)
	if err != nil {
		return err
	}
	return StreamRecords(ar, v)
}

// StreamRecords folds every remaining record of an opened stream into v.
// It owns the structural validation shared by all consumers and returns
// ErrTruncated/ErrCorrupt on container damage, or the visitor's own error
// verbatim. Unknown record types are skipped, not fatal: a reader of this
// vintage can cross archives produced by a writer with additive
// extensions.
func StreamRecords(ar *Reader, v Visitor) error {
	sawMeta := false
	sawDegraded := false
	numVPs := 0
	for {
		t, body, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if t == TypeEnd {
			break
		}
		if !sawMeta && t != TypeMeta {
			return fmt.Errorf("%w: first record is %s, want meta", ErrCorrupt, t)
		}
		switch t {
		case TypeMeta:
			if sawMeta {
				return fmt.Errorf("%w: duplicate meta record", ErrCorrupt)
			}
			var m Meta
			if err := decode(body, &m); err != nil {
				return err
			}
			if fv, err := formatVersion(m.Format); err != nil || fv != ar.Version() {
				return fmt.Errorf("%w: meta format %q in a v%d container", ErrCorrupt, m.Format, ar.Version())
			}
			sawMeta = true
			if err := v.Meta(m); err != nil {
				return err
			}
		case TypeVP:
			var rec VPRecord
			if err := decode(body, &rec); err != nil {
				return err
			}
			if rec.Index != numVPs {
				return fmt.Errorf("%w: vp record index %d, want %d", ErrCorrupt, rec.Index, numVPs)
			}
			numVPs++
			if err := v.VP(rec); err != nil {
				return err
			}
		case TypeTrace:
			var rec TraceRecord
			if err := decode(body, &rec); err != nil {
				return err
			}
			if rec.VPIndex < 0 || rec.VPIndex >= numVPs {
				return fmt.Errorf("%w: trace references unknown vp %d", ErrCorrupt, rec.VPIndex)
			}
			if rec.Trace == nil {
				return fmt.Errorf("%w: trace record without trace body", ErrCorrupt)
			}
			if err := v.Trace(rec); err != nil {
				return err
			}
		case TypeFingerprint:
			var rec FingerprintRecord
			if err := decode(body, &rec); err != nil {
				return err
			}
			if rec.Source != SourceSNMP && rec.Source != SourceTTL {
				return fmt.Errorf("%w: fingerprint source %q", ErrCorrupt, rec.Source)
			}
			if err := v.Fingerprint(rec); err != nil {
				return err
			}
		case TypeAliasSet:
			var rec AliasSetRecord
			if err := decode(body, &rec); err != nil {
				return err
			}
			if err := v.AliasSet(rec); err != nil {
				return err
			}
		case TypeBorder:
			var rec BorderRecord
			if err := decode(body, &rec); err != nil {
				return err
			}
			if err := v.Border(rec); err != nil {
				return err
			}
		case TypeSREnabled:
			var rec SREnabledRecord
			if err := decode(body, &rec); err != nil {
				return err
			}
			if err := v.SREnabled(rec); err != nil {
				return err
			}
		case TypeDegraded:
			if sawDegraded {
				return fmt.Errorf("%w: duplicate degraded record", ErrCorrupt)
			}
			sawDegraded = true
			var rec Degraded
			if err := decode(body, &rec); err != nil {
				return err
			}
			if err := v.Degraded(rec); err != nil {
				return err
			}
		}
	}
	if !sawMeta {
		return fmt.Errorf("%w: no meta record", ErrCorrupt)
	}
	return nil
}
