// Package exp reproduces the paper's evaluation as an explicit staged
// pipeline — Measure → Archive → Annotate → Detect → Aggregate:
//
//   - Measure (MeasureAS) probes a synthetic world from many vantage
//     points and collects every side-channel the analysis needs: raw
//     traces, fingerprint annotations (TTL + SNMPv3), alias sets, bdrmap
//     borders, and the simulator's ground truth. Its output is an
//     archive.Data — the only value that crosses the storage boundary.
//   - Archive (archive.WriteData / archive.ReadData) persists that value
//     as a versioned, CRC-checked record stream; cmd/tntsim ends here.
//   - Annotate + Detect (Detect, DetectStream) are a pure function of the
//     archived records: no *asgen.World, no netsim, no generator state.
//     Both are fronts for one streaming fold (stream.go): side records
//     seal the annotation state, then traces are analyzed in bounded
//     batches and folded into a compact, mergeable Agg (agg.go).
//     DetectStream runs straight off archive bytes without materializing
//     the trace set; Detect replays an in-memory Data through the same
//     record sequence, so live runs and archive replays are bit-identical
//     by construction.
//   - Aggregate (aggregates.go, experiments.go) regenerates every table
//     and figure of the paper as pure queries over the folded Agg.
package exp

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"arest/internal/alias"
	"arest/internal/anaximander"
	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/bdrmap"
	"arest/internal/core"
	"arest/internal/fingerprint"
	"arest/internal/obs"
	"arest/internal/par"
	"arest/internal/probe"
)

// Config scales the campaign. The paper used 50 VPs and hundreds of
// thousands of traces; the defaults here reproduce the same pipeline at
// laptop scale.
type Config struct {
	Seed int64
	// NumVPs is the number of vantage points per AS (paper: 50).
	NumVPs int
	// MaxTargets caps each AS's Anaximander plan.
	MaxTargets int
	// FlowsPerTarget probes each target under several Paris flow IDs.
	FlowsPerTarget int
	// AliasCandidateCap bounds the MIDAR candidate set per AS (quadratic
	// pair testing); 0 disables alias resolution.
	AliasCandidateCap int
	// MaxRouters, when non-zero, clamps the per-AS topology size.
	MaxRouters int
	// Workers bounds the concurrency of every pipeline stage — the AS
	// pool, per-AS trace sweeps, fingerprint echoes, alias pair probing,
	// and detection (0 = GOMAXPROCS, 1 = fully sequential). Campaign
	// output is identical at every worker count: stages write into
	// index-addressed slices and alias probing replays the sequential
	// probe order on every shared IP-ID counter.
	Workers int
	// Metrics, when non-nil, receives instrumentation from every stage:
	// netsim forwarding/drop counters, probe accounting, alias and
	// fingerprint counters, and per-AS/per-stage spans. The counter section
	// is identical at every Workers count (obs package doc); spans record
	// wall-clock time and are excluded from that contract. A nil registry
	// costs only nil checks.
	Metrics *obs.Registry
	// AnalyzeWorkers, when non-zero, bounds the concurrency of the Detect
	// fold's per-batch analysis independently of Workers (so a replay can
	// analyze many shards concurrently, each with a few analysis workers).
	// 0 falls back to Workers. Aggregates are identical at every value.
	AnalyzeWorkers int
	// KeepPaths opts into retained mode: ASResult additionally carries the
	// per-VP traces, restricted paths, and per-path results. Off (the
	// default), Detect's output is the compact Agg — O(results) memory —
	// which every aggregate method is computed from either way.
	KeepPaths bool
	// MaxTraceFailures is the per-AS budget of traces that may halt with
	// probe.HaltError before the AS is quarantined: 0 (the default)
	// tolerates none, a negative value tolerates any number. The budget is
	// applied to the archived degradation record (TraceBudgetErr), so a
	// replayed shard re-derives the live run's accept/quarantine decision.
	MaxTraceFailures int
	// WrapConn, when non-nil, wraps each vantage point's probe connection
	// before measurement — the fault-injection seam. It receives the
	// catalogue record and VP index (VP addresses repeat across ASes, so
	// the address alone cannot target one AS's VP). The wrapper must keep
	// Exchange deterministic in the probe bytes for the determinism
	// contract to hold; probe.FaultConn does.
	WrapConn func(rec asgen.Record, vpIndex int, conn probe.Conn) probe.Conn
	// MaxASTraces is the deterministic per-AS deadline: the largest planned
	// trace count an AS may demand before it is quarantined (0 = unlimited).
	// The budget is applied to the *plan* — before a single probe is sent —
	// and re-derived from the archived VP records on replay, so live and
	// resumed runs reach the same verdict (DESIGN.md §14). This is the
	// inside-the-determinism-contract half of the deadline story; wall-clock
	// deadlines live outside it (StallTimeout, and context deadlines at the
	// CLIs).
	MaxASTraces int
	// StallTimeout arms the wall-clock watchdog: an AS whose pipeline makes
	// no progress (no trace completion, no analysis batch, no stage
	// boundary) for this long is cancelled and quarantined with a
	// StallError, instead of hanging the campaign (0 = no watchdog). The
	// watchdog runs on the obs clock and sits outside the determinism
	// contract: it never fires in a healthy run, and when it fires the AS
	// lands in Campaign.Failed through the same containment as any other
	// stage error.
	StallTimeout time.Duration
	// Watchdog, when non-nil, supervises instead of a StallTimeout-started
	// one — the test seam: tests inject a watchdog on a fake clock and
	// drive Scan explicitly. The caller owns its scan schedule (Run/
	// RunSharded do not call Start on an injected watchdog).
	Watchdog *obs.Watchdog

	// progress is the supervised heartbeat of the AS currently measured
	// under this (per-AS) config copy; nil when unsupervised. Installed by
	// supervised(), pulsed at every trace completion, analysis batch, and
	// stage boundary.
	progress *obs.Heartbeat
}

// beat records supervised progress; a no-op without a watchdog.
func (c Config) beat() { c.progress.Beat() }

// supervised derives one AS's execution context: when a watchdog is active
// the AS gets a cancellable child context whose cancellation cause is a
// StallError, plus a config copy carrying the registered heartbeat. finish
// must be called when the AS's pipeline returns (it retires the heartbeat
// and releases the context).
func (c Config) supervised(ctx context.Context, wd *obs.Watchdog, rec asgen.Record) (context.Context, Config, func()) {
	if wd == nil {
		return ctx, c, func() {}
	}
	asCtx, cancel := context.WithCancelCause(ctx)
	hb := wd.Register(fmt.Sprintf("as.%d", rec.ID), func() {
		cancel(&StallError{ASID: rec.ID, Quiet: c.StallTimeout})
	})
	c.progress = hb
	return asCtx, c, func() {
		hb.Done()
		cancel(nil)
	}
}

// startWatchdog resolves the campaign's watchdog: the injected one (caller
// drives its scans), a ticker-driven one when StallTimeout is set, or none.
// stop halts the ticker goroutine (a no-op for injected/absent watchdogs).
func (c Config) startWatchdog() (wd *obs.Watchdog, stop func()) {
	if c.Watchdog != nil {
		return c.Watchdog, func() {}
	}
	if c.StallTimeout <= 0 {
		return nil, func() {}
	}
	wd = obs.NewWatchdog(c.Metrics, c.StallTimeout)
	return wd, wd.Start(0)
}

// workers resolves the configured concurrency bound.
func (c Config) workers() int { return par.Workers(c.Workers) }

// analyzeWorkers resolves the Detect-fold concurrency bound.
func (c Config) analyzeWorkers() int {
	if c.AnalyzeWorkers != 0 {
		return par.Workers(c.AnalyzeWorkers)
	}
	return c.workers()
}

// DefaultConfig returns a laptop-scale campaign configuration.
func DefaultConfig() Config {
	return Config{
		Seed:              20250405,
		NumVPs:            16,
		MaxTargets:        32,
		FlowsPerTarget:    1,
		AliasCandidateCap: 120,
		MaxRouters:        60,
	}
}

// VPTraces groups one vantage point's traces.
type VPTraces struct {
	VP     netip.Addr
	Traces []*probe.Trace
}

// ASResult is the analysis output for one targeted AS. It is built by
// Detect as a pure function of an archive.Data — it holds no reference to
// the measurement-side *asgen.World, so a replayed archive yields a result
// deep-equal to the live run's.
type ASResult struct {
	Record asgen.Record
	// Dep is the archived ground-truth deployment configuration (e.g. the
	// provisioned SRGB the inference extension is validated against).
	Dep        asgen.Deployment
	Annotator  *fingerprint.Annotator
	Annotation bdrmap.Annotation
	// SREnabled is the simulator's exported ground truth: the interface
	// addresses of SR-enabled routers inside the target AS.
	SREnabled map[netip.Addr]bool
	// Agg is the folded analysis: every aggregate the experiments consume,
	// accumulated one trace at a time (see agg.go). It is always populated
	// and is the only per-trace state Detect retains by default.
	Agg *Agg
	// PerVP, Paths, and Results are retained mode (Config.KeepPaths): the
	// per-VP traces, the annotated traces restricted to the target AS
	// (bdrmapIT delimitation), and their AReST results in parallel. All
	// three are nil when KeepPaths is off.
	PerVP   []VPTraces
	Paths   []*core.Path
	Results []*core.Result
	// TracesSent counts probes-carrying traces issued for this AS.
	TracesSent int
}

// Traces flattens all vantage points' traces (retained mode only; nil
// without Config.KeepPaths).
func (r *ASResult) Traces() []*probe.Trace {
	var out []*probe.Trace
	for _, v := range r.PerVP {
		out = append(out, v.Traces...)
	}
	return out
}

// MeasureAS runs the measurement stage for one catalogue record with its
// derived deployment: the trace sweep, fingerprint echo probing, alias
// pair probing, and bdrmap annotation, plus the ground-truth export. The
// returned archive.Data is everything downstream analysis ever sees.
//
// Cancelling ctx aborts the measurement at the next trace/TTL boundary and
// returns the cause; an aborted measurement yields no Data at all, so
// nothing cancellation-shaped can reach the archive.
func MeasureAS(ctx context.Context, rec asgen.Record, cfg Config) (*archive.Data, error) {
	dep := asgen.DeploymentFor(rec, cfg.Seed)
	if cfg.MaxRouters > 0 && dep.Routers > cfg.MaxRouters {
		dep.Routers = cfg.MaxRouters
	}
	return measureWithDeployment(ctx, rec, dep, cfg)
}

// measureWithDeployment measures against an explicit deployment (used by
// the longitudinal extension to sweep SRFrac).
func measureWithDeployment(ctx context.Context, rec asgen.Record, dep asgen.Deployment, cfg Config) (*archive.Data, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	reg := cfg.Metrics
	asDone := reg.Span("exp", fmt.Sprintf("as.%d", rec.ID)).Start()
	defer asDone()
	w := asgen.Build(rec, dep, cfg.NumVPs, cfg.Seed)
	w.Net.Instrument(reg)
	rib := anaximander.CollectRIB(w)
	plan := anaximander.BuildPlan(rib, rec.ASN, anaximander.Options{MaxTargets: cfg.MaxTargets})

	data := &archive.Data{
		Meta: archive.Meta{
			Format:         archive.FormatV2,
			Record:         rec,
			Dep:            dep,
			Seed:           cfg.Seed,
			NumVPs:         cfg.NumVPs,
			MaxTargets:     cfg.MaxTargets,
			FlowsPerTarget: cfg.FlowsPerTarget,
		},
	}
	workers := cfg.workers()
	reg.Counter("exp", "ases").Inc()
	// busy accumulates per-job worker time across the fan-out stages;
	// utilization is busy time over wall time × workers.
	busy := reg.Span("exp", "workers.busy")

	// Trace sweep: every (vantage point, target, flow) probe is an
	// independent job — traces never observe shared counter state — so the
	// whole sweep fans out flat across VPs into pre-sized per-VP slots.
	type traceJob struct {
		vpIdx, slot int
		tgt         netip.Addr
		flow        uint16
	}
	flows := max(1, cfg.FlowsPerTarget)
	jobs := make([]traceJob, 0, len(w.VPs)*len(plan.Targets)*flows)
	pm := probe.NewMetrics(reg)
	// conn builds one vantage point's probe connection, threading it
	// through the fault-injection seam when configured.
	conn := func(vpIdx int) probe.Conn {
		var c probe.Conn = probe.NetsimConn{Net: w.Net}
		if cfg.WrapConn != nil {
			c = cfg.WrapConn(rec, vpIdx, c)
		}
		return c
	}
	tracers := make([]*probe.Tracer, len(w.VPs))
	data.VPs = make([]netip.Addr, len(w.VPs))
	data.PerVP = make([][]*probe.Trace, len(w.VPs))
	for vpIdx, vp := range w.VPs {
		tracers[vpIdx] = probe.NewTracer(conn(vpIdx), vp)
		tracers[vpIdx].Metrics = pm
		slot := 0
		for _, tgt := range plan.Shuffled(vpIdx) {
			for flow := 0; flow < flows; flow++ {
				jobs = append(jobs, traceJob{vpIdx, slot, tgt, uint16(flow)})
				slot++
			}
		}
		data.VPs[vpIdx] = vp
		data.PerVP[vpIdx] = make([]*probe.Trace, slot)
	}
	// Deterministic deadline: the budget is applied to the plan, before a
	// single probe is sent. len(jobs) equals the archived trace count, so a
	// replay re-derives this exact verdict from the shard alone.
	if err := cfg.ASBudgetErr(len(jobs)); err != nil {
		return nil, err
	}
	jobErrs := make([]error, len(jobs))
	reg.Counter("exp", "jobs.trace").Add(uint64(len(jobs)))
	traceDone := reg.Span("exp", "stage.trace").Start()
	sweepErr := par.ForEach(ctx, workers, len(jobs), func(i int) {
		defer busy.Start()()
		j := jobs[i]
		tr, err := tracers[j.vpIdx].Trace(ctx, j.tgt, j.flow)
		if err != nil {
			jobErrs[i] = fmt.Errorf("trace %s from %s: %w", j.tgt, w.VPs[j.vpIdx], err)
			return
		}
		data.PerVP[j.vpIdx][j.slot] = tr
		cfg.beat()
	})
	traceDone()
	if sweepErr != nil {
		return nil, sweepErr
	}
	// Trace probe failures are fail-soft (recorded as HaltError traces, see
	// probe.Tracer.Trace), so a surviving job error is a non-probe failure
	// and still aborts the AS — a single errored job must not leave a nil
	// trace slot behind.
	for _, err := range jobErrs {
		if err != nil {
			return nil, err
		}
	}
	traces := data.Traces()

	// Degradation accounting: traces the sweep had to halt with an error.
	// The record rides in the archive so replays see the same degradation,
	// and it is written only when failures occurred — a fault-free
	// measurement's archive bytes are unchanged.
	byVP := make([]int, len(data.PerVP))
	failedTraces := 0
	for vpIdx, ts := range data.PerVP {
		for _, tr := range ts {
			if tr.Failed() {
				failedTraces++
				byVP[vpIdx]++
			}
		}
	}
	if failedTraces > 0 {
		data.Degraded = &archive.Degraded{
			FailedTraces: failedTraces,
			TotalTraces:  len(traces),
			ByVP:         byVP,
		}
		reg.Counter("exp", "traces.failed").Add(uint64(failedTraces))
	}

	cfg.beat()

	// Fingerprinting: TTL signatures need echo probes; the SNMPv3 dataset
	// is the (simulated) public one.
	pinger := probe.NewTracer(conn(0), w.VPs[0])
	pinger.Metrics = pm
	var fpErr error
	reg.Time("exp", "stage.fingerprint", func() {
		data.TTL, fpErr = fingerprint.CollectTTL(ctx, traces, pinger, workers, reg)
	})
	if fpErr != nil {
		return nil, fpErr
	}
	data.SNMP = fingerprint.SNMPDataset(w.Net)
	cfg.beat()

	// Alias resolution feeds bdrmap.
	if cfg.AliasCandidateCap > 0 {
		seen := map[netip.Addr]bool{}
		var cands []netip.Addr
		for _, tr := range traces {
			for i := range tr.Hops {
				h := &tr.Hops[i]
				if h.Responded() && !seen[h.Addr] {
					seen[h.Addr] = true
					cands = append(cands, h.Addr)
				}
			}
		}
		// Sort before capping so the kept candidate set is stable
		// regardless of trace-collection order.
		sort.Slice(cands, func(i, j int) bool { return cands[i].Less(cands[j]) })
		if len(cands) > cfg.AliasCandidateCap {
			cands = cands[:cfg.AliasCandidateCap]
		}
		acfg := alias.DefaultConfig()
		acfg.Workers = workers
		acfg.Metrics = reg
		// Ground-truth conflict keys let pair tests on disjoint routers
		// run concurrently; the keys only order probing, never results.
		acfg.ConflictKey = func(a netip.Addr) (uint64, bool) {
			r, ok := w.Net.RouterByAddr(a)
			if !ok {
				return 0, false
			}
			return uint64(r.ID), true
		}
		var aliasErr error
		reg.Time("exp", "stage.alias", func() {
			data.Aliases, aliasErr = alias.Resolve(ctx, cands, pinger, acfg)
		})
		if aliasErr != nil && ctx.Err() != nil {
			// A cancelled fan-out is an abort, not an untrusted partition:
			// surface the cause so the AS is skipped, not quarantined.
			return nil, context.Cause(ctx)
		}
		if aliasErr != nil {
			// An errored alias partition cannot be trusted (an errored
			// probe is not a silent router), and bdrmap consumes it next —
			// so alias probe errors are AS-fatal, not degradation.
			return nil, fmt.Errorf("alias resolution: %w", aliasErr)
		}
		if len(data.Aliases) == 0 {
			data.Aliases = nil // canonical empty form for archive roundtrips
		}
	}
	cfg.beat()
	data.Borders = bdrmap.Annotate(traces, rib, data.Aliases)

	// Ground-truth export: every interface address of an SR-enabled router
	// in the target AS, so offline replays can score Table 3 without the
	// world. Membership in this set is exactly World.SREnabledAddr.
	for _, r := range w.Routers {
		if !w.SRRouter[r.ID] {
			continue
		}
		data.SREnabled = append(data.SREnabled, r.Interfaces()...)
	}
	sort.Slice(data.SREnabled, func(i, j int) bool { return data.SREnabled[i].Less(data.SREnabled[j]) })
	return data, nil
}

// Detect runs the Annotate and Detect stages over archived campaign data:
// vendor fingerprints and bdrmap owners are applied per hop, traces are
// delimited to the target AS, and AReST analyzes each path. It is a pure
// function of data (plus the Workers/Metrics knobs), shared verbatim by
// live runs and archive replays.
//
// It is a thin client of the streaming fold in stream.go: the in-memory
// Data is replayed through the exact record sequence its v2 encoding would
// contain, so Detect here and DetectStream over the encoded bytes are
// deep-equal by construction.
func Detect(ctx context.Context, data *archive.Data, cfg Config) (*ASResult, error) {
	done := cfg.Metrics.Span("exp", "stage.detect").Start()
	defer done()
	f := newFold(ctx, cfg, false)
	if err := foldData(f, data); err != nil {
		return nil, err
	}
	return f.finish()
}

// RunAS executes the full staged pipeline for one catalogue record:
// Measure, then Annotate+Detect over the in-memory campaign data, with the
// trace-failure budget applied in between. The archive stage is a
// pass-through here; writing the data out and replaying it through Detect
// yields a deep-equal result (the roundtrip-equivalence test pins this).
// Errors carry their pipeline stage (StageError); a cancelled ctx surfaces
// as its cause (see IsInterrupt), never as a stage fault.
func RunAS(ctx context.Context, rec asgen.Record, cfg Config) (*ASResult, error) {
	data, err := MeasureAS(ctx, rec, cfg)
	if err != nil {
		return nil, stageErr(StageMeasure, err)
	}
	if err := cfg.TraceBudgetErr(data); err != nil {
		return nil, err
	}
	res, err := Detect(ctx, data, cfg)
	if err != nil {
		return nil, stageErr(StageDetect, err)
	}
	return res, nil
}

// runASWithDeployment runs measure+detect against an explicit deployment
// (longitudinal extension).
func runASWithDeployment(ctx context.Context, rec asgen.Record, dep asgen.Deployment, cfg Config) (*ASResult, error) {
	data, err := measureWithDeployment(ctx, rec, dep, cfg)
	if err != nil {
		return nil, stageErr(StageMeasure, err)
	}
	if err := cfg.TraceBudgetErr(data); err != nil {
		return nil, err
	}
	res, err := Detect(ctx, data, cfg)
	if err != nil {
		return nil, stageErr(StageDetect, err)
	}
	return res, nil
}

// Campaign is a full multi-AS run. ASes holds the successful analyses in
// catalogue order; Failed holds the quarantined ASes (also in catalogue
// order) with the stage and error that took each one down.
type Campaign struct {
	Cfg    Config
	ASes   []*ASResult
	Failed []ASFailure
}

// Run executes the campaign over the given catalogue records. Records with
// too little coverage in the paper (ExcludedIDs) are skipped, mirroring
// the coverage filter of Sec. 5. Per-AS pipelines are independent (each AS
// is its own world), so they run concurrently; results keep catalogue
// order and the output is bit-identical to a sequential run.
//
// Failures are contained per AS: an errored AS lands in Campaign.Failed
// with its stage and error, and every other AS's result is identical to a
// run without the fault. The error return is reserved for campaign-level
// failures and is nil even when ASes failed — callers apply their own
// policy over Failed (the CLIs expose it as -max-as-failures).
//
// Cancelling ctx interrupts the campaign: in-flight ASes abort at their
// next trace/TTL boundary and unstarted ones never begin. Interrupted ASes
// are skipped — not quarantined — so the returned partial Campaign holds
// only complete results and Run reports the cancellation cause. When
// Config arms a watchdog (StallTimeout/Watchdog), a stalled AS is
// cancelled individually and lands in Failed with a StallError while the
// rest of the campaign proceeds.
func Run(ctx context.Context, records []asgen.Record, cfg Config) (*Campaign, error) {
	kept := keptRecords(records)
	results := make([]*ASResult, len(kept))
	errs := make([]error, len(kept))
	wd, stopWD := cfg.startWatchdog()
	defer stopWD()
	fanErr := par.ForEach(ctx, cfg.workers(), len(kept), func(i int) {
		asCtx, asCfg, finish := cfg.supervised(ctx, wd, kept[i])
		defer finish()
		results[i], errs[i] = RunAS(asCtx, kept[i], asCfg)
	})

	c := &Campaign{Cfg: cfg}
	interrupted := 0
	for i, rec := range kept {
		switch {
		case errs[i] == nil && results[i] != nil:
			c.ASes = append(c.ASes, results[i])
		case errs[i] == nil:
			// Never claimed before cancellation reached the pool.
			interrupted++
		case IsInterrupt(errs[i]) && ctx.Err() != nil:
			// Campaign-level interrupt: a resumed run completes this AS
			// identically, so recording it as Failed would make the failure
			// list depend on interrupt timing.
			interrupted++
		default:
			c.Failed = append(c.Failed, ASFailure{Record: rec, Stage: FailureStage(errs[i]), Err: errs[i]})
		}
	}
	countASFailures(cfg.Metrics, len(c.Failed))
	if fanErr != nil || interrupted > 0 {
		countInterrupt(cfg.Metrics, interrupted)
		if fanErr == nil {
			fanErr = context.Cause(ctx)
		}
		return c, fanErr
	}
	return c, nil
}

// countInterrupt records campaign-interruption accounting: exp.cancelled
// once per interrupted run, exp.shards.interrupted for every AS that was
// skipped and left to a resume.
func countInterrupt(reg *obs.Registry, skipped int) {
	reg.Counter("exp", "cancelled").Inc()
	if skipped > 0 {
		reg.Counter("exp", "shards.interrupted").Add(uint64(skipped))
	}
}

// countASFailures records quarantined-AS accounting; failure counts are a
// pure function of the catalogue and the (deterministic) faults, so the
// counter sits inside the determinism contract.
func countASFailures(reg *obs.Registry, n int) {
	if n > 0 {
		reg.Counter("exp", "ases.failed").Add(uint64(n))
	}
}

// keptRecords applies the Sec. 5 coverage filter.
func keptRecords(records []asgen.Record) []asgen.Record {
	var kept []asgen.Record
	for _, rec := range records {
		if !asgen.ExcludedIDs[rec.ID] {
			kept = append(kept, rec)
		}
	}
	return kept
}

// MergedAgg folds every AS's aggregate into one campaign-level Agg,
// merging in catalogue (AS-ID) order. Merge is commutative, so the order
// only matters for reading the code, not the result; campaign-wide
// experiments (Figs. 11–12) consume this instead of walking retained
// per-AS results.
func (c *Campaign) MergedAgg() *Agg {
	m := NewAgg()
	for _, r := range c.ASes {
		if r.Agg == nil {
			continue
		}
		m.Merge(r.Agg)
		c.Cfg.Metrics.Counter("exp", "agg.merges").Inc()
	}
	return m
}

// ByID returns the AS result with the given paper identifier.
func (c *Campaign) ByID(id int) (*ASResult, bool) {
	for _, r := range c.ASes {
		if r.Record.ID == id {
			return r, true
		}
	}
	return nil, false
}
