package core

import (
	"sort"

	"arest/internal/mpls"
)

// SRGBEstimate is the outcome of InferSRGB.
type SRGBEstimate struct {
	// Observed is the tight range spanned by the sampled node-SID labels.
	Observed mpls.LabelRange
	// Block is the inferred configured block: a known vendor default when
	// the observations fit one, otherwise Observed rounded out to
	// thousand-aligned boundaries.
	Block mpls.LabelRange
	// Vendor names the matched default block (VendorUnknown for custom).
	Vendor mpls.Vendor
	// Samples is the number of distinct labels the estimate rests on.
	Samples int
}

// minSRGBSamples is the smallest evidence base InferSRGB accepts.
const minSRGBSamples = 3

// InferSRGB estimates a domain's configured SRGB from AReST results: the
// active labels of sequence-flagged segments are node-SID labels, which by
// construction all fall inside the (domain-wide, RFC 8402) SRGB. This
// extends the paper's characterization: beyond *that* SR is deployed, it
// recovers *how* the label space was provisioned — in particular whether
// the operator kept a vendor default (the survey's 70%) or customized it.
func InferSRGB(results []*Result) (SRGBEstimate, bool) {
	labelSet := map[uint32]bool{}
	for _, res := range results {
		for _, s := range res.Segments {
			if s.Flag == FlagCVR || s.Flag == FlagCO {
				labelSet[s.Label] = true
			}
		}
	}
	return InferSRGBLabels(labelSet)
}

// InferSRGBLabels runs the same estimate over an already-collected set of
// sequence-flagged labels, for callers that fold results incrementally.
func InferSRGBLabels(labelSet map[uint32]bool) (SRGBEstimate, bool) {
	if len(labelSet) < minSRGBSamples {
		return SRGBEstimate{}, false
	}
	labels := make([]uint32, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	est := SRGBEstimate{
		Observed: mpls.LabelRange{Lo: labels[0], Hi: labels[len(labels)-1]},
		Samples:  len(labels),
		Vendor:   mpls.VendorUnknown,
	}

	// Prefer a known vendor default that contains every observation.
	defaults := []struct {
		v mpls.Vendor
		r mpls.LabelRange
	}{
		{mpls.VendorCisco, mpls.CiscoSRGB}, // also the common interop block
		{mpls.VendorHuawei, mpls.HuaweiSRGB},
		{mpls.VendorNokia, mpls.NokiaSRGB},
		{mpls.VendorArista, mpls.AristaSRGB},
	}
	for _, d := range defaults {
		if d.r.Contains(est.Observed.Lo) && d.r.Contains(est.Observed.Hi) {
			est.Block = d.r
			est.Vendor = d.v
			return est, true
		}
	}
	// Custom block: round out to thousand-aligned boundaries, the way
	// operators carve label space.
	lo := est.Observed.Lo / 1000 * 1000
	hi := (est.Observed.Hi/1000 + 1) * 1000
	if hi > mpls.MaxLabel {
		hi = mpls.MaxLabel + 1
	}
	est.Block = mpls.LabelRange{Lo: lo, Hi: hi - 1}
	return est, true
}
