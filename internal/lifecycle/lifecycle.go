// Package lifecycle is the CLIs' shutdown seam: it turns OS signals into
// context cancellation with two-phase semantics — the first SIGINT/SIGTERM
// cancels the campaign context so workers drain and complete shards flush,
// the second aborts immediately — and defines the distinct exit status a
// resumable interruption reports.
//
// The signal source is an injected channel, never a direct signal.Notify
// inside the campaign path, so tests drive both phases deterministically by
// sending values on a plain channel (no real signals, no races with the
// test harness's own handlers).
package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Exit statuses of the campaign CLIs. ExitInterrupted is deliberately
// distinct from generic failure: it promises that the run was cancelled
// cleanly (only complete shards on disk) and that re-running the same
// command resumes and completes it.
const (
	ExitOK          = 0
	ExitFailure     = 1
	ExitInterrupted = 3
)

// SignalError is the cancellation cause installed when a shutdown signal
// arrives. It unwraps to context.Canceled, so the pipeline's interrupt
// classification (exp.IsInterrupt, Interrupted here) treats a signal
// exactly like any other cancellation.
type SignalError struct {
	Sig os.Signal
}

func (e *SignalError) Error() string {
	return fmt.Sprintf("received %v: draining workers, flushing complete shards", e.Sig)
}

// Unwrap makes errors.Is(err, context.Canceled) hold for signal causes.
func (e *SignalError) Unwrap() error { return context.Canceled }

// Notify subscribes a fresh channel to the shutdown signal set (SIGINT and
// SIGTERM). The channel is buffered for both phases so a second signal is
// never dropped while the first is being handled. stop unsubscribes.
func Notify() (sigs chan os.Signal, stop func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch, func() { signal.Stop(ch) }
}

// Context derives the two-phase shutdown context from parent. The first
// value on sigs cancels the returned context with a SignalError — the
// graceful phase: campaign code drains in-flight work and keeps every
// complete shard. A second value invokes hard (the immediate phase; the
// CLIs pass an os.Exit wrapper, tests pass a probe). stop releases the
// watcher goroutine; call it once the run loop returns.
func Context(parent context.Context, sigs <-chan os.Signal, hard func()) (ctx context.Context, stop func()) {
	cctx, cancel := context.WithCancelCause(parent)
	quit := make(chan struct{})
	// A signal that arrived before the run started (queued during setup)
	// cancels synchronously, so even a campaign that finishes before the
	// watcher goroutine is scheduled observes it.
	pending := false
	select {
	case s := <-sigs:
		cancel(&SignalError{Sig: s})
		pending = true
	default:
	}
	go func() {
		if !pending {
			select {
			case <-quit:
				return
			case <-cctx.Done():
				return
			case s := <-sigs:
				cancel(&SignalError{Sig: s})
			}
		}
		select {
		case <-quit:
		case <-sigs:
			if hard != nil {
				hard()
			}
		}
	}()
	var once sync.Once
	return cctx, func() {
		once.Do(func() {
			close(quit)
			cancel(context.Canceled)
		})
	}
}

// Interrupted reports whether err is a cancellation (signal, deadline, or
// explicit cancel) rather than a real failure — the condition under which
// a CLI exits with ExitInterrupted and the run is resumable.
func Interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
