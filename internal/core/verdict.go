package core

// Verdict encodes the interpretive framework of Sec. 6.3: how confidently
// a set of AReST results supports the claim "this AS deploys SR-MPLS".
type Verdict int

const (
	// VerdictNoEvidence: no flags fired at all.
	VerdictNoEvidence Verdict = iota
	// VerdictAmbiguous: only LSO fired — deep stacks that classic MPLS
	// (VPNs, RSVP-TE, entropy labels) can equally produce. The paper's
	// Proximus case: "needs more cautious interpretation".
	VerdictAmbiguous
	// VerdictDetected: strong flags (CVR/CO/LSVR/LVR) fired.
	VerdictDetected
	// VerdictCorroborated: strong flags fired in an AS whose deployment is
	// also externally confirmed (survey or vendor), or where LSO co-occurs
	// with strong flags (the Google/Amazon/ESnet situation, where LSO
	// segments gain strength from surrounding evidence).
	VerdictCorroborated
)

func (v Verdict) String() string {
	switch v {
	case VerdictNoEvidence:
		return "no-evidence"
	case VerdictAmbiguous:
		return "ambiguous"
	case VerdictDetected:
		return "detected"
	case VerdictCorroborated:
		return "corroborated"
	default:
		return "?"
	}
}

// Judge aggregates per-path results into an AS-level verdict.
// externallyConfirmed marks ASes whose deployment is claimed through the
// survey or vendor channels.
func Judge(results []*Result, externallyConfirmed bool) Verdict {
	strong, lso := 0, 0
	for _, res := range results {
		for _, s := range res.Segments {
			if s.Flag.Strong() {
				strong++
			} else if s.Flag == FlagLSO {
				lso++
			}
		}
	}
	return JudgeCounts(strong, lso, externallyConfirmed)
}

// JudgeCounts applies the same interpretive framework to pre-aggregated
// segment counts, for callers that fold results incrementally and retain
// only per-flag tallies.
func JudgeCounts(strong, lso int, externallyConfirmed bool) Verdict {
	switch {
	case strong > 0 && (externallyConfirmed || lso > 0):
		return VerdictCorroborated
	case strong > 0:
		return VerdictDetected
	case lso > 0:
		return VerdictAmbiguous
	default:
		return VerdictNoEvidence
	}
}

// ConservativeSegments filters a result set down to the segments the
// verdict allows counting: under an ambiguous verdict LSO segments are
// excluded entirely (as Sec. 6.3 does for the rest of the paper), while
// under corroborated verdicts they are retained.
func ConservativeSegments(results []*Result, v Verdict) []Segment {
	var out []Segment
	for _, res := range results {
		for _, s := range res.Segments {
			if s.Flag.Strong() || (s.Flag == FlagLSO && v == VerdictCorroborated) {
				out = append(out, s)
			}
		}
	}
	return out
}
