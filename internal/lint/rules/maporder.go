package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"arest/internal/lint"
)

// MapOrder builds the maporder analyzer: the canonical source of
// run-to-run drift in measurement pipelines is a `for range` over a map
// whose iteration order leaks into output (DESIGN.md §7.2). A map range
// is flagged when its body, at any depth,
//
//   - appends to a slice that outlives the loop (accumulating elements in
//     iteration order), unless the enclosing function later passes that
//     slice to sort/slices — the collect-then-sort idiom — or
//   - writes to a writer, hash, encoder or string builder that outlives
//     the loop (fmt.Fprint*, Write*, Encode — bytes cannot be re-sorted
//     after the fact), or prints to stdout.
//
// Order-independent uses stay silent: writes into maps, keyed
// accumulation (m[k] = append(m[k], ...)), per-iteration locals, and
// commutative folds (sums, max, counts).
func MapOrder() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "maporder",
		Doc:  "forbid map iteration order from reaching slices or output unsorted",
		Run:  runMapOrder,
	}
}

func runMapOrder(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := pass.Info.Types[rs.X]; !ok || !isMap(tv.Type) {
					return true
				}
				checkMapRange(pass, fd.Body, rs)
				return true
			})
		}
	}
	return nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderedWriters are method names that serialize their arguments in call
// order; feeding them from a map range bakes iteration order into bytes.
var orderedWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeToken": true,
}

// fmtPrinters are the fmt functions flagged inside map ranges: the F*
// variants when their writer outlives the loop, the bare variants always
// (stdout outlives everything).
var fmtPrinters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// checkMapRange walks one map-range body for order-sensitive sinks.
func checkMapRange(pass *lint.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				checkAppend(pass, fnBody, rs, n.Lhs[i])
			}
			return true
		case *ast.CallExpr:
			if isBuiltinAppend(pass, n) && !isAssignedAppend(rs, n) {
				// append whose result escapes through a call or return:
				// order-dependent and unsortable here.
				pass.Report(n.Pos(),
					"append inside map iteration accumulates in nondeterministic order (DESIGN.md §7.2); collect and sort, or iterate sorted keys")
				return true
			}
			checkOutputCall(pass, rs, n)
			return true
		}
		return true
	})
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isAssignedAppend reports whether the append call is the direct RHS of
// an assignment somewhere in the range body (those are handled, with
// target analysis, by the AssignStmt case).
func isAssignedAppend(rs *ast.RangeStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, rhs := range as.Rhs {
			if ast.Unparen(rhs) == call {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkAppend analyzes one `target = append(...)` inside a map range.
func checkAppend(pass *lint.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) {
	switch t := ast.Unparen(target).(type) {
	case *ast.IndexExpr:
		// m[k] = append(m[k], ...): keyed accumulation, order-free.
		return
	case *ast.Ident:
		obj := pass.ObjectOf(t)
		if obj == nil {
			return // blank identifier
		}
		if within(obj.Pos(), rs) {
			return // per-iteration local, rebuilt each key
		}
		if sortedAfter(pass, fnBody, rs, obj) {
			return // collect-then-sort idiom
		}
		pass.Report(t.Pos(),
			"map iteration appends to %q in nondeterministic order (DESIGN.md §7.2); sort %q afterwards or iterate sorted keys", t.Name, t.Name)
	default:
		// Selector or other lvalue: order-dependent unless its base is
		// loop-local.
		if base := baseIdent(target); base != nil {
			obj := pass.ObjectOf(base)
			if obj != nil && within(obj.Pos(), rs) {
				return
			}
		}
		pass.Report(target.Pos(),
			"map iteration appends through %s in nondeterministic order (DESIGN.md §7.2); sort the result or iterate sorted keys", exprString(target))
	}
}

// checkOutputCall flags writer/encoder/printer calls whose destination
// outlives the map range.
func checkOutputCall(pass *lint.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	pkg, name, ok := pass.CalleeIn(call)
	if !ok {
		return
	}
	if pkg == "fmt" && fmtPrinters[name] {
		if name[0] == 'F' {
			if len(call.Args) > 0 && destIsLoopLocal(pass, rs, call.Args[0]) {
				return
			}
		}
		pass.Report(call.Pos(),
			"fmt.%s inside map iteration emits output in nondeterministic order (DESIGN.md §7.2); iterate sorted keys", name)
		return
	}
	// Method call x.Write(...) / x.Encode(...) etc.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !orderedWriters[name] {
		return
	}
	if _, isMethod := pass.Info.Selections[sel]; !isMethod {
		return
	}
	if destIsLoopLocal(pass, rs, sel.X) {
		return
	}
	pass.Report(call.Pos(),
		"%s.%s inside map iteration serializes in nondeterministic order (DESIGN.md §7.2); iterate sorted keys", exprString(sel.X), name)
}

// destIsLoopLocal reports whether the destination expression bottoms out
// in an identifier declared inside the range statement (a per-iteration
// buffer is order-safe).
func destIsLoopLocal(pass *lint.Pass, rs *ast.RangeStmt, dest ast.Expr) bool {
	base := baseIdent(dest)
	if base == nil {
		return false
	}
	obj := pass.ObjectOf(base)
	return obj != nil && within(obj.Pos(), rs)
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// the range ends, within the same function body.
func sortedAfter(pass *lint.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		pkg, _, ok := pass.CalleeIn(call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// within reports whether pos falls inside the range statement.
func within(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

// baseIdent unwraps an lvalue-ish expression to its base identifier:
// (&b).rows[i] -> b. Returns nil when the base is not a plain identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// exprString renders a short source-ish form of e for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "expression"
	}
}
