// Package a exercises nolockcopy on a mutex-bearing value and a
// new-style-atomic-bearing value: every by-value copy of either fires.
package a

import (
	"sync"
	"sync/atomic"
)

// Guarded carries a mutex: copying it forks the lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Counter carries a new-style atomic value: copying it splits the count.
type Counter struct {
	hits atomic.Uint64
}

func (g Guarded) badRecv() int { // want `method badRecv has a value receiver copying`
	return g.n
}

func (g *Guarded) goodRecv() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func byValue(g Guarded) int { // want `parameter of byValue copies`
	return g.n
}

func byPointer(g *Guarded) int { return g.n }

func passCounter(c Counter) uint64 { // want `parameter of passCounter copies`
	return c.hits.Load()
}

func snapshot(g *Guarded) int {
	dup := *g // want `assignment copies`
	return dup.n
}

func declCopy(g *Guarded) {
	var dup = *g // want `var initializer copies`
	_ = dup
}

func iterate(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range variable g copies`
		total += g.n
	}
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func deref(g *Guarded) Guarded {
	return *g // want `return dereferences and copies`
}

func fresh() *Guarded {
	g := Guarded{} // composite literal: fresh state, legal
	return &g
}

func litParam() func(*Guarded) int {
	bad := func(g Guarded) int { // want `parameter of func literal copies`
		return g.n
	}
	_ = bad
	return func(g *Guarded) int { return g.n }
}
