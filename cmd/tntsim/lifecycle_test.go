package main

import (
	"bytes"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"arest/internal/lifecycle"
)

func smallArgs(extra ...string) []string {
	base := []string{"-as", "2", "-vps", "3", "-targets", "8"}
	return append(base, extra...)
}

func noHard(t *testing.T) func() {
	return func() { t.Error("hard abort invoked without a second signal") }
}

// TestSignalSuppressesArchive: an interrupted measurement writes nothing —
// the archive is produced only from a complete measurement — and exits
// with the resumable status.
func TestSignalSuppressesArchive(t *testing.T) {
	out := filepath.Join(t.TempDir(), "as2.arest")
	sigs := make(chan os.Signal, 2)
	sigs <- syscall.SIGTERM
	var stdout, stderr bytes.Buffer
	code := run(smallArgs("-o", out), sigs, noHard(t), &stdout, &stderr)
	if code != lifecycle.ExitInterrupted {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, lifecycle.ExitInterrupted, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("no archive written")) {
		t.Errorf("stderr does not explain the suppressed archive:\n%s", stderr.String())
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Errorf("interrupted run left an output file (stat err = %v)", err)
	}
}

// TestASBudgetQuarantineFails: the deterministic budget is a quarantine
// (plain failure), not an interrupt, and also writes no archive.
func TestASBudgetQuarantineFails(t *testing.T) {
	out := filepath.Join(t.TempDir(), "as2.arest")
	var stdout, stderr bytes.Buffer
	code := run(smallArgs("-o", out, "-as-budget", "1"), nil, noHard(t), &stdout, &stderr)
	if code != lifecycle.ExitFailure {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("plan demands")) {
		t.Errorf("stderr does not carry the budget verdict:\n%s", stderr.String())
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Errorf("quarantined run left an output file (stat err = %v)", err)
	}
}

// TestCleanRunWritesArchive: without interference the archive lands on
// disk and the exit status is zero.
func TestCleanRunWritesArchive(t *testing.T) {
	out := filepath.Join(t.TempDir(), "as2.arest")
	var stdout, stderr bytes.Buffer
	if code := run(smallArgs("-o", out), nil, noHard(t), &stdout, &stderr); code != lifecycle.ExitOK {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("archive missing or empty: %v", err)
	}
}
