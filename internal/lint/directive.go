package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveAnalyzerName attributes diagnostics about the suppression
// directives themselves (malformed or unused //arest:allow comments).
const DirectiveAnalyzerName = "arestlint"

// directivePrefix introduces a suppression comment. The syntax is
//
//	//arest:allow <analyzer> <reason...>
//
// placed anywhere in a file (conventionally next to the code it excuses).
// It silences every finding of <analyzer> in that file. The reason is
// mandatory: a suppression without a written justification is itself a
// build-failing finding, so the contract's escape hatch always leaves an
// audit trail.
const directivePrefix = "//arest:allow"

// allowDirective is one parsed //arest:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	file     string
	pos      token.Position
	used     bool
}

// allowSet is every well-formed directive of one package.
type allowSet []*allowDirective

// match returns the first unexpired directive suppressing analyzer
// findings in file, or nil.
func (s allowSet) match(analyzer, file string) *allowDirective {
	for _, a := range s {
		if a.analyzer == analyzer && a.file == file {
			return a
		}
	}
	return nil
}

// collectAllows parses the //arest:allow directives of every file in the
// package. Malformed directives — a missing analyzer name, a name not in
// known, or a missing reason — are returned as diagnostics so the CLI
// fails on them.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (allowSet, []Diagnostic) {
	var allows allowSet
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Analyzer: DirectiveAnalyzerName,
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if verb, ok := unknownDirective(c.Text); ok {
					report(c.Pos(), "unknown directive //arest:%s: the framework understands allow, mergeable, hotpath, coldpath", verb)
					continue
				}
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				// CRLF sources leave a trailing \r on line comments; treat it
				// as the separator/terminator it is, not as directive text.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\r' {
					continue // e.g. //arest:allowed — not our directive
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					report(c.Pos(), "malformed directive: want //arest:allow <analyzer> <reason>")
				case !known[name]:
					report(c.Pos(), "//arest:allow names unknown analyzer %q", name)
				case reason == "":
					report(c.Pos(), "//arest:allow %s is missing its written reason: every suppression must justify itself", name)
				default:
					allows = append(allows, &allowDirective{
						analyzer: name,
						reason:   reason,
						file:     fset.Position(c.Pos()).Filename,
						pos:      fset.Position(c.Pos()),
					})
				}
			}
		}
	}
	return allows, bad
}

// summary renders the directive for suppressed-diagnostic reporting:
// where it sits and the written justification it carries.
func (a *allowDirective) summary() string {
	return fmt.Sprintf("%s:%d (%s)", a.pos.Filename, a.pos.Line, a.reason)
}

// unknownDirective reports a //arest: comment whose verb the framework
// does not understand — a typo'd directive must fail the build, not
// silently check nothing.
func unknownDirective(text string) (verb string, unknown bool) {
	rest, ok := strings.CutPrefix(text, "//arest:")
	if !ok {
		return "", false
	}
	verb = rest
	if i := strings.IndexAny(rest, " \t\r"); i >= 0 {
		verb = rest[:i]
	}
	return verb, verb != "" && !knownDirectives[verb]
}
