package probe

import (
	"context"
	"testing"

	"arest/internal/netsim"
	"arest/internal/testrace"
)

// Allocation budget for the probe-send path: one full Paris traceroute
// through an SR tunnel, revelation on, every hop answering with an RFC
// 4950 quote. The steady-state cost is the result itself (Trace, its hop
// slice, the loop-detection map, one decoded label stack per labeled hop)
// plus the per-Send reply wires from netsim; probe construction, encoding,
// and reply decoding must contribute nothing. The budget carries headroom
// for GC-cleared pools but sits far below the pre-scratch cost (~400
// allocs per trace), so a fallback to per-probe buffers trips it at once.
func TestAllocBudgetTrace(t *testing.T) {
	if testrace.Enabled {
		t.Skip("allocation counts are meaningless under -race instrumentation")
	}
	tn := build(t, netsim.ModeSR, true, true)
	tr := tn.tracer()
	got := testing.AllocsPerRun(100, func() {
		res, err := tr.Trace(context.Background(), tn.target, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reached() {
			t.Fatalf("halt = %v", res.Halt)
		}
	})
	const budget = 60
	if got > budget {
		t.Errorf("Trace: %.1f allocs/op, budget %d", got, budget)
	}
}

// Ping and SampleIPID ride the same scratch pool; their budgets cover the
// reply wire and pool headroom only.
func TestAllocBudgetPingAndIPID(t *testing.T) {
	if testrace.Enabled {
		t.Skip("allocation counts are meaningless under -race instrumentation")
	}
	tn := build(t, netsim.ModeIP, true, true)
	tr := tn.tracer()
	got := testing.AllocsPerRun(200, func() {
		if _, ok, err := tr.Ping(context.Background(), tn.target, 7); err != nil || !ok {
			t.Fatalf("ping: ok=%v err=%v", ok, err)
		}
	})
	if got > 8 {
		t.Errorf("Ping: %.1f allocs/op, budget 8", got)
	}
	got = testing.AllocsPerRun(200, func() {
		if _, ok, err := tr.SampleIPID(context.Background(), tn.target, 3); err != nil || !ok {
			t.Fatalf("ipid: ok=%v err=%v", ok, err)
		}
	})
	if got > 8 {
		t.Errorf("SampleIPID: %.1f allocs/op, budget 8", got)
	}
}
