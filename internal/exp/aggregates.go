package exp

import (
	"net/netip"
	"sort"

	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/probe"
)

// FlagCounts tallies detected segments per flag (Fig. 8's numerator).
func (r *ASResult) FlagCounts() map[core.Flag]int {
	out := map[core.Flag]int{}
	for _, res := range r.Results {
		for _, s := range res.Segments {
			out[s.Flag]++
		}
	}
	return out
}

// FlagShares normalizes FlagCounts to proportions (Fig. 8).
func (r *ASResult) FlagShares() map[core.Flag]float64 {
	counts := r.FlagCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	out := map[core.Flag]float64{}
	if total == 0 {
		return out
	}
	for f, n := range counts {
		out[f] = float64(n) / float64(total)
	}
	return out
}

// HasStrongSR reports whether the AS shows any strong SR evidence.
func (r *ASResult) HasStrongSR() bool {
	for _, res := range r.Results {
		if res.HasSR() {
			return true
		}
	}
	return false
}

// HasAnySR reports whether any flag (including LSO) fired.
func (r *ASResult) HasAnySR() bool {
	for _, res := range r.Results {
		if len(res.Segments) > 0 {
			return true
		}
	}
	return false
}

// AreaTraceShares returns the fraction of the AS's paths touching each
// area (Fig. 10a). A path can contribute to several areas.
func (r *ASResult) AreaTraceShares() map[core.Area]float64 {
	counts := map[core.Area]int{}
	for _, res := range r.Results {
		for _, a := range []core.Area{core.AreaSR, core.AreaMPLS, core.AreaIP} {
			if res.HitsArea(a) {
				counts[a]++
			}
		}
	}
	out := map[core.Area]float64{}
	if len(r.Results) == 0 {
		return out
	}
	for a, n := range counts {
		out[a] = float64(n) / float64(len(r.Results))
	}
	return out
}

// AreaInterfaceCounts returns the number of distinct interfaces attributed
// to each area (Fig. 10b); an interface seen in several areas counts in
// the strongest one (SR > MPLS > IP).
func (r *ASResult) AreaInterfaceCounts() map[core.Area]int {
	best := map[netip.Addr]core.Area{}
	for _, res := range r.Results {
		for i, h := range res.Path.Hops {
			a := res.Areas[i]
			if cur, ok := best[h.Addr]; !ok || a > cur {
				best[h.Addr] = a
			}
		}
	}
	out := map[core.Area]int{}
	for _, a := range best {
		out[a]++
	}
	return out
}

// DistinctIPs counts distinct interfaces observed inside the AS.
func (r *ASResult) DistinctIPs() int {
	seen := map[netip.Addr]bool{}
	for _, p := range r.Paths {
		for i := range p.Hops {
			seen[p.Hops[i].Addr] = true
		}
	}
	return len(seen)
}

// TunnelPatterns tallies interworking chaining patterns (Fig. 11) across
// the AS's labeled tunnels.
func (r *ASResult) TunnelPatterns() map[core.Pattern]int {
	out := map[core.Pattern]int{}
	for _, res := range r.Results {
		for _, t := range res.Tunnels() {
			out[t.Pattern]++
		}
	}
	return out
}

// CloudSizes returns the LDP and SR cloud sizes inside interworking
// tunnels (Fig. 12).
func (r *ASResult) CloudSizes() (ldp, sr []int) {
	for _, res := range r.Results {
		for _, t := range res.Tunnels() {
			if !t.Interworking() {
				continue
			}
			for _, cl := range t.Clouds {
				if cl.Kind == core.CloudSR {
					sr = append(sr, cl.Len)
				} else {
					ldp = append(ldp, cl.Len)
				}
			}
		}
	}
	return ldp, sr
}

// StackDepthDist returns the distribution of LSE stack depths over hops in
// strong-flag segments (strong=true) or over classic-MPLS/LSO hops
// (strong=false) — Fig. 9a and 9b.
func (r *ASResult) StackDepthDist(strong bool) map[int]int {
	out := map[int]int{}
	for _, res := range r.Results {
		inStrong := make([]bool, len(res.Path.Hops))
		for _, s := range res.Segments {
			if s.Flag.Strong() {
				for k := s.Start; k <= s.End; k++ {
					inStrong[k] = true
				}
			}
		}
		for i := range res.Path.Hops {
			h := &res.Path.Hops[i]
			if !h.HasStack() {
				continue
			}
			if inStrong[i] == strong {
				out[h.Stack.Depth()]++
			}
		}
	}
	return out
}

// TunnelTypeCounts classifies every tunnel observed in the AS's raw traces
// by visibility class (Fig. 13a).
func (r *ASResult) TunnelTypeCounts() map[probe.TunnelType]int {
	out := map[probe.TunnelType]int{}
	for _, v := range r.PerVP {
		for _, tr := range v.Traces {
			for _, t := range probe.ClassifyTunnels(tr) {
				out[t.Type]++
			}
		}
	}
	return out
}

// ExplicitPathShare is the fraction of paths showing at least one explicit
// tunnel (Fig. 13b).
func (r *ASResult) ExplicitPathShare() float64 {
	total, with := 0, 0
	for _, v := range r.PerVP {
		for _, tr := range v.Traces {
			total++
			if probe.HasExplicitTunnel(tr) {
				with++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(with) / float64(total)
}

// FingerprintSourceCounts returns how many of the AS's observed interfaces
// were identified per technique (Fig. 14).
func (r *ASResult) FingerprintSourceCounts() map[fingerprint.Source]int {
	out := map[fingerprint.Source]int{}
	seen := map[netip.Addr]bool{}
	for _, p := range r.Paths {
		for i := range p.Hops {
			h := &p.Hops[i]
			if seen[h.Addr] {
				continue
			}
			seen[h.Addr] = true
			out[h.Source]++
		}
	}
	return out
}

// VendorCounts returns per-vendor device counts identified through SNMPv3
// (Fig. 15's heatmap row for this AS).
func (r *ASResult) VendorCounts() map[mpls.Vendor]int {
	out := map[mpls.Vendor]int{}
	seen := map[netip.Addr]bool{}
	for _, p := range r.Paths {
		for i := range p.Hops {
			h := &p.Hops[i]
			if seen[h.Addr] || h.Source != fingerprint.SourceSNMP {
				continue
			}
			seen[h.Addr] = true
			out[h.Vendor]++
		}
	}
	return out
}

// LabelBuckets are the Fig. 16 label-range rows.
var LabelBuckets = []struct {
	Name string
	R    mpls.LabelRange
}{
	{"0-15999", mpls.LabelRange{Lo: 0, Hi: 15999}},
	{"16000-23999", mpls.LabelRange{Lo: 16000, Hi: 23999}},
	{"24000-47999", mpls.LabelRange{Lo: 24000, Hi: 47999}},
	{"48000-99999", mpls.LabelRange{Lo: 48000, Hi: 99999}},
	{"100000-299999", mpls.LabelRange{Lo: 100000, Hi: 299999}},
	{"300000-899999", mpls.LabelRange{Lo: 300000, Hi: 899999}},
	{"900000-1048575", mpls.LabelRange{Lo: 900000, Hi: 1048575}},
}

// LabelRangeHist counts observed 20-bit labels per bucket (Fig. 16).
func (r *ASResult) LabelRangeHist() map[string]int {
	out := map[string]int{}
	for _, p := range r.Paths {
		for i := range p.Hops {
			for _, e := range p.Hops[i].Stack {
				for _, b := range LabelBuckets {
					if b.R.Contains(e.Label) {
						out[b.Name]++
						break
					}
				}
			}
		}
	}
	return out
}

// VPAccumulation returns the cumulative count of unique hop addresses as
// vantage points are added in order (Fig. 17).
func (r *ASResult) VPAccumulation() []int {
	seen := map[netip.Addr]bool{}
	var out []int
	for _, v := range r.PerVP {
		for _, tr := range v.Traces {
			for i := range tr.Hops {
				if tr.Hops[i].Responded() {
					seen[tr.Hops[i].Addr] = true
				}
			}
		}
		out = append(out, len(seen))
	}
	return out
}

// GroundTruth scores AReST's per-flag segment inferences against the
// simulator's ground truth (Table 3): a segment is a true positive when
// every hop belongs to an SR-enabled router, a false positive otherwise.
// False negatives count SR interfaces that were observed with labels but
// never covered by any flag. The truth set is the archived SREnabled
// export, so the score is computable offline from a replayed archive.
func (r *ASResult) GroundTruth() map[core.Flag]eval.Confusion {
	out := map[core.Flag]eval.Confusion{}
	flaggedAddrs := map[netip.Addr]bool{}
	for _, res := range r.Results {
		for _, s := range res.Segments {
			c := out[s.Flag]
			allSR := true
			for k := s.Start; k <= s.End; k++ {
				h := &res.Path.Hops[k]
				flaggedAddrs[h.Addr] = true
				if !r.SREnabled[h.Addr] {
					allSR = false
				}
			}
			if allSR {
				c.TP++
			} else {
				c.FP++
			}
			out[s.Flag] = c
		}
	}
	// FN accounting: labeled SR interfaces never flagged, attributed to
	// the catch-all CO row (the flag that should have caught sequences).
	fn := 0
	seen := map[netip.Addr]bool{}
	for _, p := range r.Paths {
		for i := range p.Hops {
			h := &p.Hops[i]
			// Terminal hops are the destination's own reply, not classified
			// transit observations; they cannot be false negatives.
			if seen[h.Addr] || !h.HasStack() || h.Terminal {
				continue
			}
			seen[h.Addr] = true
			if r.SREnabled[h.Addr] && !flaggedAddrs[h.Addr] {
				fn++
			}
		}
	}
	c := out[core.FlagCO]
	c.FN += fn
	out[core.FlagCO] = c
	return out
}

// SortedFlagKeys lists the flags present in a count map, strongest first.
func SortedFlagKeys(m map[core.Flag]int) []core.Flag {
	var keys []core.Flag
	for f := range m {
		keys = append(keys, f)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Verdict applies the Sec. 6.3 interpretive framework to the AS: strong
// flags, LSO corroboration, and external confirmation combine into one
// deployment verdict.
func (r *ASResult) Verdict() core.Verdict {
	return core.Judge(r.Results, r.Record.Claimed())
}
