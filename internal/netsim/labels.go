package netsim

import (
	"net/netip"

	"arest/internal/mpls"
)

// sidIndexOwner returns the router holding the given node-SID index.
func (n *Network) sidIndexOwner(idx int) (*Router, bool) {
	if idx < 0 || idx >= len(n.sidOwner) {
		return nil, false
	}
	id := n.sidOwner[idx]
	if id < 0 {
		return nil, false
	}
	return n.routers[id], true
}

// srLabelAt computes the MPLS label that router "at" understands as the
// node SID of egress e: at's SRGB base plus e's index. ok is false when at
// is not SR-capable or e has no node SID.
func (n *Network) srLabelAt(at *Router, e *Router) (uint32, bool) {
	if !at.SREnabled || e.nodeIndex < 0 {
		return 0, false
	}
	l := at.SRGB.Lo + uint32(e.nodeIndex)
	if l > at.SRGB.Hi {
		return 0, false
	}
	return l, true
}

// resolveLabel interprets an incoming label at router r. Resolution order:
// the router's own SRGB (node SIDs), its adjacency SIDs, then its LDP
// bindings; the dynamic pool is range-disjoint from the SR blocks for every
// modeled vendor, so the order only matters for operator-customized SRGBs.
type labelKind int

const (
	labelUnknown      labelKind = iota
	labelNodeSID                // FEC = egress router
	labelAdjSID                 // forward out a specific link
	labelLDP                    // FEC = egress router
	labelService                // service SID terminating here: pop and continue
	labelExplicitNull           // reserved label 0: pop, continue with IP
	labelELI                    // entropy label indicator (RFC 6790): pop it and the EL
)

func (n *Network) resolveLabel(r *Router, label uint32) (kind labelKind, fec RouterID, nbr RouterID) {
	switch label {
	case mpls.LabelIPv4ExplicitNull:
		return labelExplicitNull, r.ID, 0
	case mpls.LabelELI:
		return labelELI, r.ID, 0
	}
	if r.SREnabled && r.SRGB.Contains(label) {
		if e, ok := n.sidIndexOwner(int(label - r.SRGB.Lo)); ok {
			return labelNodeSID, e.ID, 0
		}
		return labelUnknown, 0, 0
	}
	if nb, ok := r.adjByL[label]; ok {
		return labelAdjSID, 0, nb
	}
	if r.svcSIDs[label] {
		return labelService, r.ID, 0
	}
	if e, ok := r.ldpIn[label]; ok {
		return labelLDP, e, 0
	}
	return labelUnknown, 0, 0
}

// AllocateServiceSID reserves a service SID at router r (service SIDs ride
// at the bottom of SR stacks and are consumed by the terminating node —
// the "unshrinking stack" behaviour of advanced SR deployments). The label
// is drawn from the router's dynamic pool so it collides with nothing.
func (n *Network) AllocateServiceSID(r *Router, name string) uint32 {
	l := r.pool.Allocate("svc-" + name)
	r.svcSIDs[l] = true
	return l
}

// SegmentList is an explicit SR path: a sequence of segments the ingress
// encodes as a label stack.
type SegmentList []Segment

// Segment is one instruction: either a node segment (shortest path to Node)
// or an adjacency segment (cross the link From->To using From's adjacency
// SID). Service marks a service SID, which rides at the bottom of the stack
// until the terminating node.
type Segment struct {
	Node    RouterID
	From    RouterID
	To      RouterID
	Adj     bool
	Service bool
	// ServiceLabel is the label value for Service segments.
	ServiceLabel uint32
}

// buildSRStack encodes a segment list into a label stack as the SR source
// would: each label is expressed in the SRGB of the router where it becomes
// active. atFirst is the first router that will read the top label (the
// ingress's next hop, or the ingress itself when it processes its own
// push — we model the push as interpreted by the ingress's next hop).
// The stack is appended onto dst (pass dst[:0] to reuse a scratch buffer);
// on failure the partially appended contents are discarded by the caller.
func (n *Network) buildSRStack(dst mpls.Stack, ingress *Router, segs SegmentList, flow uint64, ttl uint8) (mpls.Stack, bool) {
	stack := dst
	cur := ingress // router at which the *next* segment becomes active
	for i, s := range segs {
		switch {
		case s.Service:
			stack = append(stack, mpls.LSE{Label: s.ServiceLabel, TTL: ttl})
		case s.Adj:
			from := n.routers[s.From]
			l, ok := from.AdjacencySID(s.To)
			if !ok {
				return nil, false
			}
			stack = append(stack, mpls.LSE{Label: l, TTL: ttl})
			cur = n.routers[s.To]
		default:
			// Node segment: the top label of the stack is read by the
			// ingress's next hop; deeper labels are read at the router
			// where they become active (the endpoint of the previous
			// segment).
			reader := cur
			if i == 0 {
				nh, ok := n.NextHop(ingress.ID, s.Node, flow)
				if !ok {
					return nil, false
				}
				reader = n.routers[nh]
			}
			l, ok := n.srLabelAt(reader, n.routers[s.Node])
			if !ok {
				return nil, false
			}
			stack = append(stack, mpls.LSE{Label: l, TTL: ttl})
			cur = n.routers[s.Node]
		}
	}
	return stack, len(stack) > 0
}

// TunnelEligible reports whether a destination address is carried over an
// LSP: loopback FECs and routed (customer/host) prefixes are; bare
// interface addresses are not, because neither LDP nor SR binds labels to
// point-to-point interface prefixes. This FEC granularity is what lets
// TNT's DPR/BRPR reveal invisible tunnel interiors by tracing toward
// interface addresses.
func (n *Network) TunnelEligible(dst netip.Addr) bool {
	id, ok := n.addrOwner[dst]
	if !ok {
		return true // routed prefix or host: label-switched
	}
	return n.routers[id].Loopback == dst
}
