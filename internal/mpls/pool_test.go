package mpls

import (
	"fmt"
	"testing"
)

func TestPoolAllocateStableBinding(t *testing.T) {
	p := NewPool(DynamicPool(VendorCisco), 1)
	l1 := p.Allocate("10.0.0.0/24")
	l2 := p.Allocate("10.0.0.0/24")
	if l1 != l2 {
		t.Errorf("re-allocation for same FEC: %d != %d", l1, l2)
	}
	if p.Allocated() != 1 {
		t.Errorf("Allocated = %d, want 1", p.Allocated())
	}
}

func TestPoolAllocateWithinRange(t *testing.T) {
	r := DynamicPool(VendorCisco)
	p := NewPool(r, 42)
	for i := 0; i < 1000; i++ {
		l := p.Allocate(fmt.Sprintf("fec-%d", i))
		if !r.Contains(l) {
			t.Fatalf("label %d outside pool %v", l, r)
		}
	}
}

func TestPoolAllocateUnique(t *testing.T) {
	p := NewPool(LabelRange{100, 1099}, 3)
	seen := make(map[uint32]bool)
	for i := 0; i < 1000; i++ {
		l := p.Allocate(fmt.Sprintf("fec-%d", i))
		if seen[l] {
			t.Fatalf("label %d allocated twice", l)
		}
		seen[l] = true
	}
	if p.Allocated() != 1000 {
		t.Errorf("Allocated = %d, want 1000", p.Allocated())
	}
}

func TestPoolDeterministic(t *testing.T) {
	a := NewPool(DynamicPool(VendorCisco), 99)
	b := NewPool(DynamicPool(VendorCisco), 99)
	for i := 0; i < 50; i++ {
		fec := fmt.Sprintf("fec-%d", i)
		if la, lb := a.Allocate(fec), b.Allocate(fec); la != lb {
			t.Fatalf("same seed diverged at %s: %d vs %d", fec, la, lb)
		}
	}
}

func TestPoolDifferentSeedsDiverge(t *testing.T) {
	// Local significance: two routers (different seeds) should essentially
	// never agree on the label for the same FEC across many FECs.
	a := NewPool(DynamicPool(VendorCisco), 1)
	b := NewPool(DynamicPool(VendorCisco), 2)
	agree := 0
	const n = 2000
	for i := 0; i < n; i++ {
		fec := fmt.Sprintf("fec-%d", i)
		if a.Allocate(fec) == b.Allocate(fec) {
			agree++
		}
	}
	// Expected agreements ≈ n/poolSize ≈ 0.002; allow a little slack.
	if agree > 3 {
		t.Errorf("%d/%d agreements between independent pools; labels are not locally significant enough", agree, n)
	}
}

func TestPoolLookup(t *testing.T) {
	p := NewPool(LabelRange{100, 200}, 1)
	if _, ok := p.Lookup("missing"); ok {
		t.Error("Lookup on empty pool returned ok")
	}
	l := p.Allocate("a")
	got, ok := p.Lookup("a")
	if !ok || got != l {
		t.Errorf("Lookup = %d,%v; want %d,true", got, ok, l)
	}
}

func TestPoolExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("exhausted pool did not panic")
		}
	}()
	p := NewPool(LabelRange{10, 11}, 1)
	p.Allocate("a")
	p.Allocate("b")
	p.Allocate("c") // pool of size 2 exhausted
}
