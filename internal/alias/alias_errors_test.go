package alias

import (
	"context"
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"arest/internal/obs"
	"arest/internal/probe"
)

var errTransport = errors.New("socket gone")

// errProber wraps a fakeProber and fails samples of one address, starting
// at a configurable sequence number (so a test can let the estimation
// stage succeed and break only the pair stage).
type errProber struct {
	inner    *fakeProber
	bad      netip.Addr
	afterSeq uint32
}

func (e *errProber) SampleIPID(ctx context.Context, dst netip.Addr, seq uint32) (probe.IPIDSample, bool, error) {
	if dst == e.bad && seq >= e.afterSeq {
		return probe.IPIDSample{}, false, errTransport
	}
	return e.inner.SampleIPID(ctx, dst, seq)
}

// aliasCounter reads one "alias" stage counter from the registry snapshot.
func aliasCounter(reg *obs.Registry, name string) uint64 {
	return reg.Snapshot().Deterministic().Counters["alias."+name]
}

func TestResolveSurfacesEstimationErrors(t *testing.T) {
	// Two addresses share a counter; a third errors on every sample. The
	// partition of the healthy probes must still come back, alongside an
	// error naming the failure — never a silent "unresponsive" downgrade.
	ctr := uint16(100)
	f := &fakeProber{
		ids:  map[netip.Addr]*uint16{a("10.0.0.1"): &ctr, a("10.0.0.2"): &ctr},
		step: map[netip.Addr]uint16{a("10.0.0.1"): 5, a("10.0.0.2"): 5},
		ttl:  map[netip.Addr]uint8{},
	}
	reg := obs.New()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	sets, err := Resolve(context.Background(), []netip.Addr{a("10.0.0.1"), a("10.0.0.2"), a("10.0.0.3")},
		&errProber{inner: f, bad: a("10.0.0.3")}, cfg)
	if err == nil {
		t.Fatal("Resolve swallowed the sample error")
	}
	if !errors.Is(err, errTransport) {
		t.Errorf("err = %v, want it to wrap the transport error", err)
	}
	if !strings.Contains(err.Error(), "estimate 10.0.0.3") {
		t.Errorf("err = %v, want it to name the errored candidate", err)
	}
	want := [][]netip.Addr{{a("10.0.0.1"), a("10.0.0.2")}}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("sets = %v, want %v (healthy pair still resolved)", sets, want)
	}
	if got := aliasCounter(reg, "sample_errors"); got != 1 {
		t.Errorf("sample_errors = %d, want 1", got)
	}
}

func TestResolveExcludesErroredPairs(t *testing.T) {
	// All three candidates pass estimation; the third then errors in the
	// pair stage (its sequence numbers start at len(addrs)). Pairs touching
	// it must be excluded from the union-find — not treated as refuted or
	// aliased — while the healthy pair still resolves.
	ctr, ctr3 := uint16(100), uint16(200)
	addrs := []netip.Addr{a("10.0.0.1"), a("10.0.0.2"), a("10.0.0.3")}
	f := &fakeProber{
		ids: map[netip.Addr]*uint16{
			a("10.0.0.1"): &ctr, a("10.0.0.2"): &ctr, a("10.0.0.3"): &ctr3},
		step: map[netip.Addr]uint16{
			a("10.0.0.1"): 5, a("10.0.0.2"): 5, a("10.0.0.3"): 5},
		ttl: map[netip.Addr]uint8{},
	}
	reg := obs.New()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	sets, err := Resolve(context.Background(), addrs,
		&errProber{inner: f, bad: a("10.0.0.3"), afterSeq: uint32(len(addrs))}, cfg)
	if err == nil {
		t.Fatal("Resolve swallowed the pair errors")
	}
	if !errors.Is(err, errTransport) {
		t.Errorf("err = %v, want it to wrap the transport error", err)
	}
	// The first errored pair in index order is (10.0.0.1, 10.0.0.3).
	if !strings.Contains(err.Error(), "pair (10.0.0.1, 10.0.0.3)") {
		t.Errorf("err = %v, want the first errored pair named deterministically", err)
	}
	if !strings.Contains(err.Error(), "2 probe errors") {
		t.Errorf("err = %v, want the total errored-probe count", err)
	}
	want := [][]netip.Addr{{a("10.0.0.1"), a("10.0.0.2")}}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("sets = %v, want %v", sets, want)
	}
	if got := aliasCounter(reg, "pairs.errored"); got != 2 {
		t.Errorf("pairs.errored = %d, want 2", got)
	}
	if got := aliasCounter(reg, "sample_errors"); got != 0 {
		t.Errorf("sample_errors = %d, want 0", got)
	}
}
