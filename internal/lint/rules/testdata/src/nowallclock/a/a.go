// Package a is nowallclock testdata: loaded under an import path that the
// test registers as a determinism-contract package.
package a

import "time"

func bad() time.Duration {
	t0 := time.Now()       // want "time.Now reads the wall clock"
	d := time.Since(t0)    // want "time.Since reads the wall clock"
	_ = time.After(d)      // want "time.After reads the wall clock"
	tm := time.NewTimer(d) // want "time.NewTimer reads the wall clock"
	defer tm.Stop()
	return time.Until(t0) // want "time.Until reads the wall clock"
}

// badValue: referencing the function as a value is a finding too — the
// clock must arrive pre-injected, not be captured locally.
func badValue() func() time.Time {
	return time.Now // want "time.Now reads the wall clock"
}

// good: pure time arithmetic and formatting never read the clock.
func good(clock func() time.Time) string {
	t := clock()
	t = t.Add(3 * time.Second)
	_ = time.Unix(0, 0)
	_ = time.Date(2025, time.March, 1, 0, 0, 0, 0, time.UTC)
	return t.Format(time.RFC3339)
}
