// Package pool is ctxplumb testdata: loaded under an import path the test
// registers as a worker-pool package, so every claim loop spawned at the
// top level of a go-statement must observe cancellation.
package pool

import (
	"context"
	"sync"
)

// goodErrCheck is the ForEach shape: the claim loop polls ctx.Err().
func goodErrCheck(ctx context.Context, n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
	}()
	wg.Wait()
}

// goodDoneChannel is the ConflictOrdered shape: the loop selects on a
// channel captured from ctx.Done() before the spawn.
func goodDoneChannel(ctx context.Context, ready chan int, fn func(int)) {
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case i, ok := <-ready:
				if !ok {
					return
				}
				fn(i)
			}
		}
	}()
	wg.Wait()
}

// badLoop claims forever: the goroutine's loop never looks at ctx.
func badLoop(ctx context.Context, ready chan int, fn func(int)) {
	_ = ctx
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range ready { // want "worker claim loop never observes ctx cancellation"
			fn(i)
		}
	}()
	wg.Wait()
}

// badNoCtx spawns a claim loop in a function with no context at all: the
// loop cannot observe what does not exist, which is the finding.
func badNoCtx(ready chan int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range ready { // want "worker claim loop never observes ctx cancellation"
			fn(i)
		}
	}()
	wg.Wait()
}

// sequential has loops but spawns nothing: not a claim loop.
func sequential(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
