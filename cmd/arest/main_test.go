package main

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"arest/internal/mpls"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "fp.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadFingerprints(t *testing.T) {
	p := writeTemp(t, `
# comment line
10.0.0.1 cisco snmp
10.0.0.2 juniper ttl
10.0.0.3 cisco/huawei ttl
10.0.0.4 nokia
`)
	snmp, ttl, err := loadFingerprints(p)
	if err != nil {
		t.Fatal(err)
	}
	if snmp[netip.MustParseAddr("10.0.0.1")] != mpls.VendorCisco {
		t.Errorf("snmp = %v", snmp)
	}
	// Default source is snmp.
	if snmp[netip.MustParseAddr("10.0.0.4")] != mpls.VendorNokia {
		t.Errorf("default source: %v", snmp)
	}
	if ttl[netip.MustParseAddr("10.0.0.2")] != mpls.VendorJuniper {
		t.Errorf("ttl = %v", ttl)
	}
	if ttl[netip.MustParseAddr("10.0.0.3")] != mpls.VendorCiscoHuawei {
		t.Errorf("ambiguity class: %v", ttl)
	}
}

func TestLoadFingerprintsErrors(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"missing-vendor", "10.0.0.1\n"},
		{"bad-addr", "nonsense cisco\n"},
		{"bad-vendor", "10.0.0.1 cisco9000\n"},
		{"bad-source", "10.0.0.1 cisco carrier-pigeon\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := loadFingerprints(writeTemp(t, c.body)); err == nil {
				t.Errorf("accepted %q", c.body)
			}
		})
	}
	if _, _, err := loadFingerprints("/nonexistent/fp.txt"); err == nil {
		t.Error("missing file accepted")
	}
}
