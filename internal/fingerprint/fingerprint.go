// Package fingerprint assigns hardware vendors to router interfaces using
// the two techniques of the paper: TTL-based signatures (Vanaubel et al.)
// inferred from reply TTLs, and an SNMPv3-style dataset (Albakour et al.).
//
// TTL signatures are the pair <initial TTL of time-exceeded, initial TTL of
// echo-reply>. Cisco and Huawei share <255,255> and are indistinguishable:
// the TTL technique therefore yields the VendorCiscoHuawei ambiguity class,
// whose SR label matching is restricted to the intersection of the two
// vendors' SRGBs. SNMPv3 identification is exact and takes precedence.
package fingerprint

import (
	"context"
	"net/netip"
	"sort"

	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/obs"
	"arest/internal/par"
	"arest/internal/probe"
)

// Source records which technique produced a vendor annotation.
type Source int

const (
	SourceNone Source = iota
	SourceTTL
	SourceSNMP
)

func (s Source) String() string {
	switch s {
	case SourceTTL:
		return "ttl"
	case SourceSNMP:
		return "snmpv3"
	default:
		return "none"
	}
}

// Result is one interface's vendor annotation.
type Result struct {
	Vendor mpls.Vendor
	Source Source
}

// Signature is a TTL fingerprint: the inferred initial TTLs of
// time-exceeded and echo-reply messages.
type Signature struct {
	TimeExceeded uint8
	EchoReply    uint8
}

// Classify maps a TTL signature to a vendor class.
func (s Signature) Classify() mpls.Vendor {
	switch s {
	case Signature{255, 255}:
		return mpls.VendorCiscoHuawei
	case Signature{255, 64}:
		return mpls.VendorJuniper
	case Signature{64, 255}:
		return mpls.VendorNokia
	default:
		// <64,64> collides across Arista, Linux, MikroTik and more:
		// unusable for vendor attribution.
		return mpls.VendorUnknown
	}
}

// Pinger issues echo requests; probe.Tracer implements it.
type Pinger interface {
	Ping(ctx context.Context, dst netip.Addr, id uint16) (replyTTL uint8, ok bool, err error)
}

// pingID derives a deterministic echo identifier from the pinged address,
// replacing the old map-iteration-order counter: the probe bytes sent to an
// interface no longer depend on which other interfaces are in the batch.
func pingID(a netip.Addr) uint16 {
	b := a.As4()
	v := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return uint16(v ^ (v >> 31))
}

// CollectTTL builds TTL fingerprints for every responding hop in traces.
// The time-exceeded half comes from the trace replies themselves; the
// echo-reply half requires the interface to answer pings — interfaces that
// do not (e.g. the whole of ESnet in the paper's ground truth) stay
// unclassified. Pings fan out over at most workers goroutines (0 =
// GOMAXPROCS, 1 = sequential); each ping is independent, so the result is
// the same at any worker count. Cancelling ctx stops the fan-out at the
// next ping boundary and returns the cause with a nil map. reg (may be
// nil) receives "fingerprint" stage accounting; every recorded count is a
// pure function of the trace set, so the counters sit inside the
// determinism contract.
func CollectTTL(ctx context.Context, traces []*probe.Trace, pinger Pinger, workers int, reg *obs.Registry) (map[netip.Addr]mpls.Vendor, error) {
	teInit := make(map[netip.Addr]uint8)
	for _, tr := range traces {
		for i := range tr.Hops {
			h := &tr.Hops[i]
			if !h.Responded() {
				continue
			}
			if h.ICMPType != 11 { // only time-exceeded carries that half
				continue
			}
			if _, seen := teInit[h.Addr]; !seen {
				teInit[h.Addr] = probe.InferInitialTTL(h.ReplyTTL)
			}
		}
	}
	addrs := make([]netip.Addr, 0, len(teInit))
	for addr := range teInit {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	met := struct {
		candidates, pingNoReply, classified, ambiguousSig *obs.Counter
	}{
		candidates:   reg.Counter("fingerprint", "candidates"),
		pingNoReply:  reg.Counter("fingerprint", "ping_noreply"),
		classified:   reg.Counter("fingerprint", "classified"),
		ambiguousSig: reg.Counter("fingerprint", "ambiguous_sig"),
	}
	met.candidates.Add(uint64(len(addrs)))
	vendors := make([]mpls.Vendor, len(addrs))
	err := par.ForEach(ctx, par.Workers(workers), len(addrs), func(i int) {
		vendors[i] = mpls.VendorUnknown
		replyTTL, ok, err := pinger.Ping(ctx, addrs[i], pingID(addrs[i]))
		if err != nil || !ok {
			met.pingNoReply.Inc()
			return
		}
		sig := Signature{TimeExceeded: teInit[addrs[i]], EchoReply: probe.InferInitialTTL(replyTTL)}
		vendors[i] = sig.Classify()
		if vendors[i] == mpls.VendorUnknown {
			met.ambiguousSig.Inc()
		}
	})
	if err != nil {
		return nil, err
	}
	out := make(map[netip.Addr]mpls.Vendor)
	for i, addr := range addrs {
		if vendors[i] != mpls.VendorUnknown {
			out[addr] = vendors[i]
		}
	}
	met.classified.Add(uint64(len(out)))
	return out, nil
}

// SNMPDataset simulates the public SNMPv3 fingerprint dataset: interfaces
// of routers that expose SNMP appear with their exact vendor. Arista
// devices are absent, mirroring the dataset limitation the paper reports.
func SNMPDataset(n *netsim.Network) map[netip.Addr]mpls.Vendor {
	out := make(map[netip.Addr]mpls.Vendor)
	for _, r := range n.Routers() {
		if !r.Profile.SNMPOpen {
			continue
		}
		if r.Vendor == mpls.VendorArista {
			continue // not fingerprintable in the SNMPv3 dataset
		}
		for _, a := range r.Interfaces() {
			out[a] = r.Vendor
		}
	}
	return out
}

// Annotator merges the two techniques, SNMPv3 taking precedence when both
// disagree (paper Sec. 5).
type Annotator struct {
	snmp map[netip.Addr]mpls.Vendor
	ttl  map[netip.Addr]mpls.Vendor
}

// NewAnnotator builds an annotator from the two datasets; either may be nil.
func NewAnnotator(snmp, ttl map[netip.Addr]mpls.Vendor) *Annotator {
	if snmp == nil {
		snmp = map[netip.Addr]mpls.Vendor{}
	}
	if ttl == nil {
		ttl = map[netip.Addr]mpls.Vendor{}
	}
	return &Annotator{snmp: snmp, ttl: ttl}
}

// Vendor resolves the annotation for one interface.
func (a *Annotator) Vendor(ip netip.Addr) Result {
	if v, ok := a.snmp[ip]; ok {
		return Result{Vendor: v, Source: SourceSNMP}
	}
	if v, ok := a.ttl[ip]; ok {
		return Result{Vendor: v, Source: SourceTTL}
	}
	return Result{Vendor: mpls.VendorUnknown, Source: SourceNone}
}

// Coverage returns how many distinct interfaces each source annotated,
// after precedence (an address known to both counts as SNMP).
func (a *Annotator) Coverage() (snmp, ttl int) {
	snmp = len(a.snmp)
	for addr := range a.ttl {
		if _, dup := a.snmp[addr]; !dup {
			ttl++
		}
	}
	return snmp, ttl
}
