// Package outside is noerrdrop testdata loaded under an import path that
// is NOT in the audited set: discarded errors here are some other
// package's problem.
package outside

import "errors"

func mayFail() error { return errors.New("x") }

func drops() {
	mayFail()
	_, _ = 1, mayFail()
}
