package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers run on.
type Package struct {
	// Path is the package's import path ("arest/internal/netsim").
	Path string
	// Dir is the directory the files were parsed from.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader enumerates and type-checks module packages using only the
// standard library: go/build for file selection (honouring build
// constraints), go/parser for syntax, go/types for checking. Imports that
// resolve inside the module are themselves type-checked from source;
// stdlib imports come from compiler export data via importer.Default().
// The module is dependency-free (stdlib-only), so nothing else can occur.
type Loader struct {
	// Root is the absolute module root (directory holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	// IncludeTests widens loading to _test.go files. In-package test
	// files are type-checked together with the package they test (as a
	// separate cached variant), and external test files (package foo_test)
	// load as their own package. Imports BETWEEN packages always resolve
	// to the unaugmented variant: in-package test files cannot add API
	// that other packages consume, and resolving them unaugmented keeps
	// test-only imports from creating spurious cycles.
	IncludeTests bool

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// NewLoader creates a loader for the module rooted at root, reading the
// module path from root/go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Root:   abs,
		Module: mod,
		fset:   token.NewFileSet(),
		std:    importer.Default(),
		cache:  make(map[string]*Package),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module declaration from a go.mod file. A full
// modfile parser is unnecessary: the directive is a single line.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod — how tests and the CLI locate the module when invoked from a
// package subdirectory.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadAll loads every package under the module root (the "./..." pattern):
// each directory containing buildable non-test Go files, skipping testdata
// trees and hidden or underscore-prefixed directories. Results are sorted
// by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadMode(ip, dir, l.IncludeTests)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue // empty directory (or test-only without -tests)
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
		if l.IncludeTests {
			xpkg, err := l.loadXTest(ip, dir)
			if err != nil {
				return nil, err
			}
			if xpkg != nil {
				pkgs = append(pkgs, xpkg)
			}
		}
	}
	return pkgs, nil
}

// LoadDir type-checks the single package in dir under the given import
// path. dir may live outside the module root (the mutation tests exploit
// this): its own files are parsed from dir while any intra-module imports
// still resolve against the loader's root. Honours IncludeTests for the
// package's own in-package test files.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadMode(importPath, dir, l.IncludeTests)
}

// load is the import-resolution entry point: always the unaugmented
// (non-test) variant, so package-to-package edges never run through test
// files.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	return l.loadMode(importPath, dir, false)
}

// loadMode parses and type-checks one directory as importPath, caching per
// (import path, variant) so diamond imports check once. withTests folds
// the in-package _test.go files into the package.
func (l *Loader) loadMode(importPath, dir string, withTests bool) (*Package, error) {
	key := importPath
	if withTests {
		key += " [tests]"
	}
	if p, ok := l.cache[key]; ok {
		return p, nil
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := bp.GoFiles
	if withTests {
		names = append(append([]string(nil), bp.GoFiles...), bp.TestGoFiles...)
	}
	if len(names) == 0 {
		// ImportDir reports test-only directories as buildable; without
		// their test files there is nothing to check.
		return nil, &build.NoGoError{Dir: dir}
	}
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[key] = pkg
	return pkg, nil
}

// loadXTest loads dir's external test package (package foo_test) as its
// own package named importPath_test, or nil when the directory has no
// external test files. The base import path resolves to the test-augmented
// variant — external tests may use identifiers that in-package test files
// declare — while every other import stays unaugmented.
func (l *Loader) loadXTest(importPath, dir string) (*Package, error) {
	xpath := importPath + "_test"
	if p, ok := l.cache[xpath]; ok {
		return p, nil
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	if len(bp.XTestGoFiles) == 0 {
		return nil, nil
	}
	files, err := l.parseFiles(dir, bp.XTestGoFiles)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: &xtestImporter{l: l, base: importPath, baseDir: dir}}
	tpkg, err := conf.Check(xpath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", xpath, err)
	}
	pkg := &Package{Path: xpath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[xpath] = pkg
	return pkg, nil
}

// parseFiles parses the named files of one directory with comments.
func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// loaderImporter adapts the Loader into a types.Importer: module-local
// import paths are mapped to directories under Root and checked from
// source; everything else is treated as stdlib and resolved from export
// data.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		dir := l.Root
		if rel != "" {
			dir = filepath.Join(l.Root, filepath.FromSlash(rel))
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// xtestImporter resolves imports for an external test package: the package
// under test maps to its test-augmented variant, everything else goes
// through the normal (unaugmented) resolution.
type xtestImporter struct {
	l       *Loader
	base    string
	baseDir string
}

func (xi *xtestImporter) Import(path string) (*types.Package, error) {
	if path == xi.base {
		pkg, err := xi.l.loadMode(xi.base, xi.baseDir, true)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return (*loaderImporter)(xi.l).Import(path)
}
