package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a", "b").Inc()
	r.Gauge("a", "b").SetMax(7)
	r.Histogram("a", "b").Observe(3)
	done := r.Span("a", "b").Start()
	done()
	r.Time("a", "b", func() {})
	s := r.Snapshot()
	if len(s.Counters) != 0 || s.Schema != SchemaVersion {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCountersCommute(t *testing.T) {
	r := New()
	c := r.Counter("probe", "sent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestGaugeMax(t *testing.T) {
	r := New()
	g := r.Gauge("alias", "queue_depth")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.SetMax(uint64(w * 10))
		}()
	}
	wg.Wait()
	if g.Value() != 70 {
		t.Fatalf("gauge = %d, want 70", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("probe", "rtt_us")
	for _, v := range []uint64{0, 1, 2, 3, 700, 1 << 40} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["probe.rtt_us"]
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := uint64(0 + 1 + 2 + 3 + 700 + 1<<40)
	if s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	// Zero bucket present, overflow bucket catches the huge value.
	if s.Buckets[0].Le != 0 || s.Buckets[0].N != 1 {
		t.Fatalf("zero bucket wrong: %+v", s.Buckets)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != 6 {
		t.Fatalf("bucket total = %d, want 6", total)
	}
}

func TestSpanUsesInjectedClock(t *testing.T) {
	r := New()
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { return now })
	sp := r.Span("exp", "sweep")
	done := sp.Start()
	now = now.Add(250 * time.Millisecond)
	done()
	s := r.Snapshot().Spans["exp.sweep"]
	if s.Count != 1 || s.TotalNs != (250*time.Millisecond).Nanoseconds() {
		t.Fatalf("span snapshot = %+v", s)
	}
}

func TestSnapshotJSONStableAndSchemaTagged(t *testing.T) {
	r := New()
	r.Counter("netsim", "forwarded").Add(3)
	r.Counter("probe", "sent_udp").Add(2)
	r.Histogram("probe", "rtt_us").Observe(5)
	var a, b bytes.Buffer
	if err := r.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshot serialization unstable:\n%s\nvs\n%s", a.String(), b.String())
	}
	var decoded Snapshot
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if decoded.Schema != SchemaVersion {
		t.Fatalf("schema tag = %q", decoded.Schema)
	}
	if !reflect.DeepEqual(decoded.Counters, map[string]uint64{"netsim.forwarded": 3, "probe.sent_udp": 2}) {
		t.Fatalf("counters round-trip: %+v", decoded.Counters)
	}
}

func TestDeterministicSectionExcludesSpans(t *testing.T) {
	r := New()
	r.Counter("a", "b").Inc()
	r.Time("exp", "stage", func() { time.Sleep(time.Millisecond) })
	d := r.Snapshot().Deterministic()
	if len(d.Spans) != 0 {
		t.Fatalf("deterministic section leaked spans: %+v", d.Spans)
	}
	if d.Counters["a.b"] != 1 {
		t.Fatalf("counters missing: %+v", d.Counters)
	}
}

func TestSummaryGroupsByStage(t *testing.T) {
	r := New()
	r.Counter("netsim", "forwarded").Add(10)
	r.Counter("netsim", "drop.rate_limit").Add(2)
	r.Counter("probe", "sent_udp").Add(4)
	out := r.Snapshot().Summary()
	if !strings.Contains(out, "netsim") || !strings.Contains(out, "drop.rate_limit") ||
		!strings.Contains(out, "sent_udp") {
		t.Fatalf("summary missing rows:\n%s", out)
	}
}

func TestServePprof(t *testing.T) {
	addr, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServePprof: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
