// Package par provides the small concurrency primitives the measurement
// pipeline fans out with: a bounded index-space worker pool and a
// deterministic conflict-ordered scheduler.
//
// Both primitives are designed for *deterministic* parallelism: callers
// write results into pre-sized, index-addressed slices, so the output of a
// parallel run is byte-for-byte identical to a sequential one regardless of
// scheduling. ConflictOrdered additionally serializes tasks that touch the
// same shared state (e.g. a simulated router's IP-ID counter) in submission
// order, which keeps even order-dependent side effects reproducible.
//
// Both pools are cancellable: they stop claiming new tasks once ctx is
// done and return the cancellation cause. Cancellation never interrupts a
// task mid-flight — a task that started runs to completion — so the set of
// executed indices is always a clean prefix of the claimed schedule and
// every per-index result slot is either fully written or untouched. With a
// background (never-cancelled) context the schedule is exactly the
// pre-cancellation behavior, so the determinism contract is unaffected.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count knob: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines.
// With workers <= 1 it degenerates to a plain sequential loop (no goroutines
// spawned), so a Workers=1 run is exactly the sequential code path.
//
// Cancellation is checked before each index is claimed: once ctx is done no
// new fn call starts, in-flight calls finish, and ForEach returns the
// cancellation cause. It returns nil iff fn ran for every index.
//
// fn must confine its writes to per-index state (slot i of a pre-sized
// slice); ForEach establishes a happens-before edge between every fn call
// and ForEach's return.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			fn(i)
		}
		return nil
	}
	var next struct {
		sync.Mutex
		i int
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				next.Lock()
				i := next.i
				next.i++
				next.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	// Claimed indices always run, so the pool completed iff the claim
	// counter passed n. The counter only stalls short of n when every
	// worker observed cancellation.
	next.Lock()
	complete := next.i >= n
	next.Unlock()
	if !complete {
		return context.Cause(ctx)
	}
	return nil
}

// ConflictOrdered runs n tasks on at most workers goroutines under two
// guarantees that together make side-effectful tasks deterministic:
//
//  1. Tasks sharing a conflict key never run concurrently.
//  2. Tasks sharing a conflict key run in ascending index order.
//
// keysOf(i) lists the conflict keys task i touches (duplicates are fine).
// Tasks with disjoint key sets run in parallel; the schedule reduces to a
// sequential loop when every task shares a key. Because every per-key queue
// is ordered by task index, the task with the smallest unfinished index is
// always runnable and the schedule cannot deadlock.
//
// Like ForEach, cancellation stops workers from claiming further ready
// tasks (each worker selects on ctx.Done against the ready queue);
// in-flight tasks finish and ConflictOrdered returns the cancellation
// cause, or nil iff every task ran.
func ConflictOrdered(ctx context.Context, workers, n int, keysOf func(i int) []uint64, run func(i int)) error {
	if n <= 0 {
		return nil
	}
	keys := make([][]uint64, n)
	queues := make(map[uint64][]int)
	for i := 0; i < n; i++ {
		ks := keysOf(i)
		// Dedupe: a task appearing twice in one queue would wait on itself.
		uniq := ks[:0:0]
		for _, k := range ks {
			dup := false
			for _, u := range uniq {
				dup = dup || u == k
			}
			if !dup {
				uniq = append(uniq, k)
			}
		}
		keys[i] = uniq
		for _, k := range uniq {
			queues[k] = append(queues[k], i)
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			run(i)
		}
		return nil
	}

	var mu sync.Mutex
	head := make(map[uint64]int, len(queues))
	// ready is sized for every task, so enqueueReady sends never block and
	// a worker abandoning the queue on cancellation cannot wedge another.
	ready := make(chan int, n)
	pending := n

	// atHeads reports whether task i is at the head of all its key queues.
	// Caller holds mu.
	atHeads := func(i int) bool {
		for _, k := range keys[i] {
			if queues[k][head[k]] != i {
				return false
			}
		}
		return true
	}

	dispatched := make([]bool, n)
	enqueueReady := func(i int) {
		if !dispatched[i] && atHeads(i) {
			dispatched[i] = true
			ready <- i
		}
	}

	mu.Lock()
	for i := 0; i < n; i++ {
		if len(keys[i]) == 0 {
			// Keyless task: conflicts with nothing.
			dispatched[i] = true
			ready <- i
			continue
		}
		enqueueReady(i)
	}
	mu.Unlock()

	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case i, ok := <-ready:
					if !ok {
						return
					}
					run(i)
					mu.Lock()
					for _, k := range keys[i] {
						head[k]++
					}
					// Completing i can only unblock the new heads of i's queues.
					for _, k := range keys[i] {
						if head[k] < len(queues[k]) {
							enqueueReady(queues[k][head[k]])
						}
					}
					pending--
					if pending == 0 {
						close(ready)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	complete := pending == 0
	mu.Unlock()
	if !complete {
		return context.Cause(ctx)
	}
	return nil
}
