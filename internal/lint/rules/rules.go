// Package rules holds the repo-specific arestlint analyzers: machine
// checks for the determinism contract of DESIGN.md §7 (schedule-
// independent pipeline output) and §8 (nil-safe observability
// instruments). The framework they run on is internal/lint; the CLI is
// cmd/arestlint.
//
// The analyzers and the prose rule each one pins:
//
//	nowallclock   §7/§8 — determinism-contract packages never read the
//	              wall clock directly; timing flows through the
//	              injectable obs clock only.
//	noglobalrand  §7.1 — no randomness from the process-global
//	              math/rand source and no wall-clock seeding; every
//	              draw is hash-derived or seeded from config.
//	maporder      §7.2 — no map iteration order may reach output:
//	              ranges that append to slices or write to
//	              writers/hashes/encoders must sort.
//	nilsafe       §8 — every exported method on the obs instruments
//	              starts with a nil-receiver guard, so a nil registry
//	              stays a zero-cost no-op.
//	noerrdrop     §12 — the probe and alias measurement layers never
//	              discard an error return: a swallowed transport error
//	              silently becomes a wrong measurement.
//	foldcomplete  §13 — every field of an //arest:mergeable struct is
//	              folded by Merge and map fields are initialized on the
//	              zero/reset path.
//	hotpathalloc  §11 — no allocation-forcing constructs inside
//	              //arest:hotpath scopes outside cold error paths.
//	nolockcopy    §7 — no by-value copies of types containing sync.*
//	              or sync/atomic values.
//	atomicmix     §7 — a variable touched through sync/atomic is never
//	              also accessed plainly in the same package.
//	ctxplumb      §14 — exported Run*/Measure*/Detect* entry points in
//	              internal/exp take context.Context first, and worker
//	              claim loops in internal/par observe cancellation.
package rules

import "arest/internal/lint"

// ContractPackages are the determinism-contract packages (DESIGN.md §7):
// everything between world generation and detection verdicts, where
// parallel output must be bit-identical to sequential. nowallclock audits
// exactly these.
var ContractPackages = []string{
	"arest/internal/netsim",
	"arest/internal/probe",
	"arest/internal/alias",
	"arest/internal/fingerprint",
	"arest/internal/core",
	"arest/internal/exp",
	"arest/internal/archive",
}

// ObsPackage is the observability package whose instruments nilsafe
// audits.
const ObsPackage = "arest/internal/obs"

// ObsInstrumentTypes are the obs types whose exported methods must be
// nil-safe (DESIGN.md §8: "methods on a nil *Registry or nil instrument
// are no-ops").
var ObsInstrumentTypes = []string{"Registry", "Counter", "Gauge", "Histogram", "Span", "Watchdog", "Heartbeat"}

// CtxEntryPackages are the pipeline entry-point packages (DESIGN.md §14):
// their exported Run*/Measure*/Detect* functions are campaign lifecycle
// boundaries and must accept the caller's context.
var CtxEntryPackages = []string{"arest/internal/exp"}

// CtxPoolPackages are the worker-pool packages whose go-spawned claim
// loops must observe cancellation.
var CtxPoolPackages = []string{"arest/internal/par"}

// All returns the production analyzer set, configured for this module —
// what cmd/arestlint runs.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		NoWallClock(ContractPackages),
		NoGlobalRand(),
		MapOrder(),
		NilSafe(ObsPackage, ObsInstrumentTypes),
		NoErrDrop(ErrAuditPackages),
		FoldComplete(),
		HotPathAlloc(),
		NoLockCopy(),
		AtomicMix(),
		CtxPlumb(CtxEntryPackages, CtxPoolPackages),
	}
}
