package netsim

import (
	"net/netip"
	"testing"

	"arest/internal/mpls"
	"arest/internal/pkt"
)

// resilienceNet builds a square with a shortcut:
//
//	gw - s - a - d - target
//	         |   |
//	         b --+      (a-b and b-d form the protection path)
func resilienceNet(t *testing.T) (*Network, netip.Addr, netip.Addr, *Router, *Router, *Router, *Router) {
	t.Helper()
	n := New(77)
	prof := DefaultProfile(mpls.VendorCisco)
	gw := n.AddRouter(RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: DefaultProfile(mpls.VendorLinux), Mode: ModeIP})
	mk := func(name string) *Router {
		return n.AddRouter(RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: ModeSR})
	}
	s, ra, rb, d := mk("s"), mk("a"), mk("b"), mk("d")
	n.Connect(gw.ID, s.ID, 10)
	n.Connect(s.ID, ra.ID, 10)
	n.Connect(ra.ID, d.ID, 10)
	n.Connect(ra.ID, rb.ID, 10)
	n.Connect(rb.ID, d.ID, 10)
	vp := a("172.16.0.10")
	tgt := a("100.1.0.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, d.ID)
	n.Compute()
	return n, vp, tgt, s, ra, rb, d
}

func pathOfProbe(t *testing.T, n *Network, vp, tgt netip.Addr) []RouterID {
	t.Helper()
	del, err := n.Send(vp, udpProbe(vp, tgt, 32, 33434))
	if err != nil {
		t.Fatal(err)
	}
	return del.Path
}

func TestLinkFailureReconvergence(t *testing.T) {
	n, vp, tgt, _, ra, rb, d := resilienceNet(t)
	// Before the failure the path goes ...a -> d directly.
	before := pathOfProbe(t, n, vp, tgt)
	if before[len(before)-1] != d.ID || !containsID(before, ra.ID) || containsID(before, rb.ID) {
		t.Fatalf("pre-failure path = %v", before)
	}
	// Fail a-d; after reconvergence the path detours via b.
	n.SetLinkState(ra.ID, d.ID, false)
	n.Compute()
	after := pathOfProbe(t, n, vp, tgt)
	if !containsID(after, rb.ID) {
		t.Fatalf("post-failure path = %v does not detour via b", after)
	}
	if len(after) != len(before)+1 {
		t.Errorf("detour length = %d, want %d", len(after), len(before)+1)
	}
	// Bring it back: the original path returns.
	n.SetLinkState(ra.ID, d.ID, true)
	n.Compute()
	restored := pathOfProbe(t, n, vp, tgt)
	if containsID(restored, rb.ID) {
		t.Errorf("restored path still detours: %v", restored)
	}
}

func TestAdjacencySIDOverDeadLinkDrops(t *testing.T) {
	n, vp, tgt, _, ra, _, d := resilienceNet(t)
	// Policy pins the a->d adjacency.
	n.SRPolicy = func(ing *Router, egress RouterID, dst netip.Addr, flow uint64) SegmentList {
		return SegmentList{{Node: ra.ID}, {From: ra.ID, To: d.ID, Adj: true}, {Node: d.ID}}
	}
	n.Compute()
	del, err := n.Send(vp, udpProbe(vp, tgt, 32, 33434))
	if err != nil {
		t.Fatal(err)
	}
	if del.Reply == nil {
		t.Fatal("pinned path failed before the failure")
	}
	// Fail the pinned link but do NOT reconverge the policy: the adjacency
	// segment now points at a dead link and the packet is dropped — the
	// window fast-reroute exists to close.
	n.SetLinkState(ra.ID, d.ID, false)
	n.Compute()
	del, err = n.Send(vp, udpProbe(vp, tgt, 32, 33434))
	if err != nil {
		t.Fatal(err)
	}
	if del.Reply != nil {
		rip, _ := pkt.UnmarshalIPv4(del.Reply)
		t.Fatalf("stale adjacency segment still delivered (reply from %v)", rip.Src)
	}
}

func TestProtectionPolicyRestoresDelivery(t *testing.T) {
	n, vp, tgt, _, ra, rb, d := resilienceNet(t)
	n.SetLinkState(ra.ID, d.ID, false)
	// Protection: reach d via b explicitly (node segment through b).
	n.SRPolicy = func(ing *Router, egress RouterID, dst netip.Addr, flow uint64) SegmentList {
		return SegmentList{{Node: rb.ID}, {Node: d.ID}}
	}
	n.Compute()
	del, err := n.Send(vp, udpProbe(vp, tgt, 32, 33434))
	if err != nil {
		t.Fatal(err)
	}
	if del.Reply == nil {
		t.Fatal("protection policy did not restore delivery")
	}
	if !containsID(del.Path, rb.ID) {
		t.Errorf("protected path %v does not use b", del.Path)
	}
}

func containsID(ids []RouterID, id RouterID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
