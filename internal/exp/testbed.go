package exp

import (
	"context"
	"fmt"
	"net/netip"

	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

// TestbedScenario is one controlled-environment validation case: a small
// hand-built network whose ground truth makes exactly one flag the expected
// dominant outcome — the lab validation the paper's reproducibility section
// alludes to ("code developed to test AReST on a controlled environment").
type TestbedScenario struct {
	Name     string
	Expected core.Flag
	// Build constructs the network and returns the vantage point and
	// target to trace.
	Build func() (*netsim.Network, netip.Addr, netip.Addr)
}

// testbedChain wires gw + n MPLS routers + target host and returns the
// pieces; cfg customizes the MPLS routers.
func testbedChain(nRouters int, cfg netsim.RouterConfig, tweak func(n *netsim.Network, rs []*netsim.Router)) (*netsim.Network, netip.Addr, netip.Addr) {
	n := netsim.New(8)
	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 64999,
		Vendor: mpls.VendorLinux, Profile: netsim.DefaultProfile(mpls.VendorLinux)})
	var rs []*netsim.Router
	prev := gw
	for i := 0; i < nRouters; i++ {
		c := cfg
		c.Name = fmt.Sprintf("r%d", i)
		r := n.AddRouter(c)
		n.Connect(prev.ID, r.ID, 10)
		rs = append(rs, r)
		prev = r
	}
	vp := netip.MustParseAddr("172.16.6.10")
	tgt := netip.MustParseAddr("100.66.0.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, prev.ID)
	if tweak != nil {
		tweak(n, rs)
	}
	n.Compute()
	return n, vp, tgt
}

// TestbedScenarios returns the five canonical cases of Fig. 6.
func TestbedScenarios() []TestbedScenario {
	ciscoSR := func(snmp bool) netsim.RouterConfig {
		prof := netsim.DefaultProfile(mpls.VendorCisco)
		prof.SNMPOpen = snmp
		return netsim.RouterConfig{ASN: 65100, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: netsim.ModeSR}
	}
	return []TestbedScenario{
		{
			Name:     "CVR: explicit SR tunnel, fingerprinted Cisco",
			Expected: core.FlagCVR,
			Build: func() (*netsim.Network, netip.Addr, netip.Addr) {
				return testbedChain(5, ciscoSR(true), nil)
			},
		},
		{
			Name:     "CO: explicit SR tunnel, fingerprint-blind",
			Expected: core.FlagCO,
			Build: func() (*netsim.Network, netip.Addr, netip.Addr) {
				cfg := ciscoSR(false)
				cfg.Profile.RespondsEcho = false
				return testbedChain(5, cfg, nil)
			},
		},
		{
			Name:     "LSVR: opaque SR tunnel with service SID, fingerprinted",
			Expected: core.FlagLSVR,
			Build: func() (*netsim.Network, netip.Addr, netip.Addr) {
				cfg := ciscoSR(true)
				cfg.Profile.TTLPropagate = false // opaque: only the LH shows its stack
				return testbedChain(5, cfg, func(n *netsim.Network, rs []*netsim.Router) {
					egress := rs[len(rs)-1]
					svc := n.AllocateServiceSID(egress, "testbed")
					id := egress.ID
					n.SRPolicy = func(ing *netsim.Router, e netsim.RouterID, dst netip.Addr, flow uint64) netsim.SegmentList {
						if e == id {
							return netsim.SegmentList{{Node: id}, {Service: true, ServiceLabel: svc}}
						}
						return nil
					}
				})
			},
		},
		{
			Name:     "LVR: opaque SR tunnel, single LSE, fingerprinted",
			Expected: core.FlagLVR,
			Build: func() (*netsim.Network, netip.Addr, netip.Addr) {
				cfg := ciscoSR(true)
				cfg.Profile.TTLPropagate = false
				return testbedChain(5, cfg, nil)
			},
		},
		{
			Name:     "LSO: classic MPLS with VPN stacks, fingerprint-blind",
			Expected: core.FlagLSO,
			Build: func() (*netsim.Network, netip.Addr, netip.Addr) {
				prof := netsim.DefaultProfile(mpls.VendorCisco)
				prof.RespondsEcho = false
				cfg := netsim.RouterConfig{ASN: 65100, Vendor: mpls.VendorCisco,
					Profile: prof, LDPEnabled: true, Mode: netsim.ModeLDP}
				return testbedChain(5, cfg, func(n *netsim.Network, rs []*netsim.Router) {
					egress := rs[len(rs)-1]
					vpn := n.AllocateServiceSID(egress, "vpn")
					id := egress.ID
					n.LDPStackPolicy = func(ing *netsim.Router, e netsim.RouterID, dst netip.Addr) (uint32, bool) {
						if e == id {
							return vpn, true
						}
						return 0, false
					}
				})
			},
		},
	}
}

// TestbedOutcome is the result of running one scenario through the full
// pipeline.
type TestbedOutcome struct {
	Scenario TestbedScenario
	Dominant core.Flag
	Counts   map[core.Flag]int
	Pass     bool
}

// RunTestbed executes every scenario: trace, fingerprint, analyze, and
// compare the dominant flag against the expectation.
func RunTestbed(ctx context.Context) ([]TestbedOutcome, error) {
	var out []TestbedOutcome
	for _, sc := range TestbedScenarios() {
		n, vp, tgt := sc.Build()
		tc := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
		tr, err := tc.Trace(ctx, tgt, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		ttl, err := fingerprint.CollectTTL(ctx, []*probe.Trace{tr}, tc, 1, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		ann := fingerprint.NewAnnotator(fingerprint.SNMPDataset(n), ttl)
		res := core.NewDetector().Analyze(core.BuildPath(tr, ann, nil))
		counts := map[core.Flag]int{}
		for _, s := range res.Segments {
			counts[s.Flag]++
		}
		dominant := core.FlagNone
		best := 0
		for _, f := range core.AllFlags {
			if counts[f] > best {
				best = counts[f]
				dominant = f
			}
		}
		out = append(out, TestbedOutcome{
			Scenario: sc,
			Dominant: dominant,
			Counts:   counts,
			Pass:     dominant == sc.Expected,
		})
	}
	return out, nil
}

func runTestbed(ctx context.Context, _ *Campaign) string {
	outcomes, err := RunTestbed(ctx)
	if err != nil {
		return "testbed failed: " + err.Error() + "\n"
	}
	t := eval.Table{Title: "Controlled testbed — one scenario per flag",
		Headers: []string{"Scenario", "Expected", "Dominant", "Pass"}}
	for _, o := range outcomes {
		t.AddRow(o.Scenario.Name, o.Scenario.Expected.String(), o.Dominant.String(), o.Pass)
	}
	return t.Render()
}
