// Command experiments regenerates the paper's tables and figures by
// running the full campaign pipeline over the Table 5 catalogue (or a
// subset) and rendering each experiment's output.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig8,table3 -vps 6
//	experiments                       # everything, full analyzed catalogue
//
// Shutdown: the first SIGINT/SIGTERM cancels the campaign — in-flight ASes
// drain, complete shards stay on disk — and the process exits with status
// 3 (resumable: re-running the same -snapshot command completes the run).
// A second signal aborts immediately. -deadline bounds the whole run the
// same way; -as-budget is the deterministic per-AS trace budget and
// -stall-timeout arms the wall-clock stall watchdog.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"arest/internal/asgen"
	"arest/internal/exp"
	"arest/internal/lifecycle"
	"arest/internal/obs"
)

func main() {
	sigs, stopNotify := lifecycle.Notify()
	defer stopNotify()
	hard := func() {
		fmt.Fprintln(os.Stderr, "experiments: second signal: aborting immediately")
		os.Exit(lifecycle.ExitFailure)
	}
	os.Exit(run(os.Args[1:], sigs, hard, os.Stdout, os.Stderr))
}

// run is the testable body of the command: argv excludes the program name,
// sigs feeds the two-phase shutdown (tests send plain values instead of
// real signals), hard is the second-signal abort hook, and the exit status
// is returned instead of os.Exit'd.
func run(argv []string, sigs <-chan os.Signal, hard func(), stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments and exit")
	expIDs := fs.String("exp", "", "comma-separated experiment ids (default: all)")
	asIDs := fs.String("as", "", "comma-separated AS identifiers (default: all analyzed)")
	vps := fs.Int("vps", 16, "vantage points per AS")
	targets := fs.Int("targets", 32, "max targets per AS")
	maxRouters := fs.Int("max-routers", 60, "per-AS topology cap")
	seed := fs.Int64("seed", 20250405, "campaign seed")
	workers := fs.Int("workers", 0, "worker pool size for every pipeline stage (0 = GOMAXPROCS, 1 = sequential)")
	analyzeWorkers := fs.Int("analyze-workers", 0, "worker pool size for the per-shard analysis fold (0 = same as -workers); lets a replay analyze many shards concurrently with a few workers each")
	outDir := fs.String("o", "", "write each experiment to <dir>/<id>.txt instead of stdout")
	snapshotDir := fs.String("snapshot", "", "snapshot/resume mode: persist per-AS archive shards under <dir> and skip ASes whose shard is already complete")
	maxASFailures := fs.Int("max-as-failures", 0, "tolerate up to this many failed ASes before exiting non-zero (-1 = unlimited); failed ASes are always reported and excluded from analysis")
	maxTraceFailures := fs.Int("max-trace-failures", 0, "per-AS budget of traces that may fail with a probe error before the AS is quarantined (-1 = unlimited)")
	deadline := fs.Duration("deadline", 0, "wall-clock budget for the whole run; on expiry the campaign drains like a first signal and exits with status 3 (resumable)")
	asBudget := fs.Int("as-budget", 0, "deterministic per-AS trace budget: an AS whose plan demands more traces is quarantined before probing, live and on replay (0 = unlimited)")
	stallTimeout := fs.Duration("stall-timeout", 0, "wall-clock watchdog: cancel and quarantine an AS that makes no progress for this long (0 = off)")
	metricsOut := fs.String("metrics", "", "export campaign metrics to <file> (.json = JSON, else summary table, - = stdout)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(argv); err != nil {
		return lifecycle.ExitFailure
	}
	errorf := func(format string, args ...interface{}) int {
		fmt.Fprintf(stderr, "experiments: "+format+"\n", args...)
		return lifecycle.ExitFailure
	}

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return errorf("pprof: %v", err)
		}
		fmt.Fprintf(stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, e := range exp.All {
			fmt.Fprintf(stdout, "%-9s %s\n          paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return lifecycle.ExitOK
	}

	var selected []exp.Experiment
	if *expIDs == "" {
		selected = exp.All
	} else {
		for _, id := range strings.Split(*expIDs, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				return errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	records := asgen.Analyzed()
	if *asIDs != "" {
		records = nil
		for _, s := range strings.Split(*asIDs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return errorf("bad AS id %q", s)
			}
			rec, ok := asgen.ByID(id)
			if !ok {
				return errorf("unknown AS id %d", id)
			}
			records = append(records, rec)
		}
	}

	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumVPs = *vps
	cfg.MaxTargets = *targets
	cfg.MaxRouters = *maxRouters
	cfg.Workers = *workers
	cfg.AnalyzeWorkers = *analyzeWorkers
	cfg.MaxTraceFailures = *maxTraceFailures
	cfg.MaxASTraces = *asBudget
	cfg.StallTimeout = *stallTimeout
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
		cfg.Metrics = reg
	}

	parent := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		parent, cancel = context.WithTimeout(parent, *deadline)
		defer cancel()
	}
	ctx, stopSig := lifecycle.Context(parent, sigs, hard)
	defer stopSig()

	fmt.Fprintf(stderr, "running campaign over %d ASes (%d VPs, <=%d targets each)...\n",
		len(records), cfg.NumVPs, cfg.MaxTargets)
	start := time.Now()
	var c *exp.Campaign
	var err error
	if *snapshotDir != "" {
		var statuses []exp.ShardStatus
		c, statuses, err = exp.RunSharded(ctx, records, cfg, *snapshotDir)
		if statuses != nil {
			resumed, interrupted := 0, 0
			for _, s := range statuses {
				switch s {
				case exp.ShardResumed:
					resumed++
				case exp.ShardInterrupted:
					interrupted++
				}
			}
			fmt.Fprintf(stderr, "snapshot %s: %d/%d ASes resumed from shards, %d measured, %d interrupted\n",
				*snapshotDir, resumed, len(statuses), len(statuses)-resumed-interrupted, interrupted)
		}
	} else {
		c, err = exp.Run(ctx, records, cfg)
	}
	if err != nil {
		if lifecycle.Interrupted(err) {
			fmt.Fprintf(stderr, "experiments: interrupted: %v\n", err)
			if *snapshotDir != "" {
				fmt.Fprintf(stderr, "experiments: complete shards kept under %s; re-run the same command to resume\n", *snapshotDir)
			}
			exportMetrics(reg, *metricsOut, stderr)
			return lifecycle.ExitInterrupted
		}
		return errorf("campaign: %v", err)
	}
	for _, f := range c.Failed {
		fmt.Fprintf(stderr, "failed: %s\n", f)
	}
	total := 0
	for _, r := range c.ASes {
		total += r.TracesSent
	}
	fmt.Fprintf(stderr, "campaign done: %d ASes, %d traces in %v\n\n",
		len(c.ASes), total, time.Since(start).Round(time.Millisecond))
	if code := exportMetrics(reg, *metricsOut, stderr); code != lifecycle.ExitOK {
		return code
	}

	for _, e := range selected {
		body := fmt.Sprintf("=== %s — %s ===\npaper: %s\n\n%s\n", e.ID, e.Title, e.Paper, e.Run(ctx, c))
		if *outDir == "" {
			fmt.Fprint(stdout, body)
			continue
		}
		path := filepath.Join(*outDir, e.ID+".txt")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return errorf("write %s: %v", path, err)
		}
		fmt.Fprintf(stderr, "wrote %s\n", path)
	}

	// The failure policy decides the exit code only after every surviving
	// AS's output (and the metrics export) has been rendered: a partially
	// failed campaign still delivers everything it measured.
	if n := len(c.Failed); *maxASFailures >= 0 && n > *maxASFailures {
		return errorf("%d AS(es) failed, budget %d (-max-as-failures)", n, *maxASFailures)
	}
	return lifecycle.ExitOK
}

// exportMetrics writes the registry snapshot (also on the interrupted
// path, so a cancelled run still accounts for what it did).
func exportMetrics(reg *obs.Registry, out string, stderr io.Writer) int {
	if reg == nil {
		return lifecycle.ExitOK
	}
	snap := reg.Snapshot()
	if err := snap.ExportFile(out); err != nil {
		fmt.Fprintf(stderr, "experiments: metrics: %v\n", err)
		return lifecycle.ExitFailure
	}
	if out != "-" {
		fmt.Fprint(stderr, snap.Summary())
	}
	return lifecycle.ExitOK
}
