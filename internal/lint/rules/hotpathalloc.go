package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"arest/internal/lint"
)

// HotPathAlloc builds the hotpathalloc analyzer: code inside an
// //arest:hotpath scope is the zero-allocation wire path (DESIGN.md §11 —
// the PR 6 AppendMarshal/UnmarshalInto codecs and the pooled Send/Trace
// scratch), and its AllocsPerRun budgets must hold by construction, not
// only under the benchmark gates. Inside a hot function the analyzer
// forbids the constructs that force the compiler to allocate:
//
//   - fmt.* calls (formatting boxes every operand);
//   - non-constant string concatenation (+ / +=);
//   - explicit boxing into an interface: conversions like any(x) and var
//     declarations with an explicit interface type and a concrete
//     initializer;
//   - map and slice composite literals;
//   - function literals capturing enclosing variables (closure header
//     escapes to the heap).
//
// Cold control flow is exempt so error handling stays idiomatic: any
// return statement whose result includes an error-typed expression, and
// the arguments of panic calls, may allocate — those paths execute once
// per failure, not per packet. Whole functions opt out with
// //arest:coldpath <reason> (String() debug formatters, construction-time
// helpers). Only function bodies are checked: package-level initializers
// (pools, tables) run once at startup. _test.go files are always exempt:
// under -tests a file/package hotpath scope would otherwise sweep in test
// code, which exercises the wire path without being on it.
func HotPathAlloc() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "hotpathalloc",
		Doc:  "forbid allocation-forcing constructs inside //arest:hotpath scopes",
		Run:  runHotPathAlloc,
	}
}

func runHotPathAlloc(pass *lint.Pass) error {
	hot, _ := lint.CollectHotPaths(pass.Fset, pass.Files) // malformed directives reported by the Runner
	if !hot.Package && len(hot.Files) == 0 && len(hot.Funcs) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") {
			continue // tests drive the hot path; they do not run on it
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hot.Hot(fd, file) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// checkHotBody walks one hot function body, pruning cold subtrees.
func checkHotBody(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if returnsError(pass, n) {
				return false // failure path: allocation is once-per-error
			}
		case *ast.CallExpr:
			if isBuiltinNamed(pass, n, "panic") {
				return false // unreachable-by-contract: message may allocate
			}
			checkHotCall(pass, n)
		case *ast.BinaryExpr:
			checkHotConcat(pass, n)
		case *ast.AssignStmt:
			checkHotConcatAssign(pass, n)
		case *ast.CompositeLit:
			checkHotComposite(pass, n)
		case *ast.GenDecl:
			checkHotVarDecl(pass, n)
		case *ast.FuncLit:
			checkHotFuncLit(pass, fd, n)
			return false // the literal's own body runs off the hot path's frame
		}
		return true
	})
}

// returnsError reports whether any result expression of the return is
// error-typed (the cold-failure-path signature).
func returnsError(pass *lint.Pass, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		tv, ok := pass.Info.Types[res]
		if !ok || tv.Type == nil {
			continue
		}
		if types.Implements(tv.Type, errorInterface) {
			return true
		}
	}
	return false
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isBuiltinNamed reports whether call invokes the named builtin.
func isBuiltinNamed(pass *lint.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// checkHotCall flags fmt.* calls and explicit conversions into interface
// types.
func checkHotCall(pass *lint.Pass, call *ast.CallExpr) {
	if pkg, name, ok := pass.CalleeIn(call); ok && pkg == "fmt" {
		pass.Report(call.Pos(),
			"fmt.%s on the hot path boxes its operands and allocates (DESIGN.md §11); format off the wire path or mark the function //arest:coldpath", name)
		return
	}
	// Explicit conversion T(x): Fun is a type expression.
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	if !types.IsInterface(tv.Type) {
		return
	}
	argT := pass.Info.Types[call.Args[0]].Type
	if argT == nil || types.IsInterface(argT) {
		return // interface-to-interface: no new box
	}
	pass.Report(call.Pos(),
		"conversion to %s on the hot path boxes a concrete value onto the heap (DESIGN.md §11)", tv.Type.String())
}

// checkHotConcat flags non-constant string concatenation expressions.
func checkHotConcat(pass *lint.Pass, be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv, ok := pass.Info.Types[be]
	if !ok || tv.Type == nil || tv.Value != nil {
		return // not typed, or folded to a constant at compile time
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		pass.Report(be.Pos(),
			"string concatenation on the hot path allocates (DESIGN.md §11); use an append codec or a pooled buffer")
	}
}

// checkHotConcatAssign flags s += t on strings.
func checkHotConcatAssign(pass *lint.Pass, as *ast.AssignStmt) {
	if as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 {
		return
	}
	tv, ok := pass.Info.Types[as.Lhs[0]]
	if !ok || tv.Type == nil {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		pass.Report(as.Pos(),
			"string += on the hot path allocates a new backing array every call (DESIGN.md §11)")
	}
}

// checkHotComposite flags map and slice composite literals; struct and
// array literals stay legal (stack-allocatable).
func checkHotComposite(pass *lint.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Report(cl.Pos(),
			"map literal on the hot path allocates (DESIGN.md §11); hoist it to a package-level table or pooled scratch")
	case *types.Slice:
		pass.Report(cl.Pos(),
			"slice literal on the hot path allocates its backing array (DESIGN.md §11); reuse pooled scratch")
	}
}

// checkHotVarDecl flags `var x I = concrete` declarations whose explicit
// interface type boxes a concrete initializer.
func checkHotVarDecl(pass *lint.Pass, gd *ast.GenDecl) {
	if gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || vs.Type == nil || len(vs.Values) == 0 {
			continue
		}
		tv, ok := pass.Info.Types[vs.Type]
		if !ok || tv.Type == nil || !types.IsInterface(tv.Type) {
			continue
		}
		for _, v := range vs.Values {
			vt := pass.Info.Types[v].Type
			if vt == nil || types.IsInterface(vt) {
				continue
			}
			if b, ok := vt.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
				continue
			}
			pass.Report(vs.Pos(),
				"var with interface type %s boxes a concrete value on the hot path (DESIGN.md §11)", tv.Type.String())
			break
		}
	}
}

// checkHotFuncLit flags function literals that capture variables of the
// enclosing function: the capture forces a heap-allocated closure header
// (and escapes the captured locals).
func checkHotFuncLit(pass *lint.Pass, fd *ast.FuncDecl, fl *ast.FuncLit) {
	captured := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared in the enclosing function but outside the
		// literal itself.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < fl.Pos() || v.Pos() > fl.End()) {
			captured = v.Name()
			return false
		}
		return true
	})
	if captured != "" {
		pass.Report(fl.Pos(),
			"closure capturing %q on the hot path heap-allocates its environment (DESIGN.md §11); pass state explicitly or hoist the function", captured)
	}
}
