package exp

import (
	"net/netip"
	"reflect"
	"testing"

	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/probe"
)

// The fixture below is small enough to fold by hand: two traces, six
// interfaces, three segments. Every expected value in these tests is
// computed on paper from the fixture, so they pin the aggregate queries to
// the paper's definitions independently of the detector and the simulator.
//
// Topology (a1..a6, ground-truth SR routers: a1, a2, a5):
//
//	trace 1 (VP 0): a1[16005] -> a2[16005,1000] -> a3[30005] -> a4
//	    segments: CO over hops 0-1 (suffix-matched), LSO at hop 2
//	trace 2 (VP 1): a2 -> a5[17005] -> a6[900001](terminal)
//	    segments: none — a5 is a labeled SR transit the detector missed
var (
	aggA1 = netip.MustParseAddr("10.9.0.1")
	aggA2 = netip.MustParseAddr("10.9.0.2")
	aggA3 = netip.MustParseAddr("10.9.0.3")
	aggA4 = netip.MustParseAddr("10.9.0.4")
	aggA5 = netip.MustParseAddr("10.9.0.5")
	aggA6 = netip.MustParseAddr("10.9.0.6")
)

func aggSRSet() map[netip.Addr]bool {
	return map[netip.Addr]bool{aggA1: true, aggA2: true, aggA5: true}
}

func rawTrace(vp byte, addrs ...netip.Addr) *probe.Trace {
	tr := &probe.Trace{
		VP:  netip.AddrFrom4([4]byte{192, 0, 2, vp}),
		Dst: addrs[len(addrs)-1],
	}
	for i, a := range addrs {
		tr.Hops = append(tr.Hops, probe.Hop{TTL: i + 1, Addr: a})
	}
	return tr
}

func fixtureTrace1() (*probe.Trace, *core.Result) {
	tr := rawTrace(1, aggA1, aggA2, aggA3, aggA4)
	res := &core.Result{
		Path: &core.Path{
			VP:  tr.VP,
			Dst: tr.Dst,
			Hops: []core.Hop{
				{Addr: aggA1, Stack: mpls.Stack{{Label: 16005, S: true}},
					Vendor: mpls.VendorCisco, Source: fingerprint.SourceSNMP},
				{Addr: aggA2, Stack: mpls.Stack{{Label: 16005}, {Label: 1000, S: true}}},
				{Addr: aggA3, Stack: mpls.Stack{{Label: 30005, S: true}}},
				{Addr: aggA4},
			},
		},
		Segments: []core.Segment{
			{Start: 0, End: 1, Flag: core.FlagCO, Label: 16005, SuffixMatch: true},
			{Start: 2, End: 2, Flag: core.FlagLSO, Label: 30005},
		},
		Areas: []core.Area{core.AreaSR, core.AreaSR, core.AreaMPLS, core.AreaIP},
	}
	return tr, res
}

func fixtureTrace2() (*probe.Trace, *core.Result) {
	tr := rawTrace(2, aggA2, aggA5, aggA6)
	res := &core.Result{
		Path: &core.Path{
			VP:  tr.VP,
			Dst: tr.Dst,
			Hops: []core.Hop{
				{Addr: aggA2},
				{Addr: aggA5, Stack: mpls.Stack{{Label: 17005, S: true}}},
				{Addr: aggA6, Stack: mpls.Stack{{Label: 900001, S: true}}, Terminal: true},
			},
		},
		Areas: []core.Area{core.AreaIP, core.AreaMPLS, core.AreaMPLS},
	}
	return tr, res
}

// fixtureResult folds the two fixture traces into a queryable ASResult.
func fixtureResult() *ASResult {
	agg := NewAgg()
	agg.NumVPs = 2
	sr := aggSRSet()
	t1, r1 := fixtureTrace1()
	t2, r2 := fixtureTrace2()
	agg.addTrace(0, t1, r1, sr)
	agg.addTrace(1, t2, r2, sr)
	return &ASResult{Agg: agg, SREnabled: sr}
}

func TestAggFixtureFlagShares(t *testing.T) {
	r := fixtureResult()
	counts := r.FlagCounts()
	want := map[core.Flag]int{core.FlagCO: 1, core.FlagLSO: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("FlagCounts = %v, want %v", counts, want)
	}
	shares := r.FlagShares()
	if shares[core.FlagCO] != 0.5 || shares[core.FlagLSO] != 0.5 {
		t.Errorf("FlagShares = %v, want 0.5/0.5", shares)
	}
	if !r.HasStrongSR() {
		t.Error("HasStrongSR = false with a CO segment present")
	}
}

func TestAggFixtureCloudSizes(t *testing.T) {
	r := fixtureResult()
	// Trace 1's tunnel spans hops 0-2; the CO flag covers hops 0-1 (an SR
	// cloud of 2) and the LSO hop stays LDP (a cloud of 1): sr-ldp
	// interworking. Trace 2's only non-terminal labeled hop is a lone LDP
	// cloud — full-ldp, not interworking, so it adds no cloud sizes.
	ldp, sr := r.CloudSizes()
	if !reflect.DeepEqual(ldp, []int{1}) || !reflect.DeepEqual(sr, []int{2}) {
		t.Errorf("CloudSizes = ldp %v, sr %v; want ldp [1], sr [2]", ldp, sr)
	}
	patterns := r.TunnelPatterns()
	want := map[core.Pattern]int{core.PatternSRLDP: 1, core.PatternFullLDP: 1}
	if !reflect.DeepEqual(patterns, want) {
		t.Errorf("TunnelPatterns = %v, want %v", patterns, want)
	}
}

func TestAggFixtureStackDepthDist(t *testing.T) {
	r := fixtureResult()
	// Strong hops: a1 (depth 1) and a2 (depth 2) under the CO flag.
	strong := r.StackDepthDist(true)
	if want := map[int]int{1: 1, 2: 1}; !reflect.DeepEqual(strong, want) {
		t.Errorf("StackDepthDist(strong) = %v, want %v", strong, want)
	}
	// Other labeled hops: the LSO hop a3, transit a5, terminal a6 — all
	// single-label.
	other := r.StackDepthDist(false)
	if want := map[int]int{1: 3}; !reflect.DeepEqual(other, want) {
		t.Errorf("StackDepthDist(other) = %v, want %v", other, want)
	}
}

func TestAggFixtureLabelRangeHist(t *testing.T) {
	r := fixtureResult()
	want := map[string]int{
		"0-15999":        1, // a2's bottom-of-stack 1000
		"16000-23999":    3, // 16005 twice, 17005 once
		"24000-47999":    1, // 30005
		"900000-1048575": 1, // 900001 (terminal hops still expose labels)
	}
	if got := r.LabelRangeHist(); !reflect.DeepEqual(got, want) {
		t.Errorf("LabelRangeHist = %v, want %v", got, want)
	}
}

func TestAggFixtureVPAccumulation(t *testing.T) {
	r := fixtureResult()
	// VP 0 first observes a1..a4 (4 responders); VP 1 adds a5 and a6 —
	// a2 repeats and must not count twice.
	if got := r.VPAccumulation(); !reflect.DeepEqual(got, []int{4, 6}) {
		t.Errorf("VPAccumulation = %v, want [4 6]", got)
	}
	if got := r.DistinctIPs(); got != 6 {
		t.Errorf("DistinctIPs = %d, want 6", got)
	}
	counts := r.AreaInterfaceCounts()
	// a2 is SR in trace 1 and IP in trace 2: the max wins.
	want := map[core.Area]int{core.AreaSR: 2, core.AreaMPLS: 3, core.AreaIP: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("AreaInterfaceCounts = %v, want %v", counts, want)
	}
}

func TestAggFixtureGroundTruth(t *testing.T) {
	r := fixtureResult()
	got := r.GroundTruth()
	want := map[core.Flag]eval.Confusion{
		// The CO segment covers a1 and a2, both ground-truth SR: a TP. The
		// missed labeled SR transit a5 is the CO row's FN. a6 is labeled
		// but terminal, and a3 is labeled but not SR: neither is an FN.
		core.FlagCO: {TP: 1, FN: 1},
		// The LSO segment covers only a3, which is not SR-enabled: an FP.
		core.FlagLSO: {FP: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroundTruth = %+v, want %+v", got, want)
	}
}

func TestAggFixtureHeadlineTallies(t *testing.T) {
	r := fixtureResult()
	a := r.Agg
	if a.SeqSuffix != 1 {
		t.Errorf("SeqSuffix = %d, want 1 (the CO segment suffix-matched)", a.SeqSuffix)
	}
	if want := map[uint32]bool{16005: true}; !reflect.DeepEqual(a.SeqLabels, want) {
		t.Errorf("SeqLabels = %v, want %v", a.SeqLabels, want)
	}
	if a.StrongHops != 2 || a.StrongHopsFP != 1 {
		t.Errorf("StrongHops/FP = %d/%d, want 2/1 (only a1 is fingerprinted)", a.StrongHops, a.StrongHopsFP)
	}
	if a.PathsInAS != 2 || a.Traces != 2 {
		t.Errorf("Traces/PathsInAS = %d/%d, want 2/2", a.Traces, a.PathsInAS)
	}
	if got := r.VendorCounts(); !reflect.DeepEqual(got, map[mpls.Vendor]int{mpls.VendorCisco: 1}) {
		t.Errorf("VendorCounts = %v, want cisco:1", got)
	}
	shares := r.AreaTraceShares()
	// Trace 1 touches SR, MPLS and IP; trace 2 touches MPLS and IP.
	want := map[core.Area]float64{core.AreaSR: 0.5, core.AreaMPLS: 1, core.AreaIP: 1}
	if !reflect.DeepEqual(shares, want) {
		t.Errorf("AreaTraceShares = %v, want %v", shares, want)
	}
}

// TestAggFixtureMerge folds the two fixture traces into separate
// accumulators and checks that merging reproduces the sequential fold —
// the hand-checkable instance of the merge law.
func TestAggFixtureMerge(t *testing.T) {
	sr := aggSRSet()
	whole := fixtureResult().Agg

	t1, r1 := fixtureTrace1()
	t2, r2 := fixtureTrace2()
	a := NewAgg()
	a.NumVPs = 2
	a.addTrace(0, t1, r1, sr)
	b := NewAgg()
	b.NumVPs = 2
	b.addTrace(1, t2, r2, sr)

	merged := NewAgg()
	merged.Merge(b)
	merged.Merge(a)
	if !reflect.DeepEqual(merged, whole) {
		t.Errorf("merged fixture aggregate != sequential fold:\nmerged %+v\nwhole  %+v", merged, whole)
	}
}
