package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDP is a UDP datagram. Checksums are computed over the IPv4 pseudo-header,
// so Marshal and Unmarshal take the enclosing addresses.
type UDP struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// Marshal serializes the datagram with a checksum over the pseudo-header
// (src, dst, protocol, UDP length).
func (u *UDP) Marshal(src, dst netip.Addr) ([]byte, error) {
	return u.AppendMarshal(nil, src, dst)
}

// AppendMarshal serializes the datagram onto dst and returns the extended
// slice, allocating only when dst lacks capacity. The appended bytes are
// identical to Marshal's output.
func (u *UDP) AppendMarshal(dst []byte, src, dstAddr netip.Addr) ([]byte, error) {
	total := UDPHeaderLen + len(u.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("%w: UDP payload too large", ErrBadHeader)
	}
	b, o := grow(dst, total)
	binary.BigEndian.PutUint16(b[o:], u.SrcPort)
	binary.BigEndian.PutUint16(b[o+2:], u.DstPort)
	binary.BigEndian.PutUint16(b[o+4:], uint16(total))
	b[o+6] = 0
	b[o+7] = 0
	copy(b[o+UDPHeaderLen:], u.Payload)
	ck := udpChecksum(src, dstAddr, b[o:])
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted as all-ones when computed zero
	}
	binary.BigEndian.PutUint16(b[o+6:], ck)
	return b, nil
}

// UnmarshalUDP parses a UDP datagram and verifies its checksum against the
// pseudo-header. A zero checksum field (checksum disabled) is accepted.
// The returned datagram owns its payload.
func UnmarshalUDP(src, dst netip.Addr, b []byte) (*UDP, error) {
	u := new(UDP)
	if err := UnmarshalUDPInto(u, src, dst, b); err != nil {
		return nil, err
	}
	u.Payload = append([]byte(nil), u.Payload...)
	return u, nil
}

// UnmarshalUDPInto parses a UDP datagram into u without allocating:
// u.Payload aliases b. Verification matches UnmarshalUDP.
func UnmarshalUDPInto(u *UDP, src, dst netip.Addr, b []byte) error {
	if len(b) < UDPHeaderLen {
		return ErrShortPacket
	}
	ulen := int(binary.BigEndian.Uint16(b[4:]))
	if ulen < UDPHeaderLen || ulen > len(b) {
		return fmt.Errorf("%w: UDP length %d of %d bytes", ErrBadHeader, ulen, len(b))
	}
	if binary.BigEndian.Uint16(b[6:]) != 0 {
		if udpChecksum(src, dst, b[:ulen]) != 0 {
			return ErrBadChecksum
		}
	}
	*u = UDP{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Payload: b[UDPHeaderLen:ulen],
	}
	return nil
}

// udpChecksum folds the pseudo-header and the datagram bytes. When called
// on a datagram whose checksum field is already set, a correct datagram
// folds to zero.
func udpChecksum(src, dst netip.Addr, datagram []byte) uint16 {
	var pseudo [12]byte
	s, d := src.As4(), dst.As4()
	copy(pseudo[0:4], s[:])
	copy(pseudo[4:8], d[:])
	pseudo[9] = ProtoUDP
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(datagram)))
	return finish(sum(datagram, sum(pseudo[:], 0)))
}

//arest:coldpath debug formatter, never on the wire path
func (u *UDP) String() string {
	return fmt.Sprintf("UDP %d -> %d len=%d", u.SrcPort, u.DstPort, UDPHeaderLen+len(u.Payload))
}
