package core

import (
	"context"
	"net/netip"
	"testing"

	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

// TestEndToEndSRDetection drives the full pipeline: simulate an SR-MPLS AS,
// probe it over the wire-format boundary, fingerprint the hops, annotate,
// and verify AReST raises CVR on the tunnel.
func TestEndToEndSRDetection(t *testing.T) {
	n := netsim.New(77)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	prof.SNMPOpen = true
	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: netsim.DefaultProfile(mpls.VendorLinux), Mode: netsim.ModeIP})
	mk := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: netsim.ModeSR})
	}
	pe1 := mk("pe1")
	p1 := mk("p1")
	p2 := mk("p2")
	pe2 := mk("pe2")
	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, p1.ID, 10)
	n.Connect(p1.ID, p2.ID, 10)
	n.Connect(p2.ID, pe2.ID, 10)
	vp := netip.MustParseAddr("172.16.0.5")
	tgt := netip.MustParseAddr("100.1.0.9")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, pe2.ID)
	n.Compute()

	tc := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	tr, err := tc.Trace(context.Background(), tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reached() {
		t.Fatalf("trace did not reach: %s", tr)
	}

	ttl, err := fingerprint.CollectTTL(context.Background(), []*probe.Trace{tr}, tc, 1, nil)
	if err != nil {
		t.Fatalf("CollectTTL: %v", err)
	}
	snmp := fingerprint.SNMPDataset(n)
	ann := fingerprint.NewAnnotator(snmp, ttl)

	asOf := func(a netip.Addr) int {
		if r, ok := n.RouterByAddr(a); ok {
			return r.ASN
		}
		return 0
	}
	path := BuildPath(tr, ann, asOf)
	res := NewDetector().Analyze(path)

	byFlag := res.SegmentsByFlag()
	if len(byFlag[FlagCVR]) != 1 {
		t.Fatalf("CVR segments = %+v (all %+v)", byFlag[FlagCVR], res.Segments)
	}
	seg := byFlag[FlagCVR][0]
	if seg.Len() != 3 { // p1, p2, pe2 carry pe2's node SID
		t.Errorf("CVR segment length = %d, want 3", seg.Len())
	}
	if !mpls.CiscoSRGB.Contains(seg.Label) {
		t.Errorf("CVR label %d outside Cisco SRGB", seg.Label)
	}
	// SNMP must have produced the exact vendor for at least one hop.
	exact := false
	for _, h := range path.Hops {
		if h.Vendor == mpls.VendorCisco && h.Source == fingerprint.SourceSNMP {
			exact = true
		}
	}
	if !exact {
		t.Error("no exact SNMP vendor annotation on the path")
	}
	// AS restriction keeps exactly the AS-100 hops.
	sub := path.RestrictToAS(100)
	if len(sub.Hops) != 4 { // pe1, p1, p2, pe2
		t.Errorf("restricted hops = %d, want 4", len(sub.Hops))
	}
	// Tunnel classification: one full-SR tunnel.
	tuns := res.Tunnels()
	if len(tuns) != 1 || tuns[0].Pattern != PatternFullSR {
		t.Errorf("tunnels = %+v", tuns)
	}
}

// TestEndToEndESnetScenario reproduces the AS#46 ground-truth conditions:
// SR everywhere, no SNMP, no pings answered => fingerprinting is blind, so
// detection must rely on CO (and LSO for deep stacks), never CVR/LSVR/LVR.
func TestEndToEndESnetScenario(t *testing.T) {
	n := netsim.New(46)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	prof.SNMPOpen = false
	prof.RespondsEcho = false
	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: netsim.DefaultProfile(mpls.VendorLinux), Mode: netsim.ModeIP})
	mk := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 293, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: netsim.ModeSR})
	}
	pe1, p1, p2, pe2 := mk("pe1"), mk("p1"), mk("p2"), mk("pe2")
	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, p1.ID, 10)
	n.Connect(p1.ID, p2.ID, 10)
	n.Connect(p2.ID, pe2.ID, 10)
	vp := netip.MustParseAddr("172.16.0.6")
	tgt := netip.MustParseAddr("100.1.0.10")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, pe2.ID)
	n.Compute()

	tc := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	tr, err := tc.Trace(context.Background(), tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	ttl, err := fingerprint.CollectTTL(context.Background(), []*probe.Trace{tr}, tc, 1, nil)
	if err != nil {
		t.Fatalf("CollectTTL: %v", err)
	}
	if len(ttl) != 0 {
		t.Fatalf("TTL fingerprints despite no echo replies: %v", ttl)
	}
	ann := fingerprint.NewAnnotator(fingerprint.SNMPDataset(n), ttl)
	res := NewDetector().Analyze(BuildPath(tr, ann, nil))
	byFlag := res.SegmentsByFlag()
	if len(byFlag[FlagCO]) != 1 {
		t.Fatalf("CO segments = %+v", res.Segments)
	}
	for _, f := range []Flag{FlagCVR, FlagLSVR, FlagLVR} {
		if len(byFlag[f]) != 0 {
			t.Errorf("vendor-range flag %v raised with blind fingerprinting", f)
		}
	}
}

// TestEndToEndInterworkingDetection drives an SR→LDP interworking AS and
// checks the hybrid tunnel is classified with the right clouds.
func TestEndToEndInterworkingDetection(t *testing.T) {
	n := netsim.New(13)
	n.MappingServer = true
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	prof.SNMPOpen = true
	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: netsim.DefaultProfile(mpls.VendorLinux), Mode: netsim.ModeIP})
	sr := func(name string, ldp bool) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, LDPEnabled: ldp, Mode: netsim.ModeSR})
	}
	ldp := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, LDPEnabled: true, Mode: netsim.ModeLDP})
	}
	pe1 := sr("pe1", false)
	s1 := sr("s1", false)
	s2 := sr("s2", false)
	b := sr("b", true)
	l1 := ldp("l1")
	l2 := ldp("l2")
	pe2 := ldp("pe2")
	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, s1.ID, 10)
	n.Connect(s1.ID, s2.ID, 10)
	n.Connect(s2.ID, b.ID, 10)
	n.Connect(b.ID, l1.ID, 10)
	n.Connect(l1.ID, l2.ID, 10)
	n.Connect(l2.ID, pe2.ID, 10)
	vp := netip.MustParseAddr("172.16.0.7")
	tgt := netip.MustParseAddr("100.1.0.11")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, pe2.ID)
	n.Compute()

	tc := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	tr, err := tc.Trace(context.Background(), tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	ann := fingerprint.NewAnnotator(fingerprint.SNMPDataset(n), nil)
	res := NewDetector().Analyze(BuildPath(tr, ann, nil))
	tuns := res.Tunnels()
	if len(tuns) != 1 {
		t.Fatalf("tunnels = %+v\n%s", tuns, tr)
	}
	if tuns[0].Pattern != PatternSRLDP {
		t.Fatalf("pattern = %v, clouds %+v", tuns[0].Pattern, tuns[0].Clouds)
	}
	// SR cloud: s1, s2, b (3 hops); LDP cloud: l1, l2 (pe2 is PHP-popped).
	if tuns[0].Clouds[0].Len != 3 || tuns[0].Clouds[1].Len != 2 {
		t.Errorf("cloud sizes = %+v, want 3 and 2", tuns[0].Clouds)
	}
}
