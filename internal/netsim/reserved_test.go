package netsim

import (
	"net/netip"
	"testing"

	"arest/internal/mpls"
	"arest/internal/pkt"
)

// ldpChainWith builds the canonical LDP chain letting the caller tweak the
// egress profile and network policies before Compute.
func ldpChainWith(t *testing.T, tweak func(n *Network, pe2 *Router)) *chain {
	t.Helper()
	n := New(42)
	prof := DefaultProfile(mpls.VendorCisco)
	gw := n.AddRouter(RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: DefaultProfile(mpls.VendorLinux), Mode: ModeIP})
	mk := func(name string) *Router {
		return n.AddRouter(RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, LDPEnabled: true, Mode: ModeLDP})
	}
	pe1 := mk("pe1")
	n.Connect(gw.ID, pe1.ID, 10)
	prev := pe1
	var ps []*Router
	for i := 0; i < 3; i++ {
		p := mk("p")
		n.Connect(prev.ID, p.ID, 10)
		ps = append(ps, p)
		prev = p
	}
	pe2 := mk("pe2")
	n.Connect(prev.ID, pe2.ID, 10)
	vp := a("172.16.0.10")
	target := a("100.1.0.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	if tweak != nil {
		tweak(n, pe2)
	}
	n.Compute()
	return &chain{net: n, vp: vp, target: target, gw: gw, pe1: pe1, ps: ps, pe2: pe2, pathLen: 6}
}

func TestExplicitNullEgress(t *testing.T) {
	c := ldpChainWith(t, func(n *Network, pe2 *Router) {
		pe2.Profile.ExplicitNull = true
	})
	hops := c.traceUDP(t, c.target, 10, 33434)
	if len(hops) != c.pathLen+1 {
		t.Fatalf("hops = %d, want %d", len(hops), c.pathLen+1)
	}
	// The penultimate hop swaps to label 0 instead of popping, so pe2's
	// time-exceeded quotes the reserved explicit-null label.
	eh := hops[c.pathLen-1] // pe2
	if eh.stack == nil {
		t.Fatal("explicit-null egress quoted no stack")
	}
	if eh.stack[0].Label != mpls.LabelIPv4ExplicitNull {
		t.Errorf("egress label = %d, want 0", eh.stack[0].Label)
	}
	if !eh.stack[0].Reserved() {
		t.Error("label 0 not marked reserved")
	}
	// Delivery still works.
	last := hops[c.pathLen]
	if last.icmpType != pkt.ICMPDestUnreachable {
		t.Errorf("not delivered: %+v", last)
	}
}

func TestImplicitNullDefault(t *testing.T) {
	c := ldpChainWith(t, nil)
	hops := c.traceUDP(t, c.target, 10, 33434)
	// Default implicit null: pe2 receives unlabeled.
	if hops[c.pathLen-1].stack != nil {
		t.Errorf("pe2 labeled despite implicit null: %v", hops[c.pathLen-1].stack)
	}
}

func TestEntropyLabelStacks(t *testing.T) {
	c := ldpChainWith(t, func(n *Network, pe2 *Router) {
		n.EntropyPolicy = func(ing *Router, egress RouterID, dst netip.Addr, flow uint64) bool {
			return true
		}
	})
	hops := c.traceUDP(t, c.target, 10, 33434)
	if len(hops) != c.pathLen+1 {
		t.Fatalf("hops = %d, want %d", len(hops), c.pathLen+1)
	}
	// Interior LSRs quote [transport, ELI, EL]: depth 3.
	for i := 2; i < 2+len(c.ps); i++ {
		h := hops[i]
		if h.stack.Depth() != 3 {
			t.Fatalf("hop %d depth = %d, want 3: %v", i, h.stack.Depth(), h.stack)
		}
		if h.stack[1].Label != mpls.LabelELI {
			t.Errorf("hop %d middle label = %d, want ELI (7)", i, h.stack[1].Label)
		}
		if h.stack[2].Label < 16 {
			t.Errorf("hop %d entropy label %d is reserved", i, h.stack[2].Label)
		}
	}
	// PHP pops the transport at the penultimate hop; pe2 receives
	// [ELI, EL], consumes both, and still delivers.
	eh := hops[c.pathLen-1]
	if eh.stack.Depth() != 2 || eh.stack[0].Label != mpls.LabelELI {
		t.Errorf("egress stack = %v, want [ELI, EL]", eh.stack)
	}
	if hops[c.pathLen].icmpType != pkt.ICMPDestUnreachable {
		t.Error("entropy-labeled packet not delivered")
	}
}

func TestEntropyVariesPerFlow(t *testing.T) {
	c := ldpChainWith(t, func(n *Network, pe2 *Router) {
		n.EntropyPolicy = func(ing *Router, egress RouterID, dst netip.Addr, flow uint64) bool {
			return true
		}
	})
	h1 := c.traceUDP(t, c.target, 10, 33434)
	h2 := c.traceUDP(t, c.target, 10, 33500) // different flow
	el1 := h1[2].stack[2].Label
	el2 := h2[2].stack[2].Label
	if el1 == el2 {
		t.Errorf("entropy labels identical across flows: %d", el1)
	}
}
