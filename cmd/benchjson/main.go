// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON baseline. Each invocation records one
// labeled run; with -o it merges into an existing file, replacing any run
// with the same label, so a baseline file can carry a "pre" and a "post"
// run side by side:
//
//	go test -run NONE -bench . -benchmem ./... | go run ./cmd/benchjson -label post -o BENCH_6.json
//
// The tool is stdlib-only and records no timestamps or host state beyond
// what the benchmark output itself contains (the determinism contract,
// DESIGN.md §10, bans wall-clock reads; benchmark numbers are measurements,
// inherently non-deterministic, but the file structure around them is a
// pure function of the input).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. allocs_per_op and bytes_per_op are -1 when
// the input lacked -benchmem columns, never omitted: a true zero is the
// whole point of an allocation baseline.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Run is one labeled invocation of the bench suite.
type Run struct {
	Label   string   `json:"label"`
	Results []Result `json:"results"`
}

// File is the top-level baseline document.
type File struct {
	Runs []Run `json:"runs"`
}

func main() {
	label := flag.String("label", "run", "label recorded for this bench run")
	out := flag.String("o", "", "output file to merge into (stdout when empty)")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var doc File
	if *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(prev, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: existing %s is not a baseline file: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	replaced := false
	for i := range doc.Runs {
		if doc.Runs[i].Label == *label {
			doc.Runs[i].Results = results
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Runs = append(doc.Runs, Run{Label: *label, Results: results})
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output: "pkg:" lines set the package of the
// benchmark lines that follow (the format go test emits when benchmarking
// multiple packages); everything else that does not start with "Benchmark"
// is ignored.
func parse(r *os.File) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "ok\t"):
			// Package summary; the next package's "pkg:" line follows.
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, ok, err := parseLine(line, pkg)
		if err != nil {
			return nil, err
		}
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseLine parses one "BenchmarkX-8  N  v ns/op [v B/op  v allocs/op]"
// line. ok is false for Benchmark lines without measurements (the bare
// name go test prints before running it under -v).
func parseLine(line, pkg string) (Result, bool, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false, nil
	}
	name := f[0]
	// Trim the -GOMAXPROCS suffix go test appends to parallel benchmarks.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false, nil // not a measurement line
	}
	res := Result{Name: name, Pkg: pkg, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("bad value %q in %q", f[i], line)
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return res, true, nil
}
