package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"arest/internal/fingerprint"
	"arest/internal/mpls"
)

// rng feeds the fixture builders: seeded, so the generated hop addresses
// and labels are identical on every run.
var rng = rand.New(rand.NewSource(42))

// mkHop builds a hop carrying the given label stack (top first) with an
// optional vendor annotation.
func mkHop(vendor mpls.Vendor, labels ...uint32) Hop {
	h := Hop{Addr: netip.MustParseAddr(fmt.Sprintf("10.0.%d.%d", rng.Intn(200), rng.Intn(250)+1)), Vendor: vendor}
	for _, l := range labels {
		h.Stack = append(h.Stack, mpls.LSE{Label: l, TTL: 1})
	}
	if vendor != mpls.VendorUnknown {
		h.Source = fingerprint.SourceTTL
	}
	return h
}

func ipHop() Hop { return mkHop(mpls.VendorUnknown) }

func pathOf(hops ...Hop) *Path {
	return &Path{VP: netip.MustParseAddr("172.16.0.1"), Dst: netip.MustParseAddr("100.0.0.1"), Hops: hops}
}

func analyze(p *Path) *Result { return NewDetector().Analyze(p) }

func TestCVRFlag(t *testing.T) {
	// Fig. 6 green path: 16,005 across three hops, one fingerprinted Cisco.
	p := pathOf(
		ipHop(), // PE1, the source: never part of the segment
		mkHop(mpls.VendorCisco, 16005),
		mkHop(mpls.VendorUnknown, 16005),
		mkHop(mpls.VendorUnknown, 16005),
		ipHop(),
	)
	res := analyze(p)
	if len(res.Segments) != 1 {
		t.Fatalf("segments = %+v", res.Segments)
	}
	s := res.Segments[0]
	if s.Flag != FlagCVR || s.Start != 1 || s.End != 3 || s.Label != 16005 {
		t.Errorf("segment = %+v", s)
	}
	if s.SuffixMatch {
		t.Error("strict equality reported as suffix match")
	}
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestCOFlag(t *testing.T) {
	// Fig. 6 gray path: 17,005 consecutive, nothing fingerprinted.
	p := pathOf(
		ipHop(),
		mkHop(mpls.VendorUnknown, 17005),
		mkHop(mpls.VendorUnknown, 17005),
		mkHop(mpls.VendorUnknown, 17005),
	)
	res := analyze(p)
	if len(res.Segments) != 1 || res.Segments[0].Flag != FlagCO {
		t.Fatalf("segments = %+v", res.Segments)
	}
}

func TestCVRNeedsVendorRangeNotJustFingerprint(t *testing.T) {
	// Fingerprinted hops whose label lies outside the vendor SR range must
	// downgrade to CO.
	p := pathOf(
		mkHop(mpls.VendorCisco, 500000),
		mkHop(mpls.VendorCisco, 500000),
	)
	res := analyze(p)
	if len(res.Segments) != 1 || res.Segments[0].Flag != FlagCO {
		t.Fatalf("segments = %+v", res.Segments)
	}
}

func TestCiscoHuaweiIntersectionRestriction(t *testing.T) {
	// Label 30,000 is inside the Huawei SRGB but outside the Cisco∩Huawei
	// intersection. TTL-ambiguous hops must not raise CVR for it; an exact
	// SNMP identification must.
	seq := func(v mpls.Vendor) *Path {
		return pathOf(mkHop(v, 30000), mkHop(v, 30000))
	}
	if res := analyze(seq(mpls.VendorCiscoHuawei)); res.Segments[0].Flag != FlagCO {
		t.Errorf("ambiguous fingerprint: flag = %v, want CO", res.Segments[0].Flag)
	}
	if res := analyze(seq(mpls.VendorHuawei)); res.Segments[0].Flag != FlagCVR {
		t.Errorf("exact Huawei fingerprint: flag = %v, want CVR", res.Segments[0].Flag)
	}
	// Inside the intersection, the ambiguity class is sufficient.
	if res := analyze(pathOf(mkHop(mpls.VendorCiscoHuawei, 16005), mkHop(mpls.VendorUnknown, 16005))); res.Segments[0].Flag != FlagCVR {
		t.Errorf("intersection label: flag = %v, want CVR", res.Segments[0].Flag)
	}
}

func TestSuffixMatching(t *testing.T) {
	// Footnote 4: 16,005 → 13,005 still forms a sequence (differing SRGBs).
	p := pathOf(
		mkHop(mpls.VendorCisco, 16005),
		mkHop(mpls.VendorUnknown, 13005),
		mkHop(mpls.VendorUnknown, 13005),
	)
	res := analyze(p)
	if len(res.Segments) != 1 {
		t.Fatalf("segments = %+v", res.Segments)
	}
	s := res.Segments[0]
	if s.Flag != FlagCVR || !s.SuffixMatch || s.Len() != 3 {
		t.Errorf("segment = %+v", s)
	}

	d := NewDetector()
	d.SuffixMatching = false
	res = d.Analyze(p)
	// Without suffix matching: 16005 alone (Cisco, in range → LVR) and a
	// 13005,13005 CO pair.
	byFlag := res.SegmentsByFlag()
	if len(byFlag[FlagCO]) != 1 || len(byFlag[FlagLVR]) != 1 {
		t.Errorf("without suffix matching: %+v", res.Segments)
	}
}

func TestSuffixMatchRule(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{16005, 13005, true},
		{16005, 16005, false}, // equality is not a *suffix* match
		{16005, 13006, false},
		{16005, 17005, true},
		{105, 1105, true},
		{16005, 16006, false},
	}
	for _, c := range cases {
		if got := suffixMatch(c.a, c.b); got != c.want {
			t.Errorf("suffixMatch(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLSVRFlag(t *testing.T) {
	// Fig. 6 purple path: P7 Cisco with stack [20,000; 37,000]; the next
	// hop (classic MPLS, single foreign label) must stay out.
	p := pathOf(
		ipHop(),
		mkHop(mpls.VendorCisco, 20000, 37000),
		mkHop(mpls.VendorUnknown, 300123),
	)
	res := analyze(p)
	if len(res.Segments) != 1 {
		t.Fatalf("segments = %+v", res.Segments)
	}
	s := res.Segments[0]
	if s.Flag != FlagLSVR || s.Start != 1 || s.End != 1 {
		t.Errorf("segment = %+v", s)
	}
	if got := s.StackDepths[0]; got != 2 {
		t.Errorf("stack depth = %d", got)
	}
}

func TestLVRFlag(t *testing.T) {
	p := pathOf(mkHop(mpls.VendorCisco, 16009), ipHop())
	res := analyze(p)
	if len(res.Segments) != 1 || res.Segments[0].Flag != FlagLVR {
		t.Fatalf("segments = %+v", res.Segments)
	}
}

func TestLSOFlag(t *testing.T) {
	p := pathOf(mkHop(mpls.VendorUnknown, 700001, 700002), ipHop())
	res := analyze(p)
	if len(res.Segments) != 1 || res.Segments[0].Flag != FlagLSO {
		t.Fatalf("segments = %+v", res.Segments)
	}
	if res.Segments[0].Flag.Stars() != 1 {
		t.Errorf("LSO stars = %d", res.Segments[0].Flag.Stars())
	}
}

func TestClassicMPLSUnflagged(t *testing.T) {
	// Distinct single labels from a dynamic pool: classic LDP, no flags.
	p := pathOf(
		mkHop(mpls.VendorUnknown, 301111),
		mkHop(mpls.VendorUnknown, 405222),
		mkHop(mpls.VendorUnknown, 550333),
	)
	res := analyze(p)
	if len(res.Segments) != 0 {
		t.Fatalf("segments = %+v", res.Segments)
	}
	for i, area := range res.Areas {
		if area != AreaMPLS {
			t.Errorf("hop %d area = %v, want mpls", i, area)
		}
	}
}

func TestSequencePrecedesStackFlags(t *testing.T) {
	// Hops in a CVR run with deep stacks must not additionally raise LSVR.
	p := pathOf(
		mkHop(mpls.VendorCisco, 16005, 16008),
		mkHop(mpls.VendorUnknown, 16005, 16008),
	)
	res := analyze(p)
	if len(res.Segments) != 1 || res.Segments[0].Flag != FlagCVR {
		t.Fatalf("segments = %+v", res.Segments)
	}
	if d := res.Segments[0].StackDepths; len(d) != 2 || d[0] != 2 || d[1] != 2 {
		t.Errorf("stack depths = %v", d)
	}
}

func TestMinRunOfTwo(t *testing.T) {
	// A single 16005 hop cannot raise CO/CVR — it becomes LVR (vendor) or
	// nothing (no vendor).
	res := analyze(pathOf(mkHop(mpls.VendorUnknown, 16005), ipHop()))
	if len(res.Segments) != 0 {
		t.Fatalf("segments = %+v", res.Segments)
	}
	res = analyze(pathOf(mkHop(mpls.VendorUnknown, 16005), mkHop(mpls.VendorUnknown, 16005)))
	if len(res.Segments) != 1 || res.Segments[0].Flag != FlagCO {
		t.Fatalf("segments = %+v", res.Segments)
	}
}

func TestGapBreaksSequence(t *testing.T) {
	// An unlabeled hop between identical labels breaks the run.
	p := pathOf(
		mkHop(mpls.VendorUnknown, 16005),
		ipHop(),
		mkHop(mpls.VendorUnknown, 16005),
	)
	res := analyze(p)
	for _, s := range res.Segments {
		if s.Flag == FlagCO || s.Flag == FlagCVR {
			t.Errorf("sequence flag across a gap: %+v", s)
		}
	}
}

func TestAreas(t *testing.T) {
	p := pathOf(
		ipHop(),                               // ip
		mkHop(mpls.VendorCisco, 16005),        // sr (CVR)
		mkHop(mpls.VendorUnknown, 16005),      // sr
		mkHop(mpls.VendorUnknown, 404040),     // mpls (classic)
		mkHop(mpls.VendorUnknown, 1111, 2222), // mpls (LSO is not strong)
		ipHop(),                               // ip
	)
	res := analyze(p)
	want := []Area{AreaIP, AreaSR, AreaSR, AreaMPLS, AreaMPLS, AreaIP}
	for i, w := range want {
		if res.Areas[i] != w {
			t.Errorf("hop %d area = %v, want %v", i, res.Areas[i], w)
		}
	}
	if !res.HasSR() || !res.HitsArea(AreaSR) || !res.HitsArea(AreaMPLS) || !res.HitsArea(AreaIP) {
		t.Error("area predicates wrong")
	}
}

func TestRevealedAndImplicitHopsAreMPLSArea(t *testing.T) {
	rev := ipHop()
	rev.Revealed = true
	imp := ipHop()
	imp.QTTL = 3
	res := analyze(pathOf(rev, imp, ipHop()))
	if res.Areas[0] != AreaMPLS || res.Areas[1] != AreaMPLS || res.Areas[2] != AreaIP {
		t.Errorf("areas = %v", res.Areas)
	}
}

func TestInterworkingPatterns(t *testing.T) {
	sr := func() Hop { return mkHop(mpls.VendorCisco, 16005) }
	ldp := func() Hop { return mkHop(mpls.VendorUnknown, uint32(300000+rng.Intn(10000)*7)) }

	cases := []struct {
		name string
		hops []Hop
		want Pattern
	}{
		{"full-sr", []Hop{sr(), sr(), sr()}, PatternFullSR},
		{"full-ldp", []Hop{ldp(), ldp(), ldp()}, PatternFullLDP},
		{"sr-ldp", []Hop{sr(), sr(), ldp(), ldp()}, PatternSRLDP},
		{"ldp-sr", []Hop{ldp(), ldp(), sr(), sr()}, PatternLDPSR},
		{"ldp-sr-ldp", []Hop{ldp(), ldp(), sr(), sr(), ldp()}, PatternLDPSRLDP},
		{"sr-ldp-sr", []Hop{sr(), sr(), ldp(), sr(), sr()}, PatternSRLDPSR},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			hops := append([]Hop{ipHop()}, c.hops...)
			hops = append(hops, ipHop())
			res := analyze(pathOf(hops...))
			tuns := res.Tunnels()
			if len(tuns) != 1 {
				t.Fatalf("tunnels = %+v", tuns)
			}
			if tuns[0].Pattern != c.want {
				t.Errorf("pattern = %v, want %v (clouds %+v)", tuns[0].Pattern, c.want, tuns[0].Clouds)
			}
			wantInterwork := c.want != PatternFullSR && c.want != PatternFullLDP
			if tuns[0].Interworking() != wantInterwork {
				t.Errorf("Interworking() = %v", tuns[0].Interworking())
			}
		})
	}
}

func TestInterworkingCloudSizes(t *testing.T) {
	p := pathOf(
		mkHop(mpls.VendorCisco, 16005),
		mkHop(mpls.VendorUnknown, 16005),
		mkHop(mpls.VendorUnknown, 16005),
		mkHop(mpls.VendorUnknown, 311111),
	)
	res := analyze(p)
	tuns := res.Tunnels()
	if len(tuns) != 1 {
		t.Fatalf("tunnels = %+v", tuns)
	}
	clouds := tuns[0].Clouds
	if len(clouds) != 2 || clouds[0] != (Cloud{CloudSR, 3}) || clouds[1] != (Cloud{CloudLDP, 1}) {
		t.Errorf("clouds = %+v", clouds)
	}
}

func TestMultipleTunnelsPerPath(t *testing.T) {
	p := pathOf(
		mkHop(mpls.VendorUnknown, 16005),
		mkHop(mpls.VendorUnknown, 16005),
		ipHop(),
		mkHop(mpls.VendorUnknown, 999999),
		mkHop(mpls.VendorUnknown, 888888),
	)
	res := analyze(p)
	tuns := res.Tunnels()
	if len(tuns) != 2 {
		t.Fatalf("tunnels = %+v", tuns)
	}
	if tuns[0].Pattern != PatternFullSR || tuns[1].Pattern != PatternFullLDP {
		t.Errorf("patterns = %v, %v", tuns[0].Pattern, tuns[1].Pattern)
	}
}

func TestRestrictToAS(t *testing.T) {
	h1, h2, h3, h4 := ipHop(), ipHop(), ipHop(), ipHop()
	h1.ASN, h2.ASN, h3.ASN, h4.ASN = 65000, 100, 100, 200
	p := pathOf(h1, h2, h3, h4)
	sub := p.RestrictToAS(100)
	if len(sub.Hops) != 2 || sub.Hops[0].Addr != h2.Addr || sub.Hops[1].Addr != h3.Addr {
		t.Errorf("restricted = %+v", sub.Hops)
	}
	if len(p.RestrictToAS(999).Hops) != 0 {
		t.Error("unknown AS returned hops")
	}
}

func TestDistinctAddrs(t *testing.T) {
	h := ipHop()
	p := pathOf(h, h, ipHop())
	if got := len(p.DistinctAddrs()); got != 2 {
		t.Errorf("distinct = %d, want 2", got)
	}
}

func TestFlagMetadata(t *testing.T) {
	if FlagCVR.Stars() != 5 || FlagCO.Stars() != 4 || FlagLSVR.Stars() != 4 ||
		FlagLVR.Stars() != 3 || FlagLSO.Stars() != 1 || FlagNone.Stars() != 0 {
		t.Error("star assignment drifted from Sec. 4")
	}
	for _, f := range []Flag{FlagCVR, FlagCO, FlagLSVR, FlagLVR} {
		if !f.Strong() {
			t.Errorf("%v should be strong", f)
		}
	}
	if FlagLSO.Strong() || FlagNone.Strong() {
		t.Error("LSO/None must not be strong")
	}
	if FlagCVR.String() != "CVR" || FlagLSO.String() != "LSO" || Flag(99).String() != "?" {
		t.Error("flag names wrong")
	}
}

// TestAnalyzeInvariants property-checks segment structure over random paths.
func TestAnalyzeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	vendors := []mpls.Vendor{mpls.VendorUnknown, mpls.VendorCisco, mpls.VendorCiscoHuawei, mpls.VendorJuniper}
	for iter := 0; iter < 300; iter++ {
		var hops []Hop
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			v := vendors[rng.Intn(len(vendors))]
			switch rng.Intn(4) {
			case 0:
				hops = append(hops, ipHop())
			case 1:
				hops = append(hops, mkHop(v, uint32(16000+rng.Intn(20))))
			case 2:
				hops = append(hops, mkHop(v, uint32(rng.Intn(1000000))))
			default:
				hops = append(hops, mkHop(v, uint32(rng.Intn(1000000)), uint32(rng.Intn(1000000))))
			}
		}
		p := pathOf(hops...)
		res := analyze(p)
		covered := make([]int, len(hops))
		for _, s := range res.Segments {
			if s.Start < 0 || s.End >= len(hops) || s.Start > s.End {
				t.Fatalf("iter %d: bad bounds %+v", iter, s)
			}
			if len(s.StackDepths) != s.Len() {
				t.Fatalf("iter %d: depths %v for len %d", iter, s.StackDepths, s.Len())
			}
			for k := s.Start; k <= s.End; k++ {
				covered[k]++
				if !hops[k].HasStack() {
					t.Fatalf("iter %d: unlabeled hop %d inside segment %+v", iter, k, s)
				}
			}
			if (s.Flag == FlagCO || s.Flag == FlagCVR) && s.Len() < 2 {
				t.Fatalf("iter %d: sequence flag on %d-hop segment", iter, s.Len())
			}
		}
		for k, cnt := range covered {
			if cnt > 1 {
				t.Fatalf("iter %d: hop %d in %d segments", iter, k, cnt)
			}
		}
		// Determinism.
		res2 := analyze(p)
		if len(res2.Segments) != len(res.Segments) {
			t.Fatalf("iter %d: nondeterministic analysis", iter)
		}
	}
}

func TestReservedLabelsNeverFlagged(t *testing.T) {
	// Explicit-null (0) and other reserved active labels are plain MPLS
	// plumbing: no flags, no sequence participation.
	res := analyze(pathOf(
		mkHop(mpls.VendorCisco, 0),
		mkHop(mpls.VendorCisco, 0),
	))
	if len(res.Segments) != 0 {
		t.Fatalf("reserved-label sequence flagged: %+v", res.Segments)
	}
	// A depth-2 stack with reserved top label (explicit-null + VPN) must
	// not raise LSO either.
	res = analyze(pathOf(mkHop(mpls.VendorUnknown, 0, 700700)))
	if len(res.Segments) != 0 {
		t.Fatalf("reserved-top stack flagged: %+v", res.Segments)
	}
	// But hops with reserved labels still count as MPLS area.
	if res.Areas[0] != AreaMPLS {
		t.Errorf("area = %v, want mpls", res.Areas[0])
	}
}

func TestReservedLabelBreaksSequence(t *testing.T) {
	p := pathOf(
		mkHop(mpls.VendorUnknown, 16005),
		mkHop(mpls.VendorUnknown, 0), // explicit-null hop interleaved
		mkHop(mpls.VendorUnknown, 16005),
	)
	res := analyze(p)
	for _, s := range res.Segments {
		if s.Flag == FlagCO || s.Flag == FlagCVR {
			t.Errorf("sequence across reserved label: %+v", s)
		}
	}
}

func TestTerminalHopNeverFlagged(t *testing.T) {
	term := mkHop(mpls.VendorCisco, 16005, 16008)
	term.Terminal = true
	res := analyze(pathOf(mkHop(mpls.VendorUnknown, 16005), term))
	for _, s := range res.Segments {
		for k := s.Start; k <= s.End; k++ {
			if k == 1 {
				t.Errorf("terminal hop inside segment %+v", s)
			}
		}
	}
}

func TestAnalyzeEmptyAndNilPaths(t *testing.T) {
	res := analyze(pathOf())
	if len(res.Segments) != 0 || len(res.Areas) != 0 || res.HasSR() {
		t.Errorf("empty path result: %+v", res)
	}
	if tuns := res.Tunnels(); len(tuns) != 0 {
		t.Errorf("tunnels on empty path: %+v", tuns)
	}
}

func TestSegmentsByFlagGroups(t *testing.T) {
	p := pathOf(
		mkHop(mpls.VendorUnknown, 16005),
		mkHop(mpls.VendorUnknown, 16005),
		ipHop(),
		mkHop(mpls.VendorUnknown, 1, 2), // reserved top: no flag
		mkHop(mpls.VendorUnknown, 777777, 888888),
	)
	by := analyze(p).SegmentsByFlag()
	if len(by[FlagCO]) != 1 || len(by[FlagLSO]) != 1 {
		t.Errorf("groups = %v", by)
	}
	total := 0
	for _, segs := range by {
		total += len(segs)
	}
	if total != 2 {
		t.Errorf("total segments = %d", total)
	}
}

func TestDetectorMinRunOverride(t *testing.T) {
	// A detector configured with MinRun < 2 is clamped to 2 (the paper's
	// definition requires an actual sequence).
	d := NewDetector()
	d.MinRun = 0
	res := d.Analyze(pathOf(mkHop(mpls.VendorUnknown, 16005), ipHop()))
	for _, s := range res.Segments {
		if s.Flag == FlagCO || s.Flag == FlagCVR {
			t.Errorf("single hop sequence with MinRun=0: %+v", s)
		}
	}
	// MinRun = 3 demands longer runs.
	d.MinRun = 3
	res = d.Analyze(pathOf(mkHop(mpls.VendorUnknown, 16005), mkHop(mpls.VendorUnknown, 16005)))
	for _, s := range res.Segments {
		if s.Flag == FlagCO {
			t.Errorf("2-hop run flagged with MinRun=3: %+v", s)
		}
	}
	res = d.Analyze(pathOf(mkHop(mpls.VendorUnknown, 16005), mkHop(mpls.VendorUnknown, 16005), mkHop(mpls.VendorUnknown, 16005)))
	if len(res.SegmentsByFlag()[FlagCO]) != 1 {
		t.Errorf("3-hop run not flagged with MinRun=3")
	}
}
