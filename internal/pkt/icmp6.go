package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ICMPv6 types used by a v6 measurement pipeline.
const (
	ICMPv6DestUnreachable = 1
	ICMPv6TimeExceeded    = 3
	ICMPv6EchoRequest     = 128
	ICMPv6EchoReply       = 129
)

// ICMPv6 is an ICMPv6 message. The checksum covers an IPv6 pseudo-header,
// so Marshal and Unmarshal take the enclosing addresses. Error messages
// carry the quoted original datagram in Body and may carry RFC 4884
// extension objects — RFC 4950 label quoting applies to ICMPv6 as well
// (6PE deployments emit exactly that).
type ICMPv6 struct {
	Type       uint8
	Code       uint8
	ID         uint16 // echo only
	Seq        uint16 // echo only
	Body       []byte
	Extensions []ExtensionObject
}

// IsError reports whether the message quotes an original datagram.
func (m *ICMPv6) IsError() bool {
	return m.Type == ICMPv6TimeExceeded || m.Type == ICMPv6DestUnreachable
}

// Marshal serializes the message, computing the pseudo-header checksum.
// Like its v4 counterpart, an error message with extensions is emitted in
// RFC 4884 form — for ICMPv6 the length attribute sits in the first octet
// of the unused field and counts 8-octet units.
func (m *ICMPv6) Marshal(src, dst netip.Addr) ([]byte, error) {
	return m.AppendMarshal(nil, src, dst)
}

// AppendMarshal serializes the message onto dst and returns the extended
// slice, allocating only when dst lacks capacity. The appended bytes are
// identical to Marshal's output.
func (m *ICMPv6) AppendMarshal(dst []byte, src, dstAddr netip.Addr) ([]byte, error) {
	if !src.Is6() || !dstAddr.Is6() {
		return nil, fmt.Errorf("%w: ICMPv6 needs IPv6 endpoints", ErrBadHeader)
	}
	off := len(dst)
	var b []byte
	switch {
	case m.Type == ICMPv6EchoRequest || m.Type == ICMPv6EchoReply:
		var o int
		b, o = grow(dst, icmpHeaderLen+len(m.Body))
		binary.BigEndian.PutUint16(b[o+4:], m.ID)
		binary.BigEndian.PutUint16(b[o+6:], m.Seq)
		copy(b[o+icmpHeaderLen:], m.Body)
	case m.IsError():
		if len(m.Extensions) > 0 {
			var o int
			b, o = grow(dst, icmpHeaderLen)
			b[o+4] = origDatagramPadLen / 8 // RFC 4884: 8-octet units for ICMPv6
			b[o+5], b[o+6], b[o+7] = 0, 0, 0
			b = appendPaddedOriginal(b, m.Body)
			var err error
			b, err = appendExtensions(b, m.Extensions)
			if err != nil {
				return nil, err
			}
		} else {
			var o int
			b, o = grow(dst, icmpHeaderLen+len(m.Body))
			b[o+4], b[o+5], b[o+6], b[o+7] = 0, 0, 0, 0
			copy(b[o+icmpHeaderLen:], m.Body)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported ICMPv6 type %d", ErrBadHeader, m.Type)
	}
	b[off] = m.Type
	b[off+1] = m.Code
	b[off+2], b[off+3] = 0, 0
	binary.BigEndian.PutUint16(b[off+2:], icmp6Checksum(src, dstAddr, b[off:]))
	return b, nil
}

// UnmarshalICMPv6 parses an ICMPv6 message, verifying the pseudo-header
// checksum and any RFC 4884 extension structure. The returned message owns
// its body and extension payloads.
func UnmarshalICMPv6(src, dst netip.Addr, b []byte) (*ICMPv6, error) {
	m := new(ICMPv6)
	if err := UnmarshalICMPv6Into(m, src, dst, b); err != nil {
		return nil, err
	}
	m.Body = append([]byte(nil), m.Body...)
	for i := range m.Extensions {
		m.Extensions[i].Payload = append([]byte(nil), m.Extensions[i].Payload...)
	}
	return m, nil
}

// UnmarshalICMPv6Into parses an ICMPv6 message into m without allocating
// beyond m's own reusable storage: m.Body and extension payloads alias b,
// and m.Extensions reuses its previous capacity. Verification matches
// UnmarshalICMPv6.
func UnmarshalICMPv6Into(m *ICMPv6, src, dst netip.Addr, b []byte) error {
	if len(b) < icmpHeaderLen {
		return ErrShortPacket
	}
	if icmp6Checksum(src, dst, b) != 0 {
		return ErrBadChecksum
	}
	ext := m.Extensions[:0]
	*m = ICMPv6{Type: b[0], Code: b[1]}
	switch {
	case m.Type == ICMPv6EchoRequest || m.Type == ICMPv6EchoReply:
		m.ID = binary.BigEndian.Uint16(b[4:])
		m.Seq = binary.BigEndian.Uint16(b[6:])
		m.Body = b[icmpHeaderLen:]
	case m.IsError():
		units := int(b[4])
		rest := b[icmpHeaderLen:]
		if units == 0 {
			m.Body = rest
			return nil
		}
		origLen := units * 8
		if origLen < origDatagramPadLen {
			return fmt.Errorf("%w: length field %d units", ErrBadExtension, units)
		}
		if len(rest) < origLen {
			return fmt.Errorf("%w: original datagram truncated", ErrBadExtension)
		}
		m.Body = trimOriginal(rest[:origLen])
		objs, err := appendUnmarshaledExtensions(ext, rest[origLen:])
		if err != nil {
			return err
		}
		m.Extensions = objs
	default:
		return fmt.Errorf("%w: unsupported ICMPv6 type %d", ErrBadHeader, m.Type)
	}
	return nil
}

// MPLSStack extracts the RFC 4950 label stack object, if present — 6PE
// LSRs quote the v4-transport labels under IPv6 payloads exactly like
// their v4 counterparts.
func (m *ICMPv6) MPLSStack() (stack []byte, ok bool) {
	for _, o := range m.Extensions {
		if o.Class == ClassMPLSLabelStack && o.CType == CTypeIncomingStack {
			return o.Payload, true
		}
	}
	return nil, false
}

// icmp6Checksum folds the IPv6 pseudo-header (RFC 8200 §8.1) and message.
func icmp6Checksum(src, dst netip.Addr, msg []byte) uint16 {
	var pseudo [40]byte
	s, d := src.As16(), dst.As16()
	copy(pseudo[0:16], s[:])
	copy(pseudo[16:32], d[:])
	binary.BigEndian.PutUint32(pseudo[32:], uint32(len(msg)))
	pseudo[39] = ProtoICMPv6
	return finish(sum(msg, sum(pseudo[:], 0)))
}
