package pkt

import (
	"net/netip"
	"testing"
)

func a6(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestIPv6RoundTrip(t *testing.T) {
	in := &IPv6{
		TrafficClass: 0x20,
		FlowLabel:    0xabcde,
		NextHeader:   ProtoICMPv6,
		HopLimit:     64,
		Src:          a6("2001:db8::1"),
		Dst:          a6("2001:db8::2"),
		Payload:      []byte("hello v6"),
	}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != IPv6HeaderLen+len(in.Payload) {
		t.Fatalf("len = %d", len(b))
	}
	out, err := UnmarshalIPv6(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.TrafficClass != in.TrafficClass || out.FlowLabel != in.FlowLabel ||
		out.NextHeader != in.NextHeader || out.HopLimit != in.HopLimit ||
		out.Src != in.Src || out.Dst != in.Dst || string(out.Payload) != "hello v6" {
		t.Errorf("round trip: %+v", out)
	}
}

func TestIPv6Validation(t *testing.T) {
	if _, err := (&IPv6{Src: a6("10.0.0.1"), Dst: a6("2001:db8::2")}).Marshal(); err == nil {
		t.Error("IPv4 source accepted in an IPv6 packet")
	}
	if _, err := (&IPv6{Src: a6("2001:db8::1"), Dst: a6("2001:db8::2"), FlowLabel: 1 << 20}).Marshal(); err == nil {
		t.Error("oversized flow label accepted")
	}
	if _, err := UnmarshalIPv6(make([]byte, 39)); err != ErrShortPacket {
		t.Error("short packet accepted")
	}
	in := &IPv6{Src: a6("2001:db8::1"), Dst: a6("2001:db8::2"), HopLimit: 1}
	b, _ := in.Marshal()
	b[0] = 4 << 4
	if _, err := UnmarshalIPv6(b); err != ErrBadVersion {
		t.Errorf("version check: %v", err)
	}
}

func TestSRHRoundTrip(t *testing.T) {
	in := &SRH{
		NextHeader:   ProtoICMPv6,
		SegmentsLeft: 1,
		Flags:        0,
		Tag:          7,
		Segments: []netip.Addr{
			a6("2001:db8:0:7::1"), // final segment (index 0)
			a6("2001:db8:0:4::1"),
		},
	}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := UnmarshalSRH(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("consumed %d of %d", n, len(b))
	}
	if out.SegmentsLeft != 1 || out.Tag != 7 || len(out.Segments) != 2 {
		t.Errorf("round trip: %+v", out)
	}
	if out.Segments[0] != in.Segments[0] || out.Segments[1] != in.Segments[1] {
		t.Errorf("segments: %v", out.Segments)
	}
	active, ok := out.ActiveSegment()
	if !ok || active != a6("2001:db8:0:4::1") {
		t.Errorf("active = %v, %v", active, ok)
	}
}

func TestSRHInsideIPv6(t *testing.T) {
	// A full SRv6 packet: IPv6(next=routing) carrying an SRH.
	srh := &SRH{NextHeader: ProtoICMPv6, SegmentsLeft: 2,
		Segments: []netip.Addr{a6("fc00::3"), a6("fc00::2"), a6("fc00::1")}}
	sb, err := srh.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ip := &IPv6{NextHeader: ProtoIPv6Routing, HopLimit: 63,
		Src: a6("2001:db8::9"), Dst: a6("fc00::1"), Payload: sb}
	wire, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rx, err := UnmarshalIPv6(wire)
	if err != nil {
		t.Fatal(err)
	}
	if rx.NextHeader != ProtoIPv6Routing {
		t.Fatalf("next header %d", rx.NextHeader)
	}
	h, _, err := UnmarshalSRH(rx.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if act, ok := h.ActiveSegment(); !ok || act != a6("fc00::1") {
		t.Errorf("active segment %v %v", act, ok)
	}
}

func TestSRHValidation(t *testing.T) {
	if _, err := (&SRH{}).Marshal(); err == nil {
		t.Error("empty segment list accepted")
	}
	if _, err := (&SRH{Segments: []netip.Addr{a6("10.0.0.1").Unmap()}}).Marshal(); err == nil {
		t.Error("IPv4 segment accepted")
	}
	srh := &SRH{Segments: []netip.Addr{a6("fc00::1")}}
	b, _ := srh.Marshal()
	b[2] = 0 // not SRH routing type
	if _, _, err := UnmarshalSRH(b); err == nil {
		t.Error("non-SRH routing header accepted")
	}
	b[2] = 4
	if _, _, err := UnmarshalSRH(b[:10]); err == nil {
		t.Error("truncated SRH accepted")
	}
	// Segments-left beyond the list.
	srh2 := &SRH{SegmentsLeft: 9, Segments: []netip.Addr{a6("fc00::1")}}
	b2, _ := srh2.Marshal()
	if _, _, err := UnmarshalSRH(b2); err == nil {
		t.Error("out-of-range segments-left accepted")
	}
}
