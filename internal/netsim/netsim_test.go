package netsim

import (
	"net/netip"
	"testing"

	"arest/internal/mpls"
	"arest/internal/pkt"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

// udpProbe builds a serialized traceroute-style UDP probe.
func udpProbe(src, dst netip.Addr, ttl uint8, dport uint16) []byte {
	u := &pkt.UDP{SrcPort: 33434, DstPort: dport, Payload: []byte("probe-payload")}
	ub, err := u.Marshal(src, dst)
	if err != nil {
		panic(err)
	}
	ip := &pkt.IPv4{TTL: ttl, Protocol: pkt.ProtoUDP, ID: uint16(ttl), Src: src, Dst: dst, Payload: ub}
	b, err := ip.Marshal()
	if err != nil {
		panic(err)
	}
	return b
}

func echoProbe(src, dst netip.Addr, ttl uint8, id uint16) []byte {
	m := &pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: id, Seq: 1, Body: []byte("ping")}
	mb, err := m.Marshal()
	if err != nil {
		panic(err)
	}
	ip := &pkt.IPv4{TTL: ttl, Protocol: pkt.ProtoICMP, ID: 9, Src: src, Dst: dst, Payload: mb}
	b, err := ip.Marshal()
	if err != nil {
		panic(err)
	}
	return b
}

type hopReply struct {
	from     netip.Addr
	icmpType uint8
	icmpCode uint8
	stack    mpls.Stack
	replyTTL uint8
}

func parseReply(t *testing.T, b []byte) *hopReply {
	t.Helper()
	if b == nil {
		return nil
	}
	ip, err := pkt.UnmarshalIPv4(b)
	if err != nil {
		t.Fatalf("reply IP: %v", err)
	}
	m, err := pkt.UnmarshalICMP(ip.Payload)
	if err != nil {
		t.Fatalf("reply ICMP: %v", err)
	}
	h := &hopReply{from: ip.Src, icmpType: m.Type, icmpCode: m.Code, replyTTL: ip.TTL}
	if s, ok := m.MPLSStack(); ok {
		h.stack = s
	}
	return h
}

// chain is the canonical test topology:
//
//	vp -- GW(as 65000, plain IP) -- PE1 -- P1 -- P2 -- P3 -- PE2 -- target
//
// PE1..PE2 are in AS 100. PE1 is the ingress LER whose Mode decides the
// encapsulation; the target host hangs off PE2.
type chain struct {
	net     *Network
	vp      netip.Addr
	target  netip.Addr
	gw      *Router
	pe1     *Router
	ps      []*Router // P1..P3
	pe2     *Router
	pathLen int // IP hop count from vp gateway to target (routers only)
}

type chainOpt func(*chainCfg)

type chainCfg struct {
	mode         TunnelMode
	vendor       mpls.Vendor
	ttlPropagate bool
	rfc4950      bool
	sr, ldp      bool
	interior     int
}

func withMode(m TunnelMode) chainOpt    { return func(c *chainCfg) { c.mode = m } }
func withPropagate(v bool) chainOpt     { return func(c *chainCfg) { c.ttlPropagate = v } }
func withRFC4950(v bool) chainOpt       { return func(c *chainCfg) { c.rfc4950 = v } }
func withVendor(v mpls.Vendor) chainOpt { return func(c *chainCfg) { c.vendor = v } }
func withPlanes(sr, ldp bool) chainOpt  { return func(c *chainCfg) { c.sr, c.ldp = sr, ldp } }
func withInterior(n int) chainOpt       { return func(c *chainCfg) { c.interior = n } }

func buildChain(t *testing.T, opts ...chainOpt) *chain {
	t.Helper()
	cfg := chainCfg{mode: ModeSR, vendor: mpls.VendorCisco, ttlPropagate: true, rfc4950: true, sr: true, ldp: false, interior: 3}
	for _, o := range opts {
		o(&cfg)
	}
	n := New(42)
	prof := DefaultProfile(cfg.vendor)
	prof.TTLPropagate = cfg.ttlPropagate
	prof.RFC4950 = cfg.rfc4950

	gw := n.AddRouter(RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: DefaultProfile(mpls.VendorLinux), Mode: ModeIP})

	mk := func(name string) *Router {
		return n.AddRouter(RouterConfig{Name: name, ASN: 100, Vendor: cfg.vendor,
			Profile: prof, SREnabled: cfg.sr, LDPEnabled: cfg.ldp, Mode: cfg.mode})
	}
	pe1 := mk("pe1")
	var ps []*Router
	prevR := pe1
	n.Connect(gw.ID, pe1.ID, 10)
	for i := 0; i < cfg.interior; i++ {
		p := mk("p" + string(rune('1'+i)))
		n.Connect(prevR.ID, p.ID, 10)
		prevR = p
		ps = append(ps, p)
	}
	pe2 := mk("pe2")
	n.Connect(prevR.ID, pe2.ID, 10)

	vp := a("172.16.0.10")
	target := a("100.1.0.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	n.Compute()
	return &chain{net: n, vp: vp, target: target, gw: gw, pe1: pe1, ps: ps, pe2: pe2,
		pathLen: cfg.interior + 3}
}

// traceUDP runs a raw TTL sweep and returns one parsed reply per TTL.
func (c *chain) traceUDP(t *testing.T, dst netip.Addr, maxTTL int, dport uint16) []*hopReply {
	t.Helper()
	var hops []*hopReply
	for ttl := 1; ttl <= maxTTL; ttl++ {
		d, err := c.net.Send(c.vp, udpProbe(c.vp, dst, uint8(ttl), dport))
		if err != nil {
			t.Fatalf("send ttl=%d: %v", ttl, err)
		}
		h := parseReply(t, d.Reply)
		hops = append(hops, h)
		if h != nil && h.icmpType == pkt.ICMPDestUnreachable {
			break
		}
	}
	return hops
}

func TestIGPShortestPaths(t *testing.T) {
	c := buildChain(t)
	if d := c.net.Dist(c.gw.ID, c.pe2.ID); d != 50 {
		t.Errorf("gw->pe2 cost = %d, want 50", d)
	}
	if l := c.net.PathLen(c.gw.ID, c.pe2.ID, 1); l != 5 {
		t.Errorf("gw->pe2 hops = %d, want 5", l)
	}
	if l := c.net.PathLen(c.pe1.ID, c.pe1.ID, 1); l != 0 {
		t.Errorf("self path = %d", l)
	}
}

func TestECMPFlowStability(t *testing.T) {
	// Diamond: s - (a|b) - d. Same flow must always take the same branch.
	n := New(7)
	s := n.AddRouter(RouterConfig{ASN: 1, Vendor: mpls.VendorCisco, Profile: DefaultProfile(mpls.VendorCisco)})
	ra := n.AddRouter(RouterConfig{ASN: 1, Vendor: mpls.VendorCisco, Profile: DefaultProfile(mpls.VendorCisco)})
	rb := n.AddRouter(RouterConfig{ASN: 1, Vendor: mpls.VendorCisco, Profile: DefaultProfile(mpls.VendorCisco)})
	d := n.AddRouter(RouterConfig{ASN: 1, Vendor: mpls.VendorCisco, Profile: DefaultProfile(mpls.VendorCisco)})
	n.Connect(s.ID, ra.ID, 10)
	n.Connect(s.ID, rb.ID, 10)
	n.Connect(ra.ID, d.ID, 10)
	n.Connect(rb.ID, d.ID, 10)
	n.Compute()

	nh1, ok := n.NextHop(s.ID, d.ID, 12345)
	if !ok {
		t.Fatal("no next hop")
	}
	for i := 0; i < 10; i++ {
		nh, _ := n.NextHop(s.ID, d.ID, 12345)
		if nh != nh1 {
			t.Fatal("same flow took different branches")
		}
	}
	// Different flows should eventually use both branches.
	seen := map[RouterID]bool{}
	for f := uint64(0); f < 64; f++ {
		nh, _ := n.NextHop(s.ID, d.ID, f)
		seen[nh] = true
	}
	if len(seen) != 2 {
		t.Errorf("ECMP used %d branches, want 2", len(seen))
	}
}

func TestPlainIPTraceroute(t *testing.T) {
	c := buildChain(t, withMode(ModeIP), withPlanes(false, false))
	hops := c.traceUDP(t, c.target, 10, 33434)
	// gw, pe1, p1..p3, pe2, then the host.
	if len(hops) != c.pathLen+1 {
		t.Fatalf("got %d hops, want %d", len(hops), c.pathLen+1)
	}
	for i, h := range hops[:c.pathLen] {
		if h == nil {
			t.Fatalf("hop %d: no reply", i+1)
		}
		if h.icmpType != pkt.ICMPTimeExceeded {
			t.Errorf("hop %d: type %d", i+1, h.icmpType)
		}
		if h.stack != nil {
			t.Errorf("hop %d: unexpected MPLS stack %v", i+1, h.stack)
		}
	}
	last := hops[c.pathLen]
	if last.icmpType != pkt.ICMPDestUnreachable || last.icmpCode != pkt.CodePortUnreachable {
		t.Errorf("last hop: %d/%d", last.icmpType, last.icmpCode)
	}
	if last.from != c.target {
		t.Errorf("last hop from %s, want %s", last.from, c.target)
	}
}

func TestHopSourceIsIncomingInterface(t *testing.T) {
	c := buildChain(t, withMode(ModeIP), withPlanes(false, false))
	hops := c.traceUDP(t, c.target, 10, 33434)
	// Hop 2 is pe1; its reply must come from pe1's interface facing gw.
	want, _ := c.pe1.InterfaceTo(c.gw.ID)
	if hops[1].from != want {
		t.Errorf("pe1 replied from %s, want %s", hops[1].from, want)
	}
}

func TestExplicitSRTunnelConsecutiveLabels(t *testing.T) {
	c := buildChain(t) // SR, propagate, RFC4950 => explicit tunnel
	hops := c.traceUDP(t, c.target, 10, 33434)
	if len(hops) != c.pathLen+1 {
		t.Fatalf("got %d hops, want %d", len(hops), c.pathLen+1)
	}
	// PE1 pushes; P1..P3 and PE2 carry the node SID of PE2. With a shared
	// SRGB the same label must appear at every labeled hop.
	wantLabel := c.pe1.SRGB.Lo + uint32(c.pe2.NodeIndex())
	if hops[1].stack != nil {
		t.Errorf("ingress PE1 should not be labeled, got %v", hops[1].stack)
	}
	labeled := hops[2 : 2+len(c.ps)+1] // p1..p3, pe2
	for i, h := range labeled {
		if h.stack == nil {
			t.Fatalf("labeled hop %d: no stack", i)
		}
		if h.stack.Depth() != 1 {
			t.Errorf("labeled hop %d: depth %d", i, h.stack.Depth())
		}
		if h.stack[0].Label != wantLabel {
			t.Errorf("labeled hop %d: label %d, want %d", i, h.stack[0].Label, wantLabel)
		}
	}
	// The label must be in the Cisco SRGB (CVR precondition).
	if !mpls.CiscoSRGB.Contains(wantLabel) {
		t.Errorf("label %d outside Cisco SRGB", wantLabel)
	}
	// Quoted LSE TTL must be small (as received, near expiry).
	for i, h := range labeled {
		if h.stack[0].TTL != 1 {
			t.Errorf("labeled hop %d: quoted LSE TTL %d, want 1", i, h.stack[0].TTL)
		}
	}
}

func TestExplicitLDPTunnelDistinctLabels(t *testing.T) {
	c := buildChain(t, withMode(ModeLDP), withPlanes(false, true))
	hops := c.traceUDP(t, c.target, 10, 33434)
	if len(hops) != c.pathLen+1 {
		t.Fatalf("got %d hops, want %d", len(hops), c.pathLen+1)
	}
	// LDP with PHP: p1..p3 are labeled, pe2 receives unlabeled (implicit
	// null popped at p3).
	var labels []uint32
	for i, h := range hops[2 : 2+len(c.ps)] {
		if h.stack == nil {
			t.Fatalf("LSR hop %d: no stack", i)
		}
		labels = append(labels, h.stack[0].Label)
	}
	if hops[2+len(c.ps)].stack != nil {
		t.Errorf("PHP: pe2 should be unlabeled, got %v", hops[2+len(c.ps)].stack)
	}
	// Labels are locally significant: consecutive identical labels should
	// essentially never occur.
	for i := 1; i < len(labels); i++ {
		if labels[i] == labels[i-1] {
			t.Errorf("consecutive identical LDP labels %d at hops %d,%d", labels[i], i-1, i)
		}
	}
	// All labels from the Cisco dynamic pool, not the SRGB.
	for i, l := range labels {
		if !mpls.DynamicPool(mpls.VendorCisco).Contains(l) {
			t.Errorf("hop %d: label %d outside dynamic pool", i, l)
		}
	}
}

func TestOpaqueTunnel(t *testing.T) {
	// no ttl-propagate + RFC4950: interior hidden; the egress quotes one
	// LSE with a high TTL (255 - tunnel length + 1).
	c := buildChain(t, withPropagate(false))
	hops := c.traceUDP(t, c.target, 10, 33434)
	// Visible: gw, pe1, pe2(+quote), host. Interior p1..p3 hidden.
	if len(hops) != 4 {
		t.Fatalf("got %d visible hops, want 4 (interior hidden)", len(hops))
	}
	eh := hops[2]
	wantFrom, _ := c.pe2.InterfaceTo(c.ps[len(c.ps)-1].ID)
	if eh.from != wantFrom {
		t.Errorf("ending hop from %s, want %s (pe2)", eh.from, wantFrom)
	}
	if eh.stack == nil {
		t.Fatal("opaque ending hop must quote its LSE")
	}
	// LSE TTL started at 255 and was decremented by each upstream LSR
	// (p1..p3); the quote shows the stack as received: 255-3 = 252.
	if got := eh.stack[0].TTL; got != 252 {
		t.Errorf("opaque quoted LSE TTL = %d, want 252", got)
	}
}

func TestInvisibleTunnel(t *testing.T) {
	// no ttl-propagate + no RFC4950: interior hidden and no LSE anywhere.
	c := buildChain(t, withPropagate(false), withRFC4950(false))
	hops := c.traceUDP(t, c.target, 10, 33434)
	if len(hops) != 4 {
		t.Fatalf("got %d visible hops, want 4", len(hops))
	}
	for i, h := range hops {
		if h == nil {
			t.Fatalf("hop %d nil", i)
		}
		if h.stack != nil {
			t.Errorf("hop %d: stack %v in invisible tunnel", i, h.stack)
		}
	}
}

func TestImplicitTunnel(t *testing.T) {
	// ttl-propagate + no RFC4950: all hops visible, no LSEs quoted.
	c := buildChain(t, withRFC4950(false))
	hops := c.traceUDP(t, c.target, 10, 33434)
	if len(hops) != c.pathLen+1 {
		t.Fatalf("got %d hops, want %d", len(hops), c.pathLen+1)
	}
	for i, h := range hops {
		if h.stack != nil {
			t.Errorf("hop %d: stack %v in implicit tunnel", i, h.stack)
		}
	}
}

func TestInterfaceTargetsNotTunneled(t *testing.T) {
	// Probing an interface address must not be label-switched (FEC
	// granularity), which is what DPR/BRPR revelation exploits.
	c := buildChain(t, withPropagate(false)) // otherwise-opaque tunnel
	p2Iface, _ := c.ps[1].InterfaceTo(c.ps[0].ID)
	hops := c.traceUDP(t, p2Iface, 10, 33434)
	// gw, pe1, p1, then p2 answers the probe addressed to it.
	if len(hops) != 4 {
		t.Fatalf("got %d hops, want 4", len(hops))
	}
	if hops[2] == nil || hops[2].icmpType != pkt.ICMPTimeExceeded {
		t.Fatalf("p1 not revealed: %+v", hops[2])
	}
	if hops[2].stack != nil {
		t.Errorf("interface-target probe was labeled: %v", hops[2].stack)
	}
	last := hops[3]
	if last.icmpType != pkt.ICMPDestUnreachable || last.from != p2Iface {
		t.Errorf("target reply: type=%d from=%s", last.icmpType, last.from)
	}
}

func TestLoopbackTargetTunneled(t *testing.T) {
	c := buildChain(t)
	hops := c.traceUDP(t, c.pe2.Loopback, 10, 33434)
	// Loopbacks are FECs: probes toward pe2's loopback ride the LSP.
	if hops[2].stack == nil {
		t.Error("probe to loopback FEC was not tunneled")
	}
	last := hops[len(hops)-1]
	if last.icmpType != pkt.ICMPDestUnreachable || last.from != c.pe2.Loopback {
		t.Errorf("loopback delivery: type=%d from=%s", last.icmpType, last.from)
	}
}

func TestEchoReplyAndInitialTTLs(t *testing.T) {
	c := buildChain(t)
	// Ping p2's interface: Cisco signature is <echo 255, time-exc 255>.
	p2Iface, _ := c.ps[1].InterfaceTo(c.ps[0].ID)
	d, err := c.net.Send(c.vp, echoProbe(c.vp, p2Iface, 64, 77))
	if err != nil {
		t.Fatal(err)
	}
	h := parseReply(t, d.Reply)
	if h == nil || h.icmpType != pkt.ICMPEchoReply {
		t.Fatalf("no echo reply: %+v", h)
	}
	// Return distance gw->p2 is 3 routers + 1 host hop = 4: 255-4 = 251.
	if h.replyTTL != 251 {
		t.Errorf("echo reply TTL = %d, want 251", h.replyTTL)
	}
	if h.from != p2Iface {
		t.Errorf("echo reply from %s", h.from)
	}
}

func TestRespondsEchoFalse(t *testing.T) {
	c := buildChain(t)
	c.ps[1].Profile.RespondsEcho = false
	p2Iface, _ := c.ps[1].InterfaceTo(c.ps[0].ID)
	d, err := c.net.Send(c.vp, echoProbe(c.vp, p2Iface, 64, 78))
	if err != nil {
		t.Fatal(err)
	}
	if d.Reply != nil {
		t.Error("router with RespondsEcho=false replied to ping")
	}
}

func TestSilentRouter(t *testing.T) {
	c := buildChain(t)
	c.ps[0].Profile.RespondsICMP = false
	hops := c.traceUDP(t, c.target, 10, 33434)
	if hops[2] != nil {
		t.Errorf("silent router replied: %+v", hops[2])
	}
	if hops[3] == nil {
		t.Error("hop after silent router missing")
	}
}

func TestSRPolicyMultiLabelStack(t *testing.T) {
	c := buildChain(t)
	// Steer through p2 explicitly: [nodeSID(p2), nodeSID(pe2)].
	p2, pe2 := c.ps[1].ID, c.pe2.ID
	c.net.SRPolicy = func(ing *Router, egress RouterID, dst netip.Addr, flow uint64) SegmentList {
		if egress == pe2 {
			return SegmentList{{Node: p2}, {Node: pe2}}
		}
		return nil
	}
	hops := c.traceUDP(t, c.target, 10, 33434)
	// p1 sees depth-2 stack [sid(p2), sid(pe2)].
	h := hops[2]
	if h.stack.Depth() != 2 {
		t.Fatalf("p1 stack depth = %d, want 2: %v", h.stack.Depth(), h.stack)
	}
	wantTop := c.ps[0].SRGB.Lo + uint32(c.ps[1].NodeIndex())
	if h.stack[0].Label != wantTop {
		t.Errorf("p1 top label = %d, want %d", h.stack[0].Label, wantTop)
	}
	// After p2 pops its own SID, p3 sees depth-1 [sid(pe2)].
	h3 := hops[4]
	if h3.stack.Depth() != 1 {
		t.Fatalf("p3 stack depth = %d: %v", h3.stack.Depth(), h3.stack)
	}
	wantInner := c.ps[2].SRGB.Lo + uint32(c.pe2.NodeIndex())
	if h3.stack[0].Label != wantInner {
		t.Errorf("p3 label = %d, want %d", h3.stack[0].Label, wantInner)
	}
	// Path length unchanged (p2 was already on the shortest path).
	if len(hops) != c.pathLen+1 {
		t.Errorf("hops = %d, want %d", len(hops), c.pathLen+1)
	}
}

func TestAdjacencySIDSteering(t *testing.T) {
	// Square topology: s-a-d and s-b-d, with a-d expensive so shortest is
	// via b. An adjacency SID on a->d forces the expensive link.
	n := New(3)
	mk := func(name string) *Router {
		return n.AddRouter(RouterConfig{Name: name, ASN: 1, Vendor: mpls.VendorCisco,
			Profile: DefaultProfile(mpls.VendorCisco), SREnabled: true, Mode: ModeSR})
	}
	s, ra, rb, d := mk("s"), mk("a"), mk("b"), mk("d")
	n.Connect(s.ID, ra.ID, 10)
	n.Connect(s.ID, rb.ID, 10)
	n.Connect(ra.ID, d.ID, 100)
	n.Connect(rb.ID, d.ID, 10)
	vp := a("172.16.0.1")
	tgt := a("100.1.0.99")
	n.AddHost(vp, s.ID)
	n.AddHost(tgt, d.ID)
	n.SRPolicy = func(ing *Router, egress RouterID, dst netip.Addr, flow uint64) SegmentList {
		return SegmentList{{Node: ra.ID}, {From: ra.ID, To: d.ID, Adj: true}, {Node: d.ID}}
	}
	n.Compute()

	del, err := n.Send(vp, udpProbe(vp, tgt, 32, 33434))
	if err != nil {
		t.Fatal(err)
	}
	// Path must go s -> a -> d, not via b.
	want := []RouterID{s.ID, ra.ID, d.ID}
	if len(del.Path) != len(want) {
		t.Fatalf("path = %v, want %v", del.Path, want)
	}
	for i := range want {
		if del.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v", del.Path, want)
		}
	}
	// Adjacency SID came from the Cisco SRLB.
	sid, ok := ra.AdjacencySID(d.ID)
	if !ok || !mpls.CiscoSRLB.Contains(sid) {
		t.Errorf("adjacency SID %d (ok=%v) not in Cisco SRLB", sid, ok)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint32 {
		c := buildChain(t, withMode(ModeLDP), withPlanes(false, true))
		hops := c.traceUDP(t, c.target, 10, 33434)
		var out []uint32
		for _, h := range hops {
			if h != nil && h.stack != nil {
				out = append(out, h.stack[0].Label)
			}
		}
		return out
	}
	a1, a2 := run(), run()
	if len(a1) != len(a2) || len(a1) == 0 {
		t.Fatalf("label runs differ in length: %v vs %v", a1, a2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("run diverged at %d: %d vs %d", i, a1[i], a2[i])
		}
	}
}

func TestUnroutedDestination(t *testing.T) {
	c := buildChain(t)
	d, err := c.net.Send(c.vp, udpProbe(c.vp, a("203.0.113.99"), 12, 33434))
	if err != nil {
		t.Fatal(err)
	}
	if d.Reply != nil {
		t.Error("unrouted destination produced a reply")
	}
}

func TestSendErrors(t *testing.T) {
	c := buildChain(t)
	if _, err := c.net.Send(a("9.9.9.9"), udpProbe(a("9.9.9.9"), c.target, 3, 33434)); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := c.net.Send(c.vp, []byte{1, 2, 3}); err == nil {
		t.Error("garbage probe accepted")
	}
	fresh := New(1)
	r := fresh.AddRouter(RouterConfig{ASN: 1, Vendor: mpls.VendorCisco, Profile: DefaultProfile(mpls.VendorCisco)})
	fresh.AddHost(a("172.16.5.5"), r.ID)
	if _, err := fresh.Send(a("172.16.5.5"), udpProbe(a("172.16.5.5"), a("10.1.0.1"), 3, 33434)); err != ErrNotComputed {
		t.Errorf("err = %v, want ErrNotComputed", err)
	}
}

func TestIPIDMonotone(t *testing.T) {
	c := buildChain(t)
	p2Iface, _ := c.ps[1].InterfaceTo(c.ps[0].ID)
	var ids []uint16
	for i := 0; i < 5; i++ {
		d, err := c.net.Send(c.vp, udpProbe(c.vp, p2Iface, 32, uint16(33434+i)))
		if err != nil {
			t.Fatal(err)
		}
		ip, err := pkt.UnmarshalIPv4(d.Reply)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ip.ID)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			t.Errorf("IP-ID did not advance: %v", ids)
		}
	}
}

func TestServiceSIDUnshrinkingStack(t *testing.T) {
	c := buildChain(t)
	svc := c.net.AllocateServiceSID(c.pe2, "fw-chain")
	pe2 := c.pe2.ID
	c.net.SRPolicy = func(ing *Router, egress RouterID, dst netip.Addr, flow uint64) SegmentList {
		if egress == pe2 {
			return SegmentList{{Node: pe2}, {Service: true, ServiceLabel: svc}}
		}
		return nil
	}
	hops := c.traceUDP(t, c.target, 10, 33434)
	if len(hops) != c.pathLen+1 {
		t.Fatalf("hops = %d, want %d", len(hops), c.pathLen+1)
	}
	// Every labeled hop, including the last LSR, must show depth 2: the
	// transport SID on top and the service SID at the bottom (the
	// "unshrinking stack" signature).
	for i := 2; i < 2+len(c.ps)+1; i++ {
		h := hops[i]
		if h.stack.Depth() != 2 {
			t.Fatalf("hop %d stack depth = %d, want 2: %v", i, h.stack.Depth(), h.stack)
		}
		if h.stack[1].Label != svc {
			t.Errorf("hop %d bottom label = %d, want service SID %d", i, h.stack[1].Label, svc)
		}
	}
	// The packet is still delivered: pe2 pops both labels.
	last := hops[len(hops)-1]
	if last.icmpType != pkt.ICMPDestUnreachable {
		t.Errorf("not delivered: %+v", last)
	}
}

func TestSRPHPEnabled(t *testing.T) {
	// With SR penultimate-hop popping, the last LSR pops the node SID and
	// the egress receives plain IP.
	n := New(42)
	prof := DefaultProfile(mpls.VendorCisco)
	gw := n.AddRouter(RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: DefaultProfile(mpls.VendorLinux), Mode: ModeIP})
	mk := func(name string) *Router {
		return n.AddRouter(RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: ModeSR})
	}
	pe1, p1, p2, pe2 := mk("pe1"), mk("p1"), mk("p2"), mk("pe2")
	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, p1.ID, 10)
	n.Connect(p1.ID, p2.ID, 10)
	n.Connect(p2.ID, pe2.ID, 10)
	n.SRPHPEnabled = true
	vp := a("172.16.0.10")
	target := a("100.1.0.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	n.Compute()
	c := &chain{net: n, vp: vp, target: target, gw: gw, pe1: pe1, ps: []*Router{p1, p2}, pe2: pe2, pathLen: 5}

	hops := c.traceUDP(t, c.target, 10, 33434)
	if len(hops) != 6 {
		t.Fatalf("hops = %d, want 6", len(hops))
	}
	// p1 and p2 labeled; pe2 plain (PHP popped at p2).
	if hops[2].stack == nil || hops[3].stack == nil {
		t.Error("interior LSRs unlabeled")
	}
	if hops[4].stack != nil {
		t.Errorf("PHP egress labeled: %v", hops[4].stack)
	}
}

func TestCustomSRGBUsedOnWire(t *testing.T) {
	n := New(42)
	custom := mpls.LabelRange{Lo: 400000, Hi: 407999}
	prof := DefaultProfile(mpls.VendorCisco)
	gw := n.AddRouter(RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: DefaultProfile(mpls.VendorLinux), Mode: ModeIP})
	mk := func(name string) *Router {
		return n.AddRouter(RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: ModeSR, SRGB: custom})
	}
	pe1, p1, pe2 := mk("pe1"), mk("p1"), mk("pe2")
	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, p1.ID, 10)
	n.Connect(p1.ID, pe2.ID, 10)
	vp := a("172.16.0.10")
	target := a("100.1.0.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	n.Compute()
	c := &chain{net: n, vp: vp, target: target, gw: gw, pe1: pe1, ps: []*Router{p1}, pe2: pe2}

	hops := c.traceUDP(t, c.target, 10, 33434)
	labeled := 0
	for _, h := range hops {
		if h != nil && h.stack != nil {
			labeled++
			if !custom.Contains(h.stack[0].Label) {
				t.Errorf("label %d outside custom SRGB %v", h.stack[0].Label, custom)
			}
			if mpls.CiscoSRGB.Contains(h.stack[0].Label) {
				t.Errorf("label %d still in the vendor default range", h.stack[0].Label)
			}
		}
	}
	if labeled == 0 {
		t.Fatal("no labels observed")
	}
}

func TestJuniperAdjacencySIDsFromDynamicPool(t *testing.T) {
	n := New(42)
	prof := DefaultProfile(mpls.VendorJuniper)
	r1 := n.AddRouter(RouterConfig{ASN: 1, Vendor: mpls.VendorJuniper, Profile: prof, SREnabled: true, Mode: ModeSR})
	r2 := n.AddRouter(RouterConfig{ASN: 1, Vendor: mpls.VendorJuniper, Profile: prof, SREnabled: true, Mode: ModeSR})
	n.Connect(r1.ID, r2.ID, 10)
	n.Compute()
	sid, ok := r1.AdjacencySID(r2.ID)
	if !ok {
		t.Fatal("no adjacency SID")
	}
	// Juniper has no SRLB: the SID must come from the dynamic pool.
	if !mpls.DynamicPool(mpls.VendorJuniper).Contains(sid) {
		t.Errorf("adjacency SID %d outside the Juniper dynamic pool", sid)
	}
}

func TestUniformTunnelPreservesHopCount(t *testing.T) {
	// Property: with ttl-propagate (uniform model) the traceroute hop count
	// to the destination is identical whether the domain runs IP, LDP, or
	// SR — tunnels are TTL-transparent.
	counts := map[string]int{}
	for _, m := range []struct {
		name string
		mode TunnelMode
		sr   bool
		ldp  bool
	}{
		{"ip", ModeIP, false, false},
		{"ldp", ModeLDP, false, true},
		{"sr", ModeSR, true, false},
	} {
		c := buildChain(t, withMode(m.mode), withPlanes(m.sr, m.ldp))
		hops := c.traceUDP(t, c.target, 12, 33434)
		counts[m.name] = len(hops)
	}
	if counts["ip"] != counts["ldp"] || counts["ip"] != counts["sr"] {
		t.Errorf("hop counts differ across modes: %v", counts)
	}
}

func TestPipeTunnelShortensPath(t *testing.T) {
	// Property: the pipe model hides exactly the tunnel interior.
	uni := buildChain(t)
	pipe := buildChain(t, withPropagate(false))
	uniHops := uni.traceUDP(t, uni.target, 12, 33434)
	pipeHops := pipe.traceUDP(t, pipe.target, 12, 33434)
	if want := len(uniHops) - len(uni.ps); len(pipeHops) != want {
		t.Errorf("pipe hops = %d, want %d", len(pipeHops), want)
	}
}

func TestICMPLossAndRetries(t *testing.T) {
	c := buildChain(t, withMode(ModeIP), withPlanes(false, false))
	// Heavy but not total loss on p2.
	c.ps[1].Profile.ICMPLossProb = 0.6
	// Deterministic: the same probe is lost (or not) every time.
	probe := udpProbe(c.vp, c.target, 4, 33434)
	d1, err := c.net.Send(c.vp, probe)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.net.Send(c.vp, probe)
	if err != nil {
		t.Fatal(err)
	}
	if (d1.Reply == nil) != (d2.Reply == nil) {
		t.Error("loss is not deterministic per probe")
	}
	// Across many distinct probes, some are lost and some survive.
	lost, got := 0, 0
	for i := 0; i < 40; i++ {
		u := &pkt.UDP{SrcPort: 33434, DstPort: uint16(33434 + i), Payload: []byte("probe")}
		ub, _ := u.Marshal(c.vp, c.target)
		ip := &pkt.IPv4{TTL: 4, Protocol: pkt.ProtoUDP, ID: uint16(i * 17), Src: c.vp, Dst: c.target, Payload: ub}
		w, _ := ip.Marshal()
		d, err := c.net.Send(c.vp, w)
		if err != nil {
			t.Fatal(err)
		}
		if d.Reply == nil {
			lost++
		} else {
			got++
		}
	}
	if lost == 0 || got == 0 {
		t.Errorf("loss model degenerate: lost=%d got=%d", lost, got)
	}
}

func TestOwnerCacheConsistency(t *testing.T) {
	// The memoized Owner must agree with a fresh scan and survive Compute.
	c := buildChain(t)
	dst := c.target
	id1, ok1 := c.net.Owner(dst)
	id2, ok2 := c.net.Owner(dst) // cached path
	if id1 != id2 || ok1 != ok2 {
		t.Fatalf("cache diverged: %v,%v vs %v,%v", id1, ok1, id2, ok2)
	}
	// A topology change plus Compute invalidates the cache: attach the
	// same address behind a different router and re-resolve.
	other := c.ps[0]
	c.net.AdvertisePrefix(other.ID, netip.PrefixFrom(dst, 32))
	c.net.Compute()
	id3, _ := c.net.Owner(dst)
	if id3 != other.ID {
		t.Errorf("stale owner after Compute: got %v want %v", id3, other.ID)
	}
}

func TestTunnelEligible(t *testing.T) {
	c := buildChain(t)
	if !c.net.TunnelEligible(c.target) {
		t.Error("host target should be tunnel-eligible")
	}
	if !c.net.TunnelEligible(c.pe2.Loopback) {
		t.Error("loopback should be tunnel-eligible")
	}
	iface, _ := c.ps[0].InterfaceTo(c.pe1.ID)
	if c.net.TunnelEligible(iface) {
		t.Error("interface address should not be tunnel-eligible")
	}
}
