package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"arest/internal/lint"
)

// NoLockCopy builds the nolockcopy analyzer — home-grown copylocks for the
// concurrency model of DESIGN.md §7: the obs instruments and netsim
// routers carry sync.Mutex / sync.Map / atomic.Uint* state, and a by-value
// copy forks that state (two goroutines lock different mutexes, counters
// split silently). Flagged, for any type that transitively contains a
// sync.* or sync/atomic value:
//
//   - value (non-pointer) method receivers and function parameters;
//   - assignments and var initializers copying an existing value
//     (identifier, selector, index, or dereference on the right-hand
//     side — fresh composite literals are fine);
//   - range statements whose element variable copies such a value;
//   - returning a dereferenced value (return *r re-copies the locks).
func NoLockCopy() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "nolockcopy",
		Doc:  "forbid by-value copies of types containing sync.* or sync/atomic values",
		Run:  runNoLockCopy,
	}
}

func runNoLockCopy(pass *lint.Pass) error {
	lc := &lockCache{seen: map[types.Type]bool{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkFuncSig(pass, lc, fd)
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					checkAssignCopy(pass, lc, n)
				case *ast.GenDecl:
					checkVarCopy(pass, lc, n)
				case *ast.RangeStmt:
					checkRangeCopy(pass, lc, n)
				case *ast.ReturnStmt:
					checkReturnCopy(pass, lc, n)
				case *ast.FuncLit:
					checkFuncLitSig(pass, lc, n)
				}
				return true
			})
		}
	}
	return nil
}

// lockCache memoizes containsLock over types (lock structures recur:
// Registry holds maps of instruments holding atomics).
type lockCache struct {
	seen map[types.Type]bool
}

// containsLock reports whether t, passed or assigned by value, would copy
// a sync.* or sync/atomic value.
func (lc *lockCache) containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := lc.seen[t]; ok {
		return v
	}
	lc.seen[t] = false // break cycles; real answer stored below
	v := lc.computeLock(t)
	lc.seen[t] = v
	return v
}

func (lc *lockCache) computeLock(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				// Every exported sync/atomic type is copy-hostile
				// (Mutex, WaitGroup, Pool, Map, Once, atomic.Uint64, ...).
				// noCopy itself is unexported but only reachable through
				// them.
				return true
			}
		}
		return lc.containsLock(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lc.containsLock(t.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return lc.containsLock(t.Elem())
	}
	// Pointers, maps, slices, channels, interfaces, basics: copying the
	// reference does not copy the lock.
	return false
}

// lockName renders the offending type for messages.
func lockName(t types.Type) string { return types.TypeString(t, nil) }

// checkFuncSig flags value receivers and parameters of lock-bearing types.
func checkFuncSig(pass *lint.Pass, lc *lockCache, fd *ast.FuncDecl) {
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			reportLockField(pass, lc, field, "method %s has a value receiver copying %s; use a pointer receiver", fd.Name.Name)
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			reportLockField(pass, lc, field, "parameter of %s copies %s by value; pass a pointer", fd.Name.Name)
		}
	}
}

// checkFuncLitSig flags lock-bearing value parameters of function
// literals.
func checkFuncLitSig(pass *lint.Pass, lc *lockCache, fl *ast.FuncLit) {
	if fl.Type.Params == nil {
		return
	}
	for _, field := range fl.Type.Params.List {
		reportLockField(pass, lc, field, "parameter of %s copies %s by value; pass a pointer", "func literal")
	}
}

func reportLockField(pass *lint.Pass, lc *lockCache, field *ast.Field, format, fname string) {
	tv, ok := pass.Info.Types[field.Type]
	if !ok || tv.Type == nil {
		return
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	if lc.containsLock(tv.Type) {
		pass.Report(field.Pos(), format+" (DESIGN.md §7)", fname, lockName(tv.Type))
	}
}

// copiesExisting reports whether rhs reads an existing value (rather than
// constructing a fresh one): identifiers, selectors, index expressions and
// dereferences copy; composite literals, calls and conversions do not
// duplicate shared state.
func copiesExisting(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// checkAssignCopy flags x := y / x = y where y is an existing lock-bearing
// value.
func checkAssignCopy(pass *lint.Pass, lc *lockCache, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value call form: the call built the values fresh
	}
	for i, rhs := range as.Rhs {
		if !copiesExisting(rhs) {
			continue
		}
		tv, ok := pass.Info.Types[rhs]
		if !ok || tv.Type == nil || !lc.containsLock(tv.Type) {
			continue
		}
		if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		pass.Report(as.Pos(),
			"assignment copies %s by value; share it through a pointer (DESIGN.md §7)", lockName(tv.Type))
	}
}

// checkVarCopy flags `var x = y` initializers copying lock-bearing values.
func checkVarCopy(pass *lint.Pass, lc *lockCache, gd *ast.GenDecl) {
	if gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			if !copiesExisting(v) {
				continue
			}
			tv, ok := pass.Info.Types[v]
			if !ok || tv.Type == nil || !lc.containsLock(tv.Type) {
				continue
			}
			pass.Report(vs.Pos(),
				"var initializer copies %s by value; share it through a pointer (DESIGN.md §7)", lockName(tv.Type))
		}
	}
}

// checkRangeCopy flags `for _, v := range xs` where the element variable
// copies a lock-bearing value out of the container.
func checkRangeCopy(pass *lint.Pass, lc *lockCache, rs *ast.RangeStmt) {
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		// The := form defines the variable, so its type lives on the
		// object (Defs), not in the expression type map.
		obj := pass.ObjectOf(id)
		if obj == nil || obj.Type() == nil || !lc.containsLock(obj.Type()) {
			continue
		}
		pass.Report(e.Pos(),
			"range variable %s copies %s per iteration; range over indices or pointers (DESIGN.md §7)", id.Name, lockName(obj.Type()))
	}
}

// checkReturnCopy flags `return *p` where the dereference copies a
// lock-bearing value out.
func checkReturnCopy(pass *lint.Pass, lc *lockCache, ret *ast.ReturnStmt) {
	for _, res := range ret.Results {
		star, ok := ast.Unparen(res).(*ast.StarExpr)
		if !ok {
			continue
		}
		tv, ok := pass.Info.Types[star]
		if !ok || tv.Type == nil || !lc.containsLock(tv.Type) {
			continue
		}
		pass.Report(res.Pos(),
			"return dereferences and copies %s; return the pointer (DESIGN.md §7)", lockName(tv.Type))
	}
}
