// Package a is noerrdrop testdata: discarded error returns in an audited
// package.
package a

import "errors"

func mayFail() error          { return errors.New("x") }
func pair() (int, error)      { return 0, errors.New("x") }
func value() int              { return 3 }
func twoErrs() (error, error) { return nil, nil }

type conn struct{}

func (conn) Close() error { return nil }

func bad() {
	mayFail()    // want "result of mayFail contains an error that is silently discarded"
	pair()       // want "result of pair contains an error that is silently discarded"
	twoErrs()    // want "result of twoErrs contains an error that is silently discarded"
	go mayFail() // want "result of mayFail contains an error that is silently discarded"
	var c conn
	defer c.Close() // want "result of c.Close contains an error that is silently discarded"
	v, _ := pair() // want "error result of pair assigned to _"
	_ = v
	_, _ = value(), mayFail() // want "error result of mayFail assigned to _"
}

func good() error {
	value() // no error among the results: fine
	if err := mayFail(); err != nil {
		return err
	}
	v, err := pair()
	_ = v
	_ = err // discarding an existing value is explicit and visible, not flagged
	return nil
}
