package probe

import (
	"context"
	"encoding/binary"
	"net/netip"
	"testing"

	"arest/internal/netsim"
	"arest/internal/obs"
	"arest/internal/pkt"
)

// captureConn records every probe sent and answers with a canned reply
// (nil = silence).
type captureConn struct {
	sent    [][]byte
	replyFn func(wire []byte) []byte
}

func (c *captureConn) Exchange(ctx context.Context, src netip.Addr, wire []byte) ([]byte, float64, error) {
	c.sent = append(c.sent, append([]byte(nil), wire...))
	if c.replyFn == nil {
		return nil, 0, nil
	}
	return c.replyFn(wire), 1.25, nil
}

// sentDport extracts the UDP destination port of a captured probe.
func sentDport(t *testing.T, wire []byte) uint16 {
	t.Helper()
	ip, err := pkt.UnmarshalIPv4(wire)
	if err != nil {
		t.Fatalf("probe wire: %v", err)
	}
	if ip.Protocol != pkt.ProtoUDP || len(ip.Payload) < 4 {
		t.Fatalf("not a UDP probe")
	}
	return binary.BigEndian.Uint16(ip.Payload[2:4])
}

// TestFlowPortStaysInTracerouteRange is the regression test for the
// BasePort+flowID uint16 wrap: the first flow ID past the wrap point must
// still probe inside [33434, 65535), not land on a well-known port.
func TestFlowPortStaysInTracerouteRange(t *testing.T) {
	conn := &captureConn{}
	tr := NewTracer(conn, a("172.16.0.10"))
	tr.MaxTTL = 1
	tr.Retries = 0
	tr.Reveal = false

	wrapFlow := uint16(0xFFFF - tr.BasePort + 1) // old code: dport wraps to 0
	if _, err := tr.Trace(context.Background(), a("100.1.0.20"), wrapFlow); err != nil {
		t.Fatal(err)
	}
	got := sentDport(t, conn.sent[0])
	if got < PortRangeLo || got >= PortRangeHi {
		t.Fatalf("flow %d probed port %d, outside [%d, %d)", wrapFlow, got, PortRangeLo, PortRangeHi)
	}

	// Unwrapped flow IDs keep their exact historical port.
	conn.sent = nil
	if _, err := tr.Trace(context.Background(), a("100.1.0.20"), 7); err != nil {
		t.Fatal(err)
	}
	if got := sentDport(t, conn.sent[0]); got != tr.BasePort+7 {
		t.Fatalf("flow 7 probed port %d, want %d", got, tr.BasePort+7)
	}

	// Property: every flow ID lands in range.
	for _, flow := range []uint16{0, 1, 1000, 32101, 32102, 40000, 0xFFFF} {
		if p := tr.flowPort(flow); p < PortRangeLo || p >= PortRangeHi {
			t.Errorf("flowPort(%d) = %d, out of range", flow, p)
		}
	}
}

// TestTraceHaltsOnPeriod1Loop drives the tracer over a netsim world with a
// self-looping FIB entry: the looping router answers every TTL, which the
// old ttl-prev>1 revisit check never catches. The trace must halt with
// HaltLoop after 3 consecutive identical responders instead of burning the
// whole MaxTTL sweep.
func TestTraceHaltsOnPeriod1Loop(t *testing.T) {
	tn := build(t, netsim.ModeIP, true, true)
	owner, ok := tn.net.Owner(tn.target)
	if !ok {
		t.Fatal("target unrouted")
	}
	tn.net.SetNextHopOverride(tn.pe1.ID, owner, tn.pe1.ID)

	reg := obs.New()
	tr := tn.tracer()
	tr.Metrics = NewMetrics(reg)
	trace, err := tr.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Halt != HaltLoop {
		t.Fatalf("halt = %v, want loop\n%s", trace.Halt, trace)
	}
	// gw, pe1-iface expiry, then 3 looping answers: well short of MaxTTL.
	if len(trace.Hops) >= tr.MaxTTL {
		t.Fatalf("loop burned the full sweep: %d hops\n%s", len(trace.Hops), trace)
	}
	last := trace.Hops[len(trace.Hops)-1]
	prev := trace.Hops[len(trace.Hops)-2]
	if !last.Responded() || last.Addr != prev.Addr {
		t.Fatalf("expected trailing identical responders\n%s", trace)
	}
	if got := reg.Snapshot().Counters["probe.halt.loop"]; got != 1 {
		t.Errorf("probe.halt.loop = %d, want 1", got)
	}
}

// TestTraceStillDetectsLongerPeriodLoops keeps the revisit check honest: a
// period-2 loop (addresses alternating A, B, A) must still halt.
func TestTraceStillDetectsLongerPeriodLoops(t *testing.T) {
	addrA, addrB := a("9.9.9.1"), a("9.9.9.2")
	seq := []netip.Addr{addrA, addrB, addrA, addrB, addrA}
	i := 0
	conn := &captureConn{}
	conn.replyFn = func(wire []byte) []byte {
		src := seq[i%len(seq)]
		i++
		return timeExceededFrom(t, src, wire)
	}
	tr := NewTracer(conn, a("172.16.0.10"))
	tr.Reveal = false
	trace, err := tr.Trace(context.Background(), a("100.1.0.20"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Halt != HaltLoop {
		t.Fatalf("halt = %v, want loop\n%s", trace.Halt, trace)
	}
}

// timeExceededFrom builds a well-formed time-exceeded reply quoting wire.
func timeExceededFrom(t *testing.T, src netip.Addr, wire []byte) []byte {
	t.Helper()
	q, err := pkt.UnmarshalIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	msg := &pkt.ICMP{Type: pkt.ICMPTimeExceeded, Code: pkt.CodeTTLExceeded, Body: wire[:min(len(wire), 28)]}
	payload, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ip := &pkt.IPv4{TTL: 250, Protocol: pkt.ProtoICMP, Src: src, Dst: q.Src, Payload: payload}
	b, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDecodeErrorHopKeepsResponder is the regression test for replies whose
// ICMP payload fails strict parsing: the responder address and RTT must be
// kept (flagged, counted) instead of being converted into a silent gap with
// pointless retries.
func TestDecodeErrorHopKeepsResponder(t *testing.T) {
	responder := a("9.9.9.9")
	conn := &captureConn{}
	conn.replyFn = func(wire []byte) []byte {
		q, err := pkt.UnmarshalIPv4(wire)
		if err != nil {
			t.Fatal(err)
		}
		// Valid IPv4 wrapping an ICMP message with a corrupted checksum.
		msg := &pkt.ICMP{Type: pkt.ICMPTimeExceeded, Code: pkt.CodeTTLExceeded, Body: wire[:28]}
		payload, err := msg.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		payload[2] ^= 0xFF // break the ICMP checksum
		ip := &pkt.IPv4{TTL: 250, Protocol: pkt.ProtoICMP, Src: responder, Dst: q.Src, Payload: payload}
		b, err := ip.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	reg := obs.New()
	tr := NewTracer(conn, a("172.16.0.10"))
	tr.MaxTTL = 1
	tr.Retries = 2
	tr.Reveal = false
	tr.Metrics = NewMetrics(reg)

	trace, err := tr.Trace(context.Background(), a("100.1.0.20"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.sent) != 1 {
		t.Fatalf("sent %d probes, want 1 (no retries for a responding hop)", len(conn.sent))
	}
	hop := trace.Hops[0]
	if !hop.Responded() || hop.Addr != responder {
		t.Fatalf("responder lost: %+v", hop)
	}
	if !hop.DecodeError {
		t.Fatalf("hop not flagged as decode error: %+v", hop)
	}
	if hop.RTT == 0 {
		t.Fatalf("RTT discarded: %+v", hop)
	}
	// ICMPType is unknown (zero value) but must not read as destination
	// reached under ICMP-echo probing.
	if trace.Halt == HaltReached {
		t.Fatalf("decode-error hop misread as destination reached")
	}
	s := reg.Snapshot()
	if s.Counters["probe.decode_error"] != 1 {
		t.Errorf("probe.decode_error = %d, want 1", s.Counters["probe.decode_error"])
	}
	if s.Counters["probe.retries"] != 0 {
		t.Errorf("probe.retries = %d, want 0", s.Counters["probe.retries"])
	}
	if s.Counters["probe.gaps"] != 0 {
		t.Errorf("probe.gaps = %d, want 0", s.Counters["probe.gaps"])
	}
}

// TestDecodeErrorNotReachedUnderICMPEcho pins the halt guard: a
// decode-error hop carries ICMPType zero, which equals ICMPEchoReply, and
// must not halt an ICMP-method trace as reached.
func TestDecodeErrorNotReachedUnderICMPEcho(t *testing.T) {
	responders := []netip.Addr{a("9.9.9.1"), a("9.9.9.2"), a("9.9.9.3")}
	i := 0
	conn := &captureConn{}
	conn.replyFn = func(wire []byte) []byte {
		q, err := pkt.UnmarshalIPv4(wire)
		if err != nil {
			t.Fatal(err)
		}
		src := responders[i%len(responders)]
		i++
		ip := &pkt.IPv4{TTL: 250, Protocol: pkt.ProtoICMP, Src: src, Dst: q.Src,
			Payload: []byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 1}} // unparseable ICMP
		b, err := ip.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	tr := NewTracer(conn, a("172.16.0.10"))
	tr.Method = MethodICMP
	tr.MaxTTL = 3
	tr.Reveal = false
	trace, err := tr.Trace(context.Background(), a("100.1.0.20"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Halt == HaltReached {
		t.Fatalf("undecodable replies halted the trace as reached\n%s", trace)
	}
	if len(trace.Hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(trace.Hops))
	}
}
