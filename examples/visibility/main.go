// Visibility: the four MPLS tunnel classes of Donnet et al. — explicit,
// implicit, opaque, invisible — produced by the same topology under the
// four combinations of ttl-propagate and RFC 4950, and what TNT manages to
// reveal in each case. This is the substrate fact that makes AReST's
// coverage a lower bound (Sec. 6.2 / Appendix C).
package main

import (
	"context"
	"fmt"
	"net/netip"

	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

func main() {
	cases := []struct {
		name                  string
		ttlPropagate, rfc4950 bool
	}{
		{"explicit (ttl-propagate + RFC4950)", true, true},
		{"implicit (ttl-propagate, no RFC4950)", true, false},
		{"opaque (no ttl-propagate, RFC4950)", false, true},
		{"invisible (no ttl-propagate, no RFC4950)", false, false},
	}
	for _, c := range cases {
		fmt.Printf("==== %s ====\n\n", c.name)
		run(c.ttlPropagate, c.rfc4950)
	}
}

func run(propagate, rfc4950 bool) {
	n := netsim.New(3)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	prof.TTLPropagate = propagate
	prof.RFC4950 = rfc4950

	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 64999,
		Vendor: mpls.VendorLinux, Profile: netsim.DefaultProfile(mpls.VendorLinux)})
	mk := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 65030,
			Vendor: mpls.VendorCisco, Profile: prof, SREnabled: true, Mode: netsim.ModeSR})
	}
	pe1, p1, p2, p3, pe2 := mk("pe1"), mk("p1"), mk("p2"), mk("p3"), mk("pe2")
	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, p1.ID, 10)
	n.Connect(p1.ID, p2.ID, 10)
	n.Connect(p2.ID, p3.ID, 10)
	n.Connect(p3.ID, pe2.ID, 10)

	vp := netip.MustParseAddr("172.16.2.10")
	target := netip.MustParseAddr("100.64.2.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	n.Compute()

	// First without TNT revelation: what plain (MPLS-aware) traceroute sees.
	plain := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	plain.Reveal = false
	tr, err := plain.Trace(context.Background(), target, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("plain traceroute:")
	fmt.Println(tr)

	// Then with TNT revelation (DPR toward trigger interfaces).
	tnt := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	tr2, err := tnt.Trace(context.Background(), target, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("TNT (with revelation):")
	fmt.Println(tr2)

	for _, tun := range probe.ClassifyTunnels(tr2) {
		fmt.Printf("classified: %s tunnel, hops %d..%d, hidden=%d\n",
			tun.Type, tun.Start+1, tun.End+1, tun.HiddenLen)
	}
	fmt.Println()
}
