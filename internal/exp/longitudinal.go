package exp

import (
	"context"
	"fmt"
	"strings"

	"arest/internal/asgen"
	"arest/internal/core"
	"arest/internal/eval"
)

// EpochStat summarizes one longitudinal epoch for one AS.
type EpochStat struct {
	Epoch int
	// SRFrac is the deployed ground-truth SR fraction at this epoch.
	SRFrac float64
	// DetectedSRShare is the AReST-measured share of interfaces in SR
	// areas (the observable proxy for adoption).
	DetectedSRShare float64
	// Interworking reports whether hybrid tunnels were observed — they
	// should appear mid-migration and vanish at full deployment.
	Interworking bool
}

// RunLongitudinal tracks an AS migrating from classic LDP to full SR-MPLS
// across epochs — the longitudinal adoption analysis the paper leaves as
// future work. Epoch e deploys SR on a growing contiguous region, with a
// mapping server once both planes coexist.
func RunLongitudinal(ctx context.Context, rec asgen.Record, epochs int, cfg Config) ([]EpochStat, error) {
	var out []EpochStat
	for e := 0; e < epochs; e++ {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		dep := asgen.DeploymentFor(rec, cfg.Seed)
		if cfg.MaxRouters > 0 && dep.Routers > cfg.MaxRouters {
			dep.Routers = cfg.MaxRouters
		}
		dep.MPLS = true
		dep.SRFrac = float64(e) / float64(epochs-1)
		dep.Interworking = dep.SRFrac > 0 && dep.SRFrac < 1
		dep.MappingServer = dep.Interworking
		// Keep visibility stable so the trend isolates deployment.
		dep.PropagateProb = 1
		dep.RFC4950Prob = 1

		r, err := runASWithDeployment(ctx, rec, dep, cfg)
		if err != nil {
			return nil, fmt.Errorf("epoch %d: %w", e, err)
		}
		ic := r.AreaInterfaceCounts()
		total := ic[core.AreaSR] + ic[core.AreaMPLS] + ic[core.AreaIP]
		share := 0.0
		if total > 0 {
			share = float64(ic[core.AreaSR]) / float64(total)
		}
		interworking := false
		for p, n := range r.TunnelPatterns() {
			if n > 0 && p != core.PatternFullSR && p != core.PatternFullLDP && p != core.PatternOther {
				interworking = true
			}
		}
		out = append(out, EpochStat{
			Epoch:           e,
			SRFrac:          dep.SRFrac,
			DetectedSRShare: share,
			Interworking:    interworking,
		})
	}
	return out, nil
}

// LongitudinalTable renders the epoch series.
func LongitudinalTable(rec asgen.Record, stats []EpochStat) string {
	t := eval.Table{
		Title:   fmt.Sprintf("Extension — longitudinal SR adoption in %s (AS%d)", rec.Name, rec.ASN),
		Headers: []string{"Epoch", "Deployed SRFrac", "Detected SR iface share", "Interworking seen"},
	}
	for _, s := range stats {
		t.AddRow(s.Epoch, s.SRFrac, s.DetectedSRShare, s.Interworking)
	}
	var b strings.Builder
	b.WriteString(t.Render())
	b.WriteString("expectation: detected share tracks deployment monotonically;\n" +
		"interworking tunnels appear only mid-migration.\n")
	return b.String()
}

func runLongitudinalExp(ctx context.Context, c *Campaign) string {
	rec, _ := asgen.ByID(28) // Bell Canada: a claimed transit AS
	cfg := c.Cfg
	cfg.NumVPs = max(2, cfg.NumVPs/2)
	stats, err := RunLongitudinal(ctx, rec, 5, cfg)
	if err != nil {
		return "longitudinal run failed: " + err.Error() + "\n"
	}
	return LongitudinalTable(rec, stats)
}
