// Command tntsim runs the simulated TNT measurement campaign against one
// synthetic AS from the paper's Table 5 catalogue and writes the collected
// campaign — traces plus fingerprint/alias/bdrmap annotations and ground
// truth — as an arest.archive.v2 record stream (side data ahead of the
// traces, so replays can analyze it as a one-pass stream), ready for
// cmd/arest to re-analyze offline. The legacy JSON-Lines trace format is
// still available behind -format jsonl (it stores traces only).
//
// Usage:
//
//	tntsim -as 46 -vps 6 -targets 24 -seed 1 -o esnet.arest
//	tntsim -as 46 -format jsonl -o esnet.jsonl
//
// Shutdown: the first SIGINT/SIGTERM cancels the measurement (no partial
// archive is ever written — the output is produced only from a complete
// measurement) and exits with status 3; a second signal aborts
// immediately. -deadline bounds the run the same way; -as-budget is the
// deterministic trace budget and -stall-timeout arms the stall watchdog.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"

	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/exp"
	"arest/internal/lifecycle"
	"arest/internal/obs"
	"arest/internal/tracestore"
)

func main() {
	sigs, stopNotify := lifecycle.Notify()
	defer stopNotify()
	hard := func() {
		fmt.Fprintln(os.Stderr, "tntsim: second signal: aborting immediately")
		os.Exit(lifecycle.ExitFailure)
	}
	os.Exit(run(os.Args[1:], sigs, hard, os.Stdout, os.Stderr))
}

// run is the testable body of the command (see cmd/experiments): signals
// come from an injected channel and the exit status is returned.
func run(argv []string, sigs <-chan os.Signal, hard func(), stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tntsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asID := fs.Int("as", 46, "paper AS identifier (1-60, see Table 5)")
	vps := fs.Int("vps", 6, "number of vantage points")
	targets := fs.Int("targets", 24, "max targets per Anaximander plan")
	flows := fs.Int("flows", 1, "Paris flows per target")
	seed := fs.Int64("seed", 20250405, "campaign seed")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "archive", "output format: archive (full campaign) or jsonl (legacy, traces only)")
	list := fs.Bool("list", false, "list the AS catalogue and exit")
	metricsOut := fs.String("metrics", "", "export campaign metrics to <file> (.json = JSON, else summary table, - = stdout)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	maxTraceFailures := fs.Int("max-trace-failures", 0, "budget of traces that may fail with a probe error before the AS counts as failed (-1 = unlimited)")
	maxASFailures := fs.Int("max-as-failures", 0, "0 = exit non-zero when the AS exceeds its trace-failure budget; >=1 = tolerate it (the archive is written either way)")
	deadline := fs.Duration("deadline", 0, "wall-clock budget for the run; on expiry the measurement drains like a first signal and exits with status 3")
	asBudget := fs.Int("as-budget", 0, "deterministic trace budget: quarantine the AS before probing if its plan demands more traces (0 = unlimited)")
	stallTimeout := fs.Duration("stall-timeout", 0, "wall-clock watchdog: cancel the measurement if it makes no progress for this long (0 = off)")
	if err := fs.Parse(argv); err != nil {
		return lifecycle.ExitFailure
	}
	errorf := func(format string, args ...interface{}) int {
		fmt.Fprintf(stderr, "tntsim: "+format+"\n", args...)
		return lifecycle.ExitFailure
	}

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return errorf("pprof: %v", err)
		}
		fmt.Fprintf(stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, r := range asgen.Catalogue {
			excl := ""
			if asgen.ExcludedIDs[r.ID] {
				excl = " (excluded: insufficient coverage)"
			}
			fmt.Fprintf(stdout, "#%-3d AS%-7d %-18s %-8s cisco=%-5v survey=%-5v%s\n",
				r.ID, r.ASN, r.Name, r.Category, r.CiscoConfirmed, r.SurveyConfirm, excl)
		}
		return lifecycle.ExitOK
	}
	if *format != "archive" && *format != "jsonl" {
		return errorf("unknown format %q (archive or jsonl)", *format)
	}

	rec, ok := asgen.ByID(*asID)
	if !ok {
		return errorf("unknown AS identifier %d (1-60)", *asID)
	}
	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumVPs = *vps
	cfg.MaxTargets = *targets
	cfg.FlowsPerTarget = *flows
	cfg.MaxTraceFailures = *maxTraceFailures
	cfg.MaxASTraces = *asBudget
	cfg.StallTimeout = *stallTimeout
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
		cfg.Metrics = reg
	}

	parent := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		parent, cancel = context.WithTimeout(parent, *deadline)
		defer cancel()
	}
	ctx, stopSig := lifecycle.Context(parent, sigs, hard)
	defer stopSig()

	data, err := exp.MeasureAS(ctx, rec, cfg)
	if err != nil {
		if lifecycle.Interrupted(err) {
			fmt.Fprintf(stderr, "tntsim: interrupted: %v (no archive written; re-run to measure)\n", err)
			return lifecycle.ExitInterrupted
		}
		return errorf("campaign failed: %v", err)
	}
	// The trace-failure budget never suppresses the archive: a degraded
	// measurement is still evidence, and the written shard replays its
	// accept/quarantine decision deterministically. The verdict only
	// decides the exit code, below.
	budgetErr := cfg.TraceBudgetErr(data)
	if d := data.Degraded; d != nil {
		fmt.Fprintf(stderr, "degraded: %d/%d traces failed with probe errors\n",
			d.FailedTraces, d.TotalTraces)
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return errorf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	traces := data.Traces()
	switch *format {
	case "archive":
		if err := archive.WriteData(w, data); err != nil {
			return errorf("write archive: %v", err)
		}
	case "jsonl":
		meta := tracestore.Meta{ASN: rec.ASN, Name: rec.Name, Seed: *seed, VPs: *vps}
		if err := tracestore.Write(w, meta, traces); err != nil {
			return errorf("write traces: %v", err)
		}
	}
	distinct := map[netip.Addr]bool{}
	for _, tr := range traces {
		for i := range tr.Hops {
			if tr.Hops[i].Responded() {
				distinct[tr.Hops[i].Addr] = true
			}
		}
	}
	fmt.Fprintf(stderr, "AS#%d %s: %d traces from %d VPs (%d distinct IPs observed)\n",
		rec.ID, rec.Name, len(traces), *vps, len(distinct))
	if reg != nil {
		snap := reg.Snapshot()
		if err := snap.ExportFile(*metricsOut); err != nil {
			return errorf("metrics: %v", err)
		}
		if *metricsOut != "-" {
			fmt.Fprint(stderr, snap.Summary())
		}
	}
	if budgetErr != nil && *maxASFailures < 1 {
		return errorf("AS#%d %s quarantined: %v (raise -max-as-failures or -max-trace-failures to tolerate)",
			rec.ID, rec.Name, budgetErr)
	}
	return lifecycle.ExitOK
}
