// Typed record payloads and the whole-campaign Data aggregate: the
// interchange value between the Measure stage (which produces it against
// the live world) and the Annotate/Detect stages (which are pure functions
// of it, live or replayed from disk).
package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"sort"

	"arest/internal/asgen"
	"arest/internal/mpls"
	"arest/internal/probe"
)

// Meta is the campaign-metadata record: the catalogue row, the derived
// deployment (ground-truth configuration, e.g. the provisioned SRGB), and
// the measurement knobs that shaped the probing. It carries everything a
// replay needs so analysis never reaches back into the generator.
type Meta struct {
	Format         string           `json:"format"` // always "arest.archive.v1"
	Record         asgen.Record     `json:"record"`
	Dep            asgen.Deployment `json:"dep"`
	Seed           int64            `json:"seed"`
	NumVPs         int              `json:"num_vps"`
	MaxTargets     int              `json:"max_targets"`
	FlowsPerTarget int              `json:"flows_per_target"`
}

// FormatV1 is the Meta.Format value of this package's format.
const FormatV1 = "arest.archive.v1"

// VPRecord declares one vantage point and how many trace records follow
// for it (readers use the count for preallocation; the end trailer is the
// integrity check).
type VPRecord struct {
	Index  int        `json:"index"`
	Addr   netip.Addr `json:"addr"`
	Traces int        `json:"traces"`
}

// TraceRecord wraps one trace with its vantage-point index.
type TraceRecord struct {
	VPIndex int          `json:"vp_index"`
	Trace   *probe.Trace `json:"trace"`
}

// FingerprintSource distinguishes the two annotation datasets.
type FingerprintSource string

const (
	SourceSNMP FingerprintSource = "snmp"
	SourceTTL  FingerprintSource = "ttl"
)

// FingerprintRecord is one interface vendor annotation.
type FingerprintRecord struct {
	Addr   netip.Addr        `json:"addr"`
	Vendor mpls.Vendor       `json:"vendor"`
	Source FingerprintSource `json:"source"`
}

// AliasSetRecord is one resolved router (its interface addresses).
type AliasSetRecord struct {
	Addrs []netip.Addr `json:"addrs"`
}

// BorderRecord is one bdrmap owner annotation.
type BorderRecord struct {
	Addr netip.Addr `json:"addr"`
	ASN  int        `json:"asn"`
}

// SREnabledRecord is one ground-truth SR-enabled interface of the target
// AS, exported by the simulator for offline validation (Table 3).
type SREnabledRecord struct {
	Addr netip.Addr `json:"addr"`
}

// Degraded summarizes measurement failures the campaign absorbed: traces
// that halted with probe.HaltError instead of completing. It is written
// only when at least one trace failed, so fault-free archives are
// byte-identical to those of writers predating the record, and it rides
// inside the archive so a replayed Detect sees exactly the degradation the
// live measurement saw — including re-deriving the same accept/reject
// decision under a trace-failure budget (see exp.Config.MaxTraceFailures).
type Degraded struct {
	// FailedTraces counts traces with Halt == HaltError, across all VPs.
	FailedTraces int `json:"failed_traces"`
	// TotalTraces is the campaign's total trace count, failed included.
	TotalTraces int `json:"total_traces"`
	// ByVP counts failed traces per vantage point, indexed like Data.VPs.
	// A slice, not a map: record payloads must encode canonically.
	ByVP []int `json:"by_vp,omitempty"`
}

// Data is one AS's campaign, wholly resident: what Measure produces and
// what Annotate/Detect consume. WriteData/ReadData round-trip it through
// the record stream losslessly.
type Data struct {
	Meta      Meta
	VPs       []netip.Addr
	PerVP     [][]*probe.Trace // indexed like VPs
	SNMP      map[netip.Addr]mpls.Vendor
	TTL       map[netip.Addr]mpls.Vendor
	Aliases   [][]netip.Addr
	Borders   map[netip.Addr]int
	SREnabled []netip.Addr // sorted
	// Degraded is non-nil iff the measurement absorbed trace failures.
	Degraded *Degraded
}

// Traces flattens all vantage points' traces in VP order.
func (d *Data) Traces() []*probe.Trace {
	var out []*probe.Trace
	for _, ts := range d.PerVP {
		out = append(out, ts...)
	}
	return out
}

// sortedAddrs returns a map's keys in address order, for deterministic
// record emission.
func sortedAddrs[V any](m map[netip.Addr]V) []netip.Addr {
	out := make([]netip.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// WriteData streams the whole campaign into w in the canonical record
// order: meta, VPs, traces (grouped per VP), fingerprints (snmp then ttl,
// each address-sorted), alias sets, borders, ground truth, end trailer.
// The canonical order makes byte-identical re-encoding possible, which the
// golden-file test pins.
func WriteData(w io.Writer, d *Data) error {
	aw, err := NewWriter(w)
	if err != nil {
		return err
	}
	if err := aw.writeRecord(TypeMeta, d.Meta); err != nil {
		return err
	}
	for i, vp := range d.VPs {
		if err := aw.writeRecord(TypeVP, VPRecord{Index: i, Addr: vp, Traces: len(d.PerVP[i])}); err != nil {
			return err
		}
	}
	for i, ts := range d.PerVP {
		for _, tr := range ts {
			if err := aw.writeRecord(TypeTrace, TraceRecord{VPIndex: i, Trace: tr}); err != nil {
				return err
			}
		}
	}
	for _, src := range []struct {
		src FingerprintSource
		m   map[netip.Addr]mpls.Vendor
	}{{SourceSNMP, d.SNMP}, {SourceTTL, d.TTL}} {
		for _, a := range sortedAddrs(src.m) {
			if err := aw.writeRecord(TypeFingerprint, FingerprintRecord{Addr: a, Vendor: src.m[a], Source: src.src}); err != nil {
				return err
			}
		}
	}
	for _, set := range d.Aliases {
		if err := aw.writeRecord(TypeAliasSet, AliasSetRecord{Addrs: set}); err != nil {
			return err
		}
	}
	for _, a := range sortedAddrs(d.Borders) {
		if err := aw.writeRecord(TypeBorder, BorderRecord{Addr: a, ASN: d.Borders[a]}); err != nil {
			return err
		}
	}
	for _, a := range d.SREnabled {
		if err := aw.writeRecord(TypeSREnabled, SREnabledRecord{Addr: a}); err != nil {
			return err
		}
	}
	if d.Degraded != nil {
		if err := aw.writeRecord(TypeDegraded, d.Degraded); err != nil {
			return err
		}
	}
	return aw.Close()
}

// ReadData drains a v1 archive into a Data. It fails with ErrTruncated on
// a stream missing its end trailer and ErrCorrupt on checksum or schema
// violations, so callers can distinguish "interrupted writer" from
// "damaged file".
func ReadData(r io.Reader) (*Data, error) {
	ar, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	d := &Data{
		SNMP:    map[netip.Addr]mpls.Vendor{},
		TTL:     map[netip.Addr]mpls.Vendor{},
		Borders: map[netip.Addr]int{},
	}
	sawMeta := false
	for {
		t, body, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if t == TypeEnd {
			break
		}
		if !sawMeta && t != TypeMeta {
			return nil, fmt.Errorf("%w: first record is %s, want meta", ErrCorrupt, t)
		}
		switch t {
		case TypeMeta:
			if sawMeta {
				return nil, fmt.Errorf("%w: duplicate meta record", ErrCorrupt)
			}
			if err := decode(body, &d.Meta); err != nil {
				return nil, err
			}
			if d.Meta.Format != FormatV1 {
				return nil, fmt.Errorf("%w: meta format %q, want %q", ErrCorrupt, d.Meta.Format, FormatV1)
			}
			sawMeta = true
		case TypeVP:
			var rec VPRecord
			if err := decode(body, &rec); err != nil {
				return nil, err
			}
			if rec.Index != len(d.VPs) {
				return nil, fmt.Errorf("%w: vp record index %d, want %d", ErrCorrupt, rec.Index, len(d.VPs))
			}
			d.VPs = append(d.VPs, rec.Addr)
			d.PerVP = append(d.PerVP, make([]*probe.Trace, 0, rec.Traces))
		case TypeTrace:
			var rec TraceRecord
			if err := decode(body, &rec); err != nil {
				return nil, err
			}
			if rec.VPIndex < 0 || rec.VPIndex >= len(d.PerVP) {
				return nil, fmt.Errorf("%w: trace references unknown vp %d", ErrCorrupt, rec.VPIndex)
			}
			if rec.Trace == nil {
				return nil, fmt.Errorf("%w: trace record without trace body", ErrCorrupt)
			}
			d.PerVP[rec.VPIndex] = append(d.PerVP[rec.VPIndex], rec.Trace)
		case TypeFingerprint:
			var rec FingerprintRecord
			if err := decode(body, &rec); err != nil {
				return nil, err
			}
			switch rec.Source {
			case SourceSNMP:
				d.SNMP[rec.Addr] = rec.Vendor
			case SourceTTL:
				d.TTL[rec.Addr] = rec.Vendor
			default:
				return nil, fmt.Errorf("%w: fingerprint source %q", ErrCorrupt, rec.Source)
			}
		case TypeAliasSet:
			var rec AliasSetRecord
			if err := decode(body, &rec); err != nil {
				return nil, err
			}
			d.Aliases = append(d.Aliases, rec.Addrs)
		case TypeBorder:
			var rec BorderRecord
			if err := decode(body, &rec); err != nil {
				return nil, err
			}
			d.Borders[rec.Addr] = rec.ASN
		case TypeSREnabled:
			var rec SREnabledRecord
			if err := decode(body, &rec); err != nil {
				return nil, err
			}
			d.SREnabled = append(d.SREnabled, rec.Addr)
		case TypeDegraded:
			if d.Degraded != nil {
				return nil, fmt.Errorf("%w: duplicate degraded record", ErrCorrupt)
			}
			var rec Degraded
			if err := decode(body, &rec); err != nil {
				return nil, err
			}
			d.Degraded = &rec
		default:
			// Unknown record types are skipped, not fatal: a v1 reader can
			// cross archives produced by a writer with additive extensions.
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("%w: no meta record", ErrCorrupt)
	}
	return d, nil
}

func decode(body []byte, into any) error {
	if err := json.Unmarshal(body, into); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// WriteFile writes the campaign to path atomically: a temp file in the
// same directory, fsync'd and renamed into place, so an interrupted writer
// never leaves a file that parses as complete.
func WriteFile(path string, d *Data) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".arest-tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteData(tmp, d); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads one archive shard from disk.
func ReadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadData(bufio.NewReader(f))
}

// Sniff reports whether br's next bytes are a v1 archive, without
// consuming them. It lets cmd/arest accept both the binary format and the
// legacy JSONL tracestore behind one flag.
func Sniff(br *bufio.Reader) bool {
	head, err := br.Peek(len(Magic))
	if err != nil {
		return false
	}
	return bytes.Equal(head, []byte(Magic))
}
