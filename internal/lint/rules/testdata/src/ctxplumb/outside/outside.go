// Package outside is ctxplumb testdata loaded under an import path in
// neither the entry nor the pool set: the analyzer must stay silent.
package outside

import "sync"

// RunBatch is ctx-free but outside the entry set: legal.
func RunBatch(n int) int { return n }

// drain spawns a blind claim loop but outside the pool set: legal.
func drain(ready chan int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range ready {
			fn(i)
		}
	}()
	wg.Wait()
}
