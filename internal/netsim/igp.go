package netsim

import (
	"container/heap"
	"sort"
)

// computeSPF runs Dijkstra from every router, recording IGP distances and
// the set of equal-cost first hops toward every destination. ECMP next hops
// are kept sorted so that flow-hash selection is deterministic.
func (n *Network) computeSPF() {
	n.nexthops = make(map[RouterID]map[RouterID][]RouterID, len(n.routers))
	n.dist = make(map[RouterID]map[RouterID]int, len(n.routers))
	for _, r := range n.routers {
		dist, first := n.dijkstra(r.ID)
		n.dist[r.ID] = dist
		n.nexthops[r.ID] = first
	}
}

type pqItem struct {
	id   RouterID
	cost int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	return q[i].cost < q[j].cost || (q[i].cost == q[j].cost && q[i].id < q[j].id)
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// dijkstra returns the cost map from src and, per destination, the ECMP set
// of first-hop router IDs on shortest paths.
func (n *Network) dijkstra(src RouterID) (map[RouterID]int, map[RouterID][]RouterID) {
	const inf = int(^uint(0) >> 2)
	cost := make(map[RouterID]int, len(n.routers))
	firstSet := make(map[RouterID]map[RouterID]bool, len(n.routers))
	for _, r := range n.routers {
		cost[r.ID] = inf
	}
	cost[src] = 0
	q := &pq{{src, 0}}
	done := make(map[RouterID]bool)
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.id] {
			continue
		}
		done[it.id] = true
		for _, nb := range n.adj[it.id] {
			if n.linkDown(it.id, nb.id) {
				continue
			}
			c := it.cost + nb.weight
			switch {
			case c < cost[nb.id]:
				cost[nb.id] = c
				fs := make(map[RouterID]bool)
				if it.id == src {
					fs[nb.id] = true
				} else {
					for f := range firstSet[it.id] {
						fs[f] = true
					}
				}
				firstSet[nb.id] = fs
				heap.Push(q, pqItem{nb.id, c})
			case c == cost[nb.id] && c < inf:
				fs := firstSet[nb.id]
				if fs == nil {
					fs = make(map[RouterID]bool)
					firstSet[nb.id] = fs
				}
				if it.id == src {
					fs[nb.id] = true
				} else {
					for f := range firstSet[it.id] {
						fs[f] = true
					}
				}
			}
		}
	}
	dist := make(map[RouterID]int, len(n.routers))
	first := make(map[RouterID][]RouterID, len(n.routers))
	for _, r := range n.routers {
		if cost[r.ID] >= inf {
			dist[r.ID] = -1
			continue
		}
		dist[r.ID] = cost[r.ID]
		if r.ID == src {
			continue
		}
		fs := make([]RouterID, 0, len(firstSet[r.ID]))
		for f := range firstSet[r.ID] {
			fs = append(fs, f)
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
		first[r.ID] = fs
	}
	return dist, first
}

// NextHop picks the next hop from src toward dst for a given flow hash,
// selecting deterministically among ECMP candidates. ok is false when dst
// is unreachable.
func (n *Network) NextHop(src, dst RouterID, flow uint64) (RouterID, bool) {
	hops := n.nexthops[src][dst]
	if len(hops) == 0 {
		return 0, false
	}
	// Mix the router ID in so different routers spread flows differently,
	// as per-router ECMP hashing does.
	h := flow*0x9e3779b97f4a7c15 + uint64(src)*0x85ebca6b
	h ^= h >> 33
	return hops[h%uint64(len(hops))], true
}

// PathLen returns the number of router hops on the flow's path from src to
// dst (0 when src == dst, -1 when unreachable).
func (n *Network) PathLen(src, dst RouterID, flow uint64) int {
	if src == dst {
		return 0
	}
	hops := 0
	cur := src
	for cur != dst {
		nxt, ok := n.NextHop(cur, dst, flow)
		if !ok {
			return -1
		}
		cur = nxt
		hops++
		if hops > len(n.routers) {
			return -1
		}
	}
	return hops
}
