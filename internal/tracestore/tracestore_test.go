package tracestore

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"arest/internal/mpls"
	"arest/internal/probe"
)

func sampleTraces() []*probe.Trace {
	return []*probe.Trace{
		{
			VP:  netip.MustParseAddr("172.16.0.1"),
			Dst: netip.MustParseAddr("100.1.0.1"),
			Hops: []probe.Hop{
				{TTL: 1, Addr: netip.MustParseAddr("10.1.0.1"), ICMPType: 11, QTTL: 1},
				{TTL: 2, Addr: netip.MustParseAddr("10.1.0.2"), ICMPType: 11,
					Stack: mpls.Stack{{Label: 16005, TTL: 1, S: true}}},
			},
			Halt: probe.HaltReached,
		},
		{
			VP:   netip.MustParseAddr("172.16.0.1"),
			Dst:  netip.MustParseAddr("100.1.0.2"),
			Hops: []probe.Hop{{TTL: 1}}, // unresponsive hop
			Halt: probe.HaltGaps,
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	meta := Meta{ASN: 293, Name: "ESnet", Seed: 42, VPs: 3}
	if err := Write(&buf, meta, sampleTraces()); err != nil {
		t.Fatal(err)
	}
	gotMeta, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta = %+v", gotMeta)
	}
	if len(got) != 2 {
		t.Fatalf("traces = %d", len(got))
	}
	if got[0].Hops[1].Stack[0].Label != 16005 {
		t.Errorf("stack lost: %+v", got[0].Hops[1])
	}
	if got[1].Hops[0].Responded() {
		t.Error("gap hop became responsive")
	}
	if got[0].Halt != probe.HaltReached || got[1].Halt != probe.HaltGaps {
		t.Error("halt reasons lost")
	}
}

func TestReadWithoutHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Meta{ASN: 1}, sampleTraces()); err != nil {
		t.Fatal(err)
	}
	// Strip the header line.
	body := buf.String()
	body = body[strings.Index(body, "\n")+1:]
	meta, traces, err := Read(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if meta.ASN != 0 || len(traces) != 2 {
		t.Errorf("meta=%+v traces=%d", meta, len(traces))
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	_, traces, err := Read(strings.NewReader("\n\n{\"vp\":\"172.16.0.1\",\"dst\":\"100.0.0.1\",\"flow_id\":0,\"hops\":null,\"halt\":0}\n\n"))
	if err != nil || len(traces) != 1 {
		t.Errorf("err=%v traces=%d", err, len(traces))
	}
}

func TestReadRejectsDuplicateHeader(t *testing.T) {
	trLine := `{"vp":"172.16.0.1","dst":"100.0.0.1","flow_id":0,"hops":null,"halt":0}`
	cases := []string{
		"#{\"asn\":1}\n#{\"asn\":2}\n" + trLine + "\n",     // header twice up front
		"#{\"asn\":1}\n" + trLine + "\n#{\"asn\":2}\n",     // header after a trace
		trLine + "\n#{\"asn\":2}\n",                        // header after content, no first header
		"\n\n#{\"asn\":1}\n" + trLine + "\n#{\"asn\":2}\n", // leading blanks still count header as first
	}
	for i, in := range cases {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: mid-file header accepted", i)
		}
	}
	// A header preceded only by blank lines is still the first non-empty
	// line and must parse.
	meta, traces, err := Read(strings.NewReader("\n\n#{\"asn\":7}\n" + trLine + "\n"))
	if err != nil || meta.ASN != 7 || len(traces) != 1 {
		t.Errorf("blank-prefixed header: meta=%+v traces=%d err=%v", meta, len(traces), err)
	}
}

func TestReadHugeLine(t *testing.T) {
	// A single trace far beyond the old 16 MiB scanner cap must parse; the
	// scanner-based reader reported such files as a silent clean EOF.
	tr := &probe.Trace{
		VP:  netip.MustParseAddr("172.16.0.1"),
		Dst: netip.MustParseAddr("100.1.0.1"),
	}
	for ttl := 0; len(tr.Hops) < 300000; ttl++ {
		tr.Hops = append(tr.Hops, probe.Hop{TTL: ttl,
			Addr:  netip.MustParseAddr("10.9.9.9"),
			Stack: mpls.Stack{{Label: 16005, TTL: 1, S: true}}})
	}
	var buf bytes.Buffer
	if err := Write(&buf, Meta{ASN: 1}, []*probe.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1<<24 {
		t.Fatalf("test line too short to exercise the old cap: %d bytes", buf.Len())
	}
	_, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Hops) != len(tr.Hops) {
		t.Fatalf("huge trace mangled: traces=%d", len(got))
	}
}

func TestReadNoTrailingNewline(t *testing.T) {
	trLine := `{"vp":"172.16.0.1","dst":"100.0.0.1","flow_id":0,"hops":null,"halt":0}`
	_, traces, err := Read(strings.NewReader(trLine)) // no final \n
	if err != nil || len(traces) != 1 {
		t.Errorf("unterminated last line: traces=%d err=%v", len(traces), err)
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := Read(strings.NewReader("#not-json\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, _, err := Read(strings.NewReader("{broken\n")); err == nil {
		t.Error("bad trace accepted")
	}
}
