package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv6HeaderLen is the fixed IPv6 header length.
const IPv6HeaderLen = 40

// IPv6 next-header values used here.
const (
	ProtoIPv6Routing = 43 // routing extension header (carries the SRH)
	ProtoICMPv6      = 58
)

// IPv6 is an IPv6 packet: fixed header plus payload. Only the fields the
// measurement pipeline needs are modeled; extension headers live in the
// payload and are parsed separately (see SRH).
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr
	Payload      []byte
}

// Marshal serializes the packet. IPv6 has no header checksum.
func (p *IPv6) Marshal() ([]byte, error) {
	return p.AppendMarshal(nil)
}

// AppendMarshal serializes the packet onto dst and returns the extended
// slice, allocating only when dst lacks capacity. The appended bytes are
// identical to Marshal's output.
func (p *IPv6) AppendMarshal(dst []byte) ([]byte, error) {
	if !p.Src.Is6() || !p.Dst.Is6() {
		return nil, fmt.Errorf("%w: src/dst must be IPv6 addresses", ErrBadHeader)
	}
	if p.FlowLabel > 1<<20-1 {
		return nil, fmt.Errorf("%w: flow label %d exceeds 20 bits", ErrBadHeader, p.FlowLabel)
	}
	if len(p.Payload) > 0xffff {
		return nil, fmt.Errorf("%w: payload too large", ErrBadHeader)
	}
	b, o := grow(dst, IPv6HeaderLen+len(p.Payload))
	binary.BigEndian.PutUint32(b[o:], 6<<28|uint32(p.TrafficClass)<<20|p.FlowLabel)
	binary.BigEndian.PutUint16(b[o+4:], uint16(len(p.Payload)))
	b[o+6] = p.NextHeader
	b[o+7] = p.HopLimit
	src, dst16 := p.Src.As16(), p.Dst.As16()
	copy(b[o+8:o+24], src[:])
	copy(b[o+24:o+40], dst16[:])
	copy(b[o+IPv6HeaderLen:], p.Payload)
	return b, nil
}

// UnmarshalIPv6 parses an IPv6 packet. The returned packet owns its
// payload.
func UnmarshalIPv6(b []byte) (*IPv6, error) {
	p := new(IPv6)
	if err := UnmarshalIPv6Into(p, b); err != nil {
		return nil, err
	}
	p.Payload = append([]byte(nil), p.Payload...)
	return p, nil
}

// UnmarshalIPv6Into parses an IPv6 packet into p without allocating:
// p.Payload aliases b.
func UnmarshalIPv6Into(p *IPv6, b []byte) error {
	if len(b) < IPv6HeaderLen {
		return ErrShortPacket
	}
	first := binary.BigEndian.Uint32(b)
	if first>>28 != 6 {
		return ErrBadVersion
	}
	plen := int(binary.BigEndian.Uint16(b[4:]))
	if IPv6HeaderLen+plen > len(b) {
		return fmt.Errorf("%w: payload length %d of %d bytes", ErrBadHeader, plen, len(b)-IPv6HeaderLen)
	}
	*p = IPv6{
		TrafficClass: uint8(first >> 20),
		FlowLabel:    first & 0xfffff,
		NextHeader:   b[6],
		HopLimit:     b[7],
		Src:          netip.AddrFrom16([16]byte(b[8:24])),
		Dst:          netip.AddrFrom16([16]byte(b[24:40])),
		Payload:      b[IPv6HeaderLen : IPv6HeaderLen+plen],
	}
	return nil
}

//arest:coldpath debug formatter, never on the wire path
func (p *IPv6) String() string {
	return fmt.Sprintf("IPv6 %s -> %s next=%d hlim=%d len=%d",
		p.Src, p.Dst, p.NextHeader, p.HopLimit, IPv6HeaderLen+len(p.Payload))
}

// SRH is the IPv6 Segment Routing Header (RFC 8754) — the SRv6 data plane
// the paper scopes out of AReST but whose wire format any SR measurement
// suite should speak. Segments are stored in reverse order, Segments[0]
// being the final one, per the RFC.
type SRH struct {
	NextHeader   uint8
	SegmentsLeft uint8
	LastEntry    uint8
	Flags        uint8
	Tag          uint16
	Segments     []netip.Addr
}

const srhRoutingType = 4 // SRH routing type (RFC 8754)

// Marshal serializes the SRH. LastEntry is derived from the segment list.
func (h *SRH) Marshal() ([]byte, error) {
	return h.AppendMarshal(nil)
}

// AppendMarshal serializes the SRH onto dst and returns the extended
// slice, allocating only when dst lacks capacity. The appended bytes are
// identical to Marshal's output.
func (h *SRH) AppendMarshal(dst []byte) ([]byte, error) {
	if len(h.Segments) == 0 || len(h.Segments) > 255 {
		return nil, fmt.Errorf("%w: SRH needs 1..255 segments", ErrBadHeader)
	}
	for _, s := range h.Segments {
		if !s.Is6() {
			return nil, fmt.Errorf("%w: SRH segment %s is not IPv6", ErrBadHeader, s)
		}
	}
	// Hdr Ext Len: length in 8-octet units, not including the first 8.
	hdrLen := len(h.Segments) * 2
	b, o := grow(dst, 8+len(h.Segments)*16)
	b[o] = h.NextHeader
	b[o+1] = uint8(hdrLen)
	b[o+2] = srhRoutingType
	b[o+3] = h.SegmentsLeft
	b[o+4] = uint8(len(h.Segments) - 1)
	b[o+5] = h.Flags
	binary.BigEndian.PutUint16(b[o+6:], h.Tag)
	for i, s := range h.Segments {
		a := s.As16()
		copy(b[o+8+i*16:], a[:])
	}
	return b, nil
}

// UnmarshalSRH parses a Segment Routing Header from the front of b,
// returning the header and the number of bytes consumed.
func UnmarshalSRH(b []byte) (*SRH, int, error) {
	h := new(SRH)
	n, err := UnmarshalSRHInto(h, b)
	if err != nil {
		return nil, n, err
	}
	return h, n, nil
}

// UnmarshalSRHInto parses a Segment Routing Header from the front of b
// into h, reusing h.Segments' capacity, and returns the number of bytes
// consumed.
func UnmarshalSRHInto(h *SRH, b []byte) (int, error) {
	if len(b) < 8 {
		return 0, ErrShortPacket
	}
	if b[2] != srhRoutingType {
		return 0, fmt.Errorf("%w: routing type %d is not SRH", ErrBadHeader, b[2])
	}
	total := 8 + int(b[1])*8
	if len(b) < total {
		return 0, fmt.Errorf("%w: SRH truncated", ErrBadHeader)
	}
	nseg := int(b[4]) + 1
	if 8+nseg*16 > total {
		return 0, fmt.Errorf("%w: %d segments exceed header length", ErrBadHeader, nseg)
	}
	segs := h.Segments[:0]
	*h = SRH{
		NextHeader:   b[0],
		SegmentsLeft: b[3],
		LastEntry:    b[4],
		Flags:        b[5],
		Tag:          binary.BigEndian.Uint16(b[6:]),
	}
	if int(h.SegmentsLeft) > nseg {
		return 0, fmt.Errorf("%w: segments left %d of %d", ErrBadHeader, h.SegmentsLeft, nseg)
	}
	for i := 0; i < nseg; i++ {
		segs = append(segs, netip.AddrFrom16([16]byte(b[8+i*16:8+(i+1)*16])))
	}
	h.Segments = segs
	return total, nil
}

// ActiveSegment returns the segment currently steering the packet.
func (h *SRH) ActiveSegment() (netip.Addr, bool) {
	if int(h.SegmentsLeft) >= len(h.Segments) || h.SegmentsLeft == 0 && len(h.Segments) == 0 {
		return netip.Addr{}, false
	}
	return h.Segments[h.SegmentsLeft], true
}
