// Command tntsim runs the simulated TNT measurement campaign against one
// synthetic AS from the paper's Table 5 catalogue and writes the collected
// campaign — traces plus fingerprint/alias/bdrmap annotations and ground
// truth — as an arest.archive.v2 record stream (side data ahead of the
// traces, so replays can analyze it as a one-pass stream), ready for
// cmd/arest to re-analyze offline. The legacy JSON-Lines trace format is
// still available behind -format jsonl (it stores traces only).
//
// Usage:
//
//	tntsim -as 46 -vps 6 -targets 24 -seed 1 -o esnet.arest
//	tntsim -as 46 -format jsonl -o esnet.jsonl
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"

	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/exp"
	"arest/internal/obs"
	"arest/internal/tracestore"
)

func main() {
	asID := flag.Int("as", 46, "paper AS identifier (1-60, see Table 5)")
	vps := flag.Int("vps", 6, "number of vantage points")
	targets := flag.Int("targets", 24, "max targets per Anaximander plan")
	flows := flag.Int("flows", 1, "Paris flows per target")
	seed := flag.Int64("seed", 20250405, "campaign seed")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "archive", "output format: archive (full campaign) or jsonl (legacy, traces only)")
	list := flag.Bool("list", false, "list the AS catalogue and exit")
	metricsOut := flag.String("metrics", "", "export campaign metrics to <file> (.json = JSON, else summary table, - = stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	maxTraceFailures := flag.Int("max-trace-failures", 0, "budget of traces that may fail with a probe error before the AS counts as failed (-1 = unlimited)")
	maxASFailures := flag.Int("max-as-failures", 0, "0 = exit non-zero when the AS exceeds its trace-failure budget; >=1 = tolerate it (the archive is written either way)")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatalf("pprof: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, r := range asgen.Catalogue {
			excl := ""
			if asgen.ExcludedIDs[r.ID] {
				excl = " (excluded: insufficient coverage)"
			}
			fmt.Printf("#%-3d AS%-7d %-18s %-8s cisco=%-5v survey=%-5v%s\n",
				r.ID, r.ASN, r.Name, r.Category, r.CiscoConfirmed, r.SurveyConfirm, excl)
		}
		return
	}
	if *format != "archive" && *format != "jsonl" {
		fatalf("unknown format %q (archive or jsonl)", *format)
	}

	rec, ok := asgen.ByID(*asID)
	if !ok {
		fatalf("unknown AS identifier %d (1-60)", *asID)
	}
	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumVPs = *vps
	cfg.MaxTargets = *targets
	cfg.FlowsPerTarget = *flows
	cfg.MaxTraceFailures = *maxTraceFailures
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
		cfg.Metrics = reg
	}

	data, err := exp.MeasureAS(rec, cfg)
	if err != nil {
		fatalf("campaign failed: %v", err)
	}
	// The trace-failure budget never suppresses the archive: a degraded
	// measurement is still evidence, and the written shard replays its
	// accept/quarantine decision deterministically. The verdict only
	// decides the exit code, below.
	budgetErr := cfg.TraceBudgetErr(data)
	if d := data.Degraded; d != nil {
		fmt.Fprintf(os.Stderr, "degraded: %d/%d traces failed with probe errors\n",
			d.FailedTraces, d.TotalTraces)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	traces := data.Traces()
	switch *format {
	case "archive":
		if err := archive.WriteData(w, data); err != nil {
			fatalf("write archive: %v", err)
		}
	case "jsonl":
		meta := tracestore.Meta{ASN: rec.ASN, Name: rec.Name, Seed: *seed, VPs: *vps}
		if err := tracestore.Write(w, meta, traces); err != nil {
			fatalf("write traces: %v", err)
		}
	}
	distinct := map[netip.Addr]bool{}
	for _, tr := range traces {
		for i := range tr.Hops {
			if tr.Hops[i].Responded() {
				distinct[tr.Hops[i].Addr] = true
			}
		}
	}
	fmt.Fprintf(os.Stderr, "AS#%d %s: %d traces from %d VPs (%d distinct IPs observed)\n",
		rec.ID, rec.Name, len(traces), *vps, len(distinct))
	if reg != nil {
		snap := reg.Snapshot()
		if err := snap.ExportFile(*metricsOut); err != nil {
			fatalf("metrics: %v", err)
		}
		if *metricsOut != "-" {
			fmt.Fprint(os.Stderr, snap.Summary())
		}
	}
	if budgetErr != nil && *maxASFailures < 1 {
		fatalf("AS#%d %s quarantined: %v (raise -max-as-failures or -max-trace-failures to tolerate)",
			rec.ID, rec.Name, budgetErr)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tntsim: "+format+"\n", args...)
	os.Exit(1)
}
