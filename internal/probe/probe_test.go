package probe

import (
	"context"
	"encoding/json"
	"net/netip"
	"testing"

	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/pkt"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

// testNet builds the canonical chain:
//
//	vp -- gw -- pe1 -- p1 -- p2 -- p3 -- pe2 -- target
//
// with the MPLS region pe1..pe2 configured by the arguments.
type testNet struct {
	net        *netsim.Network
	vp, target netip.Addr
	gw         *netsim.Router
	pe1, pe2   *netsim.Router
	ps         []*netsim.Router
}

func build(t *testing.T, mode netsim.TunnelMode, propagate, rfc4950 bool) *testNet {
	t.Helper()
	return buildNet(mode, propagate, rfc4950)
}

// buildNet is the testing.TB-free core of build, shared with benchmarks.
func buildNet(mode netsim.TunnelMode, propagate, rfc4950 bool) *testNet {
	n := netsim.New(21)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	prof.TTLPropagate = propagate
	prof.RFC4950 = rfc4950
	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: netsim.DefaultProfile(mpls.VendorLinux), Mode: netsim.ModeIP})
	mk := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: mode == netsim.ModeSR, LDPEnabled: mode == netsim.ModeLDP, Mode: mode})
	}
	pe1 := mk("pe1")
	n.Connect(gw.ID, pe1.ID, 10)
	prev := pe1
	var ps []*netsim.Router
	for i := 0; i < 3; i++ {
		p := mk("p")
		n.Connect(prev.ID, p.ID, 10)
		ps = append(ps, p)
		prev = p
	}
	pe2 := mk("pe2")
	n.Connect(prev.ID, pe2.ID, 10)
	vp := a("172.16.0.10")
	target := a("100.1.0.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	n.Compute()
	return &testNet{net: n, vp: vp, target: target, gw: gw, pe1: pe1, pe2: pe2, ps: ps}
}

func (tn *testNet) tracer() *Tracer {
	return NewTracer(NetsimConn{tn.net}, tn.vp)
}

func TestTraceReachesDestination(t *testing.T) {
	tn := build(t, netsim.ModeIP, true, true)
	tr, err := tn.tracer().Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reached() {
		t.Fatalf("halt = %v", tr.Halt)
	}
	if len(tr.Hops) != 7 {
		t.Fatalf("hops = %d, want 7\n%s", len(tr.Hops), tr)
	}
	last := tr.Hops[len(tr.Hops)-1]
	if last.Addr != tn.target || last.ICMPType != pkt.ICMPDestUnreachable {
		t.Errorf("last hop %+v", last)
	}
	for i, h := range tr.Hops[:6] {
		if h.ICMPType != pkt.ICMPTimeExceeded {
			t.Errorf("hop %d type %d", i, h.ICMPType)
		}
		if h.RTT <= 0 {
			t.Errorf("hop %d rtt %f", i, h.RTT)
		}
	}
	// RTTs should not decrease along the path.
	for i := 1; i < 6; i++ {
		if tr.Hops[i].RTT < tr.Hops[i-1].RTT {
			t.Errorf("RTT decreased at hop %d", i)
		}
	}
}

func TestTraceExplicitSRStacks(t *testing.T) {
	tn := build(t, netsim.ModeSR, true, true)
	tr, err := tn.tracer().Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	var labels []uint32
	for _, h := range tr.Hops {
		if h.HasStack() {
			labels = append(labels, h.Stack[0].Label)
		}
	}
	if len(labels) != 4 { // p1,p2,p3,pe2
		t.Fatalf("labeled hops = %d, want 4\n%s", len(labels), tr)
	}
	for i := 1; i < len(labels); i++ {
		if labels[i] != labels[0] {
			t.Errorf("labels not consecutive-identical: %v", labels)
		}
	}
	tuns := ClassifyTunnels(tr)
	if len(tuns) != 1 || tuns[0].Type != TunnelExplicit {
		t.Fatalf("tunnels = %+v", tuns)
	}
	if !HasExplicitTunnel(tr) {
		t.Error("HasExplicitTunnel = false")
	}
}

func TestTraceImplicitTunnelQTTL(t *testing.T) {
	tn := build(t, netsim.ModeSR, true, false) // propagate, no RFC4950
	tr, err := tn.tracer().Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No stacks anywhere.
	for i, h := range tr.Hops {
		if h.HasStack() {
			t.Errorf("hop %d has stack", i)
		}
	}
	// qTTL staircase on the tunnel interior.
	tuns := ClassifyTunnels(tr)
	if len(tuns) != 1 || tuns[0].Type != TunnelImplicit {
		t.Fatalf("tunnels = %+v\n%s", tuns, tr)
	}
	if got := tuns[0].End - tuns[0].Start + 1; got != 4 {
		t.Errorf("implicit tunnel length = %d, want 4", got)
	}
}

func TestTraceOpaqueRevelation(t *testing.T) {
	tn := build(t, netsim.ModeSR, false, true) // pipe + RFC4950 = opaque
	tr, err := tn.tracer().Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With revelation, the hidden interior (p1..p3) must be spliced in.
	var revealed []Hop
	for _, h := range tr.Hops {
		if h.Revealed {
			revealed = append(revealed, h)
		}
	}
	if len(revealed) != 3 {
		t.Fatalf("revealed hops = %d, want 3\n%s", len(revealed), tr)
	}
	for _, h := range revealed {
		if h.HasStack() {
			t.Error("revealed hop carries an LSE; DPR cannot observe those")
		}
	}
	tuns := ClassifyTunnels(tr)
	if len(tuns) != 1 || tuns[0].Type != TunnelOpaque {
		t.Fatalf("tunnels = %+v", tuns)
	}
	if tuns[0].HiddenLen != 3 {
		t.Errorf("hidden length = %d, want 3", tuns[0].HiddenLen)
	}
}

func TestTraceOpaqueWithoutRevelation(t *testing.T) {
	tn := build(t, netsim.ModeSR, false, true)
	tc := tn.tracer()
	tc.Reveal = false
	tr, err := tc.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Hops) != 4 { // gw, pe1, pe2(LSE), target
		t.Fatalf("hops = %d, want 4\n%s", len(tr.Hops), tr)
	}
	tuns := ClassifyTunnels(tr)
	if len(tuns) != 1 || tuns[0].Type != TunnelOpaque {
		t.Fatalf("tunnels = %+v", tuns)
	}
	if tuns[0].HiddenLen != 3 {
		t.Errorf("hidden = %d, want 3", tuns[0].HiddenLen)
	}
}

func TestTraceInvisibleRevelation(t *testing.T) {
	tn := build(t, netsim.ModeSR, false, false) // pipe + no RFC4950 = invisible
	tr, err := tn.tracer().Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	var revealed int
	for _, h := range tr.Hops {
		if h.Revealed {
			revealed++
		}
		if h.HasStack() {
			t.Error("LSE present in invisible tunnel")
		}
	}
	if revealed != 3 {
		t.Fatalf("revealed = %d, want 3\n%s", revealed, tr)
	}
	tuns := ClassifyTunnels(tr)
	if len(tuns) != 1 || tuns[0].Type != TunnelInvisible {
		t.Fatalf("tunnels = %+v", tuns)
	}
}

func TestTraceInvisibleWithoutRevelationRTLA(t *testing.T) {
	tn := build(t, netsim.ModeSR, false, false)
	tc := tn.tracer()
	tc.Reveal = false
	tr, err := tc.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	tuns := ClassifyTunnels(tr)
	if len(tuns) != 1 || tuns[0].Type != TunnelInvisible {
		t.Fatalf("tunnels = %+v\n%s", tuns, tr)
	}
	if tuns[0].HiddenLen != 3 {
		t.Errorf("RTLA hidden estimate = %d, want 3", tuns[0].HiddenLen)
	}
}

func TestParisFlowStability(t *testing.T) {
	// Diamond with ECMP inside the AS: the same flow must see one path.
	n := netsim.New(5)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	mk := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, Mode: netsim.ModeIP})
	}
	gw, s, x, y, d := mk("gw"), mk("s"), mk("x"), mk("y"), mk("d")
	n.Connect(gw.ID, s.ID, 10)
	n.Connect(s.ID, x.ID, 10)
	n.Connect(s.ID, y.ID, 10)
	n.Connect(x.ID, d.ID, 10)
	n.Connect(y.ID, d.ID, 10)
	vp := a("172.16.0.1")
	tgt := a("100.1.0.50")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, d.ID)
	n.Compute()
	tc := NewTracer(NetsimConn{n}, vp)

	tr1, err := tc.Trace(context.Background(), tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := tc.Trace(context.Background(), tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := tr1.Addrs(), tr2.Addrs()
	if len(a1) != len(a2) {
		t.Fatalf("path lengths differ")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("same flow, different path at hop %d: %s vs %s", i, a1[i], a2[i])
		}
	}
	// Different flows should be able to take the other branch.
	diverged := false
	for f := uint16(1); f < 32 && !diverged; f++ {
		trf, err := tc.Trace(context.Background(), tgt, f)
		if err != nil {
			t.Fatal(err)
		}
		af := trf.Addrs()
		for i := range af {
			if i < len(a1) && af[i] != a1[i] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("no flow diverged across 31 flow IDs despite ECMP")
	}
}

func TestPing(t *testing.T) {
	tn := build(t, netsim.ModeSR, true, true)
	tc := tn.tracer()
	p2 := tn.ps[1]
	iface, _ := p2.InterfaceTo(tn.ps[0].ID)
	ttl, ok, err := tc.Ping(context.Background(), iface, 42)
	if err != nil || !ok {
		t.Fatalf("ping failed: ok=%v err=%v", ok, err)
	}
	if InferInitialTTL(ttl) != 255 {
		t.Errorf("inferred initial TTL %d from %d, want 255", InferInitialTTL(ttl), ttl)
	}
	if _, ok, err := tc.Ping(context.Background(), a("203.0.113.1"), 43); ok {
		t.Errorf("ping to unrouted address succeeded (err=%v)", err)
	}
}

func TestInferInitialTTL(t *testing.T) {
	cases := []struct {
		in, want uint8
	}{{1, 32}, {32, 32}, {33, 64}, {60, 64}, {64, 64}, {65, 128}, {128, 128}, {129, 255}, {250, 255}, {255, 255}}
	for _, c := range cases {
		if got := InferInitialTTL(c.in); got != c.want {
			t.Errorf("InferInitialTTL(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTraceGapHalt(t *testing.T) {
	tn := build(t, netsim.ModeIP, true, true)
	// Silence everything after pe1.
	for _, p := range tn.ps {
		p.Profile.RespondsICMP = false
	}
	tn.pe2.Profile.RespondsICMP = false
	tc := tn.tracer()
	tc.MaxGaps = 3
	// Target the last interior router's address so the destination itself
	// never answers either.
	dst := tn.ps[2].Loopback
	tr, err := tc.Trace(context.Background(), dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Halt != HaltGaps {
		t.Errorf("halt = %v, want gaps\n%s", tr.Halt, tr)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tn := build(t, netsim.ModeSR, true, true)
	tr, err := tn.tracer().Trace(context.Background(), tn.target, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.VP != tr.VP || back.Dst != tr.Dst || len(back.Hops) != len(tr.Hops) || back.FlowID != 3 {
		t.Errorf("round trip mismatch")
	}
	for i := range back.Hops {
		if !back.Hops[i].Stack.Equal(tr.Hops[i].Stack) {
			t.Errorf("hop %d stack mismatch", i)
		}
	}
}

func TestTraceStringRendering(t *testing.T) {
	tn := build(t, netsim.ModeSR, true, true)
	tr, err := tn.tracer().Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	s := tr.String()
	if s == "" || len(s) < 50 {
		t.Errorf("String too short: %q", s)
	}
}

func TestICMPMethodTrace(t *testing.T) {
	tn := build(t, netsim.ModeSR, true, true)
	tc := tn.tracer()
	tc.Method = MethodICMP
	tr, err := tc.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reached() {
		t.Fatalf("ICMP trace did not reach: %s", tr)
	}
	last := tr.Hops[len(tr.Hops)-1]
	if last.ICMPType != pkt.ICMPEchoReply {
		t.Errorf("last hop type = %d, want echo reply", last.ICMPType)
	}
	// Intermediate hops still quote the MPLS stacks (the time-exceeded
	// path is probe-type agnostic).
	labeled := 0
	for _, h := range tr.Hops {
		if h.HasStack() {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("no LSEs via ICMP probing")
	}
	// Same hop addresses as UDP probing (same flow-stable path).
	tcUDP := tn.tracer()
	trUDP, err := tcUDP.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trUDP.Hops) != len(tr.Hops) {
		t.Errorf("ICMP path length %d != UDP %d", len(tr.Hops), len(trUDP.Hops))
	}
}

func TestICMPMethodSilentEchoTarget(t *testing.T) {
	// If the destination router drops pings, an ICMP-method trace cannot
	// complete — the classic reason TNT prefers UDP.
	tn := build(t, netsim.ModeIP, true, true)
	tn.pe2.Profile.RespondsEcho = false
	tc := tn.tracer()
	tc.Method = MethodICMP
	tr, err := tc.Trace(context.Background(), tn.pe2.Loopback, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reached() {
		t.Errorf("trace reached a ping-dropping target: %s", tr)
	}
}

func TestTracerRetriesRecoverLossyHops(t *testing.T) {
	tn := build(t, netsim.ModeIP, true, true)
	for _, p := range tn.ps {
		p.Profile.ICMPLossProb = 0.5
	}
	noRetry := tn.tracer()
	noRetry.Retries = 0
	withRetry := tn.tracer()
	withRetry.Retries = 3

	gaps := func(tc *Tracer) int {
		n := 0
		for f := uint16(0); f < 8; f++ {
			tr, err := tc.Trace(context.Background(), tn.target, f)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range tr.Hops {
				if !h.Responded() {
					n++
				}
			}
		}
		return n
	}
	g0, g3 := gaps(noRetry), gaps(withRetry)
	if g0 == 0 {
		t.Fatal("no gaps despite 50% loss")
	}
	if g3 >= g0 {
		t.Errorf("retries did not reduce gaps: %d -> %d", g0, g3)
	}
}
