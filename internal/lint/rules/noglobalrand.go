package rules

import (
	"go/ast"
	"go/types"

	"arest/internal/lint"
)

// globalRandFns are the math/rand (and math/rand/v2) package-level
// functions that draw from the process-global source. §7.1 requires every
// random draw to come from an explicitly seeded *rand.Rand — hash-derived
// or seeded from config — so campaigns replay bit-identically; the global
// source is shared, lockstep-dependent mutable state that silently couples
// unrelated call sites.
var globalRandFns = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "N": true,
}

// randPkg reports whether path is a math/rand flavour.
func randPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// NoGlobalRand builds the noglobalrand analyzer. Two findings:
//
//   - any use of a global-source math/rand function (rand.Intn, rand.Seed,
//     rand.Shuffle, ...), in any package;
//   - rand.New / rand.NewSource whose seed expression reads the wall
//     clock (the classic rand.NewSource(time.Now().UnixNano())), which is
//     seeded-but-not-reproducible.
func NoGlobalRand() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "noglobalrand",
		Doc:  "forbid process-global math/rand draws and wall-clock seeding",
		Run: func(pass *lint.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.Ident:
						fn, ok := pass.Info.Uses[n].(*types.Func)
						if !ok || fn.Pkg() == nil {
							return true
						}
						if randPkg(fn.Pkg().Path()) && isPkgFunc(fn) && globalRandFns[fn.Name()] {
							pass.Report(n.Pos(),
								"rand.%s draws from the process-global source; use a *rand.Rand seeded from config or a hash (DESIGN.md §7.1)",
								fn.Name())
						}
					case *ast.CallExpr:
						pkg, name, ok := pass.CalleeIn(n)
						if !ok || !randPkg(pkg) || (name != "New" && name != "NewSource" && name != "NewPCG" && name != "NewChaCha8") {
							return true
						}
						for _, arg := range n.Args {
							if isRandConstructor(pass, arg) {
								continue // the inner NewSource/NewPCG call reports itself
							}
							if tp := wallClockUse(pass, arg); tp != nil {
								pass.Report(n.Pos(),
									"rand.%s seeded from the wall clock (time.%s): seeds must come from config or a hash so runs replay bit-identically (DESIGN.md §7.1)",
									name, tp.Name())
								break
							}
						}
					}
					return true
				})
			}
			return nil
		},
	}
}

// wallClockUse returns the first package-time function referenced inside
// expr (time.Now and friends), or nil.
func wallClockUse(pass *lint.Pass, expr ast.Expr) *types.Func {
	var found *types.Func
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := pass.Info.Uses[id].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && isPkgFunc(fn) {
			found = fn
			return false
		}
		return true
	})
	return found
}

// isRandConstructor reports whether expr is itself a math/rand source
// constructor call, which files its own finding when clock-seeded.
func isRandConstructor(pass *lint.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name, ok := pass.CalleeIn(call)
	return ok && randPkg(pkg) && (name == "NewSource" || name == "NewPCG" || name == "NewChaCha8")
}

// isPkgFunc reports whether fn is a package-level function (no receiver).
func isPkgFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
