// Package a exercises hotpathalloc with function-scope annotations: each
// allocation-forcing construct fires inside a hot function and stays
// legal outside one.
package a

import "fmt"

// hotAll trips every allocation check, one per line.
//
//arest:hotpath
func hotAll(n int, s string) string {
	msg := fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf on the hot path`
	c := s + msg                  // want `string concatenation on the hot path`
	c += s                        // want `string \+= on the hot path`
	m := map[int]int{n: n}        // want `map literal on the hot path`
	xs := []int{n}                // want `slice literal on the hot path`
	var box interface{} = n       // want `var with interface type .* boxes a concrete value`
	y := any(n)                   // want `conversion to .* boxes a concrete value`
	f := func() int { return n }  // want `closure capturing "n" on the hot path`
	_ = m
	_ = xs
	_ = box
	_ = y
	_ = f
	return c
}

// coldUnmarked carries no annotation: fmt stays legal here.
func coldUnmarked(n int) string { return fmt.Sprintf("%d", n) }

// hotErr's failure path returns an error and may allocate freely.
//
//arest:hotpath
func hotErr(n int) (string, error) {
	if n < 0 {
		return "", fmt.Errorf("negative n %d", n)
	}
	return "ok", nil
}

// hotPanic's contract-violation path may allocate: it runs at most once.
//
//arest:hotpath
func hotPanic(n int) int {
	if n > 1<<20 {
		panic(fmt.Sprintf("n out of range: %d", n))
	}
	return n * 2
}

// hotConst concatenates constants only: folded at compile time, legal.
//
//arest:hotpath
func hotConst() string { return "a" + "b" }

// hotStack builds struct and array values: stack-allocatable, legal.
//
//arest:hotpath
func hotStack(n int) int {
	p := struct{ a, b int }{n, n}
	var arr [4]int
	arr[0] = p.a
	return arr[0] + p.b
}

// hotLitNoCapture's literal reads only its own locals: no environment to
// heap-allocate.
//
//arest:hotpath
func hotLitNoCapture() int {
	f := func(x int) int { return x + 1 }
	return f(1)
}
