package fingerprint

import (
	"context"
	"net/netip"
	"testing"

	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestSignatureClassify(t *testing.T) {
	cases := []struct {
		sig  Signature
		want mpls.Vendor
	}{
		{Signature{255, 255}, mpls.VendorCiscoHuawei},
		{Signature{255, 64}, mpls.VendorJuniper},
		{Signature{64, 255}, mpls.VendorNokia},
		{Signature{64, 64}, mpls.VendorUnknown},
		{Signature{128, 128}, mpls.VendorUnknown},
		{Signature{32, 255}, mpls.VendorUnknown},
	}
	for _, c := range cases {
		if got := c.sig.Classify(); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.sig, got, c.want)
		}
	}
}

// mixedNet: gw(Linux) - c1(Cisco) - j1(Juniper) - h1(Huawei) - n1(Nokia) - target
func mixedNet(t *testing.T, snmpOpen func(v mpls.Vendor) bool, echo func(v mpls.Vendor) bool) (*netsim.Network, *probe.Tracer, map[string]*netsim.Router) {
	t.Helper()
	n := netsim.New(9)
	rs := map[string]*netsim.Router{}
	mk := func(name string, v mpls.Vendor) *netsim.Router {
		p := netsim.DefaultProfile(v)
		p.SNMPOpen = snmpOpen(v)
		p.RespondsEcho = echo(v)
		r := n.AddRouter(netsim.RouterConfig{Name: name, ASN: 300, Vendor: v, Profile: p, Mode: netsim.ModeIP})
		rs[name] = r
		return r
	}
	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: netsim.DefaultProfile(mpls.VendorLinux), Mode: netsim.ModeIP})
	rs["gw"] = gw
	c1 := mk("c1", mpls.VendorCisco)
	j1 := mk("j1", mpls.VendorJuniper)
	h1 := mk("h1", mpls.VendorHuawei)
	n1 := mk("n1", mpls.VendorNokia)
	n.Connect(gw.ID, c1.ID, 10)
	n.Connect(c1.ID, j1.ID, 10)
	n.Connect(j1.ID, h1.ID, 10)
	n.Connect(n1.ID, h1.ID, 10)
	vp := a("172.16.0.9")
	tgt := a("100.1.0.77")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, n1.ID)
	n.Compute()
	return n, probe.NewTracer(probe.NetsimConn{Net: n}, vp), rs
}

func TestCollectTTLClassifiesVendors(t *testing.T) {
	_, tc, rs := mixedNet(t,
		func(mpls.Vendor) bool { return false },
		func(mpls.Vendor) bool { return true })
	tr, err := tc.Trace(context.Background(), a("100.1.0.77"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ttl, err := CollectTTL(context.Background(), []*probe.Trace{tr}, tc, 1, nil)
	if err != nil {
		t.Fatalf("CollectTTL: %v", err)
	}

	ifc := func(name, nb string) netip.Addr {
		addr, ok := rs[name].InterfaceTo(rs[nb].ID)
		if !ok {
			t.Fatalf("no iface %s->%s", name, nb)
		}
		return addr
	}
	// Cisco and Huawei both classify as the ambiguity class.
	if v := ttl[ifc("c1", "gw")]; v != mpls.VendorCiscoHuawei {
		t.Errorf("c1 = %v, want Cisco/Huawei", v)
	}
	if v := ttl[ifc("h1", "j1")]; v != mpls.VendorCiscoHuawei {
		t.Errorf("h1 = %v, want Cisco/Huawei", v)
	}
	if v := ttl[ifc("j1", "c1")]; v != mpls.VendorJuniper {
		t.Errorf("j1 = %v, want Juniper", v)
	}
	// Nokia answered the trace with time-exceeded? n1 is the last router
	// before the target; it appears with signature <64,255> => Nokia.
	if v := ttl[ifc("n1", "h1")]; v != mpls.VendorNokia {
		t.Errorf("n1 = %v, want Nokia", v)
	}
}

func TestCollectTTLRequiresEcho(t *testing.T) {
	// Nobody answers pings: no TTL fingerprints at all (the ESnet case).
	_, tc, _ := mixedNet(t,
		func(mpls.Vendor) bool { return false },
		func(mpls.Vendor) bool { return false })
	tr, err := tc.Trace(context.Background(), a("100.1.0.77"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ttl, err := CollectTTL(context.Background(), []*probe.Trace{tr}, tc, 1, nil)
	if err != nil {
		t.Fatalf("CollectTTL: %v", err)
	}
	if len(ttl) != 0 {
		t.Errorf("fingerprints without echo replies: %v", ttl)
	}
}

func TestSNMPDataset(t *testing.T) {
	n, _, rs := mixedNet(t,
		func(v mpls.Vendor) bool { return v == mpls.VendorCisco || v == mpls.VendorJuniper },
		func(mpls.Vendor) bool { return true })
	ds := SNMPDataset(n)
	c1 := rs["c1"]
	if v := ds[c1.Loopback]; v != mpls.VendorCisco {
		t.Errorf("c1 loopback = %v, want exact Cisco", v)
	}
	// Every interface of an open router is covered.
	for _, ifaceAddr := range c1.Interfaces() {
		if ds[ifaceAddr] != mpls.VendorCisco {
			t.Errorf("iface %s missing from dataset", ifaceAddr)
		}
	}
	// Closed routers are absent.
	if _, ok := ds[rs["h1"].Loopback]; ok {
		t.Error("SNMP-closed router present in dataset")
	}
}

func TestSNMPDatasetExcludesArista(t *testing.T) {
	n := netsim.New(1)
	p := netsim.DefaultProfile(mpls.VendorArista)
	p.SNMPOpen = true
	r := n.AddRouter(netsim.RouterConfig{ASN: 1, Vendor: mpls.VendorArista, Profile: p})
	n.Compute()
	if ds := SNMPDataset(n); len(ds) != 0 {
		t.Errorf("Arista fingerprinted via SNMPv3: %v (router %s)", ds, r.Name)
	}
}

func TestAnnotatorPrecedence(t *testing.T) {
	addr1, addr2, addr3 := a("10.0.0.1"), a("10.0.0.2"), a("10.0.0.3")
	ann := NewAnnotator(
		map[netip.Addr]mpls.Vendor{addr1: mpls.VendorHuawei},
		map[netip.Addr]mpls.Vendor{addr1: mpls.VendorCiscoHuawei, addr2: mpls.VendorCiscoHuawei},
	)
	// SNMP wins on conflict.
	if r := ann.Vendor(addr1); r.Vendor != mpls.VendorHuawei || r.Source != SourceSNMP {
		t.Errorf("addr1 = %+v", r)
	}
	if r := ann.Vendor(addr2); r.Vendor != mpls.VendorCiscoHuawei || r.Source != SourceTTL {
		t.Errorf("addr2 = %+v", r)
	}
	if r := ann.Vendor(addr3); r.Vendor != mpls.VendorUnknown || r.Source != SourceNone {
		t.Errorf("addr3 = %+v", r)
	}
	snmp, ttl := ann.Coverage()
	if snmp != 1 || ttl != 1 {
		t.Errorf("coverage = %d,%d; want 1,1", snmp, ttl)
	}
}

func TestAnnotatorNilMaps(t *testing.T) {
	ann := NewAnnotator(nil, nil)
	if r := ann.Vendor(a("10.0.0.1")); r.Source != SourceNone {
		t.Errorf("nil annotator returned %+v", r)
	}
}
