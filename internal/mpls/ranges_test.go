package mpls

import (
	"testing"
	"testing/quick"
)

func TestTable1Ranges(t *testing.T) {
	// The exact default ranges from Table 1 of the paper.
	cases := []struct {
		name string
		r    LabelRange
		lo   uint32
		hi   uint32
	}{
		{"Cisco SRGB", CiscoSRGB, 16000, 23999},
		{"Cisco SRLB", CiscoSRLB, 15000, 15999},
		{"Huawei SRGB", HuaweiSRGB, 16000, 47999},
		{"Arista SRGB", AristaSRGB, 900000, 965535},
		{"Arista SRLB", AristaSRLB, 100000, 116383},
	}
	for _, c := range cases {
		if c.r.Lo != c.lo || c.r.Hi != c.hi {
			t.Errorf("%s = %v, want [%d,%d]", c.name, c.r, c.lo, c.hi)
		}
	}
}

func TestLabelRangeContains(t *testing.T) {
	r := LabelRange{16000, 23999}
	for _, l := range []uint32{16000, 20000, 23999} {
		if !r.Contains(l) {
			t.Errorf("Contains(%d) = false", l)
		}
	}
	for _, l := range []uint32{15999, 24000, 0, MaxLabel} {
		if r.Contains(l) {
			t.Errorf("Contains(%d) = true", l)
		}
	}
}

func TestLabelRangeSize(t *testing.T) {
	if got := (LabelRange{16000, 23999}).Size(); got != 8000 {
		t.Errorf("Cisco SRGB size = %d, want 8000", got)
	}
	if got := (LabelRange{5, 5}).Size(); got != 1 {
		t.Errorf("singleton size = %d, want 1", got)
	}
	if got := (LabelRange{10, 5}).Size(); got != 0 {
		t.Errorf("inverted size = %d, want 0", got)
	}
	// Sec 4.1: the Cisco dynamic pool spans 1,032,575 possible labels.
	if got := DynamicPool(VendorCisco).Size(); got != 1032575 {
		t.Errorf("Cisco dynamic pool size = %d, want 1032575", got)
	}
}

func TestLabelRangeOverlap(t *testing.T) {
	got, ok := CiscoSRGB.Overlap(HuaweiSRGB)
	if !ok || got != CiscoHuaweiSRGBIntersection {
		t.Errorf("Cisco∩Huawei = %v,%v; want %v", got, ok, CiscoHuaweiSRGBIntersection)
	}
	if _, ok := CiscoSRGB.Overlap(AristaSRGB); ok {
		t.Error("Cisco∩Arista should be empty")
	}
}

func TestSRBlocks(t *testing.T) {
	srgb, srlb, ok := SRBlocks(VendorCisco)
	if !ok || srgb != CiscoSRGB || srlb != CiscoSRLB {
		t.Errorf("SRBlocks(Cisco) = %v,%v,%v", srgb, srlb, ok)
	}
	// Juniper allocates adjacency SIDs from the dynamic pool: no SRLB.
	_, srlb, ok = SRBlocks(VendorJuniper)
	if !ok || srlb.Size() != 0 {
		t.Errorf("SRBlocks(Juniper) srlb = %v, want empty", srlb)
	}
	if _, _, ok := SRBlocks(VendorUnknown); ok {
		t.Error("SRBlocks(Unknown) should report !ok")
	}
	if _, _, ok := SRBlocks(VendorLinux); ok {
		t.Error("SRBlocks(Linux) should report !ok")
	}
	// The ambiguity class must be restricted to the intersection.
	srgb, _, ok = SRBlocks(VendorCiscoHuawei)
	if !ok || srgb != CiscoHuaweiSRGBIntersection {
		t.Errorf("SRBlocks(CiscoHuawei) srgb = %v", srgb)
	}
}

func TestInVendorSRRange(t *testing.T) {
	cases := []struct {
		v     Vendor
		label uint32
		want  bool
	}{
		{VendorCisco, 16005, true},
		{VendorCisco, 15500, true},  // SRLB
		{VendorCisco, 24000, false}, // dynamic pool
		{VendorHuawei, 47999, true},
		{VendorHuawei, 48500, true},  // SRLB
		{VendorHuawei, 49000, false}, // pool
		{VendorArista, 900001, true},
		{VendorArista, 16005, false},
		{VendorCiscoHuawei, 16005, true},
		{VendorCiscoHuawei, 24005, false}, // in Huawei SRGB but outside intersection
		{VendorUnknown, 16005, false},
		{VendorJuniper, 16005, true},
	}
	for _, c := range cases {
		if got := InVendorSRRange(c.v, c.label); got != c.want {
			t.Errorf("InVendorSRRange(%v, %d) = %v, want %v", c.v, c.label, got, c.want)
		}
	}
}

func TestVendorString(t *testing.T) {
	if VendorCisco.String() != "Cisco" {
		t.Errorf("VendorCisco.String() = %q", VendorCisco)
	}
	if Vendor(99).String() != "Vendor(99)" {
		t.Errorf("unknown vendor String = %q", Vendor(99))
	}
}

func TestDynamicPoolDisjointFromSRBlocks(t *testing.T) {
	// Invariant: a vendor's dynamic pool never overlaps its own SR blocks,
	// otherwise SR-range membership could not separate SR from LDP labels.
	for _, v := range []Vendor{VendorCisco, VendorHuawei, VendorArista} {
		srgb, srlb, _ := SRBlocks(v)
		pool := DynamicPool(v)
		if _, ok := pool.Overlap(srgb); ok {
			t.Errorf("%v: dynamic pool %v overlaps SRGB %v", v, pool, srgb)
		}
		if srlb.Size() > 0 {
			if _, ok := pool.Overlap(srlb); ok {
				t.Errorf("%v: dynamic pool %v overlaps SRLB %v", v, pool, srlb)
			}
		}
	}
}

func TestOverlapQuickSymmetric(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		r1 := LabelRange{a % MaxLabel, b % MaxLabel}
		r2 := LabelRange{c % MaxLabel, d % MaxLabel}
		o1, ok1 := r1.Overlap(r2)
		o2, ok2 := r2.Overlap(r1)
		return ok1 == ok2 && o1 == o2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
