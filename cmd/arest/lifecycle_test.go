package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/exp"
	"arest/internal/lifecycle"
)

// writeArchive measures one small AS and persists it as a v2 archive for
// the analyzer to consume.
func writeArchive(t *testing.T) string {
	t.Helper()
	rec, ok := asgen.ByID(2)
	if !ok {
		t.Fatal("AS#2 missing from catalogue")
	}
	cfg := exp.DefaultConfig()
	cfg.Seed = 101
	cfg.NumVPs = 3
	cfg.MaxTargets = 8
	data, err := exp.MeasureAS(context.Background(), rec, cfg)
	if err != nil {
		t.Fatalf("MeasureAS: %v", err)
	}
	path := filepath.Join(t.TempDir(), "as2.arest")
	if err := archive.WriteFile(path, data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func noHard(t *testing.T) func() {
	return func() { t.Error("hard abort invoked without a second signal") }
}

// TestDeadlineSuppressesPartialReport: an expired deadline aborts the
// analysis stream with the resumable status and never emits a truncated
// report.
func TestDeadlineSuppressesPartialReport(t *testing.T) {
	path := writeArchive(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-i", path, "-deadline", "1ns"}, nil, noHard(t), strings.NewReader(""), &stdout, &stderr)
	if code != lifecycle.ExitInterrupted {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, lifecycle.ExitInterrupted, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("partial report suppressed")) {
		t.Errorf("stderr does not explain the suppressed report:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("interrupted analysis still wrote %d bytes of report", stdout.Len())
	}
}

// TestSignalSuppressesPartialReport: a pre-queued signal behaves exactly
// like the deadline — same status, same suppression.
func TestSignalSuppressesPartialReport(t *testing.T) {
	path := writeArchive(t)
	sigs := make(chan os.Signal, 2)
	sigs <- syscall.SIGINT
	var stdout, stderr bytes.Buffer
	code := run([]string{"-i", path}, sigs, noHard(t), strings.NewReader(""), &stdout, &stderr)
	if code != lifecycle.ExitInterrupted {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, lifecycle.ExitInterrupted, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("interrupted analysis still wrote %d bytes of report", stdout.Len())
	}
}

// TestCleanAnalysisSucceeds: the same archive analyzes to a full report
// when nothing interferes.
func TestCleanAnalysisSucceeds(t *testing.T) {
	path := writeArchive(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-i", path}, nil, noHard(t), strings.NewReader(""), &stdout, &stderr); code != lifecycle.ExitOK {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Error("clean analysis produced no report")
	}
}
