package probe

import (
	"context"
	"errors"
	"net/netip"
	"testing"
)

// cancelConn cancels the trace's own context after n exchanges, then keeps
// answering silence — the shape of a signal landing mid-sweep.
type cancelConn struct {
	cancel context.CancelCauseFunc
	cause  error
	left   int
	calls  int
}

func (c *cancelConn) Exchange(ctx context.Context, src netip.Addr, wire []byte) ([]byte, float64, error) {
	c.calls++
	c.left--
	if c.left == 0 {
		c.cancel(c.cause)
	}
	return nil, 0, nil
}

// TestTraceCancelledMidSweep: a cancel landing between TTLs aborts the
// trace with the cancellation cause — no *Trace is returned, so nothing
// cancellation-shaped can become archive content (no HaltError halt).
func TestTraceCancelledMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	conn := &cancelConn{cancel: cancel, cause: context.Canceled, left: 3}
	tr := NewTracer(conn, a("172.16.0.10"))
	tr.Retries = 0

	res, err := tr.Trace(ctx, a("100.1.0.20"), 0)
	if res != nil {
		t.Fatalf("cancelled trace returned content: halt=%v hops=%d", res.Halt, len(res.Hops))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The sweep stopped at the next TTL boundary: MaxTTL probes were never
	// sent.
	if conn.calls >= tr.MaxTTL {
		t.Errorf("sweep kept probing after cancel: %d exchanges", conn.calls)
	}
}

// TestTraceCancelledBeforeStart: an already-cancelled context aborts before
// the first probe, and the cause (not plain context.Canceled) is returned.
func TestTraceCancelledBeforeStart(t *testing.T) {
	cause := errors.New("deadline budget spent")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	conn := &cancelConn{cancel: func(error) {}, left: -1}
	tr := NewTracer(conn, a("172.16.0.10"))

	res, err := tr.Trace(ctx, a("100.1.0.20"), 0)
	if res != nil || !errors.Is(err, cause) {
		t.Fatalf("Trace = (%v, %v), want (nil, %v)", res, err, cause)
	}
	if conn.calls != 0 {
		t.Errorf("%d probes sent under a pre-cancelled context, want 0", conn.calls)
	}
}

// TestPingCancelled: the fingerprint echo path honors cancellation the
// same way.
func TestPingCancelled(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(context.Canceled)
	conn := &cancelConn{cancel: func(error) {}, left: -1}
	tr := NewTracer(conn, a("172.16.0.10"))
	if _, _, err := tr.Ping(ctx, a("100.1.0.20"), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Ping err = %v, want context.Canceled", err)
	}
	if conn.calls != 0 {
		t.Errorf("%d probes sent under a pre-cancelled context, want 0", conn.calls)
	}
}
