// Package tracestore reads and writes trace collections as JSON Lines, the
// interchange format between the probing tool (cmd/tntsim) and the
// detector (cmd/arest). Each line is one probe.Trace; an optional metadata
// header line (prefixed with '#') carries campaign context.
package tracestore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"arest/internal/probe"
)

// Meta describes a stored campaign.
type Meta struct {
	ASN  int    `json:"asn"`
	Name string `json:"name,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	VPs  int    `json:"vps,omitempty"`
}

// Write stores the metadata header followed by one trace per line.
func Write(w io.Writer, meta Meta, traces []*probe.Trace) error {
	bw := bufio.NewWriter(w)
	mb, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("tracestore: meta: %w", err)
	}
	if _, err := fmt.Fprintf(bw, "#%s\n", mb); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for _, tr := range traces {
		if err := enc.Encode(tr); err != nil {
			return fmt.Errorf("tracestore: trace %s->%s: %w", tr.VP, tr.Dst, err)
		}
	}
	return bw.Flush()
}

// Read parses a stored campaign. A missing header yields a zero Meta.
func Read(r io.Reader) (Meta, []*probe.Trace, error) {
	var meta Meta
	var traces []*probe.Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := json.Unmarshal([]byte(line[1:]), &meta); err != nil {
				return meta, nil, fmt.Errorf("tracestore: line %d: bad header: %w", lineNo, err)
			}
			continue
		}
		var tr probe.Trace
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			return meta, nil, fmt.Errorf("tracestore: line %d: %w", lineNo, err)
		}
		traces = append(traces, &tr)
	}
	return meta, traces, sc.Err()
}
