// Typed failures for the staged pipeline: which stage broke, what broke,
// and how much degradation a measurement may absorb before the AS is
// quarantined. Containment is per AS — one AS's failure never aborts the
// campaign (see Run/RunSharded) — and deterministic: the same faults yield
// the same Failed list, stages, and error strings at any worker count.
package exp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"arest/internal/archive"
	"arest/internal/asgen"
)

// Stage names one step of the Measure → Archive → Detect pipeline, for
// failure attribution.
type Stage int

const (
	// StageMeasure covers world building, the trace sweep, fingerprint
	// probing, alias resolution, and bdrmap annotation.
	StageMeasure Stage = iota
	// StageArchive covers shard write, readback, and decoding.
	StageArchive
	// StageDetect covers annotation and AReST analysis.
	StageDetect
)

func (s Stage) String() string {
	switch s {
	case StageMeasure:
		return "measure"
	case StageArchive:
		return "archive"
	case StageDetect:
		return "detect"
	default:
		return "?"
	}
}

// StageError attributes an error to the pipeline stage that raised it.
type StageError struct {
	Stage Stage
	Err   error
}

func (e *StageError) Error() string { return fmt.Sprintf("%s: %v", e.Stage, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *StageError) Unwrap() error { return e.Err }

// stageErr wraps err with its stage, preserving an existing attribution:
// an error that already carries a StageError keeps the innermost stage.
func stageErr(s Stage, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: s, Err: err}
}

// FailureStage reports which stage err is attributed to, defaulting to
// StageMeasure for unattributed errors (measurement is the only stage that
// talks to the world, so untyped errors are almost always its).
func FailureStage(err error) Stage {
	var se *StageError
	if errors.As(err, &se) {
		return se.Stage
	}
	return StageMeasure
}

// TraceBudgetError reports a measurement whose failed-trace count exceeded
// the configured budget: the shard holds usable (degraded) data, but the
// policy quarantines the AS rather than analyzing it.
type TraceBudgetError struct {
	// Failed and Total are the degraded measurement's trace accounting.
	Failed, Total int
	// Budget is the Config.MaxTraceFailures that was exceeded.
	Budget int
}

func (e *TraceBudgetError) Error() string {
	return fmt.Sprintf("%d of %d traces failed, budget %d", e.Failed, e.Total, e.Budget)
}

// ASFailure is one quarantined AS of a campaign: the catalogue record, the
// stage that failed, and the error. The campaign's other ASes are
// unaffected — their results are identical to a run without this AS's
// fault.
type ASFailure struct {
	Record asgen.Record
	Stage  Stage
	Err    error
}

func (f ASFailure) String() string {
	return fmt.Sprintf("AS#%d %s: %s: %v", f.Record.ID, f.Record.Name, f.Stage, f.Err)
}

// ASBudgetError reports an AS whose measurement plan demanded more traces
// than the deterministic deadline allows (Config.MaxASTraces). The check
// runs before any probe is sent, so a budget-quarantined AS costs nothing
// and leaves nothing behind.
type ASBudgetError struct {
	// Planned is the trace count the plan called for; Budget the limit.
	Planned, Budget int
}

func (e *ASBudgetError) Error() string {
	return fmt.Sprintf("plan demands %d traces, budget %d", e.Planned, e.Budget)
}

// ASBudgetErr applies the deterministic per-AS trace budget to a planned
// trace count: nil when the plan fits MaxASTraces, a StageMeasure-attributed
// ASBudgetError otherwise. The planned count is a pure function of the
// catalogue record and Config, and on replay it is re-derived by summing
// the archived per-VP trace counts — so live runs and archive replays reach
// the same accept/quarantine verdict.
func (c Config) ASBudgetErr(planned int) error {
	if c.MaxASTraces <= 0 || planned <= c.MaxASTraces {
		return nil
	}
	return stageErr(StageMeasure, &ASBudgetError{Planned: planned, Budget: c.MaxASTraces})
}

// StallError is the cancellation cause the wall-clock watchdog installs
// when an AS's pipeline stops making progress (Config.StallTimeout): the
// AS is cancelled and quarantined, the campaign carries on. Unlike a
// campaign-level interrupt (IsInterrupt), a stall is a per-AS failure and
// lands in Campaign.Failed.
type StallError struct {
	// ASID is the catalogue identifier of the stalled AS.
	ASID int
	// Quiet is how long the AS went without a heartbeat before the
	// watchdog fired.
	Quiet time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("AS#%d stalled: no progress for %v", e.ASID, e.Quiet)
}

// IsInterrupt reports whether err is a campaign-level interruption —
// context cancellation or deadline expiry — as opposed to a per-AS fault.
// Interrupted ASes are *skipped*, not quarantined: a resumed run completes
// them identically, so recording them as Failed would make the failure list
// depend on interrupt timing.
func IsInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// TraceBudgetErr applies the trace-failure budget to a measurement: nil
// when d's degradation (if any) is within MaxTraceFailures, a
// StageMeasure-attributed TraceBudgetError otherwise. It is a pure
// function of the archived Data, so replaying a degraded shard re-derives
// the exact accept/quarantine decision of the live run.
func (c Config) TraceBudgetErr(d *archive.Data) error {
	return c.degradedBudgetErr(d.Degraded)
}

// degradedBudgetErr is the budget check over a bare degradation record, so
// the streaming fold can apply it the moment the record arrives — before
// any trace has been decoded.
func (c Config) degradedBudgetErr(deg *archive.Degraded) error {
	if deg == nil || c.MaxTraceFailures < 0 || deg.FailedTraces <= c.MaxTraceFailures {
		return nil
	}
	return stageErr(StageMeasure, &TraceBudgetError{
		Failed: deg.FailedTraces,
		Total:  deg.TotalTraces,
		Budget: c.MaxTraceFailures,
	})
}
