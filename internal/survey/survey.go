// Package survey models the operator survey of Sec. 3 (Table 2, Fig. 5):
// 46 respondents describing their SR-MPLS deployments. The respondent set
// is synthesized deterministically so that its aggregation reproduces the
// published proportions; the aggregation code itself is what the figures
// exercise.
package survey

import "arest/internal/mpls"

// Usage is an SR-MPLS deployment motivation (Fig. 5b answer options).
type Usage int

const (
	UsageTrafficEngineering Usage = iota
	UsageBestEffort
	UsageSimplifyMPLS
	UsageResilience
	UsageTraditionalServices
	usageCount
)

func (u Usage) String() string {
	switch u {
	case UsageTrafficEngineering:
		return "Traffic Engineering"
	case UsageBestEffort:
		return "Carry Best Effort Traffic"
	case UsageSimplifyMPLS:
		return "Simplify MPLS Management"
	case UsageResilience:
		return "Network Resilience"
	case UsageTraditionalServices:
		return "Carry Traditional Services"
	default:
		return "?"
	}
}

// AllUsages lists the closed answer options of the usage question.
var AllUsages = []Usage{UsageTrafficEngineering, UsageBestEffort, UsageSimplifyMPLS,
	UsageResilience, UsageTraditionalServices}

// Respondent is one survey answer sheet (all questions multiple-choice or
// yes/no, per Table 2).
type Respondent struct {
	Vendors     []mpls.Vendor
	Usages      []Usage
	SRGBDefault bool
	SRLBDefault bool
}

// N is the number of responses the paper received.
const N = 46

// Respondents synthesizes the N answer sheets. Counts are chosen so the
// aggregates match Fig. 5 and the quoted percentages: 70% keep the default
// SRGB, 67% the default SRLB; Cisco and Juniper dominate the vendor
// question; network resilience and MPLS simplification lead usage.
func Respondents() []Respondent {
	vendorCounts := []struct {
		v mpls.Vendor
		n int
	}{
		{mpls.VendorCisco, 28},
		{mpls.VendorJuniper, 24},
		{mpls.VendorNokia, 13},
		{mpls.VendorArista, 9},
		{mpls.VendorLinux, 8},
		{mpls.VendorHuawei, 7},
		{mpls.VendorMikroTik, 5},
	}
	usageCounts := []struct {
		u Usage
		n int
	}{
		{UsageResilience, 28},          // ~0.61
		{UsageSimplifyMPLS, 25},        // ~0.54
		{UsageTraditionalServices, 23}, // ~0.50
		{UsageTrafficEngineering, 21},  // ~0.46
		{UsageBestEffort, 18},          // ~0.39
	}
	const srgbDefault = 32 // 32/46 = 69.6% ≈ 70%
	const srlbDefault = 31 // 31/46 = 67.4% ≈ 67%

	out := make([]Respondent, N)
	for _, vc := range vendorCounts {
		for i := 0; i < vc.n; i++ {
			// Spread mentions round-robin so multi-vendor shops emerge.
			idx := (i*7 + int(vc.v)*3) % N
			out[idx].Vendors = append(out[idx].Vendors, vc.v)
		}
	}
	for _, uc := range usageCounts {
		for i := 0; i < uc.n; i++ {
			idx := (i*5 + int(uc.u)*11) % N
			out[idx].Usages = append(out[idx].Usages, uc.u)
		}
	}
	for i := 0; i < srgbDefault; i++ {
		out[i].SRGBDefault = true
	}
	for i := 0; i < srlbDefault; i++ {
		out[(i+7)%N].SRLBDefault = true
	}
	return out
}

// VendorShares aggregates the vendor question: fraction of respondents
// mentioning each vendor (multiple choice, so shares do not sum to 1).
func VendorShares(rs []Respondent) map[mpls.Vendor]float64 {
	counts := map[mpls.Vendor]int{}
	for _, r := range rs {
		seen := map[mpls.Vendor]bool{}
		for _, v := range r.Vendors {
			if !seen[v] {
				counts[v]++
				seen[v] = true
			}
		}
	}
	out := map[mpls.Vendor]float64{}
	for v, c := range counts {
		out[v] = float64(c) / float64(len(rs))
	}
	return out
}

// UsageShares aggregates the usage question.
func UsageShares(rs []Respondent) map[Usage]float64 {
	counts := map[Usage]int{}
	for _, r := range rs {
		seen := map[Usage]bool{}
		for _, u := range r.Usages {
			if !seen[u] {
				counts[u]++
				seen[u] = true
			}
		}
	}
	out := map[Usage]float64{}
	for u, c := range counts {
		out[u] = float64(c) / float64(len(rs))
	}
	return out
}

// DefaultRangeRates returns the fractions of respondents keeping the
// vendor-recommended SRGB and SRLB.
func DefaultRangeRates(rs []Respondent) (srgb, srlb float64) {
	var g, l int
	for _, r := range rs {
		if r.SRGBDefault {
			g++
		}
		if r.SRLBDefault {
			l++
		}
	}
	return float64(g) / float64(len(rs)), float64(l) / float64(len(rs))
}
