package core

import (
	"arest/internal/mpls"
)

// Segment is a contiguous sequence of hops — excluding the SR source — that
// raised one of the detection flags.
type Segment struct {
	// Start and End are inclusive hop indexes into the analyzed Path.
	Start, End int
	Flag       Flag
	// Label is the shared active label for sequence flags (CVR/CO), or the
	// active label for the single-hop flags.
	Label uint32
	// SuffixMatch marks CVR/CO sequences detected through suffix-based
	// matching across differing SRGB ranges rather than strict equality.
	SuffixMatch bool
	// StackDepths records the LSE stack depth at each hop of the segment.
	StackDepths []int
}

// Len returns the number of hops in the segment.
func (s *Segment) Len() int { return s.End - s.Start + 1 }

// Detector runs the AReST flag analysis.
type Detector struct {
	// SuffixMatching enables cross-SRGB suffix matching for the sequence
	// flags (footnote 4 of the paper). Enabled by default.
	SuffixMatching bool
	// MinRun is the minimum number of consecutive same-label hops for the
	// sequence flags; the paper uses 2.
	MinRun int
}

// NewDetector returns a detector with the paper's settings.
func NewDetector() *Detector {
	return &Detector{SuffixMatching: true, MinRun: 2}
}

// Result is the per-path AReST output.
type Result struct {
	Path     *Path
	Segments []Segment
	// Areas classifies every hop of the path (parallel slice).
	Areas []Area
}

// Area is the routing mechanism a hop is attributed to.
type Area int

const (
	AreaIP Area = iota
	AreaMPLS
	AreaSR
)

func (a Area) String() string {
	switch a {
	case AreaSR:
		return "sr"
	case AreaMPLS:
		return "mpls"
	default:
		return "ip"
	}
}

// suffixMatch reports whether two different labels plausibly encode the
// same SID index under different SRGB bases: equal low-order digits with a
// base difference that is a whole multiple of 1,000 (e.g. 16,005 → 13,005).
func suffixMatch(a, b uint32) bool {
	if a == b {
		return false
	}
	if a%1000 != b%1000 {
		return false
	}
	return true
}

// sameSegmentLabel reports whether consecutive hops carry the same active
// segment, by strict equality or (optionally) suffix matching.
func (d *Detector) sameSegmentLabel(a, b uint32) (match, suffix bool) {
	if a == b {
		return true, false
	}
	if d.SuffixMatching && suffixMatch(a, b) {
		return true, true
	}
	return false, false
}

// sequenceEligible reports whether a hop can participate in flag
// detection: it must be a labeled transit observation whose active label is
// not a reserved value — explicit-null (0) and other special-purpose labels
// are plain MPLS plumbing, never Segment Routing evidence.
func sequenceEligible(h *Hop) bool {
	return h.HasStack() && !h.Terminal && !h.Stack.Top().Reserved()
}

// vendorRangeHit reports whether the hop is fingerprinted to a vendor whose
// recognized SR ranges contain the hop's active label.
func vendorRangeHit(h *Hop) bool {
	if !h.Fingerprinted() || !h.HasStack() {
		return false
	}
	return mpls.InVendorSRRange(h.Vendor, h.Stack.Top().Label)
}

// Analyze runs the flag detection over one annotated path.
//
// Sequence flags (CVR/CO) are matched first on maximal runs of consecutive
// stacked hops sharing the active label; remaining stacked hops receive the
// stack-based flags (LSVR/LVR/LSO). Hops with a single LSE and no vendor
// range evidence stay unflagged (classic MPLS).
func (d *Detector) Analyze(p *Path) *Result {
	res := &Result{Path: p, Areas: make([]Area, len(p.Hops))}
	minRun := d.MinRun
	if minRun < 2 {
		minRun = 2
	}
	inSeq := make([]bool, len(p.Hops))

	// Pass 1: CVR / CO maximal runs over transit hops (terminal replies
	// are the destination re-quoting what the previous hop already showed).
	for i := 0; i < len(p.Hops); i++ {
		if !sequenceEligible(&p.Hops[i]) {
			continue
		}
		j := i
		anySuffix := false
		for j+1 < len(p.Hops) && sequenceEligible(&p.Hops[j+1]) {
			m, sfx := d.sameSegmentLabel(p.Hops[j].Stack.Top().Label, p.Hops[j+1].Stack.Top().Label)
			if !m {
				break
			}
			anySuffix = anySuffix || sfx
			j++
		}
		if j-i+1 >= minRun {
			seg := Segment{Start: i, End: j, Flag: FlagCO,
				Label: p.Hops[i].Stack.Top().Label, SuffixMatch: anySuffix}
			for k := i; k <= j; k++ {
				inSeq[k] = true
				seg.StackDepths = append(seg.StackDepths, p.Hops[k].Stack.Depth())
				if vendorRangeHit(&p.Hops[k]) {
					seg.Flag = FlagCVR
				}
			}
			res.Segments = append(res.Segments, seg)
			i = j
		}
	}

	// Pass 2: stack-based flags on the remaining stacked transit hops.
	for i := 0; i < len(p.Hops); i++ {
		h := &p.Hops[i]
		if inSeq[i] || !sequenceEligible(h) {
			continue
		}
		var flag Flag
		switch {
		case h.Stack.Depth() >= 2 && vendorRangeHit(h):
			flag = FlagLSVR
		case h.Stack.Depth() >= 2:
			flag = FlagLSO
		case vendorRangeHit(h):
			flag = FlagLVR
		default:
			continue // single label, no evidence: classic MPLS
		}
		res.Segments = append(res.Segments, Segment{
			Start: i, End: i, Flag: flag,
			Label:       h.Stack.Top().Label,
			StackDepths: []int{h.Stack.Depth()},
		})
	}
	sortSegments(res.Segments)

	// Area partition: strong-flag hops are SR; other hops with MPLS
	// evidence (any LSE, revelation, or the implicit-tunnel qTTL
	// signature) are MPLS; the rest are IP. This is the conservative
	// partition of Sec. 7.1 (LSO counts as MPLS, not SR).
	for _, seg := range res.Segments {
		if !seg.Flag.Strong() {
			continue
		}
		for k := seg.Start; k <= seg.End; k++ {
			res.Areas[k] = AreaSR
		}
	}
	for i := range p.Hops {
		if res.Areas[i] == AreaSR {
			continue
		}
		h := &p.Hops[i]
		if h.HasStack() || h.Revealed || h.QTTL > 1 {
			res.Areas[i] = AreaMPLS
		}
	}
	return res
}

func sortSegments(segs []Segment) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].Start < segs[j-1].Start; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

// SegmentsByFlag groups a result's segments per flag.
func (r *Result) SegmentsByFlag() map[Flag][]Segment {
	out := make(map[Flag][]Segment)
	for _, s := range r.Segments {
		out[s.Flag] = append(out[s.Flag], s)
	}
	return out
}

// HasSR reports whether the path shows strong SR evidence.
func (r *Result) HasSR() bool {
	for _, s := range r.Segments {
		if s.Flag.Strong() {
			return true
		}
	}
	return false
}

// HitsArea reports whether any hop of the path falls in the given area.
func (r *Result) HitsArea(a Area) bool {
	for _, got := range r.Areas {
		if got == a {
			return true
		}
	}
	return false
}
