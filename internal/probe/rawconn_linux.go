//go:build linux

//arest:allow nowallclock RawConn is the live raw-socket prober: RTTs and receive deadlines are genuine wall-clock measurements of the real Internet, outside the simulator's determinism contract (DESIGN.md §7 covers the netsim backend; this backend is inherently nondeterministic)

//arest:allow noerrdrop the discarded errors here are syscall.Close on teardown and error-unwind paths: the descriptors are being abandoned either way and Close has no recovery action; every measurement-carrying syscall error is propagated

package probe

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"syscall"
	"time"

	"arest/internal/pkt"
)

// RawConn implements Conn over Linux raw sockets, turning the Tracer into a
// real Internet prober: probes are sent verbatim (IP_HDRINCL semantics of
// IPPROTO_RAW) and ICMP replies are received with their full IPv4 header,
// exactly the byte stream the simulator backend emulates. Requires
// CAP_NET_RAW (or root).
//
// Exchange matches replies to probes by the quoted original datagram
// (source/destination/IP-ID for errors, identifier/sequence for echo
// replies), discarding unrelated ICMP traffic that shares the socket.
type RawConn struct {
	sendFD  int
	recvFD  int
	Timeout time.Duration
}

// ErrRawSocket wraps raw-socket setup failures (typically permission).
var ErrRawSocket = errors.New("probe: raw socket unavailable")

// NewRawConn opens the send (IPPROTO_RAW) and receive (IPPROTO_ICMP)
// sockets. The caller must Close it.
func NewRawConn(timeout time.Duration) (*RawConn, error) {
	send, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("%w: send socket: %v", ErrRawSocket, err)
	}
	recv, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(send)
		return nil, fmt.Errorf("%w: recv socket: %v", ErrRawSocket, err)
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &RawConn{sendFD: send, recvFD: recv, Timeout: timeout}, nil
}

// Close releases both sockets.
func (c *RawConn) Close() error {
	err1 := syscall.Close(c.sendFD)
	err2 := syscall.Close(c.recvFD)
	if err1 != nil {
		return err1
	}
	return err2
}

// recvSlice bounds a single blocking Recvfrom so the receive loop re-checks
// ctx at least this often: a cancellation lands within one slice even while
// unrelated ICMP traffic keeps the socket busy.
const recvSlice = 100 * time.Millisecond

// Exchange implements Conn. The receive wait is sliced: each Recvfrom
// blocks at most recvSlice before the loop re-checks both the overall
// Timeout deadline and ctx, so a cancelled context aborts a quiet (or
// noisy-but-unmatched) wait promptly instead of riding out the full
// timeout.
func (c *RawConn) Exchange(ctx context.Context, src netip.Addr, wire []byte) ([]byte, float64, error) {
	probe, err := pkt.UnmarshalIPv4(wire)
	if err != nil {
		return nil, 0, fmt.Errorf("probe: malformed probe: %w", err)
	}
	dst := probe.Dst.As4()
	sa := &syscall.SockaddrInet4{Addr: dst}
	start := time.Now()
	if err := syscall.Sendto(c.sendFD, wire, 0, sa); err != nil {
		return nil, 0, fmt.Errorf("probe: sendto: %w", err)
	}
	deadline := start.Add(c.Timeout)
	buf := make([]byte, 65536)
	for {
		if ctx.Err() != nil {
			return nil, 0, context.Cause(ctx)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, 0, nil // timeout: hop shows "*"
		}
		if remain > recvSlice {
			remain = recvSlice
		}
		tv := syscall.NsecToTimeval(remain.Nanoseconds())
		if err := syscall.SetsockoptTimeval(c.recvFD, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv); err != nil {
			return nil, 0, fmt.Errorf("probe: rcvtimeo: %w", err)
		}
		n, _, err := syscall.Recvfrom(c.recvFD, buf, 0)
		if err != nil {
			if errno, ok := err.(syscall.Errno); ok &&
				(errno == syscall.EAGAIN || errno == syscall.EWOULDBLOCK || errno == syscall.EINTR) {
				continue // slice expired: loop re-checks ctx and the deadline
			}
			return nil, 0, fmt.Errorf("probe: recvfrom: %w", err)
		}
		reply := make([]byte, n)
		copy(reply, buf[:n])
		if matchesProbe(probe, reply) {
			return reply, float64(time.Since(start)) / float64(time.Millisecond), nil
		}
		// Unrelated ICMP traffic: keep listening until the deadline.
	}
}

// matchesProbe decides whether a received ICMP packet answers the probe.
func matchesProbe(probe *pkt.IPv4, reply []byte) bool {
	rip, err := pkt.UnmarshalIPv4(reply)
	if err != nil || rip.Protocol != pkt.ProtoICMP {
		return false
	}
	m, err := pkt.UnmarshalICMP(rip.Payload)
	if err != nil {
		return false
	}
	switch {
	case m.IsError():
		q, err := m.QuotedIPv4()
		if err != nil {
			// Some routers quote fewer than 20 bytes; fall back to a
			// source/destination glance on the raw quote.
			return false
		}
		return q.Src == probe.Src && q.Dst == probe.Dst && q.ID == probe.ID
	case m.Type == pkt.ICMPEchoReply && probe.Protocol == pkt.ProtoICMP:
		req, err := pkt.UnmarshalICMP(probe.Payload)
		if err != nil {
			return false
		}
		return m.ID == req.ID && m.Seq == req.Seq
	default:
		return false
	}
}

// NewRawTracer is a convenience constructor wiring a RawConn into a Tracer
// probing from the given local address. It returns ErrRawSocket without
// privileges; callers (and tests) should degrade gracefully.
func NewRawTracer(local netip.Addr, timeout time.Duration) (*Tracer, *RawConn, error) {
	conn, err := NewRawConn(timeout)
	if err != nil {
		return nil, nil, err
	}
	t := NewTracer(conn, local)
	t.Reveal = false // revelation re-probes aggressively; opt in explicitly
	return t, conn, nil
}

// rawAvailable reports whether raw sockets can be opened (used by tests).
func rawAvailable() bool {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		return false
	}
	syscall.Close(fd)
	return true
}
