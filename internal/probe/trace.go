// Package probe implements the measurement tools of the pipeline: a Paris
// traceroute engine (flow-stable probing), TNT-style MPLS tunnel
// classification (explicit / implicit / opaque / invisible) and revelation
// of hidden tunnel content, and ping support for TTL fingerprinting.
//
// Probes cross the network boundary as serialized IPv4/UDP/ICMP bytes, so
// the engine exercises exactly the codec path a raw-socket tool would.
package probe

//arest:allow noerrdrop the only discarded errors in this file are fmt.Fprintf into a strings.Builder, whose Write is documented to always return a nil error; String renders diagnostics and carries no measurement

import (
	"fmt"
	"net/netip"
	"strings"

	"arest/internal/mpls"
)

// Hop is one traceroute hop observation.
type Hop struct {
	TTL      int        `json:"ttl"`
	Addr     netip.Addr `json:"addr"` // zero value: no reply ("*")
	RTT      float64    `json:"rtt_ms"`
	ICMPType uint8      `json:"icmp_type"`
	ICMPCode uint8      `json:"icmp_code"`
	// ReplyTTL is the received IP TTL of the reply; subtracting it from the
	// inferred initial TTL estimates the return path length (RTLA) and
	// feeds TTL fingerprinting.
	ReplyTTL uint8 `json:"reply_ttl"`
	// QTTL is the quoted IP TTL from the ICMP error body; values above 1
	// are the classic implicit-tunnel signature.
	QTTL uint8 `json:"qttl"`
	// Stack is the RFC 4950-quoted label stack, nil when absent.
	Stack mpls.Stack `json:"stack,omitempty"`
	// Revealed marks hops discovered by TNT revelation (DPR) rather than
	// by the original trace; their LSEs are unavailable by construction.
	Revealed bool `json:"revealed,omitempty"`
	// DecodeError marks a hop that answered with a reply whose ICMP
	// payload failed strict parsing: the responder address, reply TTL and
	// RTT are real observations, but ICMPType/ICMPCode, the quoted TTL and
	// the label stack are unavailable. Such hops count as responsive (no
	// retries, no gap) but never as destination-reached evidence.
	DecodeError bool `json:"decode_error,omitempty"`
}

// Responded reports whether the hop replied at all.
func (h *Hop) Responded() bool { return h.Addr.IsValid() }

// HasStack reports whether the hop quoted at least one LSE.
func (h *Hop) HasStack() bool { return len(h.Stack) > 0 }

// HaltReason explains why a trace stopped.
type HaltReason int

const (
	// HaltReached: the destination answered.
	HaltReached HaltReason = iota
	// HaltGaps: too many consecutive unresponsive hops.
	HaltGaps
	// HaltMaxTTL: the TTL budget ran out.
	HaltMaxTTL
	// HaltLoop: a forwarding loop was detected.
	HaltLoop
	// HaltError: a probe exchange failed after exhausting the retry
	// budget. The trace keeps every hop measured before the failure and
	// records the error text in Trace.Err; it is a degraded observation,
	// not an aborted one.
	HaltError
)

func (r HaltReason) String() string {
	switch r {
	case HaltReached:
		return "reached"
	case HaltGaps:
		return "gaps"
	case HaltMaxTTL:
		return "max-ttl"
	case HaltLoop:
		return "loop"
	case HaltError:
		return "error"
	default:
		return "?"
	}
}

// Trace is one Paris traceroute path, possibly augmented by TNT revelation.
type Trace struct {
	VP     netip.Addr `json:"vp"`
	Dst    netip.Addr `json:"dst"`
	FlowID uint16     `json:"flow_id"`
	Hops   []Hop      `json:"hops"`
	Halt   HaltReason `json:"halt"`
	// Err is the transport error that halted the sweep when Halt ==
	// HaltError, empty otherwise. It is recorded as text so a trace —
	// including its failure — survives an archive round-trip unchanged.
	Err string `json:"err,omitempty"`
	// RevealErrs records auxiliary-trace failures during TNT revelation:
	// a failed DPR leaves the main sweep intact but marks that hidden
	// content may exist that could not be revealed (classification may
	// undercount tunnels). One entry per failed trigger, in hop order.
	RevealErrs []string `json:"reveal_errs,omitempty"`
}

// Failed reports whether the trace was halted by a transport error.
func (t *Trace) Failed() bool { return t.Halt == HaltError }

// Addrs returns the responding hop addresses in path order.
func (t *Trace) Addrs() []netip.Addr {
	var out []netip.Addr
	for i := range t.Hops {
		if t.Hops[i].Responded() {
			out = append(out, t.Hops[i].Addr)
		}
	}
	return out
}

// Reached reports whether the destination answered.
func (t *Trace) Reached() bool { return t.Halt == HaltReached }

func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s -> %s flow=%d (%s)\n", t.VP, t.Dst, t.FlowID, t.Halt)
	for i := range t.Hops {
		h := &t.Hops[i]
		if !h.Responded() {
			fmt.Fprintf(&b, "%3d  *\n", h.TTL)
			continue
		}
		mark := ""
		if h.Revealed {
			mark = " (revealed)"
		}
		if h.HasStack() {
			fmt.Fprintf(&b, "%3d  %-15s %6.2fms %s%s\n", h.TTL, h.Addr, h.RTT, h.Stack, mark)
		} else {
			fmt.Fprintf(&b, "%3d  %-15s %6.2fms%s\n", h.TTL, h.Addr, h.RTT, mark)
		}
	}
	return b.String()
}

// TunnelType is the Donnet et al. MPLS tunnel visibility taxonomy.
type TunnelType int

const (
	TunnelExplicit  TunnelType = iota // LSEs quoted at every hop
	TunnelImplicit                    // hops visible, no LSEs (qTTL signature)
	TunnelOpaque                      // only the ending hop and its LSE visible
	TunnelInvisible                   // nothing visible inside
)

func (t TunnelType) String() string {
	switch t {
	case TunnelExplicit:
		return "explicit"
	case TunnelImplicit:
		return "implicit"
	case TunnelOpaque:
		return "opaque"
	case TunnelInvisible:
		return "invisible"
	default:
		return "?"
	}
}

// Tunnel is a classified MPLS tunnel within a trace: the inclusive hop
// index range [Start, End] of its visible (or revealed) content.
type Tunnel struct {
	Start, End int
	Type       TunnelType
	// HiddenLen is the inferred number of hidden hops for opaque and
	// invisible tunnels (0 otherwise).
	HiddenLen int
}
