package pkt

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"

	"arest/internal/mpls"
)

// The append-style fast path must be byte-identical to the legacy Marshal
// API under every buffer condition that scratch reuse produces: nil dst,
// a dst with a live prefix, and a dirty recycled buffer whose old contents
// must never leak into the new encoding. Likewise the Into decoders must
// yield the same message the copying decoders do.

const equivRounds = 200

func randV4(rng *rand.Rand) netip.Addr {
	var a [4]byte
	rng.Read(a[:])
	return netip.AddrFrom4(a)
}

func randV6(rng *rand.Rand) netip.Addr {
	var a [16]byte
	rng.Read(a[:])
	return netip.AddrFrom16(a)
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// checkAppendEquiv verifies one message's append encoding against the
// legacy output under the three buffer conditions. scratch is reused and
// returned so successive calls exercise genuinely dirty buffers.
func checkAppendEquiv(t *testing.T, want []byte, scratch []byte,
	appendFn func(dst []byte) ([]byte, error)) []byte {
	t.Helper()
	got, err := appendFn(nil)
	if err != nil {
		t.Fatalf("AppendMarshal(nil): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendMarshal(nil) differs from Marshal:\n got %x\nwant %x", got, want)
	}
	prefix := []byte{0xde, 0xad, 0xbe, 0xef}
	got, err = appendFn(prefix)
	if err != nil {
		t.Fatalf("AppendMarshal(prefix): %v", err)
	}
	if !bytes.Equal(got[:4], prefix) {
		t.Fatalf("AppendMarshal clobbered its prefix: %x", got[:4])
	}
	if !bytes.Equal(got[4:], want) {
		t.Fatalf("AppendMarshal(prefix) suffix differs:\n got %x\nwant %x", got[4:], want)
	}
	// Dirty recycled buffer: poison whatever capacity is there, then
	// append from length zero. Any stale byte showing through means an
	// encoder skipped part of the region it claimed.
	for i := range scratch[:cap(scratch)] {
		scratch[:cap(scratch)][i] = 0xa5
	}
	got, err = appendFn(scratch[:0])
	if err != nil {
		t.Fatalf("AppendMarshal(dirty): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendMarshal(dirty scratch) differs:\n got %x\nwant %x", got, want)
	}
	return got
}

func TestAppendMarshalEquivalenceIPv4(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	var scratch []byte
	for i := 0; i < equivRounds; i++ {
		p := &IPv4{
			TTL:      uint8(1 + rng.Intn(255)),
			Protocol: uint8(rng.Intn(256)),
			ID:       uint16(rng.Intn(1 << 16)),
			DontFrag: rng.Intn(2) == 0,
			Src:      randV4(rng),
			Dst:      randV4(rng),
			Payload:  randBytes(rng, rng.Intn(64)),
		}
		want, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		scratch = checkAppendEquiv(t, want, scratch, p.AppendMarshal)
	}
}

func TestAppendMarshalEquivalenceUDP(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	var scratch []byte
	for i := 0; i < equivRounds; i++ {
		src, dst := randV4(rng), randV4(rng)
		u := &UDP{
			SrcPort: uint16(rng.Intn(1 << 16)),
			DstPort: uint16(rng.Intn(1 << 16)),
			Payload: randBytes(rng, rng.Intn(64)),
		}
		want, err := u.Marshal(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		scratch = checkAppendEquiv(t, want, scratch, func(b []byte) ([]byte, error) {
			return u.AppendMarshal(b, src, dst)
		})
	}
}

// randICMP builds a random echo or error message; error messages quote a
// valid serialized IPv4 datagram and half of them carry an RFC 4950 stack.
func randICMP(t *testing.T, rng *rand.Rand) *ICMP {
	t.Helper()
	if rng.Intn(2) == 0 {
		typ := uint8(ICMPEchoRequest)
		if rng.Intn(2) == 0 {
			typ = ICMPEchoReply
		}
		return &ICMP{Type: typ, ID: uint16(rng.Intn(1 << 16)),
			Seq: uint16(rng.Intn(1 << 16)), Body: randBytes(rng, rng.Intn(48))}
	}
	quoted := &IPv4{TTL: 1, Protocol: ProtoUDP, ID: uint16(rng.Intn(1 << 16)),
		Src: randV4(rng), Dst: randV4(rng), Payload: randBytes(rng, 8+rng.Intn(24))}
	qb, err := quoted.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m := &ICMP{Type: ICMPTimeExceeded, Code: CodeTTLExceeded, Body: qb}
	if rng.Intn(2) == 0 {
		m.Type, m.Code = ICMPDestUnreachable, CodePortUnreachable
	}
	if rng.Intn(2) == 0 {
		stack := make(mpls.Stack, 1+rng.Intn(4))
		for j := range stack {
			stack[j] = mpls.LSE{Label: uint32(16 + rng.Intn(1<<20-16)),
				TC: uint8(rng.Intn(8)), TTL: uint8(rng.Intn(256))}
		}
		obj, err := NewMPLSExtension(stack)
		if err != nil {
			t.Fatal(err)
		}
		m.Extensions = []ExtensionObject{obj}
	}
	return m
}

func icmpEqual(a, b *ICMP) bool {
	if a.Type != b.Type || a.Code != b.Code || a.ID != b.ID || a.Seq != b.Seq {
		return false
	}
	if !bytes.Equal(a.Body, b.Body) || len(a.Extensions) != len(b.Extensions) {
		return false
	}
	for i := range a.Extensions {
		if a.Extensions[i].Class != b.Extensions[i].Class ||
			a.Extensions[i].CType != b.Extensions[i].CType ||
			!bytes.Equal(a.Extensions[i].Payload, b.Extensions[i].Payload) {
			return false
		}
	}
	return true
}

func TestAppendMarshalEquivalenceICMP(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	var scratch []byte
	var into ICMP
	for i := 0; i < equivRounds; i++ {
		m := randICMP(t, rng)
		want, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		scratch = checkAppendEquiv(t, want, scratch, m.AppendMarshal)

		legacy, err := UnmarshalICMP(want)
		if err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalICMPInto(&into, want); err != nil {
			t.Fatalf("UnmarshalICMPInto: %v", err)
		}
		if !icmpEqual(legacy, &into) {
			t.Fatalf("Into decode differs from legacy:\nlegacy %+v\n  into %+v", legacy, &into)
		}
	}
}

func TestAppendMarshalEquivalenceICMPv6(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	var scratch []byte
	var into ICMPv6
	for i := 0; i < equivRounds; i++ {
		src, dst := randV6(rng), randV6(rng)
		var m *ICMPv6
		if rng.Intn(2) == 0 {
			typ := uint8(ICMPv6EchoRequest)
			if rng.Intn(2) == 0 {
				typ = ICMPv6EchoReply
			}
			m = &ICMPv6{Type: typ, ID: uint16(rng.Intn(1 << 16)),
				Seq: uint16(rng.Intn(1 << 16)), Body: randBytes(rng, rng.Intn(48))}
		} else {
			quoted := &IPv6{NextHeader: ProtoICMPv6, HopLimit: 1,
				Src: randV6(rng), Dst: randV6(rng), Payload: randBytes(rng, 8+rng.Intn(24))}
			qb, err := quoted.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			m = &ICMPv6{Type: ICMPv6TimeExceeded, Body: qb}
			if rng.Intn(2) == 0 {
				stack := mpls.Stack{{Label: uint32(16 + rng.Intn(1<<19)), TTL: uint8(rng.Intn(256))}}
				obj, err := NewMPLSExtension(stack)
				if err != nil {
					t.Fatal(err)
				}
				m.Extensions = []ExtensionObject{obj}
			}
		}
		want, err := m.Marshal(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		scratch = checkAppendEquiv(t, want, scratch, func(b []byte) ([]byte, error) {
			return m.AppendMarshal(b, src, dst)
		})

		legacy, err := UnmarshalICMPv6(src, dst, want)
		if err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalICMPv6Into(&into, src, dst, want); err != nil {
			t.Fatalf("UnmarshalICMPv6Into: %v", err)
		}
		if legacy.Type != into.Type || legacy.Code != into.Code ||
			legacy.ID != into.ID || legacy.Seq != into.Seq ||
			!bytes.Equal(legacy.Body, into.Body) ||
			len(legacy.Extensions) != len(into.Extensions) {
			t.Fatalf("Into decode differs from legacy:\nlegacy %+v\n  into %+v", legacy, &into)
		}
	}
}

func TestAppendMarshalEquivalenceIPv6AndSRH(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	var scratch, scratch2 []byte
	var intoIP IPv6
	var intoSRH SRH
	for i := 0; i < equivRounds; i++ {
		p := &IPv6{
			TrafficClass: uint8(rng.Intn(256)),
			FlowLabel:    uint32(rng.Intn(1 << 20)),
			NextHeader:   uint8(rng.Intn(256)),
			HopLimit:     uint8(rng.Intn(256)),
			Src:          randV6(rng),
			Dst:          randV6(rng),
			Payload:      randBytes(rng, rng.Intn(64)),
		}
		want, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		scratch = checkAppendEquiv(t, want, scratch, p.AppendMarshal)
		if err := UnmarshalIPv6Into(&intoIP, want); err != nil {
			t.Fatal(err)
		}
		legacy, err := UnmarshalIPv6(want)
		if err != nil {
			t.Fatal(err)
		}
		if legacy.Src != intoIP.Src || legacy.Dst != intoIP.Dst ||
			!bytes.Equal(legacy.Payload, intoIP.Payload) {
			t.Fatalf("IPv6 Into decode differs from legacy")
		}

		nseg := 1 + rng.Intn(5)
		h := &SRH{NextHeader: ProtoICMPv6, SegmentsLeft: uint8(rng.Intn(nseg + 1)),
			Segments: make([]netip.Addr, nseg)}
		for j := range h.Segments {
			h.Segments[j] = randV6(rng)
		}
		wantSRH, err := h.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		scratch2 = checkAppendEquiv(t, wantSRH, scratch2, h.AppendMarshal)
		n, err := UnmarshalSRHInto(&intoSRH, wantSRH)
		if err != nil || n != len(wantSRH) {
			t.Fatalf("UnmarshalSRHInto: n=%d err=%v", n, err)
		}
		legacySRH, n2, err := UnmarshalSRH(wantSRH)
		if err != nil || n2 != n {
			t.Fatalf("UnmarshalSRH: n=%d err=%v", n2, err)
		}
		if legacySRH.SegmentsLeft != intoSRH.SegmentsLeft ||
			len(legacySRH.Segments) != len(intoSRH.Segments) {
			t.Fatalf("SRH Into decode differs from legacy")
		}
		for j := range legacySRH.Segments {
			if legacySRH.Segments[j] != intoSRH.Segments[j] {
				t.Fatalf("SRH segment %d differs", j)
			}
		}
	}
}

func TestAppendMarshalEquivalenceMPLSStack(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	var scratch []byte
	for i := 0; i < equivRounds; i++ {
		stack := make(mpls.Stack, 1+rng.Intn(6))
		for j := range stack {
			stack[j] = mpls.LSE{Label: uint32(rng.Intn(1 << 20)),
				TC: uint8(rng.Intn(8)), TTL: uint8(rng.Intn(256))}
		}
		want, err := stack.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		scratch = checkAppendEquiv(t, want, scratch, stack.AppendMarshal)
	}
}

// The Into decoders alias their input; the legacy wrappers must not. A
// caller-visible difference here would let a recycled reply buffer rewrite
// history inside an already-returned packet.
func TestUnmarshalIntoAliasesLegacyCopies(t *testing.T) {
	p := &IPv4{TTL: 9, Protocol: ProtoUDP, Src: netip.MustParseAddr("10.0.0.1"),
		Dst: netip.MustParseAddr("10.0.0.2"), Payload: []byte{1, 2, 3, 4}}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := UnmarshalIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	var into IPv4
	if err := UnmarshalIPv4Into(&into, wire); err != nil {
		t.Fatal(err)
	}
	wire[IPv4HeaderLen] = 0xff
	if into.Payload[0] != 0xff {
		t.Fatal("UnmarshalIPv4Into should alias the input buffer")
	}
	if legacy.Payload[0] != 1 {
		t.Fatal("UnmarshalIPv4 must own its payload copy")
	}
}
