// Campaign: the paper's measurement pipeline end to end, scaled to run in
// seconds — synthetic worlds for a handful of Table 5 ASes, Anaximander
// target selection, TNT probing from several vantage points, fingerprinting
// and bdrmapIT-style annotation, then AReST detection and the headline
// statistics of Sec. 6.2.
package main

import (
	"context"
	"fmt"
	"os"

	"arest/internal/asgen"
	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/exp"
)

func main() {
	// A representative slice of the catalogue: strongly-deployed Content,
	// the ground-truth AS, an LSO-only stub, a claimed transit, and two
	// unknowns.
	ids := []int{7, 13, 15, 28, 40, 46}
	var records []asgen.Record
	for _, id := range ids {
		rec, ok := asgen.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown AS id %d\n", id)
			os.Exit(1)
		}
		records = append(records, rec)
	}

	cfg := exp.DefaultConfig()
	cfg.NumVPs = 4
	cfg.MaxTargets = 16
	cfg.MaxRouters = 30

	fmt.Printf("probing %d ASes from %d vantage points each...\n\n", len(records), cfg.NumVPs)
	campaign, err := exp.Run(context.Background(), records, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Fig. 8-style flag mix.
	t := eval.Table{Title: "AReST flag mix per AS",
		Headers: []string{"AS", "CVR", "CO", "LSVR", "LVR", "LSO", "traces", "IPs"}}
	for _, r := range campaign.ASes {
		sh := r.FlagShares()
		t.AddRow(fmt.Sprintf("#%d %s", r.Record.ID, r.Record.Name),
			sh[core.FlagCVR], sh[core.FlagCO], sh[core.FlagLSVR], sh[core.FlagLVR],
			sh[core.FlagLSO], r.TracesSent, r.DistinctIPs())
	}
	fmt.Print(t.Render())
	fmt.Println()

	// Fig. 10-style area view.
	at := eval.Table{Title: "SR / MPLS / IP areas",
		Headers: []string{"AS", "traces hitting SR", "SR ifaces", "MPLS ifaces", "IP ifaces"}}
	for _, r := range campaign.ASes {
		ts := r.AreaTraceShares()
		ic := r.AreaInterfaceCounts()
		at.AddRow(fmt.Sprintf("#%d %s", r.Record.ID, r.Record.Name),
			ts[core.AreaSR], ic[core.AreaSR], ic[core.AreaMPLS], ic[core.AreaIP])
	}
	fmt.Print(at.Render())
	fmt.Println()

	// Ground-truth scoring (the luxury the real paper only had for ESnet).
	gt := eval.Table{Title: "Strong-flag precision against simulator ground truth",
		Headers: []string{"AS", "TP", "FP", "precision"}}
	for _, r := range campaign.ASes {
		var cm eval.Confusion
		for f, c := range r.GroundTruth() {
			if f.Strong() {
				cm.Add(c)
			}
		}
		gt.AddRow(fmt.Sprintf("#%d %s", r.Record.ID, r.Record.Name), cm.TP, cm.FP, cm.Precision())
	}
	fmt.Print(gt.Render())
	fmt.Println()

	h := exp.ComputeHeadline(campaign)
	fmt.Printf("headline: SR detected in %d/%d claimed ASes (strong flags in %d); "+
		"evidence in %d/%d unknown ASes; %.0f%% of strong-SR hops fingerprinted\n",
		h.ClaimedDetected, h.ClaimedASes, h.ClaimedStrong,
		h.UnknownDetected, h.UnknownASes, 100*h.FingerprintedSRShare)
}
