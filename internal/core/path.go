package core

import (
	"net/netip"

	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/probe"
)

// Hop is one annotated hop: the traceroute observation plus the vendor
// fingerprint and AS ownership annotations AReST consumes.
type Hop struct {
	Addr     netip.Addr
	Stack    mpls.Stack
	Vendor   mpls.Vendor
	Source   fingerprint.Source
	ASN      int
	Revealed bool
	// QTTL carries the quoted IP TTL so implicit-tunnel hops can be
	// classified as MPLS area even without LSEs.
	QTTL uint8
	// Terminal marks the destination's own reply (port unreachable). The
	// same router already appeared at the previous TTL as a time-exceeded
	// hop, so terminal hops never extend label sequences: counting them
	// would let any egress that quotes its received stack twice fabricate
	// a two-hop "consecutive" run out of a single router.
	Terminal bool
}

// HasStack reports whether the hop quoted at least one LSE.
func (h *Hop) HasStack() bool { return len(h.Stack) > 0 }

// Fingerprinted reports whether a vendor annotation is available.
func (h *Hop) Fingerprinted() bool { return h.Vendor != mpls.VendorUnknown }

// Path is an annotated trace: the unit AReST analyzes. Unresponsive hops
// are dropped during construction; Hops holds only observations.
type Path struct {
	VP, Dst netip.Addr
	Hops    []Hop
}

// BuildPath annotates a trace with vendor fingerprints and AS ownership.
// asOf may be nil when AS annotation is unavailable (0 is recorded).
func BuildPath(tr *probe.Trace, ann *fingerprint.Annotator, asOf func(netip.Addr) int) *Path {
	p := &Path{VP: tr.VP, Dst: tr.Dst}
	for i := range tr.Hops {
		th := &tr.Hops[i]
		if !th.Responded() {
			continue
		}
		h := Hop{
			Addr:     th.Addr,
			Stack:    th.Stack.Clone(),
			Revealed: th.Revealed,
			QTTL:     th.QTTL,
			Terminal: th.ICMPType == 3, // destination unreachable
		}
		if ann != nil {
			r := ann.Vendor(th.Addr)
			h.Vendor, h.Source = r.Vendor, r.Source
		}
		if asOf != nil {
			h.ASN = asOf(th.Addr)
		}
		p.Hops = append(p.Hops, h)
	}
	return p
}

// RestrictToAS returns the sub-path of hops annotated with the given ASN,
// mirroring the paper's bdrmapIT-based delimitation of the AS of interest.
// Contiguity is preserved: only the first maximal run inside the AS is
// returned (paths normally enter and leave an AS once).
func (p *Path) RestrictToAS(asn int) *Path {
	out := &Path{VP: p.VP, Dst: p.Dst}
	started := false
	for i := range p.Hops {
		if p.Hops[i].ASN == asn {
			out.Hops = append(out.Hops, p.Hops[i])
			started = true
		} else if started {
			break
		}
	}
	return out
}

// DistinctAddrs returns the set of distinct hop addresses on the path.
func (p *Path) DistinctAddrs() map[netip.Addr]bool {
	out := make(map[netip.Addr]bool, len(p.Hops))
	for i := range p.Hops {
		out[p.Hops[i].Addr] = true
	}
	return out
}
