package core

import (
	"encoding/json"
	"testing"

	"arest/internal/mpls"
)

func TestNewReport(t *testing.T) {
	p := pathOf(
		ipHop(),
		mkHop(mpls.VendorCisco, 16005),
		mkHop(mpls.VendorUnknown, 16005),
		mkHop(mpls.VendorUnknown, 888999),
	)
	res := analyze(p)
	rep := NewReport(res)
	if rep.VP != p.VP || rep.Dst != p.Dst {
		t.Errorf("endpoints lost: %+v", rep)
	}
	if !rep.HasSR {
		t.Error("HasSR false")
	}
	if len(rep.Segments) != 1 || rep.Segments[0].Flag != "CVR" || rep.Segments[0].Stars != 5 {
		t.Fatalf("segments = %+v", rep.Segments)
	}
	if len(rep.Segments[0].Hops) != 2 {
		t.Errorf("segment hops = %v", rep.Segments[0].Hops)
	}
	if len(rep.Areas) != 4 || rep.Areas[0] != "ip" || rep.Areas[1] != "sr" || rep.Areas[3] != "mpls" {
		t.Errorf("areas = %v", rep.Areas)
	}
	if len(rep.Tunnels) != 1 || rep.Tunnels[0].Pattern != "sr-ldp" || !rep.Tunnels[0].Interworking {
		t.Errorf("tunnels = %+v", rep.Tunnels)
	}

	// The report must serialize and round-trip through JSON.
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Segments[0].Label != 16005 || back.Tunnels[0].Clouds[0].Kind != "sr" {
		t.Errorf("round trip: %+v", back)
	}
}

func TestNewReportEmptyPath(t *testing.T) {
	rep := NewReport(analyze(pathOf()))
	if rep.HasSR || len(rep.Segments) != 0 || len(rep.Tunnels) != 0 {
		t.Errorf("empty path report: %+v", rep)
	}
}
