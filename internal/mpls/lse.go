// Package mpls models MPLS label stack entries (RFC 3032), reserved label
// values, vendor Segment Routing label blocks (SRGB/SRLB), and per-router
// dynamic label pools.
//
// The 32-bit label stack entry layout is:
//
//	 0                   1                   2                   3
//	 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//	+-------------------------------+-----+-+---------------+
//	|            Label (20)         | TC  |S|    TTL (8)    |
//	+-------------------------------+-----+-+---------------+
//
// Stack encode/decode runs once per simulated hop, so the package holds
// the zero-allocation wire-path contract (DESIGN.md §11).
//
//arest:hotpath package
package mpls

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// MaxLabel is the largest encodable 20-bit label value.
const MaxLabel = 1<<20 - 1

// LSESize is the encoded size of one label stack entry in bytes.
const LSESize = 4

// Reserved label values defined by RFC 3032 and successors (values 0-15 are
// special purpose; RFC 7274 retires some of them). Values 0-255 are treated
// as reserved for specific MPLS purposes by the paper (Table 1 caption).
const (
	LabelIPv4ExplicitNull = 0 // RFC 3032
	LabelRouterAlert      = 1 // RFC 3032
	LabelIPv6ExplicitNull = 2 // RFC 3032
	LabelImplicitNull     = 3 // RFC 3032 (never on the wire)
	LabelELI              = 7 // RFC 6790 entropy label indicator
	LabelGAL              = 13
	LabelOAMAlert         = 14 // RFC 3429
)

// ErrTruncated is returned when decoding runs out of bytes.
var ErrTruncated = errors.New("mpls: truncated label stack entry")

// ErrLabelRange is returned when a label does not fit in 20 bits.
var ErrLabelRange = errors.New("mpls: label out of 20-bit range")

// LSE is one MPLS label stack entry.
type LSE struct {
	Label uint32 // 20-bit label
	TC    uint8  // 3-bit traffic class (RFC 5462)
	S     bool   // bottom-of-stack flag
	TTL   uint8  // 8-bit time to live
}

// Valid reports whether the LSE fields fit their wire-format widths.
func (e LSE) Valid() bool { return e.Label <= MaxLabel && e.TC <= 7 }

// Reserved reports whether the label is in the special-purpose range 0-15.
func (e LSE) Reserved() bool { return e.Label < 16 }

// Marshal encodes the LSE into exactly LSESize bytes.
func (e LSE) Marshal() ([]byte, error) {
	if !e.Valid() {
		return nil, fmt.Errorf("%w: label=%d tc=%d", ErrLabelRange, e.Label, e.TC)
	}
	b := make([]byte, LSESize)
	e.putInto(b)
	return b, nil
}

func (e LSE) putInto(b []byte) {
	v := e.Label<<12 | uint32(e.TC)<<9 | uint32(e.TTL)
	if e.S {
		v |= 1 << 8
	}
	binary.BigEndian.PutUint32(b, v)
}

// UnmarshalLSE decodes one LSE from the front of b.
func UnmarshalLSE(b []byte) (LSE, error) {
	if len(b) < LSESize {
		return LSE{}, ErrTruncated
	}
	v := binary.BigEndian.Uint32(b)
	return LSE{
		Label: v >> 12,
		TC:    uint8(v >> 9 & 0x7),
		S:     v>>8&1 == 1,
		TTL:   uint8(v),
	}, nil
}

// String renders the LSE in the conventional traceroute-style notation.
//
//arest:coldpath debug formatter, never on the wire path
func (e LSE) String() string {
	s := fmt.Sprintf("L=%d,TC=%d,S=%d,TTL=%d", e.Label, e.TC, b2i(e.S), e.TTL)
	return s
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Stack is an ordered MPLS label stack; index 0 is the top (active) entry.
type Stack []LSE

// Marshal encodes the stack top-first, forcing the S bit so that only the
// bottom entry carries it, as RFC 3032 requires.
func (s Stack) Marshal() ([]byte, error) {
	if len(s) == 0 {
		return nil, nil
	}
	return s.AppendMarshal(nil)
}

// AppendMarshal encodes the stack onto dst and returns the extended slice,
// allocating only when dst lacks capacity. The appended bytes are
// identical to Marshal's output (an empty stack appends nothing).
func (s Stack) AppendMarshal(dst []byte) ([]byte, error) {
	off := len(dst)
	if cap(dst) >= off+len(s)*LSESize {
		dst = dst[:off+len(s)*LSESize]
	} else {
		out := make([]byte, off+len(s)*LSESize)
		copy(out, dst)
		dst = out
	}
	for i, e := range s {
		if !e.Valid() {
			return nil, fmt.Errorf("%w: entry %d label=%d", ErrLabelRange, i, e.Label)
		}
		e.S = i == len(s)-1
		e.putInto(dst[off+i*LSESize:])
	}
	return dst, nil
}

// UnmarshalStack decodes entries until the bottom-of-stack flag is set.
// It returns the stack and the number of bytes consumed.
func UnmarshalStack(b []byte) (Stack, int, error) {
	var s Stack
	off := 0
	for {
		e, err := UnmarshalLSE(b[off:])
		if err != nil {
			return nil, off, err
		}
		s = append(s, e)
		off += LSESize
		if e.S {
			return s, off, nil
		}
		if len(s) > MaxStackDepth {
			return nil, off, fmt.Errorf("mpls: stack exceeds %d entries without bottom flag", MaxStackDepth)
		}
	}
}

// MaxStackDepth bounds decoding of malformed stacks that never set S.
const MaxStackDepth = 64

// Top returns the active (topmost) entry. It panics on an empty stack;
// use Depth to guard.
func (s Stack) Top() LSE { return s[0] }

// Bottom returns the last entry. It panics on an empty stack.
func (s Stack) Bottom() LSE { return s[len(s)-1] }

// Depth returns the number of entries.
func (s Stack) Depth() int { return len(s) }

// Push returns a new stack with e on top. The receiver is not modified.
func (s Stack) Push(e LSE) Stack {
	out := make(Stack, 0, len(s)+1)
	out = append(out, e)
	return append(out, s...)
}

// Pop returns a copy of the stack without its top entry.
func (s Stack) Pop() Stack {
	if len(s) <= 1 {
		return nil
	}
	out := make(Stack, len(s)-1)
	copy(out, s[1:])
	return out
}

// Swap returns a copy of the stack with the top label replaced by label,
// TTL carried over (already decremented by the caller if needed).
func (s Stack) Swap(label uint32) Stack {
	out := make(Stack, len(s))
	copy(out, s)
	out[0].Label = label
	return out
}

// Clone returns a deep copy of the stack.
func (s Stack) Clone() Stack {
	if s == nil {
		return nil
	}
	out := make(Stack, len(s))
	copy(out, s)
	return out
}

// Labels returns just the 20-bit label values, top first.
func (s Stack) Labels() []uint32 {
	out := make([]uint32, len(s))
	for i, e := range s {
		out[i] = e.Label
	}
	return out
}

// Equal reports whether two stacks have identical entries.
func (s Stack) Equal(o Stack) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the stack as "[top | ... | bottom]".
//
//arest:coldpath debug formatter, never on the wire path
func (s Stack) String() string {
	if len(s) == 0 {
		return "[]"
	}
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, " | ") + "]"
}
