// Package pkt implements the wire formats the measurement pipeline needs:
// IPv4, UDP, and ICMPv4, including ICMP multipart extensions (RFC 4884)
// carrying the MPLS label stack object (RFC 4950). Probes leave the vantage
// point and replies come back as these bytes, so the codecs are exercised
// end to end by every simulated traceroute.
package pkt

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	return finish(sum(b, 0))
}

// sum accumulates 16-bit big-endian words of b into acc without folding.
func sum(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func finish(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}
