package core

// CloudKind tags a region inside a labeled tunnel.
type CloudKind int

const (
	CloudSR CloudKind = iota
	CloudLDP
)

func (k CloudKind) String() string {
	if k == CloudSR {
		return "sr"
	}
	return "ldp"
}

// Cloud is one homogeneous region of a tunnel.
type Cloud struct {
	Kind CloudKind
	Len  int // hops
}

// Pattern is the chaining of SR and LDP clouds inside one tunnel.
type Pattern string

const (
	PatternFullSR   Pattern = "full-sr"
	PatternFullLDP  Pattern = "full-ldp"
	PatternSRLDP    Pattern = "sr-ldp"
	PatternLDPSR    Pattern = "ldp-sr"
	PatternLDPSRLDP Pattern = "ldp-sr-ldp"
	PatternSRLDPSR  Pattern = "sr-ldp-sr"
	PatternOther    Pattern = "other"
)

// TunnelAnalysis describes one labeled tunnel found on a path.
type TunnelAnalysis struct {
	Start, End int
	Clouds     []Cloud
	Pattern    Pattern
}

// Interworking reports whether the tunnel mixes SR and LDP clouds.
func (t *TunnelAnalysis) Interworking() bool {
	return t.Pattern != PatternFullSR && t.Pattern != PatternFullLDP
}

// Tunnels segments the path into maximal runs of LSE-carrying hops and
// classifies each run's SR/LDP structure. A hop belongs to the SR cloud
// when a strong flag covers it, and to the LDP cloud otherwise — single
// labels outside vendor SR ranges are exactly what classic LDP exposes.
func (r *Result) Tunnels() []TunnelAnalysis {
	strong := make([]bool, len(r.Path.Hops))
	for _, s := range r.Segments {
		if !s.Flag.Strong() {
			continue
		}
		for k := s.Start; k <= s.End; k++ {
			strong[k] = true
		}
	}
	var out []TunnelAnalysis
	for i := 0; i < len(r.Path.Hops); i++ {
		if !r.Path.Hops[i].HasStack() || r.Path.Hops[i].Terminal {
			continue
		}
		j := i
		for j+1 < len(r.Path.Hops) && r.Path.Hops[j+1].HasStack() && !r.Path.Hops[j+1].Terminal {
			j++
		}
		ta := TunnelAnalysis{Start: i, End: j}
		for k := i; k <= j; k++ {
			kind := CloudLDP
			if strong[k] {
				kind = CloudSR
			}
			if n := len(ta.Clouds); n > 0 && ta.Clouds[n-1].Kind == kind {
				ta.Clouds[n-1].Len++
			} else {
				ta.Clouds = append(ta.Clouds, Cloud{Kind: kind, Len: 1})
			}
		}
		ta.Pattern = classifyPattern(ta.Clouds)
		out = append(out, ta)
		i = j
	}
	return out
}

func classifyPattern(clouds []Cloud) Pattern {
	kinds := make([]CloudKind, len(clouds))
	for i, c := range clouds {
		kinds[i] = c.Kind
	}
	switch {
	case matchKinds(kinds, CloudSR):
		return PatternFullSR
	case matchKinds(kinds, CloudLDP):
		return PatternFullLDP
	case matchKinds(kinds, CloudSR, CloudLDP):
		return PatternSRLDP
	case matchKinds(kinds, CloudLDP, CloudSR):
		return PatternLDPSR
	case matchKinds(kinds, CloudLDP, CloudSR, CloudLDP):
		return PatternLDPSRLDP
	case matchKinds(kinds, CloudSR, CloudLDP, CloudSR):
		return PatternSRLDPSR
	default:
		return PatternOther
	}
}

func matchKinds(got []CloudKind, want ...CloudKind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
