// Quickstart: build a small SR-MPLS network (the shape of Fig. 6's green
// path), traceroute through it with the TNT-style prober, fingerprint the
// hops, and run AReST to reveal the Segment Routing tunnel.
package main

import (
	"context"
	"fmt"
	"net/netip"

	"arest/internal/core"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

func main() {
	// 1. Network: vp -- gw -- PE1 -- P1 -- P2 -- P3 -- PE2 -- target.
	//    The PE1..PE2 region is a Cisco SR-MPLS domain in AS 65010 with
	//    ttl-propagate and RFC 4950 enabled => explicit tunnels.
	n := netsim.New(1)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	prof.SNMPOpen = true

	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 64999,
		Vendor: mpls.VendorLinux, Profile: netsim.DefaultProfile(mpls.VendorLinux)})
	mk := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 65010,
			Vendor: mpls.VendorCisco, Profile: prof,
			SREnabled: true, Mode: netsim.ModeSR})
	}
	pe1, p1, p2, p3, pe2 := mk("pe1"), mk("p1"), mk("p2"), mk("p3"), mk("pe2")
	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, p1.ID, 10)
	n.Connect(p1.ID, p2.ID, 10)
	n.Connect(p2.ID, p3.ID, 10)
	n.Connect(p3.ID, pe2.ID, 10)

	vp := netip.MustParseAddr("172.16.0.10")
	target := netip.MustParseAddr("100.64.0.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	n.Compute()

	// 2. Probe: Paris traceroute with TNT revelation, over real
	//    IPv4/UDP/ICMP bytes.
	tracer := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	trace, err := tracer.Trace(context.Background(), target, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(trace)

	// 3. Fingerprint the hops (TTL signatures + the SNMPv3 dataset).
	ttl, err := fingerprint.CollectTTL(context.Background(), []*probe.Trace{trace}, tracer, 1, nil)
	if err != nil {
		panic(err)
	}
	ann := fingerprint.NewAnnotator(fingerprint.SNMPDataset(n), ttl)

	// 4. AReST: detect SR-MPLS segments.
	path := core.BuildPath(trace, ann, nil)
	result := core.NewDetector().Analyze(path)

	fmt.Println("AReST segments:")
	for _, seg := range result.Segments {
		fmt.Printf("  %-4s (%d stars) label=%d over %d hops:", seg.Flag, seg.Flag.Stars(), seg.Label, seg.Len())
		for k := seg.Start; k <= seg.End; k++ {
			fmt.Printf(" %s", path.Hops[k].Addr)
		}
		fmt.Println()
	}
	for _, tun := range result.Tunnels() {
		fmt.Printf("tunnel pattern: %s (clouds %v)\n", tun.Pattern, tun.Clouds)
	}

	// The expected outcome: one five-star CVR segment across P1..P3 and
	// PE2, all carrying PE2's node-SID label from the Cisco SRGB.
	label := pe1.SRGB.Lo + uint32(pe2.NodeIndex())
	fmt.Printf("\nexpected node-SID label for pe2: %d (in Cisco SRGB %s)\n", label, mpls.CiscoSRGB)
}
