package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestPkg materializes a one-file package in a temp dir and returns
// the dir. The loader under test is rooted at the real module so stdlib
// imports resolve; the package itself may live anywhere.
func writeTestPkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func testLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// flagIdents is a toy analyzer that reports every identifier named "bad".
func flagIdents() *Analyzer {
	return &Analyzer{
		Name: "flagbad",
		Doc:  "test analyzer: flags identifiers named bad",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && id.Name == "bad" {
						pass.Report(id.Pos(), "identifier %q is flagged", id.Name)
					}
					return true
				})
			}
			return nil
		},
	}
}

func runOn(t *testing.T, src string, r *Runner) []Diagnostic {
	t.Helper()
	dir := writeTestPkg(t, src)
	l := testLoader(t)
	pkg, err := l.LoadDir(dir, "linttest/p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := r.Run([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestRunnerReportsAndSorts(t *testing.T) {
	diags := runOn(t, "package p\n\nvar bad = 1\n\nfunc f() { bad++; _ = bad }\n",
		&Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Line > b.Line || (a.Line == b.Line && a.Column > b.Column) {
			t.Errorf("diagnostics out of order: %v before %v", diags[i-1], diags[i])
		}
	}
}

func TestAllowSuppresses(t *testing.T) {
	diags := runOn(t, `package p

//arest:allow flagbad the identifier is load-bearing in this fixture

var bad = 1
`, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 0 {
		t.Fatalf("allow directive did not suppress: %v", diags)
	}
}

func TestAllowMissingReason(t *testing.T) {
	diags := runOn(t, `package p

//arest:allow flagbad

var bad = 1
`, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	var hasReasonErr, hasFinding bool
	for _, d := range diags {
		if d.Analyzer == DirectiveAnalyzerName && strings.Contains(d.Message, "missing its written reason") {
			hasReasonErr = true
		}
		if d.Analyzer == "flagbad" {
			hasFinding = true
		}
	}
	if !hasReasonErr {
		t.Errorf("reason-less directive not reported: %v", diags)
	}
	if !hasFinding {
		t.Errorf("malformed directive must not suppress; diagnostics: %v", diags)
	}
}

func TestAllowUnknownAnalyzer(t *testing.T) {
	diags := runOn(t, `package p

//arest:allow nosuchcheck because reasons
`, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown analyzer "nosuchcheck"`) {
		t.Fatalf("unknown-analyzer directive not reported: %v", diags)
	}
}

func TestUnusedAllowReported(t *testing.T) {
	src := `package p

//arest:allow flagbad nothing here actually trips it

var good = 1
`
	diags := runOn(t, src, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused //arest:allow") {
		t.Fatalf("unused allow not reported: %v", diags)
	}
	diags = runOn(t, src, &Runner{Analyzers: []*Analyzer{flagIdents()}, KeepUnusedAllows: true})
	if len(diags) != 0 {
		t.Fatalf("KeepUnusedAllows still reported: %v", diags)
	}
}

func TestLoadAllCoversModule(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{
		"arest/internal/netsim",
		"arest/internal/obs",
		"arest/internal/lint",
		"arest/cmd/arestlint",
	} {
		if !seen[want] {
			t.Errorf("LoadAll missed %s (got %d packages)", want, len(pkgs))
		}
	}
	for p := range seen {
		if strings.Contains(p, "testdata") {
			t.Errorf("LoadAll descended into testdata: %s", p)
		}
	}
}

// fakeTB records harness failures so the want harness can be tested
// against intentionally wrong expectations.
type fakeTB struct {
	errors []string
	fatal  bool
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.fatal = true
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
	panic(f)
}

func TestWantHarnessMatches(t *testing.T) {
	dir := writeTestPkg(t, `package p

var bad = 1 // want "identifier \"bad\" is flagged"
var good = 2
`)
	l := testLoader(t)
	RunWantTest(t, l, dir, "linttest/want", flagIdents())
}

func TestWantHarnessCatchesMismatch(t *testing.T) {
	dir := writeTestPkg(t, `package p

var bad = 1
var good = 2 // want "never reported"
`)
	l := testLoader(t)
	ft := &fakeTB{}
	func() {
		defer func() { recover() }()
		RunWantTest(ft, l, dir, "linttest/mismatch", flagIdents())
	}()
	var unexpected, unmet bool
	for _, e := range ft.errors {
		if strings.Contains(e, "unexpected finding") {
			unexpected = true
		}
		if strings.Contains(e, "no finding matched") {
			unmet = true
		}
	}
	if !unexpected || !unmet {
		t.Fatalf("want harness missed mismatches: %v", ft.errors)
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("FindModuleRoot returned %s without go.mod: %v", root, err)
	}
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("FindModuleRoot succeeded outside any module")
	}
}

func TestSortAndDedupe(t *testing.T) {
	pos := func(file string, line int) token.Position {
		return token.Position{Filename: file, Line: line, Column: 1}
	}
	in := []Diagnostic{
		{Analyzer: "a", Pos: pos("b.go", 2), Message: "m"},
		{Analyzer: "a", Pos: pos("a.go", 9), Message: "m"},
		{Analyzer: "a", Pos: pos("b.go", 2), Message: "m"},
	}
	SortDiagnostics(in)
	out := dedupe(in)
	if len(out) != 2 || out[0].Pos.Filename != "a.go" || out[1].Pos.Filename != "b.go" {
		t.Fatalf("sort+dedupe wrong: %v", out)
	}
}
