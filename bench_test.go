// Package arest holds the benchmark harness: one benchmark per table and
// figure of the paper (regenerating the artifact from a shared campaign),
// plus ablation benchmarks for the design choices called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package arest

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"testing"

	"arest/internal/asgen"
	"arest/internal/core"
	"arest/internal/exp"
	"arest/internal/fingerprint"
	"arest/internal/longitudinal"
	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/pkt"
	"arest/internal/probe"
	"arest/internal/survey"
)

var (
	benchOnce sync.Once
	benchCamp *exp.Campaign
	benchErr  error
)

// benchCampaign builds one shared campaign over a representative catalogue
// slice (claimed/unknown, every category, the ground-truth AS).
func benchCampaign(b *testing.B) *exp.Campaign {
	b.Helper()
	benchOnce.Do(func() {
		cfg := exp.Config{
			Seed: 20250405, NumVPs: 4, MaxTargets: 16,
			FlowsPerTarget: 1, AliasCandidateCap: 80, MaxRouters: 28,
		}
		var recs []asgen.Record
		for _, id := range []int{2, 7, 13, 15, 19, 28, 40, 46, 52, 55} {
			r, _ := asgen.ByID(id)
			recs = append(recs, r)
		}
		benchCamp, benchErr = exp.Run(context.Background(), recs, cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCamp
}

// benchExperiment benchmarks regenerating one figure/table from the shared
// campaign.
func benchExperiment(b *testing.B, id string) {
	c := benchCampaign(b)
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := e.Run(context.Background(), c); len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkHeadline measures the Sec. 6.2 aggregate computation and reports
// the measured rates alongside.
func BenchmarkHeadline(b *testing.B) {
	c := benchCampaign(b)
	var h exp.Headline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = exp.ComputeHeadline(c)
	}
	b.ReportMetric(100*float64(h.ClaimedStrong)/float64(max(1, h.ClaimedASes)), "%claimed-strong")
	b.ReportMetric(100*h.FingerprintedSRShare, "%sr-hops-fingerprinted")
	b.ReportMetric(100*h.SuffixMatchShare, "%suffix-matches")
}

// BenchmarkCampaignAS measures the full per-AS pipeline (world build,
// probing, fingerprinting, alias resolution, annotation, detection).
func BenchmarkCampaignAS(b *testing.B) {
	rec, _ := asgen.ByID(28)
	cfg := exp.Config{Seed: 1, NumVPs: 2, MaxTargets: 8, FlowsPerTarget: 1,
		AliasCandidateCap: 40, MaxRouters: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAS(context.Background(), rec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignParallel measures the shared bench campaign end to end
// at worker counts 1 (the sequential baseline) and GOMAXPROCS, exercising
// every fan-out stage: the AS pool, per-AS trace sweeps, fingerprint
// echoes, conflict-ordered alias probing, and detection. Output is
// identical at every worker count, so the ratio is pure scheduling gain.
func BenchmarkCampaignParallel(b *testing.B) {
	var recs []asgen.Record
	for _, id := range []int{2, 7, 13, 15, 19, 28, 40, 46, 52, 55} {
		r, _ := asgen.ByID(id)
		recs = append(recs, r)
	}
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 2 {
		// On a single-core runner an 8-worker run can show no speedup; it
		// then measures pure scheduling overhead instead.
		parallel = 8
	}
	for _, workers := range []int{1, parallel} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := exp.Config{
				Seed: 20250405, NumVPs: 4, MaxTargets: 16,
				FlowsPerTarget: 1, AliasCandidateCap: 80, MaxRouters: 28,
				Workers: workers,
			}
			for i := 0; i < b.N; i++ {
				if _, err := exp.Run(context.Background(), recs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSendContention measures raw Send throughput on one shared
// Network with all cores probing at once — the contention profile of a
// parallel VP sweep (atomic IP-ID bumps plus read-only FIB lookups).
func BenchmarkSendContention(b *testing.B) {
	rec, _ := asgen.ByID(15)
	dep := asgen.DeploymentFor(rec, 1)
	dep.Routers = 60
	w := asgen.Build(rec, dep, 1, 1)
	tgt := w.Targets[0]
	b.RunParallel(func(pb *testing.PB) {
		tc := probe.NewTracer(probe.NetsimConn{Net: w.Net}, w.VPs[0])
		tc.Reveal = false
		flow := uint16(0)
		for pb.Next() {
			flow++
			if _, err := tc.Trace(context.Background(), tgt, flow%8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetector measures raw AReST analysis throughput on a synthetic
// annotated path.
func BenchmarkDetector(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var paths []*core.Path
	for p := 0; p < 64; p++ {
		path := &core.Path{}
		for h := 0; h < 16; h++ {
			hop := core.Hop{}
			switch rng.Intn(3) {
			case 0:
				hop.Stack = mpls.Stack{{Label: 16000 + uint32(rng.Intn(30)), TTL: 1}}
			case 1:
				hop.Stack = mpls.Stack{{Label: uint32(rng.Intn(1 << 20)), TTL: 1},
					{Label: uint32(rng.Intn(1 << 20)), TTL: 1}}
			}
			path.Hops = append(path.Hops, hop)
		}
		paths = append(paths, path)
	}
	det := core.NewDetector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Analyze(paths[i%len(paths)])
	}
}

// BenchmarkProbe measures one full traceroute (wire codecs included).
func BenchmarkProbe(b *testing.B) {
	n := netsim.New(9)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	gw := n.AddRouter(netsim.RouterConfig{ASN: 64999, Vendor: mpls.VendorLinux,
		Profile: netsim.DefaultProfile(mpls.VendorLinux)})
	prev := gw
	var last *netsim.Router
	for i := 0; i < 10; i++ {
		r := n.AddRouter(netsim.RouterConfig{ASN: 65040, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: netsim.ModeSR})
		n.Connect(prev.ID, r.ID, 10)
		prev, last = r, r
	}
	vp := mustAddr("172.16.9.10")
	tgt := mustAddr("100.64.9.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, last.ID)
	n.Compute()
	tc := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := tc.Trace(context.Background(), tgt, 0)
		if err != nil || !tr.Reached() {
			b.Fatalf("trace failed: %v", err)
		}
	}
}

// BenchmarkAblationVisibility sweeps the ttl-propagate / RFC4950 knobs and
// reports how many labeled hops each visibility class leaves AReST to work
// with (DESIGN.md ablation 1: detection starves without explicit tunnels).
func BenchmarkAblationVisibility(b *testing.B) {
	cases := []struct {
		name               string
		propagate, rfc4950 bool
	}{
		{"explicit", true, true},
		{"implicit", true, false},
		{"opaque", false, true},
		{"invisible", false, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			labeled := 0
			for i := 0; i < b.N; i++ {
				labeled = visibilityLabeledHops(c.propagate, c.rfc4950)
			}
			b.ReportMetric(float64(labeled), "labeled-hops")
		})
	}
}

func visibilityLabeledHops(propagate, rfc4950 bool) int {
	n := netsim.New(5)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	prof.TTLPropagate = propagate
	prof.RFC4950 = rfc4950
	gw := n.AddRouter(netsim.RouterConfig{ASN: 64999, Vendor: mpls.VendorLinux,
		Profile: netsim.DefaultProfile(mpls.VendorLinux)})
	prev := gw
	var last *netsim.Router
	for i := 0; i < 6; i++ {
		r := n.AddRouter(netsim.RouterConfig{ASN: 65050, Vendor: mpls.VendorCisco,
			Profile: prof, SREnabled: true, Mode: netsim.ModeSR})
		n.Connect(prev.ID, r.ID, 10)
		prev, last = r, r
	}
	vp := mustAddr("172.16.8.10")
	tgt := mustAddr("100.64.8.20")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, last.ID)
	n.Compute()
	tc := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	tr, err := tc.Trace(context.Background(), tgt, 0)
	if err != nil {
		return -1
	}
	labeled := 0
	for _, h := range tr.Hops {
		if h.HasStack() {
			labeled++
		}
	}
	return labeled
}

// BenchmarkAblationPoolSize measures the CVR/CO false-coincidence
// probability as a function of dynamic label pool size (Sec. 4.1 argues
// 1/N per adjacent pair; with Cisco's ~1M pool that is ~1e-6).
func BenchmarkAblationPoolSize(b *testing.B) {
	for _, size := range []uint32{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		b.Run(sizeName(size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			collisions, pairs := 0, 0
			for i := 0; i < b.N; i++ {
				a := rng.Uint32() % size
				c := rng.Uint32() % size
				pairs++
				if a == c {
					collisions++
				}
			}
			b.ReportMetric(float64(collisions)/float64(pairs), "coincidence-rate")
		})
	}
}

func sizeName(s uint32) string {
	switch s {
	case 1 << 8:
		return "pool-256"
	case 1 << 12:
		return "pool-4k"
	case 1 << 16:
		return "pool-64k"
	default:
		return "pool-1M"
	}
}

// BenchmarkAblationSuffix compares sequence detection with and without
// suffix-based matching on a misaligned-SRGB domain (DESIGN.md ablation 4).
func BenchmarkAblationSuffix(b *testing.B) {
	// Hand-build the differing-SRGB path of Fig. 4: same SID index, bases
	// 16000 vs 13000 vs 16000.
	path := &core.Path{Hops: []core.Hop{
		{Stack: mpls.Stack{{Label: 16005, TTL: 1}}, Vendor: mpls.VendorCisco, Source: fingerprint.SourceSNMP},
		{Stack: mpls.Stack{{Label: 13005, TTL: 1}}},
		{Stack: mpls.Stack{{Label: 16005, TTL: 1}}},
	}}
	for _, suffix := range []bool{true, false} {
		name := "with-suffix"
		if !suffix {
			name = "without-suffix"
		}
		b.Run(name, func(b *testing.B) {
			det := core.NewDetector()
			det.SuffixMatching = suffix
			segs := 0
			for i := 0; i < b.N; i++ {
				res := det.Analyze(path)
				segs = 0
				for _, s := range res.Segments {
					if s.Flag == core.FlagCVR || s.Flag == core.FlagCO {
						segs++
					}
				}
			}
			b.ReportMetric(float64(segs), "sequence-segments")
		})
	}
}

// BenchmarkSurveyAggregation and BenchmarkArchiveGeneration cover the two
// data substrates' hot paths.
func BenchmarkSurveyAggregation(b *testing.B) {
	rs := survey.Respondents()
	for i := 0; i < b.N; i++ {
		survey.VendorShares(rs)
		survey.UsageShares(rs)
		survey.DefaultRangeRates(rs)
	}
}

func BenchmarkArchiveGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		longitudinal.Measure(longitudinal.Generate(longitudinal.CAIDA, 1000, int64(i)))
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// BenchmarkExtLongitudinal regenerates the longitudinal extension.
func BenchmarkExtLongitudinal(b *testing.B) { benchExperiment(b, "ext-longitudinal") }

// BenchmarkExtSRGBInference regenerates the SRGB-inference extension.
func BenchmarkExtSRGBInference(b *testing.B) { benchExperiment(b, "ext-srgb") }

// BenchmarkMultipathDiscovery measures MDA-style discovery over an ECMP
// diamond.
func BenchmarkMultipathDiscovery(b *testing.B) {
	n := netsim.New(3)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	mk := func() *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{ASN: 100, Vendor: mpls.VendorCisco, Profile: prof})
	}
	gw, s, d := mk(), mk(), mk()
	n.Connect(gw.ID, s.ID, 10)
	for i := 0; i < 4; i++ {
		x := mk()
		n.Connect(s.ID, x.ID, 10)
		n.Connect(x.ID, d.ID, 10)
	}
	vp := mustAddr("172.16.7.1")
	tgt := mustAddr("100.7.0.9")
	n.AddHost(vp, gw.ID)
	n.AddHost(tgt, d.ID)
	n.Compute()
	tc := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	b.ResetTimer()
	var width int
	for i := 0; i < b.N; i++ {
		m, err := tc.DiscoverMultipath(context.Background(), tgt, 64)
		if err != nil {
			b.Fatal(err)
		}
		width = m.MaxWidth()
	}
	b.ReportMetric(float64(width), "max-width")
}

// BenchmarkWireCodecs measures the hot codec paths the prober exercises on
// every probe: probe marshal plus reply unmarshal (IPv4+ICMP+RFC4950).
func BenchmarkWireCodecs(b *testing.B) {
	src := mustAddr("10.0.0.1")
	dst := mustAddr("192.0.2.9")
	u := &pkt.UDP{SrcPort: 33434, DstPort: 33435, Payload: []byte("arest-tnt-probe")}
	ub, _ := u.Marshal(src, dst)
	probeIP := &pkt.IPv4{TTL: 6, Protocol: pkt.ProtoUDP, Src: src, Dst: dst, Payload: ub}
	pw, _ := probeIP.Marshal()
	obj, _ := pkt.NewMPLSExtension(mpls.Stack{{Label: 16005, TTL: 1}, {Label: 37000, TTL: 1}})
	icmp := &pkt.ICMP{Type: pkt.ICMPTimeExceeded, Body: pw, Extensions: []pkt.ExtensionObject{obj}}
	ib, _ := icmp.Marshal()
	reply := &pkt.IPv4{TTL: 250, Protocol: pkt.ProtoICMP, Src: dst, Dst: src, Payload: ib}
	rw, _ := reply.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probeIP.Marshal(); err != nil {
			b.Fatal(err)
		}
		rip, err := pkt.UnmarshalIPv4(rw)
		if err != nil {
			b.Fatal(err)
		}
		m, err := pkt.UnmarshalICMP(rip.Payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := m.MPLSStack(); !ok {
			b.Fatal("stack lost")
		}
	}
}

// BenchmarkWireCodecsFastPath measures the same probe-marshal +
// reply-unmarshal round trip through the append/Into APIs with caller-held
// buffers — the zero-allocation path the prober and simulator actually run.
func BenchmarkWireCodecsFastPath(b *testing.B) {
	src := mustAddr("10.0.0.1")
	dst := mustAddr("192.0.2.9")
	u := &pkt.UDP{SrcPort: 33434, DstPort: 33435, Payload: []byte("arest-tnt-probe")}
	ub, _ := u.Marshal(src, dst)
	probeIP := &pkt.IPv4{TTL: 6, Protocol: pkt.ProtoUDP, Src: src, Dst: dst, Payload: ub}
	pw, _ := probeIP.Marshal()
	obj, _ := pkt.NewMPLSExtension(mpls.Stack{{Label: 16005, TTL: 1}, {Label: 37000, TTL: 1}})
	icmp := &pkt.ICMP{Type: pkt.ICMPTimeExceeded, Body: pw, Extensions: []pkt.ExtensionObject{obj}}
	ib, _ := icmp.Marshal()
	reply := &pkt.IPv4{TTL: 250, Protocol: pkt.ProtoICMP, Src: dst, Dst: src, Payload: ib}
	rw, _ := reply.Marshal()
	wire := make([]byte, 0, 128)
	var rip pkt.IPv4
	var m pkt.ICMP
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := probeIP.AppendMarshal(wire[:0])
		if err != nil {
			b.Fatal(err)
		}
		wire = w
		if err := pkt.UnmarshalIPv4Into(&rip, rw); err != nil {
			b.Fatal(err)
		}
		if err := pkt.UnmarshalICMPInto(&m, rip.Payload); err != nil {
			b.Fatal(err)
		}
		if _, ok := m.MPLSStack(); !ok {
			b.Fatal("stack lost")
		}
	}
}

// BenchmarkLargeWorldBuild measures constructing and computing the control
// planes of a large synthetic AS (SPF, LDP, SIDs).
func BenchmarkLargeWorldBuild(b *testing.B) {
	rec, _ := asgen.ByID(40)
	dep := asgen.DeploymentFor(rec, 1)
	dep.Routers = 80
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := asgen.Build(rec, dep, 4, 1)
		if len(w.Routers) != 80 {
			b.Fatal("world truncated")
		}
	}
}

// BenchmarkSendThroughput measures raw simulator forwarding: one probe
// through a 60-router world, wire codecs included.
func BenchmarkSendThroughput(b *testing.B) {
	rec, _ := asgen.ByID(15)
	dep := asgen.DeploymentFor(rec, 1)
	dep.Routers = 60
	w := asgen.Build(rec, dep, 1, 1)
	tc := probe.NewTracer(probe.NetsimConn{Net: w.Net}, w.VPs[0])
	tc.Reveal = false
	tgt := w.Targets[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Trace(context.Background(), tgt, uint16(i%8)); err != nil {
			b.Fatal(err)
		}
	}
}
