package asgen

import (
	"strings"
	"testing"
)

func TestWorldConfigsRenderEveryRouter(t *testing.T) {
	rec, _ := ByID(28)
	dep := DeploymentFor(rec, 5)
	dep.Routers = 15
	w := Build(rec, dep, 2, 5)
	bundle := WorldConfigs(w)
	for _, r := range w.Routers {
		if !strings.Contains(bundle, "hostname "+r.Name+"\n") {
			t.Errorf("router %s missing from the bundle", r.Name)
		}
		if !strings.Contains(bundle, r.Loopback.String()) {
			t.Errorf("loopback of %s missing", r.Name)
		}
	}
	if !strings.Contains(bundle, "lab bundle for AS#28") {
		t.Error("bundle header missing")
	}
}

func TestRouterConfigTextReflectsState(t *testing.T) {
	rec, _ := ByID(15) // Microsoft: full SR, default ranges
	dep := DeploymentFor(rec, 7)
	dep.Routers = 12
	w := Build(rec, dep, 1, 7)
	wantSRGB := "global-block 16000 23999"
	if dep.CustomSRGB.Size() > 0 {
		wantSRGB = strings.ReplaceAll(
			strings.TrimSuffix(strings.TrimPrefix(dep.CustomSRGB.String(), "["), "]"), ",", " ")
		wantSRGB = "global-block " + wantSRGB
	}
	for _, r := range w.Routers {
		cfg := RouterConfigText(w, r)
		if r.SREnabled {
			if !strings.Contains(cfg, "segment-routing") {
				t.Fatalf("%s: SR stanza missing\n%s", r.Name, cfg)
			}
			if !strings.Contains(cfg, wantSRGB) {
				t.Errorf("%s: SRGB stanza wrong, want %q\n%s", r.Name, wantSRGB, cfg)
			}
			if !strings.Contains(cfg, "prefix-sid index") {
				t.Errorf("%s: prefix SID missing", r.Name)
			}
		} else if strings.Contains(cfg, "segment-routing") {
			t.Errorf("%s: SR stanza on a non-SR router", r.Name)
		}
		if !r.Profile.TTLPropagate && !strings.Contains(cfg, "ip-ttl-propagate disable") {
			t.Errorf("%s: propagate knob not rendered", r.Name)
		}
	}
}

func TestRouterConfigTextLDP(t *testing.T) {
	rec, _ := ByID(7) // Proximus: classic LDP
	dep := DeploymentFor(rec, 21)
	dep.Routers = 10
	dep.ExplicitNullProb = 1
	w := Build(rec, dep, 1, 21)
	found := false
	for _, r := range w.Routers {
		cfg := RouterConfigText(w, r)
		if r.LDPEnabled {
			if !strings.Contains(cfg, "mpls ldp") {
				t.Errorf("%s: LDP stanza missing", r.Name)
			}
			if strings.Contains(cfg, "label advertise explicit-null") {
				found = true
			}
		}
	}
	if !found {
		t.Error("explicit-null advertisement never rendered despite prob 1")
	}
}

func TestValidateWorldCatalogue(t *testing.T) {
	// Every analyzed catalogue world must be internally consistent.
	for _, rec := range Analyzed()[:12] { // a fast representative slice
		dep := DeploymentFor(rec, 3)
		if dep.Routers > 25 {
			dep.Routers = 25
		}
		w := Build(rec, dep, 2, 3)
		if problems := ValidateWorld(w); len(problems) != 0 {
			t.Errorf("AS#%d %s inconsistent:\n  %s", rec.ID, rec.Name,
				strings.Join(problems, "\n  "))
		}
	}
}
