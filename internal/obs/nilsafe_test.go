package obs

import (
	"reflect"
	"testing"
	"time"
)

// TestObsNilSafety calls every exported method of every instrument type
// on a nil receiver: none may panic, reads return zeros, and Time must
// still run its function. This is the belt-and-suspenders behind the
// nilsafe analyzer (internal/lint/rules), which proves the guards exist;
// this test proves they behave.
func TestObsNilSafety(t *testing.T) {
	var r *Registry
	r.SetClock(func() time.Time { return time.Unix(0, 0) })
	if c := r.Counter("s", "r"); c != nil {
		t.Errorf("nil Registry.Counter = %v, want nil", c)
	}
	if g := r.Gauge("s", "r"); g != nil {
		t.Errorf("nil Registry.Gauge = %v, want nil", g)
	}
	if h := r.Histogram("s", "r"); h != nil {
		t.Errorf("nil Registry.Histogram = %v, want nil", h)
	}
	if sp := r.Span("s", "r"); sp != nil {
		t.Errorf("nil Registry.Span = %v, want nil", sp)
	}
	ran := false
	r.Time("s", "r", func() { ran = true })
	if !ran {
		t.Error("nil Registry.Time did not run fn")
	}
	snap := r.Snapshot()
	if snap.Schema != SchemaVersion {
		t.Errorf("nil Registry.Snapshot schema = %q, want %q", snap.Schema, SchemaVersion)
	}
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil Registry.Snapshot not empty: %+v", snap)
	}

	var c *Counter
	c.Add(7)
	c.Inc()
	if v := c.Value(); v != 0 {
		t.Errorf("nil Counter.Value = %d, want 0", v)
	}

	var g *Gauge
	g.SetMax(9)
	if v := g.Value(); v != 0 {
		t.Errorf("nil Gauge.Value = %d, want 0", v)
	}

	var h *Histogram
	h.Observe(3)

	var sp *Span
	done := sp.Start()
	if done == nil {
		t.Fatal("nil Span.Start returned nil func")
	}
	done()
	sp.AddDuration(time.Second)

	// Reflection guard: if an instrument grows an exported method that
	// this test does not exercise, fail loudly so the nil-call list above
	// (and the nilsafe analyzer's assumptions) get revisited.
	wantMethods := map[string]int{
		"Registry":  7, // SetClock Counter Gauge Histogram Span Time Snapshot
		"Counter":   3, // Add Inc Value
		"Gauge":     2, // SetMax Value
		"Histogram": 1, // Observe
		"Span":      2, // Start AddDuration
	}
	for _, typ := range []reflect.Type{
		reflect.TypeOf(&Registry{}),
		reflect.TypeOf(&Counter{}),
		reflect.TypeOf(&Gauge{}),
		reflect.TypeOf(&Histogram{}),
		reflect.TypeOf(&Span{}),
	} {
		name := typ.Elem().Name()
		if got := typ.NumMethod(); got != wantMethods[name] {
			t.Errorf("%s has %d exported methods, this test covers %d: extend TestObsNilSafety",
				name, got, wantMethods[name])
		}
	}
}
