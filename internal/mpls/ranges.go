package mpls

import "fmt"

// Vendor identifies a router hardware vendor, as used both by the network
// simulator (router profiles) and by the fingerprinting subsystem.
type Vendor int

// Known vendors. VendorUnknown means fingerprinting failed or was not
// attempted; VendorCiscoHuawei is the ambiguity class produced by TTL-based
// fingerprinting, which cannot distinguish Cisco from Huawei because they
// share the same initial-TTL signature (paper Sec. 5).
const (
	VendorUnknown Vendor = iota
	VendorCisco
	VendorJuniper
	VendorHuawei
	VendorNokia
	VendorArista
	VendorMikroTik
	VendorLinux
	VendorCiscoHuawei // TTL-fingerprint ambiguity class
)

var vendorNames = map[Vendor]string{
	VendorUnknown:     "unknown",
	VendorCisco:       "Cisco",
	VendorJuniper:     "Juniper",
	VendorHuawei:      "Huawei",
	VendorNokia:       "Nokia",
	VendorArista:      "Arista",
	VendorMikroTik:    "MikroTik",
	VendorLinux:       "Linux",
	VendorCiscoHuawei: "Cisco/Huawei",
}

//arest:coldpath debug formatter, never on the wire path
func (v Vendor) String() string {
	if s, ok := vendorNames[v]; ok {
		return s
	}
	return fmt.Sprintf("Vendor(%d)", int(v))
}

// LabelRange is an inclusive range of 20-bit label values.
type LabelRange struct {
	Lo, Hi uint32
}

// Contains reports whether label lies within the range.
func (r LabelRange) Contains(label uint32) bool { return label >= r.Lo && label <= r.Hi }

// Size returns the number of labels in the range. The zero value is the
// empty range (used for vendors with no SRLB).
func (r LabelRange) Size() uint32 {
	if r.Hi < r.Lo || r == (LabelRange{}) {
		return 0
	}
	return r.Hi - r.Lo + 1
}

// Overlap returns the intersection of two ranges and whether it is non-empty.
func (r LabelRange) Overlap(o LabelRange) (LabelRange, bool) {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		return LabelRange{}, false
	}
	return LabelRange{lo, hi}, true
}

//arest:coldpath debug formatter, never on the wire path
func (r LabelRange) String() string { return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi) }

// Default vendor SR label blocks, after Table 1 of the paper.
//
// Cisco default SRGB 16,000-23,999 and SRLB 15,000-15,999; Huawei default
// SRGB 16,000-47,999 and base SRLB >=48,000 (user-defined size; we model the
// common 48,000-48,999 default); Arista default SRGB 900,000-965,535 and
// SRLB 100,000-116,383. Juniper has no separate SRLB: adjacency SIDs come
// from the dynamic label pool; its default SRGB on modern Junos is
// 16,000-23,999-compatible only when configured, so we model the commonly
// documented 16,000-23,999 block used in mixed deployments.
var (
	CiscoSRGB  = LabelRange{16000, 23999}
	CiscoSRLB  = LabelRange{15000, 15999}
	HuaweiSRGB = LabelRange{16000, 47999}
	HuaweiSRLB = LabelRange{48000, 48999}
	AristaSRGB = LabelRange{900000, 965535}
	AristaSRLB = LabelRange{100000, 116383}

	// JuniperSRGB models a configured Junos SRGB; Juniper requires the
	// operator to set one, and interop guides commonly align it with
	// Cisco's default block.
	JuniperSRGB = LabelRange{16000, 23999}

	// NokiaSRGB models the commonly configured SR OS block.
	NokiaSRGB = LabelRange{20000, 27999}

	// CiscoHuaweiSRGBIntersection is the overlap used when TTL-based
	// fingerprinting cannot tell Cisco from Huawei (paper Sec. 5):
	// flags are raised only for labels in {16,000; 23,999}.
	CiscoHuaweiSRGBIntersection = LabelRange{16000, 23999}
)

// SRBlocks returns the default SRGB and SRLB ranges for a vendor, with ok
// reporting whether the vendor has recognized SR ranges at all. The SRLB
// result may be the zero range when the vendor allocates adjacency SIDs
// from the dynamic pool (Juniper).
func SRBlocks(v Vendor) (srgb, srlb LabelRange, ok bool) {
	switch v {
	case VendorCisco:
		return CiscoSRGB, CiscoSRLB, true
	case VendorHuawei:
		return HuaweiSRGB, HuaweiSRLB, true
	case VendorArista:
		return AristaSRGB, AristaSRLB, true
	case VendorJuniper:
		return JuniperSRGB, LabelRange{}, true
	case VendorNokia:
		return NokiaSRGB, LabelRange{}, true
	case VendorCiscoHuawei:
		return CiscoHuaweiSRGBIntersection, LabelRange{}, true
	default:
		return LabelRange{}, LabelRange{}, false
	}
}

// InVendorSRRange reports whether label falls inside any recognized SR
// range (SRGB or SRLB) for the given fingerprinted vendor. This is the
// membership test behind the CVR, LSVR, and LVR flags.
func InVendorSRRange(v Vendor, label uint32) bool {
	srgb, srlb, ok := SRBlocks(v)
	if !ok {
		return false
	}
	if srgb.Contains(label) {
		return true
	}
	return srlb.Size() > 0 && srlb.Contains(label)
}

// DynamicPool returns the dynamic (non-SR, non-reserved) label allocation
// pool modeled for a vendor. The Cisco pool spans 24,000-1,056,574 — i.e.
// 1,032,575 possible labels, matching the false-positive argument in
// Sec. 4.1 of the paper.
func DynamicPool(v Vendor) LabelRange {
	switch v {
	case VendorCisco:
		return LabelRange{24000, 1056574}
	case VendorHuawei:
		return LabelRange{49000, 1048575}
	case VendorArista:
		return LabelRange{116384, 899999}
	case VendorJuniper:
		return LabelRange{299776, 1048575} // Junos dynamic range
	case VendorNokia:
		return LabelRange{32768, 1048575}
	default:
		return LabelRange{16, 1048575}
	}
}
