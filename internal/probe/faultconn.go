package probe

import (
	"context"
	"errors"
	"net/netip"
)

// ErrInjected is the default error a FaultConn returns for matched
// exchanges. Tests assert on it with errors.Is through the tracer's
// wrapping.
var ErrInjected = errors.New("injected fault")

// FaultConn wraps a Conn and fails selected exchanges, the error-path
// counterpart of netsim.SetNextHopOverride: where the override mutates the
// simulated world, FaultConn breaks the measurement channel itself (a
// dying raw socket, a VM losing its interface). It makes fail-soft
// behavior provable under deterministic injected faults.
//
// Match inspects the outbound probe (source address and serialized IPv4
// packet) and reports whether this exchange should fail; a nil Match fails
// every exchange. The wire buffer is only valid for the duration of the
// call, per the Conn contract — Match must not retain it. Matching is a
// pure function of the probe bytes, so injected faults land on the same
// probes at any worker count and the determinism contract holds on the
// failure path too.
type FaultConn struct {
	Conn Conn
	// Match selects which exchanges fail; nil means all of them.
	Match func(src netip.Addr, wire []byte) bool
	// Err is the injected error; nil means ErrInjected.
	Err error
}

// Exchange implements Conn: matched probes fail with the injected error
// (no reply, zero RTT); everything else passes through.
func (f FaultConn) Exchange(ctx context.Context, src netip.Addr, wire []byte) ([]byte, float64, error) {
	if f.Match == nil || f.Match(src, wire) {
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		return nil, 0, err
	}
	return f.Conn.Exchange(ctx, src, wire)
}
