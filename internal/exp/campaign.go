// Package exp reproduces the paper's evaluation: it runs the full
// measurement campaign (synthetic worlds → Anaximander target lists → TNT
// probing from many vantage points → fingerprinting, alias resolution and
// bdrmap annotation → AReST), and regenerates every table and figure of
// the paper from the result.
package exp

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"

	"arest/internal/alias"
	"arest/internal/anaximander"
	"arest/internal/asgen"
	"arest/internal/bdrmap"
	"arest/internal/core"
	"arest/internal/fingerprint"
	"arest/internal/probe"
)

// Config scales the campaign. The paper used 50 VPs and hundreds of
// thousands of traces; the defaults here reproduce the same pipeline at
// laptop scale.
type Config struct {
	Seed int64
	// NumVPs is the number of vantage points per AS (paper: 50).
	NumVPs int
	// MaxTargets caps each AS's Anaximander plan.
	MaxTargets int
	// FlowsPerTarget probes each target under several Paris flow IDs.
	FlowsPerTarget int
	// AliasCandidateCap bounds the MIDAR candidate set per AS (quadratic
	// pair testing); 0 disables alias resolution.
	AliasCandidateCap int
	// MaxRouters, when non-zero, clamps the per-AS topology size.
	MaxRouters int
}

// DefaultConfig returns a laptop-scale campaign configuration.
func DefaultConfig() Config {
	return Config{
		Seed:              20250405,
		NumVPs:            16,
		MaxTargets:        32,
		FlowsPerTarget:    1,
		AliasCandidateCap: 120,
		MaxRouters:        60,
	}
}

// VPTraces groups one vantage point's traces.
type VPTraces struct {
	VP     netip.Addr
	Traces []*probe.Trace
}

// ASResult is the full pipeline output for one targeted AS.
type ASResult struct {
	Record     asgen.Record
	World      *asgen.World
	PerVP      []VPTraces
	Annotator  *fingerprint.Annotator
	Annotation bdrmap.Annotation
	// Paths are the annotated traces restricted to the target AS
	// (bdrmapIT delimitation), with their AReST results in parallel.
	Paths   []*core.Path
	Results []*core.Result
	// TracesSent counts probes-carrying traces issued for this AS.
	TracesSent int
}

// Traces flattens all vantage points' traces.
func (r *ASResult) Traces() []*probe.Trace {
	var out []*probe.Trace
	for _, v := range r.PerVP {
		out = append(out, v.Traces...)
	}
	return out
}

// RunAS executes the pipeline for one catalogue record with its derived
// deployment.
func RunAS(rec asgen.Record, cfg Config) (*ASResult, error) {
	dep := asgen.DeploymentFor(rec, cfg.Seed)
	if cfg.MaxRouters > 0 && dep.Routers > cfg.MaxRouters {
		dep.Routers = cfg.MaxRouters
	}
	return runASWithDeployment(rec, dep, cfg)
}

// runASWithDeployment executes the pipeline against an explicit deployment
// (used by the longitudinal extension to sweep SRFrac).
func runASWithDeployment(rec asgen.Record, dep asgen.Deployment, cfg Config) (*ASResult, error) {
	w := asgen.Build(rec, dep, cfg.NumVPs, cfg.Seed)
	rib := anaximander.CollectRIB(w)
	plan := anaximander.BuildPlan(rib, rec.ASN, anaximander.Options{MaxTargets: cfg.MaxTargets})

	res := &ASResult{Record: rec, World: w}
	for vpIdx, vp := range w.VPs {
		tc := probe.NewTracer(probe.NetsimConn{Net: w.Net}, vp)
		vt := VPTraces{VP: vp}
		for _, tgt := range plan.Shuffled(vpIdx) {
			for flow := 0; flow < max(1, cfg.FlowsPerTarget); flow++ {
				tr, err := tc.Trace(tgt, uint16(flow))
				if err != nil {
					return nil, fmt.Errorf("trace %s from %s: %w", tgt, vp, err)
				}
				vt.Traces = append(vt.Traces, tr)
				res.TracesSent++
			}
		}
		res.PerVP = append(res.PerVP, vt)
	}
	traces := res.Traces()

	// Fingerprinting: TTL signatures need echo probes; the SNMPv3 dataset
	// is the (simulated) public one.
	pinger := probe.NewTracer(probe.NetsimConn{Net: w.Net}, w.VPs[0])
	ttl := fingerprint.CollectTTL(traces, pinger)
	res.Annotator = fingerprint.NewAnnotator(fingerprint.SNMPDataset(w.Net), ttl)

	// Alias resolution feeds bdrmap.
	var aliasSets [][]netip.Addr
	if cfg.AliasCandidateCap > 0 {
		seen := map[netip.Addr]bool{}
		var cands []netip.Addr
		for _, tr := range traces {
			for i := range tr.Hops {
				h := &tr.Hops[i]
				if h.Responded() && !seen[h.Addr] {
					seen[h.Addr] = true
					cands = append(cands, h.Addr)
				}
			}
		}
		if len(cands) > cfg.AliasCandidateCap {
			cands = cands[:cfg.AliasCandidateCap]
		}
		aliasSets = alias.Resolve(cands, pinger, alias.DefaultConfig())
	}
	res.Annotation = bdrmap.Annotate(traces, rib, aliasSets)

	det := core.NewDetector()
	for _, tr := range traces {
		p := core.BuildPath(tr, res.Annotator, res.Annotation.AsFunc())
		sub := p.RestrictToAS(rec.ASN)
		if len(sub.Hops) == 0 {
			continue
		}
		res.Paths = append(res.Paths, sub)
		res.Results = append(res.Results, det.Analyze(sub))
	}
	return res, nil
}

// Campaign is a full multi-AS run.
type Campaign struct {
	Cfg  Config
	ASes []*ASResult
}

// Run executes the campaign over the given catalogue records. Records with
// too little coverage in the paper (ExcludedIDs) are skipped, mirroring
// the coverage filter of Sec. 5. Per-AS pipelines are independent (each AS
// is its own world), so they run concurrently; results keep catalogue
// order and the output is bit-identical to a sequential run.
func Run(records []asgen.Record, cfg Config) (*Campaign, error) {
	var kept []asgen.Record
	for _, rec := range records {
		if !asgen.ExcludedIDs[rec.ID] {
			kept = append(kept, rec)
		}
	}
	results := make([]*ASResult, len(kept))
	errs := make([]error, len(kept))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(kept) {
		workers = len(kept)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i], errs[i] = RunAS(kept[i], cfg)
			}
		}()
	}
	for i := range kept {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	c := &Campaign{Cfg: cfg}
	for i, rec := range kept {
		if errs[i] != nil {
			return nil, fmt.Errorf("AS#%d %s: %w", rec.ID, rec.Name, errs[i])
		}
		c.ASes = append(c.ASes, results[i])
	}
	return c, nil
}

// ByID returns the AS result with the given paper identifier.
func (c *Campaign) ByID(id int) (*ASResult, bool) {
	for _, r := range c.ASes {
		if r.Record.ID == id {
			return r, true
		}
	}
	return nil, false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
