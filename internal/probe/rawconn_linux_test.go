//go:build linux

// The fixtures below marshal hand-built packets whose validity the test
// itself asserts; threading every impossible Marshal error through t.Fatal
// would bury the exchange logic under scaffolding.
//
//arest:allow noerrdrop test fixtures marshal known-valid packets; a failure surfaces as the assertion mismatch the test exists to catch

package probe

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"arest/internal/pkt"
)

func TestMatchesProbe(t *testing.T) {
	src, dst := netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("198.51.100.9")
	u := &pkt.UDP{SrcPort: 33434, DstPort: 33435, Payload: []byte("x")}
	ub, _ := u.Marshal(src, dst)
	probe := &pkt.IPv4{TTL: 3, ID: 777, Protocol: pkt.ProtoUDP, Src: src, Dst: dst, Payload: ub}
	pw, _ := probe.Marshal()
	quoted, _ := pkt.UnmarshalIPv4(pw)

	mkReply := func(id uint16, qsrc netip.Addr) []byte {
		q := *quoted
		q.ID = id
		q.Src = qsrc
		qb, _ := q.Marshal()
		m := &pkt.ICMP{Type: pkt.ICMPTimeExceeded, Body: qb}
		mb, _ := m.Marshal()
		ip := &pkt.IPv4{TTL: 250, Protocol: pkt.ProtoICMP,
			Src: netip.MustParseAddr("203.0.113.5"), Dst: src, Payload: mb}
		b, _ := ip.Marshal()
		return b
	}
	if !matchesProbe(probe, mkReply(777, src)) {
		t.Error("matching time-exceeded rejected")
	}
	if matchesProbe(probe, mkReply(778, src)) {
		t.Error("wrong IP-ID accepted")
	}
	if matchesProbe(probe, mkReply(777, netip.MustParseAddr("192.0.2.2"))) {
		t.Error("wrong quoted source accepted")
	}
	if matchesProbe(probe, []byte{1, 2, 3}) {
		t.Error("garbage accepted")
	}

	// Echo reply matching.
	em := &pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 42, Seq: 7, Body: []byte("ping")}
	emb, _ := em.Marshal()
	echoProbe := &pkt.IPv4{TTL: 64, Protocol: pkt.ProtoICMP, Src: src, Dst: dst, Payload: emb}
	rep := &pkt.ICMP{Type: pkt.ICMPEchoReply, ID: 42, Seq: 7, Body: []byte("ping")}
	repb, _ := rep.Marshal()
	rip := &pkt.IPv4{TTL: 60, Protocol: pkt.ProtoICMP, Src: dst, Dst: src, Payload: repb}
	ripb, _ := rip.Marshal()
	if !matchesProbe(echoProbe, ripb) {
		t.Error("matching echo reply rejected")
	}
	rep.ID = 43
	repb, _ = rep.Marshal()
	rip.Payload = repb
	ripb, _ = rip.Marshal()
	if matchesProbe(echoProbe, ripb) {
		t.Error("wrong echo ID accepted")
	}
}

func TestRawConnRequiresPrivileges(t *testing.T) {
	conn, err := NewRawConn(time.Second)
	if err != nil {
		t.Skipf("raw sockets unavailable here (expected without CAP_NET_RAW): %v", err)
	}
	defer conn.Close()
	if !rawAvailable() {
		t.Error("NewRawConn succeeded but rawAvailable is false")
	}
	// A probe to a documentation address must not error (timeout => nil).
	src := netip.MustParseAddr("127.0.0.1")
	u := &pkt.UDP{SrcPort: 33434, DstPort: 33435, Payload: []byte("x")}
	ub, _ := u.Marshal(src, netip.MustParseAddr("192.0.2.1"))
	ip := &pkt.IPv4{TTL: 1, ID: 1, Protocol: pkt.ProtoUDP, Src: src,
		Dst: netip.MustParseAddr("192.0.2.1"), Payload: ub}
	wire, _ := ip.Marshal()
	conn.Timeout = 200 * time.Millisecond
	if _, _, err := conn.Exchange(context.Background(), src, wire); err != nil {
		t.Logf("exchange returned error (environment-dependent): %v", err)
	}
}
