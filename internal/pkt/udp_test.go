package pkt

import (
	"errors"
	"testing"
)

func TestUDPRoundTrip(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("192.0.2.9")
	in := &UDP{SrcPort: 33434, DstPort: 33435, Payload: []byte("probe")}
	b, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalUDP(src, dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort || string(out.Payload) != "probe" {
		t.Errorf("round trip: %+v", out)
	}
}

func TestUDPChecksumCoversPseudoHeader(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("192.0.2.9")
	in := &UDP{SrcPort: 1000, DstPort: 2000, Payload: []byte("xyz")}
	b, _ := in.Marshal(src, dst)
	// Same bytes validated against different addresses must fail: Paris
	// traceroute relies on the checksum binding the 5-tuple.
	if _, err := UnmarshalUDP(src, addr("192.0.2.10"), b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("wrong pseudo-header: err = %v, want ErrBadChecksum", err)
	}
}

func TestUDPCorruptedPayload(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("192.0.2.9")
	in := &UDP{SrcPort: 1, DstPort: 2, Payload: []byte{1, 2, 3, 4}}
	b, _ := in.Marshal(src, dst)
	b[len(b)-1] ^= 0x55
	if _, err := UnmarshalUDP(src, dst, b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("192.0.2.9")
	in := &UDP{SrcPort: 1, DstPort: 2, Payload: []byte{9}}
	b, _ := in.Marshal(src, dst)
	b[6], b[7] = 0, 0 // checksum disabled
	if _, err := UnmarshalUDP(src, dst, b); err != nil {
		t.Errorf("zero checksum rejected: %v", err)
	}
}

func TestUDPShortAndBadLength(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("192.0.2.9")
	if _, err := UnmarshalUDP(src, dst, make([]byte, 7)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short: err = %v", err)
	}
	in := &UDP{SrcPort: 1, DstPort: 2}
	b, _ := in.Marshal(src, dst)
	b[4], b[5] = 0xff, 0xff
	if _, err := UnmarshalUDP(src, dst, b); err == nil {
		t.Error("oversized UDP length accepted")
	}
}

func TestUDPInsideIPv4(t *testing.T) {
	src, dst := addr("172.16.0.1"), addr("203.0.113.7")
	u := &UDP{SrcPort: 33434, DstPort: 33500, Payload: []byte("tnt-probe-0001")}
	ub, err := u.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	ip := &IPv4{TTL: 1, Protocol: ProtoUDP, Src: src, Dst: dst, Payload: ub}
	b, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	gotIP, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	gotUDP, err := UnmarshalUDP(gotIP.Src, gotIP.Dst, gotIP.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotUDP.DstPort != 33500 || string(gotUDP.Payload) != "tnt-probe-0001" {
		t.Errorf("nested decode: %+v", gotUDP)
	}
}
