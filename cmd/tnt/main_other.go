//go:build !linux

// Command tnt requires Linux raw sockets; on other platforms it only
// explains itself.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Fprintln(os.Stderr, "tnt: the raw-socket prober is only implemented for Linux")
	os.Exit(1)
}
