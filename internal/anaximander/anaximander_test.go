package anaximander

import (
	"net/netip"
	"testing"

	"arest/internal/asgen"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestRIBOriginLongestMatch(t *testing.T) {
	rib := NewRIB()
	rib.Add(pfx("100.28.0.0/16"), 100)
	rib.Add(pfx("100.28.3.0/24"), 200)
	if asn, ok := rib.OriginOf(netip.MustParseAddr("100.28.3.7")); !ok || asn != 200 {
		t.Errorf("got %d,%v want 200", asn, ok)
	}
	if asn, ok := rib.OriginOf(netip.MustParseAddr("100.28.9.7")); !ok || asn != 100 {
		t.Errorf("got %d,%v want 100", asn, ok)
	}
	if _, ok := rib.OriginOf(netip.MustParseAddr("9.9.9.9")); ok {
		t.Error("uncovered address resolved")
	}
}

func TestBuildPlanPruningAndOrder(t *testing.T) {
	rib := NewRIB()
	rib.Add(pfx("100.28.0.0/16"), 100)
	rib.Add(pfx("100.28.3.0/24"), 100) // covered by the /16: pruned
	rib.Add(pfx("100.29.0.0/24"), 100)
	rib.Add(pfx("100.30.0.0/24"), 999) // other AS: excluded
	plan := BuildPlan(rib, 100, Options{})
	if len(plan.Targets) != 2 {
		t.Fatalf("targets = %v", plan.Targets)
	}
	// Aggregates first, then by address.
	if plan.Targets[0] != netip.MustParseAddr("100.28.0.1") {
		t.Errorf("first target = %s", plan.Targets[0])
	}
	if plan.Targets[1] != netip.MustParseAddr("100.29.0.1") {
		t.Errorf("second target = %s", plan.Targets[1])
	}
}

func TestBuildPlanPerPrefixAndCap(t *testing.T) {
	rib := NewRIB()
	rib.Add(pfx("100.1.0.0/24"), 7)
	rib.Add(pfx("100.2.0.0/24"), 7)
	plan := BuildPlan(rib, 7, Options{PerPrefix: 3})
	if len(plan.Targets) != 6 {
		t.Fatalf("targets = %d, want 6", len(plan.Targets))
	}
	plan = BuildPlan(rib, 7, Options{PerPrefix: 3, MaxTargets: 4})
	if len(plan.Targets) != 4 {
		t.Fatalf("capped targets = %d, want 4", len(plan.Targets))
	}
}

func TestShuffledDeterministicPerVP(t *testing.T) {
	rib := NewRIB()
	for i := 0; i < 20; i++ {
		rib.Add(netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(i), 0, 0}), 24), 5)
	}
	plan := BuildPlan(rib, 5, Options{})
	s1 := plan.Shuffled(3)
	s2 := plan.Shuffled(3)
	s3 := plan.Shuffled(4)
	if len(s1) != len(plan.Targets) {
		t.Fatal("shuffle changed length")
	}
	same13 := true
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same VP shuffle not deterministic")
		}
		if s1[i] != s3[i] {
			same13 = false
		}
	}
	if same13 {
		t.Error("different VPs got identical orders")
	}
	// Same multiset.
	seen := map[netip.Addr]int{}
	for _, a := range s1 {
		seen[a]++
	}
	for _, a := range plan.Targets {
		seen[a]--
	}
	for a, n := range seen {
		if n != 0 {
			t.Errorf("shuffle altered contents at %s", a)
		}
	}
}

func TestCollectRIBFromWorld(t *testing.T) {
	rec, _ := asgen.ByID(28)
	dep := asgen.DeploymentFor(rec, 5)
	dep.Routers = 15
	w := asgen.Build(rec, dep, 2, 5)
	rib := CollectRIB(w)
	// Every target host of the world resolves to the target ASN.
	for _, tgt := range w.Targets[:len(w.Edges)] {
		if asn, ok := rib.OriginOf(tgt); !ok || asn != rec.ASN {
			t.Errorf("target %s origin = %d,%v", tgt, asn, ok)
		}
	}
	// Router infrastructure resolves to the target ASN.
	if asn, ok := rib.OriginOf(w.Routers[3].Loopback); !ok || asn != rec.ASN {
		t.Errorf("loopback origin = %d,%v", asn, ok)
	}
	// A plan against the RIB yields a nonempty, reachable target list.
	plan := BuildPlan(rib, rec.ASN, Options{})
	if len(plan.Targets) < len(w.Edges) {
		t.Errorf("plan targets = %d, want >= %d", len(plan.Targets), len(w.Edges))
	}
}
