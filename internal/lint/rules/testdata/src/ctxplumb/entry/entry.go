// Package entry is ctxplumb testdata: loaded under an import path the test
// registers as an entry-point package, so its exported Run*/Measure*/
// Detect* functions must take context.Context first.
package entry

import "context"

// Campaign stands in for the pipeline's result type.
type Campaign struct{}

// Run is compliant: ctx first.
func Run(ctx context.Context, n int) (*Campaign, error) {
	_ = ctx
	return &Campaign{}, nil
}

// MeasureAS is compliant with extra params after ctx.
func MeasureAS(ctx context.Context, id int, cfg string) error {
	_ = ctx
	return nil
}

func RunSharded(n int) error { // want "exported entry point RunSharded must take context.Context"
	return nil
}

func DetectStream(data []byte) error { // want "exported entry point DetectStream must take context.Context"
	return nil
}

func MeasureLatency(cfg string, ctx context.Context) error { // want "exported entry point MeasureLatency must take context.Context"
	_ = ctx
	return nil
}

// RunOn is a method boundary: the same rule applies to exported methods.
func (c *Campaign) RunOn(id int) error { // want "exported entry point RunOn must take context.Context"
	return nil
}

// DetectInto is a compliant method.
func (c *Campaign) DetectInto(ctx context.Context, out []byte) error {
	_ = ctx
	return nil
}

// runLocal is unexported: internal helpers may be ctx-free (their callers
// already checked).
func runLocal(n int) error {
	return nil
}

// Resolve carries none of the entry prefixes: not a boundary.
func Resolve(n int) error {
	return nil
}
