package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers used by the prober and simulator.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// Errors returned by the IPv4 codec.
var (
	ErrShortPacket = errors.New("pkt: packet too short")
	ErrBadVersion  = errors.New("pkt: not an IPv4 packet")
	ErrBadChecksum = errors.New("pkt: bad checksum")
	ErrBadHeader   = errors.New("pkt: malformed header")
)

// IPv4 is an IPv4 packet: header fields plus payload. Options are not
// modeled (no measurement tool in this pipeline emits them).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	DontFrag bool
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	Payload  []byte
}

// Marshal serializes the packet, computing TotalLength and the header
// checksum.
func (p *IPv4) Marshal() ([]byte, error) {
	if !p.Src.Is4() || !p.Dst.Is4() {
		return nil, fmt.Errorf("%w: src/dst must be IPv4 addresses", ErrBadHeader)
	}
	total := IPv4HeaderLen + len(p.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("%w: payload too large (%d bytes)", ErrBadHeader, len(p.Payload))
	}
	b := make([]byte, total)
	b[0] = 4<<4 | IPv4HeaderLen/4
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	binary.BigEndian.PutUint16(b[4:], p.ID)
	if p.DontFrag {
		b[6] = 1 << 6
	}
	b[8] = p.TTL
	b[9] = p.Protocol
	src := p.Src.As4()
	dst := p.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
	copy(b[IPv4HeaderLen:], p.Payload)
	return b, nil
}

// UnmarshalIPv4 parses an IPv4 packet, verifying version, lengths, and the
// header checksum.
func UnmarshalIPv4(b []byte) (*IPv4, error) {
	if len(b) < IPv4HeaderLen {
		return nil, ErrShortPacket
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("%w: IHL=%d", ErrBadHeader, ihl)
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < ihl || total > len(b) {
		return nil, fmt.Errorf("%w: total length %d of %d bytes", ErrBadHeader, total, len(b))
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	p := &IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:]),
		DontFrag: b[6]&(1<<6) != 0,
		TTL:      b[8],
		Protocol: b[9],
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
	}
	p.Payload = append([]byte(nil), b[ihl:total]...)
	return p, nil
}

// UnmarshalIPv4Quoted parses a quoted original datagram from an ICMP error
// body. Unlike UnmarshalIPv4 it tolerates truncation: many routers quote
// only the IP header plus 8 payload bytes (RFC 792 minimum), so the
// declared total length may exceed the bytes present. The checksum still
// has to verify — the header itself is never truncated.
func UnmarshalIPv4Quoted(b []byte) (*IPv4, error) {
	if len(b) < IPv4HeaderLen {
		return nil, ErrShortPacket
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("%w: IHL=%d", ErrBadHeader, ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	end := total
	if end > len(b) || end < ihl {
		end = len(b) // truncated quote: keep what we have
	}
	p := &IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:]),
		DontFrag: b[6]&(1<<6) != 0,
		TTL:      b[8],
		Protocol: b[9],
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
	}
	p.Payload = append([]byte(nil), b[ihl:end]...)
	return p, nil
}

func (p *IPv4) String() string {
	return fmt.Sprintf("IPv4 %s -> %s proto=%d ttl=%d len=%d",
		p.Src, p.Dst, p.Protocol, p.TTL, IPv4HeaderLen+len(p.Payload))
}
