package eval

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionRecord(t *testing.T) {
	var c Confusion
	c.Record(true, true)   // TP
	c.Record(true, false)  // FP
	c.Record(false, true)  // FN
	c.Record(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Errorf("p=%f r=%f f1=%f", c.Precision(), c.Recall(), c.F1())
	}
	if c.FPRate() != 0.5 || c.FNRate() != 0.5 {
		t.Errorf("fpr=%f fnr=%f", c.FPRate(), c.FNRate())
	}
}

func TestConfusionPerfect(t *testing.T) {
	c := Confusion{TP: 100}
	if c.Precision() != 1 || c.Recall() != 1 || c.FPRate() != 0 || c.FNRate() != 0 {
		t.Errorf("perfect matrix: %s", c)
	}
}

func TestConfusionEmptyEdgeCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("empty matrix should be vacuously perfect")
	}
	if c.FPRate() != 0 || c.FNRate() != 0 {
		t.Error("empty matrix rates should be 0")
	}
	zero := Confusion{FN: 3, FP: 2}
	if zero.F1() != 0 {
		t.Errorf("F1 of all-wrong = %f", zero.F1())
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, TN: 2, FP: 3, FN: 4}
	a.Add(Confusion{TP: 10, TN: 20, FP: 30, FN: 40})
	if a != (Confusion{TP: 11, TN: 22, FP: 33, FN: 44}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestConfusionInvariants(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		p, r := c.Precision(), c.Recall()
		if p < 0 || p > 1 || r < 0 || r > 1 {
			return false
		}
		if c.FPRate() < 0 || c.FPRate() > 1 || c.FNRate() < 0 || c.FNRate() > 1 {
			return false
		}
		// FPRate = 1 - precision when any positives were predicted.
		if int(tp)+int(fp) > 0 && absF(c.FPRate()-(1-p)) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "Flags", Headers: []string{"Flag", "Count", "Share"}}
	tab.AddRow("CVR", 12, 0.25)
	tab.AddRow("CO", 100, 0.75)
	out := tab.Render()
	if !strings.Contains(out, "## Flags") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "CVR") || !strings.Contains(out, "0.250") {
		t.Errorf("rows missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and separator have the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned header/separator:\n%s", out)
	}
}
