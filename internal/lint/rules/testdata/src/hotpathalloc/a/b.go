// File-scope hot path: every function declared in this file is swept in
// unless it opts out with a reasoned //arest:coldpath.
//
//arest:hotpath file

package a

// sweptIn carries no annotation of its own; the file scope covers it.
func sweptIn(a, b string) string {
	return a + b // want `string concatenation on the hot path`
}

// formatDebug is exempted with a written reason.
//
//arest:coldpath debug formatter exercised by tests only
func formatDebug(a, b string) string {
	return a + b
}
