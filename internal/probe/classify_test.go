package probe

import (
	"reflect"
	"testing"

	"arest/internal/mpls"
)

// Boundary cases of ClassifyTunnels over hand-built traces: shapes the
// simulator rigs do not naturally produce.

// respHop builds a responding plain hop with a flat return path, so no RTLA
// jump is implied between consecutive hops.
func respHop(ttl int, addr string) Hop {
	return Hop{TTL: ttl, Addr: a(addr), RTT: 1, ICMPType: 11, ReplyTTL: 250}
}

func TestClassifyImplicitStaircaseBrokenByGap(t *testing.T) {
	// qTTL staircase 1,2 then an unresponsive hop, then 4,5: the gap must
	// terminate the implicit run, and the post-gap hops (whose qTTLs do not
	// restart at 2) must not found a new one.
	h1 := respHop(1, "10.0.0.1")
	h1.QTTL = 1
	h2 := respHop(2, "10.0.0.2")
	h2.QTTL = 2
	h4 := respHop(4, "10.0.0.4")
	h4.QTTL = 4
	h5 := respHop(5, "10.0.0.5")
	h5.QTTL = 5
	tr := &Trace{Hops: []Hop{h1, h2, {TTL: 3}, h4, h5}, Halt: HaltMaxTTL}

	got := ClassifyTunnels(tr)
	want := []Tunnel{{Start: 0, End: 1, Type: TunnelImplicit}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tunnels = %+v, want %+v", got, want)
	}
}

func TestClassifyRevealedRunTerminatesTrace(t *testing.T) {
	// The revealed run is the tail of the trace — no ending hop follows.
	// Classification must still emit the tunnel (invisible: no LSE evidence)
	// without reading past the final hop.
	r1 := respHop(2, "10.0.0.2")
	r1.Revealed = true
	r2 := respHop(3, "10.0.0.3")
	r2.Revealed = true
	tr := &Trace{Hops: []Hop{respHop(1, "10.0.0.1"), r1, r2}, Halt: HaltGaps}

	got := ClassifyTunnels(tr)
	want := []Tunnel{{Start: 1, End: 2, Type: TunnelInvisible, HiddenLen: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tunnels = %+v, want %+v", got, want)
	}
}

func TestClassifyRevealedRunOpaqueEndingHop(t *testing.T) {
	// A revealed run whose ending hop quotes a pipe-model LSE is an opaque
	// tunnel, and the ending hop is included in its range.
	r1 := respHop(2, "10.0.0.2")
	r1.Revealed = true
	r2 := respHop(3, "10.0.0.3")
	r2.Revealed = true
	end := respHop(4, "10.0.0.4")
	end.Stack = mpls.Stack{{Label: 16004, S: true, TTL: 253}}
	tr := &Trace{Hops: []Hop{respHop(1, "10.0.0.1"), r1, r2, end}, Halt: HaltReached}

	got := ClassifyTunnels(tr)
	want := []Tunnel{{Start: 1, End: 3, Type: TunnelOpaque, HiddenLen: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tunnels = %+v, want %+v", got, want)
	}
}

func TestClassifyOpaqueEndingHopHiddenLen(t *testing.T) {
	// An opaque ending hop with no revelation available: the hidden length
	// comes entirely from the quoted LSE TTL (255 - TTL).
	end := respHop(2, "10.0.0.2")
	end.Stack = mpls.Stack{{Label: 16002, S: true, TTL: 252}}
	tr := &Trace{Hops: []Hop{respHop(1, "10.0.0.1"), end, respHop(3, "10.0.0.3")}, Halt: HaltReached}

	got := ClassifyTunnels(tr)
	want := []Tunnel{{Start: 1, End: 1, Type: TunnelOpaque, HiddenLen: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tunnels = %+v, want %+v", got, want)
	}
}
