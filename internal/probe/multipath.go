package probe

import (
	"context"
	"net/netip"
)

// Multipath is the result of MDA-style multipath discovery: per-TTL sets
// of interfaces reached under varying Paris flow identifiers, exposing the
// ECMP diamonds a single-flow traceroute hides.
type Multipath struct {
	Dst netip.Addr
	// Hops[i] lists the distinct responding interfaces observed at TTL
	// i+1, in discovery order.
	Hops [][]netip.Addr
	// Flows is the number of flow IDs actually probed.
	Flows int
}

// Width returns the number of distinct interfaces at a TTL (1-based), the
// quantity load-balancing analyses care about.
func (m *Multipath) Width(ttl int) int {
	if ttl < 1 || ttl > len(m.Hops) {
		return 0
	}
	return len(m.Hops[ttl-1])
}

// MaxWidth returns the widest TTL of the discovered diamond.
func (m *Multipath) MaxWidth() int {
	w := 0
	for i := range m.Hops {
		if len(m.Hops[i]) > w {
			w = len(m.Hops[i])
		}
	}
	return w
}

// DiscoverMultipath probes dst under increasing flow identifiers and
// accumulates the per-TTL interface sets, in the spirit of the Multipath
// Detection Algorithm: flows keep being added until several consecutive
// flows discover nothing new (the confidence proxy), or maxFlows is
// exhausted.
func (t *Tracer) DiscoverMultipath(ctx context.Context, dst netip.Addr, maxFlows int) (*Multipath, error) {
	if maxFlows < 1 {
		maxFlows = 1
	}
	m := &Multipath{Dst: dst}
	seen := make(map[int]map[netip.Addr]bool)
	quiet := 0
	for flow := 0; flow < maxFlows; flow++ {
		tr, err := t.Trace(ctx, dst, uint16(flow))
		if err != nil {
			return nil, err
		}
		m.Flows++
		discovered := false
		for i := range tr.Hops {
			h := &tr.Hops[i]
			if !h.Responded() || h.Revealed {
				continue
			}
			ttl := h.TTL
			set := seen[ttl]
			if set == nil {
				set = make(map[netip.Addr]bool)
				seen[ttl] = set
			}
			if !set[h.Addr] {
				set[h.Addr] = true
				discovered = true
				for len(m.Hops) < ttl {
					m.Hops = append(m.Hops, nil)
				}
				m.Hops[ttl-1] = append(m.Hops[ttl-1], h.Addr)
			}
		}
		if discovered {
			quiet = 0
			continue
		}
		quiet++
		// MDA-style stopping: the wider the diamond seen so far, the more
		// silent flows are needed before concluding it is complete (the
		// n(k) probe-count rule, linearized).
		if quiet >= 4+3*m.MaxWidth() {
			break
		}
	}
	return m, nil
}
