package exp

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/obs"
	"arest/internal/probe"
)

// faultOneVP is the acceptance-test fault: kill every exchange on one
// vantage point of one AS, leaving every other connection untouched.
func faultOneVP(asID, vpIndex int) func(asgen.Record, int, probe.Conn) probe.Conn {
	return func(rec asgen.Record, vp int, c probe.Conn) probe.Conn {
		if rec.ID != asID || vp != vpIndex {
			return c
		}
		return probe.FaultConn{Conn: c}
	}
}

func failsoftRecs(t *testing.T) []asgen.Record {
	t.Helper()
	var recs []asgen.Record
	for _, id := range []int{2, 15, 28} {
		r, ok := asgen.ByID(id)
		if !ok {
			t.Fatalf("record %d missing", id)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestRunContainsFaultyAS is the headline containment property: with an
// injected Conn fault on one VP of one AS, the campaign completes, the
// failed AS is quarantined with its stage and budget error, and every
// other AS's result is identical to a fault-free run.
func TestRunContainsFaultyAS(t *testing.T) {
	recs := failsoftRecs(t)
	base, err := Run(context.Background(), recs, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.WrapConn = faultOneVP(15, 1)
	c, err := Run(context.Background(), recs, cfg)
	if err != nil {
		t.Fatalf("campaign error despite per-AS containment: %v", err)
	}
	if len(c.Failed) != 1 {
		t.Fatalf("Failed = %v, want exactly the faulted AS", c.Failed)
	}
	f := c.Failed[0]
	if f.Record.ID != 15 || f.Stage != StageMeasure {
		t.Errorf("failure = %s, want AS#15 at stage measure", f)
	}
	var tbe *TraceBudgetError
	if !errors.As(f.Err, &tbe) {
		t.Fatalf("err = %v, want a TraceBudgetError", f.Err)
	}
	if tbe.Failed == 0 || tbe.Failed > tbe.Total || tbe.Budget != 0 {
		t.Errorf("budget error = %+v, want failed in (0, total], budget 0", tbe)
	}
	if len(c.ASes) != len(base.ASes)-1 {
		t.Fatalf("ASes = %d, want %d (only the faulted AS missing)", len(c.ASes), len(base.ASes)-1)
	}
	for _, r := range c.ASes {
		br, ok := base.ByID(r.Record.ID)
		if !ok {
			t.Fatalf("AS#%d missing from fault-free baseline", r.Record.ID)
		}
		if !reflect.DeepEqual(r, br) {
			t.Errorf("AS#%d diverged under another AS's fault", r.Record.ID)
		}
	}
}

// TestToleratedFaultShardReplaysThroughDetect: with an unlimited budget the
// degraded measurement is accepted, its Degraded record attributes the
// failures to the faulted VP, and the written shard replays deep-equal
// through Detect.
func TestToleratedFaultShardReplaysThroughDetect(t *testing.T) {
	rec, ok := asgen.ByID(15)
	if !ok {
		t.Fatal("record 15 missing")
	}
	cfg := testCfg()
	cfg.WrapConn = faultOneVP(15, 1)
	cfg.MaxTraceFailures = -1

	data, err := MeasureAS(context.Background(), rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := data.Degraded
	if d == nil {
		t.Fatal("no Degraded record despite injected faults")
	}
	if d.FailedTraces == 0 || d.FailedTraces != len(data.PerVP[1]) {
		t.Errorf("FailedTraces = %d, want every VP-1 trace (%d)", d.FailedTraces, len(data.PerVP[1]))
	}
	if len(d.ByVP) != cfg.NumVPs || d.ByVP[0] != 0 || d.ByVP[1] != d.FailedTraces || d.ByVP[2] != 0 {
		t.Errorf("ByVP = %v, want all failures on VP 1", d.ByVP)
	}
	for _, tr := range data.PerVP[1] {
		if !tr.Failed() || !strings.Contains(tr.Err, "injected fault") {
			t.Fatalf("VP-1 trace not error-halted: halt=%v err=%q", tr.Halt, tr.Err)
		}
	}
	if err := cfg.TraceBudgetErr(data); err != nil {
		t.Fatalf("unlimited budget rejected the measurement: %v", err)
	}

	path := filepath.Join(t.TempDir(), "as-015.arest")
	if err := archive.WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	back, err := archive.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, data) {
		t.Fatal("degraded shard did not roundtrip deep-equal")
	}
	live, err := Detect(context.Background(), data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Detect(context.Background(), back, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replay) {
		t.Error("replayed Detect diverged from live Detect on the degraded shard")
	}
}

// TestRunShardedFaultPersistsAndResumeRederives: the over-budget shard is
// written before the quarantine verdict, and a later resume — even with
// the fault gone — re-derives the same quarantine from the persisted
// degradation instead of silently re-measuring.
func TestRunShardedFaultPersistsAndResumeRederives(t *testing.T) {
	recs := failsoftRecs(t)
	dir := t.TempDir()
	cfg := testCfg()
	cfg.WrapConn = faultOneVP(15, 1)

	c, statuses, err := RunSharded(context.Background(), recs, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Failed) != 1 || c.Failed[0].Record.ID != 15 {
		t.Fatalf("Failed = %v, want AS#15", c.Failed)
	}
	if statuses[1] != ShardFailed {
		t.Errorf("status[1] = %v, want failed", statuses[1])
	}
	if _, err := os.Stat(ShardPath(dir, recs[1])); err != nil {
		t.Fatalf("degraded shard not persisted: %v", err)
	}

	// Resume without the fault: the quarantine decision must come from the
	// shard on disk, not from a re-measurement.
	c2, st2, err := RunSharded(context.Background(), recs, testCfg(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Failed) != 1 || c2.Failed[0].Record.ID != 15 {
		t.Fatalf("resume Failed = %v, want the persisted quarantine re-derived", c2.Failed)
	}
	var tbe *TraceBudgetError
	if !errors.As(c2.Failed[0].Err, &tbe) {
		t.Errorf("resume err = %v, want a TraceBudgetError", c2.Failed[0].Err)
	}
	if st2[0] != ShardResumed || st2[1] != ShardFailed || st2[2] != ShardResumed {
		t.Errorf("resume statuses = %v, want [resumed failed resumed]", st2)
	}
	if !reflect.DeepEqual(c.ASes, c2.ASes) {
		t.Error("healthy ASes diverged between measured and resumed runs")
	}
}

// TestFaultyCampaignParallelMatchesSequential extends the determinism
// contract to the failure path: with an injected fault, an 8-worker run
// must produce the same results, the same Failed list, and bit-identical
// deterministic counters — failure counters included — as a sequential run.
func TestFaultyCampaignParallelMatchesSequential(t *testing.T) {
	recs := failsoftRecs(t)
	regs := map[int]*obs.Registry{}
	run := func(workers int) *Campaign {
		cfg := testCfg()
		cfg.Workers = workers
		cfg.WrapConn = faultOneVP(15, 1)
		regs[workers] = obs.New()
		cfg.Metrics = regs[workers]
		c, err := Run(context.Background(), recs, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return c
	}
	seq := run(1)
	parl := run(8)

	seqSnap := regs[1].Snapshot().Deterministic()
	parSnap := regs[8].Snapshot().Deterministic()
	if !reflect.DeepEqual(seqSnap, parSnap) {
		for k, v := range seqSnap.Counters {
			if parSnap.Counters[k] != v {
				t.Errorf("counter %s: %d (seq) vs %d (par)", k, v, parSnap.Counters[k])
			}
		}
		for k, v := range parSnap.Counters {
			if _, ok := seqSnap.Counters[k]; !ok {
				t.Errorf("counter %s: only in parallel run (%d)", k, v)
			}
		}
	}
	// The failure path must be instrumented, and identically so.
	for _, k := range []string{"probe.exchange_errors", "probe.halt.error", "exp.traces.failed", "exp.ases.failed"} {
		if seqSnap.Counters[k] == 0 {
			t.Errorf("counter %s not recorded under faults", k)
		}
	}

	if len(seq.ASes) != len(parl.ASes) {
		t.Fatalf("AS count diverged: %d vs %d", len(seq.ASes), len(parl.ASes))
	}
	for i := range seq.ASes {
		if !reflect.DeepEqual(seq.ASes[i], parl.ASes[i]) {
			t.Errorf("AS#%d diverged between worker counts", seq.ASes[i].Record.ID)
		}
	}
	if len(seq.Failed) != len(parl.Failed) {
		t.Fatalf("Failed count diverged: %v vs %v", seq.Failed, parl.Failed)
	}
	for i := range seq.Failed {
		sf, pf := seq.Failed[i], parl.Failed[i]
		if sf.Record.ID != pf.Record.ID || sf.Stage != pf.Stage || sf.Err.Error() != pf.Err.Error() {
			t.Errorf("failure %d diverged: %s vs %s", i, sf, pf)
		}
	}
}
