package archive

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net/netip"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"arest/internal/asgen"
	"arest/internal/mpls"
	"arest/internal/probe"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// fixtureData builds a small hand-rolled campaign exercising every record
// type, including edge shapes: a VP with zero traces, an unresponsive hop,
// a revealed hop, and a decode-error hop.
func fixtureData() *Data {
	rec := asgen.Record{ID: 46, ASN: 293, Name: "ESnet", Category: asgen.Transit,
		TracesSent: 123, IPsDiscovered: 45, CiscoConfirmed: true}
	dep := asgen.Deployment{
		Routers: 12, ExtraLinkFrac: 0.25, MPLS: true, SRFrac: 1,
		VendorWeights: map[mpls.Vendor]int{mpls.VendorNokia: 100},
		PropagateProb: 0.93, RFC4950Prob: 1, ServiceProb: 0.25, AlignSRGB: true,
		CustomSRGB: mpls.LabelRange{Lo: 100000, Hi: 107999},
	}
	tr1 := &probe.Trace{
		VP: addr("172.16.0.1"), Dst: addr("100.1.0.1"), FlowID: 3,
		Hops: []probe.Hop{
			{TTL: 1, Addr: addr("10.1.0.1"), RTT: 1.25, ICMPType: 11, ReplyTTL: 253, QTTL: 2,
				Stack: mpls.Stack{{Label: 16005, TC: 1, S: true, TTL: 1}}},
			{TTL: 2}, // unresponsive
			{TTL: 3, Addr: addr("10.1.0.3"), RTT: 2.5, ICMPType: 11, Revealed: true},
			{TTL: 4, Addr: addr("100.1.0.1"), RTT: 3.75, ICMPType: 3, DecodeError: true},
		},
		Halt: probe.HaltReached,
	}
	tr2 := &probe.Trace{
		VP: addr("172.16.0.1"), Dst: addr("100.1.0.2"),
		Hops: []probe.Hop{{TTL: 1, Addr: addr("10.1.0.1"), RTT: 0.5, ICMPType: 11}},
		Halt: probe.HaltGaps,
	}
	return &Data{
		Meta: Meta{Format: FormatV1, Record: rec, Dep: dep, Seed: 42,
			NumVPs: 2, MaxTargets: 8, FlowsPerTarget: 2},
		VPs:   []netip.Addr{addr("172.16.0.1"), addr("172.16.1.1")},
		PerVP: [][]*probe.Trace{{tr1, tr2}, {}},
		SNMP:  map[netip.Addr]mpls.Vendor{addr("10.1.0.1"): mpls.VendorNokia},
		TTL: map[netip.Addr]mpls.Vendor{
			addr("10.1.0.3"): mpls.VendorJuniper,
			addr("10.1.0.1"): mpls.VendorCiscoHuawei,
		},
		Aliases:   [][]netip.Addr{{addr("10.1.0.1"), addr("10.1.0.3")}},
		Borders:   map[netip.Addr]int{addr("10.1.0.1"): 293, addr("10.1.0.3"): 293},
		SREnabled: []netip.Addr{addr("10.1.0.1"), addr("10.1.0.3")},
	}
}

func encode(t testing.TB, d *Data) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteData(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := fixtureData()
	raw := encode(t, want)
	got, err := ReadData(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("roundtrip diverged:\n got %+v\nwant %+v", got, want)
	}
	// Re-encoding the decoded value must reproduce the bytes: the writer's
	// canonical record order makes the encoding a function of the value.
	if again := encode(t, got); !bytes.Equal(again, raw) {
		t.Error("re-encoding decoded data diverged from original bytes")
	}
}

func TestEmptySectionsRoundTrip(t *testing.T) {
	d := fixtureData()
	d.SNMP = map[netip.Addr]mpls.Vendor{}
	d.TTL = map[netip.Addr]mpls.Vendor{}
	d.Aliases = nil
	d.Borders = map[netip.Addr]int{}
	d.SREnabled = nil
	got, err := ReadData(bytes.NewReader(encode(t, d)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("empty sections diverged: %+v", got)
	}
}

func TestTruncatedStream(t *testing.T) {
	raw := encode(t, fixtureData())
	// Every proper prefix must fail with ErrTruncated or ErrCorrupt (for
	// cuts inside the magic, ErrBadMagic) — never succeed, never panic.
	for _, cut := range []int{0, 5, len(Magic), len(Magic) + 3, len(raw) / 2, len(raw) - 1} {
		_, err := ReadData(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d bytes accepted", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut %d: unexpected error class: %v", cut, err)
		}
	}
}

func TestCorruptedStream(t *testing.T) {
	raw := encode(t, fixtureData())
	// Flip one bit at several offsets past the magic: CRC must catch it.
	for _, off := range []int{len(Magic), len(Magic) + 7, len(raw) / 2, len(raw) - 3} {
		mut := bytes.Clone(raw)
		mut[off] ^= 0x20
		if _, err := ReadData(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at %d accepted", off)
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadData(strings.NewReader("#{\"asn\":1}\n{}\n")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("jsonl input: err = %v, want ErrBadMagic", err)
	}
	if _, err := ReadData(strings.NewReader("arest.archive.v9\nrest")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("wrong version: err = %v, want ErrBadMagic", err)
	}
}

func TestHugeLengthRejected(t *testing.T) {
	// A frame whose length field exceeds MaxPayload must be rejected
	// without attempting the allocation.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{byte(TypeMeta), 0xff, 0xff, 0xff, 0xff})
	if _, err := ReadData(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestEndTrailerCountsVerified(t *testing.T) {
	d := fixtureData()
	var buf bytes.Buffer
	aw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.writeRecord(TypeMeta, d.Meta); err != nil {
		t.Fatal(err)
	}
	// Trailer claims one more record than was written.
	if err := aw.writeRecord(TypeEnd, endPayload{Records: 2, Traces: 0}); err != nil {
		t.Fatal(err)
	}
	if err := aw.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadData(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for trailer count mismatch", err)
	}
}

func TestMetaMustComeFirst(t *testing.T) {
	var buf bytes.Buffer
	aw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.writeRecord(TypeVP, VPRecord{Index: 0, Addr: addr("172.16.0.1")}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadData(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for meta-less stream", err)
	}
}

func TestUnknownRecordTypeSkipped(t *testing.T) {
	d := fixtureData()
	var buf bytes.Buffer
	aw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.writeRecord(TypeMeta, d.Meta); err != nil {
		t.Fatal(err)
	}
	// A future additive record type must not break a v1 reader.
	if err := aw.writeRecord(Type(42), map[string]int{"future": 1}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadData(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Record.ASN != d.Meta.Record.ASN {
		t.Error("meta lost around unknown record")
	}
}

func TestWriteFileAtomicAndReadFile(t *testing.T) {
	d := fixtureData()
	path := filepath.Join(t.TempDir(), "as-046.arest")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Error("file roundtrip diverged")
	}
	dir, err := filepath.Glob(filepath.Join(filepath.Dir(path), ".arest-tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 0 {
		t.Errorf("temp files left behind: %v", dir)
	}
}

func TestSniff(t *testing.T) {
	raw := encode(t, fixtureData())
	if !Sniff(bufio.NewReader(bytes.NewReader(raw))) {
		t.Error("archive not recognized")
	}
	br := bufio.NewReader(strings.NewReader("#{\"asn\":1}\n"))
	if Sniff(br) {
		t.Error("jsonl recognized as archive")
	}
	// Sniff must not consume: the jsonl header must still be readable.
	if b, _ := br.ReadByte(); b != '#' {
		t.Error("Sniff consumed input")
	}
	if Sniff(bufio.NewReader(strings.NewReader(""))) {
		t.Error("empty input recognized as archive")
	}
}

func TestStreamingReaderSeesAllRecords(t *testing.T) {
	raw := encode(t, fixtureData())
	ar, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Type]int{}
	for {
		typ, _, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		counts[typ]++
		if typ == TypeEnd {
			break
		}
	}
	want := map[Type]int{TypeMeta: 1, TypeVP: 2, TypeTrace: 2, TypeFingerprint: 3,
		TypeAliasSet: 1, TypeBorder: 2, TypeSREnabled: 2, TypeEnd: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("record counts = %v, want %v", counts, want)
	}
	// After the trailer the reader reports EOF.
	if _, _, err := ar.Next(); err != io.EOF {
		t.Errorf("post-trailer Next: %v, want io.EOF", err)
	}
}

func TestDegradedRoundTrip(t *testing.T) {
	// A degraded campaign — an error-halted trace with its failure fields
	// plus the Degraded summary record — must survive the archive codec
	// bit-stably, so a replayed Detect (and the trace-failure budget) sees
	// exactly the degradation the live measurement saw.
	d := fixtureData()
	d.PerVP[1] = []*probe.Trace{{
		VP:  addr("172.16.1.1"),
		Dst: addr("100.1.0.9"),
		Hops: []probe.Hop{
			{TTL: 1, Addr: addr("10.1.0.1"), RTT: 0.5, ICMPType: 11, ReplyTTL: 253},
		},
		Halt:       probe.HaltError,
		Err:        "probe: injected fault",
		RevealErrs: []string{"dpr 10.1.0.3: aux trace: injected fault"},
	}}
	d.Degraded = &Degraded{FailedTraces: 1, TotalTraces: 3, ByVP: []int{0, 1}}

	raw := encode(t, d)
	got, err := ReadData(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("degraded roundtrip diverged:\n got %+v\nwant %+v", got, d)
	}
	tr := got.PerVP[1][0]
	if !tr.Failed() || tr.Err != "probe: injected fault" || len(tr.RevealErrs) != 1 {
		t.Errorf("failure fields lost in roundtrip: %+v", tr)
	}
	if again := encode(t, got); !bytes.Equal(again, raw) {
		t.Error("re-encoding decoded degraded data diverged from original bytes")
	}
}
