// The pooled per-Send scratch: allocation here multiplies by every probe
// sent, so the file holds the wire-path contract (DESIGN.md §11).
//
//arest:hotpath file
package netsim

import (
	"sync"

	"arest/internal/mpls"
	"arest/internal/pkt"
)

// sendScratch bundles every piece of transient state one Send needs:
// the decoded probe, the forwarding context and frame, the working label
// stacks, and the byte buffers the per-hop quote/reply construction
// appends into. Pooling it makes the wire path (near-)zero-allocation:
// the only per-Send heap traffic left is the Delivery handed to the
// caller and its reply bytes.
//
// The pool sits OUTSIDE the determinism contract on purpose (DESIGN.md
// §11): which scratch a Send draws depends on scheduling, but every
// field is fully overwritten before use — decoders assign whole structs,
// append-style encoders write every byte of the regions they claim, and
// stack/extension buffers are always resliced to [:0] first — so probe
// and reply bytes are a pure function of the probe and the network, never
// of pool history. The equivalence and fuzz tests in this package pin
// that property.
type sendScratch struct {
	ctx   sendCtx
	frame frame
	ip    pkt.IPv4 // decoded probe (payload aliases the caller's wire)

	received mpls.Stack // per-hop copy of the stack as received (RFC 4950 quote)
	stackBuf mpls.Stack // ingress push construction
	segBuf   [1]Segment // default single-segment list

	qip     pkt.IPv4 // quoted original datagram under reconstruction
	quote   []byte   // serialized quoted datagram
	extBuf  []byte   // serialized RFC 4950 label-stack object payload
	extObjs [1]pkt.ExtensionObject
	msg     pkt.ICMP // reply ICMP message under construction
	echo    pkt.ICMP // decoded echo request
	payload []byte   // serialized reply ICMP message
	out     pkt.IPv4 // reply IP packet under construction
}

var sendScratchPool = sync.Pool{New: func() any { return new(sendScratch) }}
