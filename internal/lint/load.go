package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers run on.
type Package struct {
	// Path is the package's import path ("arest/internal/netsim").
	Path string
	// Dir is the directory the files were parsed from.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader enumerates and type-checks module packages using only the
// standard library: go/build for file selection (honouring build
// constraints), go/parser for syntax, go/types for checking. Imports that
// resolve inside the module are themselves type-checked from source;
// stdlib imports come from compiler export data via importer.Default().
// The module is dependency-free (stdlib-only), so nothing else can occur.
type Loader struct {
	// Root is the absolute module root (directory holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// NewLoader creates a loader for the module rooted at root, reading the
// module path from root/go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Root:   abs,
		Module: mod,
		fset:   token.NewFileSet(),
		std:    importer.Default(),
		cache:  make(map[string]*Package),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module declaration from a go.mod file. A full
// modfile parser is unnecessary: the directive is a single line.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod — how tests and the CLI locate the module when invoked from a
// package subdirectory.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadAll loads every package under the module root (the "./..." pattern):
// each directory containing buildable non-test Go files, skipping testdata
// trees and hidden or underscore-prefixed directories. Results are sorted
// by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(ip, dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue // test-only or empty directory
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks the single package in dir under the given import
// path. dir may live outside the module root (the mutation tests exploit
// this): its own files are parsed from dir while any intra-module imports
// still resolve against the loader's root.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.load(importPath, dir)
}

// load parses and type-checks one directory as importPath, caching by
// import path so diamond imports check once.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if p, ok := l.cache[importPath]; ok {
		return p, nil
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader into a types.Importer: module-local
// import paths are mapped to directories under Root and checked from
// source; everything else is treated as stdlib and resolved from export
// data.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		dir := l.Root
		if rel != "" {
			dir = filepath.Join(l.Root, filepath.FromSlash(rel))
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
