// Command asgen instantiates one synthetic AS world from the Table 5
// catalogue and prints its topology, deployment ground truth, and
// (optionally) a Graphviz DOT rendering.
//
// Usage:
//
//	asgen -as 15 -seed 1 [-dot]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"arest/internal/asgen"
	"arest/internal/eval"
	"arest/internal/mpls"
)

func main() {
	asID := flag.Int("as", 15, "paper AS identifier (1-60)")
	seed := flag.Int64("seed", 20250405, "world seed")
	vps := flag.Int("vps", 3, "number of vantage points")
	routers := flag.Int("routers", 0, "override router count (0 = derived)")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the summary")
	configs := flag.Bool("configs", false, "emit vendor-style lab configs instead of the summary")
	flag.Parse()

	rec, ok := asgen.ByID(*asID)
	if !ok {
		fmt.Fprintf(os.Stderr, "asgen: unknown AS identifier %d\n", *asID)
		os.Exit(1)
	}
	dep := asgen.DeploymentFor(rec, *seed)
	if *routers > 0 {
		dep.Routers = *routers
	}
	w := asgen.Build(rec, dep, *vps, *seed)

	if *dot {
		emitDOT(w)
		return
	}
	if *configs {
		fmt.Print(asgen.WorldConfigs(w))
		if problems := asgen.ValidateWorld(w); len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "asgen: world inconsistent: %s\n", strings.Join(problems, "; "))
			os.Exit(1)
		}
		return
	}

	fmt.Printf("AS#%d %s (AS%d, %s) — seed %d\n", rec.ID, rec.Name, rec.ASN, rec.Category, *seed)
	fmt.Printf("deployment: mpls=%v srFrac=%.2f interworking=%v mappingServer=%v\n",
		dep.MPLS, dep.SRFrac, dep.Interworking, dep.MappingServer)
	fmt.Printf("            propagate=%.2f rfc4950=%.2f snmp=%.2f echo=%.2f te=%.2f svc=%.2f classicStack=%.2f\n",
		dep.PropagateProb, dep.RFC4950Prob, dep.SNMPOpenProb, dep.EchoProb,
		dep.TEProb, dep.ServiceProb, dep.ClassicStackProb)
	if dep.CustomSRGB.Size() > 0 {
		fmt.Printf("            custom SRGB %s\n", dep.CustomSRGB)
	}
	fmt.Printf("routers: %d (%d PEs), targets: %d, VPs: %d\n\n",
		len(w.Routers), len(w.Edges), len(w.Targets), len(w.VPs))

	t := eval.Table{Title: "Routers (ground truth)",
		Headers: []string{"Name", "Loopback", "Vendor", "SR", "LDP", "Mode", "SRGB", "propagate", "rfc4950"}}
	for _, r := range w.Routers {
		srgb := "-"
		if r.SREnabled {
			srgb = r.SRGB.String()
		}
		t.AddRow(r.Name, r.Loopback.String(), r.Vendor.String(),
			r.SREnabled, r.LDPEnabled, r.Mode.String(), srgb,
			r.Profile.TTLPropagate, r.Profile.RFC4950)
	}
	fmt.Print(t.Render())

	vendors := map[mpls.Vendor]int{}
	srCount := 0
	for _, r := range w.Routers {
		vendors[r.Vendor]++
		if w.SRRouter[r.ID] {
			srCount++
		}
	}
	var vparts []string
	for v, n := range vendors {
		vparts = append(vparts, fmt.Sprintf("%s:%d", v, n))
	}
	sort.Strings(vparts)
	fmt.Printf("\nSR-enabled routers: %d/%d; vendor mix: %s\n",
		srCount, len(w.Routers), strings.Join(vparts, " "))
}

func emitDOT(w *asgen.World) {
	fmt.Println("graph as {")
	fmt.Println("  overlap=false;")
	for _, r := range w.Routers {
		shape := "ellipse"
		color := "gray80"
		if w.SRRouter[r.ID] {
			color = "palegreen"
		} else if r.LDPEnabled {
			color = "lightsalmon"
		}
		if len(w.Net.Neighbors(r.ID)) <= 1 {
			shape = "box"
		}
		fmt.Printf("  %q [shape=%s style=filled fillcolor=%s label=\"%s\\n%s\"];\n",
			r.Name, shape, color, r.Name, r.Vendor)
	}
	seen := map[[2]int]bool{}
	for _, r := range w.Routers {
		for _, nb := range w.Net.Neighbors(r.ID) {
			key := [2]int{int(r.ID), int(nb)}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			other := w.Net.Router(nb)
			if other.ASN != r.ASN {
				continue // VP gateways omitted from the drawing
			}
			fmt.Printf("  %q -- %q;\n", r.Name, other.Name)
		}
	}
	fmt.Println("}")
}
