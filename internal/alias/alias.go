// Package alias resolves router aliases — which interface addresses belong
// to the same physical router — with the two techniques the paper combines:
// a MIDAR-style IP-ID monotonic bounds test over the router's shared IP-ID
// counter, pruned by an APPLE-style path-length estimation filter.
package alias

import (
	"context"
	"fmt"
	"net/netip"
	"sort"

	"arest/internal/obs"
	"arest/internal/par"
	"arest/internal/probe"
)

// Prober samples IP-IDs from candidate interfaces; probe.Tracer implements
// it. seq distinguishes successive samples so each probe carries a distinct
// IP-ID; implementations must be safe for concurrent use.
type Prober interface {
	SampleIPID(ctx context.Context, dst netip.Addr, seq uint32) (probe.IPIDSample, bool, error)
}

// Config tunes the resolution pipeline.
type Config struct {
	// Rounds is the number of interleaved samples per pair test.
	Rounds int
	// MaxStep is the largest credible IP-ID advance between consecutive
	// samples of a shared counter (MIDAR's velocity bound).
	MaxStep uint16
	// PathLenSlack is the APPLE pruning tolerance on estimated return
	// path lengths.
	PathLenSlack int
	// Workers bounds the probing concurrency (0 = GOMAXPROCS, 1 =
	// sequential). Parallel runs produce the same alias sets as
	// sequential ones: see ConflictKey.
	Workers int
	// ConflictKey, when set, names the shared IP-ID counter behind an
	// address (e.g. the simulated router's ID). Pair tests whose four
	// sample streams touch disjoint counters run in parallel; tests
	// sharing a counter are serialized in pair order, so every counter
	// sees the same probe subsequence as a sequential run and the
	// observed IP-ID sequences are identical. Addresses with ok=false —
	// and all addresses when ConflictKey is nil — fall into one shared
	// bucket and are serialized against each other (always correct,
	// merely less parallel).
	ConflictKey func(a netip.Addr) (key uint64, ok bool)
	// Metrics, when non-nil, receives "alias" stage instruments: candidate
	// and pair accounting plus the conflict-queue depth. Every recorded
	// value is a pure function of the candidate set, so the counters sit
	// inside the determinism contract.
	Metrics *obs.Registry
}

// DefaultConfig mirrors conservative MIDAR settings.
func DefaultConfig() Config {
	return Config{Rounds: 4, MaxStep: 2048, PathLenSlack: 1}
}

type candidate struct {
	addr    netip.Addr
	pathLen int
}

// Resolve returns alias sets (routers) among the candidate addresses. Only
// sets with two or more members are reported. The result is independent of
// cfg.Workers: every probe's bytes are a pure function of (address, seq),
// and the conflict-ordered schedule replays the sequential probe order on
// every shared counter.
//
// A transport error from the Prober is not a non-response: an errored
// sample means the measurement channel failed, and treating it as "silent
// router" would silently mispartition routers. Errored candidates and
// pairs are recorded distinctly (alias.sample_errors / alias.pairs.errored
// counters), excluded from the partition rather than folded into it, and
// reported through the returned error — deterministically, as the first
// error in index order — alongside the partition of the probes that did
// succeed. Callers that need a trustworthy partition must treat a non-nil
// error as fatal for the measurement.
//
// Cancelling ctx aborts resolution at the next sample boundary and returns
// (nil, cause): a cancelled run yields no partition at all, never a partial
// one that could be mistaken for "these probes went unanswered".
func Resolve(ctx context.Context, addrs []netip.Addr, p Prober, cfg Config) ([][]netip.Addr, error) {
	if cfg.Rounds == 0 {
		cfg = DefaultConfig()
	}
	workers := par.Workers(cfg.Workers)

	// Estimation stage: keep responsive candidates and record their
	// APPLE path-length estimate. Responsiveness and path length depend
	// only on each probe's own bytes, never on counter values, so the
	// fan-out needs no ordering.
	ests := make([]*candidate, len(addrs))
	estErrs := make([]error, len(addrs))
	fanErr := par.ForEach(ctx, workers, len(addrs), func(i int) {
		s, ok, err := p.SampleIPID(ctx, addrs[i], uint32(i))
		if err != nil {
			estErrs[i] = err
			return
		}
		if !ok {
			return
		}
		ests[i] = &candidate{addr: addrs[i],
			pathLen: int(probe.InferInitialTTL(s.ReplyTTL)) - int(s.ReplyTTL)}
	})
	if fanErr != nil {
		return nil, fanErr
	}
	sampleErrs := uint64(0)
	var firstErr error
	for i, e := range estErrs {
		if e == nil {
			continue
		}
		sampleErrs++
		if firstErr == nil {
			firstErr = fmt.Errorf("estimate %s: %w", addrs[i], e)
		}
	}
	cands := make([]candidate, 0, len(addrs))
	for _, c := range ests {
		if c != nil {
			cands = append(cands, *c)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].addr.Less(cands[j].addr) })
	cfg.Metrics.Counter("alias", "candidates").Add(uint64(len(addrs)))
	cfg.Metrics.Counter("alias", "responsive").Add(uint64(len(cands)))
	cfg.Metrics.Counter("alias", "sample_errors").Add(sampleErrs)

	// Pair stage: the APPLE-pruned pair list is built up front, in
	// lexicographic order, so the probing schedule is static. (The
	// previous transitive early-skip — skip (i,j) once union-find links
	// them — made the pair list depend on earlier outcomes; transitivity
	// is now recovered from the union-find below instead.)
	type pairTest struct{ i, j int }
	pairs := make([]pairTest, 0, len(cands)*(len(cands)-1)/2)
	pruned := 0
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			// APPLE pruning: interfaces of one router sit at (nearly) the
			// same return distance.
			d := cands[i].pathLen - cands[j].pathLen
			if d < 0 {
				d = -d
			}
			if d > cfg.PathLenSlack {
				pruned++
				continue
			}
			pairs = append(pairs, pairTest{i, j})
		}
	}
	cfg.Metrics.Counter("alias", "pairs.tested").Add(uint64(len(pairs)))
	cfg.Metrics.Counter("alias", "pairs.apple_pruned").Add(uint64(pruned))

	// counterKey buckets an address by the shared counter behind it;
	// bucket 0 collects addresses the oracle cannot place (and everything,
	// when there is no oracle).
	counterKey := func(a netip.Addr) uint64 {
		if cfg.ConflictKey != nil {
			if k, ok := cfg.ConflictKey(a); ok {
				return k + 1
			}
		}
		return 0
	}
	// Each pair test consumes 2*Rounds sample sequence numbers; bases are
	// disjoint from the estimation stage's [0, len(addrs)) range so no
	// (addr, seq) coordinate repeats.
	seqBase := func(pairIdx int) uint32 {
		return uint32(len(addrs) + pairIdx*2*cfg.Rounds)
	}
	// Conflict-queue depth: the longest per-counter serialization chain in
	// the static pair list — how many pair tests contend for the busiest
	// shared IP-ID counter. Computed from the pair list alone, so it is
	// deterministic at any worker count.
	if g := cfg.Metrics.Gauge("alias", "conflict_queue.depth"); g != nil {
		perKey := map[uint64]uint64{}
		for _, pt := range pairs {
			ki, kj := counterKey(cands[pt.i].addr), counterKey(cands[pt.j].addr)
			perKey[ki]++
			if kj != ki {
				perKey[kj]++
			}
		}
		for _, depth := range perKey {
			g.SetMax(depth)
		}
	}
	aliased := make([]bool, len(pairs))
	pairErrs := make([]error, len(pairs))
	pairFanErr := par.ConflictOrdered(ctx, workers, len(pairs),
		func(t int) []uint64 {
			return []uint64{counterKey(cands[pairs[t].i].addr), counterKey(cands[pairs[t].j].addr)}
		},
		func(t int) {
			ok, err := sharedCounter(ctx, cands[pairs[t].i].addr, cands[pairs[t].j].addr,
				p, cfg, seqBase(t))
			if err != nil {
				// An errored pair is neither aliased nor refuted: it is
				// excluded from the union-find and surfaced to the caller.
				pairErrs[t] = err
				return
			}
			aliased[t] = ok
		})
	if pairFanErr != nil {
		return nil, pairFanErr
	}
	pairErrCount := uint64(0)
	for t, e := range pairErrs {
		if e == nil {
			continue
		}
		pairErrCount++
		if firstErr == nil {
			firstErr = fmt.Errorf("pair (%s, %s): %w",
				cands[pairs[t].i].addr, cands[pairs[t].j].addr, e)
		}
	}
	cfg.Metrics.Counter("alias", "pairs.errored").Add(pairErrCount)

	// Union-find over the recorded outcomes (order-independent: union is
	// commutative on the final partition).
	parent := make([]int, len(cands))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	confirmed := uint64(0)
	for t, ok := range aliased {
		if ok {
			confirmed++
			parent[find(pairs[t].i)] = find(pairs[t].j)
		}
	}
	cfg.Metrics.Counter("alias", "pairs.aliased").Add(confirmed)
	groups := make(map[int][]netip.Addr)
	for i, c := range cands {
		r := find(i)
		groups[r] = append(groups[r], c.addr)
	}
	var out [][]netip.Addr
	for _, g := range groups {
		if len(g) >= 2 {
			sort.Slice(g, func(i, j int) bool { return g[i].Less(g[j]) })
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Less(out[j][0]) })
	if n := sampleErrs + pairErrCount; n > 0 {
		return out, fmt.Errorf("alias: %d probe errors (first: %w)", n, firstErr)
	}
	return out, nil
}

// sharedCounter runs the monotonic bounds test: interleave samples of the
// two addresses; a shared counter yields a strictly increasing sequence
// with small steps, while independent counters almost surely violate the
// bound at some step. seqBase numbers the samples within the resolution
// run's global sequence space. A transport error is returned as such: it
// says nothing about whether the counters are shared.
func sharedCounter(ctx context.Context, a, b netip.Addr, p Prober, cfg Config, seqBase uint32) (bool, error) {
	var seq []uint16
	k := seqBase
	for r := 0; r < cfg.Rounds; r++ {
		for _, addr := range []netip.Addr{a, b} {
			s, ok, err := p.SampleIPID(ctx, addr, k)
			k++
			if err != nil {
				return false, fmt.Errorf("sample %s: %w", addr, err)
			}
			if !ok {
				return false, nil
			}
			seq = append(seq, s.ID)
		}
	}
	for i := 1; i < len(seq); i++ {
		step := seq[i] - seq[i-1] // uint16 arithmetic handles wraparound
		if step == 0 || step > cfg.MaxStep {
			return false, nil
		}
	}
	return true, nil
}
