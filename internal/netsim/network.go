package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"arest/internal/mpls"
)

// Network is a simulated internetwork: routers (possibly spanning several
// ASes), point-to-point links, attached hosts, and the computed control
// planes (IGP shortest paths, LDP bindings, SR SIDs).
type Network struct {
	routers []*Router
	adj     map[RouterID][]neighbor
	hosts   map[netip.Addr]*Host

	// prefixes maps advertised prefixes to their owner router.
	prefixes map[netip.Prefix]RouterID

	// asIndex assigns a small stable index per ASN for address allocation.
	asIndex map[int]int
	// nextIface tracks per-AS interface address allocation.
	nextIface map[int]uint32
	nextLoop  map[int]uint32

	// MappingServer enables SR↔LDP interworking: an SRMS advertises prefix
	// SIDs on behalf of LDP-only routers, giving them node-SID indexes.
	MappingServer bool
	// SRPHPEnabled makes the penultimate hop pop SR node-SID labels
	// (penultimate hop popping). Off by default: the paper's examples show
	// the node-SID label present at the last hop of a segment.
	SRPHPEnabled bool
	// SRPolicy, when set, lets an ingress LER steer traffic over an
	// explicit segment list (traffic engineering, service SIDs). A nil
	// return falls back to a single node segment to the egress.
	SRPolicy func(ingress *Router, egress RouterID, dst netip.Addr, flow uint64) SegmentList
	// LDPStackPolicy, when set, lets a classic-MPLS ingress push a second
	// (service/VPN-style) label under the LDP transport label — the classic
	// source of depth-2 stacks outside Segment Routing. The returned label
	// must be a service SID of the egress (AllocateServiceSID).
	LDPStackPolicy func(ingress *Router, egress RouterID, dst netip.Addr) (uint32, bool)
	// EntropyPolicy, when set and returning true, makes classic-MPLS
	// ingresses append an RFC 6790 entropy label pair (ELI + EL) to the
	// stack — another Segment-Routing-free source of deep stacks.
	EntropyPolicy func(ingress *Router, egress RouterID, dst netip.Addr, flow uint64) bool

	seed int64

	// addrOwner maps exact interface/loopback addresses to their router.
	addrOwner map[netip.Addr]RouterID
	// ownerCache memoizes longest-prefix-match results per destination;
	// reset by Compute. A sync.Map so concurrent Sends can share it.
	ownerCache *sync.Map
	// pathCache memoizes PathLen walks per (src, dst, flow); reset by
	// Compute. Campaigns replay the same return paths for every probe of
	// a sweep, so the hop-by-hop walk runs once per flow.
	pathCache *sync.Map
	// downLinks holds administratively/operationally down links (both
	// orientations), for failure and fast-reroute studies.
	downLinks map[[2]RouterID]bool
	// nhOverride holds static FIB entries (fault injection): (at, owner)
	// → forced next hop; see SetNextHopOverride.
	nhOverride map[[2]RouterID]RouterID
	// met holds the bound observability counters (zero value = no-op);
	// see Instrument.
	met simMetrics
	// sidOwner maps node-SID indexes back to routers.
	sidOwner []RouterID

	computed bool
	// nexthops[src][dst] lists ECMP next hops from src toward dst router;
	// dense slices indexed by RouterID (IDs are contiguous from 0).
	nexthops [][][]RouterID
	dist     [][]int
}

// New creates an empty network. All stochastic choices (label pool draws,
// IP-ID strides) derive from seed.
func New(seed int64) *Network {
	return &Network{
		adj:       make(map[RouterID][]neighbor),
		hosts:     make(map[netip.Addr]*Host),
		prefixes:  make(map[netip.Prefix]RouterID),
		asIndex:   make(map[int]int),
		nextIface: make(map[int]uint32),
		nextLoop:  make(map[int]uint32),
		seed:      seed,
	}
}

// idHash mixes the network seed with a router ID into a well-distributed
// 64-bit value (splitmix64 finalizer). Per-router derivation — instead of a
// shared rand.Rand stream — makes router parameters independent of the
// order in which other routers were added, and leaves the Network free of
// mutable randomness state.
func idHash(seed int64, id RouterID) uint64 {
	v := uint64(seed) ^ uint64(id)*0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

func (n *Network) asIdx(asn int) int {
	if i, ok := n.asIndex[asn]; ok {
		return i
	}
	i := len(n.asIndex) + 1
	if i > 250 {
		panic("netsim: too many ASes for the addressing plan")
	}
	n.asIndex[asn] = i
	return i
}

func u32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// AddRouter creates a router, allocating its loopback from the AS block
// 10.<as-index>.0.0/16 and advertising the loopback /32.
func (n *Network) AddRouter(cfg RouterConfig) *Router {
	idx := n.asIdx(cfg.ASN)
	n.nextLoop[idx]++
	seq := n.nextLoop[idx]
	if seq > 999 {
		panic(fmt.Sprintf("netsim: more than 999 routers in AS %d", cfg.ASN))
	}
	lb := u32ToAddr(10<<24 | uint32(idx)<<16 | seq)

	srgb, srlb := cfg.SRGB, cfg.SRLB
	if srgb == (mpls.LabelRange{}) {
		if g, l, ok := mpls.SRBlocks(cfg.Vendor); ok {
			srgb = g
			if srlb == (mpls.LabelRange{}) {
				srlb = l
			}
		}
	}
	id := RouterID(len(n.routers))
	h := idHash(n.seed, id)
	r := &Router{
		ID:         id,
		Name:       cfg.Name,
		ASN:        cfg.ASN,
		Vendor:     cfg.Vendor,
		Loopback:   lb,
		Profile:    cfg.Profile,
		SREnabled:  cfg.SREnabled,
		LDPEnabled: cfg.LDPEnabled,
		SRGB:       srgb,
		SRLB:       srlb,
		Mode:       cfg.Mode,
		nodeIndex:  -1,
		svcSIDs:    make(map[uint32]bool),
		adjSIDs:    make(map[RouterID]uint32),
		adjByL:     make(map[uint32]RouterID),
		ldpIn:      make(map[uint32]RouterID),
		ldpOut:     make(map[RouterID]uint32),
		ifaces:     make(map[RouterID]netip.Addr),
		ipIDBase:   uint16(h),
		ipIDStride: uint16(1 + (h>>16)%8),
	}
	r.pool = mpls.NewPool(mpls.DynamicPool(cfg.Vendor), n.seed^int64(r.ID)*2654435761)
	if r.Name == "" {
		r.Name = fmt.Sprintf("r%d-as%d", r.ID, r.ASN)
	}
	n.routers = append(n.routers, r)
	n.prefixes[netip.PrefixFrom(lb, 32)] = r.ID
	n.computed = false
	return r
}

// Router returns the router with the given ID.
func (n *Network) Router(id RouterID) *Router { return n.routers[int(id)] }

// Routers returns all routers, ordered by ID.
func (n *Network) Routers() []*Router { return n.routers }

// Connect links routers a and b with the given IGP weight, allocating a
// point-to-point interface address on each side from a's AS block.
func (n *Network) Connect(a, b RouterID, weight int) {
	ra, rb := n.routers[a], n.routers[b]
	if _, dup := ra.ifaces[b]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %d-%d", a, b))
	}
	idx := n.asIdx(ra.ASN)
	n.nextIface[idx] += 2
	base := 10<<24 | uint32(idx)<<16 | 0x1000 + n.nextIface[idx]
	if base&0xffff >= 0xff00 {
		panic(fmt.Sprintf("netsim: interface space exhausted in AS %d", ra.ASN))
	}
	aAddr, bAddr := u32ToAddr(base), u32ToAddr(base+1)
	ra.ifaces[b] = aAddr
	rb.ifaces[a] = bAddr
	n.adj[a] = append(n.adj[a], neighbor{id: b, weight: weight})
	n.adj[b] = append(n.adj[b], neighbor{id: a, weight: weight})
	n.prefixes[netip.PrefixFrom(aAddr, 32)] = a
	n.prefixes[netip.PrefixFrom(bAddr, 32)] = b
	n.computed = false
}

// SetLinkState brings the a-b link down (up=false) or back up. The change
// takes effect at the next Compute, modeling IGP reconvergence; forwarding
// over an adjacency SID bound to a down link drops the packet immediately,
// as a real LSR would until protection kicks in.
func (n *Network) SetLinkState(a, b RouterID, up bool) {
	if n.downLinks == nil {
		n.downLinks = make(map[[2]RouterID]bool)
	}
	if up {
		delete(n.downLinks, [2]RouterID{a, b})
		delete(n.downLinks, [2]RouterID{b, a})
	} else {
		n.downLinks[[2]RouterID{a, b}] = true
		n.downLinks[[2]RouterID{b, a}] = true
	}
	n.computed = false
}

// linkDown reports whether the a-b link is down.
func (n *Network) linkDown(a, b RouterID) bool {
	return n.downLinks[[2]RouterID{a, b}]
}

// Neighbors returns the IDs of routers adjacent to id.
func (n *Network) Neighbors(id RouterID) []RouterID {
	out := make([]RouterID, len(n.adj[id]))
	for i, nb := range n.adj[id] {
		out[i] = nb.id
	}
	return out
}

// AdvertisePrefix attaches a routed prefix to a router (e.g. a customer
// prefix behind an edge router). Probes to any address inside it are
// delivered at that router.
func (n *Network) AdvertisePrefix(id RouterID, p netip.Prefix) {
	n.prefixes[p] = id
}

// AddHost attaches an end host (vantage point or target) to a gateway
// router and routes its /32 there.
func (n *Network) AddHost(a netip.Addr, gw RouterID) *Host {
	h := &Host{Addr: a, Gateway: gw}
	n.hosts[a] = h
	n.prefixes[netip.PrefixFrom(a, 32)] = gw
	return h
}

type ownerEntry struct {
	id RouterID
	ok bool
}

// Owner resolves the router owning the longest matching prefix for a,
// with ok=false when no prefix covers it. Results are memoized per
// destination until the next Compute: campaigns probe the same targets
// from many vantage points, so the linear prefix scan runs once per
// destination instead of once per probe.
func (n *Network) Owner(a netip.Addr) (RouterID, bool) {
	cache := n.ownerCache
	if cache != nil {
		if e, hit := cache.Load(a); hit {
			ent := e.(ownerEntry)
			return ent.id, ent.ok
		}
	}
	best := -1
	var owner RouterID
	for p, id := range n.prefixes {
		if p.Contains(a) && p.Bits() > best {
			best = p.Bits()
			owner = id
		}
	}
	if cache != nil {
		cache.Store(a, ownerEntry{owner, best >= 0})
	}
	return owner, best >= 0
}

// RouterByAddr returns the router owning a as one of its own interface or
// loopback addresses (not merely a routed prefix).
func (n *Network) RouterByAddr(a netip.Addr) (*Router, bool) {
	id, ok := n.addrOwner[a]
	if !ok {
		return nil, false
	}
	return n.routers[id], true
}

// Compute runs the control planes: IGP SPF, SR SID allocation, and LDP
// label distribution. It must be called after topology changes and before
// injecting traffic.
func (n *Network) Compute() {
	n.buildAddrIndex()
	n.computeSPF()
	n.assignSIDs()
	n.distributeLDP()
	n.computed = true
}

func (n *Network) buildAddrIndex() {
	n.ownerCache = new(sync.Map)
	n.pathCache = new(sync.Map)
	n.addrOwner = make(map[netip.Addr]RouterID)
	for _, r := range n.routers {
		n.addrOwner[r.Loopback] = r.ID
		for _, a := range r.ifaces {
			n.addrOwner[a] = r.ID
		}
	}
}

// assignSIDs gives every SR-enabled router a node-SID index and allocates
// adjacency SIDs for its IGP links. With a mapping server, LDP-only routers
// also receive a (SRMS-advertised) node-SID index.
func (n *Network) assignSIDs() {
	idx := 0
	n.sidOwner = n.sidOwner[:0]
	for _, r := range n.routers {
		if r.SREnabled || (n.MappingServer && r.LDPEnabled) {
			r.nodeIndex = idx
			n.sidOwner = append(n.sidOwner, r.ID)
			idx++
		} else {
			r.nodeIndex = -1
		}
	}
	for _, r := range n.routers {
		if !r.SREnabled {
			continue
		}
		// Deterministic neighbor order for reproducible adjacency SIDs.
		nbs := append([]neighbor(nil), n.adj[r.ID]...)
		sort.Slice(nbs, func(i, j int) bool { return nbs[i].id < nbs[j].id })
		seq := uint32(0)
		for _, nb := range nbs {
			var label uint32
			if r.SRLB.Size() > 0 {
				label = r.SRLB.Lo + seq
				if label > r.SRLB.Hi {
					panic(fmt.Sprintf("netsim: SRLB of %s exhausted", r.Name))
				}
			} else {
				// Juniper-style: adjacency SIDs from the dynamic pool.
				label = r.pool.Allocate(fmt.Sprintf("adj-%d", nb.id))
			}
			r.adjSIDs[nb.id] = label
			r.adjByL[label] = nb.id
			seq++
		}
	}
}

// distributeLDP makes every LDP-enabled router allocate a label from its
// dynamic pool for every reachable egress router FEC, mirroring per-prefix
// downstream-unsolicited LDP. SR border routers also generate LDP bindings
// that mirror the node SIDs they learned (LDP→SR interworking).
func (n *Network) distributeLDP() {
	for _, r := range n.routers {
		if !r.LDPEnabled && !r.SREnabled {
			continue
		}
		if !r.LDPEnabled {
			// Pure-SR router: generates LDP bindings only when adjacent to
			// an LDP-only neighbor (interworking), and only then.
			ldpNeighbor := false
			for _, nb := range n.adj[r.ID] {
				o := n.routers[nb.id]
				if o.LDPEnabled && !o.SREnabled {
					ldpNeighbor = true
					break
				}
			}
			if !ldpNeighbor {
				continue
			}
		}
		for _, e := range n.routers {
			if e.ID == r.ID || e.ASN != r.ASN {
				continue
			}
			if n.dist[r.ID][e.ID] < 0 {
				continue
			}
			l := r.pool.Allocate("fec-" + e.Loopback.String())
			r.ldpIn[l] = e.ID
			r.ldpOut[e.ID] = l
		}
	}
}

// Dist returns the IGP hop distance between two routers, or -1 when
// disconnected.
func (n *Network) Dist(a, b RouterID) int {
	if !n.computed {
		panic("netsim: Compute not called")
	}
	return n.dist[a][b]
}

// Hosts returns all attached hosts.
func (n *Network) Hosts() []*Host {
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}
