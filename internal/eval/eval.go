// Package eval provides the evaluation primitives the experiments share:
// confusion matrices (Table 3's TP/FP/FN metrics) and plain-text table
// rendering for the harness output.
package eval

import (
	"fmt"
	"strings"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Add merges another matrix into this one.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.TN += o.TN
	c.FP += o.FP
	c.FN += o.FN
}

// Record tallies one prediction against ground truth.
func (c *Confusion) Record(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), or 1 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 1 when nothing is actually positive.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FPRate returns FP/(TP+FP): the fraction of positive inferences that are
// wrong — the "FP" metric of Table 3.
func (c Confusion) FPRate() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.TP+c.FP)
}

// FNRate returns FN/(TP+FN).
func (c Confusion) FNRate() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.TP+c.FN)
}

func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d precision=%.3f recall=%.3f",
		c.TP, c.TN, c.FP, c.FN, c.Precision(), c.Recall())
}

// Table renders aligned plain-text tables for the experiment harness.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render produces the aligned table text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
