// Package longitudinal synthesizes the longitudinal traceroute archives behind
// Fig. 7: quarterly samples of CAIDA Ark and RIPE Atlas traces from
// December 2015 to March 2025, summarized by MPLS label-stack depth. The
// generator produces per-sample populations of stack depths following the
// published trend (stacks of depth ≥2 growing to ~20% on CAIDA and ~10% on
// RIPE), and the measurement code recovers the distributions from them.
package longitudinal

import (
	"fmt"
	"math/rand"
)

// Platform identifies the measurement archive.
type Platform int

const (
	CAIDA Platform = iota
	RIPEAtlas
)

func (p Platform) String() string {
	if p == CAIDA {
		return "caida-ark"
	}
	return "ripe-atlas"
}

// Sample is one quarterly archive snapshot: the label-stack depth of every
// MPLS-touching trace in the sample.
type Sample struct {
	Year    int
	Quarter int // 1..4 (March, June, September, December)
	Depths  []int
}

// Date renders the sample's nominal date.
func (s Sample) Date() string {
	months := map[int]string{1: "Mar", 2: "Jun", 3: "Sep", 4: "Dec"}
	return fmt.Sprintf("%s-%d", months[s.Quarter], s.Year)
}

// Generate produces the full quarterly archive for a platform, seeded
// deterministically. tracesPerSample controls population size.
func Generate(p Platform, tracesPerSample int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed ^ int64(p)<<32))
	var out []Sample
	for year := 2015; year <= 2025; year++ {
		for q := 1; q <= 4; q++ {
			if year == 2015 && q < 4 {
				continue // series starts December 2015
			}
			if year == 2025 && q > 1 {
				continue // series ends March 2025
			}
			out = append(out, generateSample(p, year, q, tracesPerSample, rng))
		}
	}
	return out
}

// generateSample draws one quarter's stack-depth population. The deep-stack
// share rises linearly over the decade toward the platform's 2025 level,
// with mild quarter noise.
func generateSample(p Platform, year, q, n int, rng *rand.Rand) Sample {
	// Fraction of traces with stack depth >= 2.
	var start, end float64
	if p == CAIDA {
		start, end = 0.08, 0.20
	} else {
		start, end = 0.04, 0.10
	}
	t := (float64(year-2015) + float64(q-1)/4) / 10
	deepShare := start + (end-start)*t
	deepShare += (rng.Float64() - 0.5) * 0.02
	if deepShare < 0 {
		deepShare = 0
	}
	s := Sample{Year: year, Quarter: q, Depths: make([]int, n)}
	for i := range s.Depths {
		if rng.Float64() < deepShare {
			// Depth >= 2: mostly 2, tail of 3-5.
			d := 2
			for d < 5 && rng.Float64() < 0.25 {
				d++
			}
			s.Depths[i] = d
		} else {
			s.Depths[i] = 1
		}
	}
	return s
}

// Distribution is the measured share of each stack-depth bucket in one
// sample: depth 1, depth 2, and depth 3 or more.
type Distribution struct {
	Date                   string
	Depth1, Depth2, Depth3 float64 // Depth3 aggregates >= 3
}

// Measure computes the per-sample stack-depth distributions, the statistic
// Fig. 7 plots.
func Measure(samples []Sample) []Distribution {
	out := make([]Distribution, 0, len(samples))
	for _, s := range samples {
		var d1, d2, d3 int
		for _, d := range s.Depths {
			switch {
			case d <= 1:
				d1++
			case d == 2:
				d2++
			default:
				d3++
			}
		}
		n := float64(len(s.Depths))
		if n == 0 {
			n = 1
		}
		out = append(out, Distribution{
			Date:   s.Date(),
			Depth1: float64(d1) / n,
			Depth2: float64(d2) / n,
			Depth3: float64(d3) / n,
		})
	}
	return out
}
