//go:build race

package testrace

// Enabled is true when the binary was built with -race.
const Enabled = true
