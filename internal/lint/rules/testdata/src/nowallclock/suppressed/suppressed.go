// Package suppressed is nowallclock testdata: a contract package whose
// wall-clock use is excused by a justified //arest:allow directive, so the
// harness expects zero findings.
package suppressed

import "time"

//arest:allow nowallclock this testdata package stands in for a live-measurement backend where wall-clock reads are the point

func live() time.Time {
	return time.Now()
}
