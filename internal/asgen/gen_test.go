package asgen

import (
	"context"
	"testing"

	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

func TestCatalogueShape(t *testing.T) {
	if len(Catalogue) != 60 {
		t.Fatalf("catalogue has %d rows, want 60", len(Catalogue))
	}
	counts := map[Category]int{}
	cisco, survey := 0, 0
	for i, r := range Catalogue {
		if r.ID != i+1 {
			t.Errorf("row %d has ID %d", i, r.ID)
		}
		counts[r.Category]++
		if r.CiscoConfirmed {
			cisco++
		}
		if r.SurveyConfirm {
			survey++
		}
		// ID ranges per category (paper Sec. 5).
		switch {
		case r.ID <= 12 && r.Category != Stub:
			t.Errorf("AS#%d should be Stub", r.ID)
		case r.ID > 12 && r.ID <= 25 && r.Category != Content:
			t.Errorf("AS#%d should be Content", r.ID)
		case r.ID > 25 && r.ID <= 52 && r.Category != Transit:
			t.Errorf("AS#%d should be Transit", r.ID)
		case r.ID > 52 && r.Category != Tier1:
			t.Errorf("AS#%d should be Tier1", r.ID)
		}
	}
	if counts[Stub] != 12 || counts[Content] != 13 || counts[Transit] != 27 || counts[Tier1] != 8 {
		t.Errorf("category counts = %v", counts)
	}
	// 25 Cisco-confirmed + 10 survey-confirmed = 35 validation cases.
	if cisco != 25 {
		t.Errorf("Cisco-confirmed = %d, want 25", cisco)
	}
	if survey != 10 {
		t.Errorf("survey-confirmed = %d, want 10", survey)
	}
	if len(ExcludedIDs) != 19 {
		t.Errorf("excluded = %d, want 19", len(ExcludedIDs))
	}
	if got := len(Analyzed()); got != 41 {
		t.Errorf("analyzed = %d, want 41", got)
	}
}

func TestByID(t *testing.T) {
	r, ok := ByID(46)
	if !ok || r.Name != "ESnet" || r.ASN != 293 || !r.SurveyConfirm {
		t.Errorf("ByID(46) = %+v, %v", r, ok)
	}
	if _, ok := ByID(0); ok {
		t.Error("ByID(0) found something")
	}
	if !r.Claimed() {
		t.Error("ESnet should be claimed")
	}
}

func TestDeploymentForDeterminism(t *testing.T) {
	for _, rec := range []int{7, 15, 46, 40} {
		r, _ := ByID(rec)
		d1 := DeploymentFor(r, 99)
		d2 := DeploymentFor(r, 99)
		if d1.SRFrac != d2.SRFrac || d1.Routers != d2.Routers || d1.Interworking != d2.Interworking {
			t.Errorf("AS#%d deployment not deterministic", rec)
		}
	}
}

func TestDeploymentOverrides(t *testing.T) {
	esnet, _ := ByID(46)
	d := DeploymentFor(esnet, 1)
	if d.SRFrac != 1 || d.SNMPOpenProb != 0 || d.EchoProb != 0 || d.ServiceProb == 0 {
		t.Errorf("ESnet deployment = %+v", d)
	}
	msft, _ := ByID(15)
	d = DeploymentFor(msft, 1)
	if d.SRFrac != 1 || d.PropagateProb != 1 {
		t.Errorf("Microsoft deployment = %+v", d)
	}
	prox, _ := ByID(7)
	d = DeploymentFor(prox, 1)
	if d.SRFrac != 0 || d.ClassicStackProb < 0.5 {
		t.Errorf("Proximus deployment = %+v", d)
	}
	iliad, _ := ByID(2)
	d = DeploymentFor(iliad, 1)
	if d.PropagateProb != 0 {
		t.Errorf("Iliad should have no explicit tunnels: %+v", d)
	}
}

func TestBuildWorldBasics(t *testing.T) {
	rec, _ := ByID(28) // Bell Canada, claimed transit
	dep := DeploymentFor(rec, 5)
	w := Build(rec, dep, 4, 5)
	if len(w.Routers) != dep.Routers {
		t.Fatalf("routers = %d, want %d", len(w.Routers), dep.Routers)
	}
	if len(w.VPs) != 4 {
		t.Fatalf("VPs = %d", len(w.VPs))
	}
	if len(w.Edges) < 2 || len(w.Targets) <= len(w.Routers) {
		t.Fatalf("edges = %d targets = %d", len(w.Edges), len(w.Targets))
	}
	// Topology is connected: every router reachable from the first.
	for _, r := range w.Routers[1:] {
		if w.Net.Dist(w.Routers[0].ID, r.ID) < 0 {
			t.Fatalf("router %s disconnected", r.Name)
		}
	}
	// Ground truth is populated and consistent with netsim state.
	srCount := 0
	for _, r := range w.Routers {
		if w.SRRouter[r.ID] {
			srCount++
			if !r.SREnabled {
				t.Errorf("ground truth says SR but router %s is not", r.Name)
			}
		} else if r.SREnabled {
			t.Errorf("router %s SR-enabled but ground truth says no", r.Name)
		}
	}
	if dep.SRFrac > 0.4 && srCount == 0 {
		t.Error("claimed AS built with zero SR routers")
	}
	// ASN annotation oracle.
	if w.ASNOf(w.Routers[0].Loopback) != rec.ASN {
		t.Error("ASNOf wrong for target-AS router")
	}
}

func TestBuildWorldTraceable(t *testing.T) {
	rec, _ := ByID(15) // Microsoft: full SR, explicit
	dep := DeploymentFor(rec, 7)
	dep.Routers = 25 // keep the test fast
	w := Build(rec, dep, 2, 7)
	tc := probe.NewTracer(probe.NetsimConn{Net: w.Net}, w.VPs[0])
	reached, labeled := 0, 0
	for _, tgt := range w.Targets[:10] {
		tr, err := tc.Trace(context.Background(), tgt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Reached() {
			reached++
		}
		for _, h := range tr.Hops {
			if h.HasStack() {
				labeled++
			}
		}
	}
	if reached < 8 {
		t.Errorf("only %d/10 targets reached", reached)
	}
	if labeled == 0 {
		t.Error("no labeled hops in a full-SR explicit AS")
	}
}

func TestBuildWorldDeterministic(t *testing.T) {
	rec, _ := ByID(27)
	dep := DeploymentFor(rec, 3)
	dep.Routers = 20
	w1 := Build(rec, dep, 2, 3)
	w2 := Build(rec, dep, 2, 3)
	tc1 := probe.NewTracer(probe.NetsimConn{Net: w1.Net}, w1.VPs[0])
	tc2 := probe.NewTracer(probe.NetsimConn{Net: w2.Net}, w2.VPs[0])
	tr1, err := tc1.Trace(context.Background(), w1.Targets[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := tc2.Trace(context.Background(), w2.Targets[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.String() != tr2.String() {
		t.Errorf("same seed, different traces:\n%s\nvs\n%s", tr1, tr2)
	}
}

func TestBuildESnetWorldBehaviour(t *testing.T) {
	rec, _ := ByID(46)
	dep := DeploymentFor(rec, 9)
	dep.Routers = 20
	w := Build(rec, dep, 2, 9)
	// Every target-AS router is SR-enabled.
	for _, r := range w.Routers {
		if !w.SRRouter[r.ID] {
			t.Fatalf("ESnet router %s not SR", r.Name)
		}
	}
	// Nothing answers pings, so TTL fingerprinting must come up empty.
	tc := probe.NewTracer(probe.NetsimConn{Net: w.Net}, w.VPs[0])
	tr, err := tc.Trace(context.Background(), w.Targets[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tr.Hops {
		if !h.Responded() {
			continue
		}
		if r, ok := w.Net.RouterByAddr(h.Addr); ok && r.ASN == rec.ASN {
			if _, ok, _ := tc.Ping(context.Background(), h.Addr, 5); ok {
				t.Errorf("ESnet hop %s answered a ping", h.Addr)
			}
		}
	}
}

func TestClassicStackPolicyProducesDepth2(t *testing.T) {
	rec, _ := ByID(7) // Proximus: LSO-heavy classic MPLS
	dep := DeploymentFor(rec, 21)
	dep.Routers = 20
	w := Build(rec, dep, 2, 21)
	tc := probe.NewTracer(probe.NetsimConn{Net: w.Net}, w.VPs[0])
	deep := 0
	for _, tgt := range w.Targets {
		tr, err := tc.Trace(context.Background(), tgt, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range tr.Hops {
			if h.Stack.Depth() >= 2 {
				deep++
				// Classic stacks: the top label must NOT sit in a vendor
				// SR range (it comes from the dynamic pool).
				if mpls.CiscoSRGB.Contains(h.Stack[0].Label) {
					t.Errorf("classic stack top %d inside Cisco SRGB", h.Stack[0].Label)
				}
			}
		}
	}
	if deep == 0 {
		t.Error("no depth-2 stacks in an LSO-heavy AS")
	}
}

func TestVendorDraw(t *testing.T) {
	rec, _ := ByID(40)
	dep := DeploymentFor(rec, 2)
	w := Build(rec, dep, 1, 2)
	seen := map[mpls.Vendor]int{}
	for _, r := range w.Routers {
		seen[r.Vendor]++
	}
	if len(seen) < 3 {
		t.Errorf("vendor diversity too low: %v", seen)
	}
}

func TestInterworkingWorldRegionsContiguous(t *testing.T) {
	rec, _ := ByID(28)
	dep := DeploymentFor(rec, 5)
	dep.Interworking = true
	dep.MappingServer = true
	dep.SRFrac = 0.5
	dep.Routers = 20
	w := Build(rec, dep, 1, 5)
	// There must be at least one dual-plane border router.
	border := 0
	for _, r := range w.Routers {
		if r.SREnabled && r.LDPEnabled {
			border++
		}
	}
	if border == 0 {
		t.Error("interworking world has no border router")
	}
	_ = netsim.ModeSR // keep import
}
