// Command experiments regenerates the paper's tables and figures by
// running the full campaign pipeline over the Table 5 catalogue (or a
// subset) and rendering each experiment's output.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig8,table3 -vps 6
//	experiments                       # everything, full analyzed catalogue
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"arest/internal/asgen"
	"arest/internal/exp"
	"arest/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	expIDs := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	asIDs := flag.String("as", "", "comma-separated AS identifiers (default: all analyzed)")
	vps := flag.Int("vps", 16, "vantage points per AS")
	targets := flag.Int("targets", 32, "max targets per AS")
	maxRouters := flag.Int("max-routers", 60, "per-AS topology cap")
	seed := flag.Int64("seed", 20250405, "campaign seed")
	workers := flag.Int("workers", 0, "worker pool size for every pipeline stage (0 = GOMAXPROCS, 1 = sequential)")
	analyzeWorkers := flag.Int("analyze-workers", 0, "worker pool size for the per-shard analysis fold (0 = same as -workers); lets a replay analyze many shards concurrently with a few workers each")
	outDir := flag.String("o", "", "write each experiment to <dir>/<id>.txt instead of stdout")
	snapshotDir := flag.String("snapshot", "", "snapshot/resume mode: persist per-AS archive shards under <dir> and skip ASes whose shard is already complete")
	maxASFailures := flag.Int("max-as-failures", 0, "tolerate up to this many failed ASes before exiting non-zero (-1 = unlimited); failed ASes are always reported and excluded from analysis")
	maxTraceFailures := flag.Int("max-trace-failures", 0, "per-AS budget of traces that may fail with a probe error before the AS is quarantined (-1 = unlimited)")
	metricsOut := flag.String("metrics", "", "export campaign metrics to <file> (.json = JSON, else summary table, - = stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatalf("pprof: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, e := range exp.All {
			fmt.Printf("%-9s %s\n          paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []exp.Experiment
	if *expIDs == "" {
		selected = exp.All
	} else {
		for _, id := range strings.Split(*expIDs, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fatalf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	records := asgen.Analyzed()
	if *asIDs != "" {
		records = nil
		for _, s := range strings.Split(*asIDs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("bad AS id %q", s)
			}
			rec, ok := asgen.ByID(id)
			if !ok {
				fatalf("unknown AS id %d", id)
			}
			records = append(records, rec)
		}
	}

	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumVPs = *vps
	cfg.MaxTargets = *targets
	cfg.MaxRouters = *maxRouters
	cfg.Workers = *workers
	cfg.AnalyzeWorkers = *analyzeWorkers
	cfg.MaxTraceFailures = *maxTraceFailures
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
		cfg.Metrics = reg
	}

	fmt.Fprintf(os.Stderr, "running campaign over %d ASes (%d VPs, <=%d targets each)...\n",
		len(records), cfg.NumVPs, cfg.MaxTargets)
	start := time.Now()
	var c *exp.Campaign
	var err error
	if *snapshotDir != "" {
		var statuses []exp.ShardStatus
		c, statuses, err = exp.RunSharded(records, cfg, *snapshotDir)
		if err == nil {
			resumed := 0
			for _, s := range statuses {
				if s == exp.ShardResumed {
					resumed++
				}
			}
			fmt.Fprintf(os.Stderr, "snapshot %s: %d/%d ASes resumed from shards, %d measured\n",
				*snapshotDir, resumed, len(statuses), len(statuses)-resumed)
		}
	} else {
		c, err = exp.Run(records, cfg)
	}
	if err != nil {
		fatalf("campaign: %v", err)
	}
	for _, f := range c.Failed {
		fmt.Fprintf(os.Stderr, "failed: %s\n", f)
	}
	total := 0
	for _, r := range c.ASes {
		total += r.TracesSent
	}
	fmt.Fprintf(os.Stderr, "campaign done: %d ASes, %d traces in %v\n\n",
		len(c.ASes), total, time.Since(start).Round(time.Millisecond))
	if reg != nil {
		snap := reg.Snapshot()
		if err := snap.ExportFile(*metricsOut); err != nil {
			fatalf("metrics: %v", err)
		}
		if *metricsOut != "-" {
			fmt.Fprint(os.Stderr, snap.Summary())
		}
	}

	for _, e := range selected {
		body := fmt.Sprintf("=== %s — %s ===\npaper: %s\n\n%s\n", e.ID, e.Title, e.Paper, e.Run(c))
		if *outDir == "" {
			fmt.Print(body)
			continue
		}
		path := filepath.Join(*outDir, e.ID+".txt")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	// The failure policy decides the exit code only after every surviving
	// AS's output (and the metrics export) has been rendered: a partially
	// failed campaign still delivers everything it measured.
	if n := len(c.Failed); *maxASFailures >= 0 && n > *maxASFailures {
		fatalf("%d AS(es) failed, budget %d (-max-as-failures)", n, *maxASFailures)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
