package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// ServePprof exposes the standard Go profiling endpoints on addr
// (host:port) in a background goroutine, for the -pprof CLI flag. It
// returns the bound address (useful with ":0") or an error if the listener
// cannot be created; serving errors after startup are ignored, matching
// the usual net/http/pprof sidecar pattern.
func ServePprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
