//go:build !race

// Package testrace reports whether the race detector is active, so
// allocation-budget tests can skip themselves: -race instruments
// allocations and shadow memory in ways that make testing.AllocsPerRun
// counts meaningless.
package testrace

// Enabled is true when the binary was built with -race.
const Enabled = false
