GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled suite: includes the concurrent netsim.Send stress test and
# the parallel-vs-sequential campaign equivalence tests.
race:
	$(GO) test -race ./...

# CI entry point.
check: vet race

bench:
	$(GO) test -run 'Benchmark' -bench . -benchmem .
