package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("defaulted worker count must be >= 1")
	}
}

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i := range hits {
			if h := atomic.LoadInt32(&hits[i]); h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	ForEach(4, 0, func(int) { t.Error("fn called for n=0") })
}

func TestConflictOrderedSerializesPerKey(t *testing.T) {
	// 60 tasks over two disjoint key families, two keys per task: same-key
	// tasks must run in index order and never concurrently.
	n := 60
	keysOf := func(i int) []uint64 { return []uint64{uint64(i % 6), uint64(6 + (i*5)%7)} }
	var mu sync.Mutex
	perKey := make(map[uint64][]int)
	inKey := make(map[uint64]bool)
	ConflictOrdered(8, n, keysOf, func(i int) {
		mu.Lock()
		for _, k := range keysOf(i) {
			if inKey[k] {
				t.Errorf("task %d entered busy key %d", i, k)
			}
			inKey[k] = true
		}
		mu.Unlock()
		mu.Lock()
		for _, k := range keysOf(i) {
			perKey[k] = append(perKey[k], i)
			inKey[k] = false
		}
		mu.Unlock()
	})
	for k, order := range perKey {
		for i := 1; i < len(order); i++ {
			if order[i] <= order[i-1] {
				t.Errorf("key %d ran out of order: %v", k, order)
			}
		}
	}
}

func TestConflictOrderedRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 200
		hits := make([]int32, n)
		// All tasks share key 0 plus a private key: fully serialized.
		ConflictOrdered(workers, n, func(i int) []uint64 {
			return []uint64{0, uint64(1 + i)}
		}, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i := range hits {
			if h := atomic.LoadInt32(&hits[i]); h != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestConflictOrderedSharedKeyPreservesTotalOrder(t *testing.T) {
	// When every task shares one key the parallel schedule must equal the
	// sequential one exactly.
	n := 50
	var order []int
	ConflictOrdered(8, n, func(i int) []uint64 { return []uint64{42} },
		func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d; schedule %v", i, got, order)
		}
	}
}

func TestConflictOrderedDuplicateAndEmptyKeys(t *testing.T) {
	n := 20
	hits := make([]int32, n)
	ConflictOrdered(4, n, func(i int) []uint64 {
		if i%3 == 0 {
			return nil // keyless: unconstrained
		}
		return []uint64{7, 7} // duplicate key must not self-deadlock
	}, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i := range hits {
		if h := atomic.LoadInt32(&hits[i]); h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}
