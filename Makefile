GO ?= go

# Every test invocation carries an explicit wall-clock ceiling: a hung
# campaign (the exact failure mode the stall watchdog exists for) fails the
# suite with goroutine dumps instead of wedging make or CI forever.
TEST_TIMEOUT ?= 10m

.PHONY: build test vet lint arestlint race check bench bench-json fuzz experiments-output

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

vet:
	$(GO) vet ./...

# Race-enabled suite: includes the concurrent netsim.Send stress test and
# the parallel-vs-sequential campaign equivalence tests.
race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./...

# Static analysis beyond vet. arestlint (the in-tree determinism-contract
# checker, DESIGN.md §10) always runs — it needs no external install.
# staticcheck/govulncheck skip gracefully when not on PATH locally; CI
# installs both (see .github/workflows/ci.yml).
lint: arestlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

# Machine-checked contracts: the nine analyzers of internal/lint/rules
# (determinism, error accounting, mergeable folds, hot-path allocation,
# lock copies, atomic mixing) over every package including _test.go files
# (stdlib-only, exits non-zero on any finding or unjustified suppression).
arestlint:
	$(GO) run ./cmd/arestlint -tests ./...

# CI entry point.
check: vet lint race

# Full benchmark sweep: every package, with allocation columns — the
# wire-path allocation budgets (DESIGN.md §11) are regression-gated by
# tests, but the B/op and allocs/op columns here are the numbers to watch.
bench:
	$(GO) test -run 'Benchmark' -bench . -benchmem -timeout $(TEST_TIMEOUT) ./...

# Machine-readable baseline: records the sweep into BENCH_8.json under
# LABEL (default "post"), replacing any previous run with the same label.
# Compare runs with: jq '.runs[] | {label, probe: (.results[] | select(.name=="BenchmarkProbe"))}' BENCH_8.json
LABEL ?= post
bench-json:
	$(GO) test -run 'Benchmark' -bench . -benchmem -timeout $(TEST_TIMEOUT) ./... | $(GO) run ./cmd/benchjson -label $(LABEL) -o BENCH_8.json

# The committed transcript every number in EXPERIMENTS.md was read from.
# The campaign is fully seeded, so this is byte-reproducible; CI regenerates
# it and fails on drift (stale-artifact check).
experiments-output:
	$(GO) run ./cmd/experiments > experiments_output.txt

# Short deterministic fuzz pass over the archive codec seeds plus a minute
# of mutation.
fuzz:
	$(GO) test -timeout $(TEST_TIMEOUT) ./internal/archive -run xxx -fuzz FuzzReadArchive -fuzztime 30s
