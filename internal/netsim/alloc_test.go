package netsim

import (
	"testing"

	"arest/internal/testrace"
)

// Allocation budget for the hop-forward path: one Send through an SR
// tunnel, expiring mid-LSP so the reply carries the full RFC 4950 quote —
// the most allocation-heavy reply the simulator produces.
//
// The steady-state cost is the Delivery struct, its Path slice, and the
// reply wire (caller-owned), plus whatever sendScratch the pool fails to
// recycle during a GC; the budget leaves headroom for the latter so the
// gate stays robust, while still catching any return to per-hop stack
// cloning or per-reply intermediate buffers (which cost dozens per Send).
func TestAllocBudgetSend(t *testing.T) {
	if testrace.Enabled {
		t.Skip("allocation counts are meaningless under -race instrumentation")
	}
	c := buildChain(t)
	wire := udpProbe(c.vp, c.target, 4, 33434) // expires at an interior P router
	got := testing.AllocsPerRun(500, func() {
		d, err := c.net.Send(c.vp, wire)
		if err != nil {
			t.Fatal(err)
		}
		if d.Reply == nil {
			t.Fatal("expected a time-exceeded reply")
		}
	})
	const budget = 8
	if got > budget {
		t.Errorf("Send: %.1f allocs/op, budget %d", got, budget)
	}
}
