package bdrmap

import (
	"context"
	"net/netip"
	"slices"
	"testing"

	"arest/internal/alias"
	"arest/internal/anaximander"
	"arest/internal/asgen"
	"arest/internal/mpls"
	"arest/internal/probe"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func hop(addr string) probe.Hop {
	return probe.Hop{Addr: a(addr), ICMPType: 11}
}

func traceOf(addrs ...string) *probe.Trace {
	tr := &probe.Trace{VP: a("172.16.0.1"), Dst: a("100.0.0.1")}
	for _, s := range addrs {
		tr.Hops = append(tr.Hops, hop(s))
	}
	return tr
}

type fakeRIB map[string]int

func (f fakeRIB) OriginOf(addr netip.Addr) (int, bool) {
	// /16 granularity lookup.
	b := addr.As4()
	key := netip.AddrFrom4([4]byte{b[0], b[1], 0, 0}).String()
	asn, ok := f[key]
	return asn, ok
}

func TestAnnotatePrefixPass(t *testing.T) {
	rib := fakeRIB{"10.1.0.0": 100, "10.2.0.0": 200}
	tr := traceOf("10.1.0.1", "10.1.0.5", "10.2.0.1")
	ann := Annotate([]*probe.Trace{tr}, rib, nil)
	if ann[a("10.1.0.1")] != 100 || ann[a("10.2.0.1")] != 200 {
		t.Errorf("annotation = %v", ann)
	}
}

func TestAnnotateAliasCorrection(t *testing.T) {
	// Router B's entry interface 10.1.0.9 is numbered from AS 100's space,
	// but it aliases with two AS-200 addresses: the vote must flip it.
	rib := fakeRIB{"10.1.0.0": 100, "10.2.0.0": 200}
	tr := traceOf("10.1.0.1", "10.1.0.9", "10.2.0.1", "10.2.0.2")
	aliases := [][]netip.Addr{{a("10.1.0.9"), a("10.2.0.1"), a("10.2.0.2")}}
	ann := Annotate([]*probe.Trace{tr}, rib, aliases)
	if ann[a("10.1.0.9")] != 200 {
		t.Errorf("far-side interface = AS%d, want 200", ann[a("10.1.0.9")])
	}
	if ann[a("10.1.0.1")] != 100 {
		t.Errorf("true AS-100 interface flipped: %v", ann)
	}
}

func TestAnnotateAliasTieKeepsPrefix(t *testing.T) {
	rib := fakeRIB{"10.1.0.0": 100, "10.2.0.0": 200}
	tr := traceOf("10.1.0.1", "10.2.0.1")
	aliases := [][]netip.Addr{{a("10.1.0.1"), a("10.2.0.1")}} // 1-1 tie
	ann := Annotate([]*probe.Trace{tr}, rib, aliases)
	if ann[a("10.1.0.1")] != 100 || ann[a("10.2.0.1")] != 200 {
		t.Errorf("tie should keep prefix annotations: %v", ann)
	}
}

func TestAnnotateSuccessorHeuristic(t *testing.T) {
	// 10.1.0.9 always precedes AS-200 hops and is unaliased: reassign.
	rib := fakeRIB{"10.1.0.0": 100, "10.2.0.0": 200}
	trs := []*probe.Trace{
		traceOf("10.1.0.1", "10.1.0.9", "10.2.0.1"),
		traceOf("10.1.0.2", "10.1.0.9", "10.2.0.4"),
	}
	ann := Annotate(trs, rib, nil)
	if ann[a("10.1.0.9")] != 200 {
		t.Errorf("successor heuristic: AS%d, want 200", ann[a("10.1.0.9")])
	}
	// Interior AS-100 hops keep their annotation (successors are AS 100).
	if ann[a("10.1.0.1")] != 100 {
		t.Errorf("interior hop flipped: %v", ann)
	}
}

func TestAnnotateSuccessorAmbiguityKept(t *testing.T) {
	// An address followed sometimes by AS 100, sometimes AS 200: ambiguous,
	// keep the prefix annotation.
	rib := fakeRIB{"10.1.0.0": 100, "10.2.0.0": 200}
	trs := []*probe.Trace{
		traceOf("10.1.0.9", "10.2.0.1"),
		traceOf("10.1.0.9", "10.1.0.3"),
	}
	ann := Annotate(trs, rib, nil)
	if ann[a("10.1.0.9")] != 100 {
		t.Errorf("ambiguous successor reassigned: %v", ann)
	}
}

func TestAnnotateGapBreaksSuccession(t *testing.T) {
	rib := fakeRIB{"10.1.0.0": 100, "10.2.0.0": 200}
	tr := traceOf("10.1.0.9")
	tr.Hops = append(tr.Hops, probe.Hop{}) // gap
	tr.Hops = append(tr.Hops, hop("10.2.0.1"))
	ann := Annotate([]*probe.Trace{tr}, rib, nil)
	if ann[a("10.1.0.9")] != 100 {
		t.Errorf("succession across a gap used: %v", ann)
	}
}

// TestAnnotateAgainstWorldOracle runs the real pipeline over a synthetic
// world and scores the inference against the simulator's ground truth.
func TestAnnotateAgainstWorldOracle(t *testing.T) {
	rec, _ := asgen.ByID(28)
	dep := asgen.DeploymentFor(rec, 5)
	dep.Routers = 20
	// Make everything fingerprintable/responsive for a clean oracle test.
	dep.EchoProb = 1
	w := asgen.Build(rec, dep, 3, 5)
	rib := anaximander.CollectRIB(w)

	var traces []*probe.Trace
	seen := map[netip.Addr]bool{}
	for _, vp := range w.VPs {
		tc := probe.NewTracer(probe.NetsimConn{Net: w.Net}, vp)
		for _, tgt := range w.Targets {
			tr, err := tc.Trace(context.Background(), tgt, 0)
			if err != nil {
				t.Fatal(err)
			}
			traces = append(traces, tr)
			for _, h := range tr.Hops {
				if h.Responded() {
					seen[h.Addr] = true
				}
			}
		}
	}
	var cands []netip.Addr
	for addr := range seen {
		cands = append(cands, addr)
	}
	slices.SortFunc(cands, netip.Addr.Compare)
	tc := probe.NewTracer(probe.NetsimConn{Net: w.Net}, w.VPs[0])
	sets, err := alias.Resolve(context.Background(), cands, tc, alias.DefaultConfig())
	if err != nil {
		t.Fatalf("alias.Resolve: %v", err)
	}
	ann := Annotate(traces, rib, sets)

	total, correct := 0, 0
	for addr, got := range ann {
		want := w.ASNOf(addr)
		if want == 0 {
			continue // host addresses etc.
		}
		total++
		if got == want {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("oracle scored nothing")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Errorf("bdrmap accuracy = %.2f (%d/%d), want >= 0.9", acc, correct, total)
	}
	_ = mpls.VendorCisco
}
