// Typed record payloads and the whole-campaign Data aggregate: the
// interchange value between the Measure stage (which produces it against
// the live world) and the Annotate/Detect stages (which are pure functions
// of it, live or replayed from disk).
package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"sort"

	"arest/internal/asgen"
	"arest/internal/mpls"
	"arest/internal/probe"
)

// Meta is the campaign-metadata record: the catalogue row, the derived
// deployment (ground-truth configuration, e.g. the provisioned SRGB), and
// the measurement knobs that shaped the probing. It carries everything a
// replay needs so analysis never reaches back into the generator.
type Meta struct {
	Format         string           `json:"format"` // FormatV1 or FormatV2; selects the record order WriteData emits
	Record         asgen.Record     `json:"record"`
	Dep            asgen.Deployment `json:"dep"`
	Seed           int64            `json:"seed"`
	NumVPs         int              `json:"num_vps"`
	MaxTargets     int              `json:"max_targets"`
	FlowsPerTarget int              `json:"flows_per_target"`
}

// FormatV1 and FormatV2 are the accepted Meta.Format values. The format
// declared in the meta record must match the container magic; WriteData
// derives the magic (and the canonical record order) from it.
const (
	FormatV1 = "arest.archive.v1"
	FormatV2 = "arest.archive.v2"
)

// formatVersion maps a Meta.Format value to its container version.
func formatVersion(format string) (int, error) {
	switch format {
	case FormatV1:
		return 1, nil
	case FormatV2:
		return 2, nil
	}
	return 0, fmt.Errorf("archive: unknown meta format %q", format)
}

// VPRecord declares one vantage point and how many trace records follow
// for it (readers use the count for preallocation; the end trailer is the
// integrity check).
type VPRecord struct {
	Index  int        `json:"index"`
	Addr   netip.Addr `json:"addr"`
	Traces int        `json:"traces"`
}

// TraceRecord wraps one trace with its vantage-point index.
type TraceRecord struct {
	VPIndex int          `json:"vp_index"`
	Trace   *probe.Trace `json:"trace"`
}

// FingerprintSource distinguishes the two annotation datasets.
type FingerprintSource string

const (
	SourceSNMP FingerprintSource = "snmp"
	SourceTTL  FingerprintSource = "ttl"
)

// FingerprintRecord is one interface vendor annotation.
type FingerprintRecord struct {
	Addr   netip.Addr        `json:"addr"`
	Vendor mpls.Vendor       `json:"vendor"`
	Source FingerprintSource `json:"source"`
}

// AliasSetRecord is one resolved router (its interface addresses).
type AliasSetRecord struct {
	Addrs []netip.Addr `json:"addrs"`
}

// BorderRecord is one bdrmap owner annotation.
type BorderRecord struct {
	Addr netip.Addr `json:"addr"`
	ASN  int        `json:"asn"`
}

// SREnabledRecord is one ground-truth SR-enabled interface of the target
// AS, exported by the simulator for offline validation (Table 3).
type SREnabledRecord struct {
	Addr netip.Addr `json:"addr"`
}

// Degraded summarizes measurement failures the campaign absorbed: traces
// that halted with probe.HaltError instead of completing. It is written
// only when at least one trace failed, so fault-free archives are
// byte-identical to those of writers predating the record, and it rides
// inside the archive so a replayed Detect sees exactly the degradation the
// live measurement saw — including re-deriving the same accept/reject
// decision under a trace-failure budget (see exp.Config.MaxTraceFailures).
type Degraded struct {
	// FailedTraces counts traces with Halt == HaltError, across all VPs.
	FailedTraces int `json:"failed_traces"`
	// TotalTraces is the campaign's total trace count, failed included.
	TotalTraces int `json:"total_traces"`
	// ByVP counts failed traces per vantage point, indexed like Data.VPs.
	// A slice, not a map: record payloads must encode canonically.
	ByVP []int `json:"by_vp,omitempty"`
}

// Data is one AS's campaign, wholly resident: what Measure produces and
// what Annotate/Detect consume. WriteData/ReadData round-trip it through
// the record stream losslessly.
type Data struct {
	Meta      Meta
	VPs       []netip.Addr
	PerVP     [][]*probe.Trace // indexed like VPs
	SNMP      map[netip.Addr]mpls.Vendor
	TTL       map[netip.Addr]mpls.Vendor
	Aliases   [][]netip.Addr
	Borders   map[netip.Addr]int
	SREnabled []netip.Addr // sorted
	// Degraded is non-nil iff the measurement absorbed trace failures.
	Degraded *Degraded
}

// Traces flattens all vantage points' traces in VP order.
func (d *Data) Traces() []*probe.Trace {
	var out []*probe.Trace
	for _, ts := range d.PerVP {
		out = append(out, ts...)
	}
	return out
}

// sortedAddrs returns a map's keys in address order, for deterministic
// record emission.
func sortedAddrs[V any](m map[netip.Addr]V) []netip.Addr {
	out := make([]netip.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// WriteData streams the whole campaign into w in the canonical record
// order of the version d.Meta.Format declares. v1: meta, VPs, traces
// (grouped per VP), fingerprints (snmp then ttl, each address-sorted),
// alias sets, borders, ground truth, degradation, end trailer. v2 moves
// everything after the VPs ahead of the traces, so a streaming consumer
// has all annotation state before the first trace. Either way the order
// is canonical — byte-identical re-encoding is possible, which the
// golden-file tests pin.
func WriteData(w io.Writer, d *Data) error {
	version, err := formatVersion(d.Meta.Format)
	if err != nil {
		return err
	}
	aw, err := newWriterVersion(w, version)
	if err != nil {
		return err
	}
	if err := aw.writeRecord(TypeMeta, d.Meta); err != nil {
		return err
	}
	for i, vp := range d.VPs {
		if err := aw.writeRecord(TypeVP, VPRecord{Index: i, Addr: vp, Traces: len(d.PerVP[i])}); err != nil {
			return err
		}
	}
	if version == 1 {
		if err := writeTraces(aw, d); err != nil {
			return err
		}
		if err := writeSideData(aw, d); err != nil {
			return err
		}
	} else {
		if err := writeSideData(aw, d); err != nil {
			return err
		}
		if err := writeTraces(aw, d); err != nil {
			return err
		}
	}
	return aw.Close()
}

func writeTraces(aw *Writer, d *Data) error {
	for i, ts := range d.PerVP {
		for _, tr := range ts {
			if err := aw.writeRecord(TypeTrace, TraceRecord{VPIndex: i, Trace: tr}); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSideData(aw *Writer, d *Data) error {
	for _, src := range []struct {
		src FingerprintSource
		m   map[netip.Addr]mpls.Vendor
	}{{SourceSNMP, d.SNMP}, {SourceTTL, d.TTL}} {
		for _, a := range sortedAddrs(src.m) {
			if err := aw.writeRecord(TypeFingerprint, FingerprintRecord{Addr: a, Vendor: src.m[a], Source: src.src}); err != nil {
				return err
			}
		}
	}
	for _, set := range d.Aliases {
		if err := aw.writeRecord(TypeAliasSet, AliasSetRecord{Addrs: set}); err != nil {
			return err
		}
	}
	for _, a := range sortedAddrs(d.Borders) {
		if err := aw.writeRecord(TypeBorder, BorderRecord{Addr: a, ASN: d.Borders[a]}); err != nil {
			return err
		}
	}
	for _, a := range d.SREnabled {
		if err := aw.writeRecord(TypeSREnabled, SREnabledRecord{Addr: a}); err != nil {
			return err
		}
	}
	if d.Degraded != nil {
		if err := aw.writeRecord(TypeDegraded, d.Degraded); err != nil {
			return err
		}
	}
	return nil
}

// ReadData drains an archive into a Data. It fails with ErrTruncated on
// a stream missing its end trailer and ErrCorrupt on checksum or schema
// violations, so callers can distinguish "interrupted writer" from
// "damaged file". It is a thin client of the streaming fold in stream.go.
func ReadData(r io.Reader) (*Data, error) {
	ar, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return ReadFrom(ar)
}

// ReadFrom drains an already-opened record stream into a Data.
func ReadFrom(ar *Reader) (*Data, error) {
	d := &Data{
		SNMP:    map[netip.Addr]mpls.Vendor{},
		TTL:     map[netip.Addr]mpls.Vendor{},
		Borders: map[netip.Addr]int{},
	}
	if err := StreamRecords(ar, &dataVisitor{d: d}); err != nil {
		return nil, err
	}
	return d, nil
}

// maxTracePrealloc caps the per-VP slice capacity taken from the untrusted
// VPRecord.Traces count: a forged or corrupt count may not force a giant
// up-front allocation (or a panic, for a negative count). The slice still
// grows on demand past the cap; the end trailer remains the integrity
// check on the real counts.
const maxTracePrealloc = 4096

// dataVisitor folds validated records into a wholly-resident Data.
type dataVisitor struct{ d *Data }

func (v *dataVisitor) Meta(m Meta) error {
	v.d.Meta = m
	return nil
}

func (v *dataVisitor) VP(rec VPRecord) error {
	n := rec.Traces
	if n < 0 {
		n = 0
	}
	if n > maxTracePrealloc {
		n = maxTracePrealloc
	}
	v.d.VPs = append(v.d.VPs, rec.Addr)
	v.d.PerVP = append(v.d.PerVP, make([]*probe.Trace, 0, n))
	return nil
}

func (v *dataVisitor) Trace(rec TraceRecord) error {
	v.d.PerVP[rec.VPIndex] = append(v.d.PerVP[rec.VPIndex], rec.Trace)
	return nil
}

func (v *dataVisitor) Fingerprint(rec FingerprintRecord) error {
	switch rec.Source {
	case SourceSNMP:
		v.d.SNMP[rec.Addr] = rec.Vendor
	case SourceTTL:
		v.d.TTL[rec.Addr] = rec.Vendor
	}
	return nil
}

func (v *dataVisitor) AliasSet(rec AliasSetRecord) error {
	v.d.Aliases = append(v.d.Aliases, rec.Addrs)
	return nil
}

func (v *dataVisitor) Border(rec BorderRecord) error {
	v.d.Borders[rec.Addr] = rec.ASN
	return nil
}

func (v *dataVisitor) SREnabled(rec SREnabledRecord) error {
	v.d.SREnabled = append(v.d.SREnabled, rec.Addr)
	return nil
}

func (v *dataVisitor) Degraded(rec Degraded) error {
	v.d.Degraded = &rec
	return nil
}

func decode(body []byte, into any) error {
	if err := json.Unmarshal(body, into); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// WriteFile writes the campaign to path atomically: a temp file in the
// same directory, fsync'd and renamed into place, so an interrupted writer
// never leaves a file that parses as complete.
func WriteFile(path string, d *Data) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".arest-tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteData(tmp, d); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads one archive shard from disk.
func ReadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadData(bufio.NewReader(f))
}

// Sniff reports whether br's next bytes are an archive (either version),
// without consuming them. It lets cmd/arest accept both the binary format
// and the legacy JSONL tracestore behind one flag.
func Sniff(br *bufio.Reader) bool {
	head, err := br.Peek(len(Magic))
	if err != nil {
		return false
	}
	return bytes.Equal(head, []byte(Magic)) || bytes.Equal(head, []byte(MagicV2))
}
