package archive

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"arest/internal/probe"
)

// fixtureDataV2 is the v1 fixture re-declared as format v2, with a
// degradation record so the v2 side-data run exercises every record type.
func fixtureDataV2() *Data {
	d := fixtureData()
	d.Meta.Format = FormatV2
	d.Degraded = &Degraded{FailedTraces: 1, TotalTraces: 3, ByVP: []int{1, 0}}
	return d
}

func TestV2RoundTrip(t *testing.T) {
	want := fixtureDataV2()
	raw := encode(t, want)
	if !bytes.HasPrefix(raw, []byte(MagicV2)) {
		t.Fatalf("v2 fixture encoded under magic %q", raw[:len(MagicV2)])
	}
	got, err := ReadData(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("v2 roundtrip diverged:\n got %+v\nwant %+v", got, want)
	}
	if again := encode(t, got); !bytes.Equal(again, raw) {
		t.Error("re-encoding decoded v2 data diverged from original bytes")
	}
}

// TestV2TracesAfterSideData pins the property the streaming fold depends
// on: in a v2 archive every trace record comes after every annotation
// record, so a one-pass consumer can seal its side state before the first
// trace.
func TestV2TracesAfterSideData(t *testing.T) {
	raw := encode(t, fixtureDataV2())
	ar, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if ar.Version() != 2 {
		t.Fatalf("Version() = %d, want 2", ar.Version())
	}
	sawTrace := false
	for {
		typ, _, err := ar.Next()
		if err == io.EOF || typ == TypeEnd {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case TypeTrace:
			sawTrace = true
		case TypeMeta, TypeVP:
			// Precede traces in both versions.
		default:
			if sawTrace {
				t.Fatalf("%s record after a trace in a v2 stream", typ)
			}
		}
	}
	if !sawTrace {
		t.Fatal("fixture encoded no traces")
	}
}

// recordingVisitor collects the order of visited record kinds.
type recordingVisitor struct {
	kinds    []Type
	traceErr error
}

func (v *recordingVisitor) Meta(Meta) error   { v.kinds = append(v.kinds, TypeMeta); return nil }
func (v *recordingVisitor) VP(VPRecord) error { v.kinds = append(v.kinds, TypeVP); return nil }
func (v *recordingVisitor) Fingerprint(FingerprintRecord) error {
	v.kinds = append(v.kinds, TypeFingerprint)
	return nil
}
func (v *recordingVisitor) AliasSet(AliasSetRecord) error {
	v.kinds = append(v.kinds, TypeAliasSet)
	return nil
}
func (v *recordingVisitor) Border(BorderRecord) error {
	v.kinds = append(v.kinds, TypeBorder)
	return nil
}
func (v *recordingVisitor) SREnabled(SREnabledRecord) error {
	v.kinds = append(v.kinds, TypeSREnabled)
	return nil
}
func (v *recordingVisitor) Degraded(Degraded) error {
	v.kinds = append(v.kinds, TypeDegraded)
	return nil
}
func (v *recordingVisitor) Trace(TraceRecord) error {
	v.kinds = append(v.kinds, TypeTrace)
	return v.traceErr
}

func TestStreamVisitsEveryRecord(t *testing.T) {
	raw := encode(t, fixtureDataV2())
	var rv recordingVisitor
	if err := Stream(bytes.NewReader(raw), &rv); err != nil {
		t.Fatal(err)
	}
	counts := map[Type]int{}
	for _, k := range rv.kinds {
		counts[k]++
	}
	want := map[Type]int{TypeMeta: 1, TypeVP: 2, TypeTrace: 2, TypeFingerprint: 3,
		TypeAliasSet: 1, TypeBorder: 2, TypeSREnabled: 2, TypeDegraded: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("visited counts = %v, want %v", counts, want)
	}
}

// TestStreamVisitorErrorPropagates: a visitor error aborts the fold and is
// returned unchanged, so sentinel errors survive errors.Is.
func TestStreamVisitorErrorPropagates(t *testing.T) {
	sentinel := errors.New("stop here")
	raw := encode(t, fixtureDataV2())
	rv := recordingVisitor{traceErr: sentinel}
	err := Stream(bytes.NewReader(raw), &rv)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the visitor's sentinel unchanged", err)
	}
	traces := 0
	for _, k := range rv.kinds {
		if k == TypeTrace {
			traces++
		}
	}
	if traces != 1 {
		t.Errorf("visited %d traces after the aborting one, want the fold to stop", traces)
	}
}

// TestFormatContainerMismatch: the meta record's declared format must
// match the container magic, in both directions.
func TestFormatContainerMismatch(t *testing.T) {
	for _, tc := range []struct {
		name    string
		version int
		format  string
	}{
		{"v2 meta in v1 container", 1, FormatV2},
		{"v1 meta in v2 container", 2, FormatV1},
		{"unknown format", 1, "arest.archive.v9"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := fixtureData()
			d.Meta.Format = tc.format
			var buf bytes.Buffer
			aw, err := newWriterVersion(&buf, tc.version)
			if err != nil {
				t.Fatal(err)
			}
			if err := aw.writeRecord(TypeMeta, d.Meta); err != nil {
				t.Fatal(err)
			}
			if err := aw.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadData(&buf); !errors.Is(err, ErrCorrupt) {
				t.Errorf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestWriteDataRejectsUnknownFormat(t *testing.T) {
	d := fixtureData()
	d.Meta.Format = "arest.archive.v9"
	var buf bytes.Buffer
	if err := WriteData(&buf, d); err == nil {
		t.Fatal("unknown Meta.Format accepted by WriteData")
	}
}

func TestSniffV2(t *testing.T) {
	raw := encode(t, fixtureDataV2())
	br := bufio.NewReader(bytes.NewReader(raw))
	if !Sniff(br) {
		t.Error("v2 archive not recognized")
	}
	if b, _ := br.ReadByte(); b != 'a' {
		t.Error("Sniff consumed input")
	}
}

// TestForgedVPTraceCountClamped is the hostile-header guard: a forged
// VPRecord.Traces count must neither drive a giant preallocation nor (for
// a negative count) panic. The slice still grows on demand, so a valid
// stream with a conservative header decodes fully.
func TestForgedVPTraceCountClamped(t *testing.T) {
	build := func(traceCount, actualTraces int) []byte {
		var buf bytes.Buffer
		aw, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		meta := fixtureData().Meta
		if err := aw.writeRecord(TypeMeta, meta); err != nil {
			t.Fatal(err)
		}
		if err := aw.writeRecord(TypeVP, VPRecord{Index: 0, Addr: addr("172.16.0.1"), Traces: traceCount}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < actualTraces; i++ {
			tr := &probe.Trace{VP: addr("172.16.0.1"), Dst: addr("100.1.0.1")}
			if err := aw.writeRecord(TypeTrace, TraceRecord{VPIndex: 0, Trace: tr}); err != nil {
				t.Fatal(err)
			}
		}
		if err := aw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// A multi-gigabyte claim: decoding must succeed without honoring it.
	d, err := ReadData(bytes.NewReader(build(1<<30, 2)))
	if err != nil {
		t.Fatalf("forged huge count rejected the stream: %v", err)
	}
	if got := cap(d.PerVP[0]); got > maxTracePrealloc {
		t.Errorf("preallocated cap %d from forged header, want <= %d", got, maxTracePrealloc)
	}
	if len(d.PerVP[0]) != 2 {
		t.Errorf("decoded %d traces, want 2", len(d.PerVP[0]))
	}

	// A negative claim: make([]T, 0, n<0) would panic; the clamp must not.
	d, err = ReadData(bytes.NewReader(build(-7, 1)))
	if err != nil {
		t.Fatalf("forged negative count rejected the stream: %v", err)
	}
	if len(d.PerVP[0]) != 1 {
		t.Errorf("decoded %d traces, want 1", len(d.PerVP[0]))
	}

	// An honest count beyond the clamp: everything still decodes.
	d, err = ReadData(bytes.NewReader(build(maxTracePrealloc+50, maxTracePrealloc+50)))
	if err != nil {
		t.Fatalf("over-clamp honest stream rejected: %v", err)
	}
	if len(d.PerVP[0]) != maxTracePrealloc+50 {
		t.Errorf("decoded %d traces, want %d", len(d.PerVP[0]), maxTracePrealloc+50)
	}
}
