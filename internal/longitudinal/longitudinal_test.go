package longitudinal

import "testing"

func TestGenerateSeriesBounds(t *testing.T) {
	samples := Generate(CAIDA, 500, 1)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	first, last := samples[0], samples[len(samples)-1]
	if first.Year != 2015 || first.Quarter != 4 {
		t.Errorf("first sample = %s", first.Date())
	}
	if last.Year != 2025 || last.Quarter != 1 {
		t.Errorf("last sample = %s", last.Date())
	}
	// Dec 2015 + 4 quarters × 9 years + Mar 2025 = 38 samples.
	if len(samples) != 38 {
		t.Errorf("samples = %d, want 38", len(samples))
	}
	for _, s := range samples {
		if len(s.Depths) != 500 {
			t.Fatalf("%s has %d traces", s.Date(), len(s.Depths))
		}
		for _, d := range s.Depths {
			if d < 1 || d > 5 {
				t.Fatalf("depth %d out of range", d)
			}
		}
	}
}

func TestTrendUpwardAndPlatformGap(t *testing.T) {
	const n = 4000
	caida := Measure(Generate(CAIDA, n, 7))
	ripe := Measure(Generate(RIPEAtlas, n, 7))
	deep := func(d Distribution) float64 { return d.Depth2 + d.Depth3 }

	// Rising trend: last-year average well above first-year average.
	avg := func(ds []Distribution, lo, hi int) float64 {
		s := 0.0
		for _, d := range ds[lo:hi] {
			s += deep(d)
		}
		return s / float64(hi-lo)
	}
	if early, late := avg(caida, 0, 4), avg(caida, len(caida)-4, len(caida)); late <= early {
		t.Errorf("CAIDA deep share did not rise: %.3f -> %.3f", early, late)
	}
	// End-of-series levels: ~20% CAIDA, ~10% RIPE.
	cLate := avg(caida, len(caida)-4, len(caida))
	rLate := avg(ripe, len(ripe)-4, len(ripe))
	if cLate < 0.15 || cLate > 0.25 {
		t.Errorf("CAIDA 2025 deep share = %.3f, want ≈0.20", cLate)
	}
	if rLate < 0.06 || rLate > 0.14 {
		t.Errorf("RIPE 2025 deep share = %.3f, want ≈0.10", rLate)
	}
	if cLate <= rLate {
		t.Error("CAIDA should observe more deep stacks than RIPE")
	}
}

func TestMeasureSumsToOne(t *testing.T) {
	for _, d := range Measure(Generate(RIPEAtlas, 300, 3)) {
		sum := d.Depth1 + d.Depth2 + d.Depth3
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: distribution sums to %f", d.Date, sum)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(CAIDA, 100, 5)
	b := Generate(CAIDA, 100, 5)
	for i := range a {
		for j := range a[i].Depths {
			if a[i].Depths[j] != b[i].Depths[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestPlatformString(t *testing.T) {
	if CAIDA.String() != "caida-ark" || RIPEAtlas.String() != "ripe-atlas" {
		t.Error("platform names wrong")
	}
}
