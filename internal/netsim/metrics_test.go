package netsim

import (
	"testing"

	"arest/internal/obs"
	"arest/internal/pkt"
)

// TestInstrumentCountsForwardingAndReplies sends a TTL-expiring probe and a
// delivered probe through an instrumented chain and checks the per-reason
// accounting.
func TestInstrumentCountsForwardingAndReplies(t *testing.T) {
	c := buildChain(t)
	reg := obs.New()
	c.net.Instrument(reg)

	// TTL 2 expires at pe1 → one time-exceeded.
	if _, err := c.net.Send(c.vp, udpProbe(c.vp, c.target, 2, 33434)); err != nil {
		t.Fatal(err)
	}
	// Full-TTL probe reaches the target host → port unreachable from host.
	if _, err := c.net.Send(c.vp, udpProbe(c.vp, c.target, 30, 33434)); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["netsim.ttl_expired"] != 1 {
		t.Errorf("ttl_expired = %d, want 1", s.Counters["netsim.ttl_expired"])
	}
	if s.Counters["netsim.icmp.time_exceeded"] != 1 {
		t.Errorf("time_exceeded = %d, want 1", s.Counters["netsim.icmp.time_exceeded"])
	}
	if s.Counters["netsim.host_replies"] != 1 {
		t.Errorf("host_replies = %d, want 1", s.Counters["netsim.host_replies"])
	}
	if s.Counters["netsim.forwarded"] == 0 {
		t.Errorf("forwarded = 0, want > 0")
	}
}

// TestInstrumentCountsDropsByReason checks the no-route and rate-limit
// reasons.
func TestInstrumentCountsDropsByReason(t *testing.T) {
	c := buildChain(t)
	reg := obs.New()
	c.net.Instrument(reg)

	// Unrouted destination.
	if _, err := c.net.Send(c.vp, udpProbe(c.vp, a("203.0.113.7"), 8, 33434)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["netsim.drop.no_route"]; got != 1 {
		t.Errorf("drop.no_route = %d, want 1", got)
	}

	// Force rate limiting: loss probability 1 on every router, probe
	// expiring mid-path.
	for _, r := range c.net.Routers() {
		r.Profile.ICMPLossProb = 1
	}
	if _, err := c.net.Send(c.vp, udpProbe(c.vp, c.target, 2, 33434)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["netsim.drop.rate_limit"]; got != 1 {
		t.Errorf("drop.rate_limit = %d, want 1", got)
	}
}

// TestSelfLoopingFIBEntryAnswersEveryTTL installs a self-looping FIB entry
// (micro-loop fault injection) and checks that every TTL beyond the loop
// point expires at the SAME router — the period-1 loop signature the
// tracer's consecutive-responder halt must catch.
func TestSelfLoopingFIBEntryAnswersEveryTTL(t *testing.T) {
	// Plain-IP chain: the override hooks the IP forwarding decision, so the
	// looping router must not label-push the packet first.
	c := buildChain(t, withMode(ModeIP), withPlanes(false, false))
	owner, ok := c.net.Owner(c.target)
	if !ok {
		t.Fatal("target has no owner")
	}
	// pe1 (hop 2 from the VP) forwards the target's traffic to itself.
	c.net.SetNextHopOverride(c.pe1.ID, owner, c.pe1.ID)

	// TTL 2 expires on arrival at pe1, before its forwarding decision; the
	// loop answers from TTL 3 on.
	var addrs []string
	for ttl := uint8(3); ttl <= 7; ttl++ {
		d, err := c.net.Send(c.vp, udpProbe(c.vp, c.target, ttl, 33434))
		if err != nil {
			t.Fatal(err)
		}
		if d.Reply == nil {
			t.Fatalf("ttl %d: no reply", ttl)
		}
		ip, err := pkt.UnmarshalIPv4(d.Reply)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ip.Src.String())
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[0] {
			t.Fatalf("loop replies not from one router: %v", addrs)
		}
	}

	// Clearing the override restores normal delivery.
	c.net.ClearNextHopOverrides()
	d, err := c.net.Send(c.vp, udpProbe(c.vp, c.target, 30, 33434))
	if err != nil || d.Reply == nil {
		t.Fatalf("after clear: delivery failed (err=%v)", err)
	}
}
