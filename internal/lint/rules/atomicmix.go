package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"arest/internal/lint"
)

// AtomicMix builds the atomicmix analyzer: under the concurrency model of
// DESIGN.md §7, a word that is touched through the old-style sync/atomic
// functions (atomic.AddUint64(&x, 1)) is owned by the atomic protocol —
// a plain read or write of the same variable elsewhere in the package is
// a data race the race detector only catches when the schedule cooperates.
// The analyzer collects every variable and field whose address reaches an
// atomic.Add*/Load*/Store*/Swap*/CompareAndSwap* call, then flags every
// other (non-atomic) access to those objects in the package.
//
// When the address taken is an element (&xs[i]), the atomic protocol owns
// the elements, not the slice header: plain element reads (xs[i], or
// ranging with a value variable) are flagged, while len(xs), index-only
// ranges, and reslicing stay legal.
//
// The new-style wrapper types (atomic.Uint64 and friends) need no check
// here: they have no plain-access API, and copying them is nolockcopy's
// department.
func AtomicMix() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "atomicmix",
		Doc:  "forbid mixing sync/atomic access with plain access to the same variable",
		Run:  runAtomicMix,
	}
}

// atomicOp reports whether name is one of the address-taking sync/atomic
// functions.
func atomicOp(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// atomicUse records how one object entered the atomic protocol.
type atomicUse struct {
	first   token.Position
	indexed bool // address taken of an element (&xs[i]), not the whole variable
}

func runAtomicMix(pass *lint.Pass) error {
	// Pass 1: objects whose address is passed to sync/atomic, and the
	// identifier nodes sanctioned by appearing inside those calls.
	atomicObjs := map[types.Object]*atomicUse{}
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pass.CalleeIn(call)
			if !ok || pkg != "sync/atomic" || !atomicOp(name) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true // address held in a pointer: out of structural reach
			}
			id, indexed := accessIdent(ue.X)
			if id == nil {
				return true
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				return true
			}
			if _, seen := atomicObjs[obj]; !seen {
				atomicObjs[obj] = &atomicUse{first: pass.Fset.Position(call.Pos()), indexed: indexed}
			}
			// Sanction every identifier inside this call's argument list
			// (the &x operand and any index expressions around it).
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if mid, ok := m.(*ast.Ident); ok {
						sanctioned[mid] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	lookup := func(e ast.Expr) (*ast.Ident, *atomicUse) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || sanctioned[id] {
			return nil, nil
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return nil, nil
		}
		return id, atomicObjs[obj]
	}

	// Pass 2: every other access to those objects is a mixed access. For
	// element-atomic objects only element extraction counts.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if id, use := lookup(n); use != nil && !use.indexed {
					pass.Report(id.Pos(),
						"%s is accessed with sync/atomic at %s but plainly here: racy mixed access (DESIGN.md §7)", id.Name, shortPos(use.first))
				}
			case *ast.IndexExpr:
				if id, use := lookup(n.X); use != nil && use.indexed {
					pass.Report(n.Pos(),
						"elements of %s are accessed with sync/atomic at %s but plainly here: racy mixed access (DESIGN.md §7)", id.Name, shortPos(use.first))
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true // index-only range reads no elements
				}
				if id, use := lookup(n.X); use != nil && use.indexed {
					pass.Report(n.X.Pos(),
						"ranging over %s copies elements accessed with sync/atomic at %s: racy mixed access (DESIGN.md §7)", id.Name, shortPos(use.first))
				}
			}
			return true
		})
	}
	return nil
}

// accessIdent resolves the operand of &x to the identifier naming the
// variable or field being made atomic: x, s.f, a[i], s.f[i] all bottom out
// in the field/variable identifier. indexed reports whether the address
// was of an element rather than the variable itself.
func accessIdent(e ast.Expr) (id *ast.Ident, indexed bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, indexed
		case *ast.SelectorExpr:
			return x.Sel, indexed
		case *ast.IndexExpr:
			e = x.X
			indexed = true
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// shortPos trims the position to file base name plus line for messages.
func shortPos(p token.Position) string {
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return file + ":" + strconv.Itoa(p.Line)
}
