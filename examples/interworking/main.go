// Interworking: an AS where Segment Routing is deployed incrementally — an
// SR core interconnecting a legacy LDP island, joined by a dual-plane
// border router and a mapping server (RFC 8661). Traces through the domain
// show the SR→LDP label handover, and AReST classifies the hybrid tunnel.
package main

import (
	"context"
	"fmt"
	"net/netip"

	"arest/internal/core"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

func main() {
	for _, srms := range []bool{true, false} {
		fmt.Printf("==== mapping server enabled: %v ====\n\n", srms)
		run(srms)
	}
}

func run(mappingServer bool) {
	n := netsim.New(7)
	n.MappingServer = mappingServer
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	prof.SNMPOpen = true

	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 64999,
		Vendor: mpls.VendorLinux, Profile: netsim.DefaultProfile(mpls.VendorLinux)})
	sr := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 65020,
			Vendor: mpls.VendorCisco, Profile: prof, SREnabled: true, Mode: netsim.ModeSR})
	}
	ldp := func(name string) *netsim.Router {
		return n.AddRouter(netsim.RouterConfig{Name: name, ASN: 65020,
			Vendor: mpls.VendorCisco, Profile: prof, LDPEnabled: true, Mode: netsim.ModeLDP})
	}
	pe1 := sr("pe1")
	s1 := sr("s1")
	s2 := sr("s2")
	border := n.AddRouter(netsim.RouterConfig{Name: "border", ASN: 65020,
		Vendor: mpls.VendorCisco, Profile: prof,
		SREnabled: true, LDPEnabled: true, Mode: netsim.ModeSR})
	l1 := ldp("l1")
	l2 := ldp("l2")
	pe2 := ldp("pe2")

	n.Connect(gw.ID, pe1.ID, 10)
	n.Connect(pe1.ID, s1.ID, 10)
	n.Connect(s1.ID, s2.ID, 10)
	n.Connect(s2.ID, border.ID, 10)
	n.Connect(border.ID, l1.ID, 10)
	n.Connect(l1.ID, l2.ID, 10)
	n.Connect(l2.ID, pe2.ID, 10)

	vp := netip.MustParseAddr("172.16.1.10")
	target := netip.MustParseAddr("100.64.1.20") // behind the LDP island
	n.AddHost(vp, gw.ID)
	n.AddHost(target, pe2.ID)
	n.Compute()

	tracer := probe.NewTracer(probe.NetsimConn{Net: n}, vp)
	trace, err := tracer.Trace(context.Background(), target, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(trace)

	ann := fingerprint.NewAnnotator(fingerprint.SNMPDataset(n), nil)
	res := core.NewDetector().Analyze(core.BuildPath(trace, ann, nil))
	for _, tun := range res.Tunnels() {
		fmt.Printf("tunnel pattern: %-10s clouds:", tun.Pattern)
		for _, cl := range tun.Clouds {
			fmt.Printf(" %s×%d", cl.Kind, cl.Len)
		}
		fmt.Println()
	}
	for _, seg := range res.Segments {
		fmt.Printf("segment %-4s label=%d hops=%d\n", seg.Flag, seg.Label, seg.Len())
	}
	if mappingServer {
		fmt.Printf("\nWith the SRMS, the SR region labels traffic toward the LDP-only\n"+
			"egress %s: the border swaps the SR label for %s's LDP binding\n"+
			"(RFC 8661 SR→LDP interworking).\n\n", pe2.Name, l1.Name)
	} else {
		fmt.Printf("\nWithout a mapping server the LDP-only egress has no prefix SID, so\n" +
			"the SR region falls back to plain IP and only the LDP island labels\n" +
			"its part of the path.\n\n")
	}
}
