package netsim

import (
	"container/heap"
	"sort"
)

// computeSPF runs Dijkstra from every router, recording IGP distances and
// the set of equal-cost first hops toward every destination. ECMP next hops
// are kept sorted so that flow-hash selection is deterministic. The results
// are dense slices indexed by RouterID (IDs are contiguous from 0): the
// forwarding fast path does two bounds-checked loads instead of two map
// probes per hop, and the read-only slices are safe to share across
// concurrent Sends.
func (n *Network) computeSPF() {
	nr := len(n.routers)
	n.nexthops = make([][][]RouterID, nr)
	n.dist = make([][]int, nr)
	for _, r := range n.routers {
		dist, first := n.dijkstra(r.ID)
		n.dist[r.ID] = dist
		n.nexthops[r.ID] = first
	}
}

type pqItem struct {
	id   RouterID
	cost int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	return q[i].cost < q[j].cost || (q[i].cost == q[j].cost && q[i].id < q[j].id)
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// dijkstra returns the cost slice from src and, per destination, the ECMP
// set of first-hop router IDs on shortest paths; both are indexed by
// RouterID, with dist -1 for unreachable destinations.
func (n *Network) dijkstra(src RouterID) ([]int, [][]RouterID) {
	const inf = int(^uint(0) >> 2)
	nr := len(n.routers)
	cost := make([]int, nr)
	firstSet := make([]map[RouterID]bool, nr)
	for i := range cost {
		cost[i] = inf
	}
	cost[src] = 0
	q := &pq{{src, 0}}
	done := make([]bool, nr)
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.id] {
			continue
		}
		done[it.id] = true
		for _, nb := range n.adj[it.id] {
			if n.linkDown(it.id, nb.id) {
				continue
			}
			c := it.cost + nb.weight
			switch {
			case c < cost[nb.id]:
				cost[nb.id] = c
				fs := make(map[RouterID]bool)
				if it.id == src {
					fs[nb.id] = true
				} else {
					for f := range firstSet[it.id] {
						fs[f] = true
					}
				}
				firstSet[nb.id] = fs
				heap.Push(q, pqItem{nb.id, c})
			case c == cost[nb.id] && c < inf:
				fs := firstSet[nb.id]
				if fs == nil {
					fs = make(map[RouterID]bool)
					firstSet[nb.id] = fs
				}
				if it.id == src {
					fs[nb.id] = true
				} else {
					for f := range firstSet[it.id] {
						fs[f] = true
					}
				}
			}
		}
	}
	dist := make([]int, nr)
	first := make([][]RouterID, nr)
	for _, r := range n.routers {
		if cost[r.ID] >= inf {
			dist[r.ID] = -1
			continue
		}
		dist[r.ID] = cost[r.ID]
		if r.ID == src {
			continue
		}
		fs := make([]RouterID, 0, len(firstSet[r.ID]))
		for f := range firstSet[r.ID] {
			fs = append(fs, f)
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
		first[r.ID] = fs
	}
	return dist, first
}

// NextHop picks the next hop from src toward dst for a given flow hash,
// selecting deterministically among ECMP candidates. ok is false when dst
// is unreachable.
func (n *Network) NextHop(src, dst RouterID, flow uint64) (RouterID, bool) {
	hops := n.nexthops[src][dst]
	if len(hops) == 0 {
		return 0, false
	}
	// Mix the router ID in so different routers spread flows differently,
	// as per-router ECMP hashing does.
	h := flow*0x9e3779b97f4a7c15 + uint64(src)*0x85ebca6b
	h ^= h >> 33
	return hops[h%uint64(len(hops))], true
}

// pathKey identifies one memoized PathLen walk.
type pathKey struct {
	src, dst RouterID
	flow     uint64
}

// PathLen returns the number of router hops on the flow's path from src to
// dst (0 when src == dst, -1 when unreachable). Results are memoized per
// (src, dst, flow) until the next Compute; every probe of a sweep replays
// the same return path, so the hop-by-hop walk runs once per flow.
func (n *Network) PathLen(src, dst RouterID, flow uint64) int {
	if src == dst {
		return 0
	}
	cache := n.pathCache
	k := pathKey{src, dst, flow}
	if cache != nil {
		if v, ok := cache.Load(k); ok {
			return v.(int)
		}
	}
	hops := 0
	cur := src
	for cur != dst {
		nxt, ok := n.NextHop(cur, dst, flow)
		if !ok {
			hops = -1
			break
		}
		cur = nxt
		hops++
		if hops > len(n.routers) {
			hops = -1
			break
		}
	}
	if cache != nil {
		cache.Store(k, hops)
	}
	return hops
}
