package mpls

import (
	"fmt"
	"math/rand"
)

// Pool is a per-router dynamic label allocator. Classic MPLS/LDP label
// bindings have purely local significance: each router independently draws
// labels for the FECs it handles from its own pool, so two adjacent routers
// assigning the same label to the same FEC is a ~1/N coincidence (Sec. 4.1).
//
// Allocation is pseudo-random within the pool range but deterministic for a
// given seed, so campaigns are reproducible and false-positive probabilities
// can be measured.
type Pool struct {
	rng   *rand.Rand
	rng2  LabelRange
	used  map[uint32]bool
	bound map[string]uint32 // FEC key -> label
}

// NewPool creates a dynamic label pool over r, seeded deterministically.
func NewPool(r LabelRange, seed int64) *Pool {
	return &Pool{
		rng:   rand.New(rand.NewSource(seed)),
		rng2:  r,
		used:  make(map[uint32]bool),
		bound: make(map[string]uint32),
	}
}

// Range returns the pool's label range.
func (p *Pool) Range() LabelRange { return p.rng2 }

// Allocate binds a fresh label to the FEC key and returns it. Repeated
// calls with the same key return the same label (per-FEC binding, as LDP
// does). Allocate panics only if the pool is fully exhausted, which cannot
// happen for realistic pool sizes.
func (p *Pool) Allocate(fec string) uint32 {
	if l, ok := p.bound[fec]; ok {
		return l
	}
	size := p.rng2.Size()
	if uint32(len(p.used)) >= size {
		panic(fmt.Sprintf("mpls: label pool %v exhausted", p.rng2))
	}
	for {
		l := p.rng2.Lo + uint32(p.rng.Int63n(int64(size)))
		if !p.used[l] {
			p.used[l] = true
			p.bound[fec] = l
			return l
		}
	}
}

// Lookup returns the label bound to the FEC, if any.
func (p *Pool) Lookup(fec string) (uint32, bool) {
	l, ok := p.bound[fec]
	return l, ok
}

// Allocated returns the number of labels currently bound.
func (p *Pool) Allocated() int { return len(p.used) }
