package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestPkg materializes a one-file package in a temp dir and returns
// the dir. The loader under test is rooted at the real module so stdlib
// imports resolve; the package itself may live anywhere.
func writeTestPkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func testLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// flagIdents is a toy analyzer that reports every identifier named "bad".
func flagIdents() *Analyzer {
	return &Analyzer{
		Name: "flagbad",
		Doc:  "test analyzer: flags identifiers named bad",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && id.Name == "bad" {
						pass.Report(id.Pos(), "identifier %q is flagged", id.Name)
					}
					return true
				})
			}
			return nil
		},
	}
}

func runOn(t *testing.T, src string, r *Runner) []Diagnostic {
	t.Helper()
	dir := writeTestPkg(t, src)
	l := testLoader(t)
	pkg, err := l.LoadDir(dir, "linttest/p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := r.Run([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestRunnerReportsAndSorts(t *testing.T) {
	diags := runOn(t, "package p\n\nvar bad = 1\n\nfunc f() { bad++; _ = bad }\n",
		&Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Line > b.Line || (a.Line == b.Line && a.Column > b.Column) {
			t.Errorf("diagnostics out of order: %v before %v", diags[i-1], diags[i])
		}
	}
}

func TestAllowSuppresses(t *testing.T) {
	diags := runOn(t, `package p

//arest:allow flagbad the identifier is load-bearing in this fixture

var bad = 1
`, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 0 {
		t.Fatalf("allow directive did not suppress: %v", diags)
	}
}

func TestAllowMissingReason(t *testing.T) {
	diags := runOn(t, `package p

//arest:allow flagbad

var bad = 1
`, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	var hasReasonErr, hasFinding bool
	for _, d := range diags {
		if d.Analyzer == DirectiveAnalyzerName && strings.Contains(d.Message, "missing its written reason") {
			hasReasonErr = true
		}
		if d.Analyzer == "flagbad" {
			hasFinding = true
		}
	}
	if !hasReasonErr {
		t.Errorf("reason-less directive not reported: %v", diags)
	}
	if !hasFinding {
		t.Errorf("malformed directive must not suppress; diagnostics: %v", diags)
	}
}

func TestAllowUnknownAnalyzer(t *testing.T) {
	diags := runOn(t, `package p

//arest:allow nosuchcheck because reasons
`, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown analyzer "nosuchcheck"`) {
		t.Fatalf("unknown-analyzer directive not reported: %v", diags)
	}
}

func TestUnusedAllowReported(t *testing.T) {
	src := `package p

//arest:allow flagbad nothing here actually trips it

var good = 1
`
	diags := runOn(t, src, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused //arest:allow") {
		t.Fatalf("unused allow not reported: %v", diags)
	}
	diags = runOn(t, src, &Runner{Analyzers: []*Analyzer{flagIdents()}, KeepUnusedAllows: true})
	if len(diags) != 0 {
		t.Fatalf("KeepUnusedAllows still reported: %v", diags)
	}
}

// writeTestFiles materializes a multi-file package in a temp dir.
func writeTestFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDuplicateAllowSecondUnused(t *testing.T) {
	// Suppression consumes the first matching directive; a duplicate for
	// the same analyzer in the same file stays unused and is reported,
	// so stale double-suppressions cannot linger silently.
	diags := runOn(t, `package p

//arest:allow flagbad the first directive covers the finding

//arest:allow flagbad the second is redundant

var bad = 1
`, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused //arest:allow") {
		t.Fatalf("duplicate allow not reported as unused: %v", diags)
	}
	if diags[0].Pos.Line != 5 {
		t.Errorf("unused report should name the second directive (line 5), got line %d", diags[0].Pos.Line)
	}
}

func TestDirectiveAsLastLine(t *testing.T) {
	// A directive on the file's final line — with no trailing newline —
	// must still parse and suppress.
	src := "package p\n\nvar bad = 1\n\n//arest:allow flagbad final line carries the suppression"
	diags := runOn(t, src, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 0 {
		t.Fatalf("last-line directive did not suppress: %v", diags)
	}
}

func TestDirectiveCRLF(t *testing.T) {
	// CRLF sources leave a trailing \r on line comments; the directive
	// grammar must treat it as whitespace, not as part of the reason.
	src := "package p\r\n\r\n//arest:allow flagbad crlf fixture keeps its reason\r\n\r\nvar bad = 1\r\n"
	diags := runOn(t, src, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 0 {
		t.Fatalf("CRLF directive did not suppress: %v", diags)
	}
}

func TestUnknownDirectiveVerb(t *testing.T) {
	// A typo'd verb must fail the build, not silently check nothing.
	diags := runOn(t, `package p

//arest:alow flagbad oops
`, &Runner{Analyzers: []*Analyzer{flagIdents()}})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown directive //arest:alow") {
		t.Fatalf("unknown verb not reported: %v", diags)
	}
}

func TestIncludeSuppressed(t *testing.T) {
	src := `package p

//arest:allow flagbad fixture identifier is intentional

var bad = 1
`
	diags := runOn(t, src, &Runner{Analyzers: []*Analyzer{flagIdents()}, IncludeSuppressed: true})
	if len(diags) != 1 {
		t.Fatalf("expected the suppressed finding back, got: %v", diags)
	}
	d := diags[0]
	if d.SuppressedBy == "" || !strings.Contains(d.SuppressedBy, "fixture identifier is intentional") {
		t.Errorf("SuppressedBy should carry the directive's reason, got %q", d.SuppressedBy)
	}
	if !strings.Contains(d.String(), "suppressed by") {
		t.Errorf("String() should mark suppression: %s", d.String())
	}
}

// TestTestsModeWidensLinting pins the -tests loader behavior: a finding
// living in a _test.go file is invisible to a plain load and reported
// under IncludeTests, and an //arest:allow in that test file both
// suppresses it and participates in unused-allow accounting.
func TestTestsModeWidensLinting(t *testing.T) {
	run := func(files map[string]string, withTests bool) []Diagnostic {
		t.Helper()
		dir := writeTestFiles(t, files)
		l := testLoader(t)
		l.IncludeTests = withTests
		pkg, err := l.LoadDir(dir, "linttest/tm")
		if err != nil {
			t.Fatal(err)
		}
		diags, err := (&Runner{Analyzers: []*Analyzer{flagIdents()}}).Run([]*Package{pkg})
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}

	finding := map[string]string{
		"p.go":      "package p\n\nvar good = 1\n",
		"p_test.go": "package p\n\nvar bad = 2\n",
	}
	if diags := run(finding, false); len(diags) != 0 {
		t.Errorf("plain load saw the test file: %v", diags)
	}
	diags := run(finding, true)
	if len(diags) != 1 || !strings.HasSuffix(diags[0].Pos.Filename, "p_test.go") {
		t.Errorf("-tests load missed the test-file finding: %v", diags)
	}

	allowed := map[string]string{
		"p.go":      "package p\n\nvar good = 1\n",
		"p_test.go": "package p\n\n//arest:allow flagbad fixture name is intentional\n\nvar bad = 2\n",
	}
	if diags := run(allowed, true); len(diags) != 0 {
		t.Errorf("test-file allow did not suppress under -tests: %v", diags)
	}

	unused := map[string]string{
		"p.go":      "package p\n\nvar good = 1\n",
		"p_test.go": "package p\n\n//arest:allow flagbad nothing trips it here\n",
	}
	if diags := run(unused, false); len(diags) != 0 {
		t.Errorf("plain load should never see test-file directives: %v", diags)
	}
	diags = run(unused, true)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused //arest:allow") {
		t.Errorf("-tests load missed the unused test-file allow: %v", diags)
	}
}

// TestLoadXTestPackage exercises the external-test loader: the package
// under test resolves from the fixture directory (test-augmented), and
// the foo_test package comes back as its own lintable package.
func TestLoadXTestPackage(t *testing.T) {
	dir := writeTestFiles(t, map[string]string{
		"p.go":      "package p\n\nfunc Answer() int { return 42 }\n",
		"p_test.go": "package p\n\nconst fromInPkgTest = 1\n",
		"p_x_test.go": `package p_test

import "linttest/xt"

var bad = p.Answer()
`,
	})
	l := testLoader(t)
	l.IncludeTests = true
	xpkg, err := l.loadXTest("linttest/xt", dir)
	if err != nil {
		t.Fatal(err)
	}
	if xpkg == nil || xpkg.Path != "linttest/xt_test" {
		t.Fatalf("external test package not loaded: %+v", xpkg)
	}
	diags, err := (&Runner{Analyzers: []*Analyzer{flagIdents()}}).Run([]*Package{xpkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.HasSuffix(diags[0].Pos.Filename, "p_x_test.go") {
		t.Errorf("analyzer did not run over the external test package: %v", diags)
	}
	if nox, err := l.loadXTest("linttest/nox", writeTestPkg(t, "package q\n")); err != nil || nox != nil {
		t.Errorf("directory without external tests should load as nil, got %v, %v", nox, err)
	}
}

// TestAnnotationValidationReported pins the framework-level validation of
// the //arest:mergeable / hotpath / coldpath grammar: every malformed
// placement is a build-failing diagnostic regardless of which analyzers
// run.
func TestAnnotationValidationReported(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"mergeable on function",
			"package p\n\n//arest:mergeable\nfunc F() {}\n",
			"marks struct types, not functions"},
		{"mergeable on non-struct",
			"package p\n\n//arest:mergeable\ntype T int\n",
			"only struct types can be mergeable"},
		{"mergeable on grouped declaration",
			"package p\n\n//arest:mergeable\ntype (\n\tA struct{ N int }\n\tB struct{ M int }\n)\n",
			"grouped declaration is ambiguous"},
		{"bare hotpath outside function doc",
			"package p\n\n//arest:hotpath\n\nvar x = 1\n",
			"must sit in a function's doc comment"},
		{"hotpath unknown scope",
			"package p\n\n//arest:hotpath galaxy\nfunc F() {}\n",
			"scope must be empty (this function), 'file', or 'package'"},
		{"coldpath missing reason",
			"package p\n\n//arest:hotpath file\n\n//arest:coldpath\nfunc F() {}\n",
			"missing its written reason"},
		{"coldpath outside hot scope",
			"package p\n\n//arest:coldpath formatting helper\nfunc F() {}\n",
			"excuses nothing"},
		{"coldpath outside function doc",
			"package p\n\n//arest:coldpath reason\n\nvar x = 1\n",
			"//arest:coldpath must sit in a function's doc comment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := runOn(t, tc.src, &Runner{Analyzers: []*Analyzer{flagIdents()}})
			for _, d := range diags {
				if d.Analyzer == DirectiveAnalyzerName && strings.Contains(d.Message, tc.want) {
					return
				}
			}
			t.Errorf("no directive diagnostic containing %q; got: %v", tc.want, diags)
		})
	}
}

func TestLoadAllCoversModule(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{
		"arest/internal/netsim",
		"arest/internal/obs",
		"arest/internal/lint",
		"arest/cmd/arestlint",
	} {
		if !seen[want] {
			t.Errorf("LoadAll missed %s (got %d packages)", want, len(pkgs))
		}
	}
	for p := range seen {
		if strings.Contains(p, "testdata") {
			t.Errorf("LoadAll descended into testdata: %s", p)
		}
	}
}

// fakeTB records harness failures so the want harness can be tested
// against intentionally wrong expectations.
type fakeTB struct {
	errors []string
	fatal  bool
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.fatal = true
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
	panic(f)
}

func TestWantHarnessMatches(t *testing.T) {
	dir := writeTestPkg(t, `package p

var bad = 1 // want "identifier \"bad\" is flagged"
var good = 2
`)
	l := testLoader(t)
	RunWantTest(t, l, dir, "linttest/want", flagIdents())
}

func TestWantHarnessCatchesMismatch(t *testing.T) {
	dir := writeTestPkg(t, `package p

var bad = 1
var good = 2 // want "never reported"
`)
	l := testLoader(t)
	ft := &fakeTB{}
	func() {
		defer func() { recover() }()
		RunWantTest(ft, l, dir, "linttest/mismatch", flagIdents())
	}()
	var unexpected, unmet bool
	for _, e := range ft.errors {
		if strings.Contains(e, "unexpected finding") {
			unexpected = true
		}
		if strings.Contains(e, "no finding matched") {
			unmet = true
		}
	}
	if !unexpected || !unmet {
		t.Fatalf("want harness missed mismatches: %v", ft.errors)
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("FindModuleRoot returned %s without go.mod: %v", root, err)
	}
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("FindModuleRoot succeeded outside any module")
	}
}

func TestSortAndDedupe(t *testing.T) {
	pos := func(file string, line int) token.Position {
		return token.Position{Filename: file, Line: line, Column: 1}
	}
	in := []Diagnostic{
		{Analyzer: "a", Pos: pos("b.go", 2), Message: "m"},
		{Analyzer: "a", Pos: pos("a.go", 9), Message: "m"},
		{Analyzer: "a", Pos: pos("b.go", 2), Message: "m"},
	}
	SortDiagnostics(in)
	out := dedupe(in)
	if len(out) != 2 || out[0].Pos.Filename != "a.go" || out[1].Pos.Filename != "b.go" {
		t.Fatalf("sort+dedupe wrong: %v", out)
	}
}
