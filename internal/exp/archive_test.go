package exp

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"arest/internal/archive"
	"arest/internal/asgen"
)

func testRecords(t *testing.T, ids ...int) []asgen.Record {
	t.Helper()
	var recs []asgen.Record
	for _, id := range ids {
		r, ok := asgen.ByID(id)
		if !ok {
			t.Fatalf("record %d missing", id)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestArchiveRoundtripEquivalence is the acceptance test of the staged
// pipeline: for each AS, detection over the live in-memory measurement
// must deep-equal detection over the measurement written to an archive and
// read back — at every worker count — and the rendered tables and figures
// must be byte-identical between the two campaigns.
func TestArchiveRoundtripEquivalence(t *testing.T) {
	recs := testRecords(t, 2, 15, 40)
	for _, workers := range []int{1, 8} {
		cfg := testCfg()
		cfg.Workers = workers

		live := &Campaign{Cfg: cfg}
		replayed := &Campaign{Cfg: cfg}
		for _, rec := range recs {
			data, err := MeasureAS(context.Background(), rec, cfg)
			if err != nil {
				t.Fatalf("workers=%d AS#%d: measure: %v", workers, rec.ID, err)
			}

			var buf bytes.Buffer
			if err := archive.WriteData(&buf, data); err != nil {
				t.Fatalf("workers=%d AS#%d: write: %v", workers, rec.ID, err)
			}
			decoded, err := archive.ReadData(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("workers=%d AS#%d: read: %v", workers, rec.ID, err)
			}
			if !reflect.DeepEqual(decoded, data) {
				t.Fatalf("workers=%d AS#%d: archive.Data did not roundtrip", workers, rec.ID)
			}

			liveRes, err := Detect(context.Background(), data, cfg)
			if err != nil {
				t.Fatalf("workers=%d AS#%d: detect live: %v", workers, rec.ID, err)
			}
			replayRes, err := Detect(context.Background(), decoded, cfg)
			if err != nil {
				t.Fatalf("workers=%d AS#%d: detect replay: %v", workers, rec.ID, err)
			}
			if !reflect.DeepEqual(liveRes, replayRes) {
				t.Errorf("workers=%d AS#%d: live and replayed results diverged", workers, rec.ID)
			}
			live.ASes = append(live.ASes, liveRes)
			replayed.ASes = append(replayed.ASes, replayRes)
		}

		// Every table and figure of the paper must render byte-identically
		// from the replayed campaign.
		for _, e := range All {
			a, b := e.Run(context.Background(), live), e.Run(context.Background(), replayed)
			if a != b {
				t.Errorf("workers=%d: experiment %s rendered differently from replayed archives", workers, e.ID)
			}
		}
	}
}

// TestSnapshotResume pins the snapshot/resume contract: a campaign
// interrupted mid-run (complete shards for some ASes, a truncated shard
// for another, nothing for the rest) resumes into exactly the baseline
// output, re-measuring only what is missing or damaged and leaving
// complete shards untouched on disk.
func TestSnapshotResume(t *testing.T) {
	recs := testRecords(t, 2, 15, 40)
	cfg := testCfg()
	cfg.Workers = 4

	baseDir := filepath.Join(t.TempDir(), "base")
	baseline, statuses, err := RunSharded(context.Background(), recs, cfg, baseDir)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != ShardMeasured {
			t.Errorf("fresh run: shard %d status %v, want ShardMeasured", i, s)
		}
	}

	// Simulate an interrupted campaign in a new snapshot dir: AS 2's shard
	// completed, AS 15's writer was cut off mid-stream, AS 40 never started.
	resumeDir := filepath.Join(t.TempDir(), "resume")
	if err := os.MkdirAll(resumeDir, 0o755); err != nil {
		t.Fatal(err)
	}
	copyShard := func(rec asgen.Record, truncate bool) {
		raw, err := os.ReadFile(ShardPath(baseDir, rec))
		if err != nil {
			t.Fatal(err)
		}
		if truncate {
			raw = raw[:len(raw)*2/3]
		}
		if err := os.WriteFile(ShardPath(resumeDir, rec), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyShard(recs[0], false)
	copyShard(recs[1], true)

	completeBefore, err := os.ReadFile(ShardPath(resumeDir, recs[0]))
	if err != nil {
		t.Fatal(err)
	}

	resumed, statuses, err := RunSharded(context.Background(), recs, cfg, resumeDir)
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardStatus{ShardResumed, ShardMeasured, ShardMeasured}
	for i, s := range statuses {
		if s != want[i] {
			t.Errorf("resume: shard %d status %v, want %v", i, s, want[i])
		}
	}

	// The resumed campaign must match the uninterrupted baseline exactly —
	// per-AS results and every rendered experiment.
	if len(resumed.ASes) != len(baseline.ASes) {
		t.Fatalf("AS count diverged: %d vs %d", len(resumed.ASes), len(baseline.ASes))
	}
	for i := range baseline.ASes {
		if !reflect.DeepEqual(resumed.ASes[i], baseline.ASes[i]) {
			t.Errorf("AS#%d: resumed result diverged from baseline", baseline.ASes[i].Record.ID)
		}
	}
	for _, e := range All {
		if a, b := e.Run(context.Background(), baseline), e.Run(context.Background(), resumed); a != b {
			t.Errorf("experiment %s rendered differently after resume", e.ID)
		}
	}

	// The complete shard was replayed, not rewritten.
	completeAfter, err := os.ReadFile(ShardPath(resumeDir, recs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(completeBefore, completeAfter) {
		t.Error("complete shard was rewritten on resume")
	}
	// The truncated shard was replaced by a complete one, byte-identical to
	// the baseline's (measurement is deterministic).
	fixed, err := os.ReadFile(ShardPath(resumeDir, recs[1]))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(ShardPath(baseDir, recs[1]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, orig) {
		t.Error("re-measured shard diverged from baseline shard bytes")
	}

	// A second resume over the now-complete dir replays everything.
	again, statuses, err := RunSharded(context.Background(), recs, cfg, resumeDir)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != ShardResumed {
			t.Errorf("second resume: shard %d status %v, want ShardResumed", i, s)
		}
	}
	for i := range baseline.ASes {
		if !reflect.DeepEqual(again.ASes[i], baseline.ASes[i]) {
			t.Errorf("AS#%d: second resume diverged", baseline.ASes[i].Record.ID)
		}
	}
}

// TestShardPath pins the shard naming scheme (resume depends on it).
func TestShardPath(t *testing.T) {
	rec := asgen.Record{ID: 7}
	if got, want := ShardPath("snap", rec), filepath.Join("snap", "as-007.arest"); got != want {
		t.Errorf("ShardPath = %q, want %q", got, want)
	}
}

// TestRunShardedReportsUnreadableShard ensures a shard failing for a
// non-format reason (here: it is a directory) surfaces as a contained,
// stage-attributed failure rather than a silent re-measure — and no
// longer takes the rest of the campaign down with it.
func TestRunShardedReportsUnreadableShard(t *testing.T) {
	recs := testRecords(t, 2, 15)
	dir := t.TempDir()
	if err := os.MkdirAll(ShardPath(dir, recs[0]), 0o755); err != nil {
		t.Fatal(err)
	}
	c, statuses, err := RunSharded(context.Background(), recs, testCfg(), dir)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if len(c.Failed) != 1 {
		t.Fatalf("Failed = %v, want exactly the directory-shaped shard", c.Failed)
	}
	f := c.Failed[0]
	if f.Record.ID != recs[0].ID {
		t.Errorf("failed AS#%d, want AS#%d", f.Record.ID, recs[0].ID)
	}
	if f.Stage != StageArchive {
		t.Errorf("failure stage %v, want StageArchive", f.Stage)
	}
	if fmt.Sprint(f.Err) == "" {
		t.Error("empty error")
	}
	if statuses[0] != ShardFailed {
		t.Errorf("statuses[0] = %v, want ShardFailed", statuses[0])
	}
	if len(c.ASes) != 1 || c.ASes[0].Record.ID != recs[1].ID {
		t.Errorf("healthy AS did not complete: %v", c.ASes)
	}
}
