package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"arest/internal/lifecycle"
)

// smallArgs keeps CLI lifecycle tests fast: two small ASes, one cheap
// experiment.
func smallArgs(extra ...string) []string {
	base := []string{
		"-as", "2,15",
		"-vps", "3",
		"-targets", "8",
		"-max-routers", "22",
		"-exp", "table5",
	}
	return append(base, extra...)
}

// noHard fails the test if the second-signal abort hook ever fires.
func noHard(t *testing.T) func() {
	return func() { t.Error("hard abort invoked without a second signal") }
}

// TestFirstSignalInterruptsThenResumes is the CLI half of the shutdown
// acceptance test: a signal interrupts the campaign with the distinct
// resumable status, the snapshot directory stays resumable, and re-running
// the identical command completes to output byte-identical to a run that
// was never interrupted.
func TestFirstSignalInterruptsThenResumes(t *testing.T) {
	snapDir := filepath.Join(t.TempDir(), "snap")
	argv := smallArgs("-snapshot", snapDir)

	// Interrupted run: the signal is already queued, so the campaign drains
	// immediately after starting.
	sigs := make(chan os.Signal, 2)
	sigs <- syscall.SIGINT
	var stdout, stderr bytes.Buffer
	if code := run(argv, sigs, noHard(t), &stdout, &stderr); code != lifecycle.ExitInterrupted {
		t.Fatalf("exit = %d, want %d (resumable interrupt)\nstderr: %s", code, lifecycle.ExitInterrupted, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("re-run the same command to resume")) {
		t.Errorf("stderr does not point at the resume path:\n%s", stderr.String())
	}

	// Resume: the same command completes cleanly.
	stdout.Reset()
	stderr.Reset()
	if code := run(argv, nil, noHard(t), &stdout, &stderr); code != lifecycle.ExitOK {
		t.Fatalf("resume exit = %d, want 0\nstderr: %s", code, stderr.String())
	}

	// Baseline: an uninterrupted run in a fresh directory renders the same
	// report and writes bit-identical shards.
	baseDir := filepath.Join(t.TempDir(), "base")
	var baseOut, baseErr bytes.Buffer
	if code := run(smallArgs("-snapshot", baseDir), nil, noHard(t), &baseOut, &baseErr); code != lifecycle.ExitOK {
		t.Fatalf("baseline exit = %d\nstderr: %s", code, baseErr.String())
	}
	if stdout.String() != baseOut.String() {
		t.Error("resumed run rendered different output than an uninterrupted run")
	}
	ents, err := os.ReadDir(baseDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("baseline wrote no shards")
	}
	for _, e := range ents {
		a, err := os.ReadFile(filepath.Join(baseDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(snapDir, e.Name()))
		if err != nil {
			t.Fatalf("resumed dir missing shard %s: %v", e.Name(), err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shard %s differs between baseline and resumed runs", e.Name())
		}
	}
}

// TestDeadlineExitsResumable: -deadline expiry drains like a first signal
// and exits with the resumable status.
func TestDeadlineExitsResumable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(smallArgs("-deadline", "1ns"), nil, noHard(t), &stdout, &stderr)
	if code != lifecycle.ExitInterrupted {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, lifecycle.ExitInterrupted, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("interrupted")) {
		t.Errorf("stderr does not report the interrupt:\n%s", stderr.String())
	}
}

// TestASBudgetQuarantinesEveryAS: the deterministic budget quarantines
// (exit 1 under the default zero failure budget), it does not interrupt.
func TestASBudgetQuarantinesEveryAS(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(smallArgs("-as-budget", "1"), nil, noHard(t), &stdout, &stderr)
	if code != lifecycle.ExitFailure {
		t.Fatalf("exit = %d, want 1 (quarantine, not interrupt)\nstderr: %s", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("plan demands")) {
		t.Errorf("stderr does not carry the budget verdict:\n%s", stderr.String())
	}
}

// TestBadFlagExitsFailure: flag errors are plain failures, not interrupts.
func TestBadFlagExitsFailure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, nil, noHard(t), &stdout, &stderr); code != lifecycle.ExitFailure {
		t.Fatalf("exit = %d, want 1", code)
	}
}
