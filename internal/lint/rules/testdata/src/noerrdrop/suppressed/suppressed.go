// Package suppressed is noerrdrop testdata: an audited package whose
// discarded errors are excused by a justified //arest:allow directive, so
// the harness expects zero findings.
package suppressed

import (
	"fmt"
	"strings"
)

//arest:allow noerrdrop this testdata package stands in for Fprintf-to-strings.Builder rendering code, whose Write never returns a non-nil error

func render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 7)
	return b.String()
}
