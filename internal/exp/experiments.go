package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/fingerprint"
	"arest/internal/longitudinal"
	"arest/internal/mpls"
	"arest/internal/probe"
	"arest/internal/survey"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports, for the paper-vs-measured
	// comparison in EXPERIMENTS.md.
	Paper string
	// Run renders the experiment from the campaign. ctx bounds experiments
	// that probe beyond the campaign (testbed, longitudinal); pure table
	// renderers ignore it.
	Run func(ctx context.Context, c *Campaign) string
}

// All lists every experiment, in paper order.
var All = []Experiment{
	{"fig1", "SR publications per year", "steady rise since 2014, peak in 2024", runFig1},
	{"table1", "Default vendor SRGB/SRLB ranges", "Cisco 16000-23999 / 15000-15999; Huawei 16000-47999 / >=48000; Arista 900000-965535 / 100000-116383", runTable1},
	{"fig5", "Operator survey (N=46)", "Cisco & Juniper dominate; resilience and MPLS simplification lead usage; 70% keep default SRGB, 67% SRLB", runFig5},
	{"fig7", "MPLS stack-size evolution 2015-2025", "stacks >=2 grow to ~20% (CAIDA) and ~10% (RIPE)", runFig7},
	{"table3", "Ground-truth validation on AS#46 (ESnet)", "CO ~95.6% and LSO ~4.4% of segments; 0% FP and 0% FN", runTable3},
	{"fig8", "Flag mix per AS", "LSO most frequent; strong CO in Alibaba/Bouygues/Bell/ESnet; CVR/LSVR/LVR rarer (fingerprint coverage)", runFig8},
	{"fig9", "Stack sizes: strong-SR vs MPLS/LSO contexts", "stacks >=2 ~20% more frequent in SR contexts; ESnet/Execulink unshrinking stacks", runFig9},
	{"fig10", "SR vs MPLS vs IP areas", ">50% SR traces in Microsoft/Bell/ESnet/Arelion; SR interfaces <=10% in 88% of ASes; Microsoft ~50%, ESnet ~33%", runFig10},
	{"fig11", "Interworking modes", "SR->LDP 95%, LDP->SR 2%, LDP-SR-LDP 2%, SR-LDP-SR 1%; 10% of tunnels interworking overall", runFig11},
	{"fig12", "LDP vs SR cloud sizes", "LDP clouds smaller; SR clouds larger", runFig12},
	{"fig13", "Tunnel visibility classes per AS", "explicit dominates (~76%); stubs mostly invisible/implicit", runFig13},
	{"fig14", "Fingerprinting source mix", "~45% of hops fingerprinted; 88% TTL-based, 12% SNMPv3", runFig14},
	{"fig15", "SNMPv3 vendor heatmap", "Cisco most common, then Juniper, Huawei; no Arista", runFig15},
	{"fig16", "Label range occurrences", "labels skewed to low values; few above 100000", runFig16},
	{"fig17", "Unique hops vs vantage points", "slow growth, no dominant VP", runFig17},
	{"table5", "Per-AS campaign statistics", "traces sent and IPs discovered per AS (scaled)", runTable5},
	{"headline", "Sec. 6.2 headline numbers", "SR in 75% of claimed ASes (60% via strong flags); SR evidence in 94% of unknown ASes; 23% of SR hops fingerprinted; 0.01% suffix matches", runHeadline},
	{"ext-longitudinal", "Extension: SR adoption over time", "future work in the paper: longitudinal tracking of SR-MPLS adoption", runLongitudinalExp},
	{"ext-srgb", "Extension: inferred SRGB blocks per AS", "extends Sec. 7: recover the provisioned label block (default vs custom) from observed node-SID labels", runSRGBInference},
	{"verdicts", "Sec. 6.3 per-AS deployment verdicts", "LSO-only ASes (Proximus) stay ambiguous; strong flags detected; co-occurrence or confirmation corroborates", runVerdicts},
	{"testbed", "Controlled-environment validation", "the paper validated AReST in a lab before the campaign; one canonical scenario per flag must yield that flag", runTestbed},
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fig1Publications digitizes Fig. 1 (publications mentioning "Segment
// Routing" per year across ACM DL, IEEEXplore, ScienceDirect).
var fig1Publications = []struct {
	Year  int
	Count int
}{
	{2014, 11}, {2015, 21}, {2016, 34}, {2017, 48}, {2018, 63}, {2019, 84},
	{2020, 97}, {2021, 108}, {2022, 117}, {2023, 128}, {2024, 142}, {2025, 39},
}

func runFig1(context.Context, *Campaign) string {
	t := eval.Table{Title: "Fig. 1 — SR publications per year", Headers: []string{"Year", "Publications"}}
	for _, p := range fig1Publications {
		t.AddRow(p.Year, p.Count)
	}
	return t.Render()
}

func runTable1(context.Context, *Campaign) string {
	t := eval.Table{Title: "Table 1 — Default vendor SR label ranges", Headers: []string{"Range", "Usage"}}
	t.AddRow(mpls.CiscoSRGB.String(), "Cisco default SRGB")
	t.AddRow(mpls.CiscoSRLB.String(), "Cisco default SRLB")
	t.AddRow(mpls.HuaweiSRGB.String(), "Huawei default SRGB")
	t.AddRow(mpls.HuaweiSRLB.String(), "Huawei base SRLB")
	t.AddRow(mpls.AristaSRGB.String(), "Arista default SRGB")
	t.AddRow(mpls.AristaSRLB.String(), "Arista default SRLB")
	return t.Render()
}

func runFig5(context.Context, *Campaign) string {
	rs := survey.Respondents()
	var b strings.Builder
	vt := eval.Table{Title: "Fig. 5a — SR-MPLS hardware vendors (share of respondents)",
		Headers: []string{"Vendor", "Share"}}
	shares := survey.VendorShares(rs)
	type kv struct {
		v mpls.Vendor
		s float64
	}
	var vs []kv
	for v, s := range shares {
		vs = append(vs, kv{v, s})
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].s > vs[j].s })
	for _, e := range vs {
		vt.AddRow(e.v.String(), e.s)
	}
	b.WriteString(vt.Render())

	ut := eval.Table{Title: "Fig. 5b — SR-MPLS usage", Headers: []string{"Usage", "Share"}}
	us := survey.UsageShares(rs)
	type ku struct {
		u survey.Usage
		s float64
	}
	var uvs []ku
	for u, s := range us {
		uvs = append(uvs, ku{u, s})
	}
	sort.Slice(uvs, func(i, j int) bool { return uvs[i].s > uvs[j].s })
	for _, e := range uvs {
		ut.AddRow(e.u.String(), e.s)
	}
	b.WriteString(ut.Render())

	srgb, srlb := survey.DefaultRangeRates(rs)
	fmt.Fprintf(&b, "default SRGB kept: %.0f%%   default SRLB kept: %.0f%%\n", srgb*100, srlb*100)
	return b.String()
}

func runFig7(_ context.Context, c *Campaign) string {
	var b strings.Builder
	for _, p := range []longitudinal.Platform{longitudinal.CAIDA, longitudinal.RIPEAtlas} {
		t := eval.Table{Title: fmt.Sprintf("Fig. 7 — MPLS stack sizes over time (%s)", p),
			Headers: []string{"Sample", "depth=1", "depth=2", "depth>=3"}}
		dists := longitudinal.Measure(longitudinal.Generate(p, 2000, c.Cfg.Seed))
		for i, d := range dists {
			if i%4 != 0 && i != len(dists)-1 {
				continue // yearly rows keep the table readable
			}
			t.AddRow(d.Date, d.Depth1, d.Depth2, d.Depth3)
		}
		b.WriteString(t.Render())
	}
	return b.String()
}

func runTable3(_ context.Context, c *Campaign) string {
	r, ok := c.ByID(46)
	if !ok {
		return "AS#46 (ESnet) not in campaign\n"
	}
	gt := r.GroundTruth()
	counts := r.FlagCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	t := eval.Table{Title: "Table 3 — AReST validation on AS#46 (ESnet)",
		Headers: []string{"Flag", "Segments", "Share", "TP", "FP rate", "FN rate"}}
	for _, f := range core.AllFlags {
		n := counts[f]
		share := 0.0
		if total > 0 {
			share = float64(n) / float64(total)
		}
		cm := gt[f]
		if n == 0 && cm.FN == 0 {
			t.AddRow(f.String(), 0, 0.0, "-", "-", "-")
			continue
		}
		t.AddRow(f.String(), n, share, cm.TP, cm.FPRate(), cm.FNRate())
	}
	return t.Render()
}

func asLabel(r *ASResult) string {
	conf := ""
	switch {
	case r.Record.CiscoConfirmed && r.Record.SurveyConfirm:
		conf = " [both]"
	case r.Record.CiscoConfirmed:
		conf = " [cisco]"
	case r.Record.SurveyConfirm:
		conf = " [survey]"
	}
	return fmt.Sprintf("#%d %s (%s)%s", r.Record.ID, r.Record.Name, r.Record.Category, conf)
}

func runFig8(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Fig. 8 — Proportion of SR segments per AReST flag",
		Headers: []string{"AS", "CVR", "CO", "LSVR", "LVR", "LSO", "segments"}}
	for _, r := range c.ASes {
		sh := r.FlagShares()
		counts := r.FlagCounts()
		total := 0
		for _, n := range counts {
			total += n
		}
		t.AddRow(asLabel(r), sh[core.FlagCVR], sh[core.FlagCO], sh[core.FlagLSVR],
			sh[core.FlagLVR], sh[core.FlagLSO], total)
	}
	return t.Render()
}

func runFig9(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Fig. 9 — LSE stack sizes: strong-SR vs MPLS/LSO contexts",
		Headers: []string{"AS", "SR d=1", "SR d>=2", "MPLS d=1", "MPLS d>=2"}}
	for _, r := range c.ASes {
		s := r.StackDepthDist(true)
		m := r.StackDepthDist(false)
		row := func(d map[int]int) (one, deep float64) {
			tot := 0
			for _, n := range d {
				tot += n
			}
			if tot == 0 {
				return 0, 0
			}
			for depth, n := range d {
				if depth == 1 {
					one += float64(n)
				} else {
					deep += float64(n)
				}
			}
			return one / float64(tot), deep / float64(tot)
		}
		s1, s2 := row(s)
		m1, m2 := row(m)
		t.AddRow(asLabel(r), s1, s2, m1, m2)
	}
	return t.Render()
}

func runFig10(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Fig. 10 — SR / MPLS / IP areas per AS",
		Headers: []string{"AS", "trace%SR", "trace%MPLS", "trace%IP", "ifaces SR", "ifaces MPLS", "ifaces IP"}}
	for _, r := range c.ASes {
		ts := r.AreaTraceShares()
		ic := r.AreaInterfaceCounts()
		t.AddRow(asLabel(r), ts[core.AreaSR], ts[core.AreaMPLS], ts[core.AreaIP],
			ic[core.AreaSR], ic[core.AreaMPLS], ic[core.AreaIP])
	}
	return t.Render()
}

func runFig11(_ context.Context, c *Campaign) string {
	patterns := c.MergedAgg().Patterns
	full := patterns[core.PatternFullSR]
	inter := 0
	for p, n := range patterns {
		if p != core.PatternFullSR && p != core.PatternFullLDP && p != core.PatternOther {
			inter += n
		}
	}
	var b strings.Builder
	t := eval.Table{Title: "Fig. 11 — Interworking modes (share of interworking tunnels)",
		Headers: []string{"Mode", "Count", "Share"}}
	for _, p := range []core.Pattern{core.PatternSRLDP, core.PatternLDPSR, core.PatternLDPSRLDP, core.PatternSRLDPSR} {
		share := 0.0
		if inter > 0 {
			share = float64(patterns[p]) / float64(inter)
		}
		t.AddRow(string(p), patterns[p], share)
	}
	b.WriteString(t.Render())
	if full+inter > 0 {
		fmt.Fprintf(&b, "full-SR tunnels: %d (%.0f%%)   interworking: %d (%.0f%%)\n",
			full, 100*float64(full)/float64(full+inter), inter, 100*float64(inter)/float64(full+inter))
	}
	return b.String()
}

func runFig12(_ context.Context, c *Campaign) string {
	merged := c.MergedAgg()
	ldp, sr := expandHist(merged.CloudLDP), expandHist(merged.CloudSR)
	stats := func(xs []int) (n int, mean float64, med int) {
		if len(xs) == 0 {
			return 0, 0, 0
		}
		sort.Ints(xs)
		tot := 0
		for _, x := range xs {
			tot += x
		}
		return len(xs), float64(tot) / float64(len(xs)), xs[len(xs)/2]
	}
	t := eval.Table{Title: "Fig. 12 — LDP vs SR cloud sizes in interworking tunnels",
		Headers: []string{"Cloud", "N", "Mean hops", "Median hops"}}
	n, m, md := stats(ldp)
	t.AddRow("LDP", n, m, md)
	n, m, md = stats(sr)
	t.AddRow("SR", n, m, md)
	return t.Render()
}

func runFig13(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Fig. 13 — MPLS tunnel visibility classes per AS",
		Headers: []string{"AS", "explicit", "implicit", "opaque", "invisible", "paths w/ explicit"}}
	for _, r := range c.ASes {
		counts := r.TunnelTypeCounts()
		total := 0
		for _, n := range counts {
			total += n
		}
		share := func(tt probe.TunnelType) float64 {
			if total == 0 {
				return 0
			}
			return float64(counts[tt]) / float64(total)
		}
		t.AddRow(asLabel(r), share(probe.TunnelExplicit), share(probe.TunnelImplicit),
			share(probe.TunnelOpaque), share(probe.TunnelInvisible), r.ExplicitPathShare())
	}
	return t.Render()
}

func runFig14(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Fig. 14 — Fingerprinting source per AS",
		Headers: []string{"AS", "SNMPv3", "TTL", "none", "coverage"}}
	for _, r := range c.ASes {
		src := r.FingerprintSourceCounts()
		total := src[fingerprint.SourceSNMP] + src[fingerprint.SourceTTL] + src[fingerprint.SourceNone]
		cov := 0.0
		if total > 0 {
			cov = float64(src[fingerprint.SourceSNMP]+src[fingerprint.SourceTTL]) / float64(total)
		}
		t.AddRow(asLabel(r), src[fingerprint.SourceSNMP], src[fingerprint.SourceTTL],
			src[fingerprint.SourceNone], cov)
	}
	return t.Render()
}

func runFig15(_ context.Context, c *Campaign) string {
	vendors := []mpls.Vendor{mpls.VendorCisco, mpls.VendorJuniper, mpls.VendorHuawei,
		mpls.VendorNokia, mpls.VendorLinux}
	headers := []string{"AS"}
	for _, v := range vendors {
		headers = append(headers, v.String())
	}
	t := eval.Table{Title: "Fig. 15 — SNMPv3-identified vendors per AS", Headers: headers}
	for _, r := range c.ASes {
		counts := r.VendorCounts()
		row := []interface{}{asLabel(r)}
		for _, v := range vendors {
			row = append(row, counts[v])
		}
		t.AddRow(row...)
	}
	return t.Render()
}

func runFig16(_ context.Context, c *Campaign) string {
	headers := []string{"AS"}
	for _, b := range LabelBuckets {
		headers = append(headers, b.Name)
	}
	t := eval.Table{Title: "Fig. 16 — MPLS label range occurrences per AS", Headers: headers}
	for _, r := range c.ASes {
		hist := r.LabelRangeHist()
		row := []interface{}{asLabel(r)}
		for _, b := range LabelBuckets {
			row = append(row, hist[b.Name])
		}
		t.AddRow(row...)
	}
	return t.Render()
}

func runFig17(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Fig. 17 — Unique hops discovered as VPs are added",
		Headers: []string{"AS", "per-VP cumulative share"}}
	for _, r := range c.ASes {
		acc := r.VPAccumulation()
		if len(acc) == 0 || acc[len(acc)-1] == 0 {
			continue
		}
		final := float64(acc[len(acc)-1])
		parts := make([]string, len(acc))
		for i, n := range acc {
			parts[i] = fmt.Sprintf("%.2f", float64(n)/final)
		}
		t.AddRow(asLabel(r), strings.Join(parts, " "))
	}
	return t.Render()
}

func runTable5(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Table 5 — Per-AS campaign statistics (scaled)",
		Headers: []string{"AS", "ASN", "Type", "Traces sent", "IPs discovered", "Cisco", "Survey"}}
	for _, r := range c.ASes {
		t.AddRow(fmt.Sprintf("#%d %s", r.Record.ID, r.Record.Name), r.Record.ASN,
			r.Record.Category.String(), r.TracesSent, r.DistinctIPs(),
			r.Record.CiscoConfirmed, r.Record.SurveyConfirm)
	}
	return t.Render()
}

// Headline computes the Sec. 6.2 summary statistics.
type Headline struct {
	ClaimedASes          int
	ClaimedDetected      int // any flag
	ClaimedStrong        int // strong flags
	UnknownASes          int
	UnknownDetected      int
	FingerprintedSRShare float64 // share of strong-SR hops with a vendor
	SuffixMatchShare     float64 // suffix-based sequence matches
}

// ComputeHeadline aggregates the campaign-wide headline numbers.
func ComputeHeadline(c *Campaign) Headline {
	var h Headline
	srHops, srHopsFP := 0, 0
	seqSegs, seqSuffix := 0, 0
	for _, r := range c.ASes {
		if r.Record.Claimed() {
			h.ClaimedASes++
			if r.HasAnySR() {
				h.ClaimedDetected++
			}
			if r.HasStrongSR() {
				h.ClaimedStrong++
			}
		} else {
			h.UnknownASes++
			if r.HasAnySR() {
				h.UnknownDetected++
			}
		}
		seqSegs += r.Agg.Flags[core.FlagCVR] + r.Agg.Flags[core.FlagCO]
		seqSuffix += r.Agg.SeqSuffix
		srHops += r.Agg.StrongHops
		srHopsFP += r.Agg.StrongHopsFP
	}
	if srHops > 0 {
		h.FingerprintedSRShare = float64(srHopsFP) / float64(srHops)
	}
	if seqSegs > 0 {
		h.SuffixMatchShare = float64(seqSuffix) / float64(seqSegs)
	}
	return h
}

func runHeadline(_ context.Context, c *Campaign) string {
	h := ComputeHeadline(c)
	var b strings.Builder
	fmt.Fprintf(&b, "## Sec. 6.2 — headline numbers\n")
	pct := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	fmt.Fprintf(&b, "claimed ASes analyzed: %d; SR detected in %d (%.0f%%), via strong flags in %d (%.0f%%)\n",
		h.ClaimedASes, h.ClaimedDetected, pct(h.ClaimedDetected, h.ClaimedASes),
		h.ClaimedStrong, pct(h.ClaimedStrong, h.ClaimedASes))
	fmt.Fprintf(&b, "unknown ASes analyzed: %d; SR evidence in %d (%.0f%%)\n",
		h.UnknownASes, h.UnknownDetected, pct(h.UnknownDetected, h.UnknownASes))
	fmt.Fprintf(&b, "strong-SR hops fingerprinted: %.1f%%\n", h.FingerprintedSRShare*100)
	fmt.Fprintf(&b, "suffix-based sequence matches: %.2f%%\n", h.SuffixMatchShare*100)
	return b.String()
}

// runSRGBInference applies the SRGB-inference extension to every AS with
// enough sequence-flag evidence.
func runSRGBInference(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Extension — inferred SRGB blocks",
		Headers: []string{"AS", "Observed", "Inferred block", "Match", "Samples"}}
	for _, r := range c.ASes {
		est, ok := r.InferSRGB()
		if !ok {
			continue
		}
		match := "custom"
		if est.Vendor != mpls.VendorUnknown {
			match = est.Vendor.String() + " default"
		}
		t.AddRow(asLabel(r), est.Observed.String(), est.Block.String(), match, est.Samples)
	}
	return t.Render()
}

// runVerdicts renders the per-AS interpretive verdicts of Sec. 6.3.
func runVerdicts(_ context.Context, c *Campaign) string {
	t := eval.Table{Title: "Sec. 6.3 — per-AS deployment verdicts",
		Headers: []string{"AS", "Verdict", "Strong segs", "LSO segs"}}
	counts := map[core.Verdict]int{}
	for _, r := range c.ASes {
		v := r.Verdict()
		counts[v]++
		fc := r.FlagCounts()
		strong := fc[core.FlagCVR] + fc[core.FlagCO] + fc[core.FlagLSVR] + fc[core.FlagLVR]
		t.AddRow(asLabel(r), v.String(), strong, fc[core.FlagLSO])
	}
	out := t.Render()
	out += fmt.Sprintf("summary: %d corroborated, %d detected, %d ambiguous, %d no-evidence\n",
		counts[core.VerdictCorroborated], counts[core.VerdictDetected],
		counts[core.VerdictAmbiguous], counts[core.VerdictNoEvidence])
	return out
}
