package survey

import (
	"math"
	"testing"

	"arest/internal/mpls"
)

func TestRespondentCount(t *testing.T) {
	rs := Respondents()
	if len(rs) != N || N != 46 {
		t.Fatalf("respondents = %d, want 46", len(rs))
	}
}

func TestVendorSharesMatchFig5a(t *testing.T) {
	shares := VendorShares(Respondents())
	// Cisco and Juniper dominate; ordering per Fig. 5a.
	if shares[mpls.VendorCisco] <= shares[mpls.VendorJuniper] {
		t.Errorf("Cisco (%.2f) should lead Juniper (%.2f)", shares[mpls.VendorCisco], shares[mpls.VendorJuniper])
	}
	if shares[mpls.VendorJuniper] <= shares[mpls.VendorNokia] {
		t.Errorf("Juniper should lead Nokia")
	}
	for _, v := range []mpls.Vendor{mpls.VendorNokia, mpls.VendorArista, mpls.VendorLinux, mpls.VendorHuawei} {
		if shares[v] <= 0 {
			t.Errorf("vendor %v has zero share", v)
		}
		if shares[v] >= shares[mpls.VendorCisco] {
			t.Errorf("vendor %v outranks Cisco", v)
		}
	}
}

func TestUsageSharesMatchFig5b(t *testing.T) {
	shares := UsageShares(Respondents())
	// Resilience first, then simplification; ~40% best effort.
	if shares[UsageResilience] < shares[UsageSimplifyMPLS] {
		t.Error("resilience should lead")
	}
	if shares[UsageSimplifyMPLS] < shares[UsageTraditionalServices] {
		t.Error("simplify should beat traditional services")
	}
	if math.Abs(shares[UsageBestEffort]-0.40) > 0.05 {
		t.Errorf("best effort share = %.2f, want ≈0.40", shares[UsageBestEffort])
	}
	for _, u := range AllUsages {
		if shares[u] <= 0 || shares[u] > 1 {
			t.Errorf("usage %v share out of range: %f", u, shares[u])
		}
	}
}

func TestDefaultRangeRates(t *testing.T) {
	srgb, srlb := DefaultRangeRates(Respondents())
	if math.Abs(srgb-0.70) > 0.02 {
		t.Errorf("SRGB default rate = %.3f, want ≈0.70", srgb)
	}
	if math.Abs(srlb-0.67) > 0.02 {
		t.Errorf("SRLB default rate = %.3f, want ≈0.67", srlb)
	}
}

func TestAggregationCountsRespondentsOnce(t *testing.T) {
	// A respondent mentioning the same vendor twice must count once.
	rs := []Respondent{{Vendors: []mpls.Vendor{mpls.VendorCisco, mpls.VendorCisco}}}
	if got := VendorShares(rs)[mpls.VendorCisco]; got != 1.0 {
		t.Errorf("share = %f, want 1.0", got)
	}
	rs = []Respondent{{Usages: []Usage{UsageResilience, UsageResilience}}}
	if got := UsageShares(rs)[UsageResilience]; got != 1.0 {
		t.Errorf("usage share = %f", got)
	}
}

func TestUsageStrings(t *testing.T) {
	for _, u := range AllUsages {
		if u.String() == "?" {
			t.Errorf("usage %d has no name", u)
		}
	}
	if Usage(99).String() != "?" {
		t.Error("unknown usage named")
	}
}
