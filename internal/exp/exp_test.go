package exp

import (
	"context"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"arest/internal/asgen"
	"arest/internal/core"
	"arest/internal/probe"
)

// testCfg keeps campaign tests fast.
func testCfg() Config {
	return Config{
		Seed:              101,
		NumVPs:            3,
		MaxTargets:        10,
		FlowsPerTarget:    1,
		AliasCandidateCap: 60,
		MaxRouters:        22,
		// Retained mode: several tests cross-check aggregates against the
		// raw paths/results, which only exist when KeepPaths is on.
		KeepPaths: true,
	}
}

var (
	campOnce sync.Once
	camp     *Campaign
	campErr  error
)

// testCampaign runs a representative subset of the catalogue once and
// shares it across tests: ESnet (ground truth), Microsoft (full SR),
// Proximus (LSO-only), Bell Canada (claimed transit), Iliad (no explicit),
// Hurricane Electric (unknown, well-fingerprinted), Amazon (unknown).
func testCampaign(t *testing.T) *Campaign {
	t.Helper()
	campOnce.Do(func() {
		var recs []asgen.Record
		for _, id := range []int{2, 7, 15, 19, 28, 40, 46} {
			r, ok := asgen.ByID(id)
			if !ok {
				campErr = errNotFound(id)
				return
			}
			recs = append(recs, r)
		}
		camp, campErr = Run(context.Background(), recs, testCfg())
	})
	if campErr != nil {
		t.Fatal(campErr)
	}
	return camp
}

type errNotFound int

func (e errNotFound) Error() string { return "record not found" }

func TestCampaignRuns(t *testing.T) {
	c := testCampaign(t)
	if len(c.ASes) != 7 {
		t.Fatalf("ASes = %d, want 7", len(c.ASes))
	}
	for _, r := range c.ASes {
		if r.TracesSent == 0 {
			t.Errorf("AS#%d sent no traces", r.Record.ID)
		}
		if len(r.Paths) == 0 {
			t.Errorf("AS#%d has no in-AS paths", r.Record.ID)
		}
		if len(r.Paths) != len(r.Results) {
			t.Errorf("AS#%d paths/results mismatch", r.Record.ID)
		}
	}
}

func TestCampaignSkipsExcluded(t *testing.T) {
	rec, _ := asgen.ByID(1) // excluded for coverage
	c, err := Run(context.Background(), []asgen.Record{rec}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ASes) != 0 {
		t.Error("excluded AS was run")
	}
}

func TestESnetGroundTruthPerfectPrecision(t *testing.T) {
	c := testCampaign(t)
	r, ok := c.ByID(46)
	if !ok {
		t.Fatal("ESnet missing")
	}
	counts := r.FlagCounts()
	// Fingerprint-blind: no vendor-range flags possible.
	for _, f := range []core.Flag{core.FlagCVR, core.FlagLSVR, core.FlagLVR} {
		if counts[f] != 0 {
			t.Errorf("ESnet raised %v despite blind fingerprinting", f)
		}
	}
	if counts[core.FlagCO] == 0 {
		t.Error("ESnet raised no CO segments")
	}
	// Table 3's headline: perfect precision against the operator ground
	// truth, for every flag that fired.
	for f, cm := range r.GroundTruth() {
		if cm.FPRate() != 0 {
			t.Errorf("flag %v FP rate = %.3f (%+v), want 0", f, cm.FPRate(), cm)
		}
		if f == core.FlagCO && cm.FNRate() != 0 {
			t.Errorf("CO FN rate = %.3f, want 0", cm.FNRate())
		}
	}
	// CO should dominate the ESnet flag mix (paper: 95.6%).
	sh := r.FlagShares()
	if sh[core.FlagCO] < 0.5 {
		t.Errorf("ESnet CO share = %.2f, want dominant", sh[core.FlagCO])
	}
}

func TestMicrosoftWidestSRFootprint(t *testing.T) {
	c := testCampaign(t)
	msft, _ := c.ByID(15)
	prox, _ := c.ByID(7)
	if !msft.HasStrongSR() {
		t.Fatal("Microsoft shows no strong SR")
	}
	// Fig. 10: Microsoft's SR interface share far exceeds an LSO-only AS.
	ms := msft.AreaInterfaceCounts()
	ps := prox.AreaInterfaceCounts()
	msTotal := ms[core.AreaSR] + ms[core.AreaMPLS] + ms[core.AreaIP]
	if msTotal == 0 || float64(ms[core.AreaSR])/float64(msTotal) < 0.3 {
		t.Errorf("Microsoft SR interface share too low: %v", ms)
	}
	if ps[core.AreaSR] != 0 {
		t.Errorf("Proximus (no SR deployed) has SR interfaces: %v", ps)
	}
}

func TestProximusIsLSOOnly(t *testing.T) {
	c := testCampaign(t)
	r, _ := c.ByID(7)
	counts := r.FlagCounts()
	if counts[core.FlagLSO] == 0 {
		t.Error("Proximus raised no LSO")
	}
	for _, f := range []core.Flag{core.FlagCVR, core.FlagCO} {
		if counts[f] != 0 {
			t.Errorf("Proximus raised sequence flag %v: %d", f, counts[f])
		}
	}
	if r.HasStrongSR() {
		t.Error("Proximus shows strong SR despite running classic MPLS")
	}
}

func TestIliadNoExplicitTunnels(t *testing.T) {
	c := testCampaign(t)
	r, _ := c.ByID(2)
	if share := r.ExplicitPathShare(); share > 0.05 {
		t.Errorf("Iliad explicit path share = %.2f, want ~0", share)
	}
	// Without explicit tunnels the sequence flags starve.
	counts := r.FlagCounts()
	if counts[core.FlagCVR]+counts[core.FlagCO] != 0 {
		t.Errorf("sequence flags without explicit tunnels: %v", counts)
	}
}

func TestGroundTruthPrecisionAcrossCampaign(t *testing.T) {
	// The paper's claim is conservative flags => high precision. Verify
	// strong flags against ground truth across every AS.
	c := testCampaign(t)
	tp, fp := 0, 0
	for _, r := range c.ASes {
		for f, cm := range r.GroundTruth() {
			if f.Strong() {
				tp += cm.TP
				fp += cm.FP
			}
		}
	}
	if tp == 0 {
		t.Fatal("no strong-flag segments campaign-wide")
	}
	prec := float64(tp) / float64(tp+fp)
	if prec < 0.98 {
		t.Errorf("strong-flag precision = %.3f (%d TP, %d FP), want >= 0.98", prec, tp, fp)
	}
}

func TestHeadlineShape(t *testing.T) {
	c := testCampaign(t)
	h := ComputeHeadline(c)
	// Claimed: #2 (invisible, may miss), #15, #28, #46 => at least 3 of 4
	// detected, matching the 75% result's spirit.
	if h.ClaimedASes != 4 {
		t.Fatalf("claimed ASes = %d, want 4", h.ClaimedASes)
	}
	if h.ClaimedStrong < 3 {
		t.Errorf("strong detection in %d/4 claimed ASes", h.ClaimedStrong)
	}
	// Suffix matches must be rare (paper: 0.01%).
	if h.SuffixMatchShare > 0.05 {
		t.Errorf("suffix match share = %.3f, want rare", h.SuffixMatchShare)
	}
	// Fingerprinted share strictly between 0 and 1: coverage is partial.
	if h.FingerprintedSRShare <= 0 || h.FingerprintedSRShare >= 1 {
		t.Errorf("fingerprinted SR share = %.3f", h.FingerprintedSRShare)
	}
}

func TestStackDepthContext(t *testing.T) {
	// Fig. 9: deep stacks should be relatively more frequent in SR
	// contexts than in classic contexts for the ESnet-like service-SID AS.
	c := testCampaign(t)
	r, _ := c.ByID(46)
	srDist := r.StackDepthDist(true)
	deep, tot := 0, 0
	for d, n := range srDist {
		tot += n
		if d >= 2 {
			deep += n
		}
	}
	if tot == 0 {
		t.Fatal("no SR-context stacks in ESnet")
	}
	if deep == 0 {
		t.Error("ESnet service SIDs produced no deep stacks in SR context")
	}
}

func TestVPAccumulationMonotone(t *testing.T) {
	c := testCampaign(t)
	for _, r := range c.ASes {
		acc := r.VPAccumulation()
		if len(acc) != len(r.PerVP) {
			t.Fatalf("AS#%d accumulation length %d, want %d", r.Record.ID, len(acc), len(r.PerVP))
		}
		for i := 1; i < len(acc); i++ {
			if acc[i] < acc[i-1] {
				t.Errorf("AS#%d accumulation decreased", r.Record.ID)
			}
		}
	}
}

func TestTunnelTypeCountsConsistent(t *testing.T) {
	c := testCampaign(t)
	r, _ := c.ByID(15) // full SR, explicit
	counts := r.TunnelTypeCounts()
	if counts[probe.TunnelExplicit] == 0 {
		t.Error("Microsoft shows no explicit tunnels")
	}
	r2, _ := c.ByID(2) // no propagate
	if counts2 := r2.TunnelTypeCounts(); counts2[probe.TunnelExplicit] > counts2[probe.TunnelOpaque]+counts2[probe.TunnelInvisible] {
		t.Errorf("Iliad tunnel mix unexpectedly explicit: %v", counts2)
	}
}

func TestAllExperimentsRender(t *testing.T) {
	c := testCampaign(t)
	for _, e := range All {
		out := e.Run(context.Background(), c)
		if len(out) < 20 {
			t.Errorf("experiment %s output too short: %q", e.ID, out)
		}
		if !strings.Contains(strings.ToLower(out), strings.ToLower(e.ID[:3])) &&
			!strings.Contains(out, "Sec.") {
			// Loose sanity: output mentions its own table/figure id.
			t.Logf("experiment %s output does not echo its id (ok if intentional)", e.ID)
		}
	}
	if _, ok := ByID("fig8"); !ok {
		t.Error("ByID(fig8) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestFlagSharesSumToOne(t *testing.T) {
	c := testCampaign(t)
	for _, r := range c.ASes {
		sh := r.FlagShares()
		if len(sh) == 0 {
			continue
		}
		sum := 0.0
		for _, s := range sh {
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("AS#%d flag shares sum to %f", r.Record.ID, sum)
		}
	}
}

func TestTable5Scaled(t *testing.T) {
	c := testCampaign(t)
	out := runTable5(context.Background(), c)
	if !strings.Contains(out, "ESnet") || !strings.Contains(out, "Microsoft") {
		t.Errorf("table 5 missing rows:\n%s", out)
	}
}

func TestLongitudinalAdoption(t *testing.T) {
	rec, _ := asgen.ByID(28)
	cfg := testCfg()
	cfg.NumVPs = 2
	cfg.MaxTargets = 8
	stats, err := RunLongitudinal(context.Background(), rec, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("epochs = %d", len(stats))
	}
	// Detected SR share must be (weakly) monotone in deployment and hit
	// the endpoints: nothing at SRFrac 0, plenty at SRFrac 1.
	if stats[0].DetectedSRShare != 0 {
		t.Errorf("epoch 0 detected %.2f, want 0", stats[0].DetectedSRShare)
	}
	if stats[len(stats)-1].DetectedSRShare < 0.3 {
		t.Errorf("full deployment detected only %.2f", stats[len(stats)-1].DetectedSRShare)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].DetectedSRShare+0.05 < stats[i-1].DetectedSRShare {
			t.Errorf("detected share regressed at epoch %d: %.2f -> %.2f",
				i, stats[i-1].DetectedSRShare, stats[i].DetectedSRShare)
		}
	}
	// Interworking only mid-migration.
	if stats[0].Interworking || stats[len(stats)-1].Interworking {
		t.Error("interworking at an endpoint epoch")
	}
	mid := false
	for _, s := range stats[1 : len(stats)-1] {
		mid = mid || s.Interworking
	}
	if !mid {
		t.Error("no interworking observed mid-migration")
	}
}

func TestInferSRGBAgainstWorldTruth(t *testing.T) {
	// The SRGB inference extension must recover the configured block of a
	// campaign world — default and custom alike.
	c := testCampaign(t)
	r, _ := c.ByID(15) // Microsoft: aligned default block
	est, ok := core.InferSRGB(r.Results)
	if !ok {
		t.Fatal("no estimate for a full-SR AS")
	}
	cfg := r.Dep.CustomSRGB
	if cfg.Size() == 0 {
		// Aligned deployments use the common interop (Cisco) block.
		if est.Block.Lo != 16000 || est.Block.Hi != 23999 {
			t.Errorf("block = %v, want the configured default", est.Block)
		}
	} else if !cfg.Contains(est.Observed.Lo) || !cfg.Contains(est.Observed.Hi) {
		t.Errorf("observed %v outside configured %v", est.Observed, cfg)
	}
}

func TestVerdictsMatchDeployments(t *testing.T) {
	c := testCampaign(t)
	esnet, _ := c.ByID(46)
	if v := esnet.Verdict(); v != core.VerdictCorroborated {
		t.Errorf("ESnet verdict = %v, want corroborated", v)
	}
	prox, _ := c.ByID(7)
	if v := prox.Verdict(); v != core.VerdictAmbiguous {
		t.Errorf("Proximus verdict = %v, want ambiguous (LSO only)", v)
	}
	msft, _ := c.ByID(15)
	if v := msft.Verdict(); v < core.VerdictDetected {
		t.Errorf("Microsoft verdict = %v, want at least detected", v)
	}
}

func TestTestbedScenariosAllPass(t *testing.T) {
	outcomes, err := RunTestbed(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 5 {
		t.Fatalf("scenarios = %d, want 5 (one per flag)", len(outcomes))
	}
	seen := map[core.Flag]bool{}
	for _, o := range outcomes {
		if !o.Pass {
			t.Errorf("%s: dominant = %v, want %v (counts %v)",
				o.Scenario.Name, o.Dominant, o.Scenario.Expected, o.Counts)
		}
		seen[o.Scenario.Expected] = true
	}
	for _, f := range core.AllFlags {
		if !seen[f] {
			t.Errorf("no scenario covers flag %v", f)
		}
	}
}

func TestLabelRangeHistBucketsDisjoint(t *testing.T) {
	// The Fig. 16 buckets must tile the 20-bit space without overlap.
	covered := 0
	for i, b := range LabelBuckets {
		covered += int(b.R.Size())
		for j := i + 1; j < len(LabelBuckets); j++ {
			if _, overlap := b.R.Overlap(LabelBuckets[j].R); overlap {
				t.Errorf("buckets %s and %s overlap", b.Name, LabelBuckets[j].Name)
			}
		}
	}
	if covered != 1<<20 {
		t.Errorf("buckets cover %d labels, want %d", covered, 1<<20)
	}
}

func TestLabelRangeHistCounts(t *testing.T) {
	c := testCampaign(t)
	r, _ := c.ByID(15)
	hist := r.LabelRangeHist()
	total := 0
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		t.Fatal("no labels counted")
	}
	// Microsoft is aligned to the 16000-23999 block: that bucket dominates.
	if hist["16000-23999"]*2 < total {
		t.Errorf("SRGB bucket not dominant: %v", hist)
	}
}

func TestFingerprintSourceCountsPartition(t *testing.T) {
	c := testCampaign(t)
	for _, r := range c.ASes {
		src := r.FingerprintSourceCounts()
		sum := 0
		for _, n := range src {
			sum += n
		}
		// The partition must cover every distinct in-AS interface exactly
		// once.
		seen := map[netip.Addr]bool{}
		for _, p := range r.Paths {
			for i := range p.Hops {
				seen[p.Hops[i].Addr] = true
			}
		}
		if sum != len(seen) {
			t.Errorf("AS#%d: source counts sum %d != %d interfaces", r.Record.ID, sum, len(seen))
		}
	}
}

func TestDistinctIPsConsistentWithAccumulation(t *testing.T) {
	c := testCampaign(t)
	for _, r := range c.ASes {
		acc := r.VPAccumulation()
		if len(acc) == 0 {
			continue
		}
		// In-AS distinct IPs can never exceed the campaign-wide unique
		// hop count (which includes upstream hops).
		if r.DistinctIPs() > acc[len(acc)-1] {
			t.Errorf("AS#%d: in-AS IPs %d > total unique %d", r.Record.ID, r.DistinctIPs(), acc[len(acc)-1])
		}
	}
}
