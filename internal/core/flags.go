// Package core implements AReST — Advanced Revelation of Segment Routing
// Tunnels — the paper's primary contribution. It post-processes traceroute
// paths augmented with MPLS label-stack entries (TNT output) and
// router-vendor fingerprints, and highlights contiguous path portions
// ("segments") exhibiting SR-MPLS signals.
//
// Five detection flags are defined, in decreasing signal strength:
//
//	CVR  ★★★★★  consecutive identical labels + a vendor SR-range match
//	CO   ★★★★   consecutive identical labels only
//	LSVR ★★★★   stack depth ≥2 with the active label in the vendor SR range
//	LVR  ★★★    single LSE whose label is in the vendor SR range
//	LSO  ★      stack depth ≥2 with no other evidence
//
// Beyond flags, the package partitions paths into SR / classic-MPLS / IP
// areas, classifies tunnels as full-SR or SR↔LDP interworking, and measures
// the SR and LDP cloud sizes inside hybrid tunnels.
package core

// Flag is an AReST detection flag.
type Flag int

const (
	FlagNone Flag = iota
	// FlagCVR: Consecutive & Vendor Range (Sec. 4.1).
	FlagCVR
	// FlagCO: Consecutive Only (Sec. 4.2).
	FlagCO
	// FlagLSVR: Label Stack & Vendor Range (Sec. 4.3).
	FlagLSVR
	// FlagLVR: Label & Vendor Range (Sec. 4.4).
	FlagLVR
	// FlagLSO: Label Stack Only (Sec. 4.5).
	FlagLSO
)

var flagNames = map[Flag]string{
	FlagNone: "none",
	FlagCVR:  "CVR",
	FlagCO:   "CO",
	FlagLSVR: "LSVR",
	FlagLVR:  "LVR",
	FlagLSO:  "LSO",
}

func (f Flag) String() string {
	if s, ok := flagNames[f]; ok {
		return s
	}
	return "?"
}

// Stars returns the flag's signal strength as assigned in Sec. 4.
func (f Flag) Stars() int {
	switch f {
	case FlagCVR:
		return 5
	case FlagCO, FlagLSVR:
		return 4
	case FlagLVR:
		return 3
	case FlagLSO:
		return 1
	default:
		return 0
	}
}

// Strong reports whether the flag is one of the strong indicators used for
// the conservative deployment quantification (Sec. 6.3 excludes LSO).
func (f Flag) Strong() bool {
	return f == FlagCVR || f == FlagCO || f == FlagLSVR || f == FlagLVR
}

// AllFlags lists the flags in decreasing signal strength.
var AllFlags = []Flag{FlagCVR, FlagCO, FlagLSVR, FlagLVR, FlagLSO}
