package core

import (
	"testing"

	"arest/internal/mpls"
)

func resultsWithLabels(labels ...uint32) []*Result {
	var out []*Result
	for _, l := range labels {
		p := pathOf(
			mkHop(mpls.VendorUnknown, l),
			mkHop(mpls.VendorUnknown, l),
		)
		out = append(out, analyze(p))
	}
	return out
}

func TestInferSRGBVendorDefault(t *testing.T) {
	est, ok := InferSRGB(resultsWithLabels(16004, 16010, 16019, 16040))
	if !ok {
		t.Fatal("no estimate")
	}
	if est.Block != mpls.CiscoSRGB {
		t.Errorf("block = %v, want Cisco default", est.Block)
	}
	if est.Vendor != mpls.VendorCisco {
		t.Errorf("vendor = %v", est.Vendor)
	}
	if est.Samples != 4 {
		t.Errorf("samples = %d", est.Samples)
	}
	if est.Observed.Lo != 16004 || est.Observed.Hi != 16040 {
		t.Errorf("observed = %v", est.Observed)
	}
}

func TestInferSRGBCustomBlock(t *testing.T) {
	est, ok := InferSRGB(resultsWithLabels(400003, 400190, 401777))
	if !ok {
		t.Fatal("no estimate")
	}
	if est.Vendor != mpls.VendorUnknown {
		t.Errorf("custom block matched vendor %v", est.Vendor)
	}
	if est.Block.Lo != 400000 || est.Block.Hi != 401999 {
		t.Errorf("block = %v, want [400000,401999]", est.Block)
	}
	if !est.Block.Contains(est.Observed.Lo) || !est.Block.Contains(est.Observed.Hi) {
		t.Error("block does not cover observations")
	}
}

func TestInferSRGBHuaweiRegion(t *testing.T) {
	// Labels beyond 24,000 cannot be Cisco's default: Huawei's block wins.
	est, ok := InferSRGB(resultsWithLabels(30001, 31005, 40000))
	if !ok || est.Vendor != mpls.VendorHuawei {
		t.Errorf("est = %+v ok=%v, want Huawei", est, ok)
	}
}

func TestInferSRGBNeedsEvidence(t *testing.T) {
	if _, ok := InferSRGB(resultsWithLabels(16004, 16005)); ok {
		t.Error("estimate from too few samples")
	}
	if _, ok := InferSRGB(nil); ok {
		t.Error("estimate from nothing")
	}
	// LSO/unflagged labels must not count as evidence.
	p := pathOf(mkHop(mpls.VendorUnknown, 700001, 700002))
	if _, ok := InferSRGB([]*Result{analyze(p)}); ok {
		t.Error("estimate from LSO-only evidence")
	}
}

func TestInferSRGBTopOfLabelSpace(t *testing.T) {
	est, ok := InferSRGB(resultsWithLabels(1048000, 1048100, 1048570))
	if !ok {
		t.Fatal("no estimate")
	}
	if est.Block.Hi > mpls.MaxLabel {
		t.Errorf("block %v exceeds the 20-bit label space", est.Block)
	}
}
