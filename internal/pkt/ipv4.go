package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers used by the prober and simulator.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// Errors returned by the IPv4 codec.
var (
	ErrShortPacket = errors.New("pkt: packet too short")
	ErrBadVersion  = errors.New("pkt: not an IPv4 packet")
	ErrBadChecksum = errors.New("pkt: bad checksum")
	ErrBadHeader   = errors.New("pkt: malformed header")
)

// IPv4 is an IPv4 packet: header fields plus payload. Options are not
// modeled (no measurement tool in this pipeline emits them).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	DontFrag bool
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	Payload  []byte
}

// Marshal serializes the packet, computing TotalLength and the header
// checksum.
func (p *IPv4) Marshal() ([]byte, error) {
	return p.AppendMarshal(nil)
}

// AppendMarshal serializes the packet onto dst and returns the extended
// slice, allocating only when dst lacks capacity. The appended bytes are
// identical to Marshal's output; every byte of the appended region is
// written, so dst may be a recycled scratch buffer.
func (p *IPv4) AppendMarshal(dst []byte) ([]byte, error) {
	if !p.Src.Is4() || !p.Dst.Is4() {
		return nil, fmt.Errorf("%w: src/dst must be IPv4 addresses", ErrBadHeader)
	}
	total := IPv4HeaderLen + len(p.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("%w: payload too large (%d bytes)", ErrBadHeader, len(p.Payload))
	}
	b, o := grow(dst, total)
	b[o] = 4<<4 | IPv4HeaderLen/4
	b[o+1] = p.TOS
	binary.BigEndian.PutUint16(b[o+2:], uint16(total))
	binary.BigEndian.PutUint16(b[o+4:], p.ID)
	b[o+6] = 0
	if p.DontFrag {
		b[o+6] = 1 << 6
	}
	b[o+7] = 0
	b[o+8] = p.TTL
	b[o+9] = p.Protocol
	b[o+10] = 0
	b[o+11] = 0
	src := p.Src.As4()
	dst4 := p.Dst.As4()
	copy(b[o+12:o+16], src[:])
	copy(b[o+16:o+20], dst4[:])
	binary.BigEndian.PutUint16(b[o+10:], Checksum(b[o:o+IPv4HeaderLen]))
	copy(b[o+IPv4HeaderLen:], p.Payload)
	return b, nil
}

// UnmarshalIPv4 parses an IPv4 packet, verifying version, lengths, and the
// header checksum. The returned packet owns its payload.
func UnmarshalIPv4(b []byte) (*IPv4, error) {
	p := new(IPv4)
	if err := UnmarshalIPv4Into(p, b); err != nil {
		return nil, err
	}
	p.Payload = append([]byte(nil), p.Payload...)
	return p, nil
}

// UnmarshalIPv4Into parses an IPv4 packet into p without allocating:
// p.Payload aliases b, so b must stay live and unmodified for as long as p
// is in use. Verification matches UnmarshalIPv4.
func UnmarshalIPv4Into(p *IPv4, b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrShortPacket
	}
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return fmt.Errorf("%w: IHL=%d", ErrBadHeader, ihl)
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < ihl || total > len(b) {
		return fmt.Errorf("%w: total length %d of %d bytes", ErrBadHeader, total, len(b))
	}
	if Checksum(b[:ihl]) != 0 {
		return ErrBadChecksum
	}
	*p = IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:]),
		DontFrag: b[6]&(1<<6) != 0,
		TTL:      b[8],
		Protocol: b[9],
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
		Payload:  b[ihl:total],
	}
	return nil
}

// UnmarshalIPv4Quoted parses a quoted original datagram from an ICMP error
// body. Unlike UnmarshalIPv4 it tolerates truncation: many routers quote
// only the IP header plus 8 payload bytes (RFC 792 minimum), so the
// declared total length may exceed the bytes present. The checksum still
// has to verify — the header itself is never truncated.
func UnmarshalIPv4Quoted(b []byte) (*IPv4, error) {
	p := new(IPv4)
	if err := UnmarshalIPv4QuotedInto(p, b); err != nil {
		return nil, err
	}
	p.Payload = append([]byte(nil), p.Payload...)
	return p, nil
}

// UnmarshalIPv4QuotedInto is the allocation-free form of
// UnmarshalIPv4Quoted: p.Payload aliases b.
func UnmarshalIPv4QuotedInto(p *IPv4, b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrShortPacket
	}
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return fmt.Errorf("%w: IHL=%d", ErrBadHeader, ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return ErrBadChecksum
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	end := total
	if end > len(b) || end < ihl {
		end = len(b) // truncated quote: keep what we have
	}
	*p = IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:]),
		DontFrag: b[6]&(1<<6) != 0,
		TTL:      b[8],
		Protocol: b[9],
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
		Payload:  b[ihl:end],
	}
	return nil
}

//arest:coldpath debug formatter, never on the wire path
func (p *IPv4) String() string {
	return fmt.Sprintf("IPv4 %s -> %s proto=%d ttl=%d len=%d",
		p.Src, p.Dst, p.Protocol, p.TTL, IPv4HeaderLen+len(p.Payload))
}
