// Package alias resolves router aliases — which interface addresses belong
// to the same physical router — with the two techniques the paper combines:
// a MIDAR-style IP-ID monotonic bounds test over the router's shared IP-ID
// counter, pruned by an APPLE-style path-length estimation filter.
package alias

import (
	"net/netip"
	"sort"

	"arest/internal/probe"
)

// Prober samples IP-IDs from candidate interfaces; probe.Tracer implements it.
type Prober interface {
	SampleIPID(dst netip.Addr) (probe.IPIDSample, bool, error)
}

// Config tunes the resolution pipeline.
type Config struct {
	// Rounds is the number of interleaved samples per pair test.
	Rounds int
	// MaxStep is the largest credible IP-ID advance between consecutive
	// samples of a shared counter (MIDAR's velocity bound).
	MaxStep uint16
	// PathLenSlack is the APPLE pruning tolerance on estimated return
	// path lengths.
	PathLenSlack int
}

// DefaultConfig mirrors conservative MIDAR settings.
func DefaultConfig() Config {
	return Config{Rounds: 4, MaxStep: 2048, PathLenSlack: 1}
}

type candidate struct {
	addr    netip.Addr
	pathLen int
}

// Resolve returns alias sets (routers) among the candidate addresses. Only
// sets with two or more members are reported.
func Resolve(addrs []netip.Addr, p Prober, cfg Config) [][]netip.Addr {
	if cfg.Rounds == 0 {
		cfg = DefaultConfig()
	}
	// Estimation stage: keep responsive candidates and record their
	// APPLE path-length estimate.
	var cands []candidate
	for _, a := range addrs {
		s, ok, err := p.SampleIPID(a)
		if err != nil || !ok {
			continue
		}
		cands = append(cands, candidate{addr: a,
			pathLen: int(probe.InferInitialTTL(s.ReplyTTL)) - int(s.ReplyTTL)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].addr.Less(cands[j].addr) })

	// Union-find over candidates.
	parent := make([]int, len(cands))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if find(i) == find(j) {
				continue // already aliased transitively
			}
			// APPLE pruning: interfaces of one router sit at (nearly) the
			// same return distance.
			d := cands[i].pathLen - cands[j].pathLen
			if d < 0 {
				d = -d
			}
			if d > cfg.PathLenSlack {
				continue
			}
			if sharedCounter(cands[i].addr, cands[j].addr, p, cfg) {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]netip.Addr)
	for i, c := range cands {
		r := find(i)
		groups[r] = append(groups[r], c.addr)
	}
	var out [][]netip.Addr
	for _, g := range groups {
		if len(g) >= 2 {
			sort.Slice(g, func(i, j int) bool { return g[i].Less(g[j]) })
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Less(out[j][0]) })
	return out
}

// sharedCounter runs the monotonic bounds test: interleave samples of the
// two addresses; a shared counter yields a strictly increasing sequence
// with small steps, while independent counters almost surely violate the
// bound at some step.
func sharedCounter(a, b netip.Addr, p Prober, cfg Config) bool {
	var seq []uint16
	for r := 0; r < cfg.Rounds; r++ {
		for _, addr := range []netip.Addr{a, b} {
			s, ok, err := p.SampleIPID(addr)
			if err != nil || !ok {
				return false
			}
			seq = append(seq, s.ID)
		}
	}
	for i := 1; i < len(seq); i++ {
		step := seq[i] - seq[i-1] // uint16 arithmetic handles wraparound
		if step == 0 || step > cfg.MaxStep {
			return false
		}
	}
	return true
}
