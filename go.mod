module arest

go 1.22
