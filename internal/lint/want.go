package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
)

// TB is the subset of testing.TB the want harness needs; taking the
// interface keeps the framework free of a testing import at run time and
// lets the harness test itself.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantPrefix marks an expected finding in a testdata file:
//
//	time.Now() // want "regexp" `another regexp`
//
// Each regexp (a double-quoted or backquoted Go string literal) must match
// exactly one diagnostic message reported on that line; multiple
// expectations may share a line. The harness matches on message text
// alone — it runs one rule set per package, so analyzer-name tags would
// only add noise.
const wantPrefix = "// want "

// expectation is one pending // want regexp at a file position.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// RunWantTest type-checks the package in dir (under importPath), runs the
// analyzers over it with directive suppression applied, and asserts that
// the diagnostics agree exactly with the package's // want comments:
// every expectation matched by exactly one finding on its line, and no
// finding without an expectation.
func RunWantTest(t TB, l *Loader, dir, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		ws, err := parseWants(pkg, f)
		if err != nil {
			t.Fatalf("%v", err)
		}
		wants = append(wants, ws...)
	}
	runner := &Runner{Analyzers: analyzers}
	diags, err := runner.Run([]*Package{pkg})
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", importPath, err)
	}
	for _, d := range diags {
		if w := matchWant(wants, d); w == nil {
			t.Errorf("%s: unexpected finding: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// matchWant consumes the first unmet expectation on the diagnostic's line
// whose regexp matches its message.
func matchWant(wants []*expectation, d Diagnostic) *expectation {
	for _, w := range wants {
		if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.met = true
			return w
		}
	}
	return nil
}

// parseWants extracts the // want expectations of one file.
func parseWants(pkg *Package, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, wantPrefix) {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, wantPrefix))
			if rest == "" {
				return nil, fmt.Errorf("%s: empty // want comment", pos)
			}
			for rest != "" {
				if rest[0] != '"' && rest[0] != '`' {
					return nil, fmt.Errorf("%s: // want expects quoted regexps, got %q", pos, rest)
				}
				lit, err := nextQuoted(rest)
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				pattern, err := strconv.Unquote(lit)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want literal %s: %v", pos, lit, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
				}
				wants = append(wants, &expectation{
					file: pos.Filename,
					line: pos.Line,
					re:   re,
					raw:  pattern,
				})
				rest = strings.TrimSpace(rest[len(lit):])
			}
		}
	}
	return wants, nil
}

// nextQuoted returns the leading Go string literal of s: double-quoted
// (with escapes) or backquoted (raw, the form regexps usually want).
func nextQuoted(s string) (string, error) {
	if s[0] == '`' {
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			return s[:i+2], nil
		}
		return "", fmt.Errorf("unterminated want literal %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated want literal %q", s)
}
