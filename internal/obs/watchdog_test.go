package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for driving Scan without sleeps.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestWatchdogStallDetection(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	reg := New()
	reg.SetClock(clk.Now)
	wd := NewWatchdog(reg, 10*time.Second)

	stalled := map[string]int{}
	a := wd.Register("as.001", func() { stalled["as.001"]++ })
	b := wd.Register("as.002", func() { stalled["as.002"]++ })

	if n := wd.Scan(); n != 0 {
		t.Fatalf("fresh heartbeats scanned as %d stalls", n)
	}

	// a keeps beating, b goes quiet: only b stalls.
	clk.Advance(6 * time.Second)
	a.Beat()
	clk.Advance(6 * time.Second)
	if n := wd.Scan(); n != 1 {
		t.Fatalf("Scan = %d stalls, want 1", n)
	}
	if stalled["as.001"] != 0 || stalled["as.002"] != 1 {
		t.Fatalf("wrong unit stalled: %v", stalled)
	}
	// a retires; a stalled unit never re-fires and a retired one never
	// fires, so an hour of silence detects nothing new.
	a.Done()
	clk.Advance(time.Hour)
	if n := wd.Scan(); n != 0 {
		t.Fatalf("re-scan fired %d stalls (retired or already-stalled units)", n)
	}
	if stalled["as.001"] != 0 || stalled["as.002"] != 1 {
		t.Fatalf("onStall fire counts wrong: %v", stalled)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["watchdog.stalls"]; got != 1 {
		t.Fatalf("watchdog.stalls = %d, want 1", got)
	}
	// Two registrations are not beats; a beat exactly once.
	if got := snap.Counters["watchdog.heartbeats"]; got != 1 {
		t.Fatalf("watchdog.heartbeats = %d, want 1", got)
	}
	_ = b
}

func TestWatchdogDisabledAndNil(t *testing.T) {
	var wd *Watchdog
	h := wd.Register("x", func() { t.Error("nil watchdog fired") })
	h.Beat()
	h.Done()
	if n := wd.Scan(); n != 0 {
		t.Fatalf("nil watchdog Scan = %d", n)
	}
	wd.Start(time.Millisecond)()

	off := NewWatchdog(nil, 0) // stallAfter <= 0: detection disabled
	g := off.Register("y", func() { t.Error("disabled watchdog fired") })
	if n := off.Scan(); n != 0 {
		t.Fatalf("disabled watchdog Scan = %d", n)
	}
	g.Done()
	off.Start(0)()
}

func TestWatchdogStartDetectsRealStall(t *testing.T) {
	wd := NewWatchdog(nil, 5*time.Millisecond)
	fired := make(chan struct{})
	var once sync.Once
	h := wd.Register("slow", func() { once.Do(func() { close(fired) }) })
	stop := wd.Start(time.Millisecond)
	defer stop()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("ticker-driven scan never detected the stall")
	}
	h.Done()
}
