package pkt

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestIPv4RoundTrip(t *testing.T) {
	in := &IPv4{
		TOS:      0x10,
		ID:       0xbeef,
		DontFrag: true,
		TTL:      7,
		Protocol: ProtoUDP,
		Src:      addr("10.0.0.1"),
		Dst:      addr("192.0.2.33"),
		Payload:  []byte("hello world"),
	}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != IPv4HeaderLen+len(in.Payload) {
		t.Fatalf("len = %d", len(b))
	}
	out, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.TOS != in.TOS || out.ID != in.ID || out.DontFrag != in.DontFrag ||
		out.TTL != in.TTL || out.Protocol != in.Protocol ||
		out.Src != in.Src || out.Dst != in.Dst || string(out.Payload) != string(in.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	in := &IPv4{TTL: 64, Protocol: ProtoICMP, Src: addr("1.2.3.4"), Dst: addr("5.6.7.8")}
	b, _ := in.Marshal()
	b[8] ^= 0xff // corrupt TTL without fixing checksum
	if _, err := UnmarshalIPv4(b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted header: err = %v, want ErrBadChecksum", err)
	}
}

func TestIPv4RejectsNonV4(t *testing.T) {
	in := &IPv4{TTL: 64, Src: addr("1.2.3.4"), Dst: addr("5.6.7.8")}
	b, _ := in.Marshal()
	b[0] = 6<<4 | 5
	if _, err := UnmarshalIPv4(b); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
	if _, err := (&IPv4{Src: addr("::1"), Dst: addr("5.6.7.8")}).Marshal(); err == nil {
		t.Error("Marshal accepted IPv6 source")
	}
}

func TestIPv4Short(t *testing.T) {
	if _, err := UnmarshalIPv4(make([]byte, 19)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("err = %v, want ErrShortPacket", err)
	}
}

func TestIPv4BadTotalLength(t *testing.T) {
	in := &IPv4{TTL: 1, Src: addr("1.2.3.4"), Dst: addr("5.6.7.8"), Payload: []byte{1, 2, 3}}
	b, _ := in.Marshal()
	// Claim a total length longer than the buffer.
	b[2], b[3] = 0xff, 0xff
	if _, err := UnmarshalIPv4(b); err == nil {
		t.Error("oversized total length accepted")
	}
}

func TestIPv4PayloadCopied(t *testing.T) {
	in := &IPv4{TTL: 9, Src: addr("1.1.1.1"), Dst: addr("2.2.2.2"), Payload: []byte{1, 2, 3}}
	b, _ := in.Marshal()
	out, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	b[IPv4HeaderLen] = 0xff
	if out.Payload[0] != 1 {
		t.Error("Unmarshal aliases input buffer")
	}
}

func TestIPv4QuickRoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, df bool, ttl uint8, proto uint8, s, d [4]byte, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		in := &IPv4{TOS: tos, ID: id, DontFrag: df, TTL: ttl, Protocol: proto,
			Src: netip.AddrFrom4(s), Dst: netip.AddrFrom4(d), Payload: payload}
		b, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := UnmarshalIPv4(b)
		if err != nil {
			return false
		}
		if out.TTL != ttl || out.Src != in.Src || out.Dst != in.Dst || len(out.Payload) != len(payload) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2 -> checksum 220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd length pads with a zero byte.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd-length checksum = %#04x", got)
	}
}

func TestUnmarshalIPv4QuotedTruncated(t *testing.T) {
	// RFC 792 minimum quote: IP header + 8 payload bytes, with a declared
	// total length larger than what is present.
	full := &IPv4{TTL: 5, ID: 321, Protocol: ProtoUDP,
		Src: addr("10.0.0.1"), Dst: addr("192.0.2.2"),
		Payload: make([]byte, 100)}
	b, _ := full.Marshal()
	quote := b[:IPv4HeaderLen+8]
	// Strict parser refuses it...
	if _, err := UnmarshalIPv4(quote); err == nil {
		t.Error("strict parser accepted truncated datagram")
	}
	// ...the quoted parser accepts it and keeps the header fields.
	q, err := UnmarshalIPv4Quoted(quote)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != 321 || q.Src != full.Src || q.Dst != full.Dst || len(q.Payload) != 8 {
		t.Errorf("quoted parse = %+v", q)
	}
	// But a corrupted header is still rejected.
	quote[8] ^= 0xff
	if _, err := UnmarshalIPv4Quoted(quote); err == nil {
		t.Error("corrupted quote accepted")
	}
}
