// The streaming Detect path: a bounded-memory fold over archive records.
// fold implements archive.Visitor — side records accumulate annotation
// state, which seals at the first trace; traces are analyzed in fixed-size
// batches (concurrently, under AnalyzeWorkers) and folded into an Agg in
// stream order, so the same records yield bit-identical aggregates at every
// worker count. DetectStream drives it straight off archive bytes without
// ever materializing the trace set; Detect in campaign.go drives the same
// fold from an in-memory archive.Data, which is what pins the two paths
// deep-equal.
package exp

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"

	"arest/internal/archive"
	"arest/internal/bdrmap"
	"arest/internal/core"
	"arest/internal/fingerprint"
	"arest/internal/mpls"
	"arest/internal/obs"
	"arest/internal/par"
	"arest/internal/probe"
)

// analyzeBatch is the fold's in-flight bound: at most this many traces are
// resident between archive decode and aggregate accumulation. It is a
// fixed constant — never derived from the worker count — so batch
// boundaries, and with them every counter and gauge the fold emits, are
// identical at any concurrency.
const analyzeBatch = 256

// fold is the streaming Detect accumulator. It is not safe for concurrent
// use; concurrency lives inside flush, which fans one batch out across
// AnalyzeWorkers and then accumulates the slots in stream order.
type fold struct {
	cfg Config
	// ctx bounds the fold's lifetime: flush's fan-out aborts at the next
	// trace boundary when it is cancelled, and the fold surfaces the cause.
	ctx context.Context
	// applyBudget: apply the trace-failure and plan budgets when their
	// records arrive (DetectStream); the legacy Detect contract leaves the
	// budgets to its callers.
	applyBudget bool

	res  *ASResult
	agg  *Agg
	det  *core.Detector
	busy *obs.Span
	asn  int

	// planned sums the per-VP trace counts as VP records arrive; once the
	// VP run ends, planBudgetErr re-derives the live run's MaxASTraces
	// verdict from it (the sum equals the live plan's job count).
	planned     int
	planChecked bool

	// Side state accumulated before the first trace, then sealed into the
	// result's annotator and owner annotation.
	snmp    map[netip.Addr]mpls.Vendor
	ttl     map[netip.Addr]mpls.Vendor
	borders map[netip.Addr]int
	sealed  bool

	batch   []archive.TraceRecord
	results []*core.Result // analysis slots, indexed like batch
}

func newFold(ctx context.Context, cfg Config, applyBudget bool) *fold {
	return &fold{
		cfg:         cfg,
		ctx:         ctx,
		applyBudget: applyBudget,
		res:         &ASResult{SREnabled: map[netip.Addr]bool{}},
		agg:         NewAgg(),
		det:         core.NewDetector(),
		busy:        cfg.Metrics.Span("exp", "workers.busy"),
		snmp:        map[netip.Addr]mpls.Vendor{},
		ttl:         map[netip.Addr]mpls.Vendor{},
		borders:     map[netip.Addr]int{},
		batch:       make([]archive.TraceRecord, 0, analyzeBatch),
		results:     make([]*core.Result, analyzeBatch),
	}
}

// record counts one folded archive record (streamed and in-memory drives
// emit the same record sequence, so the counter is path-independent).
func (f *fold) record() { f.cfg.Metrics.Counter("exp", "stream.records").Inc() }

// sideRecord guards a side-data record: once the first trace has sealed the
// annotation state, further side records cannot be honored by a one-pass
// fold, so they are a container-order violation.
func (f *fold) sideRecord(kind string) error {
	f.record()
	if err := f.planBudgetErr(); err != nil {
		return err
	}
	if f.sealed {
		return fmt.Errorf("%w: %s record after traces in a one-pass fold", archive.ErrCorrupt, kind)
	}
	return nil
}

// planBudgetErr applies the deterministic per-AS trace budget to the
// archived plan, once, as soon as the VP run has ended (the first non-VP
// record, or finish for a VP-only archive). The summed per-VP trace counts
// equal the live plan's job count, so a resumed shard re-derives the exact
// verdict a fresh measurement would reach — before any trace is decoded.
func (f *fold) planBudgetErr() error {
	if !f.applyBudget || f.planChecked {
		return nil
	}
	f.planChecked = true
	return f.cfg.ASBudgetErr(f.planned)
}

func (f *fold) Meta(m archive.Meta) error {
	f.record()
	f.res.Record = m.Record
	f.res.Dep = m.Dep
	f.asn = m.Record.ASN
	return nil
}

func (f *fold) VP(rec archive.VPRecord) error {
	f.record()
	f.planned += rec.Traces
	f.agg.NumVPs++
	if f.cfg.KeepPaths {
		f.res.PerVP = append(f.res.PerVP, VPTraces{VP: rec.Addr, Traces: []*probe.Trace{}})
	}
	return nil
}

func (f *fold) Fingerprint(rec archive.FingerprintRecord) error {
	if err := f.sideRecord("fingerprint"); err != nil {
		return err
	}
	switch rec.Source {
	case archive.SourceSNMP:
		f.snmp[rec.Addr] = rec.Vendor
	case archive.SourceTTL:
		f.ttl[rec.Addr] = rec.Vendor
	}
	return nil
}

// AliasSet: alias sets feed bdrmap during measurement; the analysis stages
// never consume them, so the fold validates placement and moves on.
func (f *fold) AliasSet(archive.AliasSetRecord) error { return f.sideRecord("alias-set") }

func (f *fold) Border(rec archive.BorderRecord) error {
	if err := f.sideRecord("border"); err != nil {
		return err
	}
	f.borders[rec.Addr] = rec.ASN
	return nil
}

func (f *fold) SREnabled(rec archive.SREnabledRecord) error {
	if err := f.sideRecord("sr-enabled"); err != nil {
		return err
	}
	f.res.SREnabled[rec.Addr] = true
	return nil
}

func (f *fold) Degraded(rec archive.Degraded) error {
	if err := f.sideRecord("degraded"); err != nil {
		return err
	}
	if f.applyBudget {
		// Budget exceeded: abort before a single trace is decoded — in a v2
		// archive the degradation summary precedes the trace run.
		return f.cfg.degradedBudgetErr(&rec)
	}
	return nil
}

func (f *fold) Trace(rec archive.TraceRecord) error {
	f.record()
	if err := f.planBudgetErr(); err != nil {
		return err
	}
	if !f.sealed {
		f.seal()
	}
	f.batch = append(f.batch, rec)
	if len(f.batch) == analyzeBatch {
		return f.flush()
	}
	return nil
}

// seal freezes the side state into the result's annotator and owner
// annotation. After seal the fold is trace-only.
func (f *fold) seal() {
	f.sealed = true
	f.res.Annotator = fingerprint.NewAnnotator(f.snmp, f.ttl)
	f.res.Annotation = bdrmap.Annotation(f.borders)
}

// flush analyzes the pending batch concurrently, then accumulates the
// slots in stream order. All cross-trace state mutation happens here, on
// the fold's goroutine, so the fold is race-free by construction and its
// aggregates are independent of the worker count. A cancelled fold aborts
// with the cause before accumulating anything from the interrupted batch —
// a partial batch never reaches the aggregates.
func (f *fold) flush() error {
	n := len(f.batch)
	if n == 0 {
		return nil
	}
	reg := f.cfg.Metrics
	reg.Counter("exp", "jobs.detect").Add(uint64(n))
	reg.Counter("exp", "stream.batches").Inc()
	reg.Gauge("exp", "stream.inflight").SetMax(uint64(n))
	asOf := f.res.Annotation.AsFunc()
	if err := par.ForEach(f.ctx, f.cfg.analyzeWorkers(), n, func(i int) {
		defer f.busy.Start()()
		p := core.BuildPath(f.batch[i].Trace, f.res.Annotator, asOf)
		sub := p.RestrictToAS(f.asn)
		if len(sub.Hops) == 0 {
			return
		}
		f.results[i] = f.det.Analyze(sub)
	}); err != nil {
		return err
	}
	inAS := 0
	for i := 0; i < n; i++ {
		rec := f.batch[i]
		f.agg.addTrace(rec.VPIndex, rec.Trace, f.results[i], f.res.SREnabled)
		if f.cfg.KeepPaths {
			f.res.PerVP[rec.VPIndex].Traces = append(f.res.PerVP[rec.VPIndex].Traces, rec.Trace)
		}
		if f.results[i] != nil {
			inAS++
			if f.cfg.KeepPaths {
				f.res.Paths = append(f.res.Paths, f.results[i].Path)
				f.res.Results = append(f.res.Results, f.results[i])
			}
		}
		f.results[i] = nil
	}
	reg.Counter("exp", "paths").Add(uint64(inAS))
	f.batch = f.batch[:0]
	f.cfg.beat() // one unit of supervised progress per analyzed batch
	return nil
}

// finish drains the final partial batch and returns the completed result.
func (f *fold) finish() (*ASResult, error) {
	if err := f.planBudgetErr(); err != nil {
		return nil, err
	}
	if err := f.flush(); err != nil {
		return nil, err
	}
	if !f.sealed {
		f.seal() // archive with zero traces
	}
	f.res.TracesSent = f.agg.Traces
	f.res.Agg = f.agg
	return f.res, nil
}

// DetectStream runs the Annotate and Detect stages as a one-pass fold over
// archive bytes: peak live memory is bounded by the accumulated aggregates
// (plus one analyze batch), never by the archive size. For a v2 archive the
// trace-failure budget is applied the moment the degradation record
// arrives. A v1 archive interleaves side data after the traces, so it
// cannot be folded one-pass; it is materialized (O(input) memory, the old
// behavior) and folded from the Data. Either way the result is deep-equal
// to Detect over the materialized archive.
func DetectStream(ctx context.Context, r io.Reader, cfg Config) (*ASResult, error) {
	ar, err := archive.NewReader(r)
	if err != nil {
		return nil, err
	}
	if ar.Version() < 2 {
		data, err := archive.ReadFrom(ar)
		if err != nil {
			return nil, err
		}
		if err := cfg.ASBudgetErr(len(data.Traces())); err != nil {
			return nil, err
		}
		if err := cfg.TraceBudgetErr(data); err != nil {
			return nil, err
		}
		return Detect(ctx, data, cfg)
	}
	reg := cfg.Metrics
	done := reg.Span("exp", "stage.detect").Start()
	defer done()
	f := newFold(ctx, cfg, true)
	if err := archive.StreamRecords(ar, f); err != nil {
		return nil, err
	}
	return f.finish()
}

// DetectStreamFile is DetectStream over one shard on disk.
func DetectStreamFile(ctx context.Context, path string, cfg Config) (*ASResult, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return DetectStream(ctx, file, cfg)
}

// foldData drives a fold from an in-memory archive.Data, emitting exactly
// the record sequence WriteData would put in a v2 archive — meta, VPs, side
// data, traces — so Detect over a Data and DetectStream over its encoded
// bytes produce identical results and identical instrumentation.
func foldData(f *fold, d *archive.Data) error {
	if err := f.Meta(d.Meta); err != nil {
		return err
	}
	for i, vp := range d.VPs {
		if err := f.VP(archive.VPRecord{Index: i, Addr: vp, Traces: len(d.PerVP[i])}); err != nil {
			return err
		}
	}
	for _, src := range []struct {
		src archive.FingerprintSource
		m   map[netip.Addr]mpls.Vendor
	}{{archive.SourceSNMP, d.SNMP}, {archive.SourceTTL, d.TTL}} {
		for _, a := range sortedAddrKeys(src.m) {
			if err := f.Fingerprint(archive.FingerprintRecord{Addr: a, Vendor: src.m[a], Source: src.src}); err != nil {
				return err
			}
		}
	}
	for _, set := range d.Aliases {
		if err := f.AliasSet(archive.AliasSetRecord{Addrs: set}); err != nil {
			return err
		}
	}
	for _, a := range sortedAddrKeys(d.Borders) {
		if err := f.Border(archive.BorderRecord{Addr: a, ASN: d.Borders[a]}); err != nil {
			return err
		}
	}
	for _, a := range d.SREnabled {
		if err := f.SREnabled(archive.SREnabledRecord{Addr: a}); err != nil {
			return err
		}
	}
	if d.Degraded != nil {
		if err := f.Degraded(*d.Degraded); err != nil {
			return err
		}
	}
	for i, ts := range d.PerVP {
		for _, tr := range ts {
			if err := f.Trace(archive.TraceRecord{VPIndex: i, Trace: tr}); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedAddrKeys returns a map's keys in address order, for deterministic
// record emission from in-memory data.
func sortedAddrKeys[V any](m map[netip.Addr]V) []netip.Addr {
	out := make([]netip.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
