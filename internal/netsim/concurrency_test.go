package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"arest/internal/pkt"
)

// sendJob is one probe of the concurrency tests' shared workload.
type sendJob struct {
	dst   netip.Addr
	ttl   uint8
	dport uint16
}

func concurrencyJobs(c *chain) []sendJob {
	var jobs []sendJob
	dsts := []netip.Addr{c.target, c.pe2.Loopback, c.ps[1].Loopback}
	for _, dst := range dsts {
		for dport := uint16(33434); dport < 33434+6; dport++ {
			for ttl := uint8(1); ttl <= 8; ttl++ {
				jobs = append(jobs, sendJob{dst, ttl, dport})
			}
		}
	}
	return jobs
}

// normalizeReply renders a reply with its IP-ID zeroed: the ID is the one
// field whose value depends on probe interleaving (it reads the router's
// shared counter), while everything else must be schedule-independent.
func normalizeReply(t *testing.T, b []byte) string {
	t.Helper()
	if b == nil {
		return "<none>"
	}
	ip, err := pkt.UnmarshalIPv4(b)
	if err != nil {
		t.Fatalf("bad reply: %v", err)
	}
	ip.ID = 0
	nb, err := ip.Marshal()
	if err != nil {
		t.Fatalf("re-marshal reply: %v", err)
	}
	return fmt.Sprintf("%x", nb)
}

// TestConcurrentSendMatchesSequential runs the same probe workload
// sequentially on one network and concurrently on an identically built one,
// and requires (a) every reply identical modulo the IP-ID field and (b) the
// final IP-ID counter state of every router identical — the commutativity
// guarantee the parallel campaign rests on. Under -race this doubles as the
// concurrent-Send data-race check.
func TestConcurrentSendMatchesSequential(t *testing.T) {
	seqC, parC := buildChain(t), buildChain(t)
	jobs := concurrencyJobs(seqC)

	seqReplies := make([]string, len(jobs))
	for i, j := range jobs {
		d, err := seqC.net.Send(seqC.vp, udpProbe(seqC.vp, j.dst, j.ttl, j.dport))
		if err != nil {
			t.Fatalf("sequential send %d: %v", i, err)
		}
		seqReplies[i] = normalizeReply(t, d.Reply)
	}

	parReplies := make([]string, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(jobs); i += 8 {
				j := jobs[i]
				d, err := parC.net.Send(parC.vp, udpProbe(parC.vp, j.dst, j.ttl, j.dport))
				if err != nil {
					t.Errorf("concurrent send %d: %v", i, err)
					return
				}
				parReplies[i] = normalizeReply(t, d.Reply)
			}
		}(w)
	}
	wg.Wait()

	for i := range jobs {
		if seqReplies[i] != parReplies[i] {
			t.Errorf("probe %d (%s ttl=%d dport=%d): reply diverged\nseq = %s\npar = %s",
				i, jobs[i].dst, jobs[i].ttl, jobs[i].dport, seqReplies[i], parReplies[i])
		}
	}
	for i, sr := range seqC.net.Routers() {
		pr := parC.net.Routers()[i]
		if got, want := pr.ipIDCount.Load(), sr.ipIDCount.Load(); got != want {
			t.Errorf("router %s: concurrent run bumped IP-ID counter %d times, sequential %d",
				sr.Name, got, want)
		}
	}
}

// TestConcurrentSendStress hammers one shared Network from many goroutines
// with overlapping flows; run under -race it verifies Send's read-only
// control-plane contract, and every delivery must still parse.
func TestConcurrentSendStress(t *testing.T) {
	c := buildChain(t, withInterior(5))
	jobs := concurrencyJobs(c)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, j := range jobs {
				d, err := c.net.Send(c.vp, udpProbe(c.vp, j.dst, j.ttl, j.dport))
				if err != nil {
					t.Errorf("send: %v", err)
					return
				}
				if d.Reply != nil {
					if _, err := pkt.UnmarshalIPv4(d.Reply); err != nil {
						t.Errorf("mangled reply: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
