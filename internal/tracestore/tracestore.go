// Package tracestore reads and writes trace collections as JSON Lines, the
// interchange format between the probing tool (cmd/tntsim) and the
// detector (cmd/arest). Each line is one probe.Trace; an optional metadata
// header line (prefixed with '#') carries campaign context.
package tracestore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"arest/internal/probe"
)

// Meta describes a stored campaign.
type Meta struct {
	ASN  int    `json:"asn"`
	Name string `json:"name,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	VPs  int    `json:"vps,omitempty"`
}

// Write stores the metadata header followed by one trace per line.
func Write(w io.Writer, meta Meta, traces []*probe.Trace) error {
	bw := bufio.NewWriter(w)
	mb, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("tracestore: meta: %w", err)
	}
	if _, err := fmt.Fprintf(bw, "#%s\n", mb); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for _, tr := range traces {
		if err := enc.Encode(tr); err != nil {
			return fmt.Errorf("tracestore: trace %s->%s: %w", tr.VP, tr.Dst, err)
		}
	}
	return bw.Flush()
}

// Read parses a stored campaign. A missing header yields a zero Meta; the
// '#' header is accepted only as the first non-empty line, and a second
// header anywhere is an error (it used to silently overwrite Meta
// mid-file). Lines are read through bufio.Reader, so traces of any length
// parse instead of tripping a scanner token cap.
func Read(r io.Reader) (Meta, []*probe.Trace, error) {
	var meta Meta
	var traces []*probe.Trace
	br := bufio.NewReader(r)
	lineNo := 0
	sawContent := false
	for {
		raw, err := br.ReadString('\n')
		if raw == "" && err != nil {
			if err == io.EOF {
				return meta, traces, nil
			}
			return meta, nil, fmt.Errorf("tracestore: %w", err)
		}
		lineNo++
		line := strings.TrimSpace(raw)
		if line == "" {
			if err == nil {
				continue
			}
			if err == io.EOF {
				return meta, traces, nil
			}
			return meta, nil, fmt.Errorf("tracestore: %w", err)
		}
		if strings.HasPrefix(line, "#") {
			if sawContent {
				return meta, nil, fmt.Errorf("tracestore: line %d: unexpected header (only the first non-empty line may be one)", lineNo)
			}
			sawContent = true
			if jerr := json.Unmarshal([]byte(line[1:]), &meta); jerr != nil {
				return meta, nil, fmt.Errorf("tracestore: line %d: bad header: %w", lineNo, jerr)
			}
		} else {
			sawContent = true
			var tr probe.Trace
			if jerr := json.Unmarshal([]byte(line), &tr); jerr != nil {
				return meta, nil, fmt.Errorf("tracestore: line %d: %w", lineNo, jerr)
			}
			traces = append(traces, &tr)
		}
		if err == io.EOF {
			return meta, traces, nil
		}
		if err != nil {
			return meta, nil, fmt.Errorf("tracestore: %w", err)
		}
	}
}
