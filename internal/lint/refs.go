package lint

import (
	"go/ast"
	"go/types"
)

// FieldRefs collects every struct field object referenced under root:
// selector accesses (x.F, including through embedding and pointers) via
// Info.Selections, and keyed composite-literal fields (T{F: v}) via
// Info.Uses. This is the cross-function reference collector behind
// foldcomplete: a field is "folded" if any inspected body mentions it by
// either route.
func FieldRefs(info *types.Info, root ast.Node, into map[*types.Var]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					into[v] = true
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && v.IsField() {
					into[v] = true
				}
			}
		}
		return true
	})
}
